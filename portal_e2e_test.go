package pingmesh_test

// End-to-end portal test: a live simulated fleet feeds the DSA pipeline,
// every analysis cycle republishes the portal snapshot, and real HTTP
// clients watch a Figure 8(d) spine failure appear on /heatmap and flip
// /triage's verdict to "network" — while unchanged reads revalidate to
// 304 with zero body bytes.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pingmesh"
	"pingmesh/internal/netsim"
)

// getJSON fetches a URL and decodes the JSON body into v, returning the
// response for header checks.
func getJSON(t *testing.T, client *http.Client, url string, v any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: %v in %q", url, err, body)
		}
	}
	return resp
}

func TestPortalEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fleet run")
	}
	tb, err := pingmesh.NewSimTestbed(pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 3, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 4},
	}}, pingmesh.SimOptions{
		Seed:             1234,
		HeatmapMinProbes: 3,
		// The low-variance DC1 profile keeps sparse testbed cells green when
		// healthy; the default cycled profiles include long-tail DCs whose
		// max-of-few-samples p99 reads as noise.
		Profiles: []netsim.Profile{netsim.DC1Profile()},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := tb.NewPortal()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	client := srv.Client()

	// cycle probes one simulated window and runs the full analysis, which
	// republishes the portal snapshot through the OnCycle hook.
	cycle := func() {
		t.Helper()
		from := tb.Clock.Now()
		if err := tb.RunWindow(30 * time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy fleet: first cycle publishes epoch > 0 with a normal heatmap.
	cycle()
	if p.Epoch() == 0 {
		t.Fatal("analysis cycle did not publish a portal epoch")
	}
	var hm struct {
		Pattern string    `json:"pattern"`
		Pods    []string  `json:"pods"`
		P99Ns   [][]int64 `json:"p99_ns"`
	}
	getJSON(t, client, srv.URL+"/heatmap/DC1", &hm)
	if hm.Pattern != "normal" || len(hm.Pods) != 9 {
		t.Fatalf("healthy heatmap: pattern=%q pods=%d", hm.Pattern, len(hm.Pods))
	}
	var triage pingmesh.TriageResult
	getJSON(t, client, srv.URL+"/triage?src=d0.s0.p0&dst=d0.s1.p1", &triage)
	if triage.Verdict != "not-network" {
		t.Fatalf("healthy triage verdict = %q (%s)", triage.Verdict, triage.Reason)
	}

	// Conditional GET: with no new DSA cycle the content hash is stable, so
	// a revalidating poll costs 304 and zero body bytes.
	resp := getJSON(t, client, srv.URL+"/sla/dc/DC1", nil)
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on /sla/dc/DC1")
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/sla/dc/DC1", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation = %d with %d body bytes, want 304 with 0", resp.StatusCode, len(body))
	}

	// Spine failure (Figure 8(d)): cross-podset traffic takes +10ms while
	// intra-podset traffic bypasses the broken tier. Poll /heatmap until
	// the classifier reports it.
	tb.Net.SetTierDegraded(0, pingmesh.TierSpine, netsim.Degradation{ExtraLatencyMean: 10 * time.Millisecond})
	pattern := ""
	for i := 0; i < 5 && pattern != "spine-failure"; i++ {
		cycle()
		getJSON(t, client, srv.URL+"/heatmap/DC1", &hm)
		pattern = hm.Pattern
	}
	if pattern != "spine-failure" {
		t.Fatalf("heatmap never classified spine-failure (last pattern %q)", pattern)
	}

	// The same question now gets the opposite answer, with evidence.
	getJSON(t, client, srv.URL+"/triage?src=d0.s0.p0&dst=d0.s1.p1", &triage)
	if triage.Verdict != "network" {
		t.Fatalf("incident triage verdict = %q (%s)", triage.Verdict, triage.Reason)
	}

	// The incident also shows up on the alert feed and the scrape surface.
	var alerts []struct {
		Scope string `json:"scope"`
	}
	getJSON(t, client, srv.URL+"/alerts", &alerts)
	if len(alerts) == 0 {
		t.Fatal("no alerts after spine failure")
	}
	mResp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mBody, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{
		"pingmesh_portal_epoch " + fmt.Sprint(p.Epoch()),
		"pingmesh_portal_not_modified 1",
		"pingmesh_controller_", // the controller registry rides along
	} {
		if !strings.Contains(string(mBody), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
