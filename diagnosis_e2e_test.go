package pingmesh_test

// End-to-end root-cause diagnosis: two simultaneous faults — a silent
// random drop on a spine and a TCAM black-hole on a ToR — injected into a
// live simulated fleet. After one probing window the vote ranking must
// place both faulty switches in its top two, and the portal's /diagnose
// chains must pin each true hop over real HTTP, with /triage carrying the
// thin summary and /metrics the diagnosis counters.

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pingmesh"
	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

func TestDiagnosisEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fleet run")
	}
	tb, err := pingmesh.NewSimTestbed(pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 4, LeavesPerPodset: 3, Spines: 6},
	}}, pingmesh.SimOptions{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}

	spine := tb.Top.DCs[0].Spines[0]
	tb.Net.SetRandomDrop(spine, 0.05, true)
	tor := tb.Top.ToRs(0)[2]
	tb.Net.AddBlackhole(tor, netsim.Blackhole{MatchFraction: 0.6})
	spineName := tb.Top.Switch(spine).Name
	torName := tb.Top.Switch(tor).Name

	from := tb.Clock.Now()
	if err := tb.RunWindow(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Fleet-wide: both faults must top the explain-away ranking. The loud
	// black-hole must not bury the quiet spine drop.
	ranking := tb.Diag.Snapshot(8)
	if len(ranking.Candidates) < 2 {
		t.Fatalf("ranking has %d candidates, want >= 2", len(ranking.Candidates))
	}
	topTwo := map[string]bool{}
	for _, c := range ranking.Candidates[:2] {
		topTwo[tb.Top.Switch(c.Switch).Name] = true
	}
	if !topTwo[spineName] || !topTwo[torName] {
		t.Fatalf("top-2 = %v, want {%s, %s}", topTwo, spineName, torName)
	}

	// Publish a portal snapshot so the HTTP chain has SLA/heatmap evidence
	// (the analysis cycle republishes through the portal's OnCycle hook).
	p := tb.NewPortal()
	if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	client := srv.Client()

	// Per-pair over HTTP: a cross-podset pair's chain must pin the spine.
	src := tb.Top.Server(tb.Top.DCs[0].Podsets[0].Pods[0].Servers[0]).Name
	dst := tb.Top.Server(tb.Top.DCs[0].Podsets[1].Pods[0].Servers[0]).Name
	var chain pingmesh.DiagnosisChain
	getJSON(t, client, srv.URL+"/diagnose?src="+src+"&dst="+dst, &chain)
	if chain.PinnedHop != spineName {
		t.Fatalf("cross-podset chain pinned %q, want %q\nsteps: %+v", chain.PinnedHop, spineName, chain.Steps)
	}
	if chain.Verdict != "network" {
		t.Fatalf("cross-podset chain verdict = %q, want network", chain.Verdict)
	}

	// A same-podset pair ending under the black-holed ToR must pin the ToR
	// (its path never crosses the also-faulty spine). The hole matches a
	// fraction of the address space, so scan victims until a chain pins.
	var victim, srcPod *topology.Pod
	for psi := range tb.Top.DCs[0].Podsets {
		for pi := range tb.Top.DCs[0].Podsets[psi].Pods {
			pod := &tb.Top.DCs[0].Podsets[psi].Pods[pi]
			if pod.ToR == tor {
				victim = pod
				srcPod = &tb.Top.DCs[0].Podsets[psi].Pods[0]
				if srcPod.ToR == tor {
					srcPod = &tb.Top.DCs[0].Podsets[psi].Pods[1]
				}
			}
		}
	}
	if victim == nil {
		t.Fatal("black-holed ToR has no pod")
	}
	pinned := false
scan:
	for _, s := range srcPod.Servers {
		for _, d := range victim.Servers {
			var ch pingmesh.DiagnosisChain
			getJSON(t, client, srv.URL+"/diagnose?src="+tb.Top.Server(s).Name+"&dst="+tb.Top.Server(d).Name, &ch)
			if ch.PinnedHop == torName {
				pinned = true
				// The thin summary for the same pair carries the verdict and
				// a pointer back to the full chain.
				var triage pingmesh.TriageResult
				getJSON(t, client, srv.URL+"/triage?src="+tb.Top.Server(s).Name+"&dst="+tb.Top.Server(d).Name, &triage)
				if triage.Diagnose == "" {
					t.Fatal("/triage has no diagnose pointer")
				}
				break scan
			}
		}
	}
	if !pinned {
		t.Fatalf("no same-podset chain pinned the black-holed ToR %s", torName)
	}

	// The diagnosis counters ride the portal scrape surface.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pingmesh_diagnosis_probes_observed",
		"pingmesh_diagnosis_votes_cast",
		"pingmesh_diagnosis_chains",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
