// Package pingmesh is a from-scratch Go implementation of Pingmesh (Guo et
// al., SIGCOMM 2015): a large-scale data center network latency measurement
// and analysis system. Every server runs an agent that TCP/HTTP-pings a
// controller-computed set of peers (three levels of complete graphs);
// results feed a storage and analysis pipeline that tracks network SLAs,
// answers "is it the network?", and detects switch packet black-holes and
// silent random packet drops.
//
// The package exposes two ways to run the system:
//
//   - SimTestbed: a whole simulated deployment — Clos fabric simulator,
//     controller, probing fleet, Cosmos/SCOPE-style pipeline — for
//     experiments, fault-injection studies, and reproducing the paper's
//     evaluation.
//   - Real-network components: NewController/NewAgent wire the same
//     controller and agent implementations to real sockets for running on
//     an actual network (see examples/quickstart).
//
// Subsystems live in internal/ packages; this package is the stable entry
// point.
package pingmesh

import (
	"fmt"
	"math/rand/v2"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/autopilot"
	"pingmesh/internal/blackhole"
	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/diagnosis"
	"pingmesh/internal/dsa"
	"pingmesh/internal/fleet"
	"pingmesh/internal/metrics"
	"pingmesh/internal/netsim"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/portal"
	"pingmesh/internal/probe"
	"pingmesh/internal/reportdb"
	"pingmesh/internal/scope"
	"pingmesh/internal/silentdrop"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
	"pingmesh/internal/trace"
	"pingmesh/internal/viz"
)

// Core vocabulary, re-exported so facade users need no internal imports.
type (
	// Topology is the immutable multi-DC fleet model.
	Topology = topology.Topology
	// TopologySpec describes a fleet to generate.
	TopologySpec = topology.Spec
	// DCSpec describes one data center to generate.
	DCSpec = topology.DCSpec
	// ServerID identifies a server in the fleet.
	ServerID = topology.ServerID
	// SwitchID identifies a switch in the fleet.
	SwitchID = topology.SwitchID
	// Record is one probe outcome.
	Record = probe.Record
	// LatencyStats aggregates probe records.
	LatencyStats = analysis.LatencyStats
	// Summary is a percentile summary of a latency distribution.
	Summary = metrics.Summary
	// Alert is one SLA violation.
	Alert = analysis.Alert
	// Service is a named set of servers whose SLA is tracked individually.
	Service = analysis.Service
	// Heatmap is the pod-pair P99 latency matrix of the visualization.
	Heatmap = viz.Heatmap
	// Pattern classifies a heatmap (normal, podset-down, ...).
	Pattern = viz.Pattern
	// NetworkProfile is the behavioural model of one DC's fabric.
	NetworkProfile = netsim.Profile
	// GeneratorConfig parameterizes pinglist generation.
	GeneratorConfig = core.GeneratorConfig
	// Pinglist is one server's probing assignment.
	Pinglist = pinglist.File
	// Detection is a black-hole detection result.
	Detection = blackhole.Detection
	// ReportDB is the report database dashboards read.
	ReportDB = reportdb.DB
	// Portal is the read-side web service over the DSA outputs.
	Portal = portal.Portal
	// PortalSnapshot is one published epoch of portal data.
	PortalSnapshot = portal.Snapshot
	// TriageResult is the §4.3 "is it a network issue?" decision.
	TriageResult = portal.TriageResult
	// Tier identifies a switch layer (ToR, Leaf, Spine).
	Tier = topology.Tier
	// Tracer is the in-process tracing and pipeline self-monitoring layer.
	Tracer = trace.Tracer
	// FreshnessBudget is the §3.5 data-freshness budget /health evaluates.
	FreshnessBudget = trace.Budget
	// DiagnosisCandidate is one switch ranked by the vote-based localizer.
	DiagnosisCandidate = diagnosis.Candidate
	// DiagnosisRanking is a published snapshot of the fleet-wide ranking.
	DiagnosisRanking = diagnosis.Ranking
	// DiagnosisChain is the ordered evidence chain /diagnose returns.
	DiagnosisChain = diagnosis.Chain
	// DiagnosisEngine runs the per-pair assertion chain.
	DiagnosisEngine = diagnosis.Engine
)

// Switch tiers, bottom up.
const (
	TierToR   = topology.TierToR
	TierLeaf  = topology.TierLeaf
	TierSpine = topology.TierSpine
)

// SimOptions configures a simulated testbed.
type SimOptions struct {
	// Profiles holds one network profile per DC; defaults to the paper's
	// five DC profiles cycled across the spec's DCs.
	Profiles []netsim.Profile
	// Generator overrides the pinglist generation parameters.
	Generator *core.GeneratorConfig
	// Services to track SLAs for.
	Services []*analysis.Service
	// Seed makes runs reproducible.
	Seed uint64
	// Start is the simulated start time; defaults to 2026-07-01 UTC.
	Start time.Time
	// OnDetection receives daily black-hole detection results.
	OnDetection func(blackhole.Detection)
	// HeatmapMinProbes overrides the pipeline's per-cell probe floor for
	// heatmaps (small testbeds need a lower floor than production).
	HeatmapMinProbes uint64
	// Shards enables the sharded incremental analysis tier for the
	// pipeline's 10-minute jobs (0 keeps the legacy full re-scan).
	Shards int
	// FoldBudget bounds extents folded per shard per background fold pass;
	// idle shards steal the leftovers. 0 means unbounded.
	FoldBudget int
}

// SimTestbed is a whole simulated Pingmesh deployment: fabric, controller,
// probing fleet, storage and analysis pipeline, with a virtual clock.
type SimTestbed struct {
	Top        *topology.Topology
	Net        *netsim.Network
	Clock      *simclock.Sim
	Store      *cosmos.Store
	Controller *controller.Controller
	Pipeline   *dsa.Pipeline
	// Tracer is the testbed's tracing/self-monitoring layer, on the
	// testbed's virtual clock and threaded through the pipeline and portal.
	Tracer *trace.Tracer
	// Diag accumulates per-hop votes from every probe the fleet runs; the
	// portal publishes its ranking on /diagnose and the diagnosis engine
	// reads it for the hop-votes assertion.
	Diag *diagnosis.Collector

	gen    core.GeneratorConfig
	seed   uint64
	lists  map[topology.ServerID]*pinglist.File
	repair *autopilot.RepairService
	budget int
}

// NewSimTestbed builds a simulated deployment from a topology spec.
func NewSimTestbed(spec TopologySpec, opts SimOptions) (*SimTestbed, error) {
	top, err := topology.Build(spec)
	if err != nil {
		return nil, err
	}
	profiles := opts.Profiles
	if len(profiles) == 0 {
		defaults := netsim.DefaultProfiles()
		for i := range top.DCs {
			profiles = append(profiles, defaults[i%len(defaults)])
		}
	}
	net, err := netsim.New(top, netsim.Config{Profiles: profiles})
	if err != nil {
		return nil, err
	}
	start := opts.Start
	if start.IsZero() {
		start = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	clock := simclock.NewSim(start)

	gen := core.DefaultGeneratorConfig()
	if opts.Generator != nil {
		gen = *opts.Generator
	}
	ctrl, err := controller.New(top, gen, clock)
	if err != nil {
		return nil, err
	}
	lists, err := core.Generate(top, gen, ctrl.Version(), start)
	if err != nil {
		return nil, err
	}
	store, err := cosmos.NewStore(3, cosmos.Config{})
	if err != nil {
		return nil, err
	}
	tracer := trace.New(clock)
	diag := diagnosis.NewCollector(diagnosis.CollectorConfig{Top: top, Paths: net})
	pipe, err := dsa.New(dsa.Config{
		Store:            store,
		Top:              top,
		Clock:            clock,
		Services:         opts.Services,
		OnDetection:      opts.OnDetection,
		HeatmapMinProbes: opts.HeatmapMinProbes,
		Tracer:           tracer,
		Shards:           opts.Shards,
		FoldBudget:       opts.FoldBudget,
		Diagnosis:        diag,
	})
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0xbead
	}
	return &SimTestbed{
		Top: top, Net: net, Clock: clock, Store: store,
		Controller: ctrl, Pipeline: pipe, Tracer: tracer, Diag: diag,
		gen: gen, seed: seed, lists: lists,
	}, nil
}

// Pinglists returns the controller-generated pinglist of every server.
func (tb *SimTestbed) Pinglists() map[ServerID]*Pinglist { return tb.lists }

// RunWindow executes every scheduled probe of the fleet for the next d of
// simulated time, uploads the records to the store, and advances the
// clock. Call Analyze* (or Pipeline methods) afterwards to process the
// window.
//
// Fault state is sampled per probe but the window executes as one batch:
// inject faults between windows (or use RunTimeline) rather than
// concurrently with a running window.
func (tb *SimTestbed) RunWindow(d time.Duration) error {
	from := tb.Clock.Now()
	to := from.Add(d)
	runner := &fleet.Runner{Net: tb.Net, Lists: tb.lists, Seed: tb.seed ^ uint64(from.UnixNano())}
	stream := cosmos.DailyStream("pingmesh")
	err := runner.Run(from, to, func(src topology.ServerID, recs []probe.Record) {
		if err := tb.Store.Append(stream(recs[0].Start), probe.EncodeBatch(recs)); err != nil {
			panic(fmt.Sprintf("pingmesh: store append: %v", err)) // in-memory store: only programming errors
		}
		tb.Diag.ObserveBatch(recs)
	})
	if err != nil {
		return err
	}
	tb.Clock.AdvanceTo(to)
	// The fleet's batch append stands in for the agents' upload path: the
	// last batch lands at the window's end, so the mark goes after the
	// clock advance — otherwise a window longer than the 5-minute upload
	// budget would read as stale the moment it finishes.
	tb.Tracer.Freshness().Mark(trace.StageUpload)
	return nil
}

// TimelineStep is one phase of a scripted incident: Mutate (may be nil)
// adjusts the fabric, then the fleet probes for Duration.
type TimelineStep struct {
	// Name labels the phase in analyses.
	Name string
	// Mutate runs before the phase's probing (inject or clear faults).
	Mutate func(tb *SimTestbed)
	// Duration is how long the fleet probes in this phase.
	Duration time.Duration
}

// TimelinePhase is the analyzed outcome of one step.
type TimelinePhase struct {
	Name     string
	From, To time.Time
	// Stats aggregates the phase's intra-DC SYN probes fleet-wide.
	Stats *LatencyStats
}

// RunTimeline executes a scripted incident: for each step it applies the
// mutation, probes for the step's duration, and aggregates the phase's
// stats — the idiom behind Figure 7-style before/during/after studies.
func (tb *SimTestbed) RunTimeline(steps []TimelineStep) ([]TimelinePhase, error) {
	keyer := &analysis.Keyer{Top: tb.Top}
	engine := &scope.Engine{}
	var out []TimelinePhase
	for i, step := range steps {
		if step.Mutate != nil {
			step.Mutate(tb)
		}
		if step.Duration <= 0 {
			return nil, fmt.Errorf("pingmesh: timeline step %d (%q) has no duration", i, step.Name)
		}
		from := tb.Clock.Now()
		if err := tb.RunWindow(step.Duration); err != nil {
			return nil, err
		}
		to := tb.Clock.Now()
		res, err := engine.Run(scope.Job{
			Name:   "timeline-" + step.Name,
			Source: scope.Source{Store: tb.Store, StreamPrefix: "pingmesh"},
			From:   from, To: to,
			Where: func(r *probe.Record) bool { return r.Class != probe.InterDC && r.PayloadLen == 0 },
			Key:   keyer.SrcDC,
		})
		if err != nil {
			return nil, err
		}
		merged := analysis.NewLatencyStats()
		for _, st := range res.Groups {
			merged.Merge(st)
		}
		out = append(out, TimelinePhase{Name: step.Name, From: from, To: to, Stats: merged})
	}
	return out, nil
}

// AnalyzeWindow runs the 10-minute, hourly and daily analyses over
// [from, to) and returns the per-DC SLA stats.
func (tb *SimTestbed) AnalyzeWindow(from, to time.Time) error {
	if err := tb.Pipeline.RunTenMinute(from, to); err != nil {
		return err
	}
	if err := tb.Pipeline.RunHourly(from, to); err != nil {
		return err
	}
	return tb.Pipeline.RunDaily(from, to)
}

// DB returns the report database with SLA rows, alerts, patterns, drop
// rates and black-hole candidates.
func (tb *SimTestbed) DB() *ReportDB { return tb.Pipeline.DB() }

// NewPortal wires a read-side portal to the testbed's pipeline: every
// analysis cycle (10-minute, hourly, daily) republishes the portal's
// snapshot, and /metrics exposes the controller's and the scope jobs'
// registries alongside the portal's own.
func (tb *SimTestbed) NewPortal() *Portal {
	engine := tb.NewDiagnosisEngine()
	p := portal.New(portal.Config{
		Pipeline: tb.Pipeline,
		Top:      tb.Top,
		Clock:    tb.Clock,
		Metrics: []portal.MetricSource{
			{Prefix: "", Registry: tb.Controller.Metrics()},
			{Prefix: "", Registry: tb.Pipeline.JobRegistry()},
			{Prefix: "", Registry: tb.Diag.Metrics()},
			{Prefix: "", Registry: engine.Metrics()},
		},
		Tracer:    tb.Tracer,
		Diagnosis: engine,
	})
	tb.Pipeline.SetOnCycle(func(kind string, from, to time.Time) {
		// Publication is best-effort: a refresh failure leaves the previous
		// epoch serving, which is exactly the stale-but-consistent behavior
		// the read side wants.
		p.Refresh()
	})
	return p
}

// Alerts returns the SLA violations fired so far.
func (tb *SimTestbed) Alerts() []Alert { return tb.Pipeline.Alerts() }

// HeatmapFor builds the pod-pair P99 heatmap of one DC over a window. The
// probing schedule is densified 10x relative to the agents' cadence so
// small testbeds accumulate enough per-cell samples for a stable P99 —
// production pod pairs aggregate far more server pairs than a testbed.
func (tb *SimTestbed) HeatmapFor(dc int, from, to time.Time) (*Heatmap, error) {
	keyer := &analysis.Keyer{Top: tb.Top}
	col := fleet.NewStatsCollector(keyer.PodPair)
	runner := &fleet.Runner{Net: tb.Net, Lists: tb.lists, Seed: tb.seed ^ 0x77, IntervalScale: 0.1}
	if err := runner.Run(from, to, col.Sink); err != nil {
		return nil, err
	}
	return viz.BuildHeatmap(tb.Top, dc, col.Groups(), 10), nil
}

// NewRepairService returns a repair service whose executor acts on the
// simulated network (reload / isolate / replace by device name), with the
// paper's default budget of 20 actions per day.
func (tb *SimTestbed) NewRepairService(budgetPerDay int) *autopilot.RepairService {
	rs := autopilot.NewRepairService(tb.Clock, budgetPerDay, func(a autopilot.RepairAction) error {
		for _, sw := range tb.Top.Switches() {
			if sw.Name != a.Device {
				continue
			}
			switch a.Kind {
			case autopilot.RepairReload:
				tb.Net.ReloadSwitch(sw.ID)
			case autopilot.RepairIsolate:
				tb.Net.IsolateSwitch(sw.ID)
			case autopilot.RepairRMA:
				tb.Net.ReplaceSwitch(sw.ID)
			default:
				return fmt.Errorf("pingmesh: unknown repair kind %q", a.Kind)
			}
			return nil
		}
		return fmt.Errorf("pingmesh: unknown device %q", a.Device)
	})
	// The diagnosis engine's repair-budget assertion reads the most
	// recently created service, whichever order the caller wires things in.
	tb.repair = rs
	tb.budget = budgetPerDay
	return rs
}

// NewDiagnosisEngine wires a diagnosis chain engine to the testbed: votes
// from the fleet's collector, exact paths and TTL sweeps from the fabric
// simulator, and (when NewRepairService has been called) the repair budget.
func (tb *SimTestbed) NewDiagnosisEngine() *diagnosis.Engine {
	return &diagnosis.Engine{
		Top:    tb.Top,
		Votes:  tb.Diag,
		Paths:  tb.Net,
		Tracer: tb.Net,
		Clock:  tb.Clock,
		Seed:   tb.seed ^ 0xd1a9,
		Budget: func() (remaining, perDay int) {
			if tb.repair == nil {
				return 0, 0
			}
			return tb.repair.BudgetRemaining(), tb.budget
		},
	}
}

func defaultProfiles() []netsim.Profile { return netsim.DefaultProfiles() }

// SilentDropSuspect is one switch accused of silent random packet drops.
type SilentDropSuspect = silentdrop.Suspect

// LocalizeSilentDrops runs the §5.2 workflow over the stored records of
// [from, to): compute per-server-pair drop estimates, pick the most
// affected pairs, and TCP-traceroute them against the fabric to pinpoint
// the lossy switch. Returns suspects worst-first (empty when the fabric is
// clean).
func (tb *SimTestbed) LocalizeSilentDrops(from, to time.Time) ([]SilentDropSuspect, error) {
	keyer := &analysis.Keyer{Top: tb.Top}
	engine := &scope.Engine{}
	res, err := engine.Run(scope.Job{
		Name:   "silentdrop-pairs",
		Source: scope.Source{Store: tb.Store, StreamPrefix: "pingmesh"},
		From:   from, To: to,
		Key: keyer.ServerPair,
	})
	if err != nil {
		return nil, err
	}
	rates := make(map[string]float64, len(res.Groups))
	for k, st := range res.Groups {
		if st.Success() >= 20 {
			rates[k] = st.DropRate()
		}
	}
	pairs := silentdrop.AffectedPairsFromStats(tb.Top, rates, 1e-3, 8)
	if len(pairs) == 0 {
		return nil, nil
	}
	loc := &silentdrop.Localizer{
		Net:          tb.Net,
		ProbesPerHop: 600,
		Rand:         rand.New(rand.NewPCG(tb.seed^0x51d, 13)),
	}
	return loc.Localize(pairs), nil
}

// StandardWatchdogs returns a watchdog service wired with the checks §3.5
// prescribes for an always-on deployment: are pinglists generated, is
// Pingmesh data being reported and stored, does the DSA produce SLA rows
// in time. Failures escalate through the returned Device Manager. Call
// Start on the service (or RunOnce from tests) and inspect dm.Devices().
func (tb *SimTestbed) StandardWatchdogs(interval time.Duration) (*autopilot.WatchdogService, *autopilot.DeviceManager) {
	dm := autopilot.NewDeviceManager()
	ws := autopilot.NewWatchdogService(tb.Clock, interval, dm)
	ws.Register(autopilot.Watchdog{
		Name:   "pinglists-generated",
		Device: "pingmesh-controller",
		Check: func() error {
			if tb.Controller.PinglistCount() == 0 {
				return fmt.Errorf("controller has no pinglists")
			}
			return nil
		},
	})
	ws.Register(autopilot.Watchdog{
		Name:   "data-reported",
		Device: "pingmesh-agents",
		Check: func() error {
			if len(tb.Store.Streams("pingmesh/")) == 0 {
				return fmt.Errorf("no latency data uploaded")
			}
			return nil
		},
	})
	ws.Register(autopilot.Watchdog{
		Name:   "sla-produced",
		Device: "pingmesh-dsa",
		Check: func() error {
			if tb.Pipeline.DB().Count(dsa.TableSLA) == 0 {
				return fmt.Errorf("DSA has produced no SLA rows")
			}
			return nil
		},
	})
	// The "who watches Pingmesh" check: the pipeline's own freshness marks
	// against the §3.5 budget.
	ws.Register(autopilot.NewStalenessWatchdog(tb.Tracer.Freshness(), trace.DefaultBudget()))
	// Per-shard fold lag, against the same DSA cycle budget: a shard
	// sitting on a backlog without folding is what makes the next cycle
	// blow the 20-minute budget, so it pages before the cycle does.
	budget := trace.DefaultBudget()
	ws.Register(autopilot.Watchdog{
		Name:   "shard-fold-lag",
		Device: "pingmesh-dsa",
		Check: func() error {
			for _, lag := range tb.Pipeline.ShardLags() {
				if lag.Backlog == 0 || lag.LastFold.IsZero() {
					continue
				}
				if age := tb.Clock.Now().Sub(lag.LastFold); age > budget.DSACycle {
					return fmt.Errorf("shard %d: %d extents unfolded for %v (budget %v)",
						lag.Shard, lag.Backlog, age, budget.DSACycle)
				}
			}
			return nil
		},
	})
	return ws, dm
}

// generateAll runs the pinglist generator for every server (benchmark
// helper for the controller's generation cost).
func generateAll(top *topology.Topology, cfg core.GeneratorConfig) (map[topology.ServerID]*pinglist.File, error) {
	return core.Generate(top, cfg, "bench", time.Unix(1751328000, 0).UTC())
}
