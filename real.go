package pingmesh

import (
	"net/http"
	"net/netip"
	"time"

	"pingmesh/internal/agent"
	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/netlib"
	"pingmesh/internal/topology"
)

// Real-network entry points: the same controller and agent implementations
// the simulator exercises, wired to real sockets. See examples/quickstart
// for a complete loopback deployment.

// NewController builds a Pingmesh Controller over a topology. Serve its
// Handler() with net/http (typically several replicas behind an SLB VIP).
func NewController(top *Topology, cfg GeneratorConfig) (*controller.Controller, error) {
	return controller.New(top, cfg, nil)
}

// Controller re-exports for real deployments.
type (
	// Controller generates and serves pinglists.
	Controller = controller.Controller
	// ControllerClient fetches pinglists from a controller URL.
	ControllerClient = controller.Client
	// Agent is one server's Pingmesh Agent.
	Agent = agent.Agent
	// AgentConfig configures an Agent.
	AgentConfig = agent.Config
	// ProbeServer answers TCP probes (every Pingmesh server runs one).
	ProbeServer = netlib.TCPServer
)

// NewProbeServer starts the echo server agents probe against, e.g. on
// ":8765". Every Pingmesh server runs one; the agent keeps answering
// probes even when it fails closed.
func NewProbeServer(addr string) (*ProbeServer, error) {
	return netlib.NewTCPServer(addr)
}

// ProbeHTTPHandler returns the HTTP side of the probe protocol (GET
// /ping?size=N), for serving alongside application HTTP endpoints.
func ProbeHTTPHandler() http.Handler { return netlib.HTTPHandler() }

// NewRealAgent builds an agent that probes over the real network and polls
// the controller at controllerURL for its pinglist.
func NewRealAgent(serverName string, sourceAddr netip.Addr, controllerURL string, uploader agent.Uploader) (*Agent, error) {
	return agent.New(agent.Config{
		ServerName: serverName,
		SourceAddr: sourceAddr,
		Controller: &controller.Client{BaseURL: controllerURL},
		Prober:     agent.NewRealProber(25 * time.Second),
		Uploader:   uploader,
	})
}

// BuildTopology generates a Topology from a spec.
func BuildTopology(spec TopologySpec) (*Topology, error) {
	return topology.Build(spec)
}

// SmallTestbed returns a compact two-DC topology for examples and tests.
func SmallTestbed() *Topology { return topology.SmallTestbed() }

// DefaultGeneratorConfig returns the production-like pinglist generation
// defaults.
func DefaultGeneratorConfig() GeneratorConfig { return core.DefaultGeneratorConfig() }

// DefaultProfiles returns the five Table 1 DC network profiles.
func DefaultProfiles() []NetworkProfile {
	return defaultProfiles()
}
