GO ?= go

.PHONY: all build test race ci fuzz bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the controller serves conditional GETs while regenerating and
# the agent runs three loops; everything must be race-clean.
race:
	$(GO) test -race ./...

ci:
	sh scripts/ci.sh

fuzz:
	FUZZ=1 sh scripts/ci.sh

bench:
	$(GO) test -bench . -benchmem ./internal/core ./internal/controller

clean:
	$(GO) clean -testcache
