GO ?= go

.PHONY: all build test race ci fuzz bench bench-ingest bench-fleet bench-portal bench-trace bench-controlplane bench-analysis bench-upload bench-diagnosis bench-telemetry churn foldsim uploadsim telemsim diagnose clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the controller serves conditional GETs while regenerating and
# the agent runs three loops; everything must be race-clean.
race:
	$(GO) test -race ./...

ci:
	sh scripts/ci.sh

fuzz:
	FUZZ=1 sh scripts/ci.sh

bench:
	$(GO) test -bench . -benchmem ./internal/core ./internal/controller

# Ingest hot path: codec + streaming scope engine throughput (MB/s) and
# allocation profile. BENCH_PR2.json records the tracked numbers.
bench-ingest:
	$(GO) test -run '^$$' -bench 'BenchmarkScanner|BenchmarkDecodeBatch|BenchmarkEncodeBatch|BenchmarkScopeRun|BenchmarkEngineRun' \
		-benchmem ./internal/probe ./internal/scope

# Simulation hot path: fleet-runner throughput (probes/sec) and the
# plan-cached vs reference probe cost. BENCH_PR3.json records the tracked
# numbers.
bench-fleet:
	$(GO) test -run '^$$' -bench 'BenchmarkFleetRun$$|BenchmarkProbe' \
		-benchmem ./internal/fleet ./internal/netsim

# Read-side serving hot path: cached SLA/heatmap reads, 304 revalidations,
# /metrics scrapes, and the per-cycle snapshot render cost. BENCH_PR4.json
# records the tracked numbers.
bench-portal:
	$(GO) test -run '^$$' -bench 'BenchmarkPortal|BenchmarkServe|BenchmarkExposition' \
		-benchmem ./internal/portal ./internal/httpcache ./internal/metrics

# Tracing overhead: the sampling decision when tracing is off/unsampled
# (must be one atomic load), the cost of a sampled span, and the in-flight
# probe table's ingest-side scan. BENCH_PR5.json records the tracked
# numbers.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkTracer|BenchmarkMatchProbe|BenchmarkHasActiveProbes' \
		-benchmem ./internal/trace

# Control-plane hot path: cached delta serving (must be zero-alloc),
# conditional-GET revalidation, and full-body serving. BENCH_PR6.json
# records the churn-harness numbers these microbenchmarks back.
bench-controlplane:
	$(GO) test -run '^$$' -bench 'BenchmarkServeDelta|BenchmarkServeFull|BenchmarkServeGzip|BenchmarkServeNotModified' \
		-benchmem ./internal/controller

# Analysis hot path: the per-record fold cost plus the full
# million-server incremental-vs-rescan sweep. BENCH_PR7.json records the
# tracked numbers.
bench-analysis:
	$(GO) test -run '^$$' -bench 'BenchmarkFoldExtent|BenchmarkPartialMerge' \
		-benchmem ./internal/scope
	$(MAKE) foldsim

# Upload hot path: sketch/binary encode + scan microbenchmarks plus the
# fleet differential sweep (sketch uploads vs raw CSV). BENCH_PR8.json
# records the tracked numbers.
bench-upload:
	$(GO) test -run '^$$' -bench 'BenchmarkAppendBinaryBatch|BenchmarkBinaryScan|BenchmarkAppendBatch' \
		-benchmem ./internal/probe
	$(MAKE) uploadsim

# Diagnosis hot paths: vote ingest per probe record (must be zero-alloc
# once warm), the greedy explain-away ranking, the per-TTL loss sweep, and
# the full per-pair evidence chain.
bench-diagnosis:
	$(GO) test -run '^$$' -bench 'BenchmarkVoteIngest|BenchmarkRankGreedy|BenchmarkDiagnoseSweep|BenchmarkDiagnoseChain' \
		-benchmem ./internal/diagnosis

# Telemetry hot paths: PMT1 encode and collector ingest microbenchmarks
# (both must be zero-alloc once warm) plus the million-agent harness.
# BENCH_PR10.json records the tracked numbers.
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkEncode|BenchmarkIngest' \
		-benchmem ./internal/telemetry
	$(MAKE) telemsim

# Root-cause localization experiment: injects a spine silent drop plus a
# ToR black-hole and requires the diagnosis subsystem to locate both.
diagnose:
	$(GO) run ./cmd/pingmesh-diagnose -check

# Million-agent churn harness: delta vs full-body serving through a
# rolling topology update with replica failover. Writes BENCH_PR6.json.
churn:
	$(GO) run ./cmd/pingmesh-churnsim -agents 1000000 -podsets 50 -out BENCH_PR6.json

# Million-server fold harness: sharded incremental cycles vs the legacy
# full re-scan over one 10-minute window. Writes BENCH_PR7.json.
foldsim:
	$(GO) run ./cmd/pingmesh-foldsim -servers 1000000 -shards 1,2,4 -out BENCH_PR7.json

# Fleet upload differential: the same probes shipped as raw CSV and as
# sketch/binary batches, compared on bytes, percentiles, and SLA parity.
# Writes BENCH_PR8.json.
uploadsim:
	$(GO) run ./cmd/pingmesh-uploadsim -servers 20000 -peers 8 -out BENCH_PR8.json

# Million-agent telemetry harness: PMT1 reports through the real collector
# with rollup parity checking. Writes BENCH_PR10.json.
telemsim:
	$(GO) run ./cmd/pingmesh-telemsim -agents 1000000 -check -out BENCH_PR10.json

clean:
	$(GO) clean -testcache
