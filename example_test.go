package pingmesh_test

import (
	"fmt"
	"time"

	"pingmesh"
	"pingmesh/internal/netsim"
)

// A complete simulated Pingmesh deployment: probe a window, break the
// Spine tier, and let the visualization classify the damage (§6.3).
func Example() {
	tb, err := pingmesh.NewSimTestbed(pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 3, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 4},
	}}, pingmesh.SimOptions{Seed: 1234})
	if err != nil {
		panic(err)
	}

	// Healthy fleet.
	from := tb.Clock.Now()
	if err := tb.RunWindow(30 * time.Minute); err != nil {
		panic(err)
	}
	h, err := tb.HeatmapFor(0, from, tb.Clock.Now())
	if err != nil {
		panic(err)
	}
	fmt.Println("healthy pattern:", h.Classify().Pattern)

	// The Spine tier degrades; cross-podset latency goes out of SLA.
	tb.Net.SetTierDegraded(0, pingmesh.TierSpine, netsim.Degradation{ExtraLatencyMean: 10 * time.Millisecond})
	from = tb.Clock.Now()
	if err := tb.RunWindow(30 * time.Minute); err != nil {
		panic(err)
	}
	h, err = tb.HeatmapFor(0, from, tb.Clock.Now())
	if err != nil {
		panic(err)
	}
	cls := h.Classify()
	fmt.Println("incident pattern:", cls.Pattern)

	// Output:
	// healthy pattern: normal
	// incident pattern: spine-failure
}
