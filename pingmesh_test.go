package pingmesh

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"pingmesh/internal/autopilot"
	"pingmesh/internal/dsa"
	"pingmesh/internal/netsim"
	"pingmesh/internal/reportdb"
)

func smallSpec() TopologySpec {
	return TopologySpec{DCs: []DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 4},
	}}
}

func TestSimTestbedEndToEnd(t *testing.T) {
	tb, err := NewSimTestbed(smallSpec(), SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	from := tb.Clock.Now()
	if err := tb.RunWindow(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := tb.Clock.Now().Sub(from); got != 20*time.Minute {
		t.Fatalf("clock advanced %v", got)
	}
	if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	rows, err := tb.DB().Query(dsa.TableSLA, reportdb.Where(func(r reportdb.Row) bool {
		return r["scope"] == "dc/DC1"
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("sla rows = %d", len(rows))
	}
	if rows[0]["probes"].(int64) == 0 {
		t.Fatal("no probes analyzed")
	}
	if len(tb.Alerts()) != 0 {
		t.Fatalf("healthy testbed alerted: %v", tb.Alerts())
	}
	if n := len(tb.Pinglists()); n != tb.Top.NumServers() {
		t.Fatalf("pinglists = %d", n)
	}
}

func TestSimTestbedHeatmapAndFaults(t *testing.T) {
	tb, err := NewSimTestbed(smallSpec(), SimOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb.Net.SetPodsetDown(0, 1, true)
	from := tb.Clock.Now()
	h, err := tb.HeatmapFor(0, from, from.Add(15*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	cls := h.Classify()
	if cls.Pattern.String() != "podset-down" || cls.Podset != 1 {
		t.Fatalf("pattern = %v podset %d", cls.Pattern, cls.Podset)
	}
}

func TestSimTestbedRepairService(t *testing.T) {
	tb, err := NewSimTestbed(smallSpec(), SimOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := tb.Top.ToRs(0)[0]
	tb.Net.AddBlackhole(bad, netsim.Blackhole{MatchFraction: 0.4})
	rs := tb.NewRepairService(5)
	action := autopilot.RepairAction{Kind: autopilot.RepairReload, Device: tb.Top.Switch(bad).Name, Reason: "test"}
	if err := rs.Execute(action); err != nil {
		t.Fatal(err)
	}
	if tb.Net.SwitchFaulty(bad) {
		t.Fatal("repair did not clear the black-hole")
	}
	action.Device = "no-such-device"
	if err := rs.Execute(action); err == nil {
		t.Fatal("repair on unknown device succeeded")
	}
}

func TestRealComponentsLoopback(t *testing.T) {
	// A miniature real deployment on loopback: controller over HTTP, a
	// probe server, and an agent probing through real sockets.
	top := SmallTestbed()
	ctrl, err := NewController(top, DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	ps, err := NewProbeServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	name := top.Server(0).Name
	a, err := NewRealAgent(name, top.Server(0).Addr, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.PeerCount() > 0 {
			return // pinglist fetched over real HTTP: the loop is closed
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("agent never fetched its pinglist")
}

func TestDefaultProfilesExposed(t *testing.T) {
	if got := len(DefaultProfiles()); got != 5 {
		t.Fatalf("DefaultProfiles = %d, want the paper's 5 DCs", got)
	}
}

func TestBuildTopologyExposed(t *testing.T) {
	top, err := BuildTopology(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if top.NumServers() != 18 {
		t.Fatalf("NumServers = %d", top.NumServers())
	}
}

func TestStandardWatchdogs(t *testing.T) {
	tb, err := NewSimTestbed(smallSpec(), SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ws, dm := tb.StandardWatchdogs(time.Minute)
	// Fresh testbed: pinglists exist but no data or SLA rows yet.
	ws.RunOnce()
	if dm.State("pingmesh-controller") != autopilot.Healthy {
		t.Fatal("controller watchdog failed on a healthy controller")
	}
	if dm.State("pingmesh-agents") == autopilot.Healthy {
		t.Fatal("data watchdog passed with no uploads")
	}
	// After a probing window plus analysis, everything is green.
	from := tb.Clock.Now()
	if err := tb.RunWindow(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := tb.Pipeline.RunTenMinute(from, tb.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	ws.RunOnce()
	for _, dev := range []string{"pingmesh-controller", "pingmesh-agents", "pingmesh-dsa"} {
		if dm.State(dev) != autopilot.Healthy {
			t.Fatalf("%s watchdog = %v after full window", dev, dm.State(dev))
		}
	}
	// The fleet-wide stop trips the controller watchdog.
	tb.Controller.Clear()
	ws.RunOnce()
	if dm.State("pingmesh-controller") == autopilot.Healthy {
		t.Fatal("controller watchdog missed cleared pinglists")
	}
}

func TestLocalizeSilentDropsEndToEnd(t *testing.T) {
	tb, err := NewSimTestbed(TopologySpec{DCs: []DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 3, LeavesPerPodset: 3, Spines: 4},
	}}, SimOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Clean fabric: nothing to localize.
	from := tb.Clock.Now()
	if err := tb.RunWindow(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	suspects, err := tb.LocalizeSilentDrops(from, tb.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 0 {
		t.Fatalf("clean fabric produced suspects: %v", suspects)
	}

	// Incident: one spine leaks 2%.
	spine := tb.Top.DCs[0].Spines[1]
	tb.Net.SetRandomDrop(spine, 0.02, true)
	from = tb.Clock.Now()
	if err := tb.RunWindow(time.Hour); err != nil {
		t.Fatal(err)
	}
	suspects, err = tb.LocalizeSilentDrops(from, tb.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) == 0 {
		t.Fatal("incident produced no suspects")
	}
	if suspects[0].Switch != spine {
		t.Fatalf("top suspect = %v, want %v", suspects[0].Switch, spine)
	}
}

func TestRunTimeline(t *testing.T) {
	tb, err := NewSimTestbed(smallSpec(), SimOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	spine := tb.Top.DCs[0].Spines[0]
	phases, err := tb.RunTimeline([]TimelineStep{
		{Name: "baseline", Duration: 20 * time.Minute},
		{Name: "incident", Duration: 20 * time.Minute, Mutate: func(tb *SimTestbed) {
			tb.Net.SetRandomDrop(spine, 0.02, true)
		}},
		{Name: "mitigated", Duration: 20 * time.Minute, Mutate: func(tb *SimTestbed) {
			tb.Net.IsolateSwitch(spine)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	base := phases[0].Stats.DropRate()
	incident := phases[1].Stats.DropRate()
	mitigated := phases[2].Stats.DropRate()
	if incident <= base*3 {
		t.Fatalf("incident drop rate %g not above baseline %g", incident, base)
	}
	if mitigated > incident/3 {
		t.Fatalf("mitigation did not recover: %g -> %g", incident, mitigated)
	}
	// Phases tile the clock.
	if !phases[1].From.Equal(phases[0].To) || !phases[2].From.Equal(phases[1].To) {
		t.Fatal("phase windows do not tile")
	}
	// Zero-duration steps are rejected.
	if _, err := tb.RunTimeline([]TimelineStep{{Name: "bad"}}); err == nil {
		t.Fatal("zero-duration step accepted")
	}
}
