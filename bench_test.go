package pingmesh

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment and reports its headline numbers as benchmark
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Paper-vs-measured tables are printed by
// cmd/experiments and recorded in EXPERIMENTS.md. Probe budgets here are
// chosen so the full bench run finishes in a few minutes; cmd/experiments
// uses larger defaults for sharper tails.

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"pingmesh/internal/experiments"
	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// BenchmarkFigure3AgentOverhead measures one agent probing ~2500 peers:
// Figure 3's CPU and memory footprint.
func BenchmarkFigure3AgentOverhead(b *testing.B) {
	var last *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(experiments.Options{Probes: 20000, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.PeakHeapMB, "heap_MB")
	b.ReportMetric(last.CPUPercent, "cpu_pct")
	b.ReportMetric(float64(last.Peers), "peers")
}

// BenchmarkFigure4aInterPodCDF regenerates the inter-pod latency
// distributions of DC1 vs DC2 (Figure 4(a)).
func BenchmarkFigure4aInterPodCDF(b *testing.B) {
	r := runFigure4(b)
	b.ReportMetric(us(r.DC1Inter.P50), "dc1_p50_us")
	b.ReportMetric(us(r.DC2Inter.P50), "dc2_p50_us")
	b.ReportMetric(us(r.DC1Inter.P90), "dc1_p90_us")
	b.ReportMetric(us(r.DC2Inter.P90), "dc2_p90_us")
}

// BenchmarkFigure4bHighPercentile regenerates the high-percentile tail
// (Figure 4(b)): DC1's P99.9/P99.99 far above DC2's.
func BenchmarkFigure4bHighPercentile(b *testing.B) {
	r := runFigure4(b)
	b.ReportMetric(us(r.DC1Inter.P999)/1000, "dc1_p999_ms")
	b.ReportMetric(us(r.DC2Inter.P999)/1000, "dc2_p999_ms")
	b.ReportMetric(us(r.DC1Inter.P9999)/1000, "dc1_p9999_ms")
	b.ReportMetric(us(r.DC2Inter.P9999)/1000, "dc2_p9999_ms")
}

// BenchmarkFigure4cIntraVsInterPod regenerates the intra- vs inter-pod
// comparison (Figure 4(c)).
func BenchmarkFigure4cIntraVsInterPod(b *testing.B) {
	r := runFigure4(b)
	b.ReportMetric(us(r.DC1Intra.P50), "intra_p50_us")
	b.ReportMetric(us(r.DC1Inter.P50), "inter_p50_us")
	b.ReportMetric(us(r.DC1Inter.P50-r.DC1Intra.P50), "gap_p50_us")
}

// BenchmarkFigure4dPayload regenerates the with/without-payload comparison
// (Figure 4(d)).
func BenchmarkFigure4dPayload(b *testing.B) {
	r := runFigure4(b)
	b.ReportMetric(us(r.DC1SYN.P50), "syn_p50_us")
	b.ReportMetric(us(r.DC1Payload.P50), "payload_p50_us")
	b.ReportMetric(us(r.DC1SYN.P99), "syn_p99_us")
	b.ReportMetric(us(r.DC1Payload.P99), "payload_p99_us")
}

func runFigure4(b *testing.B) *experiments.Figure4Result {
	b.Helper()
	var last *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(experiments.Options{Probes: 500_000, Seed: 101})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkTable1DropRates regenerates the intra-/inter-pod drop rates of
// the five DCs (Table 1), reported in units of 1e-5 like the paper's
// rows.
func BenchmarkTable1DropRates(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Options{Probes: 1_000_000, Seed: 102})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, dc := range last.DCs {
		b.ReportMetric(dc.IntraPod*1e5, dc.Name+"_intra_1e-5")
		b.ReportMetric(dc.InterPod*1e5, dc.Name+"_inter_1e-5")
	}
}

// BenchmarkFigure5ServiceSLA regenerates the one-week service SLA series
// (Figure 5): steady P99 with periodic data-sync bumps, flat drop rate.
func BenchmarkFigure5ServiceSLA(b *testing.B) {
	var last *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(experiments.Options{Probes: 1_000_000, Seed: 103})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(us(last.BaselineP99()), "baseline_p99_us")
	b.ReportMetric(us(last.SyncP99()), "sync_p99_us")
	b.ReportMetric(last.MeanDropRate()*1e5, "drop_1e-5")
}

// BenchmarkFigure6BlackholeDetection regenerates the detection-decay curve
// (Figure 6): black-holed ToR count drains under the 20-reloads/day cap.
func BenchmarkFigure6BlackholeDetection(b *testing.B) {
	var last *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(experiments.Options{Seed: 104}, experiments.Figure6Config{Days: 15})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Days[0].Detected), "day0_detected")
	b.ReportMetric(float64(last.Days[len(last.Days)-1].Detected), "final_detected")
	b.ReportMetric(float64(last.Days[0].Reloaded), "day0_reloaded")
}

// BenchmarkFigure7SilentSpineDrops regenerates the Spine silent-drop
// incident (Figure 7): drop-rate spike, traceroute localization, recovery
// on isolation.
func BenchmarkFigure7SilentSpineDrops(b *testing.B) {
	var last *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(experiments.Options{Probes: 900_000, Seed: 105})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Phase("baseline")*1e5, "baseline_1e-5")
	b.ReportMetric(last.Phase("incident")*1e5, "incident_1e-5")
	b.ReportMetric(last.Phase("isolated")*1e5, "isolated_1e-5")
	b.ReportMetric(boolMetric(last.Correct), "localized_ok")
}

// BenchmarkFigure8Patterns regenerates the four visualization patterns
// (Figure 8) and reports how many classified correctly.
func BenchmarkFigure8Patterns(b *testing.B) {
	var last *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(experiments.Options{Seed: 106})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	correct := 0
	for _, s := range last.Scenarios {
		if s.Got.Pattern == s.Expected {
			correct++
		}
	}
	b.ReportMetric(float64(correct), "patterns_correct_of_4")
}

// BenchmarkFanOut regenerates the §3.3.1 in-text fan-out claim at scale.
func BenchmarkFanOut(b *testing.B) {
	var last *experiments.FanOutResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.FanOut(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.MinPeers), "min_peers")
	b.ReportMetric(float64(last.MaxPeers), "max_peers")
}

func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// BenchmarkSimProbe measures the simulator's per-probe cost — the
// throughput floor of every experiment above.
func BenchmarkSimProbe(b *testing.B) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 5, ServersPerPod: 8, LeavesPerPodset: 4, Spines: 8},
	}})
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
	if err != nil {
		b.Fatal(err)
	}
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	rng := rand.New(rand.NewPCG(1, 2))
	start := time.Unix(1751328000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Probe(netsim.ProbeSpec{
			Src: src, Dst: dst,
			SrcPort: uint16(32768 + i%28000), DstPort: 8765,
			Start: start,
		}, rng)
	}
}

// BenchmarkPinglistGeneration measures the controller's full-fleet
// generation cost for a mid-size DC.
func BenchmarkPinglistGeneration(b *testing.B) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 5, PodsPerPodset: 20, ServersPerPod: 20, LeavesPerPodset: 4, Spines: 16},
	}})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultGeneratorConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generateAll(top, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(top.NumServers()), "servers")
}

// BenchmarkAblationECMP quantifies why the agent uses a fresh source port
// per probe: detection coverage of a lossy Spine with and without ECMP
// path variation.
func BenchmarkAblationECMP(b *testing.B) {
	var last *experiments.AblationECMPResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationECMP(experiments.Options{Probes: 256_000, Seed: 107})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.FreshPortDetection*100, "fresh_port_detect_pct")
	b.ReportMetric(last.FixedPortDetection*100, "fixed_port_detect_pct")
}

// BenchmarkAblationDropHeuristic compares the paper's drop-rate estimator
// against naive alternatives with a dead podset in the mix.
func BenchmarkAblationDropHeuristic(b *testing.B) {
	var last *experiments.AblationDropHeuristicResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDropHeuristic(experiments.Options{Probes: 600_000, Seed: 108})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.PaperHeuristic*1e5, "paper_1e-5")
	b.ReportMetric(last.NineCountsTwo*1e5, "ninecounts2_1e-5")
	b.ReportMetric(last.FailureRateAllProbes*1e5, "failures_1e-5")
}

// BenchmarkAblationSampling measures black-hole detection coverage as
// participation shrinks from all servers to one per pod (§6.1).
func BenchmarkAblationSampling(b *testing.B) {
	var last *experiments.AblationSamplingResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSampling(experiments.Options{Seed: 109})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(float64(row.Detected), fmt.Sprintf("detected_%dof4", row.ServersPerPod))
	}
}
