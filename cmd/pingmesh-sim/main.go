// Command pingmesh-sim runs a whole simulated Pingmesh deployment: it
// builds a multi-DC testbed, optionally injects a fault, replays a window
// of fleet probing through the storage and analysis pipeline, and prints
// the SLA table, any alerts, and the visualization heatmap with its
// pattern classification.
//
// Usage:
//
//	pingmesh-sim [-hours 1] [-fault none|blackhole|spine-drop|podset-down|podset-storm] [-svg out.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pingmesh"
	"pingmesh/internal/autopilot"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/dsa"
	"pingmesh/internal/netsim"
	"pingmesh/internal/reportdb"
	"pingmesh/internal/topology"
)

func main() {
	var (
		hours     = flag.Int("hours", 1, "simulated hours of probing")
		fault     = flag.String("fault", "none", "fault to inject: none, blackhole, spine-drop, podset-down, podset-storm")
		svg       = flag.String("svg", "", "write the heatmap as SVG to this path")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		topoPath  = flag.String("topology", "", "optional topology spec JSON (default: built-in 48-server DC)")
		debugAddr = flag.String("debug-addr", "", "serve pprof, /debug/trace, and /health on this address (empty = off)")
	)
	flag.Parse()

	spec := pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 4, LeavesPerPodset: 3, Spines: 6},
	}}
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		if err != nil {
			log.Fatalf("open topology: %v", err)
		}
		spec, err = topology.ReadSpec(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse topology: %v", err)
		}
	}
	tb, err := pingmesh.NewSimTestbed(spec, pingmesh.SimOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		dbg, err := debugsrv.Serve(*debugAddr, debugsrv.Config{Tracer: tb.Tracer})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s\n", dbg.Addr())
	}

	switch *fault {
	case "none":
	case "blackhole":
		// A type-1 (address-pattern) TCAM black-hole covering ~40% of the
		// pair space — the paper's most common kind (§5.1).
		tor := tb.Top.ToRs(0)[2]
		tb.Net.AddBlackhole(tor, netsim.Blackhole{MatchFraction: 0.4})
		fmt.Printf("injected: black-hole on %s\n", tb.Top.Switch(tor).Name)
	case "spine-drop":
		spine := tb.Top.DCs[0].Spines[0]
		tb.Net.SetRandomDrop(spine, 0.015, true)
		fmt.Printf("injected: 1.5%% silent random drop on %s\n", tb.Top.Switch(spine).Name)
	case "podset-down":
		tb.Net.SetPodsetDown(0, 1, true)
		fmt.Println("injected: podset 1 powered down")
	case "podset-storm":
		tb.Net.SetPodsetDegraded(0, 1, netsim.Degradation{ExtraLatencyMean: 12 * time.Millisecond})
		fmt.Println("injected: broadcast storm in podset 1")
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *fault)
		os.Exit(2)
	}

	from := tb.Clock.Now()
	fmt.Printf("running %dh of fleet probing (%d servers)...\n", *hours, tb.Top.NumServers())
	if err := tb.RunWindow(time.Duration(*hours) * time.Hour); err != nil {
		log.Fatal(err)
	}
	to := tb.Clock.Now()
	if err := tb.AnalyzeWindow(from, to); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- SLA --")
	rows, err := tb.DB().Query(dsa.TableSLA, reportdb.OrderBy("scope"))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%-14s probes=%-8d p50=%-10v p99=%-10v drop=%.2e fail=%.2e\n",
			r["scope"], r["probes"], r["p50"], r["p99"], r["drop_rate"], r["failure_rate"])
	}

	fmt.Println("\n-- alerts --")
	alerts := tb.Alerts()
	if len(alerts) == 0 {
		fmt.Println("(none)")
	}
	for _, a := range alerts {
		fmt.Println(a.String())
	}

	fmt.Println("\n-- black-hole candidates --")
	bh, _ := tb.DB().Query(dsa.TableBlackholes)
	if len(bh) == 0 {
		fmt.Println("(none)")
	}
	for _, r := range bh {
		fmt.Printf("%s score=%.2f\n", r["tor"], r["score"])
	}
	if len(bh) > 0 {
		// Auto-repair: reload the candidates under the daily budget, then
		// verify the fabric is clean.
		rs := tb.NewRepairService(20)
		for _, r := range bh {
			if err := rs.Execute(autopilot.RepairAction{
				Kind:   autopilot.RepairReload,
				Device: r["tor"].(string),
				Reason: "pingmesh black-hole detection",
			}); err != nil {
				fmt.Println("repair stopped:", err)
				break
			}
			fmt.Printf("auto-repair: reloaded %s\n", r["tor"])
		}
		if len(tb.Net.FaultySwitches()) == 0 {
			fmt.Println("fabric clean after repair")
		}
	}

	fmt.Println("\n-- heatmap --")
	h, err := tb.HeatmapFor(0, from, from.Add(30*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(h.RenderASCII())
	cls := h.Classify()
	fmt.Printf("pattern: %s", cls.Pattern)
	if cls.Podset >= 0 {
		fmt.Printf(" (podset %d)", cls.Podset)
	}
	fmt.Println()
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(h.RenderSVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svg)
	}
}
