// Command pingmesh-telemsim runs the telemetry-plane load harness: a
// large simulated agent fleet shipping PMT1 perfcounter reports into a
// real telemetry Collector, measuring ingest throughput, bytes per agent
// per reporting interval, and fleet-rollup latency at §3.5 scale. With
// -check it also verifies the fleet rollups bit-for-bit against exact
// shadow tallies.
//
// Usage:
//
//	pingmesh-telemsim [-agents 1000000] [-rounds 3] [-check] [-out BENCH_PR10.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pingmesh/internal/telemsim"
)

type outDoc struct {
	GeneratedAt string           `json:"generatedAt"`
	Telemetry   *telemsim.Report `json:"telemetry"`
}

func main() {
	var (
		agents   = flag.Int("agents", 1000000, "simulated agents")
		rounds   = flag.Int("rounds", 3, "reporting intervals to simulate")
		dcs      = flag.Int("dcs", 8, "DCs in the scope hierarchy")
		podsets  = flag.Int("podsets", 25, "podsets per DC")
		pods     = flag.Int("pods", 25, "pods per podset")
		interval = flag.Duration("interval", 5*time.Minute, "reporting interval (sim time)")
		obs      = flag.Int("obs", 32, "RTT observations per agent per round")
		dup      = flag.Float64("dup", 0.01, "probability a report is delivered twice")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		check    = flag.Bool("check", false, "verify fleet rollups against exact shadow tallies")
		out      = flag.String("out", "", "write the JSON report to this path (default stdout)")
	)
	flag.Parse()

	rep, err := telemsim.Run(telemsim.Config{
		Agents: *agents, Rounds: *rounds,
		DCs: *dcs, PodsetsPerDC: *podsets, PodsPerPodset: *pods,
		Interval: *interval, ObsPerHist: *obs, DupRate: *dup,
		Seed: *seed, Check: *check,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(os.Stderr,
		"telemsim: %d agents x %d rounds: %.0f reports/s, %.1f MB/s ingest, %.0f B/agent/interval (%.0f gz est), rollup avg %.1f ms, heap %.0f MB\n",
		rep.Agents, rep.Rounds, rep.ReportsPerSec, rep.IngestMBPerSec,
		rep.BytesPerAgentPerInterval, rep.GzipBytesPerAgentEst,
		rep.RollupAvgSec*1e3, rep.HeapMB)
	if *check {
		fmt.Fprintln(os.Stderr, "telemsim: check passed: fleet rollups bit-identical to exact tallies")
	}

	doc := outDoc{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Telemetry: rep}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
}
