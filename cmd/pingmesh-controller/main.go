// Command pingmesh-controller runs a Pingmesh Controller: it loads a
// network topology spec, generates a pinglist for every server, and serves
// them over the RESTful web API agents poll. Run several replicas behind a
// load-balanced VIP for fault tolerance (§3.3.2).
//
// Usage:
//
//	pingmesh-controller -topology topology.json -listen :8080 [-save-dir dir]
//
// The topology file is a JSON topology.Spec; see examples/quickstart for a
// generated one.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/metrics"
	"pingmesh/internal/topology"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "path to the topology spec JSON (required)")
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		saveDir   = flag.String("save-dir", "", "optionally persist generated pinglists to this directory")
		payload   = flag.Int("payload", 0, "add payload probe variants of this many bytes")
		debugAddr = flag.String("debug-addr", "", "serve pprof, /health, and /metrics on this address (empty = off)")
	)
	flag.Parse()
	if *topoPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatalf("open topology: %v", err)
	}
	spec, err := topology.ReadSpec(f)
	f.Close()
	if err != nil {
		log.Fatalf("parse topology: %v", err)
	}
	top, err := topology.Build(spec)
	if err != nil {
		log.Fatalf("build topology: %v", err)
	}

	cfg := core.DefaultGeneratorConfig()
	cfg.PayloadBytes = *payload
	ctrl, err := controller.New(top, cfg, nil)
	if err != nil {
		log.Fatalf("controller: %v", err)
	}
	if *saveDir != "" {
		if err := ctrl.SaveToDir(*saveDir); err != nil {
			log.Fatalf("save pinglists: %v", err)
		}
	}
	if *debugAddr != "" {
		exp := metrics.NewExposition()
		exp.Add("", ctrl.Metrics())
		dbg, err := debugsrv.Serve(*debugAddr, debugsrv.Config{Metrics: exp})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s\n", dbg.Addr())
	}
	fmt.Printf("pingmesh-controller: %d servers, %d pinglists, version %s, listening on %s\n",
		top.NumServers(), ctrl.PinglistCount(), ctrl.Version(), *listen)
	log.Fatal(http.ListenAndServe(*listen, ctrl.Handler()))
}
