// Command pingmesh-controller runs a Pingmesh Controller: it loads a
// network topology spec, generates a pinglist for every server, and serves
// them over the RESTful web API agents poll. Run several replicas behind a
// load-balanced VIP for fault tolerance (§3.3.2).
//
// Usage:
//
//	pingmesh-controller -topology topology.json -listen :8080 [-save-dir dir]
//
// The topology file is a JSON topology.Spec; see examples/quickstart for a
// generated one.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/metrics"
	"pingmesh/internal/telemetry"
	"pingmesh/internal/topology"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "path to the topology spec JSON (required)")
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		saveDir   = flag.String("save-dir", "", "optionally persist generated pinglists to this directory")
		payload   = flag.Int("payload", 0, "add payload probe variants of this many bytes")
		debugAddr = flag.String("debug-addr", "", "serve pprof, /health, /metrics, and /telemetry on this address (empty = off)")

		telemetryOn    = flag.Bool("telemetry", false, "mount the fleet telemetry collector on /telemetry/ (agent PMT1 reports)")
		telemetryEvery = flag.Duration("telemetry-sample", 5*time.Minute, "fleet rollup sampling interval")
	)
	flag.Parse()
	if *topoPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatalf("open topology: %v", err)
	}
	spec, err := topology.ReadSpec(f)
	f.Close()
	if err != nil {
		log.Fatalf("parse topology: %v", err)
	}
	top, err := topology.Build(spec)
	if err != nil {
		log.Fatalf("build topology: %v", err)
	}

	cfg := core.DefaultGeneratorConfig()
	cfg.PayloadBytes = *payload
	var col *telemetry.Collector
	if *telemetryOn {
		col = telemetry.NewCollector(telemetry.CollectorConfig{SampleInterval: *telemetryEvery})
		go col.Run(context.Background())
	}
	ctrl, err := controller.NewWithOptions(top, cfg, nil, controller.Options{Telemetry: col})
	if err != nil {
		log.Fatalf("controller: %v", err)
	}
	if *saveDir != "" {
		if err := ctrl.SaveToDir(*saveDir); err != nil {
			log.Fatalf("save pinglists: %v", err)
		}
	}
	if *debugAddr != "" {
		exp := metrics.NewExposition()
		exp.Add("", ctrl.Metrics())
		dcfg := debugsrv.Config{Metrics: exp}
		if col != nil {
			exp.Add("telemetry.", col.Metrics())
			dcfg.Series = col.Store()
		}
		dbg, err := debugsrv.Serve(*debugAddr, dcfg)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s\n", dbg.Addr())
	}
	fmt.Printf("pingmesh-controller: %d servers, %d pinglists, version %s, listening on %s\n",
		top.NumServers(), ctrl.PinglistCount(), ctrl.Version(), *listen)
	log.Fatal(http.ListenAndServe(*listen, ctrl.Handler()))
}
