// Command pingmesh-uploadsim measures the sketch-upload pipeline against
// the raw CSV pipeline on a synthetic fleet: every server's 10-minute
// window of probes is shipped both ways, and the JSON report (BENCH_PR8.json
// in CI) records the upload-byte reduction (plain and gzip), per-class
// P50/P99 deltas in histogram buckets, and SLA row parity through the
// sharded DSA fold path.
//
// Usage:
//
//	pingmesh-uploadsim -servers 2000 -peers 8 -out BENCH_PR8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pingmesh/internal/uploadsim"
)

func main() {
	servers := flag.Int("servers", 2000, "fleet size (rounded up to whole 1000-server podsets)")
	peers := flag.Int("peers", 8, "pinglist size per server")
	probes := flag.Int("probes-per-peer", 60, "probes per peer in the 10-minute window")
	flushes := flag.Int("flushes", 10, "upload flushes per window (the 1-minute cadence)")
	rawThreshold := flag.Duration("raw-threshold", time.Second, "RTT at or above which a record ships raw")
	extentSize := flag.Int("extent-size", 1<<20, "cosmos extent size in bytes")
	shards := flag.Int("shards", 2, "DSA shard count for the fold-path parity check")
	seed := flag.Int64("seed", 1, "record synthesizer seed")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	rep, err := uploadsim.Run(uploadsim.Config{
		Servers:          *servers,
		Peers:            *peers,
		ProbesPerPeer:    *probes,
		FlushesPerWindow: *flushes,
		RawThreshold:     *rawThreshold,
		ExtentSize:       *extentSize,
		Shards:           *shards,
		Seed:             *seed,
	}, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingmesh-uploadsim: %v\n", err)
		os.Exit(1)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingmesh-uploadsim: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pingmesh-uploadsim: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		logf("wrote %s", *out)
	}
}
