// Command pingmesh-foldsim measures the sharded incremental analysis tier
// against the legacy full re-scan on a synthetic million-server fleet:
// one 10-minute window of probe records is uploaded as sealed cosmos
// extents, then folded and cycled at each shard count. The JSON report
// (BENCH_PR7.json in CI) records fold throughput, cycle latency per shard
// count, steal counts, and the 20-minute-budget check.
//
// Usage:
//
//	pingmesh-foldsim -servers 1000000 -shards 1,2,4 -out BENCH_PR7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pingmesh/internal/foldsim"
)

func main() {
	servers := flag.Int("servers", 1_000_000, "fleet size (rounded up to whole 1000-server podsets)")
	perServer := flag.Int("records-per-server", 12, "probe records per server in the 10-minute window")
	extentSize := flag.Int("extent-size", 1<<20, "cosmos extent size in bytes")
	batch := flag.Int("batch", 512, "records per upload batch")
	foldBudget := flag.Int("fold-budget", 64, "extents folded per shard per background pass")
	shards := flag.String("shards", "1,2,4", "comma-separated shard counts to measure")
	seed := flag.Int64("seed", 1, "record synthesizer seed")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "pingmesh-foldsim: bad -shards entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	rep, err := foldsim.Run(foldsim.Config{
		Servers:          *servers,
		RecordsPerServer: *perServer,
		ExtentSize:       *extentSize,
		BatchRecords:     *batch,
		FoldBudget:       *foldBudget,
		Shards:           counts,
		Seed:             *seed,
	}, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingmesh-foldsim: %v\n", err)
		os.Exit(1)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingmesh-foldsim: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pingmesh-foldsim: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		logf("wrote %s", *out)
	}
}
