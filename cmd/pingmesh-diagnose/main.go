// Command pingmesh-diagnose runs a root-cause localization experiment on a
// simulated deployment: it injects two simultaneous faults — a silent
// random drop on a spine and a TCAM black-hole on a ToR — replays a window
// of fleet probing, and then asks the diagnosis subsystem to find them
// twice over:
//
//   - fleet-wide: the vote-based ranking over every probe's path must
//     surface both faulty switches at the top, and
//   - per-pair: the /diagnose assertion chain for an affected server pair
//     must pin the true hop via its TTL sweep.
//
// With -check the command exits non-zero unless both faults land in the
// ranking's top two AND each chain pins the right switch — the CI smoke
// and the EXPERIMENTS.md accuracy row both run it this way.
//
// Usage:
//
//	pingmesh-diagnose [-minutes 12] [-seed 1] [-json] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pingmesh"
	"pingmesh/internal/diagnosis"
	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

type report struct {
	Seed      uint64             `json:"seed"`
	Minutes   int                `json:"minutes"`
	Injected  []string           `json:"injected"`
	Observed  uint64             `json:"observed"`
	Failures  uint64             `json:"failures"`
	Ranking   []rankedSwitch     `json:"ranking"`
	Chains    []*diagnosis.Chain `json:"chains"`
	TopTwoHit bool               `json:"top_two_hit"`
	ChainsHit bool               `json:"chains_hit"`
}

type rankedSwitch struct {
	Switch   string  `json:"switch"`
	Score    float64 `json:"score"`
	Votes    float64 `json:"votes"`
	Coverage float64 `json:"coverage"`
}

func main() {
	var (
		minutes   = flag.Int("minutes", 12, "simulated minutes of fleet probing")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		spineDrop = flag.Float64("spine-drop", 0.05, "silent random drop rate injected on the spine")
		bhFrac    = flag.Float64("bh-fraction", 0.6, "header-space fraction the ToR black-hole covers")
		topN      = flag.Int("top", 8, "ranking entries to print")
		asJSON    = flag.Bool("json", false, "emit the report as JSON")
		check     = flag.Bool("check", false, "exit non-zero unless both faults are located")
	)
	flag.Parse()

	spec := pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 4, LeavesPerPodset: 3, Spines: 6},
	}}
	tb, err := pingmesh.NewSimTestbed(spec, pingmesh.SimOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	// Fault 1: silent random drop on a spine — hits cross-podset traffic
	// fleet-wide, but only the fraction of flows ECMP sends through it.
	spine := tb.Top.DCs[0].Spines[0]
	tb.Net.SetRandomDrop(spine, *spineDrop, true)
	// Fault 2: an address-pattern (type 1) black-hole on a ToR in another
	// podset — deterministic 100% drop for the matched pairs.
	tor := tb.Top.ToRs(0)[2]
	tb.Net.AddBlackhole(tor, netsim.Blackhole{MatchFraction: *bhFrac})

	spineName := tb.Top.Switch(spine).Name
	torName := tb.Top.Switch(tor).Name
	rep := report{
		Seed: *seed, Minutes: *minutes,
		Injected: []string{
			fmt.Sprintf("%s: silent random drop %.3f", spineName, *spineDrop),
			fmt.Sprintf("%s: black-hole fraction %.2f", torName, *bhFrac),
		},
	}

	if err := tb.RunWindow(time.Duration(*minutes) * time.Minute); err != nil {
		log.Fatal(err)
	}

	ranking := tb.Diag.Snapshot(*topN)
	rep.Observed, rep.Failures = ranking.Observed, ranking.Failures
	for _, c := range ranking.Candidates {
		rep.Ranking = append(rep.Ranking, rankedSwitch{
			Switch: tb.Top.Switch(c.Switch).Name,
			Score:  c.Score, Votes: c.Votes, Coverage: c.Coverage,
		})
	}
	rep.TopTwoHit = inTop(rep.Ranking, spineName, 2) && inTop(rep.Ranking, torName, 2)

	// Per-pair chains: a cross-podset pair for the spine (its path crosses
	// the spine layer), and a same-podset pair ending under the black-holed
	// ToR (its path never leaves the podset, so the chain must blame the
	// ToR, not the also-faulty spine). The black-hole matches only a
	// fraction of pairs, so scan the ToR's servers for a matched one.
	engine := tb.NewDiagnosisEngine()
	spineChain := engine.Diagnose(crossPodsetPair(tb.Top))
	rep.Chains = append(rep.Chains, spineChain)
	torChain := blackholeChain(tb.Top, engine, tor, torName)
	rep.Chains = append(rep.Chains, torChain)
	rep.ChainsHit = spineChain.PinnedHop == spineName &&
		torChain != nil && torChain.PinnedHop == torName

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			log.Fatal(err)
		}
	} else {
		printReport(&rep)
	}
	if *check && !(rep.TopTwoHit && rep.ChainsHit) {
		fmt.Fprintln(os.Stderr, "check failed: injected faults not located")
		os.Exit(1)
	}
}

// crossPodsetPair returns (src, dst, nil evidence) for a pair whose path
// crosses the spine layer: first server of podset 0 to first server of
// podset 1.
func crossPodsetPair(top *topology.Topology) (topology.ServerID, topology.ServerID, diagnosis.EvidenceSource) {
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	return src, dst, nil
}

// blackholeChain diagnoses same-podset pairs ending under the black-holed
// ToR until one chain pins it (the black-hole only matches a fraction of
// the address space), returning the last chain otherwise.
func blackholeChain(top *topology.Topology, engine *pingmesh.DiagnosisEngine, tor topology.SwitchID, torName string) *diagnosis.Chain {
	var victim *topology.Pod
	ps := -1
	for psi := range top.DCs[0].Podsets {
		for pi := range top.DCs[0].Podsets[psi].Pods {
			if top.DCs[0].Podsets[psi].Pods[pi].ToR == tor {
				victim = &top.DCs[0].Podsets[psi].Pods[pi]
				ps = psi
			}
		}
	}
	if victim == nil {
		return nil
	}
	srcPod := &top.DCs[0].Podsets[ps].Pods[0]
	if srcPod.ToR == tor {
		srcPod = &top.DCs[0].Podsets[ps].Pods[1]
	}
	var last *diagnosis.Chain
	for _, src := range srcPod.Servers {
		for _, dst := range victim.Servers {
			last = engine.Diagnose(src, dst, nil)
			if last.PinnedHop == torName {
				return last
			}
		}
	}
	return last
}

func inTop(ranking []rankedSwitch, name string, n int) bool {
	for i, c := range ranking {
		if i >= n {
			break
		}
		if c.Switch == name {
			return true
		}
	}
	return false
}

func printReport(rep *report) {
	fmt.Println("-- injected --")
	for _, s := range rep.Injected {
		fmt.Println(s)
	}
	fmt.Printf("\n-- probes --\nobserved=%d failures=%d\n", rep.Observed, rep.Failures)
	fmt.Println("\n-- vote ranking --")
	if len(rep.Ranking) == 0 {
		fmt.Println("(no failures: empty ranking)")
	}
	for i, c := range rep.Ranking {
		fmt.Printf("%2d. %-16s score=%.4f votes=%.1f coverage=%.0f\n",
			i+1, c.Switch, c.Score, c.Votes, c.Coverage)
	}
	fmt.Println("\n-- evidence chains --")
	for _, ch := range rep.Chains {
		if ch == nil {
			continue
		}
		fmt.Printf("%s -> %s: verdict=%s pinned=%s\n", ch.Src, ch.Dst, ch.Verdict, orDash(ch.PinnedHop))
		for _, st := range ch.Steps {
			fmt.Printf("    [%-4s] %-14s %s\n", st.Verdict, st.Assertion, st.Detail)
		}
	}
	fmt.Printf("\ntop-two ranking hit: %v\nchains pinned both:  %v\n", rep.TopTwoHit, rep.ChainsHit)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
