// Command pingmesh-agent runs a Pingmesh Agent on a real network: it
// starts the probe echo server, polls the controller for its pinglist, and
// probes its peers, writing results to a size-capped local CSV log
// (§3.4). Point -controller at the controller (or its SLB VIP).
//
// Usage:
//
//	pingmesh-agent -name DC1-ps00-pod00-s00 -source 10.0.0.1 \
//	    -controller http://controller:8080 -listen :8765 -log ./pingmesh.log
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pingmesh/internal/agent"
	"pingmesh/internal/controller"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/metrics"
	"pingmesh/internal/netlib"
	"pingmesh/internal/telemetry"
	"pingmesh/internal/trace"
)

// scopeFromName derives the rollup scope from a conventional server name:
// "DC1-ps00-pod00-s00" becomes "DC1.ps00.pod00". Names without the
// hierarchy fold into fleet-level rollups only.
func scopeFromName(name string) string {
	parts := strings.SplitN(name, "-", 4)
	if len(parts) < 4 {
		return ""
	}
	return strings.Join(parts[:3], ".")
}

func main() {
	var (
		name        = flag.String("name", "", "this server's name, as known to the controller (required)")
		source      = flag.String("source", "", "this server's IP address (required)")
		ctrlURL     = flag.String("controller", "", "controller base URL (required)")
		listen      = flag.String("listen", ":8765", "probe server listen address")
		logPath     = flag.String("log", "pingmesh.log", "local latency log path")
		logMax      = flag.Int64("log-max-bytes", 8<<20, "local log size cap")
		statsEvery  = flag.Duration("stats", time.Minute, "perf counter print interval")
		debugAddr   = flag.String("debug-addr", "", "serve pprof, /debug/trace, /health, and /metrics on this address (empty = off)")
		traceSample = flag.Uint64("trace-sample", 0, "trace 1 in N probes end to end (0 = off)")

		sketchUpload = flag.Bool("sketch-upload", false, "aggregate healthy probes into per-peer latency sketches and upload the binary format (requires an uploader)")
		gzipUpload   = flag.Bool("gzip-upload", false, "gzip upload batches on the wire (storage inflates before append)")
		rawThreshold = flag.Duration("raw-threshold", time.Second, "in sketch mode, RTT at or above which a record ships raw")

		telemetryURL   = flag.String("telemetry-url", "", "ship PMT1 perfcounter reports to this collector endpoint, e.g. <controller>/telemetry/report (empty = off)")
		telemetryScope = flag.String("telemetry-scope", "", "dot-separated DC.podset.pod scope for fleet rollups (default: derived from -name)")
		telemetryEvery = flag.Duration("telemetry-interval", 5*time.Minute, "perfcounter report interval")
	)
	flag.Parse()
	if *name == "" || *source == "" || *ctrlURL == "" {
		flag.Usage()
		os.Exit(2)
	}
	addr, err := netip.ParseAddr(*source)
	if err != nil {
		log.Fatalf("bad -source: %v", err)
	}

	// Every Pingmesh server answers probes, even when its own probing is
	// failed-closed.
	srv, err := netlib.NewTCPServer(*listen)
	if err != nil {
		log.Fatalf("probe server: %v", err)
	}
	defer srv.Close()

	localLog, err := agent.NewLocalLog(*logPath, *logMax)
	if err != nil {
		log.Fatalf("local log: %v", err)
	}
	defer localLog.Close()

	tracer := trace.Default()
	tracer.SetSampleEvery(*traceSample)
	a, err := agent.New(agent.Config{
		ServerName:   *name,
		SourceAddr:   addr,
		Controller:   &controller.Client{BaseURL: *ctrlURL},
		Prober:       agent.NewRealProber(25 * time.Second),
		LocalLog:     localLog,
		Tracer:       tracer,
		SketchUpload: *sketchUpload,
		GzipUploads:  *gzipUpload,
		RawThreshold: *rawThreshold,
	})
	if err != nil {
		log.Fatalf("agent: %v", err)
	}
	if *debugAddr != "" {
		exp := metrics.NewExposition()
		exp.Add("", a.Metrics())
		dbg, err := debugsrv.Serve(*debugAddr, debugsrv.Config{Tracer: tracer, Metrics: exp})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s\n", dbg.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *telemetryURL != "" {
		scope := *telemetryScope
		if scope == "" {
			scope = scopeFromName(*name)
		}
		sh := &telemetry.Shipper{
			URL: *telemetryURL, Src: *name, Scope: scope,
			Registry: a.Metrics(), Interval: *telemetryEvery,
		}
		go sh.Run(ctx)
		fmt.Printf("telemetry: shipping to %s every %v as scope %q\n", *telemetryURL, *telemetryEvery, scope)
	}
	go func() {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				snap := a.Metrics().Snapshot()
				fmt.Printf("peers=%d probes=%d failed=%d drop_rate=%.2e failed_closed=%v\n",
					a.PeerCount(),
					snap.Counters["agent.probes_total"],
					snap.Counters["agent.probes_failed"],
					a.DropRate(),
					a.FailedClosed())
			}
		}
	}()
	fmt.Printf("pingmesh-agent %s: probe server on %s, controller %s\n", *name, srv.Addr(), *ctrlURL)
	a.Run(ctx)
}
