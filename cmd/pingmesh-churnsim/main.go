// Command pingmesh-churnsim runs the control-plane churn harness: a large
// simulated agent fleet polling replicated controllers through a rolling
// topology update, measuring convergence time, bytes on the wire, the 304
// ratio, and controller CPU. In compare mode it runs the identical
// schedule twice — delta serving on and off — and reports how much
// cheaper the delta control plane distributes the update.
//
// Usage:
//
//	pingmesh-churnsim [-agents 1000000] [-replicas 2] [-mode compare] [-out BENCH_PR6.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pingmesh/internal/churnsim"
	"pingmesh/internal/core"
	"pingmesh/internal/topology"
)

// compareReport is the compare-mode output: both runs plus the headline
// ratios the delta control plane is graded on.
type compareReport struct {
	GeneratedAt string           `json:"generatedAt"`
	Delta       *churnsim.Report `json:"delta"`
	Full        *churnsim.Report `json:"full"`
	// UpdateWireRatio is full-body update bytes over delta update bytes,
	// gzip-negotiated — how much cheaper distributing the topology update
	// got.
	UpdateWireRatio     float64 `json:"updateWireRatio"`
	UpdateIdentityRatio float64 `json:"updateIdentityRatio"`
	PropagationRatio    float64 `json:"propagationWireRatio"`
}

func main() {
	var (
		agents   = flag.Int("agents", 1000000, "simulated agents")
		replicas = flag.Int("replicas", 2, "controller replicas")
		podsets  = flag.Int("podsets", 50, "DC1 podsets before the update (one more after)")
		pods     = flag.Int("pods", 10, "pods per podset in DC1")
		servers  = flag.Int("servers", 4, "servers per pod in DC1")
		interval = flag.Duration("interval", time.Minute, "agent fetch interval (sim time)")
		jitter   = flag.Float64("jitter", 0.5, "fetch jitter fraction")
		churn    = flag.Float64("churn", 0.01, "per-poll probability an agent leaves and rejoins")
		kill     = flag.Bool("kill", true, "kill one replica when the update publishes")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		mode     = flag.String("mode", "compare", "compare, delta, or full")
		out      = flag.String("out", "", "write the JSON report to this path (default stdout)")
	)
	flag.Parse()

	gen := core.DefaultGeneratorConfig()
	gen.PayloadBytes = 800
	gen.WithLowQoS = true
	gen.LowQoSPort = 8766

	spec := func(dc1Podsets int) topology.Spec {
		return topology.Spec{DCs: []topology.DCSpec{
			{Name: "DC1", Podsets: dc1Podsets, PodsPerPodset: *pods, ServersPerPod: *servers,
				LeavesPerPodset: 2, Spines: 16},
			{Name: "DC2", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
		}}
	}
	cfg := churnsim.Config{
		Base:          spec(*podsets),
		Updated:       spec(*podsets + 1),
		Gen:           gen,
		Agents:        *agents,
		Replicas:      *replicas,
		FetchInterval: *interval,
		FetchJitter:   *jitter,
		Churn:         *churn,
		KillReplica:   *kill,
		Seed:          *seed,
	}

	var result any
	switch *mode {
	case "delta", "full":
		cfg.DisableDelta = *mode == "full"
		rep, err := churnsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		result = rep
	case "compare":
		rep, err := churnsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("delta run: %d fetches, %d deltas, converged in %.1fs (sim), %.1fs wall",
			rep.Fetches, rep.DeltaFetches, rep.ConvergenceSec, rep.WallSec)
		cfg.DisableDelta = true
		full, err := churnsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("full run: %d fetches, converged in %.1fs (sim), %.1fs wall",
			full.Fetches, full.ConvergenceSec, full.WallSec)
		cr := &compareReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Delta:       rep,
			Full:        full,
		}
		if rep.UpdateBytesWire > 0 {
			cr.UpdateWireRatio = round2(float64(full.UpdateBytesWire) / float64(rep.UpdateBytesWire))
			cr.UpdateIdentityRatio = round2(float64(full.UpdateBytesIdentity) / float64(rep.UpdateBytesIdentity))
		}
		if rep.PropagationBytesWire > 0 {
			cr.PropagationRatio = round2(float64(full.PropagationBytesWire) / float64(rep.PropagationBytesWire))
		}
		log.Printf("update bytes on wire: full %dB vs delta %dB — %.1fx cheaper",
			full.UpdateBytesWire, rep.UpdateBytesWire, cr.UpdateWireRatio)
		result = cr
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}

	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
