// Command experiments regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured comparison tables. The -quick
// flag trades tail resolution for speed; the default budgets resolve
// P99.99 and 1e-5 drop rates.
//
// Usage:
//
//	experiments [-quick] [-only figure4,table1,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pingmesh/internal/experiments"
	"pingmesh/internal/viz"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced probe budgets (~10x faster, noisier tails)")
		only  = flag.String("only", "", "comma-separated subset: figure3,figure4,table1,figure5,figure6,figure7,figure8,fanout,qos,ablations")
	)
	flag.Parse()

	opts := experiments.Options{Seed: 20260704}
	if *quick {
		opts.Probes = 200_000
	}
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	runners := []struct {
		name string
		run  func() ([]experiments.Report, error)
	}{
		{"figure3", func() ([]experiments.Report, error) {
			r, err := experiments.Figure3(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"figure4", func() ([]experiments.Report, error) {
			r, err := experiments.Figure4(opts)
			if err != nil {
				return nil, err
			}
			fmt.Println("inter-pod latency CDF (log-x):")
			fmt.Print(viz.RenderCDF([]viz.CDFSeries{
				{Name: "DC1 inter-pod", Marker: '1', Points: r.DC1InterCDF},
				{Name: "DC2 inter-pod", Marker: '2', Points: r.DC2InterCDF},
			}, 72, 16))
			fmt.Println()
			return []experiments.Report{r.ReportA(), r.ReportB(), r.ReportC(), r.ReportD()}, nil
		}},
		{"table1", func() ([]experiments.Report, error) {
			r, err := experiments.Table1(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"figure5", func() ([]experiments.Report, error) {
			r, err := experiments.Figure5(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"figure6", func() ([]experiments.Report, error) {
			r, err := experiments.Figure6(opts, experiments.Figure6Config{})
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"figure7", func() ([]experiments.Report, error) {
			r, err := experiments.Figure7(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"figure8", func() ([]experiments.Report, error) {
			r, err := experiments.Figure8(opts)
			if err != nil {
				return nil, err
			}
			for _, s := range r.Scenarios {
				fmt.Printf("-- %s --\n%s\n", s.Name, s.ASCII)
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"fanout", func() ([]experiments.Report, error) {
			r, err := experiments.FanOut(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"qos", func() ([]experiments.Report, error) {
			r, err := experiments.QoSMonitoring(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{r.Report()}, nil
		}},
		{"limitations", func() ([]experiments.Report, error) {
			icw, err := experiments.LimitationICW(opts)
			if err != nil {
				return nil, err
			}
			scale, err := experiments.ScaleMath(opts)
			if err != nil {
				return nil, err
			}
			return []experiments.Report{icw.Report(), scale.Report()}, nil
		}},
		{"ablations", func() ([]experiments.Report, error) {
			var reps []experiments.Report
			ecmp, err := experiments.AblationECMP(opts)
			if err != nil {
				return nil, err
			}
			reps = append(reps, ecmp.Report())
			drop, err := experiments.AblationDropHeuristic(opts)
			if err != nil {
				return nil, err
			}
			reps = append(reps, drop.Report())
			sampling, err := experiments.AblationSampling(opts)
			if err != nil {
				return nil, err
			}
			reps = append(reps, sampling.Report())
			graph, err := experiments.AblationGraphDesign(opts)
			if err != nil {
				return nil, err
			}
			reps = append(reps, graph.Report())
			return reps, nil
		}},
	}

	ranAny := false
	for _, r := range runners {
		if !selected(r.name) {
			continue
		}
		ranAny = true
		start := time.Now()
		reports, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		for i := range reports {
			fmt.Println(reports[i].String())
		}
		fmt.Printf("(%s took %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "no experiment matched -only=%s\n", *only)
		os.Exit(2)
	}
}
