// Command pingmesh-dsa runs the analysis half of Pingmesh over latency
// record CSV files (agents' local logs or exported batches): it computes
// per-scope network SLAs with the drop-rate heuristic, fires threshold
// alerts, and — given the topology — runs black-hole detection (§3.5, §4,
// §5.1).
//
// With -shards N (requires -topology) the records instead flow through the
// sharded incremental DSA pipeline: they are uploaded into an in-process
// cosmos store, background fold passes spread the sealed extents across N
// analysis shards, and each 10-minute window is served by merging folded
// partials — the multi-shard quickstart for the full pipeline.
//
// Usage:
//
//	pingmesh-dsa -topology topology.json record1.csv record2.csv ...
//	pingmesh-dsa -topology topology.json -shards 4 record1.csv ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/blackhole"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/diagnosis"
	"pingmesh/internal/dsa"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
)

func main() {
	var (
		topoPath   = flag.String("topology", "", "topology spec JSON for scope/black-hole analysis (optional)")
		maxDrop    = flag.Float64("alert-drop", 1e-3, "drop rate alert threshold")
		maxP99     = flag.Duration("alert-p99", 5*time.Millisecond, "P99 latency alert threshold")
		shards     = flag.Int("shards", 0, "run the sharded incremental DSA pipeline with this many analysis shards (0 = flat analysis)")
		foldBudget = flag.Int("fold-budget", 32, "extents folded per shard per background pass in -shards mode")
		extentSize = flag.Int("extent-size", 256<<10, "in-process store extent size in -shards mode")
		debugAddr  = flag.String("debug-addr", "", "serve pprof on this address while the analysis runs (empty = off)")
		diagnose   = flag.Bool("diagnose", false, "rank root-cause suspect switches from failed probes (requires -topology)")
	)
	flag.Parse()
	if *debugAddr != "" {
		dbg, err := debugsrv.Serve(*debugAddr, debugsrv.Config{})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", dbg.Addr())
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pingmesh-dsa [-topology spec.json] file.csv...")
		os.Exit(2)
	}

	var recs []probe.Record
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("read %s: %v", path, err)
		}
		got, errs := probe.DecodeBatch(data)
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "%s: skipped %d corrupt rows\n", path, len(errs))
		}
		recs = append(recs, got...)
	}
	fmt.Printf("loaded %d records\n", len(recs))

	if *diagnose {
		if *topoPath == "" {
			log.Fatal("-diagnose requires -topology")
		}
		// No path resolver for CSV uploads: the collector attributes votes
		// over topology candidate stage sets.
		top := loadTopology(*topoPath)
		col := diagnosis.NewCollector(diagnosis.CollectorConfig{Top: top})
		col.ObserveBatch(recs)
		r := col.Snapshot(16)
		fmt.Printf("diagnosis: observed=%d failures=%d\n", r.Observed, r.Failures)
		if len(r.Candidates) == 0 {
			fmt.Println("diagnosis: no failures, empty ranking")
		}
		for i, c := range r.Candidates {
			fmt.Printf("%2d. %-20s score=%.4f votes=%.1f coverage=%.1f\n",
				i+1, top.Switch(c.Switch).Name, c.Score, c.Votes, c.Coverage)
		}
	}

	th := analysis.Thresholds{MaxDropRate: *maxDrop, MaxP99: *maxP99, MinProbes: 100}
	if *shards > 0 {
		if *topoPath == "" {
			log.Fatal("-shards requires -topology")
		}
		top := loadTopology(*topoPath)
		if err := runSharded(recs, top, *shards, *foldBudget, *extentSize, th); err != nil {
			log.Fatal(err)
		}
		return
	}

	// The headline SLA metric is the intra-DC SYN RTT; inter-DC WAN
	// latency is tracked separately so a 25ms WAN round trip does not
	// trip the 5ms intra-DC threshold (§3.5's separate inter-DC pipeline).
	overall := analysis.NewLatencyStats()
	interDC := analysis.NewLatencyStats()
	for i := range recs {
		if recs[i].Class == probe.InterDC {
			interDC.Add(&recs[i])
			continue
		}
		if recs[i].PayloadLen == 0 {
			overall.Add(&recs[i])
		}
	}
	s := overall.Summary()
	fmt.Printf("intra-dc: n=%d p50=%v p99=%v p99.9=%v drop_rate=%.2e failure_rate=%.2e\n",
		s.Count, s.P50, s.P99, s.P999, overall.DropRate(), overall.FailureRate())
	if interDC.Total() > 0 {
		fmt.Printf("inter-dc: n=%d p50=%v p99=%v drop_rate=%.2e\n",
			interDC.Total(), interDC.Percentile(0.5), interDC.Percentile(0.99), interDC.DropRate())
	}

	if a := analysis.Check("intra-dc", overall, th, time.Now()); a != nil {
		fmt.Println("ALERT:", a)
	}

	if *topoPath == "" {
		return
	}
	top := loadTopology(*topoPath)
	keyer := &analysis.Keyer{Top: top}

	// Per-DC SLA.
	byDC := map[string]*analysis.LatencyStats{}
	pairs := map[string]*analysis.LatencyStats{}
	for i := range recs {
		r := &recs[i]
		if r.Class == probe.InterDC {
			if key, ok := keyer.ServerPair(r); ok {
				st := pairs[key]
				if st == nil {
					st = analysis.NewLatencyStats()
					pairs[key] = st
				}
				st.Add(r)
			}
			continue
		}
		if key, ok := keyer.SrcDC(r); ok {
			st := byDC[key]
			if st == nil {
				st = analysis.NewLatencyStats()
				byDC[key] = st
			}
			st.Add(r)
		}
		if key, ok := keyer.ServerPair(r); ok {
			st := pairs[key]
			if st == nil {
				st = analysis.NewLatencyStats()
				pairs[key] = st
			}
			st.Add(r)
		}
	}
	var dcs []string
	for dc := range byDC {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	for _, dc := range dcs {
		st := byDC[dc]
		fmt.Printf("dc %s: n=%d p50=%v p99=%v drop_rate=%.2e\n",
			dc, st.Total(), st.Percentile(0.5), st.Percentile(0.99), st.DropRate())
		if a := analysis.Check("dc/"+dc, st, th, time.Now()); a != nil {
			fmt.Println("ALERT:", a)
		}
	}

	det := blackhole.Detect(top, pairs, blackhole.Config{})
	for _, c := range det.Candidates {
		fmt.Printf("black-hole candidate: %s score=%.2f\n", top.Switch(c.ToR).Name, c.Score)
	}
	for _, e := range det.Escalations {
		fmt.Printf("escalation: DC %s podset %d (fault above the ToR layer)\n", top.DCs[e.DC].Name, e.Podset)
	}
	if len(det.Candidates) == 0 && len(det.Escalations) == 0 {
		fmt.Println("black-hole detection: clean")
	}
}

func loadTopology(path string) *topology.Topology {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open topology: %v", err)
	}
	spec, err := topology.ReadSpec(f)
	f.Close()
	if err != nil {
		log.Fatalf("parse topology: %v", err)
	}
	top, err := topology.Build(spec)
	if err != nil {
		log.Fatalf("build topology: %v", err)
	}
	return top
}

// runSharded replays the loaded records through the sharded incremental
// DSA pipeline: upload into an in-process store, drain background fold
// passes, then serve every grid-aligned 10-minute window covering the
// records from the folded partials.
func runSharded(recs []probe.Record, top *topology.Topology, shards, foldBudget, extentSize int, th analysis.Thresholds) error {
	if len(recs) == 0 {
		return fmt.Errorf("no records to analyze")
	}
	minStart, maxStart := recs[0].Start, recs[0].Start
	for i := range recs {
		if recs[i].Start.Before(minStart) {
			minStart = recs[i].Start
		}
		if recs[i].Start.After(maxStart) {
			maxStart = recs[i].Start
		}
	}
	// The fold window grid anchors at the pipeline clock's start time;
	// truncating to the grid makes every replayed window grid-aligned.
	anchor := minStart.UTC().Truncate(10 * time.Minute)
	store, err := cosmos.NewStore(1, cosmos.Config{ExtentSize: extentSize, Replicas: 1})
	if err != nil {
		return err
	}
	const batch = 256
	for off := 0; off < len(recs); off += batch {
		end := off + batch
		if end > len(recs) {
			end = len(recs)
		}
		if err := store.Append("pingmesh/import", probe.EncodeBatch(recs[off:end])); err != nil {
			return err
		}
	}
	clock := simclock.NewSim(anchor)
	pipe, err := dsa.New(dsa.Config{
		Store: store, Top: top, Clock: clock,
		Thresholds: th, Shards: shards, FoldBudget: foldBudget,
	})
	if err != nil {
		return err
	}
	passes := 0
	for {
		pipe.FoldNow()
		passes++
		if pipe.MaxFoldBacklog() == 0 {
			break
		}
	}
	fmt.Printf("folded %d extents across %d shards in %d passes\n",
		store.NumExtents("pingmesh/import"), shards, passes)
	for w := anchor; w.Before(maxStart); w = w.Add(10 * time.Minute) {
		to := w.Add(10 * time.Minute)
		clock.AdvanceTo(to)
		if err := pipe.RunTenMinute(w, to); err != nil {
			return err
		}
	}
	rows, err := pipe.DB().Query(dsa.TableSLA)
	if err != nil {
		return err
	}
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("sla %v [%v, %v): n=%v p50=%v p99=%v drop_rate=%v failure_rate=%v",
			r["scope"], r["window_start"], r["window_end"], r["probes"],
			r["p50"], r["p99"], r["drop_rate"], r["failure_rate"]))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	alerts, err := pipe.DB().Query(dsa.TableAlerts)
	if err != nil {
		return err
	}
	for _, r := range alerts {
		fmt.Printf("ALERT %v at %v: %v\n", r["scope"], r["at"], r["reason"])
	}
	for _, lag := range pipe.ShardLags() {
		fmt.Printf("shard %d: folded=%d stolen=%d backlog=%d\n",
			lag.Shard, lag.Folded, lag.Stolen, lag.Backlog)
	}
	return nil
}
