// Command pingmesh-dsa runs the analysis half of Pingmesh over latency
// record CSV files (agents' local logs or exported batches): it computes
// per-scope network SLAs with the drop-rate heuristic, fires threshold
// alerts, and — given the topology — runs black-hole detection (§3.5, §4,
// §5.1).
//
// Usage:
//
//	pingmesh-dsa -topology topology.json record1.csv record2.csv ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/blackhole"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology spec JSON for scope/black-hole analysis (optional)")
		maxDrop   = flag.Float64("alert-drop", 1e-3, "drop rate alert threshold")
		maxP99    = flag.Duration("alert-p99", 5*time.Millisecond, "P99 latency alert threshold")
		debugAddr = flag.String("debug-addr", "", "serve pprof on this address while the analysis runs (empty = off)")
	)
	flag.Parse()
	if *debugAddr != "" {
		dbg, err := debugsrv.Serve(*debugAddr, debugsrv.Config{})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", dbg.Addr())
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pingmesh-dsa [-topology spec.json] file.csv...")
		os.Exit(2)
	}

	var recs []probe.Record
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("read %s: %v", path, err)
		}
		got, errs := probe.DecodeBatch(data)
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "%s: skipped %d corrupt rows\n", path, len(errs))
		}
		recs = append(recs, got...)
	}
	fmt.Printf("loaded %d records\n", len(recs))

	// The headline SLA metric is the intra-DC SYN RTT; inter-DC WAN
	// latency is tracked separately so a 25ms WAN round trip does not
	// trip the 5ms intra-DC threshold (§3.5's separate inter-DC pipeline).
	overall := analysis.NewLatencyStats()
	interDC := analysis.NewLatencyStats()
	for i := range recs {
		if recs[i].Class == probe.InterDC {
			interDC.Add(&recs[i])
			continue
		}
		if recs[i].PayloadLen == 0 {
			overall.Add(&recs[i])
		}
	}
	s := overall.Summary()
	fmt.Printf("intra-dc: n=%d p50=%v p99=%v p99.9=%v drop_rate=%.2e failure_rate=%.2e\n",
		s.Count, s.P50, s.P99, s.P999, overall.DropRate(), overall.FailureRate())
	if interDC.Total() > 0 {
		fmt.Printf("inter-dc: n=%d p50=%v p99=%v drop_rate=%.2e\n",
			interDC.Total(), interDC.Percentile(0.5), interDC.Percentile(0.99), interDC.DropRate())
	}

	th := analysis.Thresholds{MaxDropRate: *maxDrop, MaxP99: *maxP99, MinProbes: 100}
	if a := analysis.Check("intra-dc", overall, th, time.Now()); a != nil {
		fmt.Println("ALERT:", a)
	}

	if *topoPath == "" {
		return
	}
	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatalf("open topology: %v", err)
	}
	spec, err := topology.ReadSpec(f)
	f.Close()
	if err != nil {
		log.Fatalf("parse topology: %v", err)
	}
	top, err := topology.Build(spec)
	if err != nil {
		log.Fatalf("build topology: %v", err)
	}
	keyer := &analysis.Keyer{Top: top}

	// Per-DC SLA.
	byDC := map[string]*analysis.LatencyStats{}
	pairs := map[string]*analysis.LatencyStats{}
	for i := range recs {
		r := &recs[i]
		if r.Class == probe.InterDC {
			if key, ok := keyer.ServerPair(r); ok {
				st := pairs[key]
				if st == nil {
					st = analysis.NewLatencyStats()
					pairs[key] = st
				}
				st.Add(r)
			}
			continue
		}
		if key, ok := keyer.SrcDC(r); ok {
			st := byDC[key]
			if st == nil {
				st = analysis.NewLatencyStats()
				byDC[key] = st
			}
			st.Add(r)
		}
		if key, ok := keyer.ServerPair(r); ok {
			st := pairs[key]
			if st == nil {
				st = analysis.NewLatencyStats()
				pairs[key] = st
			}
			st.Add(r)
		}
	}
	var dcs []string
	for dc := range byDC {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	for _, dc := range dcs {
		st := byDC[dc]
		fmt.Printf("dc %s: n=%d p50=%v p99=%v drop_rate=%.2e\n",
			dc, st.Total(), st.Percentile(0.5), st.Percentile(0.99), st.DropRate())
		if a := analysis.Check("dc/"+dc, st, th, time.Now()); a != nil {
			fmt.Println("ALERT:", a)
		}
	}

	det := blackhole.Detect(top, pairs, blackhole.Config{})
	for _, c := range det.Candidates {
		fmt.Printf("black-hole candidate: %s score=%.2f\n", top.Switch(c.ToR).Name, c.Score)
	}
	for _, e := range det.Escalations {
		fmt.Printf("escalation: DC %s podset %d (fault above the ToR layer)\n", top.DCs[e.DC].Name, e.Podset)
	}
	if len(det.Candidates) == 0 && len(det.Escalations) == 0 {
		fmt.Println("black-hole detection: clean")
	}
}
