// Command pingmesh-portal serves the read-side portal against a live
// simulated fleet: a background loop keeps probing simulated windows and
// running the DSA pipeline, and every completed cycle republishes the
// portal's snapshot. Point a browser (or curl) at the address and explore:
//
//	GET /              service index: epoch, scopes, heatmaps, endpoints
//	GET /sla           latest SLA for every scope
//	GET /sla/dc/DC1    one scope (also pod/..., podset/..., service/...)
//	GET /heatmap/DC1   pod-pair matrix + Figure 8 pattern (add .svg to draw)
//	GET /alerts        recent SLA violations, newest first
//	GET /triage?src=dc1-ps0-pod0-s0&dst=dc1-ps2-pod1-s1
//	GET /metrics       Prometheus text exposition
//
// Usage:
//
//	pingmesh-portal [-addr :8080] [-window 30m] [-interval 2s]
//	                [-fault none|spine-degrade|podset-down|podset-storm] [-fault-after 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"pingmesh"
	"pingmesh/internal/debugsrv"
	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		window     = flag.Duration("window", 30*time.Minute, "simulated probing window per cycle")
		interval   = flag.Duration("interval", 2*time.Second, "real time between simulated cycles")
		fault      = flag.String("fault", "none", "fault to inject: none, spine-degrade, podset-down, podset-storm")
		faultAfter = flag.Int("fault-after", 2, "inject the fault after this many cycles")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		topoPath   = flag.String("topology", "", "optional topology spec JSON (default: built-in 36-server DC)")
		debugAddr  = flag.String("debug-addr", "", "serve pprof, /debug/trace, and /health on this address (empty = off)")
	)
	flag.Parse()

	spec := pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 3, LeavesPerPodset: 3, Spines: 6},
	}}
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		if err != nil {
			log.Fatalf("open topology: %v", err)
		}
		spec, err = topology.ReadSpec(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse topology: %v", err)
		}
	}
	tb, err := pingmesh.NewSimTestbed(spec, pingmesh.SimOptions{
		Seed: *seed,
		// Testbed cells aggregate few server pairs; lower the per-cell floor
		// so heatmaps fill in within one window.
		HeatmapMinProbes: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := tb.NewPortal()
	if *debugAddr != "" {
		dbg, err := debugsrv.Serve(*debugAddr, debugsrv.Config{Tracer: tb.Tracer})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug server on http://%s", dbg.Addr())
	}

	go func() {
		for cycle := 0; ; cycle++ {
			if cycle == *faultAfter {
				injectFault(tb, *fault)
			}
			from := tb.Clock.Now()
			if err := tb.RunWindow(*window); err != nil {
				log.Fatalf("run window: %v", err)
			}
			if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
				log.Fatalf("analyze window: %v", err)
			}
			log.Printf("cycle %d: simulated %v, epoch %d published", cycle, *window, p.Epoch())
			time.Sleep(*interval)
		}
	}()

	log.Printf("pingmesh-portal: %d servers, serving on %s", tb.Top.NumServers(), *addr)
	log.Fatal(http.ListenAndServe(*addr, p.Handler()))
}

func injectFault(tb *pingmesh.SimTestbed, fault string) {
	switch fault {
	case "none":
	case "spine-degrade":
		tb.Net.SetTierDegraded(0, pingmesh.TierSpine, netsim.Degradation{ExtraLatencyMean: 10 * time.Millisecond})
		log.Println("injected: spine tier degraded (+10ms)")
	case "podset-down":
		tb.Net.SetPodsetDown(0, 1, true)
		log.Println("injected: podset 1 powered down")
	case "podset-storm":
		tb.Net.SetPodsetDegraded(0, 1, netsim.Degradation{ExtraLatencyMean: 12 * time.Millisecond})
		log.Println("injected: broadcast storm in podset 1")
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", fault)
		os.Exit(2)
	}
}
