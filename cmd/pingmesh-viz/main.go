// Command pingmesh-viz renders the Pingmesh visualization (§6.3) from
// latency record CSV files: the pod-pair P99 heatmap of one DC, as ASCII
// and optionally SVG, with automatic pattern classification.
//
// Usage:
//
//	pingmesh-viz -topology topology.json [-dc 0] [-svg out.svg] records.csv...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pingmesh/internal/analysis"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
	"pingmesh/internal/viz"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology spec JSON (required)")
		dc        = flag.Int("dc", 0, "DC index to render")
		svgPath   = flag.String("svg", "", "write SVG here")
		minProbes = flag.Uint64("min-probes", 5, "per-cell probe floor")
	)
	flag.Parse()
	if *topoPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pingmesh-viz -topology spec.json [-dc N] records.csv...")
		os.Exit(2)
	}
	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatalf("open topology: %v", err)
	}
	spec, err := topology.ReadSpec(f)
	f.Close()
	if err != nil {
		log.Fatalf("parse topology: %v", err)
	}
	top, err := topology.Build(spec)
	if err != nil {
		log.Fatalf("build topology: %v", err)
	}
	if *dc < 0 || *dc >= len(top.DCs) {
		log.Fatalf("DC index %d out of range (fleet has %d DCs)", *dc, len(top.DCs))
	}

	keyer := &analysis.Keyer{Top: top}
	groups := map[string]*analysis.LatencyStats{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("read %s: %v", path, err)
		}
		recs, errs := probe.DecodeBatch(data)
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "%s: skipped %d corrupt rows\n", path, len(errs))
		}
		for i := range recs {
			key, ok := keyer.PodPair(&recs[i])
			if !ok {
				continue
			}
			st := groups[key]
			if st == nil {
				st = analysis.NewLatencyStats()
				groups[key] = st
			}
			st.Add(&recs[i])
		}
	}

	h := viz.BuildHeatmap(top, *dc, groups, *minProbes)
	fmt.Print(h.RenderASCII())
	cls := h.Classify()
	fmt.Printf("pattern: %s", cls.Pattern)
	if cls.Podset >= 0 {
		fmt.Printf(" (podset %d)", cls.Podset)
	}
	fmt.Println()
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(h.RenderSVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
}
