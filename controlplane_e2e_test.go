package pingmesh

// End-to-end control-plane failover test: two real Controller replicas —
// deterministic generation makes them byte-identical — behind a real slb
// VIP, with a fleet of controller.Clients in a fast refresh storm. One
// replica is killed right as a topology update publishes. The SLB health
// prober must eject the dead replica (observed via OnStateChange), every
// client must converge to the new generation within one refresh interval,
// and no client may ever observe a version outside the two generations in
// play.

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/simclock"
	"pingmesh/internal/slb"
	"pingmesh/internal/topology"
)

func TestControlPlaneReplicaFailover(t *testing.T) {
	top := topology.SmallTestbed()
	// One sim clock for both replicas: identical Generated timestamps keep
	// the marshaled pinglists — and so the ETags — byte-identical, which
	// is what lets clients revalidate seamlessly across replicas.
	clock := simclock.NewSim(time.Unix(1751328000, 0))
	var replicas [2]*controller.Controller
	var servers [2]*httptest.Server
	for i := range replicas {
		c, err := controller.New(top, core.DefaultGeneratorConfig(), clock)
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = c
		servers[i] = httptest.NewServer(c.Handler())
		defer servers[i].Close()
	}
	if replicas[0].ETag(top.Server(0).Name) != replicas[1].ETag(top.Server(0).Name) {
		t.Fatal("replicas not byte-identical")
	}

	// VIP in front of both replicas, with the state-change hook recording
	// the prober's failover decision.
	type transition struct {
		addr    string
		healthy bool
	}
	var tmu sync.Mutex
	var transitions []transition
	backendAddr := func(i int) string { return servers[i].Listener.Addr().String() }
	lb, err := slb.New("127.0.0.1:0", []string{backendAddr(0), backendAddr(1)}, slb.Options{
		HealthInterval: 20 * time.Millisecond,
		DialTimeout:    time.Second,
		OnStateChange: func(addr string, healthy bool) {
			tmu.Lock()
			transitions = append(transitions, transition{addr, healthy})
			tmu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	// The refresh storm: clients polling through the VIP every 10ms.
	const numClients = 40
	const refreshInterval = 10 * time.Millisecond
	names := top.Servers()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		converged [numClients]atomic.Bool
		vmu       sync.Mutex
		versions  = map[string]bool{}
		fetchOK   atomic.Int64
		wg        sync.WaitGroup
		targetVer = "gen-2"
		baseURL   = "http://" + lb.Addr().String()
	)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &controller.Client{
				BaseURL: baseURL,
				// Keep retry waits shorter than the storm's cadence.
				BackoffBase: 10 * time.Millisecond,
				BackoffMax:  50 * time.Millisecond,
			}
			name := names[i%len(names)].Name
			ticker := time.NewTicker(refreshInterval)
			defer ticker.Stop()
			for {
				res, err := cl.FetchDetail(ctx, name)
				if err == nil && res.File != nil {
					fetchOK.Add(1)
					vmu.Lock()
					versions[res.File.Version] = true
					vmu.Unlock()
					converged[i].Store(res.File.Version == targetVer)
				}
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
			}
		}(i)
	}

	// Let the storm reach steady state (every client has gen-1).
	waitFor(t, 5*time.Second, "storm warm-up", func() bool {
		return fetchOK.Load() >= numClients
	})

	// Publish gen-2 on both replicas, then kill replica 0 mid-storm.
	for _, c := range replicas {
		if err := c.UpdateTopology(top); err != nil {
			t.Fatal(err)
		}
	}
	servers[0].Close()

	// Every client must converge to gen-2 within one refresh interval's
	// worth of polling plus failover slack.
	waitFor(t, 5*time.Second, "fleet convergence to gen-2", func() bool {
		for i := range converged {
			if !converged[i].Load() {
				return false
			}
		}
		return true
	})
	cancel()
	wg.Wait()

	// The prober must have ejected exactly the killed replica.
	waitFor(t, 5*time.Second, "SLB ejects dead replica", func() bool {
		h := lb.HealthyBackends()
		return len(h) == 1 && h[0] == backendAddr(1)
	})
	tmu.Lock()
	sawDown := false
	for _, tr := range transitions {
		if tr.addr == backendAddr(0) && !tr.healthy {
			sawDown = true
		}
		if tr.addr == backendAddr(1) && !tr.healthy {
			t.Errorf("healthy replica reported down: %+v", transitions)
		}
	}
	tmu.Unlock()
	if !sawDown {
		t.Error("OnStateChange never reported the killed replica down")
	}

	// Zero wrong-generation reads: only the two generations in play.
	vmu.Lock()
	defer vmu.Unlock()
	for v := range versions {
		if v != "gen-1" && v != "gen-2" {
			t.Errorf("client observed wrong generation %q (saw %v)", v, versions)
		}
	}
	if !versions["gen-1"] || !versions["gen-2"] {
		t.Errorf("storm did not span both generations: %v", versions)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
