package pingmesh

// End-to-end tests for the "who watches Pingmesh" layer: one sampled
// probe traced through every pipeline stage (agent scheduling, the real
// network library, CSV encode, Cosmos upload, SCOPE ingest, the DSA
// cycle, portal publish), and the staleness watchdog paging when the
// analysis half of the pipeline freezes while data keeps flowing.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"net/netip"

	"pingmesh/internal/agent"
	"pingmesh/internal/autopilot"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/dsa"
	"pingmesh/internal/netlib"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/portal"
	"pingmesh/internal/topology"
	"pingmesh/internal/trace"
)

// httpGet fetches a URL and returns the response plus its body.
func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return res, body
}

// fetcherFunc adapts a closure to the agent's pinglist Fetcher.
type fetcherFunc func(ctx context.Context, server string) (*pinglist.File, error)

func (f fetcherFunc) Fetch(ctx context.Context, server string) (*pinglist.File, error) {
	return f(ctx, server)
}

// TestE2ETraceAcrossPipeline samples every probe and follows one trace ID
// from the agent's scheduler all the way to the portal's published
// snapshot: probe -> netprobe -> encode -> upload -> ingest -> scope-job
// -> dsa-cycle -> publish, then reads the same spans back over
// GET /debug/trace.
func TestE2ETraceAcrossPipeline(t *testing.T) {
	tracer := trace.New(nil) // wall clock: the probes hit a real socket
	tracer.SetSampleEvery(1)

	srv, err := netlib.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 1, PodsPerPodset: 2, ServersPerPod: 2, LeavesPerPodset: 2, Spines: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	store, err := cosmos.NewStore(3, cosmos.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// One peer: the local echo server, probed over real TCP.
	lists := fetcherFunc(func(ctx context.Context, server string) (*pinglist.File, error) {
		return &pinglist.File{
			Server:    server,
			Generated: time.Now(),
			Version:   "v1",
			Peers: []pinglist.Peer{{
				Addr:        "127.0.0.1",
				Port:        srv.Port(),
				Class:       "intra-dc",
				Proto:       "tcp",
				QoS:         "high",
				IntervalSec: 1,
			}},
		}, nil
	})
	a, err := agent.New(agent.Config{
		ServerName: "s0",
		SourceAddr: netip.MustParseAddr("127.0.0.1"),
		Controller: lists,
		Prober:     agent.NewRealProber(5 * time.Second),
		Uploader:   &cosmos.Client{Store: store, Stream: cosmos.DailyStream("pingmesh")},
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	windowFrom := time.Now().Add(-time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.Run(ctx)
		close(done)
	}()
	waitUntil(t, func() bool {
		return a.Metrics().Snapshot().Counters["agent.probes_ok"] >= 1
	}, "agent probed the local echo server")
	cancel()
	<-done // Run's final flush uploads the buffered records

	ids := tracer.ActiveProbeIDs()
	if len(ids) == 0 {
		t.Fatal("no traced probes in flight after upload")
	}
	tid := ids[0]

	// Analysis half on the same tracer; the portal republishes per cycle
	// exactly as the testbed wires it, so publish spans see the in-flight
	// probe table before the cycle completes it.
	pipe, err := dsa.New(dsa.Config{Store: store, Top: top, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	p := portal.New(portal.Config{Pipeline: pipe, Top: top, Tracer: tracer})
	pipe.SetOnCycle(func(kind string, from, to time.Time) { p.Refresh() })
	if err := pipe.RunTenMinute(windowFrom, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	spans := tracer.TraceSpans(tid)
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Stage] = true
	}
	for _, stage := range []string{"probe", "netprobe", "encode", "upload", "ingest", "scope-job", "dsa-cycle", "publish"} {
		if !seen[stage] {
			t.Errorf("trace %s missing stage %q (got %v)", trace.FormatTraceID(tid), stage, seen)
		}
	}
	// Spans come back ordered by start time; the probe itself is first.
	if len(spans) == 0 || spans[0].Stage != "probe" {
		t.Fatalf("first span = %+v, want the agent's probe span", spans)
	}

	// The cycle completed the probe: the in-flight table must drain so the
	// ingest fast path goes back to one atomic load.
	if tracer.HasActiveProbes() {
		t.Error("probe table not drained after the DSA cycle completed")
	}

	// The same trace is dumpable over the portal's debug endpoint.
	hs := httptest.NewServer(p.Handler())
	defer hs.Close()
	res, body := httpGet(t, hs.URL+"/debug/trace?trace="+trace.FormatTraceID(tid))
	if res.StatusCode != 200 {
		t.Fatalf("/debug/trace status = %d", res.StatusCode)
	}
	var dumped []trace.SpanDump
	if err := json.Unmarshal(body, &dumped); err != nil {
		t.Fatalf("bad /debug/trace JSON: %v", err)
	}
	if len(dumped) != len(spans) {
		t.Fatalf("/debug/trace returned %d spans, tracer has %d", len(dumped), len(spans))
	}
	res, body = httpGet(t, hs.URL+"/debug/trace")
	if res.StatusCode != 200 {
		t.Fatalf("full dump status = %d", res.StatusCode)
	}
	var dump trace.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("bad full dump JSON: %v", err)
	}
	rings := map[string]bool{}
	for _, r := range dump.Rings {
		rings[r.Component] = true
	}
	for _, c := range []string{"agent", "netlib", "scope", "dsa", "portal"} {
		if !rings[c] {
			t.Errorf("dump missing component ring %q", c)
		}
	}
}

// TestE2EStalenessWatchdogFiresAndRecovers freezes the analysis half of
// the pipeline while simulated probing keeps uploading: the
// pingmesh-stale watchdog must page, /health must flip to degraded (503),
// and both must recover once analysis runs again (§3.5 freshness budget).
func TestE2EStalenessWatchdogFiresAndRecovers(t *testing.T) {
	tb, err := NewSimTestbed(TopologySpec{DCs: []DCSpec{
		{Name: "DC1", Podsets: 1, PodsPerPodset: 2, ServersPerPod: 2, LeavesPerPodset: 2, Spines: 2},
	}}, SimOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := tb.NewPortal()
	ws, dm := tb.StandardWatchdogs(time.Minute)

	health := func() (int, trace.Health) {
		t.Helper()
		rec := httptest.NewRecorder()
		p.ServeHealth(rec, httptest.NewRequest("GET", "/health", nil))
		var h trace.Health
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			t.Fatalf("bad /health JSON: %v", err)
		}
		return rec.Code, h
	}

	// Healthy cycle: probe, analyze, publish.
	from := tb.Clock.Now()
	if err := tb.RunWindow(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	ws.RunOnce()
	if err := ws.Status()[autopilot.StalenessWatchdogName]; err != nil {
		t.Fatalf("healthy pipeline paged: %v", err)
	}
	if code, h := health(); code != 200 || h.Status != "ok" {
		t.Fatalf("healthy /health = %d %q", code, h.Status)
	}

	// Freeze the DSA: 30 more minutes of probing advance the clock past
	// the 20-minute Cosmos/SCOPE budget, but no analysis cycle runs.
	if err := tb.RunWindow(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	ws.RunOnce()
	werr := ws.Status()[autopilot.StalenessWatchdogName]
	if werr == nil {
		t.Fatal("stalled pipeline did not page")
	}
	if !errors.Is(werr, trace.ErrStale) {
		t.Fatalf("watchdog error = %v, want ErrStale", werr)
	}
	if s := dm.State(autopilot.StalenessDevice); s == autopilot.Healthy {
		t.Fatalf("device manager still reports %s healthy", autopilot.StalenessDevice)
	}
	code, h := health()
	if code != 503 || h.Status != "degraded" {
		t.Fatalf("stalled /health = %d %q, want 503 degraded", code, h.Status)
	}
	staleDSA := false
	for _, s := range h.Stages {
		if s.Stage == "dsa-cycle" && s.Stale {
			staleDSA = true
		}
	}
	if !staleDSA {
		t.Fatalf("degraded health does not name the dsa-cycle stage: %+v", h.Stages)
	}

	// Thaw: one analysis cycle over the backlog clears the page.
	if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	ws.RunOnce()
	if err := ws.Status()[autopilot.StalenessWatchdogName]; err != nil {
		t.Fatalf("recovered pipeline still paging: %v", err)
	}
	if s := dm.State(autopilot.StalenessDevice); s != autopilot.Healthy {
		t.Fatalf("device not cleared after recovery: %v", s)
	}
	if code, h := health(); code != 200 || h.Status != "ok" {
		t.Fatalf("recovered /health = %d %q", code, h.Status)
	}
}
