// Blackhole: inject ToR packet black-holes, watch Pingmesh detect them
// from latency data alone, and let auto-repair reload the switches within
// the daily budget (§5.1).
//
// The scenario: three ToRs develop TCAM corruption (one of them the
// port-sensitive type-2 kind). Their own counters show nothing — the
// drops are deterministic and silent. The daily black-hole job scores
// every ToR by the fraction of its servers showing the "can't reach some
// peers that everyone else reaches" symptom, reloads the candidates, and
// the fleet goes clean.
//
// Run with:
//
//	go run ./examples/blackhole
package main

import (
	"fmt"
	"log"
	"time"

	"pingmesh"
	"pingmesh/internal/blackhole"
	"pingmesh/internal/netsim"
)

func main() {
	var detections []pingmesh.Detection
	tb, err := pingmesh.NewSimTestbed(pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 4, LeavesPerPodset: 3, Spines: 6},
	}}, pingmesh.SimOptions{
		Seed:        7,
		OnDetection: func(d pingmesh.Detection) { detections = append(detections, d) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three ToRs develop black-holes: two address-based (type 1), one
	// port-sensitive (type 2).
	bad := []pingmesh.SwitchID{tb.Top.ToRs(0)[1], tb.Top.ToRs(0)[6], tb.Top.ToRs(0)[9]}
	tb.Net.AddBlackhole(bad[0], netsim.Blackhole{MatchFraction: 0.4})
	tb.Net.AddBlackhole(bad[1], netsim.Blackhole{MatchFraction: 0.35})
	tb.Net.AddBlackhole(bad[2], netsim.Blackhole{MatchFraction: 0.45, IncludePorts: true})
	for _, sw := range bad {
		fmt.Printf("injected black-hole on %s\n", tb.Top.Switch(sw).Name)
	}

	// A probing window feeds the daily job.
	from := tb.Clock.Now()
	fmt.Println("\nday 1: fleet probes for an hour (scaled), daily job runs...")
	if err := tb.RunWindow(time.Hour); err != nil {
		log.Fatal(err)
	}
	if err := tb.Pipeline.RunDaily(from, tb.Clock.Now()); err != nil {
		log.Fatal(err)
	}
	if len(detections) == 0 {
		log.Fatal("no detection produced")
	}
	det := detections[len(detections)-1]
	fmt.Printf("detector flagged %d ToRs:\n", len(det.Candidates))
	for _, c := range det.Candidates {
		fmt.Printf("  %s score=%.2f (fraction of its servers showing the symptom)\n",
			tb.Top.Switch(c.ToR).Name, c.Score)
	}

	// Auto-repair: reload the candidates, at most 20 per day.
	rs := tb.NewRepairService(20)
	reloaded := blackhole.Repair(det, tb.Top, rs)
	fmt.Printf("auto-repair reloaded %d switches (budget %d/day)\n", reloaded, 20)
	for _, h := range rs.History() {
		fmt.Printf("  %s %s: %s\n", h.Action.Kind, h.Action.Device, h.Action.Reason)
	}

	// Verify the network is clean: probe again, re-run detection.
	fmt.Println("\nday 2: verify...")
	from2 := tb.Clock.Now()
	if err := tb.RunWindow(time.Hour); err != nil {
		log.Fatal(err)
	}
	if err := tb.Pipeline.RunDaily(from2, tb.Clock.Now()); err != nil {
		log.Fatal(err)
	}
	det2 := detections[len(detections)-1]
	if len(det2.Candidates) == 0 && len(tb.Net.FaultySwitches()) == 0 {
		fmt.Println("clean: no black-hole candidates, no faulty switches remain")
	} else {
		fmt.Printf("still faulty: %d candidates, %d faulty switches\n",
			len(det2.Candidates), len(tb.Net.FaultySwitches()))
	}
}
