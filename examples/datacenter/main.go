// Datacenter: a simulated multi-DC Pingmesh deployment with service-level
// SLA tracking.
//
// It builds two data centers with the paper's DC1 (throughput-heavy) and
// DC2 (latency-sensitive Search) profiles, defines a "search" service over
// part of DC2, replays two hours of fleet probing through the full storage
// and analysis pipeline, and prints the per-DC and per-service network
// SLAs, the inter-DC latency, and the health heatmap — the everyday
// Pingmesh workflow of §4.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"time"

	"pingmesh"
	"pingmesh/internal/analysis"
	"pingmesh/internal/dsa"
	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/reportdb"
)

func main() {
	spec := pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
		{Name: "DC2", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}}

	// The service map: Search runs on DC2's first podset (§4.3: service
	// SLA comes from mapping services to the servers they use).
	tmpTop, err := pingmesh.BuildTopology(spec)
	if err != nil {
		log.Fatal(err)
	}
	searchServers := tmpTop.DCs[1].Podsets[0].Servers()
	search := analysis.ServiceFromServers("search", tmpTop, searchServers)

	tb, err := pingmesh.NewSimTestbed(spec, pingmesh.SimOptions{
		Profiles: []pingmesh.NetworkProfile{netsim.DC1Profile(), netsim.DC2Profile()},
		Services: []*pingmesh.Service{search},
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet: %d servers, %d switches across %d DCs\n",
		tb.Top.NumServers(), tb.Top.NumSwitches(), len(tb.Top.DCs))
	fmt.Printf("service %q: %d servers\n", search.Name, search.Size())

	from := tb.Clock.Now()
	fmt.Println("replaying 2h of fleet probing...")
	if err := tb.RunWindow(2 * time.Hour); err != nil {
		log.Fatal(err)
	}
	if err := tb.AnalyzeWindow(from, tb.Clock.Now()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nnetwork SLA (per scope):")
	rows, err := tb.DB().Query(dsa.TableSLA, reportdb.OrderBy("scope"))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		scope := r["scope"].(string)
		if len(scope) > 4 && scope[:4] == "pod/" {
			continue // keep the output at DC/service granularity
		}
		fmt.Printf("  %-16s probes=%-8d p50=%-10v p99=%-10v drop=%.2e\n",
			scope, r["probes"], r["p50"], r["p99"], r["drop_rate"])
	}

	fmt.Println("\ninter-DC latency (the DC-level complete graph):")
	interDC := dropInterDCStats(tb, from)
	fmt.Printf("  DC1<->DC2 probes=%d p50=%v p99=%v\n",
		interDC.Total(), interDC.Percentile(0.5), interDC.Percentile(0.99))

	if alerts := tb.Alerts(); len(alerts) > 0 {
		fmt.Println("\nALERTS:")
		for _, a := range alerts {
			fmt.Println(" ", a.String())
		}
	} else {
		fmt.Println("\nno SLA violations: the network is healthy")
	}

	h, err := tb.HeatmapFor(1, from, from.Add(30*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDC2 health heatmap:\n%s", h.RenderASCII())
	fmt.Printf("pattern: %s\n", h.Classify().Pattern)
}

// dropInterDCStats re-aggregates the stored records for the inter-DC class.
func dropInterDCStats(tb *pingmesh.SimTestbed, from time.Time) *pingmesh.LatencyStats {
	st := analysis.NewLatencyStats()
	for _, stream := range tb.Store.Streams("pingmesh/") {
		data, err := tb.Store.Read(stream)
		if err != nil {
			continue
		}
		recs, _ := probe.DecodeBatch(data)
		for i := range recs {
			if recs[i].Class == probe.InterDC {
				st.Add(&recs[i])
			}
		}
	}
	return st
}
