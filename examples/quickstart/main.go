// Quickstart: a miniature real-network Pingmesh deployment on loopback.
//
// It starts a Pingmesh Controller over a small two-DC topology, launches
// probe echo servers and two real agents on 127.0.0.1, lets them fetch
// their pinglists over HTTP and probe each other through actual TCP
// sockets, then prints the latency summaries from the agents' perf
// counters.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"time"

	"pingmesh"
	"pingmesh/internal/agent"
	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
)

func main() {
	// 1. The controller: generates a pinglist per server and serves them
	// over the RESTful web API.
	top := pingmesh.SmallTestbed()
	ctrl, err := pingmesh.NewController(top, pingmesh.DefaultGeneratorConfig())
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctrlSrv := &http.Server{Handler: ctrl.Handler()}
	go ctrlSrv.Serve(ln)
	defer ctrlSrv.Close()
	ctrlURL := "http://" + ln.Addr().String()
	fmt.Printf("controller: %d pinglists at %s\n", ctrl.PinglistCount(), ctrlURL)

	// 2. Probe servers: on a real deployment every server runs one. Here
	// two loopback ports stand in for two servers.
	ps1, err := pingmesh.NewProbeServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ps1.Close()
	ps2, err := pingmesh.NewProbeServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ps2.Close()

	// 3. Agents. The generated pinglists point at the topology's 10.x
	// addresses, which do not exist on loopback — so this quickstart hands
	// each agent a local pinglist targeting the other's real probe server.
	// (On a real network agents use the controller URL directly; see
	// TestRealComponentsLoopback and cmd/pingmesh-agent.)
	loopback := netip.MustParseAddr("127.0.0.1")
	mkList := func(name string, peer *pingmesh.ProbeServer) *pinglist.File {
		return &pinglist.File{
			Server:  name,
			Version: ctrl.Version(),
			Peers: []pinglist.Peer{{
				Addr:        "127.0.0.1",
				Port:        peer.Port(),
				Class:       probe.IntraPod.String(),
				Proto:       probe.TCP.String(),
				QoS:         probe.QoSHigh.String(),
				IntervalSec: int(core.MinProbeInterval / time.Second),
				PayloadLen:  512,
			}},
		}
	}
	runAgent := func(ctx context.Context, name string, peer *pingmesh.ProbeServer) *pingmesh.Agent {
		a, err := agent.New(agent.Config{
			ServerName: name,
			SourceAddr: loopback,
			Controller: staticList{mkList(name, peer)},
			Prober:     agent.NewRealProber(5 * time.Second),
		})
		if err != nil {
			log.Fatal(err)
		}
		go a.Run(ctx)
		return a
	}

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()
	a1 := runAgent(ctx, "server-1", ps2)
	a2 := runAgent(ctx, "server-2", ps1)

	// Also verify the real controller path end to end.
	client := &controller.Client{BaseURL: ctrlURL}
	f, err := client.Fetch(ctx, top.Server(0).Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched pinglist for %s over HTTP: %d peers, version %s\n",
		f.Server, len(f.Peers), f.Version)

	// 4. Let the agents probe for a couple of rounds (the hard-coded
	// minimum interval between probes of a pair is 10s).
	fmt.Println("probing for ~21s (min probe interval is 10s)...")
	time.Sleep(21 * time.Second)
	cancel()

	for _, a := range []*pingmesh.Agent{a1, a2} {
		snap := a.Metrics().Snapshot()
		rtt := snap.Histograms["agent.rtt.intra-pod"]
		fmt.Printf("agent probes=%d ok=%d rtt{p50=%v p99=%v} drop_rate=%.1e\n",
			snap.Counters["agent.probes_total"],
			snap.Counters["agent.probes_ok"],
			rtt.P50, rtt.P99, a.DropRate())
		for _, r := range a.BufferedRecords() {
			fmt.Printf("  record: %s -> %s:%d rtt=%v payload_rtt=%v err=%q\n",
				r.Src, r.Dst, r.DstPort, r.RTT, r.PayloadRTT, r.Err)
		}
	}
}

type staticList struct{ f *pinglist.File }

func (s staticList) Fetch(ctx context.Context, server string) (*pinglist.File, error) {
	return s.f, nil
}
