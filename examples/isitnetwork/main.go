// Isitnetwork: the "is it a network issue?" triage workflow of §4.3.
//
// A service owner reports a latency regression. Before Pingmesh, the
// network on-call would ask for source-destination pairs and manually run
// tools. With Pingmesh, the always-on latency data answers directly:
// compare the service's network SLA metrics (drop rate, P99) against
// thresholds.
//
// Two incidents are replayed:
//
//  1. The service's own servers are overloaded (end-host stalls). Users
//     scream "network!", but Pingmesh shows drop rate and P99 within SLA:
//     NOT a network issue.
//  2. A Spine silently drops packets. Pingmesh shows the drop rate blowing
//     through the 1e-3 threshold: IS a network issue — with the affected
//     scope attached.
//
// Run with:
//
//	go run ./examples/isitnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"pingmesh"
	"pingmesh/internal/analysis"
)

func main() {
	spec := pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}}

	fmt.Println("== incident 1: service overload (looks like 'the network') ==")
	{
		// The service's servers run hot: the application's own stalls
		// inflate user-perceived latency. The *network* profile here is a
		// healthy DC2-style fabric.
		tb := newTestbed(spec, 21)
		verdict(tb, "users report 99th-percentile latency spikes")
	}

	fmt.Println("\n== incident 2: a Spine silently drops 1.5% of packets ==")
	{
		tb := newTestbed(spec, 22)
		spine := tb.Top.DCs[0].Spines[1]
		tb.Net.SetRandomDrop(spine, 0.015, true)
		verdict(tb, "users report timeouts and retries")
	}
}

func newTestbed(spec pingmesh.TopologySpec, seed uint64) *pingmesh.SimTestbed {
	tb, err := pingmesh.NewSimTestbed(spec, pingmesh.SimOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	return tb
}

// verdict pulls the always-on Pingmesh data for the window and applies the
// paper's SLA thresholds: drop rate > 1e-3 or P99 > 5ms means network.
func verdict(tb *pingmesh.SimTestbed, complaint string) {
	fmt.Printf("complaint: %s\n", complaint)
	from := tb.Clock.Now()
	if err := tb.RunWindow(30 * time.Minute); err != nil {
		log.Fatal(err)
	}
	if err := tb.Pipeline.RunTenMinute(from, tb.Clock.Now()); err != nil {
		log.Fatal(err)
	}

	rows, err := tb.DB().Query("sla")
	if err != nil || len(rows) == 0 {
		log.Fatalf("no SLA data: %v", err)
	}
	r := rows[0]
	drop := r["drop_rate"].(float64)
	p99 := r["p99"].(time.Duration)
	fmt.Printf("pingmesh says: %s probes=%d p99=%v drop_rate=%.2e\n",
		r["scope"], r["probes"], p99, drop)

	th := analysis.DefaultThresholds()
	switch {
	case drop > th.MaxDropRate:
		fmt.Printf("verdict: NETWORK ISSUE — drop rate %.2e exceeds %.0e; engage the network team\n",
			drop, th.MaxDropRate)
		for _, a := range tb.Alerts() {
			fmt.Println("  alert:", a.String())
		}
	case p99 > th.MaxP99:
		fmt.Printf("verdict: NETWORK ISSUE — P99 %v exceeds %v; engage the network team\n", p99, th.MaxP99)
	default:
		fmt.Println("verdict: NOT the network — Pingmesh metrics are within SLA;")
		fmt.Println("         look at the service's own servers (CPU, GC pauses, app bugs)")
	}
}
