// Silentdrop: the §5.2 incident, end to end — a Spine switch silently
// drops ~1.5% of packets (nothing in its own counters), every service in
// the DC sees its drop rate explode, and the on-call drives the paper's
// workflow: confirm with Pingmesh data, pull affected pairs, TCP-traceroute
// them to pinpoint the switch, isolate it from live traffic, verify
// recovery, and RMA the hardware (a reload cannot fix bit flips).
//
// Run with:
//
//	go run ./examples/silentdrop
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"pingmesh"
	"pingmesh/internal/autopilot"
	"pingmesh/internal/dsa"
	"pingmesh/internal/netsim"
	"pingmesh/internal/reportdb"
	"pingmesh/internal/silentdrop"
)

func main() {
	tb, err := pingmesh.NewSimTestbed(pingmesh.TopologySpec{DCs: []pingmesh.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 4, LeavesPerPodset: 3, Spines: 8},
	}}, pingmesh.SimOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(label string) float64 {
		from := tb.Clock.Now()
		if err := tb.RunWindow(20 * time.Minute); err != nil {
			log.Fatal(err)
		}
		if err := tb.Pipeline.RunTenMinute(from, tb.Clock.Now()); err != nil {
			log.Fatal(err)
		}
		rows, err := tb.DB().Query(dsa.TableSLA,
			reportdb.Where(func(r reportdb.Row) bool { return r["scope"] == "dc/DC1" }),
			reportdb.OrderByDesc("window_start"), reportdb.Limit(1))
		if err != nil || len(rows) == 0 {
			log.Fatalf("no SLA rows: %v", err)
		}
		rate := rows[0]["drop_rate"].(float64)
		fmt.Printf("%-22s drop_rate=%.2e p99=%v\n", label, rate, rows[0]["p99"])
		return rate
	}

	fmt.Println("== phase 1: normal operations ==")
	baseline := measure("baseline")

	// The incident: bit flips in one Spine's fabric module.
	spine := tb.Top.DCs[0].Spines[5]
	tb.Net.SetRandomDrop(spine, 0.015, true)
	fmt.Println("\n== phase 2: incident (invisible in switch counters) ==")
	incident := measure("during incident")
	if incident < baseline*5 {
		fmt.Println("(spike not yet visible; production would watch more windows)")
	}
	for _, a := range tb.Alerts() {
		fmt.Println("ALERT:", a.String())
	}

	// Localize: pull affected pairs out of Pingmesh data, traceroute them.
	fmt.Println("\n== phase 3: localization (Pingmesh + TCP traceroute) ==")
	pairs := affectedPairs(tb)
	fmt.Printf("selected %d affected server pairs from Pingmesh data\n", len(pairs))
	loc := &silentdrop.Localizer{
		Net:          tb.Net,
		ProbesPerHop: 600,
		Rand:         rand.New(rand.NewPCG(7, 9)),
	}
	suspects := loc.Localize(pairs)
	if len(suspects) == 0 {
		log.Fatal("localization found nothing")
	}
	top := suspects[0]
	fmt.Printf("suspect: %s (per-hop loss ~%.1f%%, implicated by %d pairs) — injected: %s\n",
		tb.Top.Switch(top.Switch).Name, top.Loss*100, top.Pairs, tb.Top.Switch(spine).Name)

	// Mitigate through the repair service: isolate from live traffic.
	fmt.Println("\n== phase 4: mitigation ==")
	rs := tb.NewRepairService(20)
	if err := rs.Execute(autopilot.RepairAction{
		Kind: autopilot.RepairIsolate, Device: tb.Top.Switch(top.Switch).Name,
		Reason: "silent random packet drops (pingmesh+traceroute)",
	}); err != nil {
		log.Fatal(err)
	}
	recovered := measure("after isolation")
	if recovered < incident/3 {
		fmt.Println("recovery confirmed: drop rate back at baseline")
	}

	// A reload does not fix hardware; RMA does.
	fmt.Println("\n== phase 5: repair ==")
	tb.Net.ReloadSwitch(spine)
	fmt.Printf("after reload: still faulty = %v (bit flips need RMA)\n", tb.Net.SwitchFaulty(spine))
	if err := rs.Execute(autopilot.RepairAction{
		Kind: autopilot.RepairRMA, Device: tb.Top.Switch(spine).Name,
		Reason: "fabric module bit flips",
	}); err != nil {
		log.Fatal(err)
	}
	tb.Net.UnisolateSwitch(spine)
	fmt.Printf("after RMA: faulty = %v; switch back in rotation\n", tb.Net.SwitchFaulty(spine))
}

// affectedPairs samples cross-podset pairs and keeps those whose measured
// retransmit rate is elevated — what the on-call pulls from Pingmesh.
func affectedPairs(tb *pingmesh.SimTestbed) []silentdrop.Pair {
	rng := rand.New(rand.NewPCG(3, 4))
	servers := tb.Top.DCs[0].Servers()
	var out []silentdrop.Pair
	for tries := 0; len(out) < 6 && tries < 400; tries++ {
		src := servers[rng.IntN(len(servers))]
		dst := servers[rng.IntN(len(servers))]
		if src == dst || tb.Top.SamePodset(src, dst) {
			continue
		}
		port := uint16(34000 + tries)
		retx := 0
		const n = 300
		for i := 0; i < n; i++ {
			res := tb.Net.Probe(netsim.ProbeSpec{Src: src, Dst: dst, SrcPort: port, DstPort: 8765}, rng)
			if res.Err == "" && res.Attempts > 1 {
				retx++
			}
		}
		if float64(retx)/n > 0.005 {
			out = append(out, silentdrop.Pair{Src: src, Dst: dst, SrcPort: port, DstPort: 8765})
		}
	}
	return out
}
