package pingmesh

// End-to-end conditional-GET test: a real Agent polling a real Controller
// over HTTP. The first poll downloads the pinglist; every poll after it is
// revalidated with If-None-Match and answered 304 Not Modified, so an
// unchanged pinglist costs zero body bytes. A topology update invalidates
// the ETag and the next poll applies the new generation — served as a
// delta against the agent's cached base, since the client advertises
// A-IM: pingmesh-delta and a same-topology regeneration diffs only in
// metadata.

import (
	"context"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"pingmesh/internal/agent"
	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/topology"
)

// idleProber answers instantly so the scheduling loop stays cheap.
type idleProber struct{}

func (idleProber) Probe(ctx context.Context, t agent.Target) (agent.Outcome, error) {
	return agent.Outcome{ConnectRTT: time.Millisecond, SrcPort: 40000}, nil
}

func TestAgentRevalidatesPinglistEndToEnd(t *testing.T) {
	top := topology.SmallTestbed()
	ctrl, err := controller.New(top, core.DefaultGeneratorConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	name := top.Server(0).Name
	a, err := agent.New(agent.Config{
		ServerName:    name,
		SourceAddr:    netip.MustParseAddr("127.0.0.1"),
		Controller:    &controller.Client{BaseURL: srv.URL},
		Prober:        idleProber{},
		FetchInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	// Wait until the agent has applied a pinglist and then revalidated it
	// at least twice.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap := a.Metrics().Snapshot()
		if snap.Counters["agent.fetch_not_modified"] >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := a.Metrics().Snapshot()
	if snap.Counters["agent.fetch_not_modified"] < 2 {
		t.Fatalf("agent saw %d revalidations, want >= 2 (fetches_ok=%d)",
			snap.Counters["agent.fetch_not_modified"], snap.Counters["agent.fetches_ok"])
	}
	ctrlSnap := ctrl.Metrics().Snapshot()
	if ctrlSnap.Counters["controller.not_modified"] < 2 {
		t.Fatalf("controller answered %d 304s", ctrlSnap.Counters["controller.not_modified"])
	}
	// Exactly one full download happened: bytes served == one body, and
	// the agent's wire bytes match (gzip form, so strictly smaller than
	// the plain file).
	if ctrlSnap.Counters["controller.pinglist_serves"] != 1 {
		t.Fatalf("controller served %d full bodies, want 1", ctrlSnap.Counters["controller.pinglist_serves"])
	}
	if got, want := snap.Counters["agent.fetch_bytes"], ctrlSnap.Counters["controller.bytes_served"]; got != want {
		t.Fatalf("agent fetched %d wire bytes, controller served %d", got, want)
	}
	if a.PeerCount() == 0 {
		t.Fatal("agent applied no peers")
	}
	version := a.Version()

	// Topology update: the next poll must miss revalidation and apply the
	// new generation. The regenerated pinglist differs from the cached one
	// only in metadata, so the controller serves it as a tiny delta rather
	// than a second full body.
	if err := ctrl.UpdateTopology(top); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if a.Version() != version {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if a.Version() == version {
		t.Fatalf("agent stuck on version %q after topology update", version)
	}
	ctrlSnap = ctrl.Metrics().Snapshot()
	if n := ctrlSnap.Counters["controller.pinglist_serves"]; n != 1 {
		t.Fatalf("controller served %d full bodies after update, want still 1 (delta path)", n)
	}
	if n := ctrlSnap.Counters["controller.delta_serves"]; n != 1 {
		t.Fatalf("controller served %d deltas after update, want 1", n)
	}
	if n := a.Metrics().Snapshot().Counters["agent.fetch_delta"]; n != 1 {
		t.Fatalf("agent applied %d delta fetches, want 1", n)
	}
}
