#!/bin/sh
# CI / verify flow for the pingmesh repo.
#
# Tiers:
#   1. build + full test suite        (the seed contract)
#   2. full test suite under -race    (controller/agent/core are heavily
#                                      concurrent; the stress tests in
#                                      internal/controller are designed to
#                                      surface handler-vs-regeneration races)
#   3. short fuzz pass over the pinglist wire format (optional, FUZZ=1)
#
# Usage: scripts/ci.sh [package...]   # default: ./...
set -eu
cd "$(dirname "$0")/.."

PKGS="${*:-./...}"

echo "== tier 1: go build && go test"
go build $PKGS
go test $PKGS

echo "== tier 2: go test -race"
go test -race $PKGS

if [ "${FUZZ:-0}" = "1" ]; then
    echo "== tier 3: fuzz pinglist wire format (30s each)"
    go test ./internal/pinglist -fuzz FuzzUnmarshal -fuzztime 30s
    go test ./internal/pinglist -fuzz FuzzMarshalRoundTrip -fuzztime 30s
fi

echo "== ci ok"
