#!/bin/sh
# CI / verify flow for the pingmesh repo.
#
# Tiers:
#   1. vet + build + full test suite  (the seed contract)
#   2. full test suite under -race    (controller/agent/core are heavily
#                                      concurrent; the stress tests in
#                                      internal/controller are designed to
#                                      surface handler-vs-regeneration races)
#   3. alloc-guard smoke              (the streaming scope/probe ingest path
#                                      must stay allocation-free per record;
#                                      the netsim plan-cached probe path and
#                                      the fleet runner's pooled batches must
#                                      stay allocation-free per probe; the
#                                      portal's cached reads, 304
#                                      revalidations and /metrics scrapes
#                                      must stay allocation-free per request;
#                                      a disabled/unsampled tracer must cost
#                                      the probe and ingest paths one atomic
#                                      load and zero allocations; the
#                                      controller's cached delta serving
#                                      must be allocation-free per request;
#                                      the incremental analysis fold path
#                                      must be allocation-free per record;
#                                      PMT1 telemetry encode and collector
#                                      ingest must be allocation-free per
#                                      report in steady state)
#   3b. churn-harness smoke           (the control-plane churn CLI end to
#                                      end at reduced scale: delta serving,
#                                      replica kill, convergence)
#   3c. fold-harness smoke            (the sharded incremental analysis
#                                      sweep at reduced scale: fold drain,
#                                      steal phase, SLA row parity with the
#                                      full re-scan)
#   3d. upload-harness smoke          (the sketch-upload differential at
#                                      reduced scale: byte reduction,
#                                      percentile parity, SLA row parity
#                                      through the sharded fold)
#   3e. diagnosis smoke               (the root-cause localization CLI at
#                                      reduced scale: two simultaneous
#                                      injected faults must land in the
#                                      vote ranking's top two and each
#                                      evidence chain must pin its hop)
#   3f. telemetry-harness smoke       (the telemetry-plane CLI at reduced
#                                      scale with -check: fleet rollups
#                                      must match exact shadow tallies
#                                      bit for bit)
#   4. short fuzz pass over the pinglist wire format, the delta codec
#      (patch(old, diff) == new, byte-identical), the streaming record
#      decoder, the binary sketch codec, the sketch-vs-exact aggregation
#      equivalence, and the PMT1 telemetry report round trip
#      (optional, FUZZ=1)
#
# Usage: scripts/ci.sh [package...]   # default: ./...
set -eu
cd "$(dirname "$0")/.."

PKGS="${*:-./...}"

echo "== tier 1: go vet && go build && go test"
go vet $PKGS
go build $PKGS
go test $PKGS

echo "== tier 2: go test -race"
go test -race $PKGS

echo "== tier 3: alloc-guard smoke"
go test ./internal/scope ./internal/probe ./internal/analysis \
    ./internal/netsim ./internal/fleet \
    ./internal/httpcache ./internal/metrics ./internal/portal \
    ./internal/trace ./internal/agent ./internal/controller \
    ./internal/shard ./internal/dsa ./internal/diagnosis \
    ./internal/telemetry \
    -run 'ZeroAlloc' -count=1 -v | grep -E '^(=== RUN|--- (PASS|FAIL)|ok|FAIL)'

echo "== tier 3b: churn-harness smoke (reduced scale)"
go run ./cmd/pingmesh-churnsim -agents 20000 -podsets 8 -pods 6 -mode compare \
    -out "${TMPDIR:-/tmp}/pingmesh_churn_smoke.json"

echo "== tier 3c: fold-harness smoke (reduced scale)"
go run ./cmd/pingmesh-foldsim -servers 20000 -records-per-server 4 \
    -extent-size 65536 -shards 1,2 -q \
    -out "${TMPDIR:-/tmp}/pingmesh_fold_smoke.json"

echo "== tier 3d: upload-harness smoke (reduced scale)"
go run ./cmd/pingmesh-uploadsim -servers 2000 -peers 4 -probes-per-peer 30 \
    -extent-size 262144 -q \
    -out "${TMPDIR:-/tmp}/pingmesh_upload_smoke.json"

echo "== tier 3e: diagnosis smoke (reduced scale)"
go run ./cmd/pingmesh-diagnose -minutes 6 -check > /dev/null

echo "== tier 3f: telemetry-harness smoke (reduced scale)"
go run ./cmd/pingmesh-telemsim -agents 5000 -rounds 2 -dcs 2 -podsets 4 -pods 5 \
    -check -out "${TMPDIR:-/tmp}/pingmesh_telem_smoke.json"

if [ "${FUZZ:-0}" = "1" ]; then
    echo "== tier 4: fuzz wire formats (30s each)"
    go test ./internal/pinglist -fuzz FuzzUnmarshal -fuzztime 30s
    go test ./internal/pinglist -fuzz FuzzMarshalRoundTrip -fuzztime 30s
    go test ./internal/pinglist -fuzz FuzzDeltaPatchVsFull -fuzztime 30s
    go test ./internal/probe -fuzz FuzzScannerVsDecodeBatch -fuzztime 30s
    go test ./internal/probe -fuzz FuzzBinaryCodecRoundTrip -fuzztime 30s
    go test ./internal/analysis -fuzz FuzzSketchMergeVsExact -fuzztime 30s
    go test ./internal/telemetry -fuzz FuzzPMT1RoundTrip -fuzztime 30s
fi

echo "== ci ok"
