package pingmesh

// Integration tests exercising the full stack together: controller (HTTP)
// -> agents (real scheduling loops on the simulated clock, probing the
// simulated fabric) -> Cosmos uploads -> SCOPE/DSA analysis -> report
// database + perfcounter aggregation. Unlike the fleet runner used by the
// experiments, these tests run the real agent goroutines.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"net"
	"net/netip"

	"pingmesh/internal/agent"
	"pingmesh/internal/autopilot"
	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/dsa"
	"pingmesh/internal/netlib"
	"pingmesh/internal/netsim"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/scope"
	"pingmesh/internal/simclock"
	"pingmesh/internal/slb"
	"pingmesh/internal/topology"
)

func TestIntegrationAgentsToAnalysis(t *testing.T) {
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(epoch)

	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 1, PodsPerPodset: 2, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC2Profile()}})
	if err != nil {
		t.Fatal(err)
	}

	// Controller behind real HTTP.
	ctrl, err := controller.New(top, core.DefaultGeneratorConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	// Cosmos store + per-agent upload clients.
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}

	// PA collects every agent's counters.
	pa := autopilot.NewPA(clock, 5*time.Minute)

	// One real agent per server, probing the simulated fabric.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var agents []*agent.Agent
	for _, s := range top.Servers() {
		a, err := agent.New(agent.Config{
			ServerName: s.Name,
			SourceAddr: s.Addr,
			Controller: &controller.Client{BaseURL: srv.URL},
			Prober:     &agent.SimProber{Net: net, Src: s.ID, Clock: clock, Seed: uint64(s.ID) + 1},
			Uploader:   &cosmos.Client{Store: store, Stream: cosmos.DailyStream("pingmesh"), Clock: clock},
			Clock:      clock,
			// Short cadences so the test window exercises uploads.
			UploadInterval: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		pa.Register(s.Name, a.Metrics().Snapshot)
		agents = append(agents, a)
		go a.Run(ctx)
	}

	// Wait for every agent to fetch its pinglist over HTTP.
	waitUntil(t, func() bool {
		for _, a := range agents {
			if a.PeerCount() == 0 {
				return false
			}
		}
		return true
	}, "agents fetched pinglists")

	// Drive 3 simulated minutes in steps, letting the schedulers drain.
	for i := 0; i < 18; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(3 * time.Millisecond)
	}
	waitUntil(t, func() bool {
		return len(store.Streams("pingmesh/")) > 0
	}, "agents uploaded to cosmos")
	pa.Collect()

	// Analysis over the uploaded records.
	pipe, err := dsa.New(dsa.Config{Store: store, Top: top, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunTenMinute(epoch, clock.Now()); err != nil {
		t.Fatal(err)
	}
	rows, err := pipe.DB().Query(dsa.TableSLA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("sla rows = %d", len(rows))
	}
	probes := rows[0]["probes"].(int64)
	if probes < int64(len(agents)) {
		t.Fatalf("analyzed %d probes from %d agents", probes, len(agents))
	}
	p50 := rows[0]["p50"].(time.Duration)
	if p50 < 50*time.Microsecond || p50 > 5*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}

	// PA has per-agent counters.
	if _, ok := pa.Latest(top.Server(0).Name + "/counter/agent.probes_total"); !ok {
		t.Fatal("PA missing agent counters")
	}

	// The emergency stop: clear the controller, agents fail closed on
	// their next poll (§3.4.2).
	ctrl.Clear()
	clock.Advance(5 * time.Minute) // fetch interval
	waitUntil(t, func() bool {
		for _, a := range agents {
			if !a.FailedClosed() {
				return false
			}
		}
		return true
	}, "fleet failed closed after pinglist removal")
}

func TestIntegrationWatchdogsOverPipeline(t *testing.T) {
	// The §3.5 watchdog story: components are watched — pinglists
	// generated? jobs running? Here the watchdog service checks the
	// controller and job manager and reports into the Device Manager.
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(epoch)
	top := topology.SmallTestbed()
	ctrl, err := controller.New(top, core.DefaultGeneratorConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	jm := scope.NewJobManager(clock)
	defer jm.StopAll()

	dm := autopilot.NewDeviceManager()
	ws := autopilot.NewWatchdogService(clock, time.Minute, dm)
	ws.Register(autopilot.Watchdog{
		Name:   "pinglists-generated",
		Device: "controller",
		Check: func() error {
			if ctrl.PinglistCount() == 0 {
				return errContr
			}
			return nil
		},
	})
	ws.RunOnce()
	if dm.State("controller") != autopilot.Healthy {
		t.Fatal("healthy controller flagged")
	}
	ctrl.Clear()
	ws.RunOnce()
	ws.RunOnce()
	if dm.State("controller") != autopilot.Failed {
		t.Fatalf("controller state = %v after losing pinglists", dm.State("controller"))
	}
	if err := ctrl.UpdateTopology(top); err != nil {
		t.Fatal(err)
	}
	ws.RunOnce()
	if dm.State("controller") != autopilot.Healthy {
		t.Fatal("controller did not recover")
	}
}

var errContr = &pinglistsMissingError{}

type pinglistsMissingError struct{}

func (*pinglistsMissingError) Error() string { return "no pinglists generated" }

func TestIntegrationMetricsRoundTripThroughCosmos(t *testing.T) {
	// Records written through the cosmos client parse back identically
	// through the scope engine — the durability contract agents depend on.
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	top := topology.SmallTestbed()
	client := &cosmos.Client{Store: store, Stream: cosmos.DailyStream("pingmesh"),
		Clock: simclock.NewSim(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))}

	var want []probe.Record
	for i := 0; i < 500; i++ {
		r := probe.Record{
			Start: time.Date(2026, 7, 1, 0, 0, i%60, 0, time.UTC),
			Src:   top.Server(topology.ServerID(i % 10)).Addr,
			Dst:   top.Server(topology.ServerID((i + 1) % 10)).Addr,
			RTT:   time.Duration(200+i) * time.Microsecond,
		}
		want = append(want, r)
		if err := client.Upload(context.Background(), probe.EncodeBatch([]probe.Record{r})); err != nil {
			t.Fatal(err)
		}
	}
	e := &scope.Engine{}
	res, err := e.Run(scope.Job{Name: "roundtrip", Source: scope.Source{Store: store, StreamPrefix: "pingmesh/"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != uint64(len(want)) || res.ParseErrors != 0 {
		t.Fatalf("records=%d parseErrors=%d", res.Records, res.ParseErrors)
	}
	if res.Get("").Summary().Count != uint64(len(want)) {
		t.Fatal("aggregate count mismatch")
	}
}

func waitUntil(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting: " + msg)
}

func TestIntegrationVIPMonitoring(t *testing.T) {
	// The §6.2 VIP monitoring extension: selected servers probe a
	// load-balanced VIP so the availability of the virtualized address
	// itself is tracked. Here a real SLB VIP fronts two real probe
	// servers; the agent probes it through actual sockets, then the
	// backends die and the failures surface in the agent's counters.
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(epoch)

	b1, err := netlib.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, err := netlib.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	lb, err := slb.New("127.0.0.1:0", []string{b1.Addr().String(), b2.Addr().String()},
		slb.Options{HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	vipPort := uint16(lb.Addr().(*net.TCPAddr).Port)

	list := &pinglist.File{
		Server:  "vip-prober",
		Version: "v1",
		Peers: []pinglist.Peer{{
			Addr:  "127.0.0.1",
			Port:  vipPort,
			Class: probe.IntraDC.String(),
			Proto: probe.TCP.String(),
			QoS:   probe.QoSHigh.String(),
			// VIP probes carry a payload: the SLB accepts the TCP
			// connection itself, so only an echoed payload proves a DIP
			// behind the VIP actually answered.
			PayloadLen:  64,
			IntervalSec: 10,
		}},
	}
	a, err := agent.New(agent.Config{
		ServerName: "vip-prober",
		SourceAddr: netip.MustParseAddr("127.0.0.1"),
		Controller: staticPinglist{list},
		Prober:     agent.NewRealProber(2 * time.Second),
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "pinglist applied")

	// A few probes through the healthy VIP.
	for i := 0; i < 3; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(20 * time.Millisecond) // real socket round trip
	}
	waitUntil(t, func() bool {
		return a.Metrics().Snapshot().Counters["agent.probes_ok"] >= 2
	}, "probes through VIP succeeded")

	// The VIP dies entirely (both DIPs down): probes must start failing.
	b1.Close()
	b2.Close()
	okBefore := a.Metrics().Snapshot().Counters["agent.probes_ok"]
	waitUntil(t, func() bool { return len(lb.HealthyBackends()) == 0 }, "SLB noticed backend death")
	for i := 0; i < 4; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(50 * time.Millisecond)
	}
	waitUntil(t, func() bool {
		return a.Metrics().Snapshot().Counters["agent.probes_failed"] >= 1
	}, "VIP unavailability recorded")
	if got := a.Metrics().Snapshot().Counters["agent.probes_ok"]; got > okBefore+1 {
		t.Fatalf("probes kept succeeding after VIP death: %d -> %d", okBefore, got)
	}
}

// staticPinglist hands the agent a fixed pinglist.
type staticPinglist struct{ f *pinglist.File }

func (s staticPinglist) Fetch(ctx context.Context, server string) (*pinglist.File, error) {
	return s.f, nil
}
