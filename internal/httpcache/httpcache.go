// Package httpcache is the shared serving core behind every read-mostly
// Pingmesh HTTP surface: the controller's pinglist files (§3.3) and the
// portal's query endpoints (§6.3). A Body is one immutable response
// precomputed at publish time — raw bytes, gzip variant, strong
// content-hash ETag — so that serving a million identical reads costs a
// pointer load, and revalidating an unchanged read (If-None-Match → 304)
// costs no body bytes and no allocations at all.
//
// Because ETags are content hashes, identical content published by any
// replica yields identical validators: a 304 from one replica is valid
// for a body downloaded from any other.
package httpcache

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Shared immutable header value slices, assigned directly into response
// header maps so the steady-state serve path performs no per-request
// allocation. Keys used with direct map assignment must be in canonical
// MIME-header form ("Etag", not "ETag" — http.Header.Get canonicalizes, so
// readers see no difference).
var (
	gzipEncoding       = []string{"gzip"}
	varyAcceptEncoding = []string{"Accept-Encoding"}
)

// Header keys in canonical form for direct map assignment.
const (
	hdrETag            = "Etag"
	hdrVary            = "Vary"
	hdrContentType     = "Content-Type"
	hdrContentLength   = "Content-Length"
	hdrContentEncoding = "Content-Encoding"
)

// Body is one precomputed immutable response: content, gzip variant, and
// strong ETag. Build once per publication epoch with New; Serve from as
// many goroutines as you like.
type Body struct {
	data  []byte
	gz    []byte
	etag  string
	ctype string

	// Precomputed single-value header slices (see package comment).
	etagH   []string
	ctypeH  []string
	clenH   []string // Content-Length of data
	clenGzH []string // Content-Length of gz
}

// MinGzipSize is the body size below which New skips the gzip variant:
// tiny bodies grow under gzip framing and the variant would never win.
const MinGzipSize = 64

// New builds a Body from content, precomputing the gzip variant and the
// strong content-hash ETag. data is retained, not copied: callers hand
// over ownership.
func New(contentType string, data []byte) (*Body, error) {
	b := &Body{data: data, ctype: contentType, etag: ETagFor(data)}
	if len(data) >= MinGzipSize {
		var buf bytes.Buffer
		zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		zw.Write(data)
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("httpcache: gzip: %w", err)
		}
		// Keep the variant only if it actually shrinks the body.
		if buf.Len() < len(data) {
			b.gz = buf.Bytes()
		}
	}
	b.etagH = []string{b.etag}
	b.ctypeH = []string{contentType}
	b.clenH = []string{strconv.Itoa(len(b.data))}
	if b.gz != nil {
		b.clenGzH = []string{strconv.Itoa(len(b.gz))}
	}
	return b, nil
}

// MustNew is New for static bodies that cannot fail.
func MustNew(contentType string, data []byte) *Body {
	b, err := New(contentType, data)
	if err != nil {
		panic(err)
	}
	return b
}

// Data returns the raw (identity-encoded) content.
func (b *Body) Data() []byte { return b.data }

// Gzip returns the precompressed variant, or nil if the body has none.
func (b *Body) Gzip() []byte { return b.gz }

// ETag returns the strong validator (quoted hex of the content hash).
func (b *Body) ETag() string { return b.etag }

// ContentType returns the body's media type.
func (b *Body) ContentType() string { return b.ctype }

// Result reports what Serve did, for caller-side metrics.
type Result struct {
	Status  int
	Bytes   int  // body bytes written (0 on 304)
	Gzipped bool // whether the gzip variant was served
}

// Serve writes the body as the response to r, handling If-None-Match
// revalidation (→ 304, zero body bytes) and Accept-Encoding: gzip
// negotiation. It always emits the ETag and Vary headers so intermediate
// caches stay correct. The steady-state path allocates nothing: every
// header value is a precomputed slice assigned directly into the header
// map.
func (b *Body) Serve(w http.ResponseWriter, r *http.Request) Result {
	h := w.Header()
	h[hdrETag] = b.etagH
	h[hdrVary] = varyAcceptEncoding
	if ETagMatches(r.Header.Get("If-None-Match"), b.etag) {
		w.WriteHeader(http.StatusNotModified)
		return Result{Status: http.StatusNotModified}
	}
	h[hdrContentType] = b.ctypeH
	body, clen, gzipped := b.data, b.clenH, false
	if b.gz != nil && AcceptsGzip(r) {
		h[hdrContentEncoding] = gzipEncoding
		body, clen, gzipped = b.gz, b.clenGzH, true
	}
	h[hdrContentLength] = clen
	w.Write(body)
	return Result{Status: http.StatusOK, Bytes: len(body), Gzipped: gzipped}
}

// ETagFor computes the strong ETag for a body: quoted hex of a truncated
// SHA-256, identical for identical content on every replica.
func ETagFor(data []byte) string {
	sum := sha256.Sum256(data)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// ETagMatches reports whether an If-None-Match header value matches the
// strong ETag. Handles "*", comma-separated candidate lists, and weak
// validators (W/ prefixed — a weak match suffices for GET revalidation
// per RFC 9110 §13.1.2). Allocation-free: candidates are walked with
// strings.Cut, never split into a slice.
func ETagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for rest := header; rest != ""; {
		var cand string
		cand, rest, _ = strings.Cut(rest, ",")
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// AcceptsGzip reports whether the request advertises gzip support. A plain
// substring check would wrongly match "gzip;q=0". Allocation-free.
func AcceptsGzip(r *http.Request) bool {
	for rest := r.Header.Get("Accept-Encoding"); rest != ""; {
		var part string
		part, rest, _ = strings.Cut(rest, ",")
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok && strings.TrimSpace(q) == "0" {
			return false
		}
		return true
	}
	return false
}
