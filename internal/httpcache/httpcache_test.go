package httpcache

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testBody(t *testing.T) *Body {
	t.Helper()
	content := bytes.Repeat([]byte("pingmesh read-side serving "), 40)
	b, err := New("application/json", content)
	if err != nil {
		t.Fatal(err)
	}
	if b.Gzip() == nil {
		t.Fatal("expected a gzip variant for a compressible body")
	}
	return b
}

func serve(t *testing.T, b *Body, hdr map[string]string) (*httptest.ResponseRecorder, Result) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	res := b.Serve(w, req)
	return w, res
}

// TestServeProtocol is the conditional-GET protocol table for the shared
// helper: revalidation, stale validators, wildcard and list forms, weak
// validators, and gzip negotiation.
func TestServeProtocol(t *testing.T) {
	b := testBody(t)
	etag := b.ETag()
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag %q not a quoted strong validator", etag)
	}

	tests := []struct {
		name       string
		hdr        map[string]string
		wantStatus int
		wantGzip   bool
		wantBody   bool
	}{
		{"no validator", nil, http.StatusOK, false, true},
		{"matching etag", map[string]string{"If-None-Match": etag}, http.StatusNotModified, false, false},
		{"weak form of matching etag", map[string]string{"If-None-Match": "W/" + etag}, http.StatusNotModified, false, false},
		{"wildcard", map[string]string{"If-None-Match": "*"}, http.StatusNotModified, false, false},
		{"etag in list", map[string]string{"If-None-Match": `"deadbeef", ` + etag}, http.StatusNotModified, false, false},
		{"etag in list no space", map[string]string{"If-None-Match": `"deadbeef",` + etag}, http.StatusNotModified, false, false},
		{"stale etag", map[string]string{"If-None-Match": `"deadbeef"`}, http.StatusOK, false, true},
		{"unquoted garbage", map[string]string{"If-None-Match": "deadbeef"}, http.StatusOK, false, true},
		{"gzip accepted", map[string]string{"Accept-Encoding": "gzip"}, http.StatusOK, true, true},
		{"gzip among encodings", map[string]string{"Accept-Encoding": "br, gzip;q=0.8"}, http.StatusOK, true, true},
		{"gzip refused via q=0", map[string]string{"Accept-Encoding": "gzip;q=0"}, http.StatusOK, false, true},
		{"gzip refused via q=0 with spaces", map[string]string{"Accept-Encoding": "gzip; q=0"}, http.StatusOK, false, true},
		{"identity only", map[string]string{"Accept-Encoding": "identity"}, http.StatusOK, false, true},
		{"matching etag wins over gzip", map[string]string{"If-None-Match": etag, "Accept-Encoding": "gzip"}, http.StatusNotModified, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w, res := serve(t, b, tc.hdr)
			if w.Code != tc.wantStatus || res.Status != tc.wantStatus {
				t.Fatalf("status = %d (result %d), want %d", w.Code, res.Status, tc.wantStatus)
			}
			if got := w.Header().Get("ETag"); got != etag {
				t.Fatalf("ETag header = %q, want %q", got, etag)
			}
			if got := w.Header().Get("Vary"); got != "Accept-Encoding" {
				t.Fatalf("Vary header = %q", got)
			}
			gotGzip := w.Header().Get("Content-Encoding") == "gzip"
			if gotGzip != tc.wantGzip || res.Gzipped != tc.wantGzip {
				t.Fatalf("gzip = %v (result %v), want %v", gotGzip, res.Gzipped, tc.wantGzip)
			}
			if tc.wantBody {
				body := w.Body.Bytes()
				if tc.wantGzip {
					zr, err := gzip.NewReader(bytes.NewReader(body))
					if err != nil {
						t.Fatal(err)
					}
					body, err = io.ReadAll(zr)
					if err != nil {
						t.Fatal(err)
					}
				}
				if !bytes.Equal(body, b.Data()) {
					t.Fatalf("body mismatch: %d bytes vs %d", len(body), len(b.Data()))
				}
				if res.Bytes != w.Body.Len() {
					t.Fatalf("result bytes = %d, wrote %d", res.Bytes, w.Body.Len())
				}
			} else if w.Body.Len() != 0 || res.Bytes != 0 {
				t.Fatalf("304 carried %d body bytes (result %d)", w.Body.Len(), res.Bytes)
			}
		})
	}
}

func TestSmallBodySkipsGzip(t *testing.T) {
	b, err := New("text/plain", []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Gzip() != nil {
		t.Fatal("tiny body should have no gzip variant")
	}
	w, res := serve(t, b, map[string]string{"Accept-Encoding": "gzip"})
	if res.Gzipped || w.Header().Get("Content-Encoding") != "" {
		t.Fatal("served gzip without a variant")
	}
	if w.Body.String() != "ok" {
		t.Fatalf("body = %q", w.Body.String())
	}
}

func TestETagStability(t *testing.T) {
	a, _ := New("text/plain", []byte("same content same etag, any replica"))
	b, _ := New("text/plain", []byte("same content same etag, any replica"))
	c, _ := New("text/plain", []byte("different content"))
	if a.ETag() != b.ETag() {
		t.Fatalf("identical content produced ETags %q and %q", a.ETag(), b.ETag())
	}
	if a.ETag() == c.ETag() {
		t.Fatal("different content produced identical ETags")
	}
}

// nopResponseWriter is a reusable ResponseWriter for allocation guards: the
// header map persists across requests the way a keep-alive connection's
// does, so steady-state serve cost is what's measured.
type nopResponseWriter struct {
	h      http.Header
	status int
	bytes  int
}

func (w *nopResponseWriter) Header() http.Header { return w.h }
func (w *nopResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *nopResponseWriter) Write(p []byte) (int, error) {
	w.bytes += len(p)
	return len(p), nil
}

// TestServeZeroAlloc proves the steady-state serve path — both the 304
// revalidation and the full cached 200 — allocates nothing (CI tier 3).
func TestServeZeroAlloc(t *testing.T) {
	b := testBody(t)
	w := &nopResponseWriter{h: make(http.Header)}

	req304 := httptest.NewRequest(http.MethodGet, "/x", nil)
	req304.Header.Set("If-None-Match", b.ETag())
	if allocs := testing.AllocsPerRun(200, func() {
		w.status, w.bytes = 0, 0
		b.Serve(w, req304)
		if w.status != http.StatusNotModified || w.bytes != 0 {
			t.Fatalf("status=%d bytes=%d", w.status, w.bytes)
		}
	}); allocs != 0 {
		t.Fatalf("304 serve allocates %v per op, want 0", allocs)
	}

	req200 := httptest.NewRequest(http.MethodGet, "/x", nil)
	req200.Header.Set("Accept-Encoding", "gzip")
	if allocs := testing.AllocsPerRun(200, func() {
		w.status, w.bytes = 0, 0
		b.Serve(w, req200)
		if w.bytes != len(b.Gzip()) {
			t.Fatalf("bytes=%d", w.bytes)
		}
	}); allocs != 0 {
		t.Fatalf("cached 200 serve allocates %v per op, want 0", allocs)
	}
}

// BenchmarkServeCachedBody measures the full-body cached serve path.
func BenchmarkServeCachedBody(b *testing.B) {
	body := MustNew("application/json", bytes.Repeat([]byte(`{"k":"v"},`), 200))
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	w := &nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Serve(w, req)
	}
	b.SetBytes(int64(len(body.Data())))
}

// BenchmarkServeNotModified measures the 304 revalidation path.
func BenchmarkServeNotModified(b *testing.B) {
	body := MustNew("application/json", bytes.Repeat([]byte(`{"k":"v"},`), 200))
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.Header.Set("If-None-Match", body.ETag())
	w := &nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := body.Serve(w, req); res.Status != http.StatusNotModified {
			b.Fatalf("status = %d", res.Status)
		}
	}
}
