// Package reportdb is the small SQL-database stand-in at the end of the
// DSA pipeline (§3.5): SCOPE job results land in tables here, and
// visualization, reports, and alerts read them back. It supports typed
// rows, predicate queries, ordering and limits — enough for dashboards,
// nothing more.
package reportdb

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Row is one table row: column name to value. Supported value types for
// ordering are string, int, int64, float64, time.Time and time.Duration.
type Row map[string]any

// DB is an in-memory table store, safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	cols map[string]bool
	rows []Row
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable registers a table with a fixed column set. Creating an
// existing table is an error.
func (db *DB) CreateTable(name string, cols ...string) error {
	if len(cols) == 0 {
		return fmt.Errorf("reportdb: table %q needs columns", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("reportdb: table %q exists", name)
	}
	t := &table{cols: make(map[string]bool, len(cols))}
	for _, c := range cols {
		t.cols[c] = true
	}
	db.tables[name] = t
	return nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Insert adds a row. Every key must be a declared column; missing columns
// are allowed (NULL-ish).
func (db *DB) Insert(name string, r Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("reportdb: no table %q", name)
	}
	for col := range r {
		if !t.cols[col] {
			return fmt.Errorf("reportdb: table %q has no column %q", name, col)
		}
	}
	cp := make(Row, len(r))
	for k, v := range r {
		cp[k] = v
	}
	t.rows = append(t.rows, cp)
	return nil
}

// Count returns the number of rows in a table (0 for unknown tables).
func (db *DB) Count(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return 0
	}
	return len(t.rows)
}

// Truncate removes all rows from a table.
func (db *DB) Truncate(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("reportdb: no table %q", name)
	}
	t.rows = nil
	return nil
}

// UnknownColumnError reports a query ordering by a column the table does
// not declare. Before this existed, such queries silently compared every
// pair as equal and returned insertion order — a bug that looks like a
// correct result.
type UnknownColumnError struct {
	Table  string
	Column string
}

// Error implements error.
func (e *UnknownColumnError) Error() string {
	return fmt.Sprintf("reportdb: table %q has no column %q to order by", e.Table, e.Column)
}

// QueryOpt modifies a query.
type QueryOpt func(*query)

type query struct {
	where   func(Row) bool
	orderBy string
	desc    bool
	limit   int
}

// Where filters rows by predicate.
func Where(pred func(Row) bool) QueryOpt {
	return func(q *query) { q.where = pred }
}

// OrderBy sorts rows by a column, ascending.
func OrderBy(col string) QueryOpt {
	return func(q *query) { q.orderBy = col; q.desc = false }
}

// OrderByDesc sorts rows by a column, descending.
func OrderByDesc(col string) QueryOpt {
	return func(q *query) { q.orderBy = col; q.desc = true }
}

// Limit caps the result size.
func Limit(n int) QueryOpt {
	return func(q *query) { q.limit = n }
}

// Query returns matching rows (copies; mutating them does not affect the
// table).
func (db *DB) Query(name string, opts ...QueryOpt) ([]Row, error) {
	var q query
	for _, opt := range opts {
		opt(&q)
	}
	db.mu.RLock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.RUnlock()
		return nil, fmt.Errorf("reportdb: no table %q", name)
	}
	if q.orderBy != "" && !t.cols[q.orderBy] {
		db.mu.RUnlock()
		return nil, &UnknownColumnError{Table: name, Column: q.orderBy}
	}
	var out []Row
	for _, r := range t.rows {
		if q.where != nil && !q.where(r) {
			continue
		}
		cp := make(Row, len(r))
		for k, v := range r {
			cp[k] = v
		}
		out = append(out, cp)
	}
	db.mu.RUnlock()

	if q.orderBy != "" {
		col := q.orderBy
		sort.SliceStable(out, func(i, j int) bool {
			less := lessValues(out[i][col], out[j][col])
			if q.desc {
				return lessValues(out[j][col], out[i][col])
			}
			return less
		})
	}
	if q.limit > 0 && len(out) > q.limit {
		out = out[:q.limit]
	}
	return out, nil
}

// lessValues orders two cell values of the same dynamic type; nil sorts
// first, mismatched or unknown types keep insertion order.
func lessValues(a, b any) bool {
	if a == nil {
		return b != nil
	}
	if b == nil {
		return false
	}
	switch av := a.(type) {
	case string:
		if bv, ok := b.(string); ok {
			return av < bv
		}
	case int:
		if bv, ok := b.(int); ok {
			return av < bv
		}
	case int64:
		if bv, ok := b.(int64); ok {
			return av < bv
		}
	case float64:
		if bv, ok := b.(float64); ok {
			return av < bv
		}
	case time.Time:
		if bv, ok := b.(time.Time); ok {
			return av.Before(bv)
		}
	case time.Duration:
		if bv, ok := b.(time.Duration); ok {
			return av < bv
		}
	}
	return false
}
