package reportdb

import (
	"errors"
	"testing"
	"time"
)

// alertFeedDB builds an alerts-shaped table: the portal's alert feed is
// the canonical read — Where (recency cutoff) + OrderByDesc("at") +
// Limit(100) over a table that only grows.
func alertFeedDB(b testing.TB, rows int) (*DB, time.Time) {
	db := New()
	if err := db.CreateTable("alerts", "scope", "at", "reason", "drop_rate", "p99"); err != nil {
		b.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		if err := db.Insert("alerts", Row{
			"scope":     "dc/DC1",
			"at":        base.Add(time.Duration(i) * time.Minute),
			"reason":    "drop rate exceeds threshold",
			"drop_rate": 0.002,
			"p99":       6 * time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db, base
}

// BenchmarkAlertFeedQuery measures the portal's alert-feed query shape.
func BenchmarkAlertFeedQuery(b *testing.B) {
	const rows = 10000
	db, base := alertFeedDB(b, rows)
	cutoff := base.Add(rows / 2 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := db.Query("alerts",
			Where(func(r Row) bool { at, ok := r["at"].(time.Time); return ok && !at.Before(cutoff) }),
			OrderByDesc("at"),
			Limit(100))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 100 {
			b.Fatalf("got %d rows", len(out))
		}
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	db, _ := alertFeedDB(t, 3)
	_, err := db.Query("alerts", OrderBy("no_such_column"))
	if err == nil {
		t.Fatal("OrderBy on unknown column returned no error")
	}
	var uce *UnknownColumnError
	if !errors.As(err, &uce) {
		t.Fatalf("error %T is not *UnknownColumnError: %v", err, err)
	}
	if uce.Table != "alerts" || uce.Column != "no_such_column" {
		t.Fatalf("error fields = %+v", uce)
	}
	if _, err := db.Query("alerts", OrderByDesc("missing")); err == nil {
		t.Fatal("OrderByDesc on unknown column returned no error")
	}
	// Known columns still work, including ones the rows never populated.
	if _, err := db.Query("alerts", OrderBy("reason")); err != nil {
		t.Fatal(err)
	}
}
