package reportdb

import (
	"errors"
	"testing"
	"time"
)

func seeded(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.CreateTable("sla", "scope", "p99_us", "drop_rate", "at"); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"scope": "dc1", "p99_us": int64(1340), "drop_rate": 7.5e-5, "at": time.Unix(100, 0)},
		{"scope": "dc2", "p99_us": int64(560), "drop_rate": 4.0e-5, "at": time.Unix(200, 0)},
		{"scope": "dc3", "p99_us": int64(900), "drop_rate": 1.0e-5, "at": time.Unix(300, 0)},
	}
	for _, r := range rows {
		if err := db.Insert("sla", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableErrors(t *testing.T) {
	db := New()
	if err := db.CreateTable("t"); err == nil {
		t.Fatal("table without columns created")
	}
	if err := db.CreateTable("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", "a"); err == nil {
		t.Fatal("duplicate table created")
	}
}

func TestInsertValidation(t *testing.T) {
	db := seeded(t)
	if err := db.Insert("nope", Row{"scope": "x"}); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	if err := db.Insert("sla", Row{"bogus": 1}); err == nil {
		t.Fatal("insert with unknown column succeeded")
	}
	// Partial rows are fine.
	if err := db.Insert("sla", Row{"scope": "partial"}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAll(t *testing.T) {
	db := seeded(t)
	rows, err := db.Query("sla")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if _, err := db.Query("missing"); err == nil {
		t.Fatal("query on missing table succeeded")
	}
}

func TestQueryWhere(t *testing.T) {
	db := seeded(t)
	rows, _ := db.Query("sla", Where(func(r Row) bool { return r["drop_rate"].(float64) > 3e-5 }))
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
}

func TestQueryOrderAndLimit(t *testing.T) {
	db := seeded(t)
	rows, _ := db.Query("sla", OrderBy("p99_us"), Limit(2))
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0]["scope"] != "dc2" || rows[1]["scope"] != "dc3" {
		t.Fatalf("order wrong: %v %v", rows[0]["scope"], rows[1]["scope"])
	}
	desc, _ := db.Query("sla", OrderByDesc("drop_rate"), Limit(1))
	if desc[0]["scope"] != "dc1" {
		t.Fatalf("desc order wrong: %v", desc[0]["scope"])
	}
	byTime, _ := db.Query("sla", OrderByDesc("at"), Limit(1))
	if byTime[0]["scope"] != "dc3" {
		t.Fatalf("time order wrong: %v", byTime[0]["scope"])
	}
}

func TestQueryReturnsCopies(t *testing.T) {
	db := seeded(t)
	rows, _ := db.Query("sla", OrderBy("scope"), Limit(1))
	rows[0]["scope"] = "mutated"
	again, _ := db.Query("sla", OrderBy("scope"), Limit(1))
	if again[0]["scope"] == "mutated" {
		t.Fatal("query rows alias table storage")
	}
}

func TestInsertCopies(t *testing.T) {
	db := New()
	db.CreateTable("t", "a")
	r := Row{"a": "original"}
	db.Insert("t", r)
	r["a"] = "mutated"
	rows, _ := db.Query("t")
	if rows[0]["a"] != "original" {
		t.Fatal("insert aliased caller's row")
	}
}

func TestCountAndTruncate(t *testing.T) {
	db := seeded(t)
	if db.Count("sla") != 3 {
		t.Fatalf("Count = %d", db.Count("sla"))
	}
	if db.Count("missing") != 0 {
		t.Fatal("Count on missing table nonzero")
	}
	if err := db.Truncate("sla"); err != nil {
		t.Fatal(err)
	}
	if db.Count("sla") != 0 {
		t.Fatal("Truncate left rows")
	}
	if err := db.Truncate("missing"); err == nil {
		t.Fatal("Truncate on missing table succeeded")
	}
}

func TestTablesSorted(t *testing.T) {
	db := New()
	db.CreateTable("zeta", "a")
	db.CreateTable("alpha", "a")
	tabs := db.Tables()
	if len(tabs) != 2 || tabs[0] != "alpha" || tabs[1] != "zeta" {
		t.Fatalf("Tables = %v", tabs)
	}
}

func TestOrderWithNilAndMixedTypes(t *testing.T) {
	db := New()
	db.CreateTable("t", "v")
	db.Insert("t", Row{"v": int64(2)})
	db.Insert("t", Row{})            // nil value sorts first
	db.Insert("t", Row{"v": "text"}) // mismatched type keeps stable order
	db.Insert("t", Row{"v": int64(1)})
	rows, err := db.Query("t", OrderBy("v"))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0]["v"] != nil {
		t.Fatalf("nil did not sort first: %v", rows[0]["v"])
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestDurationOrdering(t *testing.T) {
	db := New()
	db.CreateTable("lat", "p99")
	db.Insert("lat", Row{"p99": 5 * time.Millisecond})
	db.Insert("lat", Row{"p99": 500 * time.Microsecond})
	rows, _ := db.Query("lat", OrderBy("p99"))
	if rows[0]["p99"].(time.Duration) != 500*time.Microsecond {
		t.Fatal("duration ordering wrong")
	}
}

func TestLimitZeroMeansUnbounded(t *testing.T) {
	db := seeded(t)
	rows, err := db.Query("sla", Limit(0))
	if err != nil || len(rows) != 3 {
		t.Fatalf("rows = %d, err = %v", len(rows), err)
	}
}

func TestOrderByMissingColumnIsTypedError(t *testing.T) {
	// Ordering by an undeclared column used to silently keep insertion
	// order; it now fails loudly with a typed error (see bench_test.go for
	// the errors.As form).
	db := seeded(t)
	_, err := db.Query("sla", OrderBy("no_such_column"))
	var uce *UnknownColumnError
	if !errors.As(err, &uce) {
		t.Fatalf("err = %v, want *UnknownColumnError", err)
	}
}

func TestIntAndFloatOrdering(t *testing.T) {
	db := New()
	db.CreateTable("t", "i", "f")
	db.Insert("t", Row{"i": 3, "f": 3.5})
	db.Insert("t", Row{"i": 1, "f": 1.5})
	db.Insert("t", Row{"i": 2, "f": 2.5})
	byInt, _ := db.Query("t", OrderBy("i"))
	if byInt[0]["i"] != 1 || byInt[2]["i"] != 3 {
		t.Fatalf("int order: %v", byInt)
	}
	byFloat, _ := db.Query("t", OrderByDesc("f"))
	if byFloat[0]["f"] != 3.5 {
		t.Fatalf("float order: %v", byFloat)
	}
}
