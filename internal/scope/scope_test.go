package scope

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"pingmesh/internal/cosmos"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
)

var t0 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func mkRecord(i int, rtt time.Duration, errStr string) probe.Record {
	return probe.Record{
		Start: t0.Add(time.Duration(i) * time.Minute),
		Src:   netip.AddrFrom4([4]byte{10, 0, byte(i % 3), 1}),
		Dst:   netip.AddrFrom4([4]byte{10, 0, 9, 9}),
		RTT:   rtt,
		Err:   errStr,
	}
}

// seedStore writes n records split across two daily streams with small
// extents, so the engine gets real parallel work.
func seedStore(t *testing.T, n int) *cosmos.Store {
	t.Helper()
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r := mkRecord(i, time.Duration(200+i)*time.Microsecond, "")
		stream := fmt.Sprintf("pingmesh/2026-07-0%d", 1+i%2)
		if err := store.Append(stream, probe.EncodeBatch([]probe.Record{r})); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestRunAggregatesEverything(t *testing.T) {
	store := seedStore(t, 200)
	e := &Engine{Parallelism: 4}
	res, err := e.Run(Job{Name: "all", Source: Source{Store: store, StreamPrefix: "pingmesh/"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 200 || res.Scanned != 200 {
		t.Fatalf("Records=%d Scanned=%d, want 200", res.Records, res.Scanned)
	}
	if res.ParseErrors != 0 {
		t.Fatalf("ParseErrors = %d", res.ParseErrors)
	}
	if res.Get("").Total() != 200 {
		t.Fatalf("group total = %d", res.Get("").Total())
	}
}

func TestRunStreamPrefixSelects(t *testing.T) {
	store := seedStore(t, 100)
	e := &Engine{}
	res, err := e.Run(Job{Name: "day1", Source: Source{Store: store, StreamPrefix: "pingmesh/2026-07-01"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 50 {
		t.Fatalf("Records = %d, want 50", res.Records)
	}
}

func TestRunWhereFilters(t *testing.T) {
	store := seedStore(t, 100)
	e := &Engine{}
	res, err := e.Run(Job{
		Name:   "filtered",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		Where:  func(r *probe.Record) bool { return r.Src.As4()[2] == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Src third octet cycles 0,1,2: about a third match.
	if res.Records < 30 || res.Records > 37 {
		t.Fatalf("Records = %d, want ~34", res.Records)
	}
}

func TestRunGroupsByKey(t *testing.T) {
	store := seedStore(t, 90)
	e := &Engine{Parallelism: 3}
	res, err := e.Run(Job{
		Name:   "grouped",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		Key:    func(r *probe.Record) (string, bool) { return r.Src.String(), true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("%d groups, want 3", len(res.Groups))
	}
	var total uint64
	for _, st := range res.Groups {
		total += st.Total()
	}
	if total != 90 {
		t.Fatalf("group totals sum to %d", total)
	}
}

func TestRunKeySkips(t *testing.T) {
	store := seedStore(t, 60)
	e := &Engine{}
	res, err := e.Run(Job{
		Name:   "skippy",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		Key:    func(r *probe.Record) (string, bool) { return "", false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || res.Scanned != 60 {
		t.Fatalf("Records=%d Scanned=%d", res.Records, res.Scanned)
	}
}

func TestRunTimeWindow(t *testing.T) {
	store := seedStore(t, 120) // records at t0 + i minutes
	e := &Engine{}
	res, err := e.Run(Job{
		Name:   "window",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		From:   t0.Add(30 * time.Minute),
		To:     t0.Add(60 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 30 {
		t.Fatalf("Records = %d, want 30", res.Records)
	}
}

func TestRunSkipsCorruptRows(t *testing.T) {
	store := seedStore(t, 10)
	store.Append("pingmesh/2026-07-01", []byte("this is not a record\n"))
	e := &Engine{}
	res, err := e.Run(Job{Name: "corrupt", Source: Source{Store: store, StreamPrefix: "pingmesh/"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 10 || res.ParseErrors != 1 {
		t.Fatalf("Records=%d ParseErrors=%d", res.Records, res.ParseErrors)
	}
}

func TestRunNoStore(t *testing.T) {
	e := &Engine{}
	if _, err := e.Run(Job{Name: "nil"}); err == nil {
		t.Fatal("Run without store succeeded")
	}
}

func TestRunEmptyStore(t *testing.T) {
	store, _ := cosmos.NewStore(1, cosmos.Config{})
	e := &Engine{}
	res, err := e.Run(Job{Name: "empty", Source: Source{Store: store, StreamPrefix: ""}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || len(res.Groups) != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	// Get on a missing group returns an empty aggregate, not nil.
	if res.Get("missing").Total() != 0 {
		t.Fatal("Get(missing) not empty")
	}
}

func TestJobManagerRunsOnCadence(t *testing.T) {
	clock := simclock.NewSim(t0)
	m := NewJobManager(clock)
	defer m.StopAll()
	var runs atomic.Int64
	var lastFrom, lastTo atomic.Value
	m.Schedule("sla-10min", Every10Min, func(from, to time.Time) error {
		runs.Add(1)
		lastFrom.Store(from)
		lastTo.Store(to)
		return nil
	})
	waitFor(t, func() bool { return clock.PendingTimers() >= 1 })
	for i := 0; i < 3; i++ {
		clock.Advance(Every10Min)
		waitFor(t, func() bool { return runs.Load() == int64(i+1) })
	}
	from := lastFrom.Load().(time.Time)
	to := lastTo.Load().(time.Time)
	if to.Sub(from) != Every10Min {
		t.Fatalf("window = [%v, %v)", from, to)
	}
	if !to.Equal(t0.Add(30 * time.Minute)) {
		t.Fatalf("final window end = %v", to)
	}
	snap := m.Metrics().Snapshot()
	if snap.Counters["scope.job.sla-10min.runs"] != 3 {
		t.Fatalf("runs counter = %d", snap.Counters["scope.job.sla-10min.runs"])
	}
}

func TestJobManagerCountsErrors(t *testing.T) {
	clock := simclock.NewSim(t0)
	m := NewJobManager(clock)
	defer m.StopAll()
	var runs atomic.Int64
	m.Schedule("flaky", time.Minute, func(from, to time.Time) error {
		runs.Add(1)
		return errors.New("boom")
	})
	waitFor(t, func() bool { return clock.PendingTimers() >= 1 })
	clock.Advance(time.Minute)
	waitFor(t, func() bool { return runs.Load() == 1 })
	if m.Metrics().Snapshot().Counters["scope.job.flaky.errors"] != 1 {
		t.Fatal("error not counted")
	}
}

func TestJobManagerStop(t *testing.T) {
	clock := simclock.NewSim(t0)
	m := NewJobManager(clock)
	var runs atomic.Int64
	job := m.Schedule("stoppable", time.Minute, func(from, to time.Time) error {
		runs.Add(1)
		return nil
	})
	waitFor(t, func() bool { return clock.PendingTimers() >= 1 })
	clock.Advance(time.Minute)
	waitFor(t, func() bool { return runs.Load() == 1 })
	job.Stop()
	job.Stop() // idempotent
	time.Sleep(5 * time.Millisecond)
	clock.Advance(10 * time.Minute)
	time.Sleep(10 * time.Millisecond)
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times after Stop", runs.Load())
	}
	if job.Name() != "stoppable" {
		t.Fatal("name wrong")
	}
}

// TestJobManagerSkipsOverlappingRuns pins the no-stacking contract: a tick
// arriving while the previous invocation is still in flight is skipped and
// counted, and the next run after the slow one finishes gets the current
// grid-aligned window, not a backlog of stale ones.
func TestJobManagerSkipsOverlappingRuns(t *testing.T) {
	clock := simclock.NewSim(t0)
	m := NewJobManager(clock)
	defer m.StopAll()
	block := make(chan struct{})
	var started, finished atomic.Int64
	var lastFrom, lastTo atomic.Value
	m.Schedule("slow", Every10Min, func(from, to time.Time) error {
		started.Add(1)
		lastFrom.Store(from)
		lastTo.Store(to)
		<-block
		finished.Add(1)
		return nil
	})
	skippedCount := func() int64 {
		return m.Metrics().Snapshot().Counters["scope.job.slow.overlap_skipped"]
	}

	waitFor(t, func() bool { return clock.PendingTimers() >= 1 })
	clock.Advance(Every10Min) // first run starts and blocks
	waitFor(t, func() bool { return started.Load() == 1 })

	clock.Advance(Every10Min) // still in flight: skipped
	waitFor(t, func() bool { return skippedCount() == 1 })
	clock.Advance(Every10Min) // and again
	waitFor(t, func() bool { return skippedCount() == 2 })
	if started.Load() != 1 {
		t.Fatalf("overlapping run started: %d invocations", started.Load())
	}

	close(block) // unblock; later invocations return immediately
	waitFor(t, func() bool { return finished.Load() == 1 })
	clock.Advance(Every10Min) // next run proceeds normally
	waitFor(t, func() bool { return finished.Load() == 2 })

	// The post-skip run covers the CURRENT window [t0+30m, t0+40m) on the
	// grid — skipped windows are dropped, not replayed.
	from, to := lastFrom.Load().(time.Time), lastTo.Load().(time.Time)
	if !to.Equal(t0.Add(40*time.Minute)) || to.Sub(from) != Every10Min {
		t.Fatalf("post-skip window = [%v, %v), want [t0+30m, t0+40m)", from, to)
	}
	snap := m.Metrics().Snapshot()
	if snap.Counters["scope.job.slow.runs"] != 2 {
		t.Fatalf("runs counter = %d, want 2", snap.Counters["scope.job.slow.runs"])
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestRunHalfOpenWindows(t *testing.T) {
	store := seedStore(t, 60) // records at t0+i minutes, i in [0,60)
	e := &Engine{}
	fromOnly, err := e.Run(Job{
		Name: "from", Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		From: t0.Add(30 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromOnly.Records != 30 {
		t.Fatalf("From-only records = %d, want 30", fromOnly.Records)
	}
	toOnly, err := e.Run(Job{
		Name: "to", Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		To: t0.Add(30 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if toOnly.Records != 30 {
		t.Fatalf("To-only records = %d, want 30", toOnly.Records)
	}
}

func TestRunParallelismInvariance(t *testing.T) {
	// Property: results are identical whatever the worker count.
	store := seedStore(t, 300)
	job := Job{
		Name:   "inv",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		Key:    func(r *probe.Record) (string, bool) { return r.Src.String(), true },
	}
	base, err := (&Engine{Parallelism: 1}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		got, err := (&Engine{Parallelism: par}).Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if got.Records != base.Records || len(got.Groups) != len(base.Groups) {
			t.Fatalf("par=%d: records=%d groups=%d vs base %d/%d",
				par, got.Records, len(got.Groups), base.Records, len(base.Groups))
		}
		for k, st := range base.Groups {
			g, ok := got.Groups[k]
			if !ok || g.Total() != st.Total() || g.Percentile(0.99) != st.Percentile(0.99) {
				t.Fatalf("par=%d: group %q diverged", par, k)
			}
		}
	}
}
