package scope

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pingmesh/internal/probe"
)

// foldSpecs returns the two-spec family the fold property tests run:
// a filtered, grouped spec plus a catch-all, so multi-spec demux and the
// Where/KeyBytes paths are all exercised.
func foldSpecs() []FoldSpec {
	return []FoldSpec{
		{
			Name:  "ok-by-srcnet",
			Where: func(r *probe.Record) bool { return r.Err == "" },
			KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) {
				return append(dst, 'n', r.Src.As4()[2]), true
			},
		},
		{
			Name:     "all",
			KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) { return dst, true },
		},
	}
}

// foldExtents returns n single-record extents with RTTs, errors and Starts
// spread over several 10-minute windows.
func foldExtents(n int) [][]byte {
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		errStr := ""
		if i%7 == 0 {
			errStr = "connect: timeout"
		}
		r := mkRecord(i, time.Duration(200+i*13)*time.Microsecond, errStr)
		out[i] = probe.EncodeBatch([]probe.Record{r})
	}
	return out
}

// mergeAll merges the given partials (nil entries skipped) into a fresh
// partial in order.
func mergeAll(parts ...*Partial) *Partial {
	m := NewPartial()
	for _, p := range parts {
		if p != nil {
			m.Merge(p)
		}
	}
	return m
}

func TestPartialMergeAssociativeCommutative(t *testing.T) {
	specs := foldSpecs()
	exts := foldExtents(90)
	// Three folders over three disjoint extent thirds give three
	// independent partials per (spec, window).
	folders := make([]*Folder, 3)
	for i := range folders {
		folders[i] = NewFolder(t0, Every10Min, specs, nil)
		for j := i * 30; j < (i+1)*30; j++ {
			folders[i].FoldExtent(exts[j], t0)
		}
	}
	for _, sp := range specs {
		for win := int64(0); win < 9; win++ {
			a := folders[0].Partial(sp.Name, win)
			b := folders[1].Partial(sp.Name, win)
			c := folders[2].Partial(sp.Name, win)
			abc := mergeAll(a, b, c)
			// Associative: (a+b)+c == a+(b+c).
			if got := mergeAll(mergeAll(a, b), c); !reflect.DeepEqual(abc, got) {
				t.Fatalf("%s win %d: (a+b)+c != a+b+c", sp.Name, win)
			}
			if got := mergeAll(a, mergeAll(b, c)); !reflect.DeepEqual(abc, got) {
				t.Fatalf("%s win %d: a+(b+c) != a+b+c", sp.Name, win)
			}
			// Commutative: c+b+a == a+b+c.
			if got := mergeAll(c, b, a); !reflect.DeepEqual(abc, got) {
				t.Fatalf("%s win %d: c+b+a != a+b+c", sp.Name, win)
			}
		}
	}
}

// TestShardSplitMergeEqualsSingleFold is the sharding correctness
// property: partition extents across k shard folders at random, fold each
// shard's share in random order, and the merged per-window partials must
// equal one folder folding everything.
func TestShardSplitMergeEqualsSingleFold(t *testing.T) {
	specs := foldSpecs()
	exts := foldExtents(120)
	single := NewFolder(t0, Every10Min, specs, nil)
	for _, data := range exts {
		single.FoldExtent(data, t0)
	}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		k := 2 + trial%3
		folders := make([]*Folder, k)
		for s := range folders {
			folders[s] = NewFolder(t0, Every10Min, specs, nil)
		}
		assign := make([][]int, k)
		for i := range exts {
			s := rng.Intn(k)
			assign[s] = append(assign[s], i)
		}
		for s := range folders {
			// Random fold order within the shard: Merge and folding must
			// both be order-insensitive.
			rng.Shuffle(len(assign[s]), func(a, b int) {
				assign[s][a], assign[s][b] = assign[s][b], assign[s][a]
			})
			for _, i := range assign[s] {
				folders[s].FoldExtent(exts[i], t0)
			}
		}
		for _, sp := range specs {
			for win := int64(0); win < 12; win++ {
				want := mergeAll(single.Partial(sp.Name, win))
				parts := make([]*Partial, k)
				for s := range folders {
					parts[s] = folders[s].Partial(sp.Name, win)
				}
				if got := mergeAll(parts...); !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d, %s win %d: sharded merge != single fold", trial, sp.Name, win)
				}
			}
		}
	}
}

func TestFolderWindowing(t *testing.T) {
	f := NewFolder(t0, Every10Min, foldSpecs(), nil)
	if idx := f.windowIndex(t0); idx != 0 {
		t.Fatalf("windowIndex(anchor) = %d", idx)
	}
	if idx := f.windowIndex(t0.Add(9*time.Minute + 59*time.Second)); idx != 0 {
		t.Fatalf("windowIndex(anchor+9:59) = %d", idx)
	}
	if idx := f.windowIndex(t0.Add(10 * time.Minute)); idx != 1 {
		t.Fatalf("windowIndex(anchor+10m) = %d", idx)
	}
	// Floor division: records before the anchor land in negative windows.
	if idx := f.windowIndex(t0.Add(-time.Second)); idx != -1 {
		t.Fatalf("windowIndex(anchor-1s) = %d", idx)
	}
	if idx := f.windowIndex(t0.Add(-10 * time.Minute)); idx != -1 {
		t.Fatalf("windowIndex(anchor-10m) = %d", idx)
	}
	if win, ok := f.Aligned(t0.Add(20*time.Minute), t0.Add(30*time.Minute)); !ok || win != 2 {
		t.Fatalf("Aligned(+20m,+30m) = %d, %v", win, ok)
	}
	if _, ok := f.Aligned(t0, t0.Add(20*time.Minute)); ok {
		t.Fatal("Aligned accepted a 20-minute span")
	}
	if _, ok := f.Aligned(t0.Add(time.Minute), t0.Add(11*time.Minute)); ok {
		t.Fatal("Aligned accepted an off-grid window")
	}
}

func TestFolderDropWindowsBefore(t *testing.T) {
	f := NewFolder(t0, Every10Min, foldSpecs(), nil)
	for _, data := range foldExtents(40) {
		f.FoldExtent(data, t0)
	}
	if f.Partial("all", 0) == nil || f.Partial("all", 3) == nil {
		t.Fatal("expected partials in windows 0 and 3")
	}
	f.DropWindowsBefore(2)
	if f.Partial("all", 0) != nil || f.Partial("all", 1) != nil {
		t.Fatal("dropped windows still present")
	}
	if f.Partial("all", 2) == nil || f.Partial("all", 3) == nil {
		t.Fatal("retained windows lost")
	}
	// Folding still works after the drop (window cache was invalidated).
	before := f.Partial("all", 0)
	f.FoldExtent(probe.EncodeBatch([]probe.Record{mkRecord(1, time.Millisecond, "")}), t0)
	if before != nil {
		t.Fatal("unreachable")
	}
	if f.Partial("all", 0) == nil {
		t.Fatal("refold into dropped window did not recreate the partial")
	}
}

// TestFoldExtentZeroAlloc guards the fold hot path: once group keys and
// window partials exist, folding an extent allocates nothing per record
// (CI tier 3).
func TestFoldExtentZeroAlloc(t *testing.T) {
	specs := foldSpecs()
	f := NewFolder(t0, Every10Min, specs, nil)
	recs := make([]probe.Record, 0, 256)
	for i := 0; i < 256; i++ {
		errStr := ""
		if i%9 == 0 {
			errStr = "connect: timeout"
		}
		recs = append(recs, mkRecord(i%30, time.Duration(150+i*7)*time.Microsecond, errStr))
	}
	data := probe.EncodeBatch(recs)
	f.FoldExtent(data, t0) // warm up: materialize groups, windows, key buffer
	allocs := testing.AllocsPerRun(20, func() {
		f.FoldExtent(data, t0)
	})
	if allocs != 0 {
		t.Fatalf("FoldExtent allocates %.1f times per extent (%d records), want 0", allocs, len(recs))
	}
}
