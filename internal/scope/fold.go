package scope

import (
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/probe"
	"pingmesh/internal/trace"
)

// FoldSpec is the window-free core of a recurring Job: the filter and
// grouping of a 10-minute analysis, registered once so every sealed extent
// can be folded into per-(spec, window) partials as it lands. The cycle
// then merges partials instead of re-decoding the extent.
type FoldSpec struct {
	// Name identifies the spec; it must match the recurring Job.Name the
	// cycle will assemble results for.
	Name string
	// Where optionally filters records, exactly as Job.Where.
	Where func(*probe.Record) bool
	// KeyBytes groups records, exactly as Job.KeyBytes (allocation-free
	// append-style keyer). Required: incremental specs are the hot path.
	KeyBytes func(dst []byte, r *probe.Record) ([]byte, bool)
}

// Partial is a mergeable per-(spec, window) partial aggregate: the group
// aggregates plus the tallies a Result carries, restricted to records whose
// Start falls in one window. Merge is associative and commutative (group
// histograms are exact integer bucket sums), so partials folded by
// different shards in any order combine to the same bytes.
type Partial struct {
	// Groups holds one aggregate per group key.
	Groups map[string]*analysis.LatencyStats
	// Records is how many records were folded (after filtering/keying).
	Records uint64
	// MinStart/MaxStart mark the earliest and latest record Start folded
	// into this window (zero when Records is 0): the freshness marks.
	MinStart, MaxStart time.Time
}

// NewPartial returns an empty partial.
func NewPartial() *Partial {
	return &Partial{Groups: make(map[string]*analysis.LatencyStats)}
}

// Merge folds o into p. o is not mutated and shares no state with p
// afterwards (group aggregates are deep-copied on first sight), so live
// partials can keep folding while a cycle merges snapshots of them.
func (p *Partial) Merge(o *Partial) {
	for k, st := range o.Groups {
		if cur, ok := p.Groups[k]; ok {
			cur.Merge(st)
		} else {
			p.Groups[k] = st.Clone()
		}
	}
	p.Records += o.Records
	if o.Records > 0 {
		if p.MinStart.IsZero() || o.MinStart.Before(p.MinStart) {
			p.MinStart = o.MinStart
		}
		if o.MaxStart.After(p.MaxStart) {
			p.MaxStart = o.MaxStart
		}
	}
}

// observe folds one record's key into the partial. kb is the interned-on-
// first-sight group key (same idiom as extentSink.process).
func (p *Partial) observe(kb []byte, r *probe.Record) {
	st := p.Groups[string(kb)]
	if st == nil {
		st = analysis.NewLatencyStats()
		p.Groups[string(kb)] = st
	}
	st.Add(r)
	p.Records++
	if p.MinStart.IsZero() || r.Start.Before(p.MinStart) {
		p.MinStart = r.Start
	}
	if r.Start.After(p.MaxStart) {
		p.MaxStart = r.Start
	}
}

// observeSketch folds one per-peer sketch into the partial: summarized
// probe counts land straight in the group's histogram buckets (no
// per-record replay), and the freshness marks advance by the sketch's
// exact time range.
func (p *Partial) observeSketch(kb []byte, sk *probe.Sketch) {
	st := p.Groups[string(kb)]
	if st == nil {
		st = analysis.NewLatencyStats()
		p.Groups[string(kb)] = st
	}
	st.AddSketch(sk)
	p.Records += sk.Records()
	if p.MinStart.IsZero() || sk.MinStart.Before(p.MinStart) {
		p.MinStart = sk.MinStart
	}
	if sk.MaxStart.After(p.MaxStart) {
		p.MaxStart = sk.MaxStart
	}
}

// specState is one spec's fold state: per-window partials plus a one-entry
// cache of the window the last record landed in (records arrive in rough
// time order, so the cache turns the per-record map lookup into a compare).
type specState struct {
	spec    FoldSpec
	windows map[int64]*Partial
	curIdx  int64
	cur     *Partial
}

// Folder folds sealed extents into per-(spec, window) partials. Windows
// are [Anchor+k*Window, Anchor+(k+1)*Window) for integer k. A Folder is a
// single shard's state; it is not safe for concurrent use — the owning
// shard serializes FoldExtent calls, and cycles merge via Snapshot-style
// Partial.Merge (which deep-copies) under the pipeline's pass lock.
type Folder struct {
	// Anchor fixes the window grid origin.
	Anchor time.Time
	// Window is the fold window length (the 10-minute DSA cadence).
	Window time.Duration
	// Tracer, if non-nil, re-attaches sampled traces exactly as the scan
	// path does; matched IDs accumulate until TakeTraces.
	Tracer *trace.Tracer

	specs []*specState

	// Extent-level tallies. Scanned/ParseErrors are window-free (the scan
	// counts records before any filter), so a cycle's totals are these plus
	// the tail scan's — matching what a full re-scan would have counted.
	scanned     uint64
	parseErrors uint64
	extents     uint64
	lastFold    time.Time

	sc     probe.Scanner
	keyBuf []byte
	rep    probe.Record // representative record for the current sketch
	traces []trace.TraceID
}

// NewFolder returns a folder for the given specs.
func NewFolder(anchor time.Time, window time.Duration, specs []FoldSpec, tracer *trace.Tracer) *Folder {
	f := &Folder{Anchor: anchor, Window: window, Tracer: tracer}
	for _, sp := range specs {
		f.specs = append(f.specs, &specState{
			spec:    sp,
			windows: make(map[int64]*Partial),
			curIdx:  -1 << 62,
		})
	}
	return f
}

// windowIndex returns the floor-division window index of t on the grid.
func (f *Folder) windowIndex(t time.Time) int64 {
	d := t.Sub(f.Anchor)
	idx := int64(d / f.Window)
	if d < 0 && d%f.Window != 0 {
		idx--
	}
	return idx
}

// Aligned reports whether [from, to) is exactly one grid window, i.e.
// whether folded partials can serve it.
func (f *Folder) Aligned(from, to time.Time) (int64, bool) {
	if to.Sub(from) != f.Window {
		return 0, false
	}
	d := from.Sub(f.Anchor)
	if d%f.Window != 0 {
		return 0, false
	}
	return f.windowIndex(from), true
}

// FoldExtent folds one sealed extent's bytes into the per-(spec, window)
// partials. data is only read during the call (the cosmos zero-copy
// aliasing contract); nothing the folder retains aliases it. The
// steady-state loop allocates nothing per record (TestFoldExtentZeroAlloc).
//
// Binary extents fold their sketches straight into the partials' histogram
// buckets: filters and keyers see a representative record (identity fields
// plus Start = MinStart), and the whole sketch lands in MinStart's window
// — sound because the agent cuts sketches on the analysis window grid, so
// a sketch never straddles a window boundary.
func (f *Folder) FoldExtent(data []byte, at time.Time) {
	f.sc.Reset(data)
	for {
		kind := f.sc.ScanEntry()
		if kind == probe.EntryEOF {
			break
		}
		if f.sc.RowErr() != nil {
			f.parseErrors++
			continue
		}
		var r *probe.Record
		var sk *probe.Sketch
		if kind == probe.EntrySketch {
			sk = f.sc.Sketch()
			sk.FillRecord(&f.rep)
			r = &f.rep
			f.scanned += sk.Records()
		} else {
			r = f.sc.Record()
			f.scanned++
			if f.Tracer != nil && f.Tracer.HasActiveProbes() {
				f.matchTrace(r)
			}
		}
		idx := f.windowIndex(r.Start)
		for _, ss := range f.specs {
			if ss.spec.Where != nil && !ss.spec.Where(r) {
				continue
			}
			kb, ok := ss.spec.KeyBytes(f.keyBuf[:0], r)
			if !ok {
				continue
			}
			f.keyBuf = kb[:0]
			if idx != ss.curIdx || ss.cur == nil {
				p := ss.windows[idx]
				if p == nil {
					p = NewPartial()
					ss.windows[idx] = p
				}
				ss.curIdx, ss.cur = idx, p
			}
			if sk != nil {
				ss.cur.observeSketch(kb, sk)
			} else {
				ss.cur.observe(kb, r)
			}
		}
	}
	f.extents++
	f.lastFold = at
}

func (f *Folder) matchTrace(r *probe.Record) {
	if tid := f.Tracer.MatchProbe(r.Src, r.SrcPort, r.Start.UnixNano()); tid != 0 {
		now := f.Tracer.Now()
		f.Tracer.Ring("scope").Span(tid, trace.StageIngest, "fold", now, now, true)
		for _, have := range f.traces {
			if have == tid {
				return
			}
		}
		f.traces = append(f.traces, tid)
	}
}

// Partial returns the live partial for (spec name, window index), or nil
// if nothing folded into it. Callers must not mutate it — Merge into a
// fresh Partial to consume.
func (f *Folder) Partial(spec string, win int64) *Partial {
	for _, ss := range f.specs {
		if ss.spec.Name == spec {
			return ss.windows[win]
		}
	}
	return nil
}

// DropWindowsBefore forgets partials for windows strictly below min,
// bounding memory across a long-running pipeline (published cycles never
// read old windows again).
func (f *Folder) DropWindowsBefore(min int64) {
	for _, ss := range f.specs {
		for idx := range ss.windows {
			if idx < min {
				delete(ss.windows, idx)
				if ss.curIdx == idx {
					ss.cur, ss.curIdx = nil, -1<<62
				}
			}
		}
	}
}

// Scanned returns the records decoded across all folded extents.
func (f *Folder) Scanned() uint64 { return f.scanned }

// ParseErrors returns undecodable rows skipped across all folded extents.
func (f *Folder) ParseErrors() uint64 { return f.parseErrors }

// Extents returns how many extents this folder has folded.
func (f *Folder) Extents() uint64 { return f.extents }

// LastFold returns when the folder last folded an extent (zero if never):
// the per-shard fold-lag freshness mark.
func (f *Folder) LastFold() time.Time { return f.lastFold }

// TakeTraces returns and clears the sampled trace IDs matched during
// folding; the cycle that consumes the partials completes them.
func (f *Folder) TakeTraces() []trace.TraceID {
	t := f.traces
	f.traces = nil
	return t
}
