package scope

import (
	"sync"
	"sync/atomic"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/simclock"
)

// The DSA pipeline runs recurring jobs at three cadences (§3.5): 10-minute
// jobs are the near-real-time path, 1-hour and 1-day jobs handle SLA
// tracking, black-hole detection, and drop analysis.
const (
	Every10Min = 10 * time.Minute
	Every1Hour = time.Hour
	Every1Day  = 24 * time.Hour
)

// JobManager submits recurring jobs automatically. Each scheduled job gets
// its own goroutine and watchdog counters.
type JobManager struct {
	clock simclock.Clock
	reg   *metrics.Registry

	mu   sync.Mutex
	jobs []*ScheduledJob
}

// NewJobManager returns a manager on the given clock (nil for wall time).
func NewJobManager(clock simclock.Clock) *JobManager {
	if clock == nil {
		clock = simclock.NewReal()
	}
	return &JobManager{clock: clock, reg: metrics.NewRegistry()}
}

// Metrics exposes per-job run counters for the watchdogs (§3.5: all
// Pingmesh components are watched; the job manager reports whether jobs
// run and how long they take).
func (m *JobManager) Metrics() *metrics.Registry { return m.reg }

// ScheduledJob is one recurring submission.
type ScheduledJob struct {
	name     string
	every    time.Duration
	stop     chan struct{}
	once     sync.Once
	inFlight atomic.Bool
	done     sync.WaitGroup
}

// Name returns the job's name.
func (s *ScheduledJob) Name() string { return s.name }

// Stop cancels future runs.
func (s *ScheduledJob) Stop() { s.once.Do(func() { close(s.stop) }) }

// Wait blocks until any in-flight invocation has returned. Stop then Wait
// gives a clean shutdown.
func (s *ScheduledJob) Wait() { s.done.Wait() }

// Schedule runs fn every interval. fn receives the window [from, to) it
// should process: the grid-aligned interval that just ended (windows are
// anchored at scheduling time, so from and to always land on exact
// multiples of the interval even when the ticker fires late). The first
// run happens one interval after scheduling.
//
// Runs never overlap: if a tick arrives while the previous invocation of
// fn is still in flight, the run is skipped — not queued — and counted on
// scope.job.<name>.overlap_skipped. A job that persistently overruns its
// interval processes every other window rather than stacking unboundedly;
// the skip counter is the watchdog signal that the interval is too tight.
func (m *JobManager) Schedule(name string, every time.Duration, fn func(from, to time.Time) error) *ScheduledJob {
	return m.ScheduleAt(name, every, m.clock.Now(), fn)
}

// ScheduleAt is Schedule with an explicit window-grid anchor, for callers
// that must line several jobs (or an incremental folder) up on one grid —
// two clock.Now() reads on a real clock never coincide.
func (m *JobManager) ScheduleAt(name string, every time.Duration, anchor time.Time, fn func(from, to time.Time) error) *ScheduledJob {
	job := &ScheduledJob{name: name, every: every, stop: make(chan struct{})}
	m.mu.Lock()
	m.jobs = append(m.jobs, job)
	m.mu.Unlock()

	runs := m.reg.Counter("scope.job." + name + ".runs")
	errors := m.reg.Counter("scope.job." + name + ".errors")
	skipped := m.reg.Counter("scope.job." + name + ".overlap_skipped")
	lastMS := m.reg.Gauge("scope.job." + name + ".last_ms")
	duration := m.reg.Histogram("scope.job." + name + ".duration")
	go func() {
		ticker := m.clock.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-job.stop:
				return
			case now := <-ticker.C:
				if !job.inFlight.CompareAndSwap(false, true) {
					skipped.Inc()
					continue
				}
				// Snap the fire time onto the anchor grid: k is the
				// nearest multiple of every (ticker jitter on a real clock
				// stays well under every/2), so [from, to) is exact and an
				// incremental cycle can serve it from folded partials.
				k := int64((now.Sub(anchor) + every/2) / every)
				to := anchor.Add(time.Duration(k) * every)
				from := to.Add(-every)
				job.done.Add(1)
				go func() {
					defer job.done.Done()
					defer job.inFlight.Store(false)
					start := m.clock.Now()
					err := fn(from, to)
					runs.Inc()
					if err != nil {
						errors.Inc()
					}
					elapsed := m.clock.Since(start)
					lastMS.Set(int64(elapsed / time.Millisecond))
					duration.Observe(elapsed)
				}()
			}
		}
	}()
	return job
}

// StopAll cancels every scheduled job.
func (m *JobManager) StopAll() {
	m.mu.Lock()
	jobs := append([]*ScheduledJob(nil), m.jobs...)
	m.mu.Unlock()
	for _, j := range jobs {
		j.Stop()
	}
}
