// Package scope reimplements the slice of SCOPE (§2.3) Pingmesh's DSA
// pipeline needs: declarative jobs over latency records stored in Cosmos,
// executed in parallel across extents — the user describes extract/filter/
// group semantics and the engine handles partitioning and parallelism —
// plus a Job Manager that submits recurring jobs (10-minute, 1-hour,
// 1-day) without user intervention (§3.5).
package scope

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/probe"
	"pingmesh/internal/trace"
)

// Source names the data a job reads: every extent of every stream whose
// name starts with StreamPrefix.
type Source struct {
	Store        *cosmos.Store
	StreamPrefix string
}

// Job is a declarative analysis over probe records, the moral equivalent
// of a SELECT ... WHERE ... GROUP BY script.
type Job struct {
	// Name identifies the job in metrics and errors.
	Name string
	// Source is the input data.
	Source Source
	// From/To optionally bound the records by Start time: [From, To).
	// Zero values leave the corresponding side unbounded.
	From, To time.Time
	// Where optionally filters records.
	Where func(*probe.Record) bool
	// Key groups records; records whose key resolves ok=false are skipped.
	// A nil Key groups everything under "".
	Key func(*probe.Record) (string, bool)
	// KeyBytes is the allocation-free form of Key and takes precedence
	// over it when both are set: it appends the group key for r to dst
	// and returns the extended slice. The engine passes a reused buffer
	// and interns the key (one string allocation per distinct group, not
	// per record), so an append-only KeyBytes implementation makes the
	// whole grouping path allocation-free. The returned slice must alias
	// dst's backing array (append semantics); the engine owns it until
	// the next record.
	KeyBytes func(dst []byte, r *probe.Record) ([]byte, bool)
}

// Result is the output of one job run.
type Result struct {
	// Groups holds one aggregate per group key.
	Groups map[string]*analysis.LatencyStats
	// Records is how many records were aggregated (after filtering),
	// counting each sketch as the number of probes it summarizes.
	Records uint64
	// Scanned is how many records were decoded, counting sketches by
	// their summarized probe count so the tally matches what a raw-record
	// upload of the same probes would have scanned.
	Scanned uint64
	// Sketches is how many per-peer sketch entries were aggregated.
	Sketches uint64
	// ParseErrors counts undecodable rows (skipped, not fatal — corrupt
	// rows must not kill a fleet-wide job).
	ParseErrors uint64
	// Traces lists the sampled end-to-end traces whose probe records this
	// run scanned (deduplicated). The DSA pipeline completes them once the
	// cycle that consumed this result has published.
	Traces []trace.TraceID
}

// Get returns the group's stats, or an empty aggregate if absent, so
// report code can read without nil checks.
func (r *Result) Get(key string) *analysis.LatencyStats {
	if s, ok := r.Groups[key]; ok {
		return s
	}
	return analysis.NewLatencyStats()
}

// Engine executes jobs.
type Engine struct {
	// Parallelism bounds concurrent extent processors. Default NumCPU.
	Parallelism int
	// Tracer, if non-nil, re-attaches sampled end-to-end traces to the
	// records the engine scans and records per-run scope-job spans. With no
	// trace in flight the per-record cost is one atomic load (tier-3
	// guarded: TestIngestTraceUnsampledZeroAlloc).
	Tracer *trace.Tracer
}

type task struct {
	stream string
	extent int
}

// Extent names one extent of one stream, for jobs that run over an
// explicit extent list instead of everything under a prefix.
type Extent struct {
	Stream string
	Index  int
}

// Run executes one job across every extent of the source in parallel and
// merges the per-worker aggregates.
func (e *Engine) Run(job Job) (*Result, error) {
	if job.Source.Store == nil {
		return nil, fmt.Errorf("scope: job %q has no source store", job.Name)
	}
	var tasks []task
	for _, stream := range job.Source.Store.Streams(job.Source.StreamPrefix) {
		for i := 0; i < job.Source.Store.NumExtents(stream); i++ {
			tasks = append(tasks, task{stream: stream, extent: i})
		}
	}
	return e.runTasks(job, tasks)
}

// RunExtents executes one job over exactly the given extents: the tail-scan
// half of an incremental cycle, where the already-folded sealed extents are
// skipped and only the unfolded remainder is decoded.
func (e *Engine) RunExtents(job Job, extents []Extent) (*Result, error) {
	if job.Source.Store == nil {
		return nil, fmt.Errorf("scope: job %q has no source store", job.Name)
	}
	tasks := make([]task, len(extents))
	for i, ext := range extents {
		tasks[i] = task{stream: ext.Stream, extent: ext.Index}
	}
	return e.runTasks(job, tasks)
}

func (e *Engine) runTasks(job Job, tasks []task) (*Result, error) {
	var runStart time.Time
	if e.Tracer != nil {
		runStart = e.Tracer.Now()
	}
	par := e.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}

	// The channel is buffered to len(tasks) so the send loop below can
	// never block: a worker that returns early on a ReadExtent error stops
	// draining, and with an unbuffered channel the sends would deadlock
	// once every worker had failed (all replicas of a store down).
	taskCh := make(chan task, len(tasks))
	for _, t := range tasks {
		taskCh <- t
	}
	close(taskCh)

	results := make([]*Result, par)
	errs := make([]error, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = e.worker(&job, taskCh)
		}(w)
	}
	wg.Wait()

	out := &Result{Groups: make(map[string]*analysis.LatencyStats)}
	for w := 0; w < par; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		r := results[w]
		out.Records += r.Records
		out.Scanned += r.Scanned
		out.Sketches += r.Sketches
		out.ParseErrors += r.ParseErrors
		for _, tid := range r.Traces {
			out.addTrace(tid)
		}
		for k, st := range r.Groups {
			if cur, ok := out.Groups[k]; ok {
				cur.Merge(st)
			} else {
				out.Groups[k] = st
			}
		}
	}
	if e.Tracer != nil {
		// One pipeline-level span per run (trace 0), plus a span on every
		// sampled trace whose record this job scanned.
		ring := e.Tracer.Ring("scope")
		end := e.Tracer.Now()
		ring.SpanAttr(0, trace.StageScopeJob, job.Name, runStart, end, true, "scanned", int64(out.Scanned))
		for _, tid := range out.Traces {
			ring.SpanAttr(tid, trace.StageScopeJob, job.Name, runStart, end, true, "records", int64(out.Records))
		}
	}
	return out, nil
}

// addTrace appends tid if not already present (trace counts stay small:
// the in-flight table is bounded).
func (r *Result) addTrace(tid trace.TraceID) {
	for _, have := range r.Traces {
		if have == tid {
			return
		}
	}
	r.Traces = append(r.Traces, tid)
}

// worker processes extents from the channel into a local result. Extent
// bytes are read zero-copy from the store and scanned in place; records
// stream straight into the group aggregators without ever being
// materialized as a []probe.Record, so the worker's steady-state loop
// allocates nothing per record (see extentSink and TestProcessExtentZeroAlloc).
func (e *Engine) worker(job *Job, tasks <-chan task) (*Result, error) {
	res := &Result{Groups: make(map[string]*analysis.LatencyStats)}
	sink := extentSink{job: job, res: res, tracer: e.Tracer}
	for t := range tasks {
		data, err := job.Source.Store.ReadExtent(t.stream, t.extent)
		if err != nil {
			return nil, fmt.Errorf("scope: job %q: %w", job.Name, err)
		}
		sink.process(data)
	}
	return res, nil
}

// extentSink is one worker's reusable streaming state: the in-place
// scanner (whose error intern table persists across extents) and the
// group-key scratch buffer. It exists as a named struct so the
// zero-allocation property of the inner loop can be tested directly.
type extentSink struct {
	job    *Job
	res    *Result
	tracer *trace.Tracer // nil when tracing is disabled
	sc     probe.Scanner
	keyBuf []byte
	rep    probe.Record // representative record for the current sketch
}

// matchTrace is the cold half of the ingest trace hook: a sampled probe is
// in flight and this record might be it. Kept out of process so the hot
// loop stays lean.
func (s *extentSink) matchTrace(r *probe.Record) {
	if tid := s.tracer.MatchProbe(r.Src, r.SrcPort, r.Start.UnixNano()); tid != 0 {
		now := s.tracer.Now()
		s.tracer.Ring("scope").Span(tid, trace.StageIngest, s.job.Name, now, now, true)
		s.res.addTrace(tid)
	}
}

// process folds one extent into the sink's result. data is only read
// during the call (the store's zero-copy aliasing contract); nothing the
// sink retains aliases it.
//
// Sketch entries are evaluated through a representative record carrying
// the identity fields every summarized probe shares and Start = MinStart.
// That is sound because (a) job filters and keyers only read identity
// fields for grouping, and (b) the agent cuts sketches on the analysis
// window grid, so MinStart's window membership is whole-sketch membership.
// Sketches carry no per-record identity, so trace re-attachment is
// record-only — the agent ships traced probes raw for exactly this reason.
func (s *extentSink) process(data []byte) {
	job, res := s.job, s.res
	s.sc.Reset(data)
	for {
		kind := s.sc.ScanEntry()
		if kind == probe.EntryEOF {
			break
		}
		if s.sc.RowErr() != nil {
			res.ParseErrors++
			continue
		}
		var r *probe.Record
		var sk *probe.Sketch
		if kind == probe.EntrySketch {
			sk = s.sc.Sketch()
			sk.FillRecord(&s.rep)
			r = &s.rep
			res.Scanned += sk.Records()
		} else {
			r = s.sc.Record()
			res.Scanned++
			// Trace re-attachment happens before the job's window/Where
			// filters: the record was ingested whether or not this particular
			// job aggregates it. Cost with no trace in flight: one nil check
			// and one atomic load.
			if s.tracer != nil && s.tracer.HasActiveProbes() {
				s.matchTrace(r)
			}
		}
		if !job.From.IsZero() && r.Start.Before(job.From) {
			continue
		}
		if !job.To.IsZero() && !r.Start.Before(job.To) {
			continue
		}
		if job.Where != nil && !job.Where(r) {
			continue
		}
		var st *analysis.LatencyStats
		if job.KeyBytes != nil {
			kb, ok := job.KeyBytes(s.keyBuf[:0], r)
			if !ok {
				continue
			}
			s.keyBuf = kb[:0]
			// Group-key interning: the map index on string(kb) does not
			// allocate; the key string is materialized only when a new
			// group is first seen.
			st = res.Groups[string(kb)]
			if st == nil {
				st = analysis.NewLatencyStats()
				res.Groups[string(kb)] = st
			}
		} else {
			key := ""
			if job.Key != nil {
				var ok bool
				key, ok = job.Key(r)
				if !ok {
					continue
				}
			}
			st = res.Groups[key]
			if st == nil {
				st = analysis.NewLatencyStats()
				res.Groups[key] = st
			}
		}
		if sk != nil {
			st.AddSketch(sk)
			res.Records += sk.Records()
			res.Sketches++
		} else {
			st.Add(r)
			res.Records++
		}
	}
}
