package scope

import (
	"testing"
	"time"

	"pingmesh/internal/cosmos"
	"pingmesh/internal/probe"
)

func BenchmarkEngineRun(b *testing.B) {
	store := seedStoreB(b, 50000)
	e := &Engine{}
	job := Job{
		Name:   "bench",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		Key:    func(r *probe.Record) (string, bool) { return r.Src.String(), true },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if res.Records != 50000 {
			b.Fatalf("records = %d", res.Records)
		}
	}
	b.ReportMetric(50000, "records")
}

// BenchmarkScopeRun is the streaming counterpart of BenchmarkEngineRun:
// the same 50k-record store, grouped by source address, but through the
// KeyBytes path so the workers never materialize record slices or key
// strings. The gap between the two benchmarks is the cost of the legacy
// string-keyed API.
func BenchmarkScopeRun(b *testing.B) {
	store := seedStoreB(b, 50000)
	var bytes int64
	for i := 0; ; i++ {
		ext, err := store.ReadExtent("pingmesh/bench", i)
		if err != nil {
			break
		}
		bytes += int64(len(ext))
	}
	e := &Engine{}
	job := Job{
		Name:   "bench-stream",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) {
			return r.Src.AppendTo(dst), true
		},
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if res.Records != 50000 {
			b.Fatalf("records = %d", res.Records)
		}
	}
	b.ReportMetric(50000, "records")
}

func seedStoreB(b *testing.B, n int) *cosmos.Store {
	b.Helper()
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 128 << 10})
	if err != nil {
		b.Fatal(err)
	}
	var batch []probe.Record
	for i := 0; i < n; i++ {
		batch = append(batch, mkRecord(i, 300*time.Microsecond, ""))
		if len(batch) == 1000 {
			if err := store.Append("pingmesh/bench", probe.EncodeBatch(batch)); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := store.Append("pingmesh/bench", probe.EncodeBatch(batch)); err != nil {
			b.Fatal(err)
		}
	}
	return store
}
