package scope

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
)

// These tests pin the sketch ingest path to the exact raw-record path: the
// same probes, shipped once as CSV records and once as binary
// sketch-plus-anomalous-raw batches, must produce identical aggregates
// through both the Engine scan path and the Folder fold path.

// sketchCorpus generates successful and anomalous records across three
// source nets and several 10-minute windows.
func sketchCorpus(n int) []probe.Record {
	recs := make([]probe.Record, 0, n)
	for i := 0; i < n; i++ {
		r := probe.Record{
			Start: t0.Add(time.Duration(i*37) * time.Second),
			Src:   netip.AddrFrom4([4]byte{10, 0, byte(i % 3), 1}),
			Dst:   netip.AddrFrom4([4]byte{10, 0, 9, 9}),
			RTT:   time.Duration(200+i*13) * time.Microsecond,
		}
		switch {
		case i%17 == 0:
			r.Err = "connect: timeout"
			r.RTT = 21 * time.Second
		case i%11 == 0:
			r.RTT = 3 * time.Second // one-retransmit drop signature
		}
		if i%5 == 0 && r.Err == "" {
			r.PayloadRTT = r.RTT + 50*time.Microsecond
		}
		recs = append(recs, r)
	}
	return recs
}

type peerWin struct {
	src, dst netip.Addr
	win      int64
}

// buildSketches splits records the way the agent does: successful,
// non-anomalous probes aggregate into per-(peer, window) sketches cut on
// the 10-minute grid; everything else stays raw.
func buildSketches(recs []probe.Record) (raw []probe.Record, sks []probe.PeerSketch) {
	m := map[peerWin]int{}
	for _, r := range recs {
		if r.Err != "" || analysis.DropSignature(r.RTT) != 0 {
			raw = append(raw, r)
			continue
		}
		k := peerWin{r.Src, r.Dst, int64(r.Start.Sub(t0) / Every10Min)}
		i, ok := m[k]
		if !ok {
			i = len(sks)
			m[k] = i
			sks = append(sks, probe.PeerSketch{
				Src: r.Src, Dst: r.Dst, DstPort: r.DstPort,
				Class: r.Class, Proto: r.Proto, QoS: r.QoS,
				PayloadLen: r.PayloadLen,
				MinStart:   r.Start, MaxStart: r.Start,
				RTT: metrics.NewLatencyHistogram(),
			})
		}
		sk := &sks[i]
		sk.RTT.Observe(r.RTT)
		if r.PayloadRTT > 0 {
			if sk.Payload == nil {
				sk.Payload = metrics.NewLatencyHistogram()
			}
			sk.Payload.Observe(r.PayloadRTT)
		}
		if r.Start.Before(sk.MinStart) {
			sk.MinStart = r.Start
		}
		if r.Start.After(sk.MaxStart) {
			sk.MaxStart = r.Start
		}
	}
	return raw, sks
}

func compareStats(t *testing.T, key string, got, want *analysis.LatencyStats) {
	t.Helper()
	if got.Total() != want.Total() || got.Success() != want.Success() || got.Failed() != want.Failed() {
		t.Fatalf("group %q: counts diverged: got %d/%d/%d want %d/%d/%d", key,
			got.Total(), got.Success(), got.Failed(),
			want.Total(), want.Success(), want.Failed())
	}
	if got.DropRate() != want.DropRate() {
		t.Fatalf("group %q: drop rate %v != %v", key, got.DropRate(), want.DropRate())
	}
	if got.Summary() != want.Summary() {
		t.Fatalf("group %q: rtt summary diverged:\ngot  %v\nwant %v", key, got.Summary(), want.Summary())
	}
	if got.PayloadSummary() != want.PayloadSummary() {
		t.Fatalf("group %q: payload summary diverged:\ngot  %v\nwant %v", key, got.PayloadSummary(), want.PayloadSummary())
	}
}

// TestEngineSketchVsExact: an Engine job over sketch-encoded uploads must
// equal the same job over the raw-record uploads — not just within error
// bounds but bucket-for-bucket, because agents and analysis share one
// histogram layout.
func TestEngineSketchVsExact(t *testing.T) {
	recs := sketchCorpus(600)
	raw, sks := buildSketches(recs)

	rawStore, _ := cosmos.NewStore(1, cosmos.Config{ExtentSize: 8 << 10})
	for i := 0; i < len(recs); i += 50 {
		end := min(i+50, len(recs))
		if err := rawStore.Append("pingmesh/d", probe.AppendBatch(nil, recs[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	skStore, _ := cosmos.NewStore(1, cosmos.Config{ExtentSize: 8 << 10})
	if err := skStore.Append("pingmesh/d", probe.AppendBinaryBatch(nil, raw, sks)); err != nil {
		t.Fatal(err)
	}

	job := Job{
		Name: "by-srcnet",
		From: t0, To: t0.Add(4 * Every10Min), // bounded: exercises the window filter on sketches
		Where: func(r *probe.Record) bool { return r.Dst.IsValid() },
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) {
			return append(dst, 'n', r.Src.As4()[2]), true
		},
	}
	e := &Engine{Parallelism: 2}
	job.Source = Source{Store: rawStore, StreamPrefix: "pingmesh/"}
	exact, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	job.Source = Source{Store: skStore, StreamPrefix: "pingmesh/"}
	sketched, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	if sketched.Records != exact.Records || sketched.Scanned != exact.Scanned {
		t.Fatalf("tallies diverged: sketch Records=%d Scanned=%d, exact Records=%d Scanned=%d",
			sketched.Records, sketched.Scanned, exact.Records, exact.Scanned)
	}
	if sketched.Sketches == 0 {
		t.Fatal("sketch pipeline aggregated no sketches")
	}
	if exact.Sketches != 0 {
		t.Fatalf("exact pipeline claims %d sketches", exact.Sketches)
	}
	if len(sketched.Groups) != len(exact.Groups) {
		t.Fatalf("group sets diverged: %d vs %d", len(sketched.Groups), len(exact.Groups))
	}
	for k, want := range exact.Groups {
		got, ok := sketched.Groups[k]
		if !ok {
			t.Fatalf("sketch pipeline missing group %q", k)
		}
		compareStats(t, k, got, want)
	}
}

// TestFolderSketchVsExact: FoldExtent over a binary extent must produce
// partials deeply equal to folding the raw records — same groups, same
// histogram bytes, same freshness marks.
func TestFolderSketchVsExact(t *testing.T) {
	recs := sketchCorpus(600)
	raw, sks := buildSketches(recs)

	exact := NewFolder(t0, Every10Min, foldSpecs(), nil)
	for i := 0; i < len(recs); i += 50 {
		end := min(i+50, len(recs))
		exact.FoldExtent(probe.AppendBatch(nil, recs[i:end]), t0)
	}
	folded := NewFolder(t0, Every10Min, foldSpecs(), nil)
	folded.FoldExtent(probe.AppendBinaryBatch(nil, raw, sks), t0)

	if folded.Scanned() != exact.Scanned() {
		t.Fatalf("scanned diverged: %d vs %d", folded.Scanned(), exact.Scanned())
	}
	for _, sp := range foldSpecs() {
		for win := int64(0); win < 8; win++ {
			want := exact.Partial(sp.Name, win)
			got := folded.Partial(sp.Name, win)
			if (want == nil) != (got == nil) {
				t.Fatalf("%s win %d: presence diverged (exact %v, sketch %v)", sp.Name, win, want != nil, got != nil)
			}
			if want == nil {
				continue
			}
			if !reflect.DeepEqual(mergeAll(want), mergeAll(got)) {
				t.Fatalf("%s win %d: sketch-folded partial != exact partial", sp.Name, win)
			}
		}
	}
}

// TestFoldExtentSketchZeroAlloc: folding a binary sketch extent must stay
// allocation-free in steady state, like the CSV fold path. Tier-3 guard.
func TestFoldExtentSketchZeroAlloc(t *testing.T) {
	recs := sketchCorpus(400)
	raw, sks := buildSketches(recs)
	data := probe.AppendBinaryBatch(nil, raw, sks)

	f := NewFolder(t0, Every10Min, foldSpecs(), nil)
	f.FoldExtent(data, t0) // warm: window partials, group keys, intern table
	allocs := testing.AllocsPerRun(20, func() {
		f.FoldExtent(data, t0)
	})
	if allocs != 0 {
		t.Fatalf("sketch FoldExtent allocated %.1f/op, want 0", allocs)
	}
}
