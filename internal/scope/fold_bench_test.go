package scope

import (
	"testing"
	"time"

	"pingmesh/internal/probe"
)

// BenchmarkFoldExtent measures the fold hot path: decoding an extent and
// summing every record into per-(spec, window) partials. This per-record
// cost times the background tier; the cycle itself only merges.
func BenchmarkFoldExtent(b *testing.B) {
	const n = 512
	f := NewFolder(t0, Every10Min, foldSpecs(), nil)
	recs := make([]probe.Record, 0, n)
	for i := 0; i < n; i++ {
		errStr := ""
		if i%101 == 0 {
			errStr = "connect: timeout"
		}
		recs = append(recs, mkRecord(i%30, time.Duration(150+i*7)*time.Microsecond, errStr))
	}
	data := probe.EncodeBatch(recs)
	f.FoldExtent(data, t0) // materialize groups, windows, key buffer
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FoldExtent(data, t0)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/record")
}

// BenchmarkPartialMerge measures the cycle-side cost: merging one shard's
// window partial into the accumulating result.
func BenchmarkPartialMerge(b *testing.B) {
	f := NewFolder(t0, Every10Min, foldSpecs(), nil)
	for _, data := range foldExtents(300) {
		f.FoldExtent(data, t0)
	}
	part := f.Partial("ok-by-srcnet", 0)
	if part == nil {
		b.Fatal("no partial in window 0")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewPartial()
		m.Merge(part)
		m.Merge(part)
	}
}
