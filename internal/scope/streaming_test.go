package scope

import (
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/probe"
)

// TestRunAllReplicasDown is the deadlock regression test: when every
// storage node is down, every worker fails its first ReadExtent and
// returns early. With an unbuffered task channel the Run send loop used to
// block forever once all workers had exited; it must instead surface the
// read error promptly.
func TestRunAllReplicasDown(t *testing.T) {
	store := seedStore(t, 100) // many extents (512-byte extent size)
	for id := 0; id < 3; id++ {
		if err := store.SetNodeDown(id, true); err != nil {
			t.Fatal(err)
		}
	}
	e := &Engine{Parallelism: 2}
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(Job{Name: "alldown", Source: Source{Store: store, StreamPrefix: "pingmesh/"}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run succeeded with every replica down")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked with every replica down")
	}
}

// TestKeyBytesMatchesKey: the allocation-free KeyBytes path must produce
// byte-identical grouping to the legacy string Key path.
func TestKeyBytesMatchesKey(t *testing.T) {
	store := seedStore(t, 300)
	base, err := (&Engine{Parallelism: 2}).Run(Job{
		Name:   "string-keys",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		Key:    func(r *probe.Record) (string, bool) { return r.Src.String(), true },
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Engine{Parallelism: 2}).Run(Job{
		Name:   "byte-keys",
		Source: Source{Store: store, StreamPrefix: "pingmesh/"},
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) {
			return r.Src.AppendTo(dst), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Records != base.Records || got.Scanned != base.Scanned {
		t.Fatalf("records %d/%d vs %d/%d", got.Records, got.Scanned, base.Records, base.Scanned)
	}
	if len(got.Groups) != len(base.Groups) {
		t.Fatalf("groups %d vs %d", len(got.Groups), len(base.Groups))
	}
	for k, st := range base.Groups {
		g, ok := got.Groups[k]
		if !ok {
			t.Fatalf("group %q missing from KeyBytes result", k)
		}
		if g.Total() != st.Total() || g.Percentile(0.99) != st.Percentile(0.99) {
			t.Fatalf("group %q diverged", k)
		}
	}
}

// TestKeyBytesSkips mirrors TestRunKeySkips for the byte path.
func TestKeyBytesSkips(t *testing.T) {
	store := seedStore(t, 60)
	res, err := (&Engine{}).Run(Job{
		Name:     "skippy-bytes",
		Source:   Source{Store: store, StreamPrefix: "pingmesh/"},
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) { return dst, false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || res.Scanned != 60 {
		t.Fatalf("Records=%d Scanned=%d", res.Records, res.Scanned)
	}
}

// TestProcessExtentZeroAlloc is the strict allocs/op guard on the worker
// inner loop: once the group set and intern tables are warm, streaming an
// extent through the sink must not allocate per record.
func TestProcessExtentZeroAlloc(t *testing.T) {
	const n = 2048
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = mkRecord(i, time.Duration(200+i%50)*time.Microsecond, "")
		if i%11 == 0 {
			recs[i].Err = "connect timeout"
		}
	}
	data := probe.EncodeBatch(recs)
	job := &Job{
		Name: "alloc-guard",
		From: t0, To: t0.Add(time.Duration(n) * time.Minute),
		Where:    func(r *probe.Record) bool { return true },
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) { return r.Src.AppendTo(dst), true },
	}
	sink := extentSink{job: job, res: &Result{Groups: make(map[string]*analysis.LatencyStats)}}
	sink.process(data) // warm: groups + key buffer + intern table
	avg := testing.AllocsPerRun(20, func() { sink.process(data) })
	perRecord := avg / n
	if perRecord > 0.01 {
		t.Fatalf("worker loop allocates %.4f allocs/record (%.1f per %d-record extent), want ~0",
			perRecord, avg, n)
	}
}

// TestScopeRunZeroAllocAmortized guards the whole Engine.Run path: over a
// 50k-record store the per-run scaffolding (channels, goroutines, maps)
// must stay constant, i.e. amortized allocations per record ~0.
func TestScopeRunZeroAllocAmortized(t *testing.T) {
	const n = 50000
	store := seedStoreN(t, n)
	e := &Engine{Parallelism: 1}
	job := Job{
		Name:     "amortized",
		Source:   Source{Store: store, StreamPrefix: "pingmesh/"},
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) { return r.Src.AppendTo(dst), true },
	}
	run := func() {
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if res.Records != n {
			t.Fatalf("records = %d", res.Records)
		}
	}
	run() // warm
	avg := testing.AllocsPerRun(5, run)
	if perRecord := avg / n; perRecord > 0.05 {
		t.Fatalf("Engine.Run allocates %.4f allocs/record (%.0f total), want ~0 per record", perRecord, avg)
	}
}

// seedStoreN seeds one stream with n records in 1000-record batches (the
// bench/guard shape: few streams, sealed extents, realistic batch headers).
func seedStoreN(tb testing.TB, n int) *cosmos.Store {
	tb.Helper()
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 128 << 10})
	if err != nil {
		tb.Fatal(err)
	}
	var batch []probe.Record
	for i := 0; i < n; i++ {
		batch = append(batch, mkRecord(i, 300*time.Microsecond, ""))
		if len(batch) == 1000 {
			if err := store.Append("pingmesh/bench", probe.EncodeBatch(batch)); err != nil {
				tb.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := store.Append("pingmesh/bench", probe.EncodeBatch(batch)); err != nil {
			tb.Fatal(err)
		}
	}
	return store
}
