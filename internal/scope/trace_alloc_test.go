package scope

import (
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/probe"
	"pingmesh/internal/trace"
)

// TestIngestTraceUnsampledZeroAlloc guards the ingest side of the
// tentpole's overhead claim: a worker streaming extents with a tracer
// attached but no sampled probes in flight pays one atomic load per
// record (the HasActiveProbes gate) and nothing else — allocs/record
// stay at the PR-2 floor (CI tier 3).
func TestIngestTraceUnsampledZeroAlloc(t *testing.T) {
	const n = 2048
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = mkRecord(i, time.Duration(200+i%50)*time.Microsecond, "")
	}
	data := probe.EncodeBatch(recs)
	job := &Job{
		Name: "trace-alloc-guard",
		From: t0, To: t0.Add(time.Duration(n) * time.Minute),
		Where:    func(r *probe.Record) bool { return true },
		KeyBytes: func(dst []byte, r *probe.Record) ([]byte, bool) { return r.Src.AppendTo(dst), true },
	}
	tr := trace.New(nil) // attached; probe table empty
	sink := extentSink{
		job:    job,
		res:    &Result{Groups: make(map[string]*analysis.LatencyStats)},
		tracer: tr,
	}
	sink.process(data) // warm: groups + key buffer + intern table
	avg := testing.AllocsPerRun(20, func() { sink.process(data) })
	perRecord := avg / n
	if perRecord > 0.01 {
		t.Fatalf("ingest with unsampled tracer allocates %.4f allocs/record (%.1f per %d-record extent), want ~0",
			perRecord, avg, n)
	}
}
