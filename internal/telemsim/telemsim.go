// Package telemsim is the telemetry-plane load harness: it drives a very
// large simulated agent fleet (up to millions) against a real telemetry
// Collector and measures what the §3.5 perfcounter path costs at
// fleet scale — collector ingest throughput, bytes per agent per
// reporting interval on the PMT1 wire, and fleet-rollup latency.
//
// Modeling note: running a million real Encoders is neither feasible nor
// necessary — an Encoder carries base/pending maps and a scratch
// histogram so it can re-carry unacked deltas, but a fleet whose reports
// are all delivered and acked ships exactly its per-window increments.
// The harness therefore keeps one 8-byte RNG per agent and synthesizes
// each report directly with the real ReportBuilder: counter deltas drawn
// from the RNG, histogram windows observed into one shared scratch
// histogram and emitted as the same sparse bucket runs the Encoder
// produces. Every byte still crosses the real wire format and the real
// Collector.Ingest path (validate, dedup, fold, rollup), so throughput
// and byte numbers are measured, not modeled. Duplicate delivery — the
// retry-after-lost-ack case — is injected at a configurable rate to keep
// the dedup path hot; in -check mode a global exact histogram and counter
// tally observe every draw, and the run fails unless the fleet rollups
// match them bit for bit.
package telemsim

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/simclock"
	"pingmesh/internal/telemetry"
)

// Config describes one telemetry-harness run.
type Config struct {
	// Agents is the simulated fleet size. Required.
	Agents int
	// DCs/PodsetsPerDC/PodsPerPodset shape the scope hierarchy agents are
	// distributed over (round-robin by pod). Defaults 8/25/25: 5000 pods,
	// so a 1M-agent fleet puts 200 agents in each pod-level rollup.
	DCs           int
	PodsetsPerDC  int
	PodsPerPodset int

	// Rounds is how many reporting intervals to simulate. Default 3.
	Rounds int
	// Interval is the reporting cadence on sim time. Default 5 minutes.
	Interval time.Duration
	// ObsPerHist is RTT observations per agent per round. Default 32.
	ObsPerHist int
	// DupRate is the probability a report is delivered twice (the
	// retry-after-lost-ack case the collector must dedup). Default 0.01.
	DupRate float64
	// GzipSampleEvery samples every Nth report through gzip to estimate
	// the compressed wire size without gzipping the whole fleet.
	// Default 1024; negative disables sampling.
	GzipSampleEvery int
	// Seed decorrelates runs. Default 1.
	Seed uint64
	// Check verifies fleet rollups against exact shadow tallies: counter
	// sums equal, histogram buckets and percentiles bit-identical.
	Check bool
	// Start anchors sim time. Default 2026-07-01T00:00:00Z.
	Start time.Time
}

func (c Config) withDefaults() Config {
	if c.DCs <= 0 {
		c.DCs = 8
	}
	if c.PodsetsPerDC <= 0 {
		c.PodsetsPerDC = 25
	}
	if c.PodsPerPodset <= 0 {
		c.PodsPerPodset = 25
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Minute
	}
	if c.ObsPerHist <= 0 {
		c.ObsPerHist = 32
	}
	if c.DupRate < 0 {
		c.DupRate = 0
	}
	if c.GzipSampleEvery == 0 {
		c.GzipSampleEvery = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// Report is one run's measurements.
type Report struct {
	Agents int    `json:"agents"`
	Rounds int    `json:"rounds"`
	Pods   int    `json:"pods"`
	Seed   uint64 `json:"seed"`

	IntervalSec float64 `json:"intervalSec"`
	ObsPerHist  int     `json:"obsPerHist"`
	DupRate     float64 `json:"dupRate"`

	// Reports is deliveries folded by the collector; Duplicates is resent
	// deliveries it deduplicated on top of that.
	Reports    int64 `json:"reports"`
	Duplicates int64 `json:"duplicates"`

	// PMT1Bytes is total uncompressed wire bytes across all deliveries.
	PMT1Bytes                int64   `json:"pmt1Bytes"`
	BytesPerAgentPerInterval float64 `json:"bytesPerAgentPerInterval"`
	// GzipRatio is compressed/raw over the sampled reports (0 when
	// sampling is off); GzipBytesPerAgentEst scales the raw per-agent
	// number by it.
	GzipRatio            float64 `json:"gzipRatio"`
	GzipBytesPerAgentEst float64 `json:"gzipBytesPerAgentEst"`

	// Ingest cost: wall seconds spent inside Collector.Ingest across the
	// run, and the derived rates.
	IngestWallSec  float64 `json:"ingestWallSec"`
	ReportsPerSec  float64 `json:"reportsPerSec"`
	IngestMBPerSec float64 `json:"ingestMBPerSec"`

	// Rollup sampling cost: wall seconds per SampleRollups call (one per
	// round), which walks every scope-level rollup into the store.
	RollupAvgSec float64 `json:"rollupAvgSec"`
	RollupMaxSec float64 `json:"rollupMaxSec"`
	SeriesKeys   int     `json:"seriesKeys"`

	// HeapMB is the process heap after the final round (collector state,
	// rollups, store, and the harness's own tables), HeapDeltaMB the
	// growth since before the fleet was built.
	HeapMB      float64 `json:"heapMB"`
	HeapDeltaMB float64 `json:"heapDeltaMB"`

	// Headline fleet percentiles, for scale context.
	FleetRTTCount uint64  `json:"fleetRttCount"`
	FleetRTTP50Ns int64   `json:"fleetRttP50Ns"`
	FleetRTTP99Ns int64   `json:"fleetRttP99Ns"`
	CheckRan      bool    `json:"checkRan"`
	WallSec       float64 `json:"wallSec"`
}

// seedFor spreads the run seed over agent indices (splitmix64 step), so
// adjacent agents get decorrelated streams and seed 0 still works.
func seedFor(seed uint64, i int) uint64 {
	z := seed + uint64(i)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next steps an xorshift64* generator.
func next(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x * 0x2545f4914f6cdd1d
}

// unitFloat draws from [0, 1).
func unitFloat(s *uint64) float64 {
	return float64(next(s)>>11) / float64(1<<53)
}

// shadow is the exact per-metric tally the -check pass compares fleet
// rollups against.
type shadow struct {
	probesSent, probesFailed, uploadsOK int64
	peers                               int64
	rtt, fetch                          *metrics.Histogram
}

// Run executes one telemetry simulation and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Agents <= 0 {
		return nil, errors.New("telemsim: Agents must be positive")
	}
	wallStart := time.Now()

	var mBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&mBefore)

	clock := simclock.NewSim(cfg.Start)
	col := telemetry.NewCollector(telemetry.CollectorConfig{
		Clock:          clock,
		SampleInterval: cfg.Interval,
	})

	pods := cfg.DCs * cfg.PodsetsPerDC * cfg.PodsPerPodset
	scopes := make([]string, pods)
	for i := range scopes {
		dc := i / (cfg.PodsetsPerDC * cfg.PodsPerPodset)
		ps := (i / cfg.PodsPerPodset) % cfg.PodsetsPerDC
		pod := i % cfg.PodsPerPodset
		scopes[i] = "dc" + strconv.Itoa(dc) + ".ps" + strconv.Itoa(ps) + ".pod" + strconv.Itoa(pod)
	}
	names := make([]string, cfg.Agents)
	for i := range names {
		names[i] = "a" + strconv.Itoa(i)
	}
	// Per-agent state is one RNG word: an always-acked fleet's next report
	// is a pure function of its window draws (see package comment).
	rngs := make([]uint64, cfg.Agents)
	for i := range rngs {
		rngs[i] = seedFor(cfg.Seed, i)
	}

	var sh *shadow
	if cfg.Check {
		sh = &shadow{rtt: metrics.NewLatencyHistogram(), fetch: metrics.NewLatencyHistogram()}
	}

	rep := &Report{
		Agents: cfg.Agents, Rounds: cfg.Rounds, Pods: pods, Seed: cfg.Seed,
		IntervalSec: cfg.Interval.Seconds(), ObsPerHist: cfg.ObsPerHist,
		DupRate: cfg.DupRate, CheckRan: cfg.Check,
	}

	var (
		b           telemetry.ReportBuilder
		scratch     = metrics.NewLatencyHistogram()
		fscratch    = metrics.NewLatencyHistogram()
		zbuf        bytes.Buffer
		zw          = gzip.NewWriter(&zbuf)
		gzRaw       int64
		gzOut       int64
		ingestDur   time.Duration
		rollupDur   []time.Duration
		nDelivery   int64
		uniqueBytes int64
	)
	fetchObs := cfg.ObsPerHist / 4
	if fetchObs < 1 {
		fetchObs = 1
	}

	for round := 0; round < cfg.Rounds; round++ {
		seq := uint64(round + 1)
		base := uint64(round) // acked previous seq; 0 = self-contained
		nowNS := clock.Now().UnixNano()
		for i := 0; i < cfg.Agents; i++ {
			rng := &rngs[i]
			b.Begin(names[i], scopes[i%pods], seq, base, nowNS)

			sent := 200 + next(rng)%100
			failed := next(rng) % 3
			uploads := 1 + next(rng)%3
			b.Counter("agent.probes_sent", sent)
			if failed != 0 {
				b.Counter("agent.probes_failed", failed)
			}
			b.Counter("agent.uploads_ok", uploads)

			var peersDelta int64
			if round == 0 {
				peersDelta = int64(2000 + next(rng)%200)
			} else {
				peersDelta = int64(next(rng)%21) - 10
			}
			if peersDelta != 0 {
				b.Gauge("agent.peers", peersDelta)
			}
			if sh != nil {
				sh.probesSent += int64(sent)
				sh.probesFailed += int64(failed)
				sh.uploadsOK += int64(uploads)
				sh.peers += peersDelta
			}

			scratch.Reset()
			for o := 0; o < cfg.ObsPerHist; o++ {
				v := time.Duration(150_000 + next(rng)%200_000)
				if next(rng)%100 == 0 {
					v += time.Duration(next(rng) % 5_000_000)
				}
				scratch.Observe(v)
				if sh != nil {
					sh.rtt.Observe(v)
				}
			}
			emitHist(&b, "agent.rtt", scratch)

			fscratch.Reset()
			for o := 0; o < fetchObs; o++ {
				v := time.Duration(1_000_000 + next(rng)%4_000_000)
				fscratch.Observe(v)
				if sh != nil {
					sh.fetch.Observe(v)
				}
			}
			emitHist(&b, "agent.fetch.duration", fscratch)

			data := b.Finish()
			uniqueBytes += int64(len(data))
			rep.PMT1Bytes += int64(len(data))
			deliver := 1
			if cfg.DupRate > 0 && unitFloat(rng) < cfg.DupRate {
				deliver = 2
			}
			for d := 0; d < deliver; d++ {
				t0 := time.Now()
				res, err := col.Ingest(data, clock.Now())
				ingestDur += time.Since(t0)
				if err != nil {
					return nil, fmt.Errorf("telemsim: agent %d round %d: %w", i, round, err)
				}
				if res.Resync {
					return nil, fmt.Errorf("telemsim: agent %d round %d: unexpected resync", i, round)
				}
				if res.Ack != seq {
					return nil, fmt.Errorf("telemsim: agent %d round %d: ack %d, want %d", i, round, res.Ack, seq)
				}
				if d == 1 {
					if !res.Duplicate {
						return nil, fmt.Errorf("telemsim: agent %d round %d: resend not deduplicated", i, round)
					}
					rep.Duplicates++
					rep.PMT1Bytes += int64(len(data))
				}
			}
			nDelivery += int64(deliver)
			if cfg.GzipSampleEvery > 0 && nDelivery%int64(cfg.GzipSampleEvery) == 0 {
				zbuf.Reset()
				zw.Reset(&zbuf)
				zw.Write(data)
				zw.Close()
				gzRaw += int64(len(data))
				gzOut += int64(zbuf.Len())
			}
		}
		rep.Reports += int64(cfg.Agents)
		t0 := time.Now()
		col.SampleRollups(clock.Now())
		rollupDur = append(rollupDur, time.Since(t0))
		clock.Advance(cfg.Interval)
	}

	rep.IngestWallSec = ingestDur.Seconds()
	if rep.IngestWallSec > 0 {
		rep.ReportsPerSec = float64(rep.Reports+rep.Duplicates) / rep.IngestWallSec
		rep.IngestMBPerSec = float64(rep.PMT1Bytes) / 1e6 / rep.IngestWallSec
	}
	rep.BytesPerAgentPerInterval = float64(uniqueBytes) / float64(rep.Reports)
	if gzRaw > 0 {
		rep.GzipRatio = float64(gzOut) / float64(gzRaw)
		rep.GzipBytesPerAgentEst = rep.BytesPerAgentPerInterval * rep.GzipRatio
	}
	var rollupTotal time.Duration
	for _, d := range rollupDur {
		rollupTotal += d
		if s := d.Seconds(); s > rep.RollupMaxSec {
			rep.RollupMaxSec = s
		}
	}
	rep.RollupAvgSec = rollupTotal.Seconds() / float64(len(rollupDur))
	rep.SeriesKeys = len(col.Store().Keys())

	if fleet, ok := col.RollupHistogram("fleet", "agent.rtt"); ok {
		rep.FleetRTTCount = fleet.Count()
		rep.FleetRTTP50Ns = int64(fleet.Percentile(0.50))
		rep.FleetRTTP99Ns = int64(fleet.Percentile(0.99))
	}

	var mAfter runtime.MemStats
	runtime.ReadMemStats(&mAfter)
	rep.HeapMB = float64(mAfter.HeapAlloc) / 1e6
	rep.HeapDeltaMB = float64(mAfter.HeapAlloc-mBefore.HeapAlloc) / 1e6

	if sh != nil {
		if err := verify(col, sh, cfg); err != nil {
			return nil, err
		}
	}
	rep.WallSec = time.Since(wallStart).Seconds()
	return rep, nil
}

// emitHist writes h's window as one wire hist entry: exact tallies plus
// the sparse bucket runs. Skips empty windows (absent = zero delta).
func emitHist(b *telemetry.ReportBuilder, name string, h *metrics.Histogram) {
	if h.Count() == 0 {
		return
	}
	b.BeginHist(name, int64(h.Sum()), int64(h.Min()), int64(h.Max()))
	it := h.Buckets()
	for {
		bk, ok := it.Next()
		if !ok {
			break
		}
		b.Bucket(bk.Index, bk.Count)
	}
	b.EndHist()
}

// verify compares the fleet rollups against the exact shadow tallies.
func verify(col *telemetry.Collector, sh *shadow, cfg Config) error {
	for _, c := range []struct {
		name string
		want int64
	}{
		{"agent.probes_sent", sh.probesSent},
		{"agent.probes_failed", sh.probesFailed},
		{"agent.uploads_ok", sh.uploadsOK},
	} {
		got, ok := col.RollupCounter("fleet", c.name)
		if !ok || got != c.want {
			return fmt.Errorf("telemsim check: fleet counter %s = %d (ok=%v), want %d", c.name, got, ok, c.want)
		}
	}
	if got, ok := col.RollupGauge("fleet", "agent.peers"); !ok || got != sh.peers {
		return fmt.Errorf("telemsim check: fleet gauge agent.peers = %d (ok=%v), want %d", got, ok, sh.peers)
	}
	for _, h := range []struct {
		name  string
		exact *metrics.Histogram
	}{
		{"agent.rtt", sh.rtt},
		{"agent.fetch.duration", sh.fetch},
	} {
		got, ok := col.RollupHistogram("fleet", h.name)
		if !ok {
			return fmt.Errorf("telemsim check: no fleet histogram %s", h.name)
		}
		if got.Count() != h.exact.Count() || got.Sum() != h.exact.Sum() ||
			got.Min() != h.exact.Min() || got.Max() != h.exact.Max() {
			return fmt.Errorf("telemsim check: %s tallies diverge: count %d/%d sum %v/%v",
				h.name, got.Count(), h.exact.Count(), got.Sum(), h.exact.Sum())
		}
		gi, ei := got.Buckets(), h.exact.Buckets()
		for {
			gb, gok := gi.Next()
			eb, eok := ei.Next()
			if gok != eok {
				return fmt.Errorf("telemsim check: %s bucket sets differ", h.name)
			}
			if !gok {
				break
			}
			if gb != eb {
				return fmt.Errorf("telemsim check: %s bucket %d = %d, want bucket %d = %d",
					h.name, gb.Index, gb.Count, eb.Index, eb.Count)
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			if got.Percentile(q) != h.exact.Percentile(q) {
				return fmt.Errorf("telemsim check: %s P%g diverges: %v != %v",
					h.name, q*100, got.Percentile(q), h.exact.Percentile(q))
			}
		}
	}
	return nil
}
