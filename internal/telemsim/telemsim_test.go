package telemsim

import (
	"testing"
	"time"
)

func TestTelemsimParitySmall(t *testing.T) {
	rep, err := Run(Config{
		Agents: 300, Rounds: 3, DCs: 2, PodsetsPerDC: 3, PodsPerPodset: 5,
		DupRate: 0.05, Check: true, GzipSampleEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reports != 900 {
		t.Fatalf("Reports = %d, want 900", rep.Reports)
	}
	if rep.BytesPerAgentPerInterval <= 0 {
		t.Fatalf("BytesPerAgentPerInterval = %v", rep.BytesPerAgentPerInterval)
	}
	if rep.GzipRatio <= 0 || rep.GzipRatio >= 1.5 {
		t.Fatalf("GzipRatio = %v", rep.GzipRatio)
	}
	if rep.FleetRTTCount != 300*3*32 {
		t.Fatalf("FleetRTTCount = %d, want %d", rep.FleetRTTCount, 300*3*32)
	}
	if rep.FleetRTTP50Ns <= 0 || rep.FleetRTTP99Ns < rep.FleetRTTP50Ns {
		t.Fatalf("fleet percentiles = %d/%d", rep.FleetRTTP50Ns, rep.FleetRTTP99Ns)
	}
	if rep.SeriesKeys == 0 || rep.RollupAvgSec <= 0 {
		t.Fatalf("rollups not sampled: keys=%d avg=%v", rep.SeriesKeys, rep.RollupAvgSec)
	}
}

func TestTelemsimEveryReportDuplicated(t *testing.T) {
	rep, err := Run(Config{
		Agents: 50, Rounds: 2, DCs: 1, PodsetsPerDC: 1, PodsPerPodset: 2,
		DupRate: 1.0, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != rep.Reports {
		t.Fatalf("Duplicates = %d, want %d (every report delivered twice)",
			rep.Duplicates, rep.Reports)
	}
}

func TestTelemsimDeterministic(t *testing.T) {
	cfg := Config{
		Agents: 120, Rounds: 2, DCs: 1, PodsetsPerDC: 2, PodsPerPodset: 3,
		DupRate: 0.1, Seed: 9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PMT1Bytes != b.PMT1Bytes || a.Duplicates != b.Duplicates ||
		a.FleetRTTP99Ns != b.FleetRTTP99Ns || a.FleetRTTCount != b.FleetRTTCount {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestTelemsimRejectsEmptyFleet(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero agents did not error")
	}
}

func TestTelemsimDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Rounds != 3 || c.Interval != 5*time.Minute || c.ObsPerHist != 32 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.DCs*c.PodsetsPerDC*c.PodsPerPodset != 5000 {
		t.Fatalf("default pods = %d, want 5000", c.DCs*c.PodsetsPerDC*c.PodsPerPodset)
	}
}
