package analysis_test

import (
	"fmt"
	"net/netip"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/probe"
)

// The drop-rate heuristic in action: RTTs carrying SYN-retransmit
// signatures count as drops, failed probes are excluded from the
// denominator (§4.2).
func ExampleLatencyStats_DropRate() {
	st := analysis.NewLatencyStats()
	add := func(rtt time.Duration, errStr string) {
		r := probe.Record{
			Src: netip.MustParseAddr("10.0.0.1"),
			Dst: netip.MustParseAddr("10.0.1.1"),
			RTT: rtt,
			Err: errStr,
		}
		st.Add(&r)
	}
	for i := 0; i < 9997; i++ {
		add(300*time.Microsecond, "")
	}
	add(3*time.Second, "")     // one drop: first SYN lost
	add(9*time.Second, "")     // correlated double loss: still one drop
	add(0, "host unreachable") // failure: excluded entirely

	fmt.Printf("drop rate %.1e over %d successful probes\n", st.DropRate(), st.Success())
	// Output:
	// drop rate 2.0e-04 over 9999 successful probes
}

// SLA violation checking with the paper's production thresholds (§4.3).
func ExampleCheck() {
	st := analysis.NewLatencyStats()
	for i := 0; i < 1000; i++ {
		r := probe.Record{
			Src: netip.MustParseAddr("10.0.0.1"),
			Dst: netip.MustParseAddr("10.0.1.1"),
			RTT: 8 * time.Millisecond, // far beyond the 5ms P99 threshold
		}
		st.Add(&r)
	}
	at := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	if a := analysis.Check("dc/DC1", st, analysis.DefaultThresholds(), at); a != nil {
		fmt.Println(a.Reason)
	}
	// Output:
	// P99 latency 8ms exceeds 5ms
}
