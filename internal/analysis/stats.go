// Package analysis implements the latency data analysis of the Pingmesh
// DSA pipeline (§3.5, §4): latency distributions and percentile summaries,
// the SYN-retransmit drop-rate heuristic, network SLA computation at
// server/pod/podset/DC/service scopes, and threshold-based SLA violation
// alerting.
package analysis

import (
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
)

// The TCP connect RTT embeds SYN retransmission timeouts: ~3s means the
// first SYN (or its SYN-ACK) was dropped once, ~9s means two correlated
// drops (§4.2). These bands classify a measured RTT.
const (
	rtt3sLow  = 2500 * time.Millisecond
	rtt3sHigh = 6 * time.Second
	rtt9sHigh = 15 * time.Second
)

// DropSignature returns 1 if the RTT carries the one-retransmit (~3s)
// signature, 2 for the two-retransmit (~9s) signature, 0 otherwise.
func DropSignature(rtt time.Duration) int {
	switch {
	case rtt >= rtt3sLow && rtt < rtt3sHigh:
		return 1
	case rtt >= rtt3sHigh && rtt < rtt9sHigh:
		return 2
	}
	return 0
}

// LatencyStats aggregates probe records: the standard Pingmesh aggregator
// used by every SCOPE job. It is not safe for concurrent use; SCOPE
// workers each own one and Merge.
type LatencyStats struct {
	rtt     *metrics.Histogram // successful connect RTTs (incl. retransmit-inflated)
	payload *metrics.Histogram // successful payload echo RTTs
	total   uint64
	success uint64
	failed  uint64
	rtt3s   uint64 // probes with the one-drop signature
	rtt9s   uint64 // probes with the correlated-drop signature
}

// NewLatencyStats returns an empty aggregator.
func NewLatencyStats() *LatencyStats {
	return &LatencyStats{
		rtt:     metrics.NewLatencyHistogram(),
		payload: metrics.NewLatencyHistogram(),
	}
}

// Add folds one record in.
func (s *LatencyStats) Add(r *probe.Record) {
	s.total++
	if !r.Success() {
		s.failed++
		return
	}
	s.success++
	s.rtt.Observe(r.RTT)
	if r.PayloadRTT > 0 {
		s.payload.Observe(r.PayloadRTT)
	}
	switch DropSignature(r.RTT) {
	case 1:
		s.rtt3s++
	case 2:
		s.rtt9s++
	}
}

// AddSketch folds a decoded per-peer latency sketch in: the wire bucket
// counts land directly in the same histogram buckets Add's Observe would
// have filled, so a sketch is indistinguishable from having added every
// summarized record — no per-record replay, one pass over the non-empty
// buckets.
//
// Sketch-covered probes are by contract successful and non-anomalous: the
// agent ships failures, retransmit-signature RTTs, and over-threshold RTTs
// as raw records (see internal/agent). AddSketch therefore counts all
// summarized probes as successes and leaves the drop-signature tallies to
// the raw records that carry them.
func (s *LatencyStats) AddSketch(sk *probe.Sketch) {
	n := sk.Records()
	s.total += n
	s.success += n
	sk.RTT.AddTo(s.rtt)
	sk.Payload.AddTo(s.payload)
}

// Clone returns a deep copy sharing no state with s: merging into the
// clone leaves s untouched, so live partial aggregates can keep folding
// while a cycle combines snapshots of them.
func (s *LatencyStats) Clone() *LatencyStats {
	c := *s
	c.rtt = s.rtt.Clone()
	c.payload = s.payload.Clone()
	return &c
}

// Merge folds another aggregator in.
func (s *LatencyStats) Merge(o *LatencyStats) {
	s.rtt.Merge(o.rtt)
	s.payload.Merge(o.payload)
	s.total += o.total
	s.success += o.success
	s.failed += o.failed
	s.rtt3s += o.rtt3s
	s.rtt9s += o.rtt9s
}

// Total returns the number of records aggregated.
func (s *LatencyStats) Total() uint64 { return s.total }

// Success returns the number of successful probes.
func (s *LatencyStats) Success() uint64 { return s.success }

// Failed returns the number of failed probes.
func (s *LatencyStats) Failed() uint64 { return s.failed }

// FailureRate returns failed/total (reachability, distinct from the packet
// drop rate — failures include down hosts, which the drop heuristic
// deliberately excludes).
func (s *LatencyStats) FailureRate() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.failed) / float64(s.total)
}

// DropRate estimates the packet drop rate with the paper's heuristic:
//
//	(probes with 3s RTT + probes with 9s RTT) / total successful probes.
//
// Failed probes are excluded from the denominator because a failed connect
// cannot be distinguished from a dead receiver; a 9s connection counts one
// drop, not two, because successive drops within a connection are strongly
// correlated (§4.2).
func (s *LatencyStats) DropRate() float64 {
	if s.success == 0 {
		return 0
	}
	return float64(s.rtt3s+s.rtt9s) / float64(s.success)
}

// Percentile returns the q-quantile of successful connect RTTs.
func (s *LatencyStats) Percentile(q float64) time.Duration { return s.rtt.Percentile(q) }

// Summary returns the percentile summary of successful connect RTTs.
func (s *LatencyStats) Summary() metrics.Summary { return s.rtt.Summarize() }

// PayloadSummary returns the percentile summary of payload echo RTTs.
func (s *LatencyStats) PayloadSummary() metrics.Summary { return s.payload.Summarize() }

// CDF returns the empirical CDF of successful connect RTTs.
func (s *LatencyStats) CDF() []metrics.CDFPoint { return s.rtt.CDF() }

// PayloadCDF returns the empirical CDF of payload RTTs.
func (s *LatencyStats) PayloadCDF() []metrics.CDFPoint { return s.payload.CDF() }
