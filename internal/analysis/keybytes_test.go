package analysis

import (
	"net/netip"
	"testing"

	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

func TestPodRefAppendToMatchesString(t *testing.T) {
	refs := []PodRef{
		{},
		{DC: 1, Podset: 2, Pod: 3},
		{DC: 12, Podset: 345, Pod: 6789},
		{DC: -1, Podset: -2, Pod: -3}, // never produced, but must still agree
	}
	for _, p := range refs {
		if got := string(p.AppendTo(nil)); got != p.String() {
			t.Errorf("AppendTo(%+v) = %q, String = %q", p, got, p.String())
		}
		// Appending to a non-empty prefix must not disturb it.
		if got := string(p.AppendTo([]byte("pre/"))); got != "pre/"+p.String() {
			t.Errorf("AppendTo with prefix = %q", got)
		}
	}
}

// TestAppendKeyersMatchStringKeyers pins every AppendX keyer to its string
// counterpart: byte-identical keys and identical ok for records whose
// endpoints resolve (or not) against the topology.
func TestAppendKeyersMatchStringKeyers(t *testing.T) {
	top := topology.SmallTestbed()
	k := &Keyer{Top: top}

	inside := func(i int) netip.Addr { return top.Server(topology.ServerID(i)).Addr }
	outside := netip.MustParseAddr("192.0.2.1")
	recs := []probe.Record{
		{Src: inside(0), Dst: inside(5)},
		{Src: inside(5), Dst: inside(0)},
		{Src: inside(0), Dst: inside(0)},
		{Src: inside(0), Dst: outside},
		{Src: outside, Dst: inside(0)},
		{Src: outside, Dst: outside},
	}
	pairs := []struct {
		name   string
		str    func(*probe.Record) (string, bool)
		append func([]byte, *probe.Record) ([]byte, bool)
	}{
		{"SrcServer", k.SrcServer, k.AppendSrcServer},
		{"SrcPod", k.SrcPod, k.AppendSrcPod},
		{"SrcDC", k.SrcDC, k.AppendSrcDC},
		{"PodPair", k.PodPair, k.AppendPodPair},
		{"DCPair", k.DCPair, k.AppendDCPair},
		{"ServerPair", k.ServerPair, k.AppendServerPair},
	}
	for _, p := range pairs {
		buf := make([]byte, 0, 64)
		for i := range recs {
			r := &recs[i]
			wantKey, wantOK := p.str(r)
			gotBytes, gotOK := p.append(buf[:0], r)
			if gotOK != wantOK {
				t.Errorf("%s(%v->%v): ok=%v, string keyer ok=%v", p.name, r.Src, r.Dst, gotOK, wantOK)
				continue
			}
			if gotOK && string(gotBytes) != wantKey {
				t.Errorf("%s(%v->%v): key %q, string keyer %q", p.name, r.Src, r.Dst, gotBytes, wantKey)
			}
		}
	}
}

// TestAppendKeyersZeroAlloc: with a warm destination buffer, the byte
// keyers must not allocate — that is their whole reason to exist.
func TestAppendKeyersZeroAlloc(t *testing.T) {
	top := topology.SmallTestbed()
	k := &Keyer{Top: top}
	r := probe.Record{Src: top.Server(0).Addr, Dst: top.Server(topology.ServerID(5)).Addr}
	buf := make([]byte, 0, 128)
	keyers := []struct {
		name string
		fn   func([]byte, *probe.Record) ([]byte, bool)
	}{
		{"AppendSrcServer", k.AppendSrcServer},
		{"AppendSrcPod", k.AppendSrcPod},
		{"AppendSrcDC", k.AppendSrcDC},
		{"AppendPodPair", k.AppendPodPair},
		{"AppendDCPair", k.AppendDCPair},
		{"AppendServerPair", k.AppendServerPair},
	}
	for _, kr := range keyers {
		kr := kr
		avg := testing.AllocsPerRun(100, func() {
			if _, ok := kr.fn(buf[:0], &r); !ok {
				t.Fatal("keyer rejected resolvable record")
			}
		})
		if avg != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", kr.name, avg)
		}
	}
}
