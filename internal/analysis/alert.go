package analysis

import (
	"fmt"
	"sort"
	"time"
)

// Thresholds define when an SLA scope is declared to have a network
// problem. The paper's production values: drop rate above 10⁻³ or P99
// latency above 5ms — both far beyond normal — fire an alert (§4.3).
type Thresholds struct {
	MaxDropRate float64
	MaxP99      time.Duration
	// MinProbes suppresses alerts from scopes with too few probes to
	// estimate a rate (a single 3s RTT among ten probes is not a 10%
	// drop rate).
	MinProbes uint64
}

// DefaultThresholds returns the paper's production thresholds.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxDropRate: 1e-3, MaxP99: 5 * time.Millisecond, MinProbes: 100}
}

// Alert is one SLA violation.
type Alert struct {
	Scope    string
	At       time.Time
	DropRate float64
	P99      time.Duration
	Reason   string
}

// String renders the alert for logs and reports.
func (a *Alert) String() string {
	return fmt.Sprintf("[%s] %s: %s (drop=%.2g p99=%v)",
		a.At.UTC().Format(time.RFC3339), a.Scope, a.Reason, a.DropRate, a.P99)
}

// Check evaluates one scope's stats against the thresholds, returning nil
// when the scope is within SLA.
func Check(scope string, st *LatencyStats, th Thresholds, at time.Time) *Alert {
	if st.Success() < th.MinProbes {
		return nil
	}
	drop := st.DropRate()
	p99 := st.Percentile(0.99)
	switch {
	case th.MaxDropRate > 0 && drop > th.MaxDropRate:
		return &Alert{Scope: scope, At: at, DropRate: drop, P99: p99,
			Reason: fmt.Sprintf("packet drop rate %.2g exceeds %.2g", drop, th.MaxDropRate)}
	case th.MaxP99 > 0 && p99 > th.MaxP99:
		return &Alert{Scope: scope, At: at, DropRate: drop, P99: p99,
			Reason: fmt.Sprintf("P99 latency %v exceeds %v", p99, th.MaxP99)}
	}
	return nil
}

// CheckAll evaluates a whole grouped result set and returns the alerts,
// ordered by scope for stable output.
func CheckAll(groups map[string]*LatencyStats, th Thresholds, at time.Time) []Alert {
	var out []Alert
	for _, scope := range sortedKeys(groups) {
		if a := Check(scope, groups[scope], th, at); a != nil {
			out = append(out, *a)
		}
	}
	return out
}

func sortedKeys(m map[string]*LatencyStats) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
