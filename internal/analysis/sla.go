package analysis

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// PodRef identifies a pod for grouping and heatmaps.
type PodRef struct {
	DC, Podset, Pod int
}

// String encodes the ref as "d<dc>.s<podset>.p<pod>".
func (p PodRef) String() string {
	return string(p.AppendTo(make([]byte, 0, 16)))
}

// AppendTo appends the String encoding to dst without allocating: the
// KeyBytes building block.
func (p PodRef) AppendTo(dst []byte) []byte {
	dst = append(dst, 'd')
	dst = strconv.AppendInt(dst, int64(p.DC), 10)
	dst = append(dst, '.', 's')
	dst = strconv.AppendInt(dst, int64(p.Podset), 10)
	dst = append(dst, '.', 'p')
	dst = strconv.AppendInt(dst, int64(p.Pod), 10)
	return dst
}

// ParsePodRef decodes the String form.
func ParsePodRef(s string) (PodRef, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "d") ||
		!strings.HasPrefix(parts[1], "s") || !strings.HasPrefix(parts[2], "p") {
		return PodRef{}, fmt.Errorf("analysis: bad pod ref %q", s)
	}
	dc, err1 := strconv.Atoi(parts[0][1:])
	ps, err2 := strconv.Atoi(parts[1][1:])
	pod, err3 := strconv.Atoi(parts[2][1:])
	if err1 != nil || err2 != nil || err3 != nil {
		return PodRef{}, fmt.Errorf("analysis: bad pod ref %q", s)
	}
	return PodRef{DC: dc, Podset: ps, Pod: pod}, nil
}

// Keyer maps probe records to SLA scope keys by resolving their addresses
// against the topology. Records whose source is unknown to the topology
// (e.g. VIP targets) yield ok=false.
type Keyer struct {
	Top *topology.Topology
}

func (k *Keyer) server(a netip.Addr) (*topology.Server, bool) {
	id, ok := k.Top.ServerByAddr(a)
	if !ok {
		return nil, false
	}
	return k.Top.Server(id), true
}

// SrcServer keys by source server name (per-server SLA).
func (k *Keyer) SrcServer(r *probe.Record) (string, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return "", false
	}
	return s.Name, true
}

// SrcPod keys by source pod (per-pod SLA).
func (k *Keyer) SrcPod(r *probe.Record) (string, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return "", false
	}
	return PodRef{DC: s.DC, Podset: s.Podset, Pod: s.Pod}.String(), true
}

// SrcPodset keys by source podset.
func (k *Keyer) SrcPodset(r *probe.Record) (string, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("d%d.s%d", s.DC, s.Podset), true
}

// SrcDC keys by source data center name (per-DC SLA).
func (k *Keyer) SrcDC(r *probe.Record) (string, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return "", false
	}
	return k.Top.DCs[s.DC].Name, true
}

// PodPair keys by (source pod, destination pod): the grouping behind the
// visualization heatmaps of §6.3. Both endpoints must resolve.
func (k *Keyer) PodPair(r *probe.Record) (string, bool) {
	src, ok := k.server(r.Src)
	if !ok {
		return "", false
	}
	dst, ok := k.server(r.Dst)
	if !ok {
		return "", false
	}
	a := PodRef{DC: src.DC, Podset: src.Podset, Pod: src.Pod}
	b := PodRef{DC: dst.DC, Podset: dst.Podset, Pod: dst.Pod}
	return a.String() + "|" + b.String(), true
}

// SplitPodPair decodes a PodPair key.
func SplitPodPair(key string) (src, dst PodRef, err error) {
	parts := strings.Split(key, "|")
	if len(parts) != 2 {
		return PodRef{}, PodRef{}, fmt.Errorf("analysis: bad pod pair %q", key)
	}
	if src, err = ParsePodRef(parts[0]); err != nil {
		return
	}
	dst, err = ParsePodRef(parts[1])
	return
}

// DCPair keys by (source DC, destination DC) name pair: the grouping of
// the inter-DC processing pipeline (§6.2). Same-DC records resolve too,
// so callers filter by class when they want WAN-only data.
func (k *Keyer) DCPair(r *probe.Record) (string, bool) {
	src, ok := k.server(r.Src)
	if !ok {
		return "", false
	}
	dst, ok := k.server(r.Dst)
	if !ok {
		return "", false
	}
	return k.Top.DCs[src.DC].Name + "->" + k.Top.DCs[dst.DC].Name, true
}

// ServerPair keys by (src addr, dst addr): the grouping black-hole
// detection reasons over.
func (k *Keyer) ServerPair(r *probe.Record) (string, bool) {
	return r.Src.String() + "|" + r.Dst.String(), true
}

// Byte-oriented keyers: the scope.Job.KeyBytes forms of the keyers above.
// They append the identical key bytes to dst instead of returning a fresh
// string, so the engine's group-key interning makes per-record grouping
// allocation-free. Each AppendX produces exactly the same key as X.

// AppendSrcServer is the KeyBytes form of SrcServer.
func (k *Keyer) AppendSrcServer(dst []byte, r *probe.Record) ([]byte, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return dst, false
	}
	return append(dst, s.Name...), true
}

// AppendSrcPod is the KeyBytes form of SrcPod.
func (k *Keyer) AppendSrcPod(dst []byte, r *probe.Record) ([]byte, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return dst, false
	}
	return PodRef{DC: s.DC, Podset: s.Podset, Pod: s.Pod}.AppendTo(dst), true
}

// AppendSrcDC is the KeyBytes form of SrcDC.
func (k *Keyer) AppendSrcDC(dst []byte, r *probe.Record) ([]byte, bool) {
	s, ok := k.server(r.Src)
	if !ok {
		return dst, false
	}
	return append(dst, k.Top.DCs[s.DC].Name...), true
}

// AppendPodPair is the KeyBytes form of PodPair.
func (k *Keyer) AppendPodPair(dst []byte, r *probe.Record) ([]byte, bool) {
	src, ok := k.server(r.Src)
	if !ok {
		return dst, false
	}
	dst2, ok := k.server(r.Dst)
	if !ok {
		return dst, false
	}
	b := PodRef{DC: src.DC, Podset: src.Podset, Pod: src.Pod}.AppendTo(dst)
	b = append(b, '|')
	b = PodRef{DC: dst2.DC, Podset: dst2.Podset, Pod: dst2.Pod}.AppendTo(b)
	return b, true
}

// AppendDCPair is the KeyBytes form of DCPair.
func (k *Keyer) AppendDCPair(dst []byte, r *probe.Record) ([]byte, bool) {
	src, ok := k.server(r.Src)
	if !ok {
		return dst, false
	}
	dst2, ok := k.server(r.Dst)
	if !ok {
		return dst, false
	}
	b := append(dst, k.Top.DCs[src.DC].Name...)
	b = append(b, '-', '>')
	b = append(b, k.Top.DCs[dst2.DC].Name...)
	return b, true
}

// AppendServerPair is the KeyBytes form of ServerPair. Addresses are
// appended with netip.Addr.AppendTo, so no intermediate strings exist.
func (k *Keyer) AppendServerPair(dst []byte, r *probe.Record) ([]byte, bool) {
	b := r.Src.AppendTo(dst)
	b = append(b, '|')
	b = r.Dst.AppendTo(b)
	return b, true
}

// Service is a named set of servers; its SLA is computed from the probes
// those servers send (§4.3: network SLA is tracked per service by mapping
// the service to the servers it uses).
type Service struct {
	Name    string
	members map[netip.Addr]struct{}
}

// NewService builds a service over member addresses.
func NewService(name string, members []netip.Addr) *Service {
	m := make(map[netip.Addr]struct{}, len(members))
	for _, a := range members {
		m[a] = struct{}{}
	}
	return &Service{Name: name, members: m}
}

// ServiceFromServers builds a service from topology server IDs.
func ServiceFromServers(name string, top *topology.Topology, ids []topology.ServerID) *Service {
	addrs := make([]netip.Addr, 0, len(ids))
	for _, id := range ids {
		addrs = append(addrs, top.Server(id).Addr)
	}
	return NewService(name, addrs)
}

// Size returns the number of member servers.
func (s *Service) Size() int { return len(s.members) }

// Contains reports whether the record was produced by a member server.
func (s *Service) Contains(r *probe.Record) bool {
	_, ok := s.members[r.Src]
	return ok
}
