package analysis

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
)

// decodeOneSketch encodes sk and decodes it back through the Scanner,
// returning the wire-form sketch.
func decodeOneSketch(t testing.TB, sk probe.PeerSketch) probe.Sketch {
	t.Helper()
	data := probe.AppendBinaryBatch(nil, nil, []probe.PeerSketch{sk})
	var sc probe.Scanner
	sc.Reset(data)
	if k := sc.ScanEntry(); k != probe.EntrySketch {
		t.Fatalf("expected a sketch entry, got kind %d (rowErr %v)", k, sc.RowErr())
	}
	return *sc.Sketch()
}

// FuzzSketchMergeVsExact pins the sketch aggregation path to the exact
// one: for any set of successful, non-anomalous probes (the only probes
// the agent sketches — failures, retransmit signatures and over-threshold
// RTTs ship raw), folding the encoded+decoded per-peer sketch into a
// LatencyStats must equal Add-ing every record, exactly — same counts,
// same drop rate, same percentile summaries. Tier-4 target.
func FuzzSketchMergeVsExact(f *testing.F) {
	f.Add(int64(1), uint16(1))
	f.Add(int64(2), uint16(100))
	f.Add(int64(3), uint16(2000))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%4096) + 1
		sk := probe.PeerSketch{
			Src:     netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Dst:     netip.AddrFrom4([4]byte{10, 0, 0, 2}),
			DstPort: 80,
			RTT:     metrics.NewLatencyHistogram(),
			Payload: metrics.NewLatencyHistogram(),
		}
		exact := NewLatencyStats()
		for i := 0; i < count; i++ {
			r := probe.Record{
				Start: at.Add(time.Duration(rng.Int63n(int64(10 * time.Minute)))),
				Src:   sk.Src, Dst: sk.Dst, DstPort: sk.DstPort,
				// Below the one-retransmit band: the agent never sketches
				// an anomalous RTT.
				RTT: time.Duration(rng.Int63n(int64(2 * time.Second))),
			}
			if rng.Intn(3) == 0 {
				r.PayloadRTT = time.Duration(rng.Int63n(int64(time.Second))) + 1
			}
			exact.Add(&r)
			sk.RTT.Observe(r.RTT)
			if r.PayloadRTT > 0 {
				sk.Payload.Observe(r.PayloadRTT)
			}
			if sk.MinStart.IsZero() || r.Start.Before(sk.MinStart) {
				sk.MinStart = r.Start
			}
			if r.Start.After(sk.MaxStart) {
				sk.MaxStart = r.Start
			}
		}

		wire := decodeOneSketch(t, sk)
		got := NewLatencyStats()
		got.AddSketch(&wire)

		if got.Total() != exact.Total() || got.Success() != exact.Success() || got.Failed() != exact.Failed() {
			t.Fatalf("counts diverged: got %d/%d/%d want %d/%d/%d",
				got.Total(), got.Success(), got.Failed(),
				exact.Total(), exact.Success(), exact.Failed())
		}
		if got.DropRate() != exact.DropRate() {
			t.Fatalf("drop rate diverged: %v vs %v", got.DropRate(), exact.DropRate())
		}
		if got.Summary() != exact.Summary() {
			t.Fatalf("rtt summary diverged:\ngot  %v\nwant %v", got.Summary(), exact.Summary())
		}
		if got.PayloadSummary() != exact.PayloadSummary() {
			t.Fatalf("payload summary diverged:\ngot  %v\nwant %v", got.PayloadSummary(), exact.PayloadSummary())
		}
	})
}

// TestAddSketchMergesWithRaw: a stats aggregate mixing sketches and raw
// anomalous records equals the all-raw aggregate over the union.
func TestAddSketchMergesWithRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sk := probe.PeerSketch{
		Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		RTT: metrics.NewLatencyHistogram(),
	}
	exact := NewLatencyStats()
	for i := 0; i < 500; i++ {
		r := probe.Record{Start: at, Src: sk.Src, Dst: sk.Dst,
			RTT: time.Duration(rng.Int63n(int64(time.Second)))}
		exact.Add(&r)
		sk.RTT.Observe(r.RTT)
		if sk.MinStart.IsZero() {
			sk.MinStart = r.Start
		}
		sk.MaxStart = r.Start
	}
	anomalous := []probe.Record{
		{Start: at, Src: sk.Src, Dst: sk.Dst, RTT: 3 * time.Second},                          // drop signature 1
		{Start: at, Src: sk.Src, Dst: sk.Dst, RTT: 9 * time.Second},                          // drop signature 2
		{Start: at, Src: sk.Src, Dst: sk.Dst, RTT: 21 * time.Second, Err: "connect timeout"}, // failure
	}
	mixed := NewLatencyStats()
	wire := decodeOneSketch(t, sk)
	mixed.AddSketch(&wire)
	for i := range anomalous {
		exact.Add(&anomalous[i])
		mixed.Add(&anomalous[i])
	}
	if mixed.Total() != exact.Total() || mixed.Failed() != exact.Failed() ||
		mixed.DropRate() != exact.DropRate() || mixed.Summary() != exact.Summary() {
		t.Fatalf("mixed aggregate diverged from exact:\ngot  %v (drop %v)\nwant %v (drop %v)",
			mixed.Summary(), mixed.DropRate(), exact.Summary(), exact.DropRate())
	}
}
