package analysis

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

var at = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func rec(rtt time.Duration, errStr string) probe.Record {
	return probe.Record{
		Start: at,
		Src:   netip.MustParseAddr("10.0.0.1"),
		Dst:   netip.MustParseAddr("10.0.1.1"),
		RTT:   rtt,
		Err:   errStr,
	}
}

func TestDropSignature(t *testing.T) {
	cases := []struct {
		rtt  time.Duration
		want int
	}{
		{300 * time.Microsecond, 0},
		{2 * time.Second, 0},
		{2500 * time.Millisecond, 1},
		{3 * time.Second, 1},
		{5999 * time.Millisecond, 1},
		{6 * time.Second, 2},
		{9 * time.Second, 2},
		{14999 * time.Millisecond, 2},
		{15 * time.Second, 0}, // beyond the retransmit window: not classified
	}
	for _, c := range cases {
		if got := DropSignature(c.rtt); got != c.want {
			t.Errorf("DropSignature(%v) = %d, want %d", c.rtt, got, c.want)
		}
	}
}

func TestLatencyStatsCounts(t *testing.T) {
	s := NewLatencyStats()
	for i := 0; i < 96; i++ {
		r := rec(300*time.Microsecond, "")
		s.Add(&r)
	}
	r3 := rec(3*time.Second, "")
	r9 := rec(9*time.Second, "")
	rf := rec(0, "timeout")
	s.Add(&r3)
	s.Add(&r9)
	s.Add(&rf)
	if s.Total() != 99 || s.Success() != 98 || s.Failed() != 1 {
		t.Fatalf("counts: total=%d success=%d failed=%d", s.Total(), s.Success(), s.Failed())
	}
	// Heuristic: (1+1)/98 — 9s counts once, failures excluded.
	want := 2.0 / 98.0
	if got := s.DropRate(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("DropRate = %g, want %g", got, want)
	}
	if fr := s.FailureRate(); fr < 0.0100 || fr > 0.0102 {
		t.Fatalf("FailureRate = %g", fr)
	}
}

func TestLatencyStatsEmptyDropRate(t *testing.T) {
	s := NewLatencyStats()
	if s.DropRate() != 0 || s.FailureRate() != 0 {
		t.Fatal("empty stats should report zero rates")
	}
}

func TestLatencyStatsMergeEqualsUnion(t *testing.T) {
	f := func(aRTTs, bRTTs []uint16) bool {
		a, b, all := NewLatencyStats(), NewLatencyStats(), NewLatencyStats()
		for _, v := range aRTTs {
			r := rec(time.Duration(v)*time.Millisecond, "")
			a.Add(&r)
			all.Add(&r)
		}
		for _, v := range bRTTs {
			r := rec(time.Duration(v)*time.Millisecond, "")
			b.Add(&r)
			all.Add(&r)
		}
		a.Merge(b)
		return a.Total() == all.Total() &&
			a.DropRate() == all.DropRate() &&
			a.Percentile(0.5) == all.Percentile(0.5) &&
			a.Percentile(0.99) == all.Percentile(0.99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadStats(t *testing.T) {
	s := NewLatencyStats()
	r := rec(300*time.Microsecond, "")
	r.PayloadRTT = 500 * time.Microsecond
	s.Add(&r)
	if s.PayloadSummary().Count != 1 {
		t.Fatal("payload observation missing")
	}
	if len(s.PayloadCDF()) == 0 || len(s.CDF()) == 0 {
		t.Fatal("CDFs empty")
	}
}

func TestPodRefRoundTrip(t *testing.T) {
	ref := PodRef{DC: 2, Podset: 13, Pod: 7}
	got, err := ParsePodRef(ref.String())
	if err != nil || got != ref {
		t.Fatalf("round trip: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "d1.s2", "dx.s1.p1", "d1.sx.p1", "d1.s1.px", "1.2.3"} {
		if _, err := ParsePodRef(bad); err == nil {
			t.Errorf("ParsePodRef(%q) succeeded", bad)
		}
	}
}

func TestKeyerScopes(t *testing.T) {
	top := topology.SmallTestbed()
	k := &Keyer{Top: top}
	src := top.Server(0)
	dst := top.Server(topology.ServerID(5)) // another server in DC1
	r := probe.Record{Src: src.Addr, Dst: dst.Addr}

	if key, ok := k.SrcServer(&r); !ok || key != src.Name {
		t.Fatalf("SrcServer = %q,%v", key, ok)
	}
	if key, ok := k.SrcPod(&r); !ok || key != "d0.s0.p0" {
		t.Fatalf("SrcPod = %q,%v", key, ok)
	}
	if key, ok := k.SrcPodset(&r); !ok || key != "d0.s0" {
		t.Fatalf("SrcPodset = %q,%v", key, ok)
	}
	if key, ok := k.SrcDC(&r); !ok || key != "DC1" {
		t.Fatalf("SrcDC = %q,%v", key, ok)
	}
	pair, ok := k.PodPair(&r)
	if !ok {
		t.Fatal("PodPair failed")
	}
	s, d, err := SplitPodPair(pair)
	if err != nil {
		t.Fatal(err)
	}
	if s != (PodRef{0, 0, 0}) {
		t.Fatalf("pair src = %v", s)
	}
	if d.DC != 0 {
		t.Fatalf("pair dst = %v", d)
	}
	if key, ok := k.ServerPair(&r); !ok || key != src.Addr.String()+"|"+dst.Addr.String() {
		t.Fatalf("ServerPair = %q", key)
	}
}

func TestKeyerUnknownAddr(t *testing.T) {
	top := topology.SmallTestbed()
	k := &Keyer{Top: top}
	r := probe.Record{Src: netip.MustParseAddr("192.0.2.1"), Dst: top.Server(0).Addr}
	if _, ok := k.SrcServer(&r); ok {
		t.Fatal("unknown source resolved")
	}
	if _, ok := k.PodPair(&r); ok {
		t.Fatal("unknown source resolved in pair")
	}
	r2 := probe.Record{Src: top.Server(0).Addr, Dst: netip.MustParseAddr("192.0.2.1")}
	if _, ok := k.PodPair(&r2); ok {
		t.Fatal("unknown destination resolved in pair")
	}
}

func TestSplitPodPairErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "d1.s1.p1", "d1.s1.p1|bogus", "bogus|d1.s1.p1"} {
		if _, _, err := SplitPodPair(bad); err == nil {
			t.Errorf("SplitPodPair(%q) succeeded", bad)
		}
	}
}

func TestService(t *testing.T) {
	top := topology.SmallTestbed()
	ids := top.DCs[0].Podsets[0].Pods[0].Servers
	svc := ServiceFromServers("search", top, ids)
	if svc.Size() != len(ids) {
		t.Fatalf("Size = %d", svc.Size())
	}
	member := probe.Record{Src: top.Server(ids[0]).Addr}
	outsider := probe.Record{Src: top.Server(top.DCs[1].Podsets[0].Pods[0].Servers[0]).Addr}
	if !svc.Contains(&member) {
		t.Fatal("member not recognized")
	}
	if svc.Contains(&outsider) {
		t.Fatal("outsider recognized")
	}
}

func TestAlertThresholds(t *testing.T) {
	th := DefaultThresholds()

	healthy := NewLatencyStats()
	for i := 0; i < 10000; i++ {
		r := rec(400*time.Microsecond, "")
		healthy.Add(&r)
	}
	if a := Check("dc", healthy, th, at); a != nil {
		t.Fatalf("healthy scope alerted: %v", a)
	}

	// Drop rate 5e-3 > 1e-3 threshold.
	droppy := NewLatencyStats()
	for i := 0; i < 10000; i++ {
		r := rec(400*time.Microsecond, "")
		droppy.Add(&r)
	}
	for i := 0; i < 50; i++ {
		r := rec(3*time.Second, "")
		droppy.Add(&r)
	}
	a := Check("dc", droppy, th, at)
	if a == nil {
		t.Fatal("droppy scope did not alert")
	}
	if a.DropRate < 4e-3 || a.Scope != "dc" || a.String() == "" {
		t.Fatalf("alert = %+v", a)
	}

	// P99 above 5ms.
	slow := NewLatencyStats()
	for i := 0; i < 1000; i++ {
		r := rec(8*time.Millisecond, "")
		slow.Add(&r)
	}
	if a := Check("dc", slow, th, at); a == nil {
		t.Fatal("slow scope did not alert")
	}

	// Too few probes: suppressed.
	tiny := NewLatencyStats()
	r := rec(3*time.Second, "")
	tiny.Add(&r)
	if a := Check("dc", tiny, th, at); a != nil {
		t.Fatalf("tiny scope alerted: %v", a)
	}
}

func TestCheckAllOrdersAlerts(t *testing.T) {
	mk := func() *LatencyStats {
		s := NewLatencyStats()
		for i := 0; i < 1000; i++ {
			r := rec(10*time.Millisecond, "")
			s.Add(&r)
		}
		return s
	}
	groups := map[string]*LatencyStats{"z": mk(), "a": mk(), "m": mk()}
	alerts := CheckAll(groups, DefaultThresholds(), at)
	if len(alerts) != 3 {
		t.Fatalf("%d alerts, want 3", len(alerts))
	}
	if alerts[0].Scope != "a" || alerts[1].Scope != "m" || alerts[2].Scope != "z" {
		t.Fatalf("alerts unordered: %v", alerts)
	}
}
