package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"pingmesh/internal/simclock"
)

func TestSampleProbeDisabled(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		if id := tr.SampleProbe(); id != 0 {
			t.Fatalf("disabled tracer sampled probe %d with id %d", i, id)
		}
	}
}

func TestSampleProbeEveryN(t *testing.T) {
	tr := New(nil)
	tr.SetSampleEvery(4)
	var sampled int
	var ids []TraceID
	for i := 0; i < 40; i++ {
		if id := tr.SampleProbe(); id != 0 {
			sampled++
			ids = append(ids, id)
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 probes at 1-in-4, want 10", sampled)
	}
	seen := map[TraceID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("trace id %d issued twice", id)
		}
		seen[id] = true
	}
}

func TestSampleEveryOne(t *testing.T) {
	tr := New(nil)
	tr.SetSampleEvery(1)
	for i := 0; i < 5; i++ {
		if id := tr.SampleProbe(); id == 0 {
			t.Fatalf("1-in-1 sampling missed probe %d", i)
		}
	}
}

func TestProbeTableMatchAndComplete(t *testing.T) {
	tr := New(nil)
	src := netip.MustParseAddr("10.0.1.5")
	other := netip.MustParseAddr("10.0.1.6")

	if tr.HasActiveProbes() {
		t.Fatal("fresh tracer reports active probes")
	}
	tr.RegisterProbe(7, src, 4242, 1000)
	tr.RegisterProbe(8, other, 4242, 1000)
	if !tr.HasActiveProbes() {
		t.Fatal("no active probes after register")
	}
	if got := tr.MatchProbe(src, 4242, 1000); got != 7 {
		t.Fatalf("MatchProbe = %d, want 7", got)
	}
	if got := tr.MatchProbe(other, 4242, 1000); got != 8 {
		t.Fatalf("MatchProbe = %d, want 8", got)
	}
	if got := tr.MatchProbe(src, 4243, 1000); got != 0 {
		t.Fatalf("MatchProbe wrong port = %d, want 0", got)
	}
	if got := tr.MatchProbe(src, 4242, 1001); got != 0 {
		t.Fatalf("MatchProbe wrong start = %d, want 0", got)
	}

	ids := tr.ActiveProbeIDs()
	if len(ids) != 2 || ids[0] != 7 || ids[1] != 8 {
		t.Fatalf("ActiveProbeIDs = %v, want [7 8]", ids)
	}

	tr.CompleteProbes([]TraceID{7})
	if got := tr.MatchProbe(src, 4242, 1000); got != 0 {
		t.Fatalf("completed trace still matches: %d", got)
	}
	if got := tr.MatchProbe(other, 4242, 1000); got != 8 {
		t.Fatalf("uncompleted trace lost: %d", got)
	}
	tr.CompleteProbes([]TraceID{8})
	if tr.HasActiveProbes() {
		t.Fatal("active probes remain after completing all")
	}
}

func TestProbeTableEviction(t *testing.T) {
	tr := New(nil)
	src := netip.MustParseAddr("10.0.0.1")
	for i := 0; i < maxActiveProbes+10; i++ {
		tr.RegisterProbe(TraceID(i+1), src, uint16(i), int64(i))
	}
	tab := tr.ActiveProbeIDs()
	if len(tab) != maxActiveProbes {
		t.Fatalf("table size %d, want bounded at %d", len(tab), maxActiveProbes)
	}
	// Oldest evicted: trace 1..10 gone, 11 survives.
	if got := tr.MatchProbe(src, 0, 0); got != 0 {
		t.Fatalf("oldest entry not evicted: %d", got)
	}
	if got := tr.MatchProbe(src, 10, 10); got != 11 {
		t.Fatalf("entry 11 missing after eviction: %d", got)
	}
}

func TestRegisterZeroIDIgnored(t *testing.T) {
	tr := New(nil)
	tr.RegisterProbe(0, netip.MustParseAddr("10.0.0.1"), 1, 1)
	if tr.HasActiveProbes() {
		t.Fatal("zero trace id registered")
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(nil)
	tr.mu.Lock()
	tr.ringCap = 4
	tr.mu.Unlock()
	r := tr.Ring("test")
	for i := 0; i < 10; i++ {
		r.Record(Span{Trace: TraceID(i), Stage: StageProbe, Start: int64(i), End: int64(i + 1)})
	}
	if r.Len() != 4 {
		t.Fatalf("ring len %d, want 4", r.Len())
	}
	spans := r.Snapshot(nil)
	if len(spans) != 4 {
		t.Fatalf("snapshot len %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := TraceID(6 + i); s.Trace != want {
			t.Fatalf("span %d trace %d, want %d (oldest-first after wrap)", i, s.Trace, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	tr := New(nil)
	r := tr.Ring("partial")
	now := time.Now()
	r.Span(3, StageUpload, "batch", now, now.Add(time.Millisecond), true)
	spans := r.Snapshot(nil)
	if len(spans) != 1 {
		t.Fatalf("snapshot len %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Trace != 3 || s.Stage != StageUpload || s.Name != "batch" || !s.OK {
		t.Fatalf("span = %+v", s)
	}
	if s.Duration() != time.Millisecond {
		t.Fatalf("duration = %v, want 1ms", s.Duration())
	}
}

func TestRingSameInstance(t *testing.T) {
	tr := New(nil)
	if tr.Ring("a") != tr.Ring("a") {
		t.Fatal("Ring returned different instances for same component")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(nil)
	ctx := NewContext(context.Background(), tr, 42)
	gotTr, gotID := FromContext(ctx)
	if gotTr != tr || gotID != 42 {
		t.Fatalf("FromContext = (%p, %d), want (%p, 42)", gotTr, gotID, tr)
	}
	if gotTr, gotID := FromContext(context.Background()); gotTr != nil || gotID != 0 {
		t.Fatalf("FromContext on bare ctx = (%v, %d), want (nil, 0)", gotTr, gotID)
	}
}

func TestFreshnessAges(t *testing.T) {
	clock := simclock.NewSim(time.Unix(1000, 0))
	f := NewFreshness(clock)
	if age := f.AgeMillis(StageUpload); age != -1 {
		t.Fatalf("unmarked age = %d, want -1", age)
	}
	if !f.MarkedAt(StageUpload).IsZero() {
		t.Fatal("unmarked MarkedAt not zero")
	}
	f.Mark(StageUpload)
	clock.Advance(90 * time.Second)
	if age := f.AgeMillis(StageUpload); age != 90_000 {
		t.Fatalf("age = %dms, want 90000", age)
	}
}

func TestHealthTransitions(t *testing.T) {
	clock := simclock.NewSim(time.Unix(1000, 0))
	f := NewFreshness(clock)
	b := DefaultBudget()

	// Nothing marked: waiting, no error.
	h := f.Check(b)
	if h.Status != "waiting" {
		t.Fatalf("boot status = %q, want waiting", h.Status)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("waiting produced error: %v", err)
	}
	if len(h.Stages) != 3 {
		t.Fatalf("monitored stages = %d, want 3 (upload, dsa-cycle, publish)", len(h.Stages))
	}

	// All fresh: ok.
	f.Mark(StageUpload)
	f.Mark(StageDSACycle)
	f.Mark(StagePublish)
	if h := f.Check(b); h.Status != "ok" {
		t.Fatalf("fresh status = %q, want ok", h.Status)
	}

	// Upload within budget at 4m, stale at 6m.
	clock.Advance(4 * time.Minute)
	if h := f.Check(b); h.Status != "ok" {
		t.Fatalf("4m status = %q, want ok", h.Status)
	}
	clock.Advance(2 * time.Minute)
	h = f.Check(b)
	if h.Status != "degraded" {
		t.Fatalf("6m status = %q, want degraded", h.Status)
	}
	err := h.Err()
	if err == nil || !errors.Is(err, ErrStale) {
		t.Fatalf("degraded Err = %v, want ErrStale", err)
	}
	var staleStages int
	for _, s := range h.Stages {
		if s.Stale {
			staleStages++
			if s.Stage != "upload" {
				t.Fatalf("stale stage %q, want upload", s.Stage)
			}
		}
	}
	if staleStages != 1 {
		t.Fatalf("stale stages = %d, want 1", staleStages)
	}

	// Mark again: recovers.
	f.Mark(StageUpload)
	if h := f.Check(b); h.Status != "ok" {
		t.Fatalf("recovered status = %q, want ok", h.Status)
	}
}

func TestDumpAndTraceSpans(t *testing.T) {
	clock := simclock.NewSim(time.Unix(5000, 0))
	tr := New(clock)
	tr.SetSampleEvery(1)
	id := tr.SampleProbe()

	start := clock.Now()
	clock.Advance(2 * time.Millisecond)
	tr.Ring("agent").Span(id, StageProbe, "10.0.0.2:4200", start, clock.Now(), true)
	start2 := clock.Now()
	clock.Advance(time.Millisecond)
	tr.Ring("scope").SpanAttr(id, StageIngest, "extent-0", start2, clock.Now(), true, "records", 100)
	tr.Ring("agent").Span(0, StageUpload, "untr", start, clock.Now(), true)

	spans := tr.TraceSpans(id)
	if len(spans) != 2 {
		t.Fatalf("TraceSpans len = %d, want 2", len(spans))
	}
	if spans[0].Stage != "probe" || spans[1].Stage != "ingest" {
		t.Fatalf("span order = %s,%s want probe,ingest", spans[0].Stage, spans[1].Stage)
	}
	if spans[1].AttrKey != "records" || spans[1].AttrVal != 100 {
		t.Fatalf("attr = %q=%d", spans[1].AttrKey, spans[1].AttrVal)
	}
	if spans[0].DurationUS != 2000 {
		t.Fatalf("probe duration = %dus, want 2000", spans[0].DurationUS)
	}

	if got := tr.TraceSpans(0); got != nil {
		t.Fatalf("TraceSpans(0) = %v, want nil", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if d.SampleEvery != 1 {
		t.Fatalf("dump sample_every = %d, want 1", d.SampleEvery)
	}
	if len(d.Rings) != 2 || d.Rings[0].Component != "agent" || d.Rings[1].Component != "scope" {
		t.Fatalf("dump rings = %+v, want sorted agent,scope", d.Rings)
	}
	if len(d.Rings[0].Spans) != 2 {
		t.Fatalf("agent ring spans = %d, want 2", len(d.Rings[0].Spans))
	}
}

func TestFormatTraceID(t *testing.T) {
	if got := FormatTraceID(0); got != "" {
		t.Fatalf("FormatTraceID(0) = %q, want empty", got)
	}
	if got := FormatTraceID(0xab); got != "000000ab" {
		t.Fatalf("FormatTraceID(0xab) = %q", got)
	}
}

func TestConcurrentTracerUse(t *testing.T) {
	tr := New(nil)
	tr.SetSampleEvery(2)
	src := netip.MustParseAddr("10.0.0.1")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := tr.Ring("agent")
			for i := 0; i < 500; i++ {
				if id := tr.SampleProbe(); id != 0 {
					tr.RegisterProbe(id, src, uint16(i), int64(g*1000+i))
					now := time.Now()
					r.Span(id, StageProbe, "t", now, now, true)
					tr.CompleteProbes([]TraceID{id})
				}
				tr.MatchProbe(src, uint16(i), int64(i))
				tr.HasActiveProbes()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tr.Dump()
			tr.Freshness().Mark(StageUpload)
			tr.Freshness().Check(DefaultBudget())
		}
	}()
	wg.Wait()
}

func TestStageString(t *testing.T) {
	want := []string{"probe", "netprobe", "encode", "upload", "ingest", "scope-job", "dsa-cycle", "publish"}
	for s := Stage(0); s < numStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("Stage(%d).String() = %q, want %q", s, s.String(), want[s])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage name")
	}
}
