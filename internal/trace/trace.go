// Package trace is Pingmesh's in-process tracing and pipeline
// self-monitoring layer: the answer to "who watches Pingmesh?" (§3.5 — the
// paper insists the measurement system itself must be monitored: agents
// have safety rails, the controller has Autopilot watchdogs, and the data
// path has an explicit freshness budget).
//
// It provides three things, all stdlib-only and allocation-conscious:
//
//   - A process-global sampled tracer: one in every N probes carries a
//     trace through the whole pipeline — agent scheduling, netlib probe,
//     record encode, upload, ingest scan, SCOPE job, DSA cycle, portal
//     snapshot publish. Sampling off (the default) costs exactly one
//     atomic load on the probe path and zero allocations.
//   - Fixed-size per-component span ring buffers, dumpable as JSON from
//     /debug/trace without stopping the world.
//   - Freshness marks: each pipeline stage records when it last completed,
//     and a Budget (the §3.5 data-freshness budget: 5-minute perfcounter
//     path, 20-minute Cosmos/SCOPE path) turns the marks into a Health
//     verdict that the Autopilot "pingmesh-stale" watchdog and the portal
//     /health endpoint consume.
//
// Because probe records cross process boundaries as CSV (agent → Cosmos →
// SCOPE), a trace cannot ride the record itself without changing the wire
// format. Instead the tracer keeps a small table of in-flight sampled
// probes keyed by the record's identity (source address, source port,
// start nanosecond — exactly the fields that round-trip the codec); the
// ingest scanner re-attaches the trace when it encounters the matching
// record. The table is an immutable slice behind an atomic pointer, so the
// ingest hot path pays one atomic load when no trace is in flight.
package trace

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pingmesh/internal/simclock"
)

// TraceID identifies one sampled probe's journey through the pipeline.
// Zero means "not sampled".
type TraceID uint64

// maxActiveProbes bounds the in-flight probe table. Sampled probes that
// never reach ingest (dropped uploads, retired streams) are evicted oldest
// first, so a stalled pipeline cannot grow the table.
const maxActiveProbes = 64

// DefaultRingSize is the per-component span ring capacity.
const DefaultRingSize = 256

// Tracer is the process-wide tracing state: sampling decision, span rings,
// the in-flight probe table, and the freshness marks. All methods are safe
// for concurrent use.
type Tracer struct {
	clock simclock.Clock
	fresh *Freshness

	every atomic.Uint64 // sample 1-in-N probes; 0 = sampling off
	ctr   atomic.Uint64 // probes seen since start (sampling counter)
	ids   atomic.Uint64 // trace ID allocator

	// probes is the immutable in-flight table; writers swap it under mu,
	// readers (the ingest scan) load it with a single atomic operation.
	probes atomic.Pointer[[]probeEntry]

	mu      sync.Mutex
	rings   map[string]*Ring
	ringCap int
}

type probeEntry struct {
	start int64 // record Start.UnixNano(): compared first, most selective
	id    TraceID
	src   netip.Addr
	port  uint16
}

// New returns a tracer on the given clock (nil for wall time) with
// sampling off.
func New(clock simclock.Clock) *Tracer {
	if clock == nil {
		clock = simclock.NewReal()
	}
	t := &Tracer{
		clock:   clock,
		fresh:   NewFreshness(clock),
		rings:   make(map[string]*Ring),
		ringCap: DefaultRingSize,
	}
	t.probes.Store(&[]probeEntry{})
	return t
}

var defaultTracer = New(simclock.NewReal())

// Default returns the process-global tracer the binaries share. Components
// accept an explicit *Tracer so tests and simulations can isolate theirs.
func Default() *Tracer { return defaultTracer }

// Now returns the tracer clock's current time. Spans across components are
// stamped from one clock so a dumped trace has a coherent timeline.
func (t *Tracer) Now() time.Time { return t.clock.Now() }

// Freshness returns the tracer's freshness marks.
func (t *Tracer) Freshness() *Freshness { return t.fresh }

// SetSampleEvery turns sampling on (one traced probe per n) or off (n=0).
func (t *Tracer) SetSampleEvery(n uint64) { t.every.Store(n) }

// SampleEvery returns the current 1-in-N sampling rate (0 = off).
func (t *Tracer) SampleEvery() uint64 { return t.every.Load() }

// SampleProbe is the probe-path sampling decision: it returns a fresh
// TraceID for one in every N probes and zero otherwise. With sampling off
// the cost is a single atomic load and no allocations — this is the
// contract the tier-3 alloc guards pin.
func (t *Tracer) SampleProbe() TraceID {
	n := t.every.Load()
	if n == 0 {
		return 0
	}
	if t.ctr.Add(1)%n != 0 {
		return 0
	}
	return TraceID(t.ids.Add(1))
}

// Ring returns the named component's span ring, creating it on first use.
// Components resolve their ring once and keep the pointer.
func (t *Tracer) Ring(component string) *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rings[component]
	if !ok {
		r = &Ring{component: component, buf: make([]Span, t.ringCap)}
		t.rings[component] = r
	}
	return r
}

// RegisterProbe records a sampled probe's wire identity so the ingest scan
// can re-attach the trace when the record comes back out of storage. The
// table is bounded; the oldest entry is evicted at capacity.
func (t *Tracer) RegisterProbe(id TraceID, src netip.Addr, srcPort uint16, startUnixNano int64) {
	if id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.probes.Load()
	next := make([]probeEntry, 0, len(old)+1)
	if len(old) >= maxActiveProbes {
		old = old[1:]
	}
	next = append(next, old...)
	next = append(next, probeEntry{start: startUnixNano, id: id, src: src, port: srcPort})
	t.probes.Store(&next)
}

// HasActiveProbes reports whether any sampled probe is awaiting ingest.
// One atomic load: the ingest hot path gates on this before attempting a
// match, so the unsampled steady state pays nothing else.
func (t *Tracer) HasActiveProbes() bool {
	return len(*t.probes.Load()) > 0
}

// MatchProbe returns the trace ID registered for a record identity, or
// zero. Allocation-free: it scans the immutable table, comparing the start
// nanosecond first (the most selective field).
func (t *Tracer) MatchProbe(src netip.Addr, srcPort uint16, startUnixNano int64) TraceID {
	tab := *t.probes.Load()
	for i := range tab {
		e := &tab[i]
		if e.start == startUnixNano && e.port == srcPort && e.src == src {
			return e.id
		}
	}
	return 0
}

// ActiveProbeIDs returns the trace IDs currently awaiting completion,
// oldest first. The portal stamps its publish span with these.
func (t *Tracer) ActiveProbeIDs() []TraceID {
	tab := *t.probes.Load()
	if len(tab) == 0 {
		return nil
	}
	out := make([]TraceID, len(tab))
	for i := range tab {
		out[i] = tab[i].id
	}
	return out
}

// CompleteProbes removes traces from the in-flight table, typically after
// the analysis cycle that ingested them has published. Completing restores
// the ingest fast path (HasActiveProbes goes false once the table drains).
func (t *Tracer) CompleteProbes(ids []TraceID) {
	if len(ids) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.probes.Load()
	next := make([]probeEntry, 0, len(old))
	for _, e := range old {
		done := false
		for _, id := range ids {
			if e.id == id {
				done = true
				break
			}
		}
		if !done {
			next = append(next, e)
		}
	}
	t.probes.Store(&next)
}

// ctxKey carries a sampled trace through context so layers below the agent
// (netlib probers) can record spans without new plumbing on every call.
type ctxKey struct{}

type ctxTrace struct {
	tr *Tracer
	id TraceID
}

// NewContext returns ctx carrying a sampled trace. Only sampled probes pay
// for the context allocation; unsampled probes keep the caller's ctx.
func NewContext(ctx context.Context, tr *Tracer, id TraceID) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxTrace{tr: tr, id: id})
}

// FromContext extracts the trace a context carries, if any.
func FromContext(ctx context.Context) (*Tracer, TraceID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxTrace); ok {
		return v.tr, v.id
	}
	return nil, 0
}
