package trace

import (
	"net/netip"
	"testing"
	"time"
)

// TestSampleProbeDisabledZeroAlloc pins the tracer's own contract: with
// sampling off, the probe-path decision is one atomic load, zero allocs.
// The agent- and scope-level guards (TestProbeTraceDisabledZeroAlloc,
// TestIngestTraceUnsampledZeroAlloc) pin the same property end to end.
func TestSampleProbeDisabledZeroAlloc(t *testing.T) {
	tr := New(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.SampleProbe() != 0 {
			t.Fatal("disabled tracer sampled")
		}
	})
	if allocs != 0 {
		t.Fatalf("SampleProbe (disabled) allocs/op = %v, want 0", allocs)
	}
}

// TestMatchProbeZeroAlloc pins the ingest-side match: scanning the
// in-flight table allocates nothing, hit or miss.
func TestMatchProbeZeroAlloc(t *testing.T) {
	tr := New(nil)
	src := netip.MustParseAddr("10.0.1.5")
	for i := 0; i < 16; i++ {
		tr.RegisterProbe(TraceID(i+1), src, uint16(i), int64(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.HasActiveProbes()
		tr.MatchProbe(src, 7, 7)   // hit
		tr.MatchProbe(src, 99, 99) // miss
	})
	if allocs != 0 {
		t.Fatalf("MatchProbe allocs/op = %v, want 0", allocs)
	}
}

// TestRingRecordZeroAlloc pins span recording: a slot write, no growth.
func TestRingRecordZeroAlloc(t *testing.T) {
	tr := New(nil)
	r := tr.Ring("bench")
	now := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(1, StageProbe, "t", now, now, true)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Span allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkTracerSampleDisabled measures the cost every probe pays when
// tracing is off: the single atomic load.
func BenchmarkTracerSampleDisabled(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.SampleProbe() != 0 {
			b.Fatal("sampled")
		}
	}
}

// BenchmarkTracerSampleUnsampled measures the cost of a probe that loses
// the 1-in-N draw: atomic load + atomic add.
func BenchmarkTracerSampleUnsampled(b *testing.B) {
	tr := New(nil)
	tr.SetSampleEvery(1 << 62) // effectively never wins
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SampleProbe()
	}
}

// BenchmarkTracerSampledSpan measures the full sampled path: win the draw,
// register the probe key, record a span, complete.
func BenchmarkTracerSampledSpan(b *testing.B) {
	tr := New(nil)
	tr.SetSampleEvery(1)
	r := tr.Ring("agent")
	src := netip.MustParseAddr("10.0.1.5")
	now := time.Now()
	ids := make([]TraceID, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.SampleProbe()
		tr.RegisterProbe(id, src, 4242, int64(i))
		r.Span(id, StageProbe, "bench", now, now, true)
		ids[0] = id
		tr.CompleteProbes(ids)
	}
}

// BenchmarkMatchProbeMiss measures the ingest-side cost per record while a
// trace is in flight (table occupied, record doesn't match).
func BenchmarkMatchProbeMiss(b *testing.B) {
	tr := New(nil)
	src := netip.MustParseAddr("10.0.1.5")
	for i := 0; i < 8; i++ {
		tr.RegisterProbe(TraceID(i+1), src, uint16(i), int64(i))
	}
	other := netip.MustParseAddr("10.9.9.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.MatchProbe(other, 1, int64(i)+1000) != 0 {
			b.Fatal("unexpected match")
		}
	}
}

// BenchmarkHasActiveProbesEmpty measures the steady-state ingest gate when
// nothing is in flight: one atomic pointer load.
func BenchmarkHasActiveProbesEmpty(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.HasActiveProbes() {
			b.Fatal("phantom probes")
		}
	}
}
