package trace

import (
	"sync"
	"time"
)

// Stage enumerates the pipeline stages a sampled probe passes through, in
// pipeline order: the agent schedules the probe, netlib performs it, the
// agent encodes and uploads the record batch, the SCOPE engine scans it
// back out of storage, the job aggregates it, the DSA cycle folds the job
// results into reportdb, and the portal publishes the snapshot.
type Stage uint8

const (
	StageProbe Stage = iota
	StageNetProbe
	StageEncode
	StageUpload
	StageIngest
	StageScopeJob
	StageDSACycle
	StagePublish
	numStages
)

var stageNames = [numStages]string{
	"probe",
	"netprobe",
	"encode",
	"upload",
	"ingest",
	"scope-job",
	"dsa-cycle",
	"publish",
}

// String returns the stage's wire name (used in dumps and health reports).
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded unit of pipeline work. Spans are plain values —
// fixed-size, no pointers beyond the two strings (which are interned
// constants on the hot paths) — so a ring of them is a single allocation.
type Span struct {
	Trace TraceID // 0 for pipeline spans not tied to a sampled probe
	Stage Stage
	OK    bool
	Name  string // stage-specific detail: job name, target addr, cycle kind
	Start int64  // UnixNano on the tracer clock
	End   int64

	// One optional numeric attribute (records scanned, bytes uploaded,
	// HTTP status...). A fixed single slot keeps Span flat; stages that
	// need more detail publish metrics instead.
	AttrKey string
	AttrVal int64
}

// Duration returns the span's elapsed time.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Ring is a fixed-size buffer of the most recent spans for one component.
// Recording is a mutex-guarded slot write — no allocation, no growth — so
// components can record on every pipeline cycle without caring about
// volume, and a dump never stops the world for long.
type Ring struct {
	component string

	mu      sync.Mutex
	buf     []Span
	written uint64 // total spans ever recorded; written%len(buf) is the next slot
}

// Component returns the ring's component name ("agent", "scope", ...).
func (r *Ring) Component() string { return r.component }

// Record stores a span, overwriting the oldest once the ring is full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.buf[r.written%uint64(len(r.buf))] = s
	r.written++
	r.mu.Unlock()
}

// Span records a completed stage span in one call.
func (r *Ring) Span(id TraceID, stage Stage, name string, start, end time.Time, ok bool) {
	r.Record(Span{
		Trace: id,
		Stage: stage,
		OK:    ok,
		Name:  name,
		Start: start.UnixNano(),
		End:   end.UnixNano(),
	})
}

// SpanAttr records a completed stage span carrying one numeric attribute.
func (r *Ring) SpanAttr(id TraceID, stage Stage, name string, start, end time.Time, ok bool, attrKey string, attrVal int64) {
	r.Record(Span{
		Trace:   id,
		Stage:   stage,
		OK:      ok,
		Name:    name,
		Start:   start.UnixNano(),
		End:     end.UnixNano(),
		AttrKey: attrKey,
		AttrVal: attrVal,
	})
}

// Snapshot appends the ring's live spans to dst in recording order (oldest
// first) and returns the extended slice.
func (r *Ring) Snapshot(dst []Span) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.written
	size := uint64(len(r.buf))
	if n > size {
		// Ring has wrapped: oldest live span is at written%size.
		i := n % size
		dst = append(dst, r.buf[i:]...)
		dst = append(dst, r.buf[:i]...)
		return dst
	}
	return append(dst, r.buf[:n]...)
}

// Len returns the number of live spans in the ring.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.written > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.written)
}
