package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SpanDump is a span rendered for the /debug/trace JSON export.
type SpanDump struct {
	Trace      string `json:"trace,omitempty"` // hex trace ID, "" for untraced spans
	Component  string `json:"component"`
	Stage      string `json:"stage"`
	Name       string `json:"name,omitempty"`
	Start      string `json:"start"` // RFC3339Nano on the tracer clock
	DurationUS int64  `json:"duration_us"`
	OK         bool   `json:"ok"`
	AttrKey    string `json:"attr_key,omitempty"`
	AttrVal    int64  `json:"attr_val,omitempty"`
}

// RingDump is one component's ring, oldest span first.
type RingDump struct {
	Component string     `json:"component"`
	Spans     []SpanDump `json:"spans"`
}

// Dump is the full /debug/trace payload: every component ring plus the
// sampling state and the set of traces still in flight.
type Dump struct {
	SampleEvery  uint64     `json:"sample_every"`
	ActiveTraces []string   `json:"active_traces,omitempty"`
	Rings        []RingDump `json:"rings"`
}

// FormatTraceID renders a trace ID the way dumps and logs print it.
func FormatTraceID(id TraceID) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%08x", uint64(id))
}

func dumpSpan(component string, s Span) SpanDump {
	return SpanDump{
		Trace:      FormatTraceID(s.Trace),
		Component:  component,
		Stage:      s.Stage.String(),
		Name:       s.Name,
		Start:      time.Unix(0, s.Start).UTC().Format(time.RFC3339Nano),
		DurationUS: (s.End - s.Start) / int64(time.Microsecond),
		OK:         s.OK,
		AttrKey:    s.AttrKey,
		AttrVal:    s.AttrVal,
	}
}

// Dump snapshots every ring. Components are sorted by name so the export
// is stable for tests and diffing.
func (t *Tracer) Dump() Dump {
	t.mu.Lock()
	names := make([]string, 0, len(t.rings))
	rings := make([]*Ring, 0, len(t.rings))
	for name := range t.rings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rings = append(rings, t.rings[name])
	}
	t.mu.Unlock()

	d := Dump{SampleEvery: t.every.Load()}
	for _, id := range t.ActiveProbeIDs() {
		d.ActiveTraces = append(d.ActiveTraces, FormatTraceID(id))
	}
	var scratch []Span
	for _, r := range rings {
		scratch = r.Snapshot(scratch[:0])
		rd := RingDump{Component: r.Component(), Spans: make([]SpanDump, 0, len(scratch))}
		for _, s := range scratch {
			rd.Spans = append(rd.Spans, dumpSpan(r.Component(), s))
		}
		d.Rings = append(d.Rings, rd)
	}
	return d
}

// TraceSpans collects every recorded span belonging to one trace across
// all component rings, ordered by start time — the single end-to-end story
// of one sampled probe.
func (t *Tracer) TraceSpans(id TraceID) []SpanDump {
	if id == 0 {
		return nil
	}
	t.mu.Lock()
	rings := make([]*Ring, 0, len(t.rings))
	for _, r := range t.rings {
		rings = append(rings, r)
	}
	t.mu.Unlock()

	type hit struct {
		component string
		span      Span
	}
	var hits []hit
	var scratch []Span
	for _, r := range rings {
		scratch = r.Snapshot(scratch[:0])
		for _, s := range scratch {
			if s.Trace == id {
				hits = append(hits, hit{component: r.Component(), span: s})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].span.Start != hits[j].span.Start {
			return hits[i].span.Start < hits[j].span.Start
		}
		return hits[i].span.Stage < hits[j].span.Stage
	})
	out := make([]SpanDump, 0, len(hits))
	for _, h := range hits {
		out = append(out, dumpSpan(h.component, h.span))
	}
	return out
}

// WriteJSON writes the full dump as indented JSON (the /debug/trace body).
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}
