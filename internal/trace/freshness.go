package trace

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"pingmesh/internal/simclock"
)

// Freshness tracks when each pipeline stage last completed successfully.
// Marks are single atomic stores; reading an age is an atomic load plus a
// clock read, cheap enough for metrics gauges evaluated on every scrape.
type Freshness struct {
	clock simclock.Clock
	marks [numStages]atomic.Int64
}

// NewFreshness returns a Freshness on the given clock with no stage marked.
func NewFreshness(clock simclock.Clock) *Freshness {
	if clock == nil {
		clock = simclock.NewReal()
	}
	return &Freshness{clock: clock}
}

// Mark records that stage completed successfully now.
func (f *Freshness) Mark(s Stage) {
	if s >= numStages {
		return
	}
	f.marks[s].Store(f.clock.Now().UnixNano())
}

// MarkedAt returns when the stage last completed, or the zero time if it
// never has.
func (f *Freshness) MarkedAt(s Stage) time.Time {
	if s >= numStages {
		return time.Time{}
	}
	ns := f.marks[s].Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// AgeMillis returns the stage's age in milliseconds, or -1 if the stage
// has never completed. Milliseconds keep the gauges integer-valued while
// resolving well under the 5-minute budget granularity.
func (f *Freshness) AgeMillis(s Stage) int64 {
	if s >= numStages {
		return -1
	}
	ns := f.marks[s].Load()
	if ns == 0 {
		return -1
	}
	return (f.clock.Now().UnixNano() - ns) / int64(time.Millisecond)
}

// Budget is the §3.5 data-freshness budget: how stale each monitored stage
// may be before the pipeline is considered degraded. The perfcounter path
// (agent upload) is expected within 5 minutes; the Cosmos/SCOPE path (DSA
// cycle, and the portal snapshot derived from it) within 20 minutes.
type Budget struct {
	AgentUpload time.Duration
	DSACycle    time.Duration
	Snapshot    time.Duration
}

// DefaultBudget is the paper's §3.5 budget.
func DefaultBudget() Budget {
	return Budget{
		AgentUpload: 5 * time.Minute,
		DSACycle:    20 * time.Minute,
		Snapshot:    20 * time.Minute,
	}
}

// stageBudget returns the budget for a monitored stage, 0 for unmonitored.
func (b Budget) stageBudget(s Stage) time.Duration {
	switch s {
	case StageUpload:
		return b.AgentUpload
	case StageDSACycle:
		return b.DSACycle
	case StagePublish:
		return b.Snapshot
	}
	return 0
}

// StageHealth is one monitored stage's verdict inside a Health report.
type StageHealth struct {
	Stage    string `json:"stage"`
	Marked   bool   `json:"marked"`
	AgeMs    int64  `json:"age_ms"`
	BudgetMs int64  `json:"budget_ms"`
	Stale    bool   `json:"stale"`
}

// Health is the pipeline's freshness verdict. Status is "ok" when every
// monitored stage is within budget, "waiting" when some stage has never
// completed (a pipeline that is still booting should not page anyone), and
// "degraded" when a stage that has run before is now over budget.
type Health struct {
	Status string        `json:"status"`
	Stages []StageHealth `json:"stages"`
}

// Check evaluates the marks against a budget.
func (f *Freshness) Check(b Budget) Health {
	h := Health{Status: "ok"}
	for s := Stage(0); s < numStages; s++ {
		limit := b.stageBudget(s)
		if limit <= 0 {
			continue
		}
		age := f.AgeMillis(s)
		sh := StageHealth{
			Stage:    s.String(),
			Marked:   age >= 0,
			AgeMs:    age,
			BudgetMs: limit.Milliseconds(),
		}
		if !sh.Marked {
			if h.Status == "ok" {
				h.Status = "waiting"
			}
		} else if age > limit.Milliseconds() {
			sh.Stale = true
			h.Status = "degraded"
		}
		h.Stages = append(h.Stages, sh)
	}
	return h
}

// ErrStale is wrapped by Health.Err for stale pipelines, so watchdogs can
// errors.Is against it.
var ErrStale = errors.New("pingmesh pipeline stale")

// Err returns nil unless the pipeline is degraded, in which case it names
// every stage over budget. "waiting" is not an error: watchdog checks run
// from process start, before the first cycle has had a chance to complete.
func (h Health) Err() error {
	if h.Status != "degraded" {
		return nil
	}
	var sb strings.Builder
	for _, s := range h.Stages {
		if !s.Stale {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s age %dms > budget %dms", s.Stage, s.AgeMs, s.BudgetMs)
	}
	return fmt.Errorf("%w: %s", ErrStale, sb.String())
}
