package netlib

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) *TCPServer {
	t.Helper()
	s, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTCPProbeSYNOnly(t *testing.T) {
	s := startServer(t)
	p := &TCPProber{Timeout: 5 * time.Second}
	res, err := p.Probe(context.Background(), s.Addr().String(), 0)
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if res.ConnectRTT <= 0 {
		t.Fatalf("ConnectRTT = %v", res.ConnectRTT)
	}
	if res.PayloadRTT != 0 {
		t.Fatalf("PayloadRTT = %v for SYN-only probe", res.PayloadRTT)
	}
}

func TestTCPProbeWithPayload(t *testing.T) {
	s := startServer(t)
	p := &TCPProber{Timeout: 5 * time.Second}
	for _, size := range []int{1, 128, 1024, 16 * 1024} {
		res, err := p.Probe(context.Background(), s.Addr().String(), size)
		if err != nil {
			t.Fatalf("Probe(%d): %v", size, err)
		}
		if res.PayloadRTT <= 0 {
			t.Fatalf("Probe(%d): PayloadRTT = %v", size, res.PayloadRTT)
		}
	}
}

func TestTCPProbeMaxPayloadBoundary(t *testing.T) {
	s := startServer(t)
	p := &TCPProber{Timeout: 10 * time.Second}
	if _, err := p.Probe(context.Background(), s.Addr().String(), MaxPayload); err != nil {
		t.Fatalf("Probe(MaxPayload): %v", err)
	}
	if _, err := p.Probe(context.Background(), s.Addr().String(), MaxPayload+1); err == nil {
		t.Fatal("Probe accepted payload above the hard cap")
	}
	if _, err := p.Probe(context.Background(), s.Addr().String(), -1); err == nil {
		t.Fatal("Probe accepted negative payload")
	}
}

func TestTCPProbeConnectionRefused(t *testing.T) {
	p := &TCPProber{Timeout: 2 * time.Second}
	if _, err := p.Probe(context.Background(), "127.0.0.1:1", 0); err == nil {
		t.Fatal("Probe to closed port succeeded")
	}
}

func TestTCPProbeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &TCPProber{Timeout: 2 * time.Second}
	if _, err := p.Probe(ctx, "192.0.2.1:9", 0); err == nil {
		t.Fatal("Probe with cancelled context succeeded")
	}
}

func TestTCPProbeConcurrent(t *testing.T) {
	s := startServer(t)
	p := &TCPProber{Timeout: 5 * time.Second}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Probe(context.Background(), s.Addr().String(), 512); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent probe: %v", err)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	s, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p := &TCPProber{Timeout: time.Second}
	if _, err := p.Probe(context.Background(), addr, 0); err == nil {
		t.Fatal("probe succeeded after Close")
	}
}

func TestHTTPProbe(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler())
	defer srv.Close()
	p := &HTTPProber{Timeout: 5 * time.Second}
	addr := srv.Listener.Addr().String()
	res, err := p.Probe(context.Background(), addr, 1024)
	if err != nil {
		t.Fatalf("HTTP Probe: %v", err)
	}
	// ConnectRTT is the handshake alone (httptrace ConnectStart→ConnectDone);
	// PayloadRTT is the whole request, which includes the handshake.
	if res.ConnectRTT <= 0 || res.PayloadRTT <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.ConnectRTT >= res.PayloadRTT {
		t.Fatalf("ConnectRTT %v not below total request time %v: %+v", res.ConnectRTT, res.PayloadRTT, res)
	}
	if res.SrcPort == 0 {
		t.Fatalf("missing source port: %+v", res)
	}
	if _, err := p.Probe(context.Background(), addr, MaxPayload+1); err == nil {
		t.Fatal("HTTP probe accepted oversized payload")
	}
}

// TestHTTPProbeConnectExcludesServerTime pins the §3.4 split for HTTP
// probes: a slow application handler must inflate PayloadRTT (the
// user-perceived request time) but not ConnectRTT (the TCP handshake).
// Before the httptrace fix, ConnectRTT reported the total request time and
// this test fails by ~50ms.
func TestHTTPProbeConnectExcludesServerTime(t *testing.T) {
	const serverDelay = 50 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(serverDelay)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	p := &HTTPProber{Timeout: 5 * time.Second}
	res, err := p.Probe(context.Background(), srv.Listener.Addr().String(), 0)
	if err != nil {
		t.Fatalf("HTTP Probe: %v", err)
	}
	if res.PayloadRTT < serverDelay {
		t.Fatalf("PayloadRTT %v should include the %v handler delay", res.PayloadRTT, serverDelay)
	}
	if res.ConnectRTT >= serverDelay {
		t.Fatalf("ConnectRTT %v includes server processing time (want loopback handshake ≪ %v)", res.ConnectRTT, serverDelay)
	}
}

func TestHTTPHandlerRejectsBadSize(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler())
	defer srv.Close()
	p := &HTTPProber{Timeout: 5 * time.Second}
	// Probe a path the handler rejects by driving size through the prober
	// is covered above; exercise a raw bad query here.
	resp, err := srv.Client().Get(srv.URL + "/ping?size=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	_ = p
}

func TestProbeUsesFreshSourcePorts(t *testing.T) {
	// The prober must not reuse connections: two probes from the same
	// prober should arrive on distinct remote ports nearly always.
	s := startServer(t)
	p := &TCPProber{Timeout: 5 * time.Second}
	// There is no direct observation point without instrumenting the
	// server; instead verify each Probe call dials fresh by confirming
	// back-to-back probes both succeed with independent handshake timings.
	r1, err1 := p.Probe(context.Background(), s.Addr().String(), 0)
	r2, err2 := p.Probe(context.Background(), s.Addr().String(), 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("probes failed: %v %v", err1, err2)
	}
	if r1.ConnectRTT <= 0 || r2.ConnectRTT <= 0 {
		t.Fatal("missing handshake timings")
	}
}

func TestHTTPProbeNon200(t *testing.T) {
	// A target that answers HTTP but not with 200 must count as a failed
	// probe, not a latency sample.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer srv.Close()
	p := &HTTPProber{Timeout: 2 * time.Second}
	if _, err := p.Probe(context.Background(), srv.Listener.Addr().String(), 0); err == nil {
		t.Fatal("non-200 response accepted")
	}
}

func TestTCPServerIgnoresOversizedHeader(t *testing.T) {
	// A client claiming a payload above the cap gets its connection
	// dropped without an echo.
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hdr := []byte{0xff, 0xff, 0xff, 0xff} // ~4GB claim
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server echoed despite oversized claim")
	}
}
