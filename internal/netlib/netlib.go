// Package netlib is the light-weight network library Pingmesh agents probe
// with (§3.4.1). The paper's agents deliberately avoid the network
// libraries applications use, so latency attributed to "the network" can
// be measured independently of application stacks; this package plays that
// role here, built directly on the net package.
//
// Every probe opens a fresh TCP connection and therefore uses a new
// ephemeral source port, re-rolling the ECMP hash so probes explore the
// multipath fabric, and keeping the number of concurrent connections at
// one per in-flight probe.
//
// The probe protocol: the client connects (the SYN/SYN-ACK handshake time
// is the base RTT measurement), then optionally sends a 4-byte big-endian
// payload length followed by that many bytes; the server echoes the
// payload back and the client measures the echo round trip.
package netlib

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"sync"
	"time"

	"pingmesh/internal/trace"
)

// MaxPayload is the hard upper bound on probe payload size, mirrored from
// the agent's hard-coded safety limit (§3.4.2).
const MaxPayload = 64 * 1024

// maxConcurrentConns bounds the echo server's accept fan-out so a
// misbehaving prober cannot exhaust the host.
const maxConcurrentConns = 512

// Result is one real-network probe measurement.
type Result struct {
	// ConnectRTT is the TCP connection establishment time (SYN/SYN-ACK).
	ConnectRTT time.Duration
	// PayloadRTT is the payload echo round trip; 0 if no payload was sent.
	PayloadRTT time.Duration
	// SrcPort is the ephemeral source port the probe used — part of the
	// record because black-hole analysis needs the full five-tuple.
	SrcPort uint16
}

// TCPServer is the server half of the probe protocol.
type TCPServer struct {
	ln        net.Listener
	sem       chan struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewTCPServer starts an echo server on addr (e.g. "127.0.0.1:0").
func NewTCPServer(addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netlib: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		ln:   ln,
		sem:  make(chan struct{}, maxConcurrentConns),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Port returns the bound TCP port.
func (s *TCPServer) Port() uint16 {
	return uint16(s.ln.Addr().(*net.TCPAddr).Port)
}

// Close stops accepting and waits for in-flight echoes to finish. It is
// idempotent.
func (s *TCPServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.wg.Wait()
	})
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		select {
		case s.sem <- struct{}{}:
		default:
			conn.Close() // overloaded: shed load rather than queue
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			s.serveConn(conn)
		}()
	}
}

// serveConn implements the echo protocol for one probe connection.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return // SYN-only probe: client connected and closed
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxPayload {
		return // refuse oversized payloads
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return
	}
	conn.Write(buf)
}

// TCPProber launches TCP probes.
type TCPProber struct {
	// Timeout bounds each phase (connect, payload echo) of a probe. The
	// default of 25s is just above the OS's final SYN retransmission, so
	// retransmit-inflated handshakes are measured rather than aborted.
	Timeout time.Duration
	// LocalAddr optionally pins the source address (not the port — ports
	// must stay ephemeral).
	LocalAddr net.Addr
}

func (p *TCPProber) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return 25 * time.Second
}

// Probe connects to addr, optionally echoes payloadLen bytes, and returns
// the timings. Each call uses a brand-new connection and source port.
// A sampled trace carried in ctx gets a netprobe span; untraced probes
// pay only a context value miss.
func (p *TCPProber) Probe(ctx context.Context, addr string, payloadLen int) (Result, error) {
	if tr, tid := trace.FromContext(ctx); tid != 0 {
		start := tr.Now()
		res, err := p.probe(ctx, addr, payloadLen)
		tr.Ring("netlib").SpanAttr(tid, trace.StageNetProbe, addr, start, tr.Now(), err == nil,
			"connect_ns", int64(res.ConnectRTT))
		return res, err
	}
	return p.probe(ctx, addr, payloadLen)
}

func (p *TCPProber) probe(ctx context.Context, addr string, payloadLen int) (Result, error) {
	if payloadLen < 0 || payloadLen > MaxPayload {
		return Result{}, fmt.Errorf("netlib: payload %d out of range [0,%d]", payloadLen, MaxPayload)
	}
	d := net.Dialer{Timeout: p.timeout(), LocalAddr: p.LocalAddr}
	start := time.Now()
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Result{}, fmt.Errorf("netlib: connect %s: %w", addr, err)
	}
	res := Result{ConnectRTT: time.Since(start)}
	if la, ok := conn.LocalAddr().(*net.TCPAddr); ok {
		res.SrcPort = uint16(la.Port)
	}
	defer conn.Close()
	if payloadLen == 0 {
		return res, nil
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Now().Add(p.timeout()))
	}
	msg := make([]byte, 4+payloadLen)
	binary.BigEndian.PutUint32(msg, uint32(payloadLen))
	for i := range msg[4:] {
		msg[4+i] = byte(i)
	}
	echoStart := time.Now()
	if _, err := conn.Write(msg); err != nil {
		return res, fmt.Errorf("netlib: send payload: %w", err)
	}
	echo := make([]byte, payloadLen)
	if _, err := io.ReadFull(conn, echo); err != nil {
		return res, fmt.Errorf("netlib: read echo: %w", err)
	}
	res.PayloadRTT = time.Since(echoStart)
	for i := range echo {
		if echo[i] != byte(i) {
			return res, fmt.Errorf("netlib: echo corrupted at byte %d", i)
		}
	}
	return res, nil
}

// HTTPHandler returns the HTTP side of the probe protocol: GET /ping
// returns 200 with an optional body of ?size= bytes.
func HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		size := 0
		if s := r.URL.Query().Get("size"); s != "" {
			var err error
			size, err = strconv.Atoi(s)
			if err != nil || size < 0 || size > MaxPayload {
				http.Error(w, "bad size", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Length", strconv.Itoa(size))
		buf := make([]byte, size)
		w.Write(buf)
	})
	return mux
}

// HTTPProber launches HTTP probes. Keep-alives are disabled so every probe
// is a fresh connection with a fresh source port, like the TCP prober.
type HTTPProber struct {
	Timeout time.Duration
	once    sync.Once
	client  *http.Client
}

func (p *HTTPProber) init() {
	p.once.Do(func() {
		t := &http.Transport{DisableKeepAlives: true}
		timeout := p.Timeout
		if timeout <= 0 {
			timeout = 25 * time.Second
		}
		p.client = &http.Client{Transport: t, Timeout: timeout}
	})
}

// Probe issues GET http://addr/ping?size=payloadLen. ConnectRTT is the TCP
// handshake time observed via net/http/httptrace (ConnectStart to
// ConnectDone), so the TCP-level vs application-level split of §3.4 holds
// for HTTP probes too; PayloadRTT is the full request round trip. A
// sampled trace carried in ctx gets a netprobe span.
func (p *HTTPProber) Probe(ctx context.Context, addr string, payloadLen int) (Result, error) {
	if tr, tid := trace.FromContext(ctx); tid != 0 {
		start := tr.Now()
		res, err := p.probe(ctx, addr, payloadLen)
		tr.Ring("netlib").SpanAttr(tid, trace.StageNetProbe, addr, start, tr.Now(), err == nil,
			"connect_ns", int64(res.ConnectRTT))
		return res, err
	}
	return p.probe(ctx, addr, payloadLen)
}

func (p *HTTPProber) probe(ctx context.Context, addr string, payloadLen int) (Result, error) {
	if payloadLen < 0 || payloadLen > MaxPayload {
		return Result{}, fmt.Errorf("netlib: payload %d out of range [0,%d]", payloadLen, MaxPayload)
	}
	p.init()
	url := fmt.Sprintf("http://%s/ping?size=%d", addr, payloadLen)
	// Keep-alives are off, so every request dials a fresh connection and
	// the httptrace connect callbacks fire exactly once per probe. The
	// callbacks run sequentially during client.Do's dial, before Do
	// returns, so plain (non-atomic) captures are safe.
	var connStart, connDone time.Time
	var srcPort uint16
	ct := &httptrace.ClientTrace{
		ConnectStart: func(network, address string) { connStart = time.Now() },
		ConnectDone: func(network, address string, err error) {
			if err == nil {
				connDone = time.Now()
			}
		},
		GotConn: func(info httptrace.GotConnInfo) {
			if ta, ok := info.Conn.LocalAddr().(*net.TCPAddr); ok {
				srcPort = uint16(ta.Port)
			}
		},
	}
	req, err := http.NewRequestWithContext(httptrace.WithClientTrace(ctx, ct), http.MethodGet, url, nil)
	if err != nil {
		return Result{}, fmt.Errorf("netlib: build request: %w", err)
	}
	start := time.Now()
	resp, err := p.client.Do(req)
	if err != nil {
		return Result{}, fmt.Errorf("netlib: http probe %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return Result{}, fmt.Errorf("netlib: read body: %w", err)
	}
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return Result{}, fmt.Errorf("netlib: http probe %s: status %d", addr, resp.StatusCode)
	}
	res := Result{PayloadRTT: elapsed, SrcPort: srcPort}
	if !connStart.IsZero() && !connDone.IsZero() {
		res.ConnectRTT = connDone.Sub(connStart)
	} else {
		// No dial observed (should not happen with keep-alives off):
		// fall back to the old total-time behavior rather than report 0.
		res.ConnectRTT = elapsed
	}
	return res, nil
}
