package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSimNowFrozen(t *testing.T) {
	s := NewSim(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() moved without Advance: %v", got)
	}
}

func TestSimAdvance(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(90 * time.Second)
	if got, want := s.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if got := s.Since(epoch); got != 90*time.Second {
		t.Fatalf("Since(epoch) = %v, want 90s", got)
	}
}

func TestSimAdvanceToPastIsNoop(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(time.Minute)
	s.AdvanceTo(epoch) // in the past
	if got, want := s.Now(), epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimAfterFiresAtDeadline(t *testing.T) {
	s := NewSim(epoch)
	ch := s.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	s.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired early")
	default:
	}
	s.Advance(time.Second)
	select {
	case at := <-ch:
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(epoch)
	tm := s.NewTimer(5 * time.Second)
	if !tm.Stop() {
		t.Fatal("Stop() = false on armed timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	s.Advance(time.Minute)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestSimTickerFiresRepeatedly(t *testing.T) {
	s := NewSim(epoch)
	tk := s.NewTicker(10 * time.Second)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		s.Advance(10 * time.Second)
		select {
		case at := <-tk.C:
			if want := epoch.Add(time.Duration(i) * 10 * time.Second); !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestSimTickerDropsWhenSlow(t *testing.T) {
	s := NewSim(epoch)
	tk := s.NewTicker(time.Second)
	defer tk.Stop()
	// Advance through many periods without draining; buffered chan keeps 1.
	s.Advance(10 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C:
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("got %d buffered ticks, want 1 (dropped ticks like time.Ticker)", n)
	}
}

func TestSimTickerStop(t *testing.T) {
	s := NewSim(epoch)
	tk := s.NewTicker(time.Second)
	s.Advance(time.Second)
	<-tk.C
	tk.Stop()
	s.Advance(10 * time.Second)
	select {
	case <-tk.C:
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestSimTimerOrdering(t *testing.T) {
	s := NewSim(epoch)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	delays := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range delays {
		wg.Add(1)
		ch := s.After(d)
		go func(i int) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	// Advance step by step so each waiter runs before the next fires.
	for j := 0; j < 3; j++ {
		s.Advance(10 * time.Second)
		waitUntil(t, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(order) == j+1
		})
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimSleepWakes(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Minute)
		close(done)
	}()
	waitUntil(t, func() bool { return s.PendingTimers() == 1 })
	s.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestSimSleepZero(t *testing.T) {
	s := NewSim(epoch)
	s.Sleep(0) // must not block
	s.Sleep(-time.Second)
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not move")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C:
	case <-time.After(2 * time.Second):
		t.Fatal("real ticker did not fire")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
