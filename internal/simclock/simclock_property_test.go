package simclock

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Property: however timers are created, advancing past all of them fires
// every one, in deadline order, with the clock reading their deadline or
// later when they fire.
func TestTimersFireInDeadlineOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 || len(delaysRaw) > 64 {
			return true
		}
		s := NewSim(epoch)
		type firing struct {
			idx int
			at  time.Time
		}
		var mu sync.Mutex
		var fired []firing
		var wg sync.WaitGroup
		delays := make([]time.Duration, len(delaysRaw))
		for i, d := range delaysRaw {
			delays[i] = time.Duration(d%10000+1) * time.Millisecond
			wg.Add(1)
			ch := s.After(delays[i])
			go func(i int) {
				defer wg.Done()
				at := <-ch
				mu.Lock()
				fired = append(fired, firing{i, at})
				mu.Unlock()
			}(i)
		}
		// Wait for all waiters to register, then release them all.
		deadline := time.Now().Add(5 * time.Second)
		for s.PendingTimers() < len(delays) && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		s.Advance(11 * time.Second)
		wg.Wait()
		if len(fired) != len(delays) {
			return false
		}
		// Every firing carries its own deadline.
		for _, f := range fired {
			want := epoch.Add(delays[f.idx])
			if !f.at.Equal(want) {
				return false
			}
		}
		// And the set of fire timestamps, sorted, matches the sorted
		// deadlines (ordering among goroutines is scheduling-dependent,
		// but the delivered timestamps must be exactly the deadlines).
		var got, want []int64
		for _, f := range fired {
			got = append(got, f.at.UnixNano())
		}
		for _, d := range delays {
			want = append(want, epoch.Add(d).UnixNano())
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
