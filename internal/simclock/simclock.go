// Package simclock provides an injectable clock abstraction with a real
// implementation backed by the time package and a deterministic simulated
// implementation whose time only moves when the test or experiment driver
// advances it. Pingmesh experiments replay days or weeks of probing; the
// simulated clock lets those runs complete in milliseconds while keeping
// every timer ordering deterministic.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the subset of the time package that Pingmesh components use.
// Components take a Clock so that production code runs on wall time while
// tests and simulations run on virtual time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// NewTicker returns a ticker that fires every d on this clock.
	NewTicker(d time.Duration) *Ticker
	// NewTimer returns a timer that fires once after d on this clock.
	NewTimer(d time.Duration) *Timer
	// Since returns the time elapsed since t on this clock.
	Since(t time.Time) time.Duration
}

// Ticker mirrors time.Ticker for both clock implementations.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop turns off the ticker. As with time.Ticker, Stop does not close C.
func (t *Ticker) Stop() { t.stop() }

// Timer mirrors time.Timer for both clock implementations.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop prevents the timer from firing. It reports whether the call stopped
// the timer before it fired.
func (t *Timer) Stop() bool { return t.stop() }

// Real is a Clock backed by the time package.
type Real struct{}

// NewReal returns a Clock that reads wall time.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) *Ticker {
	tk := time.NewTicker(d)
	return &Ticker{C: tk.C, stop: tk.Stop}
}

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) *Timer {
	tm := time.NewTimer(d)
	return &Timer{C: tm.C, stop: tm.Stop}
}

// Sim is a deterministic simulated clock. Time is frozen until Advance or
// AdvanceTo is called, at which point pending timers fire in timestamp
// order. Sim is safe for concurrent use.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64 // tie-break so equal deadlines fire FIFO
}

// NewSim returns a simulated clock whose current time is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

type waiter struct {
	at     time.Time
	seq    uint64
	ch     chan time.Time
	period time.Duration // >0 for tickers: re-arm after firing
	stop   bool
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

func (s *Sim) addWaiter(d, period time.Duration) *waiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := &waiter{at: s.now.Add(d), seq: s.seq, ch: make(chan time.Time, 1), period: period}
	s.seq++
	heap.Push(&s.waiters, w)
	return w
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	return s.addWaiter(d, 0).ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) *Timer {
	w := s.addWaiter(d, 0)
	return &Timer{C: w.ch, stop: func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if w.stop {
			return false
		}
		w.stop = true
		return true
	}}
}

// NewTicker implements Clock.
func (s *Sim) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("simclock: non-positive ticker period")
	}
	w := s.addWaiter(d, d)
	return &Ticker{C: w.ch, stop: func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		w.stop = true
	}}
}

// Advance moves the clock forward by d, firing every timer and ticker whose
// deadline falls within the window, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to t, firing timers along the way.
// Advancing to a time in the past is a no-op.
func (s *Sim) AdvanceTo(t time.Time) {
	for {
		s.mu.Lock()
		if len(s.waiters) == 0 || s.waiters[0].at.After(t) {
			if t.After(s.now) {
				s.now = t
			}
			s.mu.Unlock()
			return
		}
		w := heap.Pop(&s.waiters).(*waiter)
		if w.stop {
			s.mu.Unlock()
			continue
		}
		if w.at.After(s.now) {
			s.now = w.at
		}
		if w.period > 0 {
			// Re-push the same waiter so the ticker's stop closure, which
			// captured w, still controls future firings.
			w.at = w.at.Add(w.period)
			w.seq = s.seq
			s.seq++
			heap.Push(&s.waiters, w)
		}
		s.mu.Unlock()
		// Non-blocking send mirrors time.Ticker, which drops ticks when the
		// receiver is slow.
		select {
		case w.ch <- s.Now():
		default:
		}
	}
}

// PendingTimers reports how many timers and tickers are currently armed.
// It is intended for tests.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, w := range s.waiters {
		if !w.stop {
			n++
		}
	}
	return n
}
