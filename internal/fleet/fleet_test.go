package fleet

import (
	"slices"
	"sync"
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/core"
	"pingmesh/internal/netsim"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

var t0 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func testRig(t *testing.T) (*netsim.Network, map[topology.ServerID]*pinglist.File) {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 2, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	lists, err := core.Generate(top, core.DefaultGeneratorConfig(), "v1", t0)
	if err != nil {
		t.Fatal(err)
	}
	return n, lists
}

func TestRunProducesScheduledProbes(t *testing.T) {
	n, lists := testRig(t)
	recs, sink := NewRecordCollector()
	r := &Runner{Net: n, Lists: lists, Seed: 1}
	if err := r.Run(t0, t0.Add(10*time.Minute), sink); err != nil {
		t.Fatal(err)
	}
	// 12 servers; each has 2 intra-pod peers (10s interval -> 60 probes
	// each in 10min) and 3 intra-DC peers (30s -> 20 each): 180 probes per
	// server, give or take phase effects, plus inter-DC none (single DC).
	perServer := float64(len(*recs)) / 12
	if perServer < 140 || perServer > 220 {
		t.Fatalf("%d records (%.0f/server), want ~180/server", len(*recs), perServer)
	}
	// Records carry valid classes and fresh ports.
	ports := map[uint16]int{}
	for i := range *recs {
		rec := &(*recs)[i]
		if rec.Start.Before(t0) || !rec.Start.Before(t0.Add(10*time.Minute)) {
			t.Fatalf("record outside window: %v", rec.Start)
		}
		ports[rec.SrcPort]++
	}
	if len(ports) < 100 {
		t.Fatalf("only %d distinct source ports used", len(ports))
	}
}

func TestRunDeterministic(t *testing.T) {
	n, lists := testRig(t)
	run := func() int {
		recs, sink := NewRecordCollector()
		r := &Runner{Net: n, Lists: lists, Seed: 42, Workers: 4}
		if err := r.Run(t0, t0.Add(5*time.Minute), sink); err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := range *recs {
			total += int((*recs)[i].RTT / time.Microsecond)
		}
		return total
	}
	if run() != run() {
		t.Fatal("same seed produced different results")
	}
}

func TestRunEmptyWindowErrors(t *testing.T) {
	n, lists := testRig(t)
	r := &Runner{Net: n, Lists: lists}
	_, sink := NewRecordCollector()
	if err := r.Run(t0, t0, sink); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := (&Runner{}).Run(t0, t0.Add(time.Minute), sink); err == nil {
		t.Fatal("runner without network accepted")
	}
}

func TestRunDownedPodsetProducesNoSourceRecords(t *testing.T) {
	n, lists := testRig(t)
	n.SetPodsetDown(0, 1, true)
	recs, sink := NewRecordCollector()
	r := &Runner{Net: n, Lists: lists, Seed: 3}
	if err := r.Run(t0, t0.Add(5*time.Minute), sink); err != nil {
		t.Fatal(err)
	}
	top := n.Topology()
	for i := range *recs {
		rec := &(*recs)[i]
		id, ok := top.ServerByAddr(rec.Src)
		if !ok {
			t.Fatal("unknown source")
		}
		if top.Server(id).Podset == 1 {
			t.Fatalf("downed server %v produced records", id)
		}
		// Probes TO the downed podset fail.
		did, _ := top.ServerByAddr(rec.Dst)
		if top.Server(did).Podset == 1 && rec.Success() {
			t.Fatalf("probe to downed podset succeeded: %+v", rec)
		}
	}
}

func TestStatsCollector(t *testing.T) {
	n, lists := testRig(t)
	top := n.Topology()
	keyer := &analysis.Keyer{Top: top}
	col := NewStatsCollector(keyer.SrcDC)
	r := &Runner{Net: n, Lists: lists, Seed: 4}
	if err := r.Run(t0, t0.Add(5*time.Minute), col.Sink); err != nil {
		t.Fatal(err)
	}
	groups := col.Groups()
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if groups["DC1"].Total() == 0 {
		t.Fatal("no records aggregated")
	}
}

func TestStatsCollectorNilKey(t *testing.T) {
	col := NewStatsCollector(nil)
	col.Sink(0, []probe.Record{{RTT: time.Millisecond}})
	if col.Groups()[""].Total() != 1 {
		t.Fatal("nil-key grouping broken")
	}
}

func TestIntervalScale(t *testing.T) {
	n, lists := testRig(t)
	count := func(scale float64) int {
		recs, sink := NewRecordCollector()
		r := &Runner{Net: n, Lists: lists, Seed: 5, IntervalScale: scale}
		if err := r.Run(t0, t0.Add(10*time.Minute), sink); err != nil {
			t.Fatal(err)
		}
		return len(*recs)
	}
	dense := count(0.5)
	normal := count(1)
	sparse := count(2)
	if !(dense > normal && normal > sparse) {
		t.Fatalf("interval scaling wrong: dense=%d normal=%d sparse=%d", dense, normal, sparse)
	}
}

func TestRunSkipsVIPTargets(t *testing.T) {
	// Pinglists can carry VIP monitoring targets that have no simulated
	// endpoint; the runner must skip them rather than fail.
	n, lists := testRig(t)
	lists[0].Peers = append(lists[0].Peers, pinglist.Peer{
		Addr: "192.0.2.10", Port: 80, Class: "intra-dc", Proto: "http",
		QoS: "high", IntervalSec: 10,
	})
	recs, sink := NewRecordCollector()
	r := &Runner{Net: n, Lists: lists, Seed: 6}
	if err := r.Run(t0, t0.Add(5*time.Minute), sink); err != nil {
		t.Fatal(err)
	}
	for i := range *recs {
		if (*recs)[i].Dst.String() == "192.0.2.10" {
			t.Fatal("runner probed a VIP with no simulated endpoint")
		}
	}
	if len(*recs) == 0 {
		t.Fatal("no records at all")
	}
}

func TestRunPayloadPeersCarryPayloadRTT(t *testing.T) {
	n, _ := testRig(t)
	top := n.Topology()
	cfg := core.DefaultGeneratorConfig()
	cfg.PayloadBytes = 800
	lists, err := core.Generate(top, cfg, "v2", t0)
	if err != nil {
		t.Fatal(err)
	}
	recs, sink := NewRecordCollector()
	r := &Runner{Net: n, Lists: lists, Seed: 7}
	if err := r.Run(t0, t0.Add(5*time.Minute), sink); err != nil {
		t.Fatal(err)
	}
	withPayload := 0
	for i := range *recs {
		rec := &(*recs)[i]
		if rec.PayloadLen > 0 {
			withPayload++
			if rec.Success() && rec.PayloadRTT == 0 {
				t.Fatalf("payload peer with no PayloadRTT: %+v", rec)
			}
		}
	}
	if withPayload == 0 {
		t.Fatal("no payload probes scheduled")
	}
}

func BenchmarkFleetRunnerHour(b *testing.B) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		b.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC2Profile()}})
	if err != nil {
		b.Fatal(err)
	}
	lists, err := core.Generate(top, core.DefaultGeneratorConfig(), "v1", t0)
	if err != nil {
		b.Fatal(err)
	}
	var probes int
	col := NewStatsCollector(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Net: n, Lists: lists, Seed: uint64(i) + 1}
		if err := r.Run(t0, t0.Add(time.Hour), col.Sink); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	probes = int(col.Groups()[""].Total())
	b.ReportMetric(float64(probes)/float64(b.N), "probes/hour")
}

// TestRunDeterministicAcrossWorkers is the golden determinism check: the
// per-server record streams must be byte-identical no matter how many
// workers the schedule is spread over (per-server rngs and the plan cache
// make worker scheduling invisible).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	n, lists := testRig(t)
	run := func(workers int) map[topology.ServerID][]probe.Record {
		out := map[topology.ServerID][]probe.Record{}
		var mu sync.Mutex
		r := &Runner{Net: n, Lists: lists, Seed: 77, Workers: workers}
		err := r.Run(t0, t0.Add(10*time.Minute), func(src topology.ServerID, recs []probe.Record) {
			mu.Lock()
			out[src] = append(out[src], recs...) // copy: the batch is pooled
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one, many := run(1), run(4)
	if len(one) != len(many) {
		t.Fatalf("server sets differ: %d vs %d", len(one), len(many))
	}
	for id, recs := range one {
		if !slices.Equal(recs, many[id]) {
			t.Fatalf("server %v: Workers=1 and Workers=4 streams differ", id)
		}
	}
}

// TestRunAllDownProducesNoRecords pins the downed-source fast path: a
// powered-off server must not probe at all (no records, no error), which
// is what produces the white rows of Figure 8(b).
func TestRunAllDownProducesNoRecords(t *testing.T) {
	n, lists := testRig(t)
	n.SetPodsetDown(0, 0, true)
	n.SetPodsetDown(0, 1, true)
	recs, sink := NewRecordCollector()
	r := &Runner{Net: n, Lists: lists, Seed: 8}
	if err := r.Run(t0, t0.Add(10*time.Minute), sink); err != nil {
		t.Fatal(err)
	}
	if len(*recs) != 0 {
		t.Fatalf("downed fleet produced %d records", len(*recs))
	}
}

// TestFleetRunZeroAllocPerRecord guards the pooled-batch contract: after
// warm-up, allocations per run must not scale with the number of probes
// (batches come from the pool, the probe path is allocation-free). Wired
// into CI tier 3 via the ZeroAlloc name filter.
func TestFleetRunZeroAllocPerRecord(t *testing.T) {
	n, lists := testRig(t)
	col := NewStatsCollector(nil)
	run := func(d time.Duration) float64 {
		return testing.AllocsPerRun(3, func() {
			r := &Runner{Net: n, Lists: lists, Seed: 9, Workers: 1}
			if err := r.Run(t0, t0.Add(d), col.Sink); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(time.Minute) // warm plan cache, batch pool, collector groups
	short := run(2 * time.Minute)
	long := run(20 * time.Minute)
	// 10x the probes must not mean more allocations: growth here means a
	// per-probe or per-batch allocation crept back into the hot path.
	if long > short+32 {
		t.Errorf("allocations scale with records: %.0f for 2min vs %.0f for 20min", short, long)
	}
}

// BenchmarkFleetRun is the headline fleet throughput benchmark (see
// BENCH_PR3.json and `make bench-fleet`): one simulated hour of a
// two-podset DC, aggregated by the StatsCollector, reported as probes/sec
// of wall time.
func BenchmarkFleetRun(b *testing.B) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		b.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC2Profile()}})
	if err != nil {
		b.Fatal(err)
	}
	lists, err := core.Generate(top, core.DefaultGeneratorConfig(), "v1", t0)
	if err != nil {
		b.Fatal(err)
	}
	col := NewStatsCollector(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Net: n, Lists: lists, Seed: uint64(i) + 1}
		if err := r.Run(t0, t0.Add(time.Hour), col.Sink); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	probes := float64(col.Groups()[""].Total())
	b.ReportMetric(probes/b.Elapsed().Seconds(), "probes/sec")
	b.ReportMetric(probes/float64(b.N), "probes/run")
}
