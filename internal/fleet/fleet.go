// Package fleet drives a whole simulated Pingmesh deployment at
// experiment speed: it takes the controller-generated pinglists and
// executes every probe the fleet's agents would launch over a time window
// against the network simulator, without paying for per-agent goroutines
// and virtual-clock scheduling. The full agent stack (fetch loops, safety
// rails, uploads) is exercised separately by the agent package and the
// integration tests; the fleet runner is how day- and week-long
// experiments finish in seconds.
package fleet

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/netsim"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// Runner executes the probing schedule of a set of pinglists.
type Runner struct {
	// Net is the simulated network.
	Net *netsim.Network
	// Lists holds each server's pinglist (the controller's output).
	Lists map[topology.ServerID]*pinglist.File
	// Seed makes runs reproducible.
	Seed uint64
	// Workers bounds parallelism. Default NumCPU.
	Workers int
	// IntervalScale stretches every peer's probing interval; >1 thins the
	// probe schedule for quick runs, <1 densifies it for tail resolution.
	// Default 1.
	IntervalScale float64
}

// Run simulates every probe scheduled in [from, to) and hands each
// server's records to sink. sink is called once per (server, batch) from
// multiple goroutines; it must be safe for concurrent use.
func (r *Runner) Run(from, to time.Time, sink func(src topology.ServerID, recs []probe.Record)) error {
	if r.Net == nil || len(r.Lists) == 0 {
		return fmt.Errorf("fleet: runner needs a network and pinglists")
	}
	if !to.After(from) {
		return fmt.Errorf("fleet: empty window [%v, %v)", from, to)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	scale := r.IntervalScale
	if scale <= 0 {
		scale = 1
	}

	ids := make([]topology.ServerID, 0, len(r.Lists))
	for id := range r.Lists {
		ids = append(ids, id)
	}
	// Deterministic order for deterministic per-server seeds.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}

	idCh := make(chan topology.ServerID)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := range idCh {
				if err := r.runServer(id, from, to, scale, sink); err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	for _, id := range ids {
		idCh <- id
	}
	close(idCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runServer executes one server's schedule for the window.
func (r *Runner) runServer(src topology.ServerID, from, to time.Time, scale float64, sink func(topology.ServerID, []probe.Record)) error {
	top := r.Net.Topology()
	list := r.Lists[src]
	rng := rand.New(rand.NewPCG(r.Seed^uint64(src), uint64(src)*0x9e3779b97f4a7c15+1))
	srcAddr := top.Server(src).Addr
	port := uint16(32768 + rng.IntN(1000))

	var batch []probe.Record
	const flushAt = 4096
	for pi := range list.Peers {
		p := &list.Peers[pi]
		dst, ok := top.ServerByAddrString(p.Addr)
		if !ok {
			continue // VIP targets have no simulated endpoint
		}
		cls, err := p.ParsedClass()
		if err != nil {
			return err
		}
		proto, _ := p.ParsedProto()
		qos, _ := p.ParsedQoS()
		every := time.Duration(float64(p.Interval()) * scale)
		if every <= 0 {
			every = time.Second
		}
		// Spread each peer's schedule with a stable phase so fleet-wide
		// probes do not synchronize.
		phase := time.Duration(rng.Int64N(int64(every)))
		for t := from.Add(phase); t.Before(to); t = t.Add(every) {
			// A new source port per probe (§3.4.1).
			port++
			if port < 32768 {
				port = 32768
			}
			res := r.Net.Probe(netsim.ProbeSpec{
				Src: src, Dst: dst,
				SrcPort: port, DstPort: p.Port,
				Proto: proto, QoS: qos,
				PayloadLen: p.PayloadLen,
				Start:      t,
			}, rng)
			rec := probe.Record{
				Start:      t,
				Src:        srcAddr,
				SrcPort:    port,
				Dst:        top.Server(dst).Addr,
				DstPort:    p.Port,
				Class:      cls,
				Proto:      proto,
				QoS:        qos,
				PayloadLen: p.PayloadLen,
				RTT:        res.RTT,
				PayloadRTT: res.PayloadRTT,
				Err:        res.Err,
			}
			// Servers in a downed podset do not probe at all (they are
			// off); their outbound records must not exist, which is what
			// produces the white rows of Figure 8(b).
			if !r.Net.ServerUp(src) {
				continue
			}
			batch = append(batch, rec)
			if len(batch) >= flushAt {
				sink(src, batch)
				batch = nil
			}
		}
	}
	if len(batch) > 0 {
		sink(src, batch)
	}
	return nil
}

// StatsCollector is a sink that aggregates records into LatencyStats
// groups on the fly, so day-scale runs never materialize raw records.
type StatsCollector struct {
	key    func(*probe.Record) (string, bool)
	mu     sync.Mutex
	groups map[string]*analysis.LatencyStats
}

// NewStatsCollector builds a collector grouping by key; a nil key groups
// everything under "".
func NewStatsCollector(key func(*probe.Record) (string, bool)) *StatsCollector {
	return &StatsCollector{key: key, groups: map[string]*analysis.LatencyStats{}}
}

// Sink is the fleet.Runner sink.
func (c *StatsCollector) Sink(_ topology.ServerID, recs []probe.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range recs {
		k := ""
		if c.key != nil {
			var ok bool
			k, ok = c.key(&recs[i])
			if !ok {
				continue
			}
		}
		st, ok := c.groups[k]
		if !ok {
			st = analysis.NewLatencyStats()
			c.groups[k] = st
		}
		st.Add(&recs[i])
	}
}

// Groups returns the aggregates. The collector must not be used after.
func (c *StatsCollector) Groups() map[string]*analysis.LatencyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups
}

// NewRecordCollector returns a sink that appends every record to a shared
// slice (for small runs and tests).
func NewRecordCollector() (*[]probe.Record, func(topology.ServerID, []probe.Record)) {
	var mu sync.Mutex
	out := &[]probe.Record{}
	return out, func(_ topology.ServerID, recs []probe.Record) {
		mu.Lock()
		*out = append(*out, recs...)
		mu.Unlock()
	}
}
