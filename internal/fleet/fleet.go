// Package fleet drives a whole simulated Pingmesh deployment at
// experiment speed: it takes the controller-generated pinglists and
// executes every probe the fleet's agents would launch over a time window
// against the network simulator, without paying for per-agent goroutines
// and virtual-clock scheduling. The full agent stack (fetch loops, safety
// rails, uploads) is exercised separately by the agent package and the
// integration tests; the fleet runner is how day- and week-long
// experiments finish in seconds.
package fleet

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/netsim"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// Runner executes the probing schedule of a set of pinglists.
type Runner struct {
	// Net is the simulated network.
	Net *netsim.Network
	// Lists holds each server's pinglist (the controller's output).
	Lists map[topology.ServerID]*pinglist.File
	// Seed makes runs reproducible.
	Seed uint64
	// Workers bounds parallelism. Default NumCPU.
	Workers int
	// IntervalScale stretches every peer's probing interval; >1 thins the
	// probe schedule for quick runs, <1 densifies it for tail resolution.
	// Default 1.
	IntervalScale float64
}

// flushAt is the record batch size handed to sinks.
const flushAt = 4096

// batchPool recycles record batches across servers and runs: day-scale
// windows flush thousands of batches, and reallocating 4096-record
// slices dominated the runner's allocation profile.
var batchPool = sync.Pool{
	New: func() any {
		s := make([]probe.Record, 0, flushAt)
		return &s
	},
}

// Run simulates every probe scheduled in [from, to) and hands each
// server's records to sink. sink is called once per (server, batch) from
// multiple goroutines; it must be safe for concurrent use. The record
// slice is pooled: it is reused as soon as sink returns, so sinks must
// copy any data they keep (aggregating or encoding in place is fine).
//
// When several servers' schedules fail, the error reported is the one
// from the lowest server ID, independent of worker scheduling.
func (r *Runner) Run(from, to time.Time, sink func(src topology.ServerID, recs []probe.Record)) error {
	if r.Net == nil || len(r.Lists) == 0 {
		return fmt.Errorf("fleet: runner needs a network and pinglists")
	}
	if !to.After(from) {
		return fmt.Errorf("fleet: empty window [%v, %v)", from, to)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	scale := r.IntervalScale
	if scale <= 0 {
		scale = 1
	}

	ids := make([]topology.ServerID, 0, len(r.Lists))
	for id := range r.Lists {
		ids = append(ids, id)
	}
	// Deterministic order for deterministic per-server seeds.
	slices.Sort(ids)

	idxCh := make(chan int)
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = r.runServer(ids[i], from, to, scale, sink)
			}
		}()
	}
	for i := range ids {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	// errs is indexed by the sorted server order, so the reported error
	// is deterministic no matter which worker ran the failing server.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runServer executes one server's schedule for the window.
func (r *Runner) runServer(src topology.ServerID, from, to time.Time, scale float64, sink func(topology.ServerID, []probe.Record)) error {
	top := r.Net.Topology()
	list := r.Lists[src]
	rng := rand.New(rand.NewPCG(r.Seed^uint64(src), uint64(src)*0x9e3779b97f4a7c15+1))
	srcAddr := top.Server(src).Addr
	port := uint16(32768 + rng.IntN(1000))

	batchp := batchPool.Get().(*[]probe.Record)
	batch := (*batchp)[:0]
	defer func() {
		*batchp = batch[:0]
		batchPool.Put(batchp)
	}()
	for pi := range list.Peers {
		p := &list.Peers[pi]
		dst, ok := top.ServerByAddrString(p.Addr)
		if !ok {
			continue // VIP targets have no simulated endpoint
		}
		cls, err := p.ParsedClass()
		if err != nil {
			return err
		}
		proto, _ := p.ParsedProto()
		qos, _ := p.ParsedQoS()
		every := time.Duration(float64(p.Interval()) * scale)
		if every <= 0 {
			every = time.Second
		}
		// Everything invariant across the peer's schedule is hoisted out
		// of the probe loop: the probe plan (prober), the spec and the
		// record template.
		prober := r.Net.PairProber(src, dst)
		spec := netsim.ProbeSpec{
			Src: src, Dst: dst,
			DstPort: p.Port,
			Proto:   proto, QoS: qos,
			PayloadLen: p.PayloadLen,
		}
		rec := probe.Record{
			Src:        srcAddr,
			Dst:        top.Server(dst).Addr,
			DstPort:    p.Port,
			Class:      cls,
			Proto:      proto,
			QoS:        qos,
			PayloadLen: p.PayloadLen,
		}
		// Spread each peer's schedule with a stable phase so fleet-wide
		// probes do not synchronize.
		phase := time.Duration(rng.Int64N(int64(every)))
		var res netsim.Result
		for t := from.Add(phase); t.Before(to); t = t.Add(every) {
			// A new source port per probe (§3.4.1).
			port++
			if port < 32768 {
				port = 32768
			}
			spec.SrcPort, spec.Start = port, t
			// Servers in a downed podset do not probe at all (they are
			// off); their outbound records must not exist, which is what
			// produces the white rows of Figure 8(b). ProbeScheduled
			// reports that without simulating anything.
			if !prober.ProbeScheduled(&spec, rng, &res) {
				continue
			}
			rec.Start, rec.SrcPort = t, port
			rec.RTT, rec.PayloadRTT, rec.Err = res.RTT, res.PayloadRTT, res.Err
			batch = append(batch, rec)
			if len(batch) >= flushAt {
				sink(src, batch)
				batch = batch[:0]
			}
		}
	}
	if len(batch) > 0 {
		sink(src, batch)
	}
	return nil
}

// StatsCollector is a sink that aggregates records into LatencyStats
// groups on the fly, so day-scale runs never materialize raw records.
type StatsCollector struct {
	key    func(*probe.Record) (string, bool)
	mu     sync.Mutex
	groups map[string]*analysis.LatencyStats
}

// NewStatsCollector builds a collector grouping by key; a nil key groups
// everything under "".
func NewStatsCollector(key func(*probe.Record) (string, bool)) *StatsCollector {
	return &StatsCollector{key: key, groups: map[string]*analysis.LatencyStats{}}
}

// Sink is the fleet.Runner sink. It does not retain the record slice.
func (c *StatsCollector) Sink(_ topology.ServerID, recs []probe.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.key == nil {
		st := c.group("")
		for i := range recs {
			st.Add(&recs[i])
		}
		return
	}
	// Consecutive records usually come from the same peer and land in
	// the same group; memoize the last lookup.
	var st *analysis.LatencyStats
	var last string
	for i := range recs {
		k, ok := c.key(&recs[i])
		if !ok {
			continue
		}
		if st == nil || k != last {
			st, last = c.group(k), k
		}
		st.Add(&recs[i])
	}
}

func (c *StatsCollector) group(k string) *analysis.LatencyStats {
	st, ok := c.groups[k]
	if !ok {
		st = analysis.NewLatencyStats()
		c.groups[k] = st
	}
	return st
}

// Groups returns the aggregates. The collector must not be used after.
func (c *StatsCollector) Groups() map[string]*analysis.LatencyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups
}

// NewRecordCollector returns a sink that appends every record to a shared
// slice (for small runs and tests).
func NewRecordCollector() (*[]probe.Record, func(topology.ServerID, []probe.Record)) {
	var mu sync.Mutex
	out := &[]probe.Record{}
	return out, func(_ topology.ServerID, recs []probe.Record) {
		mu.Lock()
		*out = append(*out, recs...)
		mu.Unlock()
	}
}
