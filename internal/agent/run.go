package agent

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"pingmesh/internal/controller"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/trace"
)

// Run starts the agent's three loops — pinglist fetching, probe
// scheduling, and result uploading — and blocks until ctx is cancelled.
func (a *Agent) Run(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)

	go a.fetchLoop(ctx)
	go a.uploadLoop(ctx)
	a.scheduleLoop(ctx)
	// Final upload attempt so short-lived runs don't lose data; it ships
	// open sketch windows too instead of waiting for the grid to pass them.
	a.flush(context.Background(), true)
	return ctx.Err()
}

// fetchLoop polls the controller. The agent pulls; the controller never
// pushes (§3.3.2). With FetchJitter set, each wait is independently
// shortened by up to that fraction, seeded per server so the fleet's
// schedules decorrelate deterministically.
func (a *Agent) fetchLoop(ctx context.Context) {
	a.fetchOnce(ctx)
	if a.cfg.FetchJitter <= 0 {
		ticker := a.clock.NewTicker(a.cfg.FetchInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				a.fetchOnce(ctx)
			}
		}
	}
	rng := rand.New(rand.NewSource(seedFor(a.cfg.ServerName)))
	for {
		timer := a.clock.NewTimer(a.fetchWait(rng))
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
			a.fetchOnce(ctx)
		}
	}
}

// fetchWait draws the next poll delay: FetchInterval shortened by up to
// the jitter fraction, never lengthened.
func (a *Agent) fetchWait(rng *rand.Rand) time.Duration {
	j := a.cfg.FetchJitter
	if j <= 0 {
		return a.cfg.FetchInterval
	}
	return time.Duration(float64(a.cfg.FetchInterval) * (1 - j*rng.Float64()))
}

// seedFor hashes a server name into a deterministic per-agent RNG seed.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// detailFetcher is optionally implemented by fetchers that report how a
// pinglist was obtained; *controller.Client does, so the agent can tell a
// cheap 304 revalidation from a full download.
type detailFetcher interface {
	FetchDetail(ctx context.Context, server string) (controller.FetchResult, error)
}

func (a *Agent) fetchOnce(ctx context.Context) {
	fetchStart := a.clock.Now()
	var f *pinglist.File
	var err error
	notModified := false
	delta := false
	if df, ok := a.cfg.Controller.(detailFetcher); ok {
		var res controller.FetchResult
		res, err = df.FetchDetail(ctx, a.cfg.ServerName)
		if err == nil {
			f = res.File
			notModified = res.NotModified
			delta = res.Delta
			a.reg.Counter("agent.fetch_bytes").Add(res.BytesOnWire)
		}
	} else {
		f, err = a.cfg.Controller.Fetch(ctx, a.cfg.ServerName)
	}
	if err != nil {
		var noPL *controller.ErrNoPinglist
		if errors.As(err, &noPL) {
			// Controller is up but has no pinglist: the fleet-wide stop
			// signal. Fail closed immediately (§3.4.2).
			a.reg.Counter("agent.fetch_no_pinglist").Inc()
			a.failClosed("no pinglist")
			return
		}
		a.reg.Counter("agent.fetch_errors").Inc()
		a.mu.Lock()
		a.fetchFailures++
		failures := a.fetchFailures
		a.mu.Unlock()
		if failures >= MaxFetchFailures {
			a.failClosed("controller unreachable")
		}
		return
	}
	a.reg.Counter("agent.fetches_ok").Inc()
	a.reg.Histogram("agent.fetch.duration").Observe(a.clock.Since(fetchStart))
	if notModified {
		// The controller revalidated our cached copy with a 304: the
		// pinglist is unchanged and the fetch cost no body bytes.
		a.reg.Counter("agent.fetch_not_modified").Inc()
	}
	if delta {
		// A changed pinglist arrived as a verified patch instead of a full
		// download.
		a.reg.Counter("agent.fetch_delta").Inc()
	}
	a.mu.Lock()
	a.fetchFailures = 0
	sameVersion := a.version == f.Version && !a.failedClosed
	a.mu.Unlock()
	if sameVersion {
		return // unchanged pinglist: nothing to apply
	}
	if err := a.applyPinglist(f); err != nil {
		a.reg.Counter("agent.pinglist_invalid").Inc()
	}
}

// scheduleLoop runs probes at each peer's cadence, bounded by the
// concurrency limit. A single goroutine owns the schedule; probe execution
// fans out to short-lived workers.
func (a *Agent) scheduleLoop(ctx context.Context) {
	sem := make(chan struct{}, a.cfg.MaxConcurrentProbes)
	for {
		a.mu.Lock()
		a.sortPeersLocked()
		var wait time.Duration
		var due *peerState
		if len(a.peers) == 0 {
			wait = time.Hour // idle until peersChanged
		} else {
			now := a.clock.Now()
			first := &a.peers[0]
			if first.next.After(now) {
				wait = first.next.Sub(now)
			} else {
				due = &peerState{target: first.target} // copy for the worker
				first.next = now.Add(first.every)
			}
		}
		a.mu.Unlock()

		if due != nil {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			go func(t Target) {
				defer func() { <-sem }()
				a.probeOne(ctx, t)
			}(due.target)
			continue
		}

		timer := a.clock.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-a.peersChanged:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// probeOne executes a single probe and records the outcome. The sampling
// decision is one atomic load when tracing is off or this probe loses the
// 1-in-N draw; only a sampled probe pays for the trace context.
func (a *Agent) probeOne(ctx context.Context, t Target) {
	var tid trace.TraceID
	if a.tracer != nil {
		if tid = a.tracer.SampleProbe(); tid != 0 {
			ctx = trace.NewContext(ctx, a.tracer, tid)
		}
	}
	start := a.clock.Now()
	out, err := a.cfg.Prober.Probe(ctx, t)
	rec := probe.Record{
		Start:      start,
		Src:        a.cfg.SourceAddr,
		SrcPort:    out.SrcPort,
		Dst:        t.Addr,
		DstPort:    t.Port,
		Class:      t.Class,
		Proto:      t.Proto,
		QoS:        t.QoS,
		PayloadLen: t.PayloadLen,
		RTT:        out.ConnectRTT,
		PayloadRTT: out.PayloadRTT,
	}
	if err != nil {
		rec.Err = truncateErr(err)
	}
	if tid != 0 {
		// Register the record's wire identity first, then record the span:
		// the ingest side can only re-attach the trace via the table.
		a.tracer.RegisterProbe(tid, rec.Src, rec.SrcPort, rec.Start.UnixNano())
		a.tring.Span(tid, trace.StageProbe, t.Addr.String(), start, a.clock.Now(), err == nil)
	}
	a.record(rec)
}

func truncateErr(err error) string {
	s := err.Error()
	if len(s) > 120 {
		s = s[:120]
	}
	return s
}

func (a *Agent) kickUpload() {
	select {
	case a.uploadKick <- struct{}{}:
	default:
	}
}

// uploadLoop periodically ships the buffer to the uploader; a full buffer
// triggers an early ship.
func (a *Agent) uploadLoop(ctx context.Context) {
	ticker := a.clock.NewTicker(a.cfg.UploadInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-a.uploadKick:
		}
		a.flush(ctx, false)
	}
}

// flush uploads everything buffered: the raw record batch plus, in sketch
// mode, the completed sketch windows. On persistent failure the batch is
// discarded: bounded memory wins over completeness (§3.4.2); the local log
// still has the raw data. final additionally cuts the still-open sketch
// windows — the shutdown path must not strand partial windows.
func (a *Agent) flush(ctx context.Context, final bool) {
	if a.cfg.Uploader == nil {
		// No uploader configured: records stay buffered for in-process
		// consumers; record() already enforces the memory bound.
		return
	}
	// encMu serializes the upload loop's flush with the final flush in Run
	// and guards the pooled per-flush state (encBuf, flushTIDs,
	// pendingSketches, the gzip writer), so all of it is reused verbatim on
	// the next flush — the Uploader contract says the batch is only valid
	// during the call.
	a.encMu.Lock()
	defer a.encMu.Unlock()
	a.mu.Lock()
	batch := a.buffer
	a.buffer = nil
	sks := a.pendingSketches[:0]
	if a.sketch != nil {
		cut := a.sketch.WindowIndex(a.clock.Now())
		if final {
			cut = math.MaxInt64
		}
		sks = a.sketch.CutBefore(cut, sks)
	}
	a.pendingSketches = sks
	a.mu.Unlock()
	if len(batch) == 0 && len(sks) == 0 {
		return
	}
	if len(sks) > 0 {
		// The cut sketches own freelisted histograms; hand them back after
		// the upload settles, win or lose.
		defer func() {
			a.mu.Lock()
			a.sketch.Release(sks)
			a.mu.Unlock()
		}()
	}
	flushStart := a.clock.Now()
	var skRecords int64
	for i := range sks {
		skRecords += int64(sks[i].RTT.Count())
	}
	// Sampled probes riding in this batch get encode/upload spans. Sketched
	// probes never do: record() routes traced probes to the raw buffer.
	a.flushTIDs = a.flushTIDs[:0]
	if a.tracer != nil && a.tracer.HasActiveProbes() {
		for i := range batch {
			r := &batch[i]
			if tid := a.tracer.MatchProbe(r.Src, r.SrcPort, r.Start.UnixNano()); tid != 0 {
				a.flushTIDs = append(a.flushTIDs, tid)
			}
		}
	}
	encStart := a.clock.Now()
	var data []byte
	if a.sketch != nil {
		data = probe.AppendBinaryBatch(a.encBuf[:0], batch, sks)
	} else {
		data = probe.AppendBatch(a.encBuf[:0], batch)
	}
	a.encBuf = data[:0]
	if a.gzw != nil {
		a.gzBuf.Reset()
		a.gzw.Reset(&a.gzBuf)
		a.gzw.Write(data) // bytes.Buffer writes cannot fail
		a.gzw.Close()
		data = a.gzBuf.Bytes()
	}
	encEnd := a.clock.Now()
	for _, tid := range a.flushTIDs {
		a.tring.SpanAttr(tid, trace.StageEncode, "batch", encStart, encEnd, true, "records", int64(len(batch)))
	}
	for attempt := 0; attempt < a.cfg.UploadRetries; attempt++ {
		upStart := a.clock.Now()
		err := a.cfg.Uploader.Upload(ctx, data)
		if a.tracer != nil {
			for _, tid := range a.flushTIDs {
				a.tring.SpanAttr(tid, trace.StageUpload, "batch", upStart, a.clock.Now(), err == nil, "bytes", int64(len(data)))
			}
		}
		if err == nil {
			if a.tracer != nil {
				a.tracer.Freshness().Mark(trace.StageUpload)
			}
			a.reg.Counter("agent.uploads_ok").Inc()
			a.reg.Histogram("agent.flush.duration").Observe(a.clock.Since(flushStart))
			a.reg.Counter("agent.uploaded_records").Add(int64(len(batch)) + skRecords)
			a.cUploadRaw.Add(int64(len(batch)))
			a.cUploadSketch.Add(int64(len(sks)))
			a.cUploadBytes.Add(int64(len(data)))
			return
		}
		a.reg.Counter("agent.upload_errors").Inc()
		if ctx.Err() != nil {
			break
		}
		a.clock.Sleep(time.Second << attempt)
	}
	a.reg.Counter("agent.uploads_discarded").Inc()
	a.reg.Counter("agent.discarded_records").Add(int64(len(batch)) + skRecords)
}
