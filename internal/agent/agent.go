// Package agent implements the Pingmesh Agent (§3.4): the shared service
// that runs on every server. Its job is deliberately simple — download the
// pinglist from the Pingmesh Controller, probe the peers in it, and upload
// the results — but it must be fail-closed and nearly free, because a bug
// in code running on every server can take the whole fleet down.
//
// Safety rails mirrored from the paper, hard-coded here exactly as they
// are hard-coded in the production agent:
//
//   - the probe interval per peer never goes below MinProbeInterval;
//   - probe payloads never exceed MaxPayload;
//   - after MaxFetchFailures consecutive controller failures, or when the
//     controller is up but has no pinglist, the agent removes all peers
//     and stops probing (it keeps answering probes from others);
//   - upload failures are retried a bounded number of times and then the
//     in-memory data is discarded, so memory stays bounded;
//   - results are also written to a size-capped local log.
package agent

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/metrics"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/trace"
)

// Hard safety limits (§3.4.2). These are constants, not configuration, by
// design: they bound the worst-case traffic the fleet can generate even if
// a controller bug hands out an insane pinglist.
const (
	// MinProbeInterval is the minimum interval between two probes of the
	// same source-destination pair.
	MinProbeInterval = 10 * time.Second
	// MaxPayload is the maximum probe payload length.
	MaxPayload = 64 * 1024
	// MaxFetchFailures is how many consecutive controller-fetch failures
	// the agent tolerates before failing closed.
	MaxFetchFailures = 3
)

// Target is one probing destination resolved from a pinglist peer.
type Target struct {
	Addr       netip.Addr
	Port       uint16
	Class      probe.Class
	Proto      probe.Proto
	QoS        probe.QoS
	PayloadLen int
}

// Outcome is what a Prober measures for one probe.
type Outcome struct {
	ConnectRTT time.Duration
	PayloadRTT time.Duration
	SrcPort    uint16
}

// Prober performs one probe against a target. Implementations exist for
// the real network (netlib-backed) and for the simulator.
type Prober interface {
	Probe(ctx context.Context, t Target) (Outcome, error)
}

// Uploader receives encoded record batches (the DSA ingestion point; in
// production this is Cosmos behind a VIP). The batch slice is only valid
// for the duration of the call — the agent reuses one encode buffer across
// uploads — so implementations that retain the bytes must copy them
// (cosmos.Store.Append does).
type Uploader interface {
	Upload(ctx context.Context, batch []byte) error
}

// Fetcher fetches pinglists; *controller.Client implements it.
type Fetcher interface {
	Fetch(ctx context.Context, server string) (*pinglist.File, error)
}

// Config configures an Agent.
type Config struct {
	// ServerName is this server's name, used to fetch its pinglist.
	ServerName string
	// SourceAddr is this server's IP, stamped into records.
	SourceAddr netip.Addr
	// Controller fetches pinglists.
	Controller Fetcher
	// Prober executes probes.
	Prober Prober
	// Uploader receives result batches. May be nil (records then only go
	// to the in-memory buffer / local log).
	Uploader Uploader
	// Clock defaults to wall time.
	Clock simclock.Clock

	// FetchInterval is how often the agent polls the controller for a new
	// pinglist. Default 5m.
	FetchInterval time.Duration
	// FetchJitter desynchronizes the fleet's polls: when positive, each
	// wait between fetches is drawn uniformly from
	// [FetchInterval*(1-FetchJitter), FetchInterval] instead of being
	// exactly FetchInterval, so a million agents started by the same
	// rollout don't hit the controllers in lockstep. The jitter only ever
	// shortens the wait, so "converges within one refresh interval" stays
	// true. 0 (the default) keeps the exact cadence; values are clamped to
	// [0, 1].
	FetchJitter float64
	// UploadInterval is how often buffered records are uploaded. Default 1m.
	UploadInterval time.Duration
	// UploadThreshold uploads early once this many records are buffered.
	// Default 4096.
	UploadThreshold int
	// UploadRetries bounds upload retry attempts before data is discarded.
	// Default 3.
	UploadRetries int
	// MaxBufferedRecords bounds agent memory; oldest records are dropped
	// beyond it. Default 65536.
	MaxBufferedRecords int
	// MaxConcurrentProbes bounds in-flight probes. Default 8.
	MaxConcurrentProbes int
	// LocalLog, if non-nil, additionally receives every record (§3.4.2:
	// the agent writes latency data to size-capped local log files).
	LocalLog *LocalLog
	// Tracer, if non-nil, lets sampled probes carry an end-to-end trace
	// and marks upload freshness. Nil disables tracing entirely.
	Tracer *trace.Tracer

	// SketchUpload switches uploads to the binary sketch format: each
	// reporting window's successful, non-anomalous probes aggregate into
	// per-peer latency sketches and only anomalies (failures, SYN-
	// retransmit signatures, RTTs at or above RawThreshold, traced probes)
	// ship as raw records. Off by default: the raw-CSV path is the
	// fallback and remains byte-identical to the pre-sketch agent.
	SketchUpload bool
	// SketchWindow is the sketch cut window, aligned to the UTC epoch
	// grid. It must equal the analysis pipeline's fold window so sketches
	// never straddle an analysis window. Default 10m (the DSA cadence).
	SketchWindow time.Duration
	// RawThreshold is the successful-probe RTT at or above which a record
	// ships raw even in sketch mode, keeping per-record identity for the
	// tail the operators will drill into. Default 1s.
	RawThreshold time.Duration
	// GzipUploads compresses upload batches with a pooled gzip writer.
	// The cosmos client transparently inflates before storing, so stored
	// extents stay scannable.
	GzipUploads bool
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.ServerName == "" {
		return out, errors.New("agent: ServerName required")
	}
	if !out.SourceAddr.IsValid() {
		return out, errors.New("agent: SourceAddr required")
	}
	if out.Controller == nil {
		return out, errors.New("agent: Controller required")
	}
	if out.Prober == nil {
		return out, errors.New("agent: Prober required")
	}
	if out.Clock == nil {
		out.Clock = simclock.NewReal()
	}
	if out.FetchInterval <= 0 {
		out.FetchInterval = 5 * time.Minute
	}
	if out.FetchJitter < 0 {
		out.FetchJitter = 0
	}
	if out.FetchJitter > 1 {
		out.FetchJitter = 1
	}
	if out.UploadInterval <= 0 {
		out.UploadInterval = time.Minute
	}
	if out.UploadThreshold <= 0 {
		out.UploadThreshold = 4096
	}
	if out.UploadRetries <= 0 {
		out.UploadRetries = 3
	}
	if out.MaxBufferedRecords <= 0 {
		out.MaxBufferedRecords = 65536
	}
	if out.MaxConcurrentProbes <= 0 {
		out.MaxConcurrentProbes = 8
	}
	if out.SketchWindow <= 0 {
		out.SketchWindow = 10 * time.Minute
	}
	if out.RawThreshold <= 0 {
		out.RawThreshold = time.Second
	}
	return out, nil
}

// Agent is one server's Pingmesh Agent.
type Agent struct {
	cfg    Config
	clock  simclock.Clock
	reg    *metrics.Registry
	tracer *trace.Tracer // nil when tracing is disabled
	tring  *trace.Ring   // the "agent" span ring (nil iff tracer is nil)

	// Perf counters and per-class histograms are resolved once at New so
	// the record() hot path never builds a metric name (tier-3 guarded:
	// TestProbeTraceDisabledZeroAlloc).
	cProbesTotal  *metrics.Counter
	cProbesFailed *metrics.Counter
	cProbesOK     *metrics.Counter
	cDropped      *metrics.Counter
	cRTT3s        *metrics.Counter
	cRTT9s        *metrics.Counter
	cUploadRaw    *metrics.Counter // agent.upload_raw_records
	cUploadSketch *metrics.Counter // agent.upload_sketches
	cUploadBytes  *metrics.Counter // agent.upload_bytes (on-wire, post-gzip)
	hRTT          [3]*metrics.LockedHistogram
	hPayloadRTT   [3]*metrics.LockedHistogram

	mu            sync.Mutex
	peers         []peerState
	version       string
	fetchFailures int
	failedClosed  bool
	buffer        []probe.Record
	dropped       int64              // records discarded to respect the memory bound
	sketch        *SketchAccumulator // nil unless SketchUpload

	peersChanged chan struct{} // kicks the scheduler
	uploadKick   chan struct{} // kicks the uploader on buffer-threshold

	// encMu serializes flushes; encBuf is the batch encode buffer reused
	// across uploads so steady-state encoding allocates nothing. flushTIDs
	// is the per-flush scratch of sampled traces riding in the batch.
	// pendingSketches is the per-flush scratch of cut sketches, and the
	// gzip writer/buffer are pooled the same way — one instance reused
	// across every flush, never re-allocated per batch.
	encMu           sync.Mutex
	encBuf          []byte
	flushTIDs       []trace.TraceID
	pendingSketches []probe.PeerSketch
	gzw             *gzip.Writer
	gzBuf           bytes.Buffer
}

type peerState struct {
	target Target
	every  time.Duration
	next   time.Time
}

// New validates the configuration and returns an idle agent; call Run to
// start it.
func New(cfg Config) (*Agent, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:          c,
		clock:        c.Clock,
		reg:          metrics.NewRegistry(),
		tracer:       c.Tracer,
		peersChanged: make(chan struct{}, 1),
		uploadKick:   make(chan struct{}, 1),
	}
	if a.tracer != nil {
		a.tring = a.tracer.Ring("agent")
		a.reg.GaugeFunc("agent.last_upload_age", func() int64 {
			return a.tracer.Freshness().AgeMillis(trace.StageUpload)
		})
	}
	// Resolve every per-record metric once: record() must not build names.
	a.cProbesTotal = a.reg.Counter("agent.probes_total")
	a.cProbesFailed = a.reg.Counter("agent.probes_failed")
	a.cProbesOK = a.reg.Counter("agent.probes_ok")
	a.cDropped = a.reg.Counter("agent.records_dropped")
	a.cRTT3s = a.reg.Counter("agent.rtt_3s")
	a.cRTT9s = a.reg.Counter("agent.rtt_9s")
	a.cUploadRaw = a.reg.Counter("agent.upload_raw_records")
	a.cUploadSketch = a.reg.Counter("agent.upload_sketches")
	a.cUploadBytes = a.reg.Counter("agent.upload_bytes")
	// Sketch mode only engages with an uploader: without one, records stay
	// in the bounded raw buffer for in-process consumers, exactly as before.
	if c.SketchUpload && c.Uploader != nil {
		a.sketch = NewSketchAccumulator(c.SourceAddr, c.SketchWindow)
	}
	if c.GzipUploads {
		a.gzw = gzip.NewWriter(&a.gzBuf)
	}
	for cls := probe.IntraPod; cls <= probe.InterDC; cls++ {
		a.hRTT[cls] = a.reg.Histogram("agent.rtt." + cls.String())
		a.hPayloadRTT[cls] = a.reg.Histogram("agent.rtt_payload." + cls.String())
	}
	return a, nil
}

// Metrics returns the agent's perf counters (collected by the Autopilot
// Perfcounter Aggregator in §3.5): per-class RTT histograms, probe and
// drop counters, peer gauge.
func (a *Agent) Metrics() *metrics.Registry { return a.reg }

// PeerCount reports how many peers the agent currently probes.
func (a *Agent) PeerCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.peers)
}

// FailedClosed reports whether the agent has stopped probing because the
// controller is unreachable or pinglist-less.
func (a *Agent) FailedClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failedClosed
}

// Version returns the pinglist version currently applied.
func (a *Agent) Version() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.version
}

// BufferedRecords returns a copy of the not-yet-uploaded records. Intended
// for tests and for in-process pipelines that bypass the uploader.
func (a *Agent) BufferedRecords() []probe.Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]probe.Record(nil), a.buffer...)
}

// applyPinglist converts a fetched file into peer state, enforcing the
// hard safety limits.
func (a *Agent) applyPinglist(f *pinglist.File) error {
	if err := f.Validate(); err != nil {
		return err
	}
	now := a.clock.Now()
	peers := make([]peerState, 0, len(f.Peers))
	for i := range f.Peers {
		p := &f.Peers[i]
		addr, err := netip.ParseAddr(p.Addr)
		if err != nil {
			return fmt.Errorf("agent: peer %d: %w", i, err)
		}
		cls, _ := p.ParsedClass()
		proto, _ := p.ParsedProto()
		qos, _ := p.ParsedQoS()
		every := p.Interval()
		if every < MinProbeInterval {
			every = MinProbeInterval // hard floor regardless of controller
		}
		payload := p.PayloadLen
		if payload > MaxPayload {
			payload = MaxPayload // hard cap regardless of controller
		}
		peers = append(peers, peerState{
			target: Target{
				Addr:       addr,
				Port:       p.Port,
				Class:      cls,
				Proto:      proto,
				QoS:        qos,
				PayloadLen: payload,
			},
			every: every,
			// Spread initial probes across the interval so a fleet-wide
			// pinglist rollout does not synchronize probe bursts.
			next: now.Add(time.Duration(i) * every / time.Duration(len(f.Peers))),
		})
	}
	a.mu.Lock()
	a.peers = peers
	a.version = f.Version
	a.failedClosed = false
	a.fetchFailures = 0
	a.mu.Unlock()
	a.reg.Gauge("agent.peers").Set(int64(len(peers)))
	a.kick()
	return nil
}

// failClosed removes all peers and stops probing (§3.4.2). The agent keeps
// responding to probes from other servers; only its own probing stops.
func (a *Agent) failClosed(reason string) {
	a.mu.Lock()
	already := a.failedClosed
	a.peers = nil
	a.failedClosed = true
	a.mu.Unlock()
	if !already {
		a.reg.Counter("agent.fail_closed").Inc()
		a.reg.Gauge("agent.peers").Set(0)
		_ = reason
	}
	a.kick()
}

func (a *Agent) kick() {
	select {
	case a.peersChanged <- struct{}{}:
	default:
	}
}

// record stores one result, enforcing the memory bound, mirroring to the
// local log, and updating perf counters. In sketch mode the anomaly policy
// routes here: successful, non-anomalous probes fold into the per-peer
// sketch accumulator; failures, SYN-retransmit drop signatures, RTTs at or
// above RawThreshold, and traced probes keep per-record identity and go
// through the raw buffer.
func (a *Agent) record(r probe.Record) {
	sketchable := a.sketch != nil && r.Success() &&
		r.RTT < a.cfg.RawThreshold && analysis.DropSignature(r.RTT) == 0
	if sketchable && a.tracer != nil && a.tracer.HasActiveProbes() &&
		a.tracer.MatchProbe(r.Src, r.SrcPort, r.Start.UnixNano()) != 0 {
		sketchable = false // a sampled trace needs its record on the wire
	}
	a.mu.Lock()
	if sketchable {
		a.sketch.Observe(&r)
	} else {
		if len(a.buffer) >= a.cfg.MaxBufferedRecords {
			// Drop oldest: bounded memory beats complete data (§3.4.2).
			copy(a.buffer, a.buffer[1:])
			a.buffer = a.buffer[:len(a.buffer)-1]
			a.dropped++
			a.cDropped.Inc()
		}
		a.buffer = append(a.buffer, r)
	}
	n := len(a.buffer)
	a.mu.Unlock()

	if a.cfg.LocalLog != nil {
		a.cfg.LocalLog.Write(&r)
	}

	a.cProbesTotal.Inc()
	if !r.Success() {
		a.cProbesFailed.Inc()
		return
	}
	a.cProbesOK.Inc()
	if cls := int(r.Class); cls >= 0 && cls < len(a.hRTT) {
		a.hRTT[cls].Observe(r.RTT)
		if r.PayloadRTT > 0 {
			a.hPayloadRTT[cls].Observe(r.PayloadRTT)
		}
	}
	// Count the SYN-retransmit latency signatures the drop-rate heuristic
	// uses (§4.2): ~3s means one drop, ~9s means correlated drops.
	switch {
	case r.RTT >= 2500*time.Millisecond && r.RTT < 6*time.Second:
		a.cRTT3s.Inc()
	case r.RTT >= 6*time.Second && r.RTT < 15*time.Second:
		a.cRTT9s.Inc()
	}
	if n >= a.cfg.UploadThreshold && a.cfg.Uploader != nil {
		a.kickUpload()
	}
}

// DropRate computes the agent's local packet drop estimate from its
// counters, using the paper's heuristic.
func (a *Agent) DropRate() float64 {
	snap := a.reg.Snapshot()
	ok := snap.Counters["agent.probes_ok"]
	if ok == 0 {
		return 0
	}
	return float64(snap.Counters["agent.rtt_3s"]+snap.Counters["agent.rtt_9s"]) / float64(ok)
}

// sortPeersLocked re-sorts peers by next probe time. Called under mu.
func (a *Agent) sortPeersLocked() {
	sort.Slice(a.peers, func(i, j int) bool { return a.peers[i].next.Before(a.peers[j].next) })
}
