package agent

import (
	"net/netip"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
)

// SketchAccumulator aggregates successful, non-anomalous probe outcomes
// into per-peer latency sketches (probe.PeerSketch), the agent half of the
// sketch-upload pipeline. One sketch summarizes every probe to one
// (dst, dstPort, class, proto, qos, payloadLen) peer within one window.
//
// Windows are cut on the UTC-epoch-aligned grid (window index =
// floor(UnixNano / window)), the same grid the 10-minute analysis jobs
// use: a sketch therefore never straddles an analysis window boundary,
// which is what lets the ingest side attribute a whole sketch to the
// window containing its MinStart.
//
// A SketchAccumulator is not safe for concurrent use; the Agent guards it
// with its buffer mutex. Histograms are recycled through a freelist
// (Release) so steady-state accumulation stops allocating once the peer
// set has been seen.
type SketchAccumulator struct {
	src    netip.Addr
	window time.Duration
	m      map[sketchKey]*probe.PeerSketch
	free   []*metrics.Histogram
}

// sketchKey is the aggregation identity: the fields every record in the
// sketch must share, plus the window index so records landing after a
// window closes (but before it is cut) open a fresh sketch.
type sketchKey struct {
	dst        netip.Addr
	dstPort    uint16
	class      probe.Class
	proto      probe.Proto
	qos        probe.QoS
	payloadLen int
	win        int64
}

// NewSketchAccumulator returns an empty accumulator for probes originating
// from src, cutting sketches on the epoch-aligned window grid.
func NewSketchAccumulator(src netip.Addr, window time.Duration) *SketchAccumulator {
	return &SketchAccumulator{
		src:    src,
		window: window,
		m:      make(map[sketchKey]*probe.PeerSketch),
	}
}

// WindowIndex returns the epoch-grid window index of t.
func (s *SketchAccumulator) WindowIndex(t time.Time) int64 {
	ns := t.UnixNano()
	w := int64(s.window)
	idx := ns / w
	if ns < 0 && ns%w != 0 {
		idx--
	}
	return idx
}

// Observe folds one successful record into its peer sketch. The caller is
// responsible for the anomaly policy: failures, drop-signature RTTs,
// over-threshold RTTs and traced probes must ship raw instead.
func (s *SketchAccumulator) Observe(r *probe.Record) {
	k := sketchKey{
		dst:        r.Dst,
		dstPort:    r.DstPort,
		class:      r.Class,
		proto:      r.Proto,
		qos:        r.QoS,
		payloadLen: r.PayloadLen,
		win:        s.WindowIndex(r.Start),
	}
	sk := s.m[k]
	if sk == nil {
		sk = &probe.PeerSketch{
			Src:        s.src,
			Dst:        r.Dst,
			DstPort:    r.DstPort,
			Class:      r.Class,
			Proto:      r.Proto,
			QoS:        r.QoS,
			PayloadLen: r.PayloadLen,
			MinStart:   r.Start,
			MaxStart:   r.Start,
			RTT:        s.newHist(),
		}
		s.m[k] = sk
	}
	sk.RTT.Observe(r.RTT)
	if r.PayloadRTT > 0 {
		if sk.Payload == nil {
			sk.Payload = s.newHist()
		}
		sk.Payload.Observe(r.PayloadRTT)
	}
	if r.Start.Before(sk.MinStart) {
		sk.MinStart = r.Start
	}
	if r.Start.After(sk.MaxStart) {
		sk.MaxStart = r.Start
	}
}

// CutBefore removes every sketch whose window index is below win and
// appends them to dst (reusable across flushes). The agent cuts completed
// windows each flush: open windows keep accumulating until the grid
// advances past them, so each (peer, window) uploads exactly one sketch.
func (s *SketchAccumulator) CutBefore(win int64, dst []probe.PeerSketch) []probe.PeerSketch {
	for k, sk := range s.m {
		if k.win < win {
			dst = append(dst, *sk)
			delete(s.m, k)
		}
	}
	return dst
}

// Release returns the histograms of cut sketches to the freelist after
// their batch has been encoded (or discarded), and zeroes the entries so
// the backing slice can be reused without retaining Addr/time values.
func (s *SketchAccumulator) Release(sks []probe.PeerSketch) {
	for i := range sks {
		if h := sks[i].RTT; h != nil {
			h.Reset()
			s.free = append(s.free, h)
		}
		if h := sks[i].Payload; h != nil {
			h.Reset()
			s.free = append(s.free, h)
		}
		sks[i] = probe.PeerSketch{}
	}
}

// Len returns the number of open (peer, window) sketches.
func (s *SketchAccumulator) Len() int { return len(s.m) }

func (s *SketchAccumulator) newHist() *metrics.Histogram {
	if n := len(s.free); n > 0 {
		h := s.free[n-1]
		s.free = s.free[:n-1]
		return h
	}
	return metrics.NewLatencyHistogram()
}
