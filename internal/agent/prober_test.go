package agent

import (
	"context"
	"net/http/httptest"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"

	"pingmesh/internal/netlib"
	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
)

func TestRealProberTCP(t *testing.T) {
	srv, err := netlib.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewRealProber(5 * time.Second)
	out, err := p.Probe(context.Background(), Target{
		Addr:       netip.MustParseAddr("127.0.0.1"),
		Port:       srv.Port(),
		Proto:      probe.TCP,
		PayloadLen: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.ConnectRTT <= 0 || out.PayloadRTT <= 0 || out.SrcPort == 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestRealProberHTTP(t *testing.T) {
	srv := httptest.NewServer(netlib.HTTPHandler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()
	host, portStr, _ := strings.Cut(addr, ":")
	port, _ := strconv.Atoi(portStr)
	p := NewRealProber(5 * time.Second)
	out, err := p.Probe(context.Background(), Target{
		Addr:       netip.MustParseAddr(host),
		Port:       uint16(port),
		Proto:      probe.HTTP,
		PayloadLen: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.ConnectRTT <= 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestRealProberRejectsOversizedPayload(t *testing.T) {
	p := NewRealProber(time.Second)
	_, err := p.Probe(context.Background(), Target{
		Addr:       netip.MustParseAddr("127.0.0.1"),
		Port:       9,
		PayloadLen: MaxPayload + 1,
	})
	if err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func simProberRig(t *testing.T) (*SimProber, *topology.Topology) {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 1, PodsPerPodset: 2, ServersPerPod: 2, LeavesPerPodset: 2, Spines: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC2Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	return &SimProber{Net: net, Src: 0, Clock: clock, Seed: 9}, top
}

func TestSimProberProbesPeers(t *testing.T) {
	p, top := simProberRig(t)
	out1, err := p.Probe(context.Background(), Target{Addr: top.Server(1).Addr, Port: 8765, Proto: probe.TCP})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := p.Probe(context.Background(), Target{Addr: top.Server(1).Addr, Port: 8765, Proto: probe.TCP})
	if err != nil {
		t.Fatal(err)
	}
	if out1.SrcPort == out2.SrcPort {
		t.Fatal("sim prober reused a source port")
	}
	if out1.ConnectRTT <= 0 {
		t.Fatalf("rtt = %v", out1.ConnectRTT)
	}
}

func TestSimProberHTTPAlwaysCarriesPayload(t *testing.T) {
	p, top := simProberRig(t)
	out, err := p.Probe(context.Background(), Target{Addr: top.Server(1).Addr, Port: 8080, Proto: probe.HTTP})
	if err != nil {
		t.Fatal(err)
	}
	if out.PayloadRTT == 0 {
		t.Fatal("HTTP probe returned no request/response timing")
	}
}

func TestSimProberUnknownHost(t *testing.T) {
	p, _ := simProberRig(t)
	_, err := p.Probe(context.Background(), Target{Addr: netip.MustParseAddr("192.0.2.99"), Port: 8765})
	if err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestSimProberCancelledContext(t *testing.T) {
	p, top := simProberRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Probe(ctx, Target{Addr: top.Server(1).Addr, Port: 8765}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestTruncateErr(t *testing.T) {
	long := strings.Repeat("x", 500)
	if got := truncateErr(errString(long)); len(got) != 120 {
		t.Fatalf("truncateErr len = %d", len(got))
	}
	if got := truncateErr(errString("short")); got != "short" {
		t.Fatalf("truncateErr = %q", got)
	}
}

type errString string

func (e errString) Error() string { return string(e) }
