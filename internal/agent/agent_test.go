package agent

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pingmesh/internal/controller"
	"pingmesh/internal/pinglist"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
)

var (
	agentAddr = netip.MustParseAddr("10.0.0.1")
	peerAddr  = netip.MustParseAddr("10.0.0.2")
	epoch     = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
)

// fakeFetcher serves a fixed sequence of (file, error) responses, sticking
// on the last one.
type fakeFetcher struct {
	mu      sync.Mutex
	results []fetchResult
	calls   int
}

type fetchResult struct {
	f   *pinglist.File
	err error
}

func (ff *fakeFetcher) Fetch(ctx context.Context, server string) (*pinglist.File, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.calls++
	i := ff.calls - 1
	if i >= len(ff.results) {
		i = len(ff.results) - 1
	}
	r := ff.results[i]
	return r.f, r.err
}

// fakeProber returns a configurable outcome.
type fakeProber struct {
	mu     sync.Mutex
	rtt    time.Duration
	err    error
	probes int
}

func (fp *fakeProber) Probe(ctx context.Context, t Target) (Outcome, error) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.probes++
	if fp.err != nil {
		return Outcome{}, fp.err
	}
	return Outcome{ConnectRTT: fp.rtt, SrcPort: 40000}, nil
}

func (fp *fakeProber) count() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.probes
}

// fakeUploader captures batches, optionally failing the first n attempts.
type fakeUploader struct {
	mu       sync.Mutex
	failures int
	batches  [][]byte
}

func (fu *fakeUploader) Upload(ctx context.Context, batch []byte) error {
	fu.mu.Lock()
	defer fu.mu.Unlock()
	if fu.failures > 0 {
		fu.failures--
		return errors.New("cosmos unavailable")
	}
	fu.batches = append(fu.batches, append([]byte(nil), batch...))
	return nil
}

func (fu *fakeUploader) batchCount() int {
	fu.mu.Lock()
	defer fu.mu.Unlock()
	return len(fu.batches)
}

func testFile(version string, peers int) *pinglist.File {
	f := &pinglist.File{Server: "srv1", Version: version, Generated: epoch}
	for i := 0; i < peers; i++ {
		f.Peers = append(f.Peers, pinglist.Peer{
			Addr:        fmt.Sprintf("10.0.0.%d", i+2),
			Port:        8765,
			Class:       "intra-pod",
			Proto:       "tcp",
			QoS:         "high",
			IntervalSec: 10,
		})
	}
	return f
}

func testConfig(ff Fetcher, fp Prober, clock simclock.Clock) Config {
	return Config{
		ServerName: "srv1",
		SourceAddr: agentAddr,
		Controller: ff,
		Prober:     fp,
		Clock:      clock,
	}
}

func waitUntil(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting: " + msg)
}

func TestNewValidation(t *testing.T) {
	valid := testConfig(&fakeFetcher{}, &fakeProber{}, nil)
	if _, err := New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.ServerName = "" },
		func(c *Config) { c.SourceAddr = netip.Addr{} },
		func(c *Config) { c.Controller = nil },
		func(c *Config) { c.Prober = nil },
	}
	for i, mut := range cases {
		c := testConfig(&fakeFetcher{}, &fakeProber{}, nil)
		mut(&c)
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestApplyPinglistClampsSafetyLimits(t *testing.T) {
	a, err := New(testConfig(&fakeFetcher{}, &fakeProber{}, simclock.NewSim(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	f := testFile("v1", 1)
	f.Peers[0].IntervalSec = 1              // below the hard floor
	f.Peers[0].PayloadLen = 10 * MaxPayload // above the hard cap
	if err := a.applyPinglist(f); err != nil {
		t.Fatal(err)
	}
	if a.peers[0].every != MinProbeInterval {
		t.Fatalf("interval = %v, want clamped to %v", a.peers[0].every, MinProbeInterval)
	}
	if a.peers[0].target.PayloadLen != MaxPayload {
		t.Fatalf("payload = %d, want clamped to %d", a.peers[0].target.PayloadLen, MaxPayload)
	}
}

func TestApplyPinglistRejectsInvalid(t *testing.T) {
	a, _ := New(testConfig(&fakeFetcher{}, &fakeProber{}, simclock.NewSim(epoch)))
	f := testFile("v1", 1)
	f.Peers[0].Addr = "bogus"
	if err := a.applyPinglist(f); err == nil {
		t.Fatal("invalid pinglist applied")
	}
}

func TestRunFetchesAndProbes(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 3)}}}
	fp := &fakeProber{rtt: 300 * time.Microsecond}
	a, _ := New(testConfig(ff, fp, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	waitUntil(t, func() bool { return a.PeerCount() == 3 }, "pinglist applied")
	if a.Version() != "v1" {
		t.Fatalf("Version = %q", a.Version())
	}
	// Advance through a probe interval: all three peers probe.
	for i := 0; i < 20; i++ {
		clock.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	waitUntil(t, func() bool { return fp.count() >= 3 }, "probes executed")
	waitUntil(t, func() bool { return len(a.BufferedRecords()) >= 3 }, "records buffered")
	recs := a.BufferedRecords()
	r := recs[0]
	if r.Src != agentAddr || r.RTT != 300*time.Microsecond || !r.Success() {
		t.Fatalf("unexpected record: %+v", r)
	}
	snap := a.Metrics().Snapshot()
	if snap.Counters["agent.probes_total"] < 3 {
		t.Fatalf("probes_total = %d", snap.Counters["agent.probes_total"])
	}
	if snap.Gauges["agent.peers"] != 3 {
		t.Fatalf("peers gauge = %d", snap.Gauges["agent.peers"])
	}
}

func TestProbesRepeatAtInterval(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	fp := &fakeProber{rtt: time.Millisecond}
	a, _ := New(testConfig(ff, fp, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "applied")
	for i := 0; i < 40; i++ {
		clock.Advance(2500 * time.Millisecond) // 100s total
		time.Sleep(2 * time.Millisecond)
	}
	// 100s at a 10s interval: expect ~10 probes, certainly >= 5.
	waitUntil(t, func() bool { return fp.count() >= 5 }, "repeated probes")
}

func TestFailClosedAfterFetchFailures(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{
		{f: testFile("v1", 2)},
		{err: errors.New("dial tcp: connection refused")},
	}}
	fp := &fakeProber{rtt: time.Millisecond}
	a, _ := New(testConfig(ff, fp, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 2 }, "applied")

	// Three failed fetch cycles -> fail closed.
	for i := 0; i < 3; i++ {
		clock.Advance(5 * time.Minute)
		time.Sleep(5 * time.Millisecond)
	}
	waitUntil(t, func() bool { return a.FailedClosed() }, "failed closed")
	if a.PeerCount() != 0 {
		t.Fatalf("PeerCount = %d after fail-closed", a.PeerCount())
	}
}

func TestFailClosedOnNoPinglistAndRecovers(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{
		{f: testFile("v1", 2)},
		{err: &controller.ErrNoPinglist{Server: "srv1"}},
		{f: testFile("v2", 2)},
	}}
	fp := &fakeProber{rtt: time.Millisecond}
	a, _ := New(testConfig(ff, fp, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 2 }, "applied v1")

	// One no-pinglist response fails closed immediately (no 3-strike).
	clock.Advance(5 * time.Minute)
	waitUntil(t, func() bool { return a.FailedClosed() }, "failed closed on no pinglist")

	// Next successful fetch restores probing.
	clock.Advance(5 * time.Minute)
	waitUntil(t, func() bool { return !a.FailedClosed() && a.PeerCount() == 2 }, "recovered")
	if a.Version() != "v2" {
		t.Fatalf("Version = %q after recovery", a.Version())
	}
}

func TestUploadBatches(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 2)}}}
	fp := &fakeProber{rtt: 500 * time.Microsecond}
	fu := &fakeUploader{}
	cfg := testConfig(ff, fp, clock)
	cfg.Uploader = fu
	a, _ := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 2 }, "applied")
	for i := 0; i < 15; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	waitUntil(t, func() bool { return fu.batchCount() > 0 }, "upload happened")

	fu.mu.Lock()
	batch := fu.batches[0]
	fu.mu.Unlock()
	recs, errs := probe.DecodeBatch(batch)
	if len(errs) > 0 || len(recs) == 0 {
		t.Fatalf("uploaded batch undecodable: %d recs, errs %v", len(recs), errs)
	}
}

func TestUploadRetryThenDiscard(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	fp := &fakeProber{rtt: time.Millisecond}
	fu := &fakeUploader{failures: 1 << 30} // always fail
	cfg := testConfig(ff, fp, clock)
	cfg.Uploader = fu
	cfg.UploadRetries = 2
	cfg.MaxBufferedRecords = 100
	a, _ := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "applied")
	for i := 0; i < 30; i++ {
		clock.Advance(15 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	waitUntil(t, func() bool {
		return a.Metrics().Snapshot().Counters["agent.uploads_discarded"] > 0
	}, "batch discarded after retries")
	// The buffer must not grow without bound.
	if n := len(a.BufferedRecords()); n > cfg.MaxBufferedRecords {
		t.Fatalf("buffer grew to %d", n)
	}
}

func TestMemoryBoundDropsOldest(t *testing.T) {
	clock := simclock.NewSim(epoch)
	a, _ := New(Config{
		ServerName:         "srv1",
		SourceAddr:         agentAddr,
		Controller:         &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}},
		Prober:             &fakeProber{},
		Clock:              clock,
		MaxBufferedRecords: 10,
	})
	for i := 0; i < 25; i++ {
		a.record(probe.Record{Start: epoch.Add(time.Duration(i) * time.Second), Src: agentAddr, Dst: peerAddr, RTT: time.Millisecond})
	}
	recs := a.BufferedRecords()
	if len(recs) != 10 {
		t.Fatalf("buffer = %d records, want 10", len(recs))
	}
	// Oldest dropped: first record should be from i=15.
	if recs[0].Start != epoch.Add(15*time.Second) {
		t.Fatalf("oldest record = %v", recs[0].Start)
	}
	if a.Metrics().Snapshot().Counters["agent.records_dropped"] != 15 {
		t.Fatal("records_dropped counter wrong")
	}
}

func TestDropRateHeuristicCounters(t *testing.T) {
	a, _ := New(testConfig(&fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}, &fakeProber{}, simclock.NewSim(epoch)))
	mk := func(rtt time.Duration) probe.Record {
		return probe.Record{Start: epoch, Src: agentAddr, Dst: peerAddr, RTT: rtt}
	}
	for i := 0; i < 97; i++ {
		a.record(mk(300 * time.Microsecond))
	}
	a.record(mk(3*time.Second + 400*time.Microsecond))
	a.record(mk(9*time.Second + 400*time.Microsecond))
	failed := mk(0)
	failed.Err = "timeout"
	a.record(failed)

	snap := a.Metrics().Snapshot()
	if snap.Counters["agent.rtt_3s"] != 1 || snap.Counters["agent.rtt_9s"] != 1 {
		t.Fatalf("retransmit counters: 3s=%d 9s=%d", snap.Counters["agent.rtt_3s"], snap.Counters["agent.rtt_9s"])
	}
	if snap.Counters["agent.probes_failed"] != 1 {
		t.Fatalf("probes_failed = %d", snap.Counters["agent.probes_failed"])
	}
	// Heuristic: (3s + 9s count) / successful probes = 2/99.
	want := 2.0 / 99.0
	if got := a.DropRate(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("DropRate = %g, want %g", got, want)
	}
}

func TestFailedProbeRecorded(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	fp := &fakeProber{err: errors.New("timeout")}
	a, _ := New(testConfig(ff, fp, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "applied")
	for i := 0; i < 20; i++ {
		clock.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	waitUntil(t, func() bool { return len(a.BufferedRecords()) >= 1 }, "failure recorded")
	r := a.BufferedRecords()[0]
	if r.Success() || r.Err != "timeout" {
		t.Fatalf("record = %+v", r)
	}
}

func TestUnchangedVersionNotReapplied(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 2)}}}
	a, _ := New(testConfig(ff, &fakeProber{}, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 2 }, "applied")
	// Capture next-probe state, fetch again with same version, ensure the
	// schedule was not reset (peer count stays, no churn).
	clock.Advance(5 * time.Minute)
	time.Sleep(10 * time.Millisecond)
	if a.PeerCount() != 2 || a.Version() != "v1" {
		t.Fatal("agent state churned on unchanged pinglist")
	}
}

func TestLocalLogWritesAndRotates(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/pingmesh.log"
	l, err := NewLocalLog(path, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r := probe.Record{Start: epoch, Src: agentAddr, Dst: peerAddr, RTT: time.Millisecond}
	for i := 0; i < 50; i++ {
		l.Write(&r)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 400 {
		t.Fatalf("active log %d bytes exceeds cap", st.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated file missing: %v", err)
	}
	data, _ := os.ReadFile(path + ".1")
	if !strings.HasPrefix(string(data), probe.CSVHeader) {
		t.Fatal("rotated log missing CSV header")
	}
}

func TestAgentWithLocalLog(t *testing.T) {
	clock := simclock.NewSim(epoch)
	dir := t.TempDir()
	l, err := NewLocalLog(dir+"/agent.log", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	cfg := testConfig(ff, &fakeProber{rtt: time.Millisecond}, clock)
	cfg.LocalLog = l
	a, _ := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "applied")
	for i := 0; i < 20; i++ {
		clock.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	waitUntil(t, func() bool {
		data, _ := os.ReadFile(dir + "/agent.log")
		return strings.Count(string(data), "\n") >= 2 // header + >=1 record
	}, "record in local log")
}

func TestFailClosedStopsProbing(t *testing.T) {
	// §3.4.2: a failed-closed agent removes all peers and stops probing
	// entirely (it keeps answering probes from others, which is the probe
	// server's job, not the scheduler's).
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{
		{f: testFile("v1", 2)},
		{err: &controller.ErrNoPinglist{Server: "srv1"}},
	}}
	fp := &fakeProber{rtt: time.Millisecond}
	a, _ := New(testConfig(ff, fp, clock))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 2 }, "applied")

	clock.Advance(5 * time.Minute) // next fetch: no pinglist -> fail closed
	waitUntil(t, func() bool { return a.FailedClosed() }, "failed closed")
	probesAtStop := fp.count()

	// Hours of simulated time later: not a single new probe.
	for i := 0; i < 20; i++ {
		clock.Advance(10 * time.Minute)
		time.Sleep(2 * time.Millisecond)
	}
	if got := fp.count(); got > probesAtStop {
		t.Fatalf("probing continued after fail-closed: %d -> %d", probesAtStop, got)
	}
}

func TestUploadThresholdTriggersEarlyShip(t *testing.T) {
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	fp := &fakeProber{rtt: time.Millisecond}
	fu := &fakeUploader{}
	cfg := testConfig(ff, fp, clock)
	cfg.Uploader = fu
	cfg.UploadThreshold = 3
	cfg.UploadInterval = 24 * time.Hour // only the threshold can trigger
	a, _ := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "applied")
	for i := 0; i < 60; i++ {
		clock.Advance(10 * time.Second)
		time.Sleep(2 * time.Millisecond)
		if fu.batchCount() > 0 {
			break
		}
	}
	waitUntil(t, func() bool { return fu.batchCount() > 0 }, "threshold-triggered upload")
}

func TestRunFinalFlushOnShutdown(t *testing.T) {
	// Run's exit path flushes buffered records so a clean shutdown does
	// not lose the last batch.
	clock := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	fp := &fakeProber{rtt: time.Millisecond}
	fu := &fakeUploader{}
	cfg := testConfig(ff, fp, clock)
	cfg.Uploader = fu
	cfg.UploadInterval = 24 * time.Hour // periodic path never fires
	a, _ := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.Run(ctx)
		close(done)
	}()
	waitUntil(t, func() bool { return a.PeerCount() == 1 }, "applied")
	for i := 0; i < 20; i++ {
		clock.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	waitUntil(t, func() bool { return len(a.BufferedRecords()) >= 1 }, "buffered")
	cancel()
	<-done
	if fu.batchCount() == 0 {
		t.Fatal("shutdown lost the buffered records")
	}
}

func BenchmarkAgentRecordHotPath(b *testing.B) {
	a, err := New(Config{
		ServerName: "srv1",
		SourceAddr: agentAddr,
		Controller: &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}},
		Prober:     &fakeProber{},
		Clock:      simclock.NewSim(epoch),
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := probe.Record{Start: epoch, Src: agentAddr, Dst: peerAddr, RTT: 300 * time.Microsecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.record(rec)
	}
}
