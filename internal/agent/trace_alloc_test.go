package agent

import (
	"context"
	"testing"
	"time"

	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/trace"
)

// TestProbeTraceDisabledZeroAlloc guards the tentpole's overhead claim on
// the probe side: with a tracer attached but sampling off, the whole
// probe path (sampling decision, probe execution, record buffering,
// counters and histograms) must not allocate — the tracing layer costs
// exactly one atomic load per probe (CI tier 3).
func TestProbeTraceDisabledZeroAlloc(t *testing.T) {
	clock := simclock.NewSim(epoch)
	cfg := testConfig(&fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}},
		&fakeProber{rtt: 300 * time.Microsecond}, clock)
	cfg.Tracer = trace.New(clock) // attached; SampleEvery stays 0 (off)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{Addr: peerAddr, Port: 8765, Class: probe.IntraPod, Proto: probe.TCP, QoS: probe.QoSHigh}
	ctx := context.Background()

	// Warm: buffer capacity, histogram buckets.
	for i := 0; i < 64; i++ {
		a.probeOne(ctx, tgt)
	}
	avg := testing.AllocsPerRun(100, func() {
		a.mu.Lock()
		a.buffer = a.buffer[:0] // keep capacity; the append must not grow
		a.mu.Unlock()
		a.probeOne(ctx, tgt)
	})
	if avg != 0 {
		t.Fatalf("probe path with disabled tracer allocates %.2f allocs/op, want 0", avg)
	}
}
