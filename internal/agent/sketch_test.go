package agent

import (
	"context"
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
)

func sketchConfig(clock simclock.Clock, fu Uploader) Config {
	cfg := testConfig(&fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}, &fakeProber{}, clock)
	cfg.Uploader = fu
	cfg.SketchUpload = true
	return cfg
}

// scanUpload decodes one uploaded batch into raw records and sketches.
func scanUpload(t *testing.T, data []byte) ([]probe.Record, []probe.Sketch) {
	t.Helper()
	var sc probe.Scanner
	sc.Reset(data)
	var recs []probe.Record
	var sks []probe.Sketch
	for {
		kind := sc.ScanEntry()
		if kind == probe.EntryEOF {
			break
		}
		if err := sc.RowErr(); err != nil {
			t.Fatalf("row error in uploaded batch: %v", err)
		}
		switch kind {
		case probe.EntryRecord:
			r := *sc.Record()
			r.Err = string(append([]byte(nil), r.Err...)) // un-alias interned string
			recs = append(recs, r)
		case probe.EntrySketch:
			sk := *sc.Sketch()
			sks = append(sks, sk)
			// The sketch aliases the scan buffer, but data outlives the scan
			// here, so keeping it is fine.
		}
	}
	return recs, sks
}

// TestSketchModeFlushMatchesExact: a sketch-mode agent's upload, folded back
// into LatencyStats, must equal Add-ing every probe result raw — and the
// anomalies (failures, drop signatures, over-threshold RTTs) must ship as
// raw records so they keep per-record identity.
func TestSketchModeFlushMatchesExact(t *testing.T) {
	clock := simclock.NewSim(epoch)
	fu := &fakeUploader{}
	a, err := New(sketchConfig(clock, fu))
	if err != nil {
		t.Fatal(err)
	}

	exact := analysis.NewLatencyStats()
	var wantRaw int
	add := func(r probe.Record) {
		exact.Add(&r)
		if r.Err != "" || analysis.DropSignature(r.RTT) != 0 || (r.Success() && r.RTT >= a.cfg.RawThreshold) {
			wantRaw++
		}
		a.record(r)
	}
	for i := 0; i < 200; i++ {
		add(probe.Record{Start: epoch.Add(time.Duration(i) * time.Second), Src: agentAddr, Dst: peerAddr,
			RTT: time.Duration(200+i) * time.Microsecond})
	}
	add(probe.Record{Start: epoch, Src: agentAddr, Dst: peerAddr, RTT: 21 * time.Second, Err: "connect timeout"})
	add(probe.Record{Start: epoch, Src: agentAddr, Dst: peerAddr, RTT: 3 * time.Second})         // drop signature
	add(probe.Record{Start: epoch, Src: agentAddr, Dst: peerAddr, RTT: 1500 * time.Millisecond}) // >= RawThreshold

	if n := len(a.BufferedRecords()); n != wantRaw {
		t.Fatalf("raw buffer has %d records, want only the %d anomalies", n, wantRaw)
	}

	a.flush(context.Background(), true)
	if fu.batchCount() != 1 {
		t.Fatalf("batchCount = %d", fu.batchCount())
	}
	recs, sks := scanUpload(t, fu.batches[0])
	if len(recs) != wantRaw {
		t.Fatalf("uploaded %d raw records, want %d", len(recs), wantRaw)
	}
	if len(sks) == 0 {
		t.Fatal("no sketches uploaded")
	}
	got := analysis.NewLatencyStats()
	for i := range recs {
		got.Add(&recs[i])
	}
	for i := range sks {
		got.AddSketch(&sks[i])
	}
	if got.Total() != exact.Total() || got.Failed() != exact.Failed() {
		t.Fatalf("counts diverged: got %d/%d want %d/%d", got.Total(), got.Failed(), exact.Total(), exact.Failed())
	}
	if got.Summary() != exact.Summary() {
		t.Fatalf("summary diverged:\ngot  %v\nwant %v", got.Summary(), exact.Summary())
	}
	if got.DropRate() != exact.DropRate() {
		t.Fatalf("drop rate diverged: %v vs %v", got.DropRate(), exact.DropRate())
	}

	snap := a.Metrics().Snapshot()
	if snap.Counters["agent.upload_raw_records"] != int64(wantRaw) {
		t.Fatalf("upload_raw_records = %d, want %d", snap.Counters["agent.upload_raw_records"], wantRaw)
	}
	if snap.Counters["agent.upload_sketches"] != int64(len(sks)) {
		t.Fatalf("upload_sketches = %d, want %d", snap.Counters["agent.upload_sketches"], len(sks))
	}
	if uint64(snap.Counters["agent.uploaded_records"]) != exact.Total() {
		t.Fatalf("uploaded_records = %d, want %d (raw + summarized)", snap.Counters["agent.uploaded_records"], exact.Total())
	}
}

// TestSketchWindowCutsOnGrid: a periodic flush ships only windows the grid
// has moved past; the open window keeps accumulating. Each (peer, window)
// therefore uploads exactly one sketch.
func TestSketchWindowCutsOnGrid(t *testing.T) {
	clock := simclock.NewSim(epoch)
	fu := &fakeUploader{}
	a, err := New(sketchConfig(clock, fu))
	if err != nil {
		t.Fatal(err)
	}
	a.record(probe.Record{Start: clock.Now(), Src: agentAddr, Dst: peerAddr, RTT: time.Millisecond})

	// Mid-window flush: nothing to ship — the only sketch window is open.
	clock.Advance(5 * time.Minute)
	a.flush(context.Background(), false)
	if fu.batchCount() != 0 {
		t.Fatalf("mid-window flush shipped %d batches, want 0", fu.batchCount())
	}
	if a.sketch.Len() != 1 {
		t.Fatalf("accumulator holds %d sketches, want 1", a.sketch.Len())
	}

	// Cross the 10-minute grid boundary: the window is complete, ship it.
	clock.Advance(6 * time.Minute)
	a.record(probe.Record{Start: clock.Now(), Src: agentAddr, Dst: peerAddr, RTT: time.Millisecond})
	a.flush(context.Background(), false)
	if fu.batchCount() != 1 {
		t.Fatalf("post-window flush shipped %d batches, want 1", fu.batchCount())
	}
	recs, sks := scanUpload(t, fu.batches[0])
	if len(recs) != 0 || len(sks) != 1 {
		t.Fatalf("got %d records + %d sketches, want 0 + 1", len(recs), len(sks))
	}
	if sks[0].Records() != 1 {
		t.Fatalf("sketch summarizes %d probes, want 1", sks[0].Records())
	}
	// The second probe's window is still open.
	if a.sketch.Len() != 1 {
		t.Fatalf("accumulator holds %d sketches after cut, want 1", a.sketch.Len())
	}
}

// TestSketchModeOffIsByteIdenticalCSV: with SketchUpload unset the upload
// path is the pre-sketch raw CSV encoder, byte for byte.
func TestSketchModeOffIsByteIdenticalCSV(t *testing.T) {
	clock := simclock.NewSim(epoch)
	fu := &fakeUploader{}
	cfg := testConfig(&fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}, &fakeProber{}, clock)
	cfg.Uploader = fu
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []probe.Record
	for i := 0; i < 10; i++ {
		r := probe.Record{Start: epoch.Add(time.Duration(i) * time.Second), Src: agentAddr, Dst: peerAddr,
			RTT: time.Duration(300+i) * time.Microsecond}
		recs = append(recs, r)
		a.record(r)
	}
	a.flush(context.Background(), true)
	if fu.batchCount() != 1 {
		t.Fatalf("batchCount = %d", fu.batchCount())
	}
	want := probe.AppendBatch(nil, recs)
	if string(fu.batches[0]) != string(want) {
		t.Fatal("raw-CSV fallback not byte-identical to AppendBatch")
	}
}

// TestGzipUploadThroughCosmos: a gzip-enabled sketch agent uploading through
// the cosmos client stores inflated, scannable bytes — the wire is
// compressed, the extents are not.
func TestGzipUploadThroughCosmos(t *testing.T) {
	clock := simclock.NewSim(epoch)
	store, err := cosmos.NewStore(1, cosmos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl := &cosmos.Client{Store: store, Clock: clock, Stream: func(time.Time) string { return "pingmesh/gz" }}
	cfg := sketchConfig(clock, cl)
	cfg.GzipUploads = true
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a.record(probe.Record{Start: epoch.Add(time.Duration(i) * time.Second), Src: agentAddr, Dst: peerAddr,
			RTT: time.Duration(200+i) * time.Microsecond})
	}
	for i := 0; i < 50; i++ {
		a.record(probe.Record{Start: epoch.Add(time.Duration(i) * time.Second), Src: agentAddr, Dst: peerAddr,
			RTT: 21 * time.Second, Err: "connect: connection timed out"})
	}
	a.flush(context.Background(), true)

	stored, err := store.Read("pingmesh/gz")
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) == 0 {
		t.Fatal("nothing stored")
	}
	if stored[0] == 0x1f {
		t.Fatal("store holds gzip bytes; client must inflate before Append")
	}
	recs, sks := scanUpload(t, stored)
	if len(recs) != 50 || len(sks) != 1 {
		t.Fatalf("stored batch decodes to %d records + %d sketches, want 50 + 1", len(recs), len(sks))
	}
	if got := sks[0].Records(); got != 100 {
		t.Fatalf("sketch summarizes %d probes, want 100", got)
	}
	// The wire was actually compressed: upload_bytes counts post-gzip bytes,
	// which must be smaller than the stored (inflated) batch.
	wire := a.Metrics().Snapshot().Counters["agent.upload_bytes"]
	if wire <= 0 || wire >= int64(len(stored)) {
		t.Fatalf("upload_bytes = %d, want in (0, %d)", wire, len(stored))
	}
}

// TestSketchFlushSteadyStateZeroAlloc: after warmup, a sketch-mode flush
// reuses its pooled encode buffer and sketch scratch — the encode itself
// must not allocate. (The upload side and map churn are exercised
// elsewhere; this pins the pooled-buffer contract for the binary path.)
func TestSketchFlushSteadyStateZeroAlloc(t *testing.T) {
	clock := simclock.NewSim(epoch)
	fu := &fakeUploader{}
	a, err := New(sketchConfig(clock, fu))
	if err != nil {
		t.Fatal(err)
	}
	fill := func() {
		base := clock.Now()
		for i := 0; i < 64; i++ {
			a.record(probe.Record{Start: base, Src: agentAddr, Dst: peerAddr,
				RTT: time.Duration(200+i) * time.Microsecond})
		}
	}
	// Warm: freelist histograms, pendingSketches scratch, encode buffer,
	// and the fakeUploader's batches slice.
	for i := 0; i < 3; i++ {
		fill()
		clock.Advance(10 * time.Minute)
		a.flush(context.Background(), false)
	}
	fu.mu.Lock()
	fu.batches = fu.batches[:0]
	fu.mu.Unlock()
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		clock.Advance(10 * time.Minute)
		a.flush(context.Background(), false)
		fu.mu.Lock()
		fu.batches = fu.batches[:0]
		fu.mu.Unlock()
	})
	// The fakeUploader copies the batch (one alloc) and the sim clock's
	// timer path may allocate; everything under the agent's control must
	// not. Allow the copy, nothing more.
	if allocs > 2 {
		t.Fatalf("sketch flush allocated %.1f/op in steady state", allocs)
	}
}
