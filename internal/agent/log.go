package agent

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pingmesh/internal/probe"
)

// LocalLog writes probe records to size-capped CSV files on local disk
// (§3.4.2). When the active file exceeds MaxBytes it is rotated to a
// single ".1" file, so disk usage is bounded at ~2*MaxBytes.
type LocalLog struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
	buf      []byte // line encode buffer, reused under mu
}

// NewLocalLog opens (or creates) the log at path with the given size cap.
func NewLocalLog(path string, maxBytes int64) (*LocalLog, error) {
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("agent: local log dir: %w", err)
	}
	l := &LocalLog{path: path, maxBytes: maxBytes}
	if err := l.open(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *LocalLog) open() error {
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("agent: open local log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("agent: stat local log: %w", err)
	}
	l.f = f
	l.size = st.Size()
	if l.size == 0 {
		n, err := f.WriteString(probe.CSVHeader + "\n")
		if err != nil {
			f.Close()
			return fmt.Errorf("agent: write log header: %w", err)
		}
		l.size += int64(n)
	}
	return nil
}

// Write appends one record, rotating if the cap is exceeded. Errors are
// swallowed after marking the log dead: local logging must never take the
// agent down.
func (l *LocalLog) Write(r *probe.Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return
	}
	l.buf = r.AppendCSV(l.buf[:0])
	l.buf = append(l.buf, '\n')
	line := l.buf
	if l.size+int64(len(line)) > l.maxBytes {
		if err := l.rotateLocked(); err != nil {
			l.f.Close()
			l.f = nil
			return
		}
	}
	n, err := l.f.Write(line)
	if err != nil {
		l.f.Close()
		l.f = nil
		return
	}
	l.size += int64(n)
}

func (l *LocalLog) rotateLocked() error {
	l.f.Close()
	l.f = nil
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		return err
	}
	return l.open()
}

// Close flushes and closes the log file.
func (l *LocalLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
