package agent

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pingmesh/internal/simclock"
)

// TestFetchWaitBounds pins the jittered poll schedule: every wait lies in
// [Interval*(1-j), Interval], jitter 0 is the exact cadence, and the
// per-server seed makes the schedule reproducible.
func TestFetchWaitBounds(t *testing.T) {
	cfg := testConfig(&fakeFetcher{}, &fakeProber{}, simclock.NewSim(epoch))
	cfg.FetchInterval = 10 * time.Second
	cfg.FetchJitter = 0.2
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo := time.Duration(float64(cfg.FetchInterval) * 0.8)
	rng := rand.New(rand.NewSource(seedFor(cfg.ServerName)))
	var draws []time.Duration
	for i := 0; i < 1000; i++ {
		d := a.fetchWait(rng)
		if d < lo || d > cfg.FetchInterval {
			t.Fatalf("draw %d: wait %v outside [%v, %v]", i, d, lo, cfg.FetchInterval)
		}
		draws = append(draws, d)
	}

	// Same seed, same schedule: the fleet decorrelates deterministically.
	rng2 := rand.New(rand.NewSource(seedFor(cfg.ServerName)))
	for i, want := range draws {
		if got := a.fetchWait(rng2); got != want {
			t.Fatalf("draw %d not reproducible: %v != %v", i, got, want)
		}
	}

	// Different servers get different schedules.
	if seedFor("srv1") == seedFor("srv2") {
		t.Fatal("seedFor collides for distinct servers")
	}

	// Jitter 0: exact cadence.
	cfg.FetchJitter = 0
	a0, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if d := a0.fetchWait(rng); d != cfg.FetchInterval {
			t.Fatalf("jitter 0 wait %v != %v", d, cfg.FetchInterval)
		}
	}
}

// TestFetchJitterClamped checks config normalization to [0, 1].
func TestFetchJitterClamped(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.3, 0.3}, {1, 1}, {7, 1},
	} {
		cfg := testConfig(&fakeFetcher{}, &fakeProber{}, nil)
		cfg.FetchJitter = tc.in
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.cfg.FetchJitter != tc.want {
			t.Fatalf("FetchJitter %v normalized to %v, want %v", tc.in, a.cfg.FetchJitter, tc.want)
		}
	}
}

// TestJitteredFetchLoopPolls runs the agent with jitter on a sim clock and
// checks fetches keep happening — each gap at most one full interval.
func TestJitteredFetchLoopPolls(t *testing.T) {
	sim := simclock.NewSim(epoch)
	ff := &fakeFetcher{results: []fetchResult{{f: testFile("v1", 1)}}}
	cfg := testConfig(ff, &fakeProber{}, sim)
	cfg.FetchInterval = 10 * time.Second
	cfg.FetchJitter = 0.5
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	fetchCount := func() int {
		ff.mu.Lock()
		defer ff.mu.Unlock()
		return ff.calls
	}
	waitUntil(t, func() bool { return fetchCount() >= 1 }, "initial fetch")
	// Walk sim time forward in small steps: since every jittered wait is at
	// most one interval, each interval of sim time must release at least
	// one more fetch.
	for want := 2; want <= 4; want++ {
		deadline := time.Now().Add(5 * time.Second)
		for fetchCount() < want {
			if time.Now().After(deadline) {
				t.Fatalf("no fetch %d within an interval of sim time", want)
			}
			sim.Advance(time.Second)
			time.Sleep(time.Millisecond)
		}
	}
}
