package agent

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
)

// SimProber probes a simulated network, letting the full agent stack run
// against netsim instead of real sockets. Each probe uses a fresh source
// port, like the real prober, so ECMP paths vary per probe.
type SimProber struct {
	// Net is the simulated fabric.
	Net *netsim.Network
	// Src is the simulated server this agent runs on.
	Src topology.ServerID
	// Clock stamps probe start times (drives time-varying load profiles).
	Clock simclock.Clock
	// Seed makes the prober deterministic; agents get distinct seeds.
	Seed uint64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
	port uint16
}

func (p *SimProber) init() {
	p.once.Do(func() {
		p.rng = rand.New(rand.NewPCG(p.Seed, p.Seed^0x9e3779b97f4a7c15))
		p.port = 32768
	})
}

// Probe implements Prober.
func (p *SimProber) Probe(ctx context.Context, t Target) (Outcome, error) {
	p.init()
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	dst, ok := p.Net.Topology().ServerByAddr(t.Addr)
	if !ok {
		return Outcome{}, fmt.Errorf("agent: no route to host %v", t.Addr)
	}
	p.mu.Lock()
	p.port++
	if p.port < 32768 {
		p.port = 32768
	}
	srcPort := p.port
	payload := t.PayloadLen
	if t.Proto == probe.HTTP && payload == 0 {
		payload = 128 // an HTTP probe always carries a request/response
	}
	res := p.Net.Probe(netsim.ProbeSpec{
		Src:        p.Src,
		Dst:        dst,
		SrcPort:    srcPort,
		DstPort:    t.Port,
		Proto:      t.Proto,
		QoS:        t.QoS,
		PayloadLen: payload,
		Start:      p.Clock.Now(),
	}, p.rng)
	p.mu.Unlock()
	if res.Err != "" {
		return Outcome{SrcPort: srcPort}, errors.New(res.Err)
	}
	return Outcome{ConnectRTT: res.RTT, PayloadRTT: res.PayloadRTT, SrcPort: srcPort}, nil
}
