package agent

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"pingmesh/internal/netlib"
	"pingmesh/internal/probe"
)

// RealProber probes over the actual network with the netlib probe
// protocol: TCP handshake timing plus optional payload echo, or HTTP GETs.
type RealProber struct {
	// Timeout bounds each probe phase. Default 25s (above the last SYN
	// retransmission, so inflated handshakes are measured, not aborted).
	Timeout time.Duration

	tcp  netlib.TCPProber
	http netlib.HTTPProber
}

// NewRealProber returns a prober for real networks.
func NewRealProber(timeout time.Duration) *RealProber {
	return &RealProber{
		Timeout: timeout,
		tcp:     netlib.TCPProber{Timeout: timeout},
		http:    netlib.HTTPProber{Timeout: timeout},
	}
}

// Probe implements Prober.
func (p *RealProber) Probe(ctx context.Context, t Target) (Outcome, error) {
	if t.PayloadLen > MaxPayload {
		return Outcome{}, fmt.Errorf("agent: payload %d exceeds hard cap", t.PayloadLen)
	}
	addr := net.JoinHostPort(t.Addr.String(), strconv.Itoa(int(t.Port)))
	var res netlib.Result
	var err error
	switch t.Proto {
	case probe.HTTP:
		res, err = p.http.Probe(ctx, addr, t.PayloadLen)
	default:
		res, err = p.tcp.Probe(ctx, addr, t.PayloadLen)
	}
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{ConnectRTT: res.ConnectRTT, PayloadRTT: res.PayloadRTT, SrcPort: res.SrcPort}, nil
}
