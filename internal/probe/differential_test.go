package probe

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// This file pins the streaming Scanner to the legacy (pre-streaming)
// decoder. legacyDecodeBatch/legacyParseCSV are verbatim copies of the
// string-splitting implementation the Scanner replaced; they are kept
// test-only as the differential oracle.

func legacyParseCSV(line string) (Record, error) {
	var r Record
	fields := strings.Split(line, ",")
	if len(fields) != 12 {
		return r, fmt.Errorf("probe: record has %d fields, want 12", len(fields))
	}
	startNS, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return r, fmt.Errorf("probe: bad start %q: %w", fields[0], err)
	}
	r.Start = time.Unix(0, startNS).UTC()
	if r.Src, err = netip.ParseAddr(fields[1]); err != nil {
		return r, fmt.Errorf("probe: bad src: %w", err)
	}
	sport, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return r, fmt.Errorf("probe: bad sport: %w", err)
	}
	r.SrcPort = uint16(sport)
	if r.Dst, err = netip.ParseAddr(fields[3]); err != nil {
		return r, fmt.Errorf("probe: bad dst: %w", err)
	}
	dport, err := strconv.ParseUint(fields[4], 10, 16)
	if err != nil {
		return r, fmt.Errorf("probe: bad dport: %w", err)
	}
	r.DstPort = uint16(dport)
	if r.Class, err = ParseClass(fields[5]); err != nil {
		return r, err
	}
	if r.Proto, err = ParseProto(fields[6]); err != nil {
		return r, err
	}
	if r.QoS, err = ParseQoS(fields[7]); err != nil {
		return r, err
	}
	payload, err := strconv.Atoi(fields[8])
	if err != nil {
		return r, fmt.Errorf("probe: bad payload: %w", err)
	}
	r.PayloadLen = payload
	rtt, err := strconv.ParseInt(fields[9], 10, 64)
	if err != nil {
		return r, fmt.Errorf("probe: bad rtt: %w", err)
	}
	r.RTT = time.Duration(rtt)
	prtt, err := strconv.ParseInt(fields[10], 10, 64)
	if err != nil {
		return r, fmt.Errorf("probe: bad payload rtt: %w", err)
	}
	r.PayloadRTT = time.Duration(prtt)
	r.Err = fields[11]
	return r, nil
}

func legacyDecodeBatch(data []byte) (recs []Record, errs []error) {
	lines := strings.Split(string(data), "\n")
	for i, ln := range lines {
		if ln == "" || ln == CSVHeader {
			continue
		}
		r, err := legacyParseCSV(ln)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", i+1, err))
			continue
		}
		recs = append(recs, r)
	}
	return recs, errs
}

// Oracles for the byte-slice numeric parsers.
func parseInt64Oracle(s string) (int64, error)   { return strconv.ParseInt(s, 10, 64) }
func parseUint16Oracle(s string) (uint64, error) { return strconv.ParseUint(s, 10, 16) }

// normalizeCR maps data onto the legacy decoder's line model: the Scanner
// deliberately accepts CRLF (it strips one CR before each LF and at EOF),
// which the legacy decoder never did. For CR-free input the two decoders
// must agree byte-for-byte with no normalization at all.
func normalizeCR(data []byte) []byte {
	out := bytes.ReplaceAll(data, []byte("\r\n"), []byte("\n"))
	if n := len(out); n > 0 && out[n-1] == '\r' {
		out = out[:n-1]
	}
	return out
}

func scanAll(data []byte) (recs []Record, errLines []int) {
	var sc Scanner
	sc.Reset(data)
	for sc.Scan() {
		if sc.RowErr() != nil {
			errLines = append(errLines, sc.Line())
			continue
		}
		recs = append(recs, *sc.Record())
	}
	return recs, errLines
}

func diffRecords(t *testing.T, label string, got, want []Record, gotErrs, wantErrs int) {
	t.Helper()
	if gotErrs != wantErrs {
		t.Fatalf("%s: scanner saw %d parse errors, legacy %d", label, gotErrs, wantErrs)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: scanner decoded %d records, legacy %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d diverged:\nscanner %+v\nlegacy  %+v", label, i, got[i], want[i])
		}
	}
}

// magicAtLineStart reports whether data would trigger the binary-batch
// path anywhere: the "PMB1" magic at offset 0 or right after a newline.
func magicAtLineStart(data []byte) bool {
	return bytes.HasPrefix(data, []byte(binaryMagic)) ||
		bytes.Contains(data, []byte("\n"+binaryMagic))
}

// FuzzScannerVsDecodeBatch is the differential fuzz target of the
// streaming ingest rewrite: for arbitrary input the in-place Scanner must
// agree with the legacy decoder on records, order, and error count. For
// input containing CRs the comparison runs against the CR-normalized
// input, which is exactly the documented CRLF acceptance change. Input
// with the "PMB1" magic at a line start is excluded the same way: a line
// that used to be one corrupt CSV row is now a binary batch attempt (the
// second documented acceptance change), so the legacy oracle no longer
// applies — FuzzBinaryCodecRoundTrip pins that path instead.
func FuzzScannerVsDecodeBatch(f *testing.F) {
	r := sampleRecord()
	f.Add(EncodeBatch([]Record{r}))
	r.Err = "connect timeout"
	f.Add(EncodeBatch([]Record{r, r}))
	f.Add([]byte(CSVHeader + "\n"))
	f.Add([]byte(CSVHeader + "\r\n" + r.MarshalCSV() + "\r\n"))
	f.Add([]byte("garbage\n" + CSVHeader + "\n" + r.MarshalCSV()))
	f.Add([]byte("1,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,high,0,1,0,err\n"))
	f.Add([]byte("-1,::1,65535,255.255.255.255,0,inter-dc,http,low,-7,-1,9223372036854775807,\n"))
	f.Add([]byte("\n\r\n,\n1,2,3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if magicAtLineStart(data) {
			return
		}
		gotRecs, gotErrLines := scanAll(data)
		wantRecs, wantErrs := legacyDecodeBatch(normalizeCR(data))
		diffRecords(t, "normalized", gotRecs, wantRecs, len(gotErrLines), len(wantErrs))
		if !bytes.Contains(data, []byte{'\r'}) {
			// CR-free input: additionally require the public DecodeBatch
			// (reimplemented on the Scanner) to match legacy verbatim,
			// including the line numbers carried in the errors.
			newRecs, newErrs := DecodeBatch(data)
			diffRecords(t, "verbatim", newRecs, wantRecs, len(newErrs), len(wantErrs))
			for i := range newErrs {
				if newErrs[i].Error()[:8] != wantErrs[i].Error()[:8] {
					t.Fatalf("error %d line prefix diverged: %q vs %q", i, newErrs[i], wantErrs[i])
				}
			}
		}
	})
}

// randomRecord generates a valid record: every field within wire range,
// addresses IPv4 or IPv6, err free of the separators sanitizeErr rewrites.
func randomRecord(rng *rand.Rand) Record {
	r := Record{
		Start:      time.Unix(rng.Int63n(1<<33), rng.Int63n(1e9)).UTC(),
		SrcPort:    uint16(rng.Intn(1 << 16)),
		DstPort:    uint16(rng.Intn(1 << 16)),
		Class:      Class(rng.Intn(3)),
		Proto:      Proto(rng.Intn(2)),
		QoS:        QoS(rng.Intn(2)),
		PayloadLen: rng.Intn(1 << 20),
		RTT:        time.Duration(rng.Int63n(int64(30 * time.Second))),
	}
	addr := func() netip.Addr {
		if rng.Intn(2) == 0 {
			var b [4]byte
			rng.Read(b[:])
			return netip.AddrFrom4(b)
		}
		var b [16]byte
		rng.Read(b[:])
		return netip.AddrFrom16(b)
	}
	r.Src = addr()
	r.Dst = addr()
	if rng.Intn(4) > 0 {
		r.PayloadRTT = time.Duration(rng.Int63n(int64(30 * time.Second)))
	}
	if rng.Intn(3) == 0 {
		errs := []string{"connect timeout", "connection refused", "no route to host", "reset"}
		r.Err = errs[rng.Intn(len(errs))]
		r.RTT = 21 * time.Second
	}
	return r
}

// TestEncodeScanRoundTripProperty: EncodeBatch → Scanner reproduces every
// generated record exactly, whatever the batch contents.
func TestEncodeScanRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, int(n%64)+1)
		for i := range recs {
			recs[i] = randomRecord(rng)
		}
		data := EncodeBatch(recs)
		got, errLines := scanAll(data)
		if len(errLines) != 0 || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScannerVsLegacySeededBatches runs the differential comparison over a
// deterministic mixed corpus (valid rows, corrupt rows, headers, blanks)
// so the equivalence is exercised by plain `go test` runs too, not only
// under -fuzz.
func TestScannerVsLegacySeededBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf []byte
	for i := 0; i < 500; i++ {
		switch rng.Intn(6) {
		case 0:
			buf = append(buf, CSVHeader...)
			buf = append(buf, '\n')
		case 1:
			buf = append(buf, "corrupt,row\n"...)
		case 2:
			buf = append(buf, '\n')
		default:
			r := randomRecord(rng)
			buf = r.AppendCSV(buf)
			buf = append(buf, '\n')
		}
	}
	gotRecs, gotErrLines := scanAll(buf)
	wantRecs, wantErrs := legacyDecodeBatch(buf)
	diffRecords(t, "seeded", gotRecs, wantRecs, len(gotErrLines), len(wantErrs))
}
