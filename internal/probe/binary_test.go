package probe

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pingmesh/internal/metrics"
)

func randAddr(rng *rand.Rand) netip.Addr {
	if rng.Intn(2) == 0 {
		var b [4]byte
		rng.Read(b[:])
		return netip.AddrFrom4(b)
	}
	var b [16]byte
	rng.Read(b[:])
	return netip.AddrFrom16(b)
}

func randomSketch(rng *rand.Rand) PeerSketch {
	h := metrics.NewLatencyHistogram()
	n := rng.Intn(200) + 1
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(5 * time.Second))))
	}
	var ph *metrics.Histogram
	if rng.Intn(2) == 0 {
		ph = metrics.NewLatencyHistogram()
		for i := 0; i < n; i++ {
			ph.Observe(time.Duration(rng.Int63n(int64(time.Second))))
		}
	}
	minStart := time.Unix(rng.Int63n(1<<33), rng.Int63n(1e9)).UTC()
	return PeerSketch{
		Src:        randAddr(rng),
		Dst:        randAddr(rng),
		DstPort:    uint16(rng.Intn(1 << 16)),
		Class:      Class(rng.Intn(3)),
		Proto:      Proto(rng.Intn(2)),
		QoS:        QoS(rng.Intn(2)),
		PayloadLen: rng.Intn(1 << 16),
		MinStart:   minStart,
		MaxStart:   minStart.Add(time.Duration(rng.Int63n(int64(10 * time.Minute)))),
		RTT:        h,
		Payload:    ph,
	}
}

// scanAllEntries drives ScanEntry over data, returning parsed records,
// sketch copies, and the number of row errors.
func scanAllEntries(data []byte) (recs []Record, sks []Sketch, errs int) {
	var sc Scanner
	sc.Reset(data)
	for {
		switch sc.ScanEntry() {
		case EntryEOF:
			return recs, sks, errs
		case EntryRecord:
			if sc.RowErr() != nil {
				errs++
				continue
			}
			recs = append(recs, *sc.Record())
		case EntrySketch:
			sks = append(sks, *sc.Sketch())
		}
	}
}

// compareSketch checks a decoded sketch against the PeerSketch it encoded.
func compareSketch(t *testing.T, got *Sketch, want *PeerSketch) {
	t.Helper()
	if got.Src != want.Src || got.Dst != want.Dst || got.DstPort != want.DstPort ||
		got.Class != want.Class || got.Proto != want.Proto || got.QoS != want.QoS ||
		got.PayloadLen != want.PayloadLen {
		t.Fatalf("sketch identity diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if !got.MinStart.Equal(want.MinStart) || !got.MaxStart.Equal(want.MaxStart) {
		t.Fatalf("sketch time range diverged: got [%v,%v] want [%v,%v]",
			got.MinStart, got.MaxStart, want.MinStart, want.MaxStart)
	}
	compareHist(t, "rtt", &got.RTT, want.RTT)
	compareHist(t, "payload", &got.Payload, want.Payload)
}

func compareHist(t *testing.T, label string, got *SketchHist, want *metrics.Histogram) {
	t.Helper()
	if want == nil || want.Count() == 0 {
		if got.Count != 0 {
			t.Fatalf("%s: decoded %d observations from an empty histogram", label, got.Count)
		}
		return
	}
	if got.Count != want.Count() || got.Sum != int64(want.Sum()) ||
		got.MinNS != int64(want.Min()) || got.MaxNS != int64(want.Max()) {
		t.Fatalf("%s: tallies diverged: got n=%d sum=%d min=%d max=%d, want n=%d sum=%v min=%v max=%v",
			label, got.Count, got.Sum, got.MinNS, got.MaxNS,
			want.Count(), int64(want.Sum()), int64(want.Min()), int64(want.Max()))
	}
	gi, wi := got.Buckets(), want.Buckets()
	for {
		gb, gok := gi.Next()
		wb, wok := wi.Next()
		if gok != wok {
			t.Fatalf("%s: bucket streams ended at different lengths", label)
		}
		if !gok {
			return
		}
		if gb != wb {
			t.Fatalf("%s: bucket diverged: got %+v want %+v", label, gb, wb)
		}
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, 50)
	for i := range recs {
		recs[i] = randomRecord(rng)
	}
	sks := make([]PeerSketch, 20)
	for i := range sks {
		sks[i] = randomSketch(rng)
	}
	data := AppendBinaryBatch(nil, recs, sks)

	gotRecs, gotSks, errs := scanAllEntries(data)
	if errs != 0 {
		t.Fatalf("round trip produced %d row errors", errs)
	}
	if len(gotRecs) != len(recs) || len(gotSks) != len(sks) {
		t.Fatalf("decoded %d records + %d sketches, want %d + %d",
			len(gotRecs), len(gotSks), len(recs), len(sks))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Fatalf("record %d diverged:\ngot  %+v\nwant %+v", i, gotRecs[i], recs[i])
		}
	}
	for i := range sks {
		compareSketch(t, &gotSks[i], &sks[i])
	}
}

// An extent interleaving CSV documents and binary batches must yield all
// entries of both, in order, through one Scanner pass — and Scan (the
// records-only view) must see the records of both formats.
func TestScannerMixedFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	csv1 := make([]Record, 10)
	for i := range csv1 {
		csv1[i] = randomRecord(rng)
	}
	binRecs := make([]Record, 5)
	for i := range binRecs {
		binRecs[i] = randomRecord(rng)
	}
	sks := []PeerSketch{randomSketch(rng), randomSketch(rng)}
	csv2 := []Record{randomRecord(rng)}

	var data []byte
	data = AppendBatch(data, csv1)
	data = AppendBinaryBatch(data, binRecs, sks)
	data = AppendBinaryBatch(data, nil, sks[:1]) // records-free batch
	data = AppendBatch(data, csv2)

	wantRecs := append(append(append([]Record{}, csv1...), binRecs...), csv2...)
	gotRecs, gotSks, errs := scanAllEntries(data)
	if errs != 0 {
		t.Fatalf("mixed extent produced %d row errors", errs)
	}
	if len(gotSks) != 3 {
		t.Fatalf("decoded %d sketches, want 3", len(gotSks))
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("decoded %d records, want %d", len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		if gotRecs[i] != wantRecs[i] {
			t.Fatalf("record %d diverged:\ngot  %+v\nwant %+v", i, gotRecs[i], wantRecs[i])
		}
	}

	// The records-only Scan view sees the same records.
	var sc Scanner
	sc.Reset(data)
	var viaScan []Record
	for sc.Scan() {
		if sc.RowErr() != nil {
			t.Fatalf("line %d: %v", sc.Line(), sc.RowErr())
		}
		viaScan = append(viaScan, *sc.Record())
	}
	if len(viaScan) != len(wantRecs) {
		t.Fatalf("Scan saw %d records, want %d", len(viaScan), len(wantRecs))
	}
}

// Corruption inside one batch payload must cost exactly that batch (one
// row error) and resync at the next batch boundary.
func TestBinaryBatchCorruptionResync(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := []Record{randomRecord(rng), randomRecord(rng)}
	good := AppendBinaryBatch(nil, recs, nil)

	// A batch with a valid length prefix but garbage payload: the length
	// is trusted, so exactly this batch is lost and scanning resumes at
	// the next one. (There is deliberately no checksum — a bit flip that
	// still decodes is indistinguishable from data; framing corruption is
	// what the resync path must contain.)
	bad := append([]byte(binaryMagic), 20)
	for i := 0; i < 20; i++ {
		bad = append(bad, 0xff)
	}

	data := append(append([]byte{}, bad...), good...)
	gotRecs, _, errs := scanAllEntries(data)
	if errs != 1 {
		t.Fatalf("got %d row errors, want exactly 1 for the corrupt batch", errs)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("resync lost records from the good batch: got %d, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Fatalf("good-batch record %d diverged after resync", i)
		}
	}

	// A batch whose header (length prefix) is corrupt has no resync point:
	// the rest of the input is one row error.
	headerBad := append([]byte(binaryMagic), 0xff) // truncated uvarint
	headerBad = append(headerBad, good...)
	gotRecs, _, errs = scanAllEntries(headerBad)
	if errs != 1 || len(gotRecs) != 0 {
		t.Fatalf("bad header: got %d records %d errors, want 0 records 1 error", len(gotRecs), errs)
	}
}

// A CSV line that merely starts with the magic is a binary batch attempt
// now (documented acceptance change): still exactly one row error, and
// surrounding batches still decode when the length prefix happens to be
// invalid early.
func TestMagicPrefixedCSVLineIsRowError(t *testing.T) {
	data := []byte("PMB1,this,used,to,be,a,corrupt,csv,row\n")
	recs, sks, errs := scanAllEntries(data)
	if len(recs) != 0 || len(sks) != 0 || errs != 1 {
		t.Fatalf("got %d recs %d sketches %d errors, want 0/0/1", len(recs), len(sks), errs)
	}
}

// TestSketchEncodeZeroAlloc: the agent's flush path encodes whole batches
// (records + sketches) into a reused buffer; steady state must be
// allocation-free. Tier-3 guard.
func TestSketchEncodeZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	recs := make([]Record, 32)
	for i := range recs {
		recs[i] = randomRecord(rng)
	}
	sks := make([]PeerSketch, 16)
	for i := range sks {
		sks[i] = randomSketch(rng)
	}
	buf := AppendBinaryBatch(nil, recs, sks) // size the buffer once
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBinaryBatch(buf[:0], recs, sks)
	})
	if allocs != 0 {
		t.Fatalf("AppendBinaryBatch allocated %.1f/op, want 0", allocs)
	}
}

// TestBinaryScanZeroAlloc: the analysis-side decode of a binary batch must
// be allocation-free per entry once the error intern table is warm.
// Tier-3 guard.
func TestBinaryScanZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = randomRecord(rng)
	}
	sks := make([]PeerSketch, 16)
	for i := range sks {
		sks[i] = randomSketch(rng)
	}
	data := AppendBinaryBatch(nil, recs, sks)

	agg := metrics.NewLatencyHistogram()
	var sc Scanner
	sc.Reset(data) // warm the intern table
	for sc.Scan() {
	}
	allocs := testing.AllocsPerRun(100, func() {
		sc.Reset(data)
		for {
			k := sc.ScanEntry()
			if k == EntryEOF {
				break
			}
			if k == EntrySketch {
				sc.Sketch().RTT.AddTo(agg)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("binary scan allocated %.1f/op, want 0", allocs)
	}
}

// FuzzBinaryCodecRoundTrip fuzzes the binary path from both ends: (1) the
// Scanner must survive arbitrary bytes — no panics, guaranteed
// termination, bounded entries; (2) a batch generated from the fuzz input
// as a seed must round-trip exactly.
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(12))
	f.Add(AppendBinaryBatch(nil, []Record{randomRecord(rng)}, []PeerSketch{randomSketch(rng)}))
	f.Add(AppendBinaryBatch(nil, nil, nil))
	f.Add([]byte(binaryMagic))
	f.Add([]byte(binaryMagic + "\x02\x00\x00garbage"))
	f.Add([]byte("csv,line\n" + binaryMagic + "\x05\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc Scanner
		sc.Reset(data)
		for entries := 0; ; entries++ {
			if k := sc.ScanEntry(); k == EntryEOF {
				break
			}
			if entries > 2*len(data)+16 {
				t.Fatalf("scanner yielded more entries than the input can hold")
			}
		}

		var seed int64 = int64(len(data))
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		g := rand.New(rand.NewSource(seed))
		recs := make([]Record, g.Intn(8))
		for i := range recs {
			recs[i] = randomRecord(g)
		}
		sks := make([]PeerSketch, g.Intn(4))
		for i := range sks {
			sks[i] = randomSketch(g)
		}
		enc := AppendBinaryBatch(nil, recs, sks)
		gotRecs, gotSks, errs := scanAllEntries(enc)
		if errs != 0 {
			t.Fatalf("round trip produced %d row errors", errs)
		}
		if len(gotRecs) != len(recs) || len(gotSks) != len(sks) {
			t.Fatalf("decoded %d+%d entries, want %d+%d", len(gotRecs), len(gotSks), len(recs), len(sks))
		}
		for i := range recs {
			if gotRecs[i] != recs[i] {
				t.Fatalf("record %d diverged", i)
			}
		}
		for i := range sks {
			compareSketch(t, &gotSks[i], &sks[i])
		}
	})
}
