package probe

import (
	"testing"
)

// Native fuzz targets; `go test` exercises the seed corpus, and
// `go test -fuzz=FuzzParseCSV ./internal/probe` digs deeper.

func FuzzParseCSV(f *testing.F) {
	r := sampleRecord()
	f.Add(r.MarshalCSV())
	f.Add("")
	f.Add(CSVHeader)
	f.Add("a,b,c,d,e,f,g,h,i,j,k,l")
	f.Add("1,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,high,0,1,0,err")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCSV(line)
		if err != nil {
			return
		}
		// Whatever parses must re-encode and re-parse to the same record.
		again, err := ParseCSV(rec.MarshalCSV())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again != rec {
			t.Fatalf("round trip diverged:\n%+v\n%+v", rec, again)
		}
	})
}
