package probe

import (
	"math/rand"
	"testing"
)

func BenchmarkAppendCSV(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendCSV(buf[:0])
	}
}

func BenchmarkParseCSV(b *testing.B) {
	r := sampleRecord()
	line := r.MarshalCSV()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCSV(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	b.SetBytes(int64(len(EncodeBatch(recs))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBatch(recs)
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	data := EncodeBatch(recs)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, errs := DecodeBatch(data)
		if len(errs) != 0 || len(got) != len(recs) {
			b.Fatal("decode failed")
		}
	}
}

// benchBinaryBatch is a representative sketch-mode upload: a handful of
// raw anomalies plus one window's per-peer sketches.
func benchBinaryBatch() ([]Record, []PeerSketch) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, 16)
	for i := range recs {
		recs[i] = sampleRecord()
		if i%3 == 0 {
			recs[i].Err = "connect timeout"
		}
	}
	sks := make([]PeerSketch, 64)
	for i := range sks {
		sks[i] = randomSketch(rng)
	}
	return recs, sks
}

// BenchmarkAppendBinaryBatch measures the agent-side sketch-mode encode:
// the per-flush cost of shipping one window's sketches plus raw anomalies.
// Must be zero allocations (TestSketchEncodeZeroAlloc pins it).
func BenchmarkAppendBinaryBatch(b *testing.B) {
	recs, sks := benchBinaryBatch()
	buf := AppendBinaryBatch(nil, recs, sks)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBinaryBatch(buf[:0], recs, sks)
	}
}

// BenchmarkBinaryScan measures the ingest-side decode of a binary batch
// through the format-sniffing scanner, sketches folded into a histogram the
// way scope.FoldExtent folds them. MB/s is not comparable to
// BenchmarkScanner directly — a binary batch carries ~50x the probes per
// byte — so compare ns per summarized probe instead.
func BenchmarkBinaryScan(b *testing.B) {
	recs, sks := benchBinaryBatch()
	data := AppendBinaryBatch(nil, recs, sks)
	var probes uint64
	for i := range sks {
		probes += sks[i].RTT.Count()
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var sc Scanner
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset(data)
		nr, ns := 0, 0
		for {
			kind := sc.ScanEntry()
			if kind == EntryEOF {
				break
			}
			if sc.RowErr() != nil {
				b.Fatal("row error")
			}
			if kind == EntrySketch {
				ns++
			} else {
				nr++
			}
		}
		if nr != len(recs) || ns != len(sks) {
			b.Fatalf("scanned %d records + %d sketches", nr, ns)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(probes+uint64(len(recs))), "ns/probe")
}

// BenchmarkScanner measures the streaming ingest path the scope workers
// use: one reusable Scanner over a 1024-record batch, records visited in
// place, nothing materialized. MB/s here is the per-core ceiling of the
// §3.5 analysis pipeline.
func BenchmarkScanner(b *testing.B) {
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = sampleRecord()
		if i%7 == 0 {
			recs[i].Err = "connect timeout"
		}
	}
	data := EncodeBatch(recs)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var sc Scanner
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset(data)
		n := 0
		for sc.Scan() {
			if sc.RowErr() != nil {
				b.Fatal("row error")
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("scanned %d records", n)
		}
	}
}
