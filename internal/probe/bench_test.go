package probe

import (
	"testing"
)

func BenchmarkAppendCSV(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendCSV(buf[:0])
	}
}

func BenchmarkParseCSV(b *testing.B) {
	r := sampleRecord()
	line := r.MarshalCSV()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCSV(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	b.SetBytes(int64(len(EncodeBatch(recs))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBatch(recs)
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	data := EncodeBatch(recs)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, errs := DecodeBatch(data)
		if len(errs) != 0 || len(got) != len(recs) {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkScanner measures the streaming ingest path the scope workers
// use: one reusable Scanner over a 1024-record batch, records visited in
// place, nothing materialized. MB/s here is the per-core ceiling of the
// §3.5 analysis pipeline.
func BenchmarkScanner(b *testing.B) {
	recs := make([]Record, 1024)
	for i := range recs {
		recs[i] = sampleRecord()
		if i%7 == 0 {
			recs[i].Err = "connect timeout"
		}
	}
	data := EncodeBatch(recs)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var sc Scanner
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset(data)
		n := 0
		for sc.Scan() {
			if sc.RowErr() != nil {
				b.Fatal("row error")
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("scanned %d records", n)
		}
	}
}
