// Package probe defines the latency measurement record that flows through
// the whole Pingmesh pipeline — produced by agents, uploaded to Cosmos as
// CSV, and consumed by SCOPE analysis jobs — together with the probe
// classification vocabulary (ping class, protocol, QoS class).
package probe

import (
	"bytes"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Class says which of the three complete graphs a probe belongs to
// (§3.3.1 of the paper).
type Class int

// Probe classes.
const (
	IntraPod Class = iota // servers under the same ToR
	IntraDC               // ToR-level complete graph within a DC
	InterDC               // DC-level complete graph
)

var classNames = [...]string{"intra-pod", "intra-dc", "inter-dc"}

// String returns the wire name of the class.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass parses the wire name of a class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("probe: unknown class %q", s)
}

// Proto is the probing protocol. Pingmesh uses TCP and HTTP because those
// are what the applications use (§3.4.1).
type Proto int

// Probing protocols.
const (
	TCP Proto = iota
	HTTP
)

// String returns the wire name of the protocol.
func (p Proto) String() string {
	if p == HTTP {
		return "http"
	}
	return "tcp"
}

// ParseProto parses the wire name of a protocol.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "tcp":
		return TCP, nil
	case "http":
		return HTTP, nil
	}
	return 0, fmt.Errorf("probe: unknown proto %q", s)
}

// QoS is the differentiated-service class of the probe (the QoS monitoring
// extension in §6.2).
type QoS int

// QoS classes.
const (
	QoSHigh QoS = iota
	QoSLow
)

// String returns the wire name of the QoS class.
func (q QoS) String() string {
	if q == QoSLow {
		return "low"
	}
	return "high"
}

// ParseQoS parses the wire name of a QoS class.
func ParseQoS(s string) (QoS, error) {
	switch s {
	case "high":
		return QoSHigh, nil
	case "low":
		return QoSLow, nil
	}
	return 0, fmt.Errorf("probe: unknown qos %q", s)
}

// Record is one probe outcome. A Record with empty Err is a successful
// probe; RTT then holds the TCP connection setup round-trip time (which may
// embed SYN retransmit timeouts — the signal the drop-rate heuristic keys
// on), and PayloadRTT the optional payload echo round trip (0 when the
// probe carried no payload).
type Record struct {
	Start      time.Time
	Src        netip.Addr
	SrcPort    uint16
	Dst        netip.Addr
	DstPort    uint16
	Class      Class
	Proto      Proto
	QoS        QoS
	PayloadLen int
	RTT        time.Duration
	PayloadRTT time.Duration
	Err        string // empty on success
}

// Success reports whether the probe completed.
func (r *Record) Success() bool { return r.Err == "" }

// CSVHeader is the first line of every latency data file uploaded to the
// store.
const CSVHeader = "start_unix_ns,src,sport,dst,dport,class,proto,qos,payload,rtt_ns,payload_rtt_ns,err"

// AppendCSV appends the CSV encoding of r (without trailing newline) to b
// and returns the extended slice. It allocates nothing beyond growth of b:
// addresses are appended with netip.Addr.AppendTo instead of String.
func (r *Record) AppendCSV(b []byte) []byte {
	b = strconv.AppendInt(b, r.Start.UnixNano(), 10)
	b = append(b, ',')
	b = appendAddr(b, r.Src)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.SrcPort), 10)
	b = append(b, ',')
	b = appendAddr(b, r.Dst)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.DstPort), 10)
	b = append(b, ',')
	b = append(b, r.Class.String()...)
	b = append(b, ',')
	b = append(b, r.Proto.String()...)
	b = append(b, ',')
	b = append(b, r.QoS.String()...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PayloadLen), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.RTT), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PayloadRTT), 10)
	b = append(b, ',')
	b = append(b, sanitizeErr(r.Err)...)
	return b
}

// MarshalCSV returns the CSV encoding of r.
func (r *Record) MarshalCSV() string { return string(r.AppendCSV(nil)) }

// appendAddr appends the textual form of a. netip.Addr.AppendTo appends
// nothing for the zero Addr, while String returns "invalid IP"; encode the
// latter so the wire bytes stay identical to the pre-AppendTo encoder.
func appendAddr(b []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(b, "invalid IP"...)
	}
	return a.AppendTo(b)
}

func sanitizeErr(s string) string {
	if strings.ContainsAny(s, ",\n\r") {
		s = strings.Map(func(r rune) rune {
			switch r {
			case ',', '\n', '\r':
				return ';'
			}
			return r
		}, s)
	}
	return s
}

// ParseCSV parses one CSV line produced by AppendCSV. It is the
// convenience single-line API; bulk decoding should use Scanner (or
// DecodeBatch), which parses in place without this function's per-call
// string-to-bytes copy.
func ParseCSV(line string) (Record, error) {
	var s Scanner
	if err := s.parseLine([]byte(line)); err != nil {
		return Record{}, err
	}
	return s.rec, nil
}

// AppendBatch appends the CSV document encoding of recs (header line plus
// one line per record) to dst and returns the extended slice. Callers that
// upload repeatedly should reuse dst across batches so steady-state
// encoding allocates nothing.
func AppendBatch(dst []byte, recs []Record) []byte {
	dst = append(dst, CSVHeader...)
	dst = append(dst, '\n')
	for i := range recs {
		dst = recs[i].AppendCSV(dst)
		dst = append(dst, '\n')
	}
	return dst
}

// EncodeBatch encodes records as a CSV document with header.
func EncodeBatch(recs []Record) []byte {
	return AppendBatch(make([]byte, 0, 64+len(recs)*96), recs)
}

// DecodeBatch decodes a CSV document produced by EncodeBatch. Lines that
// fail to parse are returned in errs by line number without aborting the
// batch, mirroring how the analysis pipeline skips corrupt rows.
//
// DecodeBatch is implemented on Scanner and kept for callers that want the
// records materialized; the streaming pipeline (scope workers) drives the
// Scanner directly and never builds the slice.
func DecodeBatch(data []byte) (recs []Record, errs []error) {
	// Size the result once from the line count (slight overcount: header and
	// blank lines) so appending never reallocates mid-decode.
	if n := bytes.Count(data, []byte{'\n'}) + 1; n > 1 {
		recs = make([]Record, 0, n)
	}
	var sc Scanner
	sc.Reset(data)
	for sc.Scan() {
		if err := sc.RowErr(); err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", sc.Line(), err))
			continue
		}
		recs = append(recs, sc.rec)
	}
	return recs, errs
}
