// Package probe defines the latency measurement record that flows through
// the whole Pingmesh pipeline — produced by agents, uploaded to Cosmos as
// CSV, and consumed by SCOPE analysis jobs — together with the probe
// classification vocabulary (ping class, protocol, QoS class).
package probe

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Class says which of the three complete graphs a probe belongs to
// (§3.3.1 of the paper).
type Class int

// Probe classes.
const (
	IntraPod Class = iota // servers under the same ToR
	IntraDC               // ToR-level complete graph within a DC
	InterDC               // DC-level complete graph
)

var classNames = [...]string{"intra-pod", "intra-dc", "inter-dc"}

// String returns the wire name of the class.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass parses the wire name of a class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("probe: unknown class %q", s)
}

// Proto is the probing protocol. Pingmesh uses TCP and HTTP because those
// are what the applications use (§3.4.1).
type Proto int

// Probing protocols.
const (
	TCP Proto = iota
	HTTP
)

// String returns the wire name of the protocol.
func (p Proto) String() string {
	if p == HTTP {
		return "http"
	}
	return "tcp"
}

// ParseProto parses the wire name of a protocol.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "tcp":
		return TCP, nil
	case "http":
		return HTTP, nil
	}
	return 0, fmt.Errorf("probe: unknown proto %q", s)
}

// QoS is the differentiated-service class of the probe (the QoS monitoring
// extension in §6.2).
type QoS int

// QoS classes.
const (
	QoSHigh QoS = iota
	QoSLow
)

// String returns the wire name of the QoS class.
func (q QoS) String() string {
	if q == QoSLow {
		return "low"
	}
	return "high"
}

// ParseQoS parses the wire name of a QoS class.
func ParseQoS(s string) (QoS, error) {
	switch s {
	case "high":
		return QoSHigh, nil
	case "low":
		return QoSLow, nil
	}
	return 0, fmt.Errorf("probe: unknown qos %q", s)
}

// Record is one probe outcome. A Record with empty Err is a successful
// probe; RTT then holds the TCP connection setup round-trip time (which may
// embed SYN retransmit timeouts — the signal the drop-rate heuristic keys
// on), and PayloadRTT the optional payload echo round trip (0 when the
// probe carried no payload).
type Record struct {
	Start      time.Time
	Src        netip.Addr
	SrcPort    uint16
	Dst        netip.Addr
	DstPort    uint16
	Class      Class
	Proto      Proto
	QoS        QoS
	PayloadLen int
	RTT        time.Duration
	PayloadRTT time.Duration
	Err        string // empty on success
}

// Success reports whether the probe completed.
func (r *Record) Success() bool { return r.Err == "" }

// CSVHeader is the first line of every latency data file uploaded to the
// store.
const CSVHeader = "start_unix_ns,src,sport,dst,dport,class,proto,qos,payload,rtt_ns,payload_rtt_ns,err"

// AppendCSV appends the CSV encoding of r (without trailing newline) to b
// and returns the extended slice.
func (r *Record) AppendCSV(b []byte) []byte {
	b = strconv.AppendInt(b, r.Start.UnixNano(), 10)
	b = append(b, ',')
	b = append(b, r.Src.String()...)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.SrcPort), 10)
	b = append(b, ',')
	b = append(b, r.Dst.String()...)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.DstPort), 10)
	b = append(b, ',')
	b = append(b, r.Class.String()...)
	b = append(b, ',')
	b = append(b, r.Proto.String()...)
	b = append(b, ',')
	b = append(b, r.QoS.String()...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PayloadLen), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.RTT), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PayloadRTT), 10)
	b = append(b, ',')
	b = append(b, sanitizeErr(r.Err)...)
	return b
}

// MarshalCSV returns the CSV encoding of r.
func (r *Record) MarshalCSV() string { return string(r.AppendCSV(nil)) }

func sanitizeErr(s string) string {
	if strings.ContainsAny(s, ",\n\r") {
		s = strings.Map(func(r rune) rune {
			switch r {
			case ',', '\n', '\r':
				return ';'
			}
			return r
		}, s)
	}
	return s
}

// ParseCSV parses one CSV line produced by AppendCSV.
func ParseCSV(line string) (Record, error) {
	var r Record
	fields := strings.Split(line, ",")
	if len(fields) != 12 {
		return r, fmt.Errorf("probe: record has %d fields, want 12", len(fields))
	}
	startNS, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return r, fmt.Errorf("probe: bad start %q: %w", fields[0], err)
	}
	r.Start = time.Unix(0, startNS).UTC()
	if r.Src, err = netip.ParseAddr(fields[1]); err != nil {
		return r, fmt.Errorf("probe: bad src: %w", err)
	}
	sport, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return r, fmt.Errorf("probe: bad sport: %w", err)
	}
	r.SrcPort = uint16(sport)
	if r.Dst, err = netip.ParseAddr(fields[3]); err != nil {
		return r, fmt.Errorf("probe: bad dst: %w", err)
	}
	dport, err := strconv.ParseUint(fields[4], 10, 16)
	if err != nil {
		return r, fmt.Errorf("probe: bad dport: %w", err)
	}
	r.DstPort = uint16(dport)
	if r.Class, err = ParseClass(fields[5]); err != nil {
		return r, err
	}
	if r.Proto, err = ParseProto(fields[6]); err != nil {
		return r, err
	}
	if r.QoS, err = ParseQoS(fields[7]); err != nil {
		return r, err
	}
	payload, err := strconv.Atoi(fields[8])
	if err != nil {
		return r, fmt.Errorf("probe: bad payload: %w", err)
	}
	r.PayloadLen = payload
	rtt, err := strconv.ParseInt(fields[9], 10, 64)
	if err != nil {
		return r, fmt.Errorf("probe: bad rtt: %w", err)
	}
	r.RTT = time.Duration(rtt)
	prtt, err := strconv.ParseInt(fields[10], 10, 64)
	if err != nil {
		return r, fmt.Errorf("probe: bad payload rtt: %w", err)
	}
	r.PayloadRTT = time.Duration(prtt)
	r.Err = fields[11]
	return r, nil
}

// EncodeBatch encodes records as a CSV document with header.
func EncodeBatch(recs []Record) []byte {
	b := make([]byte, 0, 64+len(recs)*96)
	b = append(b, CSVHeader...)
	b = append(b, '\n')
	for i := range recs {
		b = recs[i].AppendCSV(b)
		b = append(b, '\n')
	}
	return b
}

// DecodeBatch decodes a CSV document produced by EncodeBatch. Lines that
// fail to parse are returned in errs by line number without aborting the
// batch, mirroring how the analysis pipeline skips corrupt rows.
func DecodeBatch(data []byte) (recs []Record, errs []error) {
	lines := strings.Split(string(data), "\n")
	for i, ln := range lines {
		if ln == "" || ln == CSVHeader {
			continue
		}
		r, err := ParseCSV(ln)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", i+1, err))
			continue
		}
		recs = append(recs, r)
	}
	return recs, errs
}
