package probe

import (
	"fmt"
	"testing"
	"time"
)

// collect drives a scanner over data and returns the parsed records and
// the number of row errors.
func collect(t *testing.T, sc *Scanner, data []byte) ([]Record, int) {
	t.Helper()
	sc.Reset(data)
	var recs []Record
	errs := 0
	for sc.Scan() {
		if sc.RowErr() != nil {
			errs++
			continue
		}
		recs = append(recs, *sc.Record())
	}
	return recs, errs
}

func TestScannerBatchRoundTrip(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord(), sampleRecord()}
	recs[1].Class = InterDC
	recs[1].Proto = HTTP
	recs[1].QoS = QoSLow
	recs[2].Err = "refused"
	data := EncodeBatch(recs)
	got, errs := collect(t, NewScanner(nil), data)
	if errs != 0 {
		t.Fatalf("row errors: %d", errs)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

// TestScannerLineHandling is the table-driven satellite test for CRLF
// acceptance and header-skip positioning.
func TestScannerLineHandling(t *testing.T) {
	r := sampleRecord()
	line := r.MarshalCSV()
	cases := []struct {
		name          string
		data          string
		headerAtStart bool // run with HeaderOnlyAtStart set
		wantRecs      int
		wantErrs      int
	}{
		{name: "plain LF", data: CSVHeader + "\n" + line + "\n", wantRecs: 1},
		{name: "CRLF document", data: CSVHeader + "\r\n" + line + "\r\n", wantRecs: 1},
		{name: "CRLF header only", data: CSVHeader + "\r\n", wantRecs: 0},
		{name: "no trailing newline", data: CSVHeader + "\n" + line, wantRecs: 1},
		{name: "CR at EOF", data: CSVHeader + "\n" + line + "\r", wantRecs: 1},
		{name: "blank lines skipped", data: "\n\n" + CSVHeader + "\n\n" + line + "\n\n", wantRecs: 1},
		// Extents concatenate header-prefixed upload batches: mid-stream
		// headers are batch boundaries and skipped by default.
		{name: "mid-stream header is batch boundary",
			data:     CSVHeader + "\n" + line + "\n" + CSVHeader + "\n" + line + "\n",
			wantRecs: 2},
		// With HeaderOnlyAtStart, a mid-stream line equal to the header is
		// a data row; it cannot parse, so it is counted, as a parse error.
		{name: "mid-stream header counted in doc-start mode",
			data:          CSVHeader + "\n" + line + "\n" + CSVHeader + "\n" + line + "\n",
			headerAtStart: true,
			wantRecs:      2,
			wantErrs:      1},
		{name: "doc-start mode still skips first header",
			data:          CSVHeader + "\n" + line + "\n",
			headerAtStart: true,
			wantRecs:      1},
		{name: "doc-start mode skips header after leading blanks",
			data:          "\n" + CSVHeader + "\n" + line + "\n",
			headerAtStart: true,
			wantRecs:      1},
		{name: "doc-start mode: second header is an error",
			data:          CSVHeader + "\n" + CSVHeader + "\n" + line + "\n",
			headerAtStart: true,
			wantRecs:      1,
			wantErrs:      1},
		{name: "corrupt row counted", data: CSVHeader + "\n" + "garbage\n" + line + "\n", wantRecs: 1, wantErrs: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScanner(nil)
			sc.HeaderOnlyAtStart = tc.headerAtStart
			recs, errs := collect(t, sc, []byte(tc.data))
			if len(recs) != tc.wantRecs || errs != tc.wantErrs {
				t.Fatalf("recs=%d errs=%d, want %d/%d", len(recs), errs, tc.wantRecs, tc.wantErrs)
			}
			for _, got := range recs {
				if got.RTT != r.RTT || got.Src != r.Src {
					t.Fatalf("record corrupted: %+v", got)
				}
			}
		})
	}
}

func TestScannerCRLFPreservesErrField(t *testing.T) {
	r := sampleRecord()
	r.Err = "connect timeout"
	data := []byte(CSVHeader + "\r\n" + r.MarshalCSV() + "\r\n")
	recs, errs := collect(t, NewScanner(nil), data)
	if errs != 0 || len(recs) != 1 {
		t.Fatalf("recs=%d errs=%d", len(recs), errs)
	}
	// The CR must not be absorbed into the trailing err field.
	if recs[0].Err != "connect timeout" {
		t.Fatalf("Err = %q", recs[0].Err)
	}
}

func TestScannerLineNumbers(t *testing.T) {
	r := sampleRecord()
	data := []byte(CSVHeader + "\n" + r.MarshalCSV() + "\nbad\n\n" + r.MarshalCSV() + "\n")
	sc := NewScanner(data)
	var lines []int
	for sc.Scan() {
		lines = append(lines, sc.Line())
	}
	want := []int{2, 3, 5}
	if fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Fatalf("lines = %v, want %v", lines, want)
	}
}

func TestScannerErrInterning(t *testing.T) {
	r := sampleRecord()
	r.Err = "connect timeout"
	data := EncodeBatch([]Record{r, r, r})
	sc := NewScanner(data)
	var errStrs []string
	for sc.Scan() {
		if sc.RowErr() == nil {
			errStrs = append(errStrs, sc.Record().Err)
		}
	}
	if len(errStrs) != 3 {
		t.Fatalf("records = %d", len(errStrs))
	}
	// All three Err strings must be the same interned instance (header
	// equality of string data pointers — compare via unsafe-free trick:
	// interning guarantees equality; identity is observable through the
	// intern map size staying at 1).
	if len(sc.errIntern) != 1 {
		t.Fatalf("intern table has %d entries, want 1", len(sc.errIntern))
	}
	// The intern table survives Reset, so a second extent reuses it.
	sc.Reset(data)
	for sc.Scan() {
	}
	if len(sc.errIntern) != 1 {
		t.Fatalf("intern table grew across Reset: %d", len(sc.errIntern))
	}
}

func TestScannerInternTableBounded(t *testing.T) {
	var recs []Record
	for i := 0; i < maxInternedErrs+10; i++ {
		r := sampleRecord()
		r.Err = fmt.Sprintf("err-%d", i)
		recs = append(recs, r)
	}
	sc := NewScanner(EncodeBatch(recs))
	n := 0
	for sc.Scan() {
		if sc.RowErr() == nil {
			n++
		}
	}
	if n != len(recs) {
		t.Fatalf("parsed %d records, want %d", n, len(recs))
	}
	if len(sc.errIntern) > maxInternedErrs {
		t.Fatalf("intern table exceeded cap: %d", len(sc.errIntern))
	}
}

// TestScannerRecordDoesNotAliasInput pins the documented aliasing rule: a
// copied Record stays intact after the input buffer is clobbered.
func TestScannerRecordDoesNotAliasInput(t *testing.T) {
	r := sampleRecord()
	r.Err = "some failure"
	data := EncodeBatch([]Record{r})
	sc := NewScanner(data)
	if !sc.Scan() || sc.RowErr() != nil {
		t.Fatal("scan failed")
	}
	got := *sc.Record()
	for i := range data {
		data[i] = 'X'
	}
	if got != r {
		t.Fatalf("record aliased input:\n got %+v\nwant %+v", got, r)
	}
}

func TestScannerZeroAlloc(t *testing.T) {
	recs := make([]Record, 512)
	for i := range recs {
		recs[i] = sampleRecord()
		if i%7 == 0 {
			recs[i].Err = "connect timeout" // exercise the intern hit path
		}
	}
	data := EncodeBatch(recs)
	sc := NewScanner(data)
	scan := func() {
		sc.Reset(data)
		for sc.Scan() {
			if sc.RowErr() != nil {
				t.Fatal("unexpected row error")
			}
		}
	}
	scan() // warm the intern table
	avg := testing.AllocsPerRun(20, scan)
	if avg > 1 { // 512 records: >1 alloc/run means a per-record allocation
		t.Fatalf("scanning 512 records allocates %.1f times per pass", avg)
	}
}

func TestParseIntBytesMatchesStrconv(t *testing.T) {
	cases := []string{
		"", "0", "1", "-1", "+1", "-", "+", "00", "007", "9223372036854775807",
		"9223372036854775808", "-9223372036854775808", "-9223372036854775809",
		"18446744073709551615", "99999999999999999999", "1x", "x1", " 1", "1 ",
		"1_0", "٣", "65535", "65536", "123456",
	}
	for _, c := range cases {
		got, gotErr := parseIntBytes([]byte(c), 64)
		want, wantErr := parseInt64Oracle(c)
		if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && got != want) {
			t.Errorf("parseIntBytes(%q) = %d,%v; strconv: %d,%v", c, got, gotErr, want, wantErr)
		}
		gotU, gotUErr := parseUintBytes([]byte(c), 16)
		wantU, wantUErr := parseUint16Oracle(c)
		if (gotUErr == nil) != (wantUErr == nil) || (gotUErr == nil && gotU != wantU) {
			t.Errorf("parseUintBytes(%q) = %d,%v; strconv: %d,%v", c, gotU, gotUErr, wantU, wantUErr)
		}
	}
}

func TestTryParseIPv4(t *testing.T) {
	ok := []string{"0.0.0.0", "10.0.1.2", "255.255.255.255", "192.168.0.1"}
	for _, s := range ok {
		a, parsed := tryParseIPv4([]byte(s))
		if !parsed {
			t.Errorf("tryParseIPv4(%q) rejected canonical quad", s)
			continue
		}
		if a.String() != s {
			t.Errorf("tryParseIPv4(%q) = %v", s, a)
		}
	}
	// Everything else must punt to netip (never mis-accept).
	punt := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4",
		"1.2.3.04", "::1", "1.2.3.4x", "1..3.4", ".1.2.3", "1.2.3.", "a.b.c.d"}
	for _, s := range punt {
		if _, parsed := tryParseIPv4([]byte(s)); parsed {
			t.Errorf("tryParseIPv4(%q) accepted", s)
		}
	}
}

func TestScannerTimeWindowFields(t *testing.T) {
	// time.Unix(0, ns).UTC() from the byte parser must equal the legacy
	// construction used everywhere else.
	r := sampleRecord()
	r.Start = time.Unix(1234, 567).UTC()
	got, err := ParseCSV(r.MarshalCSV())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(r.Start) || got.Start != r.Start {
		t.Fatalf("start = %v, want %v", got.Start, r.Start)
	}
}
