package probe

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// Scanner iterates over the records of a CSV latency document in place:
// it never copies the input, never splits it into line or field slices,
// and parses every field straight from the extent bytes. It is the hot
// ingest path of the SCOPE/DSA pipeline — at the paper's scale (§3.5, ~200B
// records and 24 TB per day) the analysis jobs must sustain multi-Gb/s
// decode throughput, which the allocating DecodeBatch path cannot.
//
// Usage:
//
//	var sc Scanner
//	sc.Reset(data)
//	for sc.Scan() {
//		if err := sc.RowErr(); err != nil {
//			// corrupt row, skipped — never fatal
//			continue
//		}
//		visit(sc.Record())
//	}
//
// Aliasing rules: the *Record returned by Record is owned by the Scanner
// and overwritten by the next Scan or Reset; copy it to retain it. The
// Record never aliases the input bytes — Err strings are interned copies —
// so a copied Record stays valid after the extent buffer is reused.
//
// Header handling: by default any line byte-equal to CSVHeader is treated
// as a header and skipped, because Cosmos extents are concatenations of
// agent upload batches and every batch starts with the header (a valid data
// row can never collide with it: its first field must parse as an integer).
// Set HeaderOnlyAtStart for standalone documents where only the first line
// may be a header.
//
// Binary batches: extents may interleave CSV documents with "PMB1" binary
// batches (see binary.go). Scan yields only records, silently skipping
// sketch entries, so existing record-only consumers work unchanged on
// mixed input; sketch-aware consumers drive ScanEntry instead.
//
// The zero value is ready to use after Reset. A Scanner is not safe for
// concurrent use.
type Scanner struct {
	data []byte
	off  int
	line int // 1-based physical line number of the current row

	rec    Record
	rowErr error

	// HeaderOnlyAtStart restricts header skipping to the first non-empty
	// line of the document; a later line equal to CSVHeader is then parsed
	// as a (necessarily corrupt) data row and counted as a parse error.
	HeaderOnlyAtStart bool
	sawLine           bool // a non-empty line has been consumed

	// Binary batch in progress (see binary.go).
	binPhase  int8 // binNone / binRecords / binSketches
	binRemain int  // entries left in the current phase
	binEnd    int  // offset one past the current batch payload
	sk        Sketch

	errIntern map[string]string
}

// EntryKind says what the last ScanEntry yielded.
type EntryKind int8

// Entry kinds.
const (
	EntryEOF    EntryKind = iota // input exhausted
	EntryRecord                  // a record (or a corrupt row — check RowErr)
	EntrySketch                  // a per-peer latency sketch
)

// entryAgain is an internal sentinel: the state machine consumed input
// (batch framing, blank line, header) without yielding an entry.
const entryAgain EntryKind = -1

// maxInternedErrs bounds the error-string intern table so adversarial
// input (every row failing with a unique message) cannot grow memory
// without bound. Beyond the cap, Err strings are allocated per record.
const maxInternedErrs = 1024

// NewScanner returns a Scanner over data. Equivalent to Reset on a zero
// Scanner.
func NewScanner(data []byte) *Scanner {
	s := &Scanner{}
	s.Reset(data)
	return s
}

// Reset rewinds the Scanner onto a new document. The error-string intern
// table is retained, so a worker that Resets one Scanner across many
// extents stops allocating once the (small) error vocabulary has been
// seen.
func (s *Scanner) Reset(data []byte) {
	s.data = data
	s.off = 0
	s.line = 0
	s.rowErr = nil
	s.sawLine = false
	s.binPhase = binNone
	s.binRemain = 0
	s.binEnd = 0
}

// Scan advances to the next data row, CSV or binary, skipping sketch
// entries. It returns false when the input is exhausted. After Scan
// returns true, exactly one of RowErr (corrupt row) or Record (parsed row)
// is meaningful. On pure CSV input Scan behaves exactly as it did before
// the binary format existed.
func (s *Scanner) Scan() bool {
	for {
		switch s.ScanEntry() {
		case EntryEOF:
			return false
		case EntryRecord:
			return true
		}
		// EntrySketch: Scan is the records-only view.
	}
}

// ScanEntry advances to the next entry — a record (EntryRecord; check
// RowErr before Record) or a per-peer sketch (EntrySketch; read it with
// Sketch) — returning EntryEOF when the input is exhausted. The "PMB1"
// magic is only recognized at top level (offset 0 or immediately after a
// newline), never inside a CSV line or a binary payload.
func (s *Scanner) ScanEntry() EntryKind {
	for {
		if s.binPhase != binNone {
			if k := s.scanBinary(); k != entryAgain {
				return k
			}
			continue
		}
		if s.off >= len(s.data) {
			return EntryEOF
		}
		if hasBinaryMagic(s.data[s.off:]) {
			// A binary batch counts as one physical "line" for Line()
			// purposes — its entries carry no line structure.
			s.line++
			s.sawLine = true
			if k := s.startBinaryBatch(); k != entryAgain {
				return k
			}
			continue
		}
		start := s.off
		var line []byte
		if i := bytes.IndexByte(s.data[s.off:], '\n'); i >= 0 {
			line = s.data[start : start+i]
			s.off = start + i + 1
		} else {
			line = s.data[start:]
			s.off = len(s.data)
		}
		s.line++
		// CRLF: Windows-origin files terminate lines with \r\n; strip the
		// CR so the trailing err field does not absorb it.
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		first := !s.sawLine
		s.sawLine = true
		if string(line) == CSVHeader && (first || !s.HeaderOnlyAtStart) {
			continue
		}
		s.rowErr = s.parseLine(line)
		return EntryRecord
	}
}

// Sketch returns the sketch parsed by the last ScanEntry that returned
// EntrySketch. It is owned by the Scanner and overwritten by the next
// ScanEntry; its histograms alias the input buffer.
func (s *Scanner) Sketch() *Sketch { return &s.sk }

// Record returns the row parsed by the last Scan. It is only valid when
// RowErr is nil, and only until the next Scan or Reset; see the aliasing
// rules in the type comment.
func (s *Scanner) Record() *Record { return &s.rec }

// RowErr returns the parse error of the current row, or nil if the row
// parsed cleanly. A row error is never fatal: corrupt rows must not kill a
// fleet-wide job, so callers count and continue.
func (s *Scanner) RowErr() error { return s.rowErr }

// Line returns the 1-based physical line number of the current row.
func (s *Scanner) Line() int { return s.line }

// parseLine parses one CSV data row into s.rec without allocating.
func (s *Scanner) parseLine(b []byte) error {
	var f [12][]byte
	n := 0
	start := 0
	for i := 0; i <= len(b); i++ {
		if i < len(b) && b[i] != ',' {
			continue
		}
		if n == 12 {
			// More than 12 fields: count the rest for the error.
			return fmt.Errorf("probe: record has %d fields, want 12", 13+bytes.Count(b[i:], commaSep))
		}
		f[n] = b[start:i]
		n++
		start = i + 1
	}
	if n != 12 {
		return fmt.Errorf("probe: record has %d fields, want 12", n)
	}
	r := &s.rec
	startNS, err := parseIntBytes(f[0], 64)
	if err != nil {
		return fmt.Errorf("probe: bad start %q: %w", f[0], err)
	}
	r.Start = time.Unix(0, startNS).UTC()
	if r.Src, err = parseAddrBytes(f[1]); err != nil {
		return fmt.Errorf("probe: bad src: %w", err)
	}
	sport, err := parseUintBytes(f[2], 16)
	if err != nil {
		return fmt.Errorf("probe: bad sport: %w", err)
	}
	r.SrcPort = uint16(sport)
	if r.Dst, err = parseAddrBytes(f[3]); err != nil {
		return fmt.Errorf("probe: bad dst: %w", err)
	}
	dport, err := parseUintBytes(f[4], 16)
	if err != nil {
		return fmt.Errorf("probe: bad dport: %w", err)
	}
	r.DstPort = uint16(dport)
	var ok bool
	if r.Class, ok = classFromBytes(f[5]); !ok {
		return fmt.Errorf("probe: unknown class %q", f[5])
	}
	if r.Proto, ok = protoFromBytes(f[6]); !ok {
		return fmt.Errorf("probe: unknown proto %q", f[6])
	}
	if r.QoS, ok = qosFromBytes(f[7]); !ok {
		return fmt.Errorf("probe: unknown qos %q", f[7])
	}
	payload, err := parseIntBytes(f[8], 64)
	if err != nil {
		return fmt.Errorf("probe: bad payload: %w", err)
	}
	r.PayloadLen = int(payload)
	rtt, err := parseIntBytes(f[9], 64)
	if err != nil {
		return fmt.Errorf("probe: bad rtt: %w", err)
	}
	r.RTT = time.Duration(rtt)
	prtt, err := parseIntBytes(f[10], 64)
	if err != nil {
		return fmt.Errorf("probe: bad payload rtt: %w", err)
	}
	r.PayloadRTT = time.Duration(prtt)
	r.Err = s.internErr(f[11])
	return nil
}

var commaSep = []byte{','}

// internErr converts an err field to a string, reusing one canonical copy
// per distinct message. Probe error strings form a tiny vocabulary
// ("connect timeout", "connection refused", ...), so the hit rate is ~100%
// in steady state and the lookup — map index on string(b), which Go does
// not allocate for — is the only work.
func (s *Scanner) internErr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if v, ok := s.errIntern[string(b)]; ok {
		return v
	}
	v := string(b)
	if s.errIntern == nil {
		s.errIntern = make(map[string]string)
	}
	if len(s.errIntern) < maxInternedErrs {
		s.errIntern[v] = v
	}
	return v
}

// Byte-slice numeric parsers. These accept exactly the inputs
// strconv.ParseInt/ParseUint (base 10) accept — the differential fuzzer
// FuzzScannerVsDecodeBatch pins the equivalence — without the string
// conversion the strconv API forces.

var (
	errSyntax = errors.New("invalid syntax")
	errRange  = errors.New("value out of range")
)

// parseUintBytes is strconv.ParseUint(string(b), 10, bitSize) without the
// string copy. A sign prefix is not permitted, matching strconv.
func parseUintBytes(b []byte, bitSize int) (uint64, error) {
	if len(b) == 0 {
		return 0, errSyntax
	}
	maxVal := uint64(1)<<uint(bitSize) - 1 // bitSize < 64 here; 16 in practice
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errSyntax
		}
		d := uint64(c - '0')
		if n > maxVal/10 {
			return 0, errRange
		}
		n *= 10
		if n > maxVal-d {
			return 0, errRange
		}
		n += d
	}
	return n, nil
}

// parseIntBytes is strconv.ParseInt(string(b), 10, bitSize) without the
// string copy.
func parseIntBytes(b []byte, bitSize int) (int64, error) {
	if len(b) == 0 {
		return 0, errSyntax
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, errSyntax
		}
	}
	cutoff := uint64(1) << uint(bitSize-1) // |min|; max is cutoff-1
	maxVal := cutoff
	if !neg {
		maxVal = cutoff - 1
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errSyntax
		}
		d := uint64(c - '0')
		if n > maxVal/10 {
			return 0, errRange
		}
		n *= 10
		if n > maxVal-d {
			return 0, errRange
		}
		n += d
	}
	if neg {
		return -int64(n-1) - 1, nil // avoids overflow at |min|
	}
	return int64(n), nil
}

// parseAddrBytes parses an IP address from bytes. Canonical dotted-quad
// IPv4 — the overwhelmingly common case in probe records — is parsed
// inline without allocating; anything else (IPv6, zones, malformed input)
// falls back to netip.ParseAddr so acceptance and errors match it exactly.
func parseAddrBytes(b []byte) (netip.Addr, error) {
	if a, ok := tryParseIPv4(b); ok {
		return a, nil
	}
	return netip.ParseAddr(string(b))
}

// tryParseIPv4 parses a canonical dotted quad: four decimal octets 0-255,
// 1-3 digits each, no leading zeros (netip rejects them too). Any doubt
// returns ok=false and the caller defers to netip.ParseAddr, so this can
// never accept or reject an input differently from the stdlib.
func tryParseIPv4(b []byte) (netip.Addr, bool) {
	var quad [4]byte
	field, val, digits := 0, 0, 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == '.' {
			if digits == 0 || field == 4 {
				return netip.Addr{}, false
			}
			quad[field] = byte(val)
			field++
			val, digits = 0, 0
			continue
		}
		c := b[i]
		if c < '0' || c > '9' {
			return netip.Addr{}, false
		}
		if digits > 0 && val == 0 {
			return netip.Addr{}, false // leading zero: let netip decide
		}
		val = val*10 + int(c-'0')
		digits++
		if val > 255 {
			return netip.Addr{}, false
		}
	}
	if field != 4 {
		return netip.Addr{}, false
	}
	return netip.AddrFrom4(quad), true
}

// classFromBytes matches a class wire name without conversion. The
// comparisons compile to length-gated memequal — no allocation, no linear
// scan over a name table.
func classFromBytes(b []byte) (Class, bool) {
	switch {
	case string(b) == "intra-pod":
		return IntraPod, true
	case string(b) == "intra-dc":
		return IntraDC, true
	case string(b) == "inter-dc":
		return InterDC, true
	}
	return 0, false
}

// protoFromBytes matches a protocol wire name without conversion.
func protoFromBytes(b []byte) (Proto, bool) {
	switch {
	case string(b) == "tcp":
		return TCP, true
	case string(b) == "http":
		return HTTP, true
	}
	return 0, false
}

// qosFromBytes matches a QoS wire name without conversion.
func qosFromBytes(b []byte) (QoS, bool) {
	switch {
	case string(b) == "high":
		return QoSHigh, true
	case string(b) == "low":
		return QoSLow, true
	}
	return 0, false
}
