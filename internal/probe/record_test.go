package probe

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Start:      time.Unix(1750000000, 123).UTC(),
		Src:        netip.MustParseAddr("10.0.1.2"),
		SrcPort:    50123,
		Dst:        netip.MustParseAddr("10.0.7.9"),
		DstPort:    8765,
		Class:      IntraDC,
		Proto:      TCP,
		QoS:        QoSHigh,
		PayloadLen: 1024,
		RTT:        268 * time.Microsecond,
		PayloadRTT: 326 * time.Microsecond,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	got, err := ParseCSV(r.MarshalCSV())
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if got != r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordRoundTripFailure(t *testing.T) {
	r := sampleRecord()
	r.Err = "connect timeout"
	r.RTT = 21 * time.Second
	got, err := ParseCSV(r.MarshalCSV())
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if got.Err != "connect timeout" || got.Success() {
		t.Fatalf("failure not preserved: %+v", got)
	}
}

func TestSuccess(t *testing.T) {
	r := sampleRecord()
	if !r.Success() {
		t.Fatal("record with empty Err should be Success")
	}
	r.Err = "x"
	if r.Success() {
		t.Fatal("record with Err should not be Success")
	}
}

func TestErrSanitized(t *testing.T) {
	r := sampleRecord()
	r.Err = "bad,thing\nhappened"
	line := r.MarshalCSV()
	if strings.Count(line, ",") != 11 {
		t.Fatalf("sanitized line has %d commas, want 11: %q", strings.Count(line, ","), line)
	}
	got, err := ParseCSV(line)
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if got.Err != "bad;thing;happened" {
		t.Fatalf("Err = %q", got.Err)
	}
}

func TestParseCSVErrors(t *testing.T) {
	bad := []string{
		"",
		"1,2,3",
		"x,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,high,0,1,0,",
		"1,nope,1,10.0.0.2,2,intra-pod,tcp,high,0,1,0,",
		"1,10.0.0.1,99999,10.0.0.2,2,intra-pod,tcp,high,0,1,0,",
		"1,10.0.0.1,1,10.0.0.2,2,bogus,tcp,high,0,1,0,",
		"1,10.0.0.1,1,10.0.0.2,2,intra-pod,bogus,high,0,1,0,",
		"1,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,bogus,0,1,0,",
		"1,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,high,x,1,0,",
		"1,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,high,0,x,0,",
		"1,10.0.0.1,1,10.0.0.2,2,intra-pod,tcp,high,0,1,x,",
	}
	for _, line := range bad {
		if _, err := ParseCSV(line); err == nil {
			t.Errorf("ParseCSV(%q) succeeded", line)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord(), sampleRecord()}
	recs[1].Class = InterDC
	recs[1].Proto = HTTP
	recs[1].QoS = QoSLow
	recs[2].Err = "refused"
	data := EncodeBatch(recs)
	got, errs := DecodeBatch(data)
	if len(errs) != 0 {
		t.Fatalf("DecodeBatch errs: %v", errs)
	}
	if len(got) != 3 {
		t.Fatalf("DecodeBatch returned %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeBatchSkipsCorruptLines(t *testing.T) {
	r0 := sampleRecord()
	data := []byte(CSVHeader + "\n" + r0.MarshalCSV() + "\ngarbage line\n")
	got, errs := DecodeBatch(data)
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1", len(errs))
	}
}

func TestClassProtoQoSNames(t *testing.T) {
	for _, c := range []Class{IntraPod, IntraDC, InterDC} {
		p, err := ParseClass(c.String())
		if err != nil || p != c {
			t.Fatalf("class %v round trip failed", c)
		}
	}
	for _, p := range []Proto{TCP, HTTP} {
		q, err := ParseProto(p.String())
		if err != nil || q != p {
			t.Fatalf("proto %v round trip failed", p)
		}
	}
	for _, q := range []QoS{QoSHigh, QoSLow} {
		p, err := ParseQoS(q.String())
		if err != nil || p != q {
			t.Fatalf("qos %v round trip failed", q)
		}
	}
	if Class(99).String() != "class(99)" {
		t.Fatal("unknown class name")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(sport, dport uint16, payload uint16, rttUS uint32, cls, proto, qos uint8, fail bool) bool {
		r := Record{
			Start:      time.Unix(int64(rttUS), 0).UTC(),
			Src:        netip.AddrFrom4([4]byte{10, byte(cls), byte(proto), 1}),
			SrcPort:    sport,
			Dst:        netip.AddrFrom4([4]byte{10, byte(qos), 2, 2}),
			DstPort:    dport,
			Class:      Class(int(cls) % 3),
			Proto:      Proto(int(proto) % 2),
			QoS:        QoS(int(qos) % 2),
			PayloadLen: int(payload),
			RTT:        time.Duration(rttUS) * time.Microsecond,
		}
		if fail {
			r.Err = "timeout"
		}
		got, err := ParseCSV(r.MarshalCSV())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCSVNeverPanicsProperty(t *testing.T) {
	// Property: arbitrary byte soup must parse or fail cleanly, never
	// panic — the DSA decodes whatever agents (or disk corruption) left
	// in the store.
	f := func(raw []byte) bool {
		line := string(raw)
		_, _ = ParseCSV(line)
		_, _ = DecodeBatch(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchHandlesCRLF(t *testing.T) {
	r := sampleRecord()
	data := []byte(CSVHeader + "\n" + r.MarshalCSV() + "\n")
	// Windows-origin files: CR before LF must not corrupt the last field.
	crlf := bytes.ReplaceAll(data, []byte("\n"), []byte("\r\n"))
	recs, errs := DecodeBatch(crlf)
	// The current decoder treats the trailing \r as part of the err field
	// (which is empty here), so parsing either succeeds cleanly or skips
	// rows — it must not mis-attribute numeric fields.
	if len(errs) == 0 {
		if len(recs) != 1 {
			t.Fatalf("recs = %d", len(recs))
		}
		if recs[0].RTT != r.RTT {
			t.Fatalf("RTT corrupted by CRLF: %v", recs[0].RTT)
		}
	}
}
