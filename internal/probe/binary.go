package probe

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"time"

	"pingmesh/internal/metrics"
)

// Binary wire format ("PMB1").
//
// Agents historically upload CSV: one ~90-byte line per probe, linear in
// probe count. The binary format ships the same pipeline a second, far
// denser payload kind — per-peer latency sketches (sparse bucket counts of
// the shared metrics.Histogram layout plus exact tallies) — alongside raw
// records for the probes that need per-record identity (anomalies, traced
// probes). One sketch summarizes an entire reporting window of probes to
// one peer, making upload bytes sub-linear in probe count.
//
// Layout (all integers are encoding/binary varints — "uv" unsigned,
// "v" signed zig-zag):
//
//	batch   := "PMB1" payloadLen:uv payload
//	payload := nRecords:uv record* nSketches:uv sketch*
//	record  := start_ns:v addr(src) sport:uv addr(dst) dport:uv
//	           class:byte proto:byte qos:byte payloadLen:v
//	           rtt_ns:v payload_rtt_ns:v errLen:uv errBytes
//	addr    := len:byte(0|4|16) bytes            // 0 = invalid/zero Addr
//	sketch  := addr(src) addr(dst) dport:uv class:byte proto:byte qos:byte
//	           payloadLen:v minStart_ns:v span_ns:uv hist(rtt) hist(payload)
//	hist    := nBuckets:uv [sum_ns:v min_ns:v max_ns:v run*]   // tallies only when nBuckets > 0
//	run     := gap:uv count:uv   // first gap = bucket index; later gaps = idx - prevIdx >= 1
//
// The length prefix makes the format self-delimiting: a cosmos extent is a
// concatenation of upload batches (CSV documents and/or binary batches),
// and the Scanner resynchronizes at the next batch boundary after any
// corruption inside a payload. The magic is only recognized at top level
// (offset 0 or immediately after a newline), so CSV bytes can never be
// misread mid-line as a batch; the one acceptance change is that a CSV
// line *starting* with "PMB1" — previously just a corrupt row — is now
// treated as a binary batch attempt (and, with no valid header, still
// surfaces as a row error).
//
// Versioning: the trailing '1' in the magic is the version. A future
// format bumps it to "PMB2"; old readers fail the magic check and report
// the batch as one corrupt row instead of misparsing it.

const binaryMagic = "PMB1"

var (
	errBadBatchHeader = errors.New("probe: bad binary batch header")
	errBadBatch       = errors.New("probe: corrupt binary batch")
)

// maxSketchCount bounds the total observation count a decoded wire
// histogram may claim, so corrupt or adversarial input cannot smuggle
// absurd tallies into downstream aggregates.
const maxSketchCount = 1 << 48

// hasBinaryMagic reports whether b starts a binary batch.
func hasBinaryMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == 'P' && b[1] == 'M' && b[2] == 'B' && b[3] == '1'
}

// PeerSketch is the encode-side aggregate for one peer: the identity
// fields shared by every summarized probe, the time range covered, and the
// latency histograms. Payload may be nil (or empty) when no probe carried
// a payload echo. All summarized probes are successful non-anomalous ones
// — failures and outliers ship as raw records so they keep per-record
// identity.
type PeerSketch struct {
	Src        netip.Addr
	Dst        netip.Addr
	DstPort    uint16
	Class      Class
	Proto      Proto
	QoS        QoS
	PayloadLen int
	MinStart   time.Time
	MaxStart   time.Time
	RTT        *metrics.Histogram
	Payload    *metrics.Histogram
}

// AppendBinaryBatch appends one binary batch encoding recs and sketches to
// dst and returns the extended slice. Like AppendCSV it allocates nothing
// beyond growth of dst, so callers reusing dst across uploads encode at
// zero allocations in steady state. Class/Proto/QoS values must be valid
// wire values (they are encoded as single bytes).
func AppendBinaryBatch(dst []byte, recs []Record, sketches []PeerSketch) []byte {
	dst = append(dst, binaryMagic...)
	payloadStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for i := range recs {
		dst = appendBinRecord(dst, &recs[i])
	}
	dst = binary.AppendUvarint(dst, uint64(len(sketches)))
	for i := range sketches {
		dst = appendBinSketch(dst, &sketches[i])
	}
	// Splice the length prefix in front of the payload: append the varint
	// (growing dst by its width), shift the payload right with one
	// overlap-safe copy, then write the varint into the gap.
	plen := len(dst) - payloadStart
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(plen))
	dst = append(dst, scratch[:n]...)
	copy(dst[payloadStart+n:], dst[payloadStart:payloadStart+plen])
	copy(dst[payloadStart:payloadStart+n], scratch[:n])
	return dst
}

func appendBinAddr(dst []byte, a netip.Addr) []byte {
	switch {
	case !a.IsValid():
		return append(dst, 0)
	case a.Is4():
		b := a.As4()
		dst = append(dst, 4)
		return append(dst, b[:]...)
	default:
		b := a.As16()
		dst = append(dst, 16)
		return append(dst, b[:]...)
	}
}

func appendBinRecord(dst []byte, r *Record) []byte {
	dst = binary.AppendVarint(dst, r.Start.UnixNano())
	dst = appendBinAddr(dst, r.Src)
	dst = binary.AppendUvarint(dst, uint64(r.SrcPort))
	dst = appendBinAddr(dst, r.Dst)
	dst = binary.AppendUvarint(dst, uint64(r.DstPort))
	dst = append(dst, byte(r.Class), byte(r.Proto), byte(r.QoS))
	dst = binary.AppendVarint(dst, int64(r.PayloadLen))
	dst = binary.AppendVarint(dst, int64(r.RTT))
	dst = binary.AppendVarint(dst, int64(r.PayloadRTT))
	dst = binary.AppendUvarint(dst, uint64(len(r.Err)))
	return append(dst, r.Err...)
}

func appendBinSketch(dst []byte, sk *PeerSketch) []byte {
	dst = appendBinAddr(dst, sk.Src)
	dst = appendBinAddr(dst, sk.Dst)
	dst = binary.AppendUvarint(dst, uint64(sk.DstPort))
	dst = append(dst, byte(sk.Class), byte(sk.Proto), byte(sk.QoS))
	dst = binary.AppendVarint(dst, int64(sk.PayloadLen))
	dst = binary.AppendVarint(dst, sk.MinStart.UnixNano())
	dst = binary.AppendUvarint(dst, uint64(sk.MaxStart.UnixNano()-sk.MinStart.UnixNano()))
	dst = appendBinHist(dst, sk.RTT)
	return appendBinHist(dst, sk.Payload)
}

func appendBinHist(dst []byte, h *metrics.Histogram) []byte {
	if h == nil || h.Count() == 0 {
		return binary.AppendUvarint(dst, 0)
	}
	n := 0
	it := h.Buckets()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendVarint(dst, int64(h.Sum()))
	dst = binary.AppendVarint(dst, int64(h.Min()))
	dst = binary.AppendVarint(dst, int64(h.Max()))
	prev := -1
	it = h.Buckets()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if prev < 0 {
			dst = binary.AppendUvarint(dst, uint64(b.Index))
		} else {
			dst = binary.AppendUvarint(dst, uint64(b.Index-prev))
		}
		prev = b.Index
		dst = binary.AppendUvarint(dst, b.Count)
	}
	return dst
}

// SketchHist is one decoded wire histogram: the exact tallies plus the raw
// bucket runs, which alias the scanned input buffer (zero-copy — valid
// only while the buffer is). An empty histogram has Count == 0.
type SketchHist struct {
	Count uint64
	Sum   int64
	MinNS int64
	MaxNS int64
	runs  []byte // validated run* bytes, aliasing the batch payload
	n     int    // number of runs
}

// Buckets returns an iterator over the histogram's non-empty buckets in
// ascending index order. The runs were validated at decode time, so every
// yielded index is within the shared latency layout.
func (h *SketchHist) Buckets() SketchBucketIter {
	return SketchBucketIter{runs: h.runs, rem: h.n, idx: -1}
}

// SketchBucketIter iterates the buckets of a SketchHist.
type SketchBucketIter struct {
	runs []byte
	rem  int
	idx  int
}

// Next returns the next bucket, or ok=false when exhausted.
func (it *SketchBucketIter) Next() (b metrics.Bucket, ok bool) {
	if it.rem == 0 {
		return metrics.Bucket{}, false
	}
	it.rem--
	gap, n := binary.Uvarint(it.runs)
	it.runs = it.runs[n:]
	c, n := binary.Uvarint(it.runs)
	it.runs = it.runs[n:]
	if it.idx < 0 {
		it.idx = int(gap)
	} else {
		it.idx += int(gap)
	}
	return metrics.Bucket{Index: it.idx, Count: c}, true
}

// AddTo folds the wire histogram into dst: bucket counts via AddBucket,
// then the exact tallies. Folding allocates nothing and costs one pass
// over the non-empty buckets — no per-observation replay.
func (h *SketchHist) AddTo(dst *metrics.Histogram) {
	if h.Count == 0 {
		return
	}
	it := h.Buckets()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		dst.AddBucket(b.Index, b.Count)
	}
	dst.AddTallies(h.Sum, h.MinNS, h.MaxNS)
}

// Sketch is one decoded per-peer sketch. Like Scanner's Record, the value
// returned by Scanner.Sketch is owned by the Scanner and overwritten by
// the next ScanEntry; its histograms alias the input buffer.
type Sketch struct {
	Src        netip.Addr
	Dst        netip.Addr
	DstPort    uint16
	Class      Class
	Proto      Proto
	QoS        QoS
	PayloadLen int
	MinStart   time.Time
	MaxStart   time.Time
	RTT        SketchHist
	Payload    SketchHist
}

// Records returns the number of probe outcomes the sketch summarizes.
func (sk *Sketch) Records() uint64 { return sk.RTT.Count }

// FillRecord overwrites r with a representative record for the sketch: the
// identity fields every summarized probe shares, Start = MinStart, and
// success-path zero values elsewhere. Filters and group keys that only
// read identity fields (addresses, ports, class/proto/qos, payload length)
// evaluate identically on the representative as they would on any
// summarized record.
func (sk *Sketch) FillRecord(r *Record) {
	*r = Record{
		Start:      sk.MinStart,
		Src:        sk.Src,
		Dst:        sk.Dst,
		DstPort:    sk.DstPort,
		Class:      sk.Class,
		Proto:      sk.Proto,
		QoS:        sk.QoS,
		PayloadLen: sk.PayloadLen,
	}
}

// Varint decode helpers: bounds-checked reads within d, returning the new
// offset and ok=false on truncation/overflow.

func getUvarint(d []byte, off int) (uint64, int, bool) {
	v, n := binary.Uvarint(d[off:])
	if n <= 0 {
		return 0, off, false
	}
	return v, off + n, true
}

func getVarint(d []byte, off int) (int64, int, bool) {
	v, n := binary.Varint(d[off:])
	if n <= 0 {
		return 0, off, false
	}
	return v, off + n, true
}

func getBinAddr(d []byte, off int) (netip.Addr, int, bool) {
	if off >= len(d) {
		return netip.Addr{}, off, false
	}
	switch n := d[off]; n {
	case 0:
		return netip.Addr{}, off + 1, true
	case 4:
		if off+5 > len(d) {
			return netip.Addr{}, off, false
		}
		return netip.AddrFrom4([4]byte(d[off+1 : off+5])), off + 5, true
	case 16:
		if off+17 > len(d) {
			return netip.Addr{}, off, false
		}
		return netip.AddrFrom16([16]byte(d[off+1 : off+17])), off + 17, true
	default:
		return netip.Addr{}, off, false
	}
}

// parseBinRecord decodes one record at s.off (bounded by s.binEnd) into
// s.rec, advancing s.off. Like the CSV path, the Err string is interned so
// steady-state decode allocates nothing.
func (s *Scanner) parseBinRecord() error {
	d := s.data[:s.binEnd]
	off := s.off
	r := &s.rec
	var ok bool
	var v int64
	var u uint64
	if v, off, ok = getVarint(d, off); !ok {
		return errBadBatch
	}
	r.Start = time.Unix(0, v).UTC()
	if r.Src, off, ok = getBinAddr(d, off); !ok {
		return errBadBatch
	}
	if u, off, ok = getUvarint(d, off); !ok || u > 0xffff {
		return errBadBatch
	}
	r.SrcPort = uint16(u)
	if r.Dst, off, ok = getBinAddr(d, off); !ok {
		return errBadBatch
	}
	if u, off, ok = getUvarint(d, off); !ok || u > 0xffff {
		return errBadBatch
	}
	r.DstPort = uint16(u)
	if off+3 > len(d) {
		return errBadBatch
	}
	class, proto, qos := d[off], d[off+1], d[off+2]
	off += 3
	if class > byte(InterDC) || proto > byte(HTTP) || qos > byte(QoSLow) {
		return errBadBatch
	}
	r.Class, r.Proto, r.QoS = Class(class), Proto(proto), QoS(qos)
	if v, off, ok = getVarint(d, off); !ok {
		return errBadBatch
	}
	r.PayloadLen = int(v)
	if v, off, ok = getVarint(d, off); !ok {
		return errBadBatch
	}
	r.RTT = time.Duration(v)
	if v, off, ok = getVarint(d, off); !ok {
		return errBadBatch
	}
	r.PayloadRTT = time.Duration(v)
	if u, off, ok = getUvarint(d, off); !ok || u > uint64(len(d)-off) {
		return errBadBatch
	}
	r.Err = s.internErr(d[off : off+int(u)])
	s.off = off + int(u)
	return nil
}

// parseBinSketch decodes one sketch at s.off (bounded by s.binEnd) into
// s.sk, advancing s.off.
func (s *Scanner) parseBinSketch() error {
	d := s.data[:s.binEnd]
	off := s.off
	sk := &s.sk
	var ok bool
	var v int64
	var u uint64
	if sk.Src, off, ok = getBinAddr(d, off); !ok {
		return errBadBatch
	}
	if sk.Dst, off, ok = getBinAddr(d, off); !ok {
		return errBadBatch
	}
	if u, off, ok = getUvarint(d, off); !ok || u > 0xffff {
		return errBadBatch
	}
	sk.DstPort = uint16(u)
	if off+3 > len(d) {
		return errBadBatch
	}
	class, proto, qos := d[off], d[off+1], d[off+2]
	off += 3
	if class > byte(InterDC) || proto > byte(HTTP) || qos > byte(QoSLow) {
		return errBadBatch
	}
	sk.Class, sk.Proto, sk.QoS = Class(class), Proto(proto), QoS(qos)
	if v, off, ok = getVarint(d, off); !ok {
		return errBadBatch
	}
	sk.PayloadLen = int(v)
	if v, off, ok = getVarint(d, off); !ok {
		return errBadBatch
	}
	sk.MinStart = time.Unix(0, v).UTC()
	if u, off, ok = getUvarint(d, off); !ok || u > uint64(1<<62) {
		return errBadBatch
	}
	sk.MaxStart = time.Unix(0, v+int64(u)).UTC()
	var err error
	if off, err = parseBinHist(d, off, &sk.RTT); err != nil {
		return err
	}
	if off, err = parseBinHist(d, off, &sk.Payload); err != nil {
		return err
	}
	// A sketch that summarizes nothing is meaningless on the wire.
	if sk.RTT.Count == 0 {
		return errBadBatch
	}
	s.off = off
	return nil
}

// parseBinHist decodes and validates one wire histogram, leaving h.runs
// aliasing the validated run bytes so iteration needs no re-checking.
func parseBinHist(d []byte, off int, h *SketchHist) (int, error) {
	nb, off, ok := getUvarint(d, off)
	if !ok {
		return off, errBadBatch
	}
	*h = SketchHist{}
	if nb == 0 {
		return off, nil
	}
	if nb > uint64(metrics.LatencyBucketCount()) {
		return off, errBadBatch
	}
	if h.Sum, off, ok = getVarint(d, off); !ok {
		return off, errBadBatch
	}
	if h.MinNS, off, ok = getVarint(d, off); !ok {
		return off, errBadBatch
	}
	if h.MaxNS, off, ok = getVarint(d, off); !ok || h.MaxNS < h.MinNS {
		return off, errBadBatch
	}
	runsStart := off
	idx := -1
	var total uint64
	for i := uint64(0); i < nb; i++ {
		var gap, c uint64
		if gap, off, ok = getUvarint(d, off); !ok {
			return off, errBadBatch
		}
		if idx < 0 {
			idx = int(gap)
		} else {
			if gap == 0 {
				return off, errBadBatch
			}
			idx += int(gap)
		}
		if idx < 0 || idx >= metrics.LatencyBucketCount() {
			return off, errBadBatch
		}
		if c, off, ok = getUvarint(d, off); !ok || c == 0 {
			return off, errBadBatch
		}
		total += c
		if total > maxSketchCount {
			return off, errBadBatch
		}
	}
	h.Count = total
	h.runs = d[runsStart:off]
	h.n = int(nb)
	return off, nil
}

// Binary batch state machine, driven by Scanner.ScanEntry.

const (
	binNone int8 = iota
	binRecords
	binSketches
)

// startBinaryBatch parses a batch header at s.off (which hasBinaryMagic
// matched) and enters the records phase. A header whose length cannot be
// trusted is unrecoverable — there is no resync point — so the rest of the
// input is consumed and reported as one corrupt row.
func (s *Scanner) startBinaryBatch() EntryKind {
	off := s.off + len(binaryMagic)
	plen, n := binary.Uvarint(s.data[off:])
	if n <= 0 || plen > uint64(len(s.data)-off-n) {
		s.off = len(s.data)
		s.rowErr = errBadBatchHeader
		return EntryRecord
	}
	off += n
	s.binEnd = off + int(plen)
	s.off = off
	nrec, n := binary.Uvarint(s.data[s.off:s.binEnd])
	// Every record is >= 13 bytes on the wire, so a count beyond the
	// payload length is certainly corrupt; checking here keeps the loop
	// counter within the input size.
	if n <= 0 || nrec > plen {
		return s.abortBatch(errBadBatch)
	}
	s.off += n
	s.binPhase = binRecords
	s.binRemain = int(nrec)
	return entryAgain
}

// abortBatch abandons the current batch after corruption inside its
// payload: the trusted length prefix gives the resync point, so only this
// batch is lost (as one corrupt row) and scanning resumes at the next
// batch or CSV line.
func (s *Scanner) abortBatch(err error) EntryKind {
	s.off = s.binEnd
	s.binPhase = binNone
	s.binRemain = 0
	s.rowErr = err
	return EntryRecord
}

// scanBinary yields the next entry of the batch in progress, or entryAgain
// once the batch is fully consumed.
func (s *Scanner) scanBinary() EntryKind {
	if s.binPhase == binRecords {
		if s.binRemain > 0 {
			s.binRemain--
			if err := s.parseBinRecord(); err != nil {
				return s.abortBatch(err)
			}
			s.rowErr = nil
			return EntryRecord
		}
		nsk, n := binary.Uvarint(s.data[s.off:s.binEnd])
		if n <= 0 || nsk > uint64(s.binEnd-s.off) {
			return s.abortBatch(errBadBatch)
		}
		s.off += n
		s.binPhase = binSketches
		s.binRemain = int(nsk)
	}
	if s.binRemain > 0 {
		s.binRemain--
		if err := s.parseBinSketch(); err != nil {
			return s.abortBatch(err)
		}
		s.rowErr = nil
		return EntrySketch
	}
	if s.off != s.binEnd {
		// Trailing bytes after the declared entries: corrupt.
		return s.abortBatch(errBadBatch)
	}
	s.binPhase = binNone
	return entryAgain
}
