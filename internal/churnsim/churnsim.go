// Package churnsim is the control-plane churn harness: it drives a very
// large simulated agent fleet (up to millions) against real replicated
// Controllers through a rolling topology update, on simulated time, and
// measures what the paper's §3.3.2 pull-based design costs at scale —
// convergence time, bytes on the wire (delta vs full serving), the 304
// revalidation ratio, and controller CPU.
//
// Modeling note: generating one pinglist file per million agents is
// neither feasible nor necessary. Pinglist generation is rank-matched per
// DC, so a real fleet has only as many distinct pinglist shapes as it has
// servers in the topology (thousands); a million agents polling a
// controller are, from the control plane's point of view, that many
// conditional GETs spread over those shapes. The harness therefore builds
// a realistic topology (thousands of servers, paper-scale peer counts)
// and distributes the simulated agents round-robin over its server names.
// Every fetch still exercises the real Controller decision procedure
// (controller.ServeFetch: 304 / ringed delta / full) with real bodies and
// real counters, so CPU, ratio, and byte numbers are measured, not
// modeled.
//
// Agents are not real agent.Agent instances — at 1M an agent must be tens
// of bytes, not a goroutine with three loops. Each is a struct with a
// server index, its last-seen ETag, and an xorshift RNG; a binary event
// heap sequences their jittered polls, joins/leaves, and retry backoff on
// a simclock that only ever jumps to the next event.
package churnsim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pingmesh/internal/controller"
	"pingmesh/internal/core"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
)

// Config describes one churn-harness run.
type Config struct {
	// Base is the fleet at the start of the run.
	Base topology.Spec
	// Updated is the fleet after the rolling update, published on every
	// replica at the end of the warmup interval. Append-only growth (new
	// podsets at the end of a DC) keeps existing server addresses stable,
	// which is what makes delta updates small.
	Updated topology.Spec
	// Gen configures pinglist generation on the controllers.
	Gen core.GeneratorConfig

	// Agents is the simulated fleet size. Required.
	Agents int
	// Replicas is how many controller replicas serve the fleet. Default 2.
	Replicas int

	// FetchInterval is the agents' poll cadence on sim time. Default 60s.
	FetchInterval time.Duration
	// FetchJitter shortens each wait by up to this fraction, like
	// agent.Config.FetchJitter. Default 0.5.
	FetchJitter float64
	// Churn is the probability that an agent leaves at one of its poll
	// instants (rejoining with cold state up to an interval later).
	Churn float64
	// DisableDelta turns off delta serving and requesting: the baseline
	// full-body control plane the delta path is compared against.
	DisableDelta bool

	// KillReplica takes replica 0 down at the instant the update
	// publishes — the worst case: a refresh storm hitting a half-dead
	// VIP pool. Agents routed to it fail and retry with capped
	// exponential backoff until the (simulated) SLB health prober ejects
	// it after DetectDelay.
	KillReplica bool
	// DetectDelay is the simulated SLB failure-detection time. Default 2s.
	DetectDelay time.Duration
	// BackoffBase/BackoffMax bound the agents' retry backoff.
	// Defaults 100ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// WarmupIntervals is how many fetch intervals the fleet runs in
	// steady state before the update publishes. Default 1.
	WarmupIntervals int
	// Seed makes runs reproducible. Same seed, same schedule.
	Seed uint64
	// Start anchors sim time. Default 2026-07-01T00:00:00Z.
	Start time.Time
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.FetchInterval <= 0 {
		c.FetchInterval = time.Minute
	}
	if c.FetchJitter <= 0 {
		c.FetchJitter = 0.5
	}
	if c.FetchJitter > 1 {
		c.FetchJitter = 1
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.WarmupIntervals <= 0 {
		c.WarmupIntervals = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// Report is one run's measurements. Byte counts distinguish the
// gzip-negotiated wire cost (what real agents transfer) from identity
// encoding; "propagation" counts only the window between the update
// publishing and the fleet converging, which is where delta and full
// serving differ.
type Report struct {
	Agents       int  `json:"agents"`
	Replicas     int  `json:"replicas"`
	Servers      int  `json:"servers"`
	DeltaEnabled bool `json:"deltaEnabled"`

	FetchIntervalSec float64 `json:"fetchIntervalSec"`
	FetchJitter      float64 `json:"fetchJitter"`
	Churn            float64 `json:"churn"`
	ReplicaKilled    bool    `json:"replicaKilled"`

	Fetches       int64 `json:"fetches"`
	FullFetches   int64 `json:"fullFetches"`
	DeltaFetches  int64 `json:"deltaFetches"`
	NotModified   int64 `json:"notModified"`
	FailedFetches int64 `json:"failedFetches"`
	Retries       int64 `json:"retries"`
	Joins         int64 `json:"joins"`
	Leaves        int64 `json:"leaves"`

	NotModifiedRatio float64 `json:"notModifiedRatio"`

	BytesWire     int64 `json:"bytesWire"`
	BytesIdentity int64 `json:"bytesIdentity"`
	// Propagation window: publish → convergence.
	PropagationBytesWire     int64 `json:"propagationBytesWire"`
	PropagationBytesIdentity int64 `json:"propagationBytesIdentity"`
	// Update distribution alone: bytes serving fetches that moved a
	// stale agent to the new generation. Churn joins fetch full bodies
	// under either serving mode, so this isolates what the update itself
	// cost — the number delta serving is graded on.
	UpdateBytesWire     int64 `json:"updateBytesWire"`
	UpdateBytesIdentity int64 `json:"updateBytesIdentity"`
	// Body sizes sampled from the run, for scale context.
	SampleFullBytesIdentity  int64 `json:"sampleFullBytesIdentity"`
	SampleFullBytesWire      int64 `json:"sampleFullBytesWire"`
	SampleDeltaBytesIdentity int64 `json:"sampleDeltaBytesIdentity,omitempty"`
	SampleDeltaBytesWire     int64 `json:"sampleDeltaBytesWire,omitempty"`

	// ConvergenceSec is sim seconds from the update publishing until no
	// live agent still holds a stale pinglist; -1 if the run ended first.
	ConvergenceSec          float64  `json:"convergenceSec"`
	ConvergedWithinInterval bool     `json:"convergedWithinInterval"`
	VersionsSeen            []string `json:"versionsSeen"`

	// Controller cost in real (wall) seconds: serving all fetches, and
	// generating pinglists across all replicas and generations.
	ControllerServeCPUSec    float64 `json:"controllerServeCPUSec"`
	ControllerGenerateCPUSec float64 `json:"controllerGenerateCPUSec"`
	WallSec                  float64 `json:"wallSec"`
}

// agentState is one simulated agent: 1M of these must stay cheap. The
// etag string shares the controller's per-body allocation, so the real
// footprint is ~50 bytes per agent.
type agentState struct {
	server  int32 // index into the harness's server-name table
	attempt uint8 // consecutive failed fetches, drives backoff
	alive   bool
	stale   bool   // counted in staleCount (post-publish bookkeeping)
	rng     uint64 // xorshift64* state
	etag    string // last validator seen; "" = cold
}

// event is one heap entry: an agent's next action, or a sentinel.
type event struct {
	at  int64 // sim UnixNano
	idx int32 // agent index, or a sentinel below
}

const (
	evUpdate int32 = -1 // publish the rolling update on every replica
	evDetect int32 = -2 // SLB health prober ejects the killed replica
)

// eventHeap is a hand-rolled binary min-heap by time; container/heap
// would box every event into an interface.
type eventHeap struct{ ev []event }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ev[p].at <= h.ev[i].at {
			break
		}
		h.ev[p], h.ev[i] = h.ev[i], h.ev[p]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.ev[l].at < h.ev[m].at {
			m = l
		}
		if r < n && h.ev[r].at < h.ev[m].at {
			m = r
		}
		if m == i {
			break
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
	return top
}

func (h *eventHeap) len() int { return len(h.ev) }

// seedFor spreads the run seed over agent indices (splitmix64 step), so
// adjacent agents get decorrelated streams and seed 0 still works.
func seedFor(seed uint64, i int) uint64 {
	z := seed + uint64(i)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next steps an xorshift64* generator.
func next(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x * 0x2545f4914f6cdd1d
}

// unitFloat draws from [0, 1).
func unitFloat(s *uint64) float64 {
	return float64(next(s)>>11) / float64(1<<53)
}

// Run executes one churn simulation and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Agents <= 0 {
		return nil, errors.New("churnsim: Agents must be positive")
	}
	wallStart := time.Now()

	baseTop, err := topology.Build(cfg.Base)
	if err != nil {
		return nil, fmt.Errorf("churnsim: base: %w", err)
	}
	updatedTop, err := topology.Build(cfg.Updated)
	if err != nil {
		return nil, fmt.Errorf("churnsim: updated: %w", err)
	}

	sim := simclock.NewSim(cfg.Start)
	opts := controller.Options{}
	if cfg.DisableDelta {
		opts.DeltaRing = -1
	}
	var genCPU time.Duration
	replicas := make([]*controller.Controller, cfg.Replicas)
	for i := range replicas {
		t0 := time.Now()
		replicas[i], err = controller.NewWithOptions(baseTop, cfg.Gen, sim, opts)
		genCPU += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("churnsim: replica %d: %w", i, err)
		}
	}

	servers := baseTop.Servers()
	names := make([]string, len(servers))
	for i := range servers {
		names[i] = servers[i].Name
	}
	if err := checkReplicaAgreement(replicas, names[0]); err != nil {
		return nil, err
	}

	rep := &Report{
		Agents: cfg.Agents, Replicas: cfg.Replicas, Servers: len(names),
		DeltaEnabled:     !cfg.DisableDelta,
		FetchIntervalSec: cfg.FetchInterval.Seconds(),
		FetchJitter:      cfg.FetchJitter,
		Churn:            cfg.Churn,
		ReplicaKilled:    cfg.KillReplica,
	}

	agents := make([]agentState, cfg.Agents)
	h := &eventHeap{ev: make([]event, 0, cfg.Agents+2)}
	start := cfg.Start.UnixNano()
	interval := int64(cfg.FetchInterval)
	for i := range agents {
		a := &agents[i]
		a.server = int32(i % len(names))
		a.alive = true
		a.rng = seedFor(cfg.Seed, i)
		// First polls spread uniformly over one interval: a fleet that
		// came up over time, not a thundering herd at t=0.
		h.push(event{at: start + int64(next(&a.rng)%uint64(interval)), idx: int32(i)})
	}

	updateAt := start + int64(cfg.WarmupIntervals)*interval
	h.push(event{at: updateAt, idx: evUpdate})
	// Hard stop: if the fleet hasn't converged three intervals after the
	// update, report non-convergence rather than run forever.
	endAt := updateAt + 3*interval

	var (
		published   bool
		converged   bool
		publishedAt int64
		staleCount  int
		replicaDown = -1 // index routed-but-failing; -2 once ejected
		rr          uint64
		serveCPU    time.Duration
		versions    = map[string]bool{}
	)

	for h.len() > 0 {
		e := h.pop()
		if e.at > endAt {
			break
		}
		sim.AdvanceTo(time.Unix(0, e.at))

		switch e.idx {
		case evUpdate:
			for _, c := range replicas {
				t0 := time.Now()
				if err := c.UpdateTopology(updatedTop); err != nil {
					return nil, fmt.Errorf("churnsim: update: %w", err)
				}
				genCPU += time.Since(t0)
			}
			if err := checkReplicaAgreement(replicas, names[0]); err != nil {
				return nil, err
			}
			published = true
			publishedAt = e.at
			staleCount = 0
			for i := range agents {
				if agents[i].alive {
					agents[i].stale = true
					staleCount++
				}
			}
			if cfg.KillReplica && cfg.Replicas > 1 {
				replicaDown = 0
				h.push(event{at: e.at + int64(cfg.DetectDelay), idx: evDetect})
			}
			continue

		case evDetect:
			if replicaDown >= 0 {
				replicaDown = -2 // ejected from rotation: no more failures
			}
			continue
		}

		a := &agents[e.idx]
		if !a.alive {
			// Rejoin with cold state.
			a.alive = true
			a.etag = ""
			a.attempt = 0
			rep.Joins++
			if published && !converged {
				a.stale = true
				staleCount++
			}
		} else if cfg.Churn > 0 && unitFloat(&a.rng) < cfg.Churn {
			// Leave now, rejoin up to one interval later.
			a.alive = false
			rep.Leaves++
			if a.stale {
				a.stale = false
				staleCount--
				if published && !converged && staleCount == 0 {
					converged = true
					rep.ConvergenceSec = time.Duration(e.at - publishedAt).Seconds()
				}
			}
			h.push(event{at: e.at + 1 + int64(next(&a.rng)%uint64(interval)), idx: e.idx})
			continue
		}

		// Route through the VIP: round-robin over replicas. A killed but
		// not-yet-ejected replica refuses the connection; the agent backs
		// off and retries, like controller.Client would.
		ri := int(rr % uint64(len(replicas)))
		rr++
		if ri == replicaDown {
			rep.FailedFetches++
			rep.Retries++
			if a.attempt < 63 {
				a.attempt++
			}
			h.push(event{at: e.at + backoffDelay(cfg, a), idx: e.idx})
			continue
		}
		if replicaDown == -2 && ri == 0 {
			ri = 1 + int(rr%uint64(len(replicas)-1)) // ejected: skip it
		}

		wantDelta := !cfg.DisableDelta && a.etag != ""
		t0 := time.Now()
		out := replicas[ri].ServeFetch(names[a.server], a.etag, wantDelta)
		serveCPU += time.Since(t0)
		a.attempt = 0
		versions[out.Version] = true

		rep.Fetches++
		rep.BytesWire += out.BytesOnWire
		rep.BytesIdentity += out.BytesIdentity
		if published && !converged {
			rep.PropagationBytesWire += out.BytesOnWire
			rep.PropagationBytesIdentity += out.BytesIdentity
		}
		if a.stale && a.etag != "" {
			// Cold joins (etag "") need a full body under either serving
			// mode; only warm agents moving between generations measure
			// the update distribution itself.
			rep.UpdateBytesWire += out.BytesOnWire
			rep.UpdateBytesIdentity += out.BytesIdentity
		}
		switch out.Kind {
		case controller.FetchNotModified:
			rep.NotModified++
		case controller.FetchDelta:
			rep.DeltaFetches++
			if rep.SampleDeltaBytesWire == 0 {
				rep.SampleDeltaBytesWire = out.BytesOnWire
				rep.SampleDeltaBytesIdentity = out.BytesIdentity
			}
		case controller.FetchFull:
			rep.FullFetches++
			if rep.SampleFullBytesWire == 0 {
				rep.SampleFullBytesWire = out.BytesOnWire
				rep.SampleFullBytesIdentity = out.BytesIdentity
			}
		case controller.FetchNotFound:
			return nil, fmt.Errorf("churnsim: no pinglist for %s", names[a.server])
		}
		a.etag = out.ETag
		if a.stale {
			a.stale = false
			staleCount--
			if staleCount == 0 {
				converged = true
				rep.ConvergenceSec = time.Duration(e.at - publishedAt).Seconds()
			}
		}
		if converged {
			// Ending right at convergence keeps the delta and full-body
			// runs byte-comparable: both measure exactly one propagation.
			break
		}
		h.push(event{at: e.at + jitteredWait(cfg, a), idx: e.idx})
	}

	if !converged {
		rep.ConvergenceSec = -1
	}
	rep.ConvergedWithinInterval = converged &&
		rep.ConvergenceSec <= cfg.FetchInterval.Seconds()
	if rep.Fetches > 0 {
		rep.NotModifiedRatio = float64(rep.NotModified) / float64(rep.Fetches)
	}
	for v := range versions {
		rep.VersionsSeen = append(rep.VersionsSeen, v)
	}
	sort.Strings(rep.VersionsSeen)
	rep.ControllerServeCPUSec = serveCPU.Seconds()
	rep.ControllerGenerateCPUSec = genCPU.Seconds()
	rep.WallSec = time.Since(wallStart).Seconds()
	return rep, nil
}

// jitteredWait draws the agent's next poll delay, mirroring the real
// agent's FetchJitter: uniform in [Interval*(1-j), Interval].
func jitteredWait(cfg Config, a *agentState) int64 {
	iv := float64(cfg.FetchInterval)
	return int64(iv * (1 - cfg.FetchJitter*unitFloat(&a.rng)))
}

// backoffDelay mirrors controller.Client's capped exponential backoff
// with equal jitter: nominal base<<attempt capped at max, drawn from
// [nominal/2, nominal].
func backoffDelay(cfg Config, a *agentState) int64 {
	d := cfg.BackoffBase << (a.attempt - 1)
	if d <= 0 || d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	half := int64(d) / 2
	return half + int64(next(&a.rng)%uint64(half+1))
}

// checkReplicaAgreement verifies the replicas are interchangeable:
// deterministic generation must give every replica the same version and
// byte-identical bodies (spot-checked via one ETag).
func checkReplicaAgreement(replicas []*controller.Controller, probe string) error {
	for i := 1; i < len(replicas); i++ {
		if v0, vi := replicas[0].Version(), replicas[i].Version(); v0 != vi {
			return fmt.Errorf("churnsim: replica version divergence: %s vs %s", v0, vi)
		}
		if e0, ei := replicas[0].ETag(probe), replicas[i].ETag(probe); e0 != ei {
			return fmt.Errorf("churnsim: replica etag divergence on %s", probe)
		}
	}
	return nil
}
