package churnsim

import (
	"reflect"
	"testing"
	"time"

	"pingmesh/internal/core"
	"pingmesh/internal/topology"
)

// smokeSpec is a small fleet whose pinglists are still big enough that
// delta patches beat gzipped full bodies: the payload-probe and low-QoS
// variants triple the peer list, like the paper's real configurations.
func smokeSpec(dc1Podsets int) topology.Spec {
	return topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: dc1Podsets, PodsPerPodset: 6, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
		{Name: "DC2", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}}
}

func smokeConfig(agents int) Config {
	gen := core.DefaultGeneratorConfig()
	gen.PayloadBytes = 800
	gen.WithLowQoS = true
	gen.LowQoSPort = 8766
	return Config{
		Base:          smokeSpec(8),
		Updated:       smokeSpec(9),
		Gen:           gen,
		Agents:        agents,
		Replicas:      2,
		FetchInterval: time.Minute,
		FetchJitter:   0.5,
		Churn:         0.02,
		KillReplica:   true,
		DetectDelay:   2 * time.Second,
		Seed:          1,
	}
}

// TestChurnHarnessSmoke runs a deterministic mid-size churn simulation —
// thousands of agents, two replicas, one replica killed at publish — and
// checks every property the million-agent run is graded on: convergence
// within one refresh interval, no wrong-generation reads, deltas actually
// served, failover exercised, and delta propagation cheaper than the
// full-body baseline under the identical schedule.
func TestChurnHarnessSmoke(t *testing.T) {
	cfg := smokeConfig(10000)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !rep.ConvergedWithinInterval {
		t.Fatalf("fleet did not converge within one interval: %+v", rep)
	}
	if rep.ConvergenceSec <= 0 {
		t.Fatalf("ConvergenceSec = %v", rep.ConvergenceSec)
	}
	// Agents must only ever observe the two generations in play.
	for _, v := range rep.VersionsSeen {
		if v != "gen-1" && v != "gen-2" {
			t.Fatalf("wrong-generation read: %v", rep.VersionsSeen)
		}
	}
	if rep.DeltaFetches == 0 {
		t.Fatal("no delta fetches in a delta-enabled run")
	}
	if rep.NotModified == 0 {
		t.Fatal("no 304s: steady state never revalidated")
	}
	if rep.FailedFetches == 0 || rep.Retries == 0 {
		t.Fatal("killed replica produced no failed fetches")
	}
	if rep.Joins == 0 || rep.Leaves == 0 {
		t.Fatal("churn produced no joins/leaves")
	}
	if rep.SampleDeltaBytesWire == 0 ||
		rep.SampleDeltaBytesWire >= rep.SampleFullBytesWire {
		t.Fatalf("delta body %dB not smaller than full %dB",
			rep.SampleDeltaBytesWire, rep.SampleFullBytesWire)
	}

	// Baseline: same seed, same schedule, delta disabled. Propagating the
	// update must cost strictly more bytes when every stale agent gets a
	// full body.
	base := cfg
	base.DisableDelta = true
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if full.DeltaFetches != 0 {
		t.Fatal("delta fetches in a delta-disabled run")
	}
	if full.Fetches != rep.Fetches || full.Leaves != rep.Leaves ||
		full.FailedFetches != rep.FailedFetches {
		t.Fatalf("schedules diverged: delta %+v vs full %+v", rep, full)
	}
	if full.ConvergenceSec != rep.ConvergenceSec {
		t.Fatalf("convergence diverged: %v vs %v", rep.ConvergenceSec, full.ConvergenceSec)
	}
	if rep.PropagationBytesWire >= full.PropagationBytesWire {
		t.Fatalf("delta propagation %dB not cheaper than full %dB",
			rep.PropagationBytesWire, full.PropagationBytesWire)
	}
	if rep.UpdateBytesWire >= full.UpdateBytesWire {
		t.Fatalf("delta update bytes %dB not cheaper than full %dB",
			rep.UpdateBytesWire, full.UpdateBytesWire)
	}
	t.Logf("update: delta %dB vs full %dB (%.1fx), convergence %.1fs, 304 ratio %.2f",
		rep.UpdateBytesWire, full.UpdateBytesWire,
		float64(full.UpdateBytesWire)/float64(rep.UpdateBytesWire),
		rep.ConvergenceSec, rep.NotModifiedRatio)
}

// TestChurnDeterminism pins reproducibility: identical configs yield
// identical measurements (wall-clock fields aside).
func TestChurnDeterminism(t *testing.T) {
	cfg := smokeConfig(2000)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.ControllerServeCPUSec, b.ControllerServeCPUSec = 0, 0
	a.ControllerGenerateCPUSec, b.ControllerGenerateCPUSec = 0, 0
	a.WallSec, b.WallSec = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestChurnValidation covers the error paths.
func TestChurnValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero-agent config accepted")
	}
	cfg := smokeConfig(10)
	cfg.Base = topology.Spec{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty base spec accepted")
	}
}
