// Package portal is the read side of Pingmesh: a stateless web service
// over the DSA pipeline's outputs (§3.5, §6.3). Every analysis cycle the
// pipeline's results are assembled into one immutable Snapshot, every
// response body (JSON and SVG) is rendered and content-hashed once, and
// the whole epoch is swapped in with a single atomic pointer store.
// Request handling is then a map lookup plus the shared httpcache serving
// path — cached reads and 304 revalidations allocate nothing, so any
// number of dashboards can poll the portal without touching the pipeline.
package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/diagnosis"
	"pingmesh/internal/dsa"
	"pingmesh/internal/httpcache"
	"pingmesh/internal/metrics"
	"pingmesh/internal/simclock"
	"pingmesh/internal/telemetry"
	"pingmesh/internal/topology"
	"pingmesh/internal/trace"
	"pingmesh/internal/viz"
)

// Defaults for Config zero values.
const (
	DefaultAlertLimit  = 100
	DefaultAlertWindow = 24 * time.Hour
)

// MetricSource names a metrics registry exposed on /metrics. Prefix is
// prepended to every metric name after the pingmesh_ namespace (use "" to
// expose names as-is).
type MetricSource struct {
	Prefix   string
	Registry *metrics.Registry
}

// Config wires a portal to a pipeline.
type Config struct {
	Pipeline *dsa.Pipeline
	Top      *topology.Topology
	Clock    simclock.Clock
	// AlertLimit caps the /alerts feed (DefaultAlertLimit if 0).
	AlertLimit int
	// AlertWindow bounds feed recency (DefaultAlertWindow if 0).
	AlertWindow time.Duration
	// Metrics lists additional registries for /metrics; the portal's own
	// registry is always included.
	Metrics []MetricSource
	// Tracer, if non-nil, records publish spans, marks snapshot freshness,
	// and enables /health and /debug/trace.
	Tracer *trace.Tracer
	// Budget is the freshness budget /health evaluates; zero value means
	// trace.DefaultBudget().
	Budget trace.Budget
	// Diagnosis, if non-nil, enables GET /diagnose: the cached root-cause
	// ranking at the bare path and the per-pair evidence chain with
	// ?src=&dst=. /triage then carries the chain's thin summary.
	Diagnosis *diagnosis.Engine
	// Telemetry, if non-nil, enables GET /telemetry: the fleet
	// self-monitoring rollups (§3.5), rendered at publish like every other
	// body — a summary doc plus per-series JSON and sparkline SVGs for the
	// fleet-level keys.
	Telemetry *telemetry.Collector
}

// state is one published epoch: the snapshot plus every pre-rendered
// response body, keyed by exact request path. Immutable after Store.
type state struct {
	snap   *Snapshot
	bodies map[string]*httpcache.Body
	epochH []string // precomputed X-Pingmesh-Epoch header value
}

// Portal serves DSA results over HTTP. Create with New, publish epochs
// with Refresh, serve with Handler.
type Portal struct {
	cfg Config
	reg *metrics.Registry
	exp *metrics.Exposition

	refreshMu sync.Mutex // serializes Refresh; readers never take it
	epoch     uint64     // guarded by refreshMu
	state     atomic.Pointer[state]

	// Hot-path counters resolved once so request handling stays
	// allocation-free.
	cServes      *metrics.Counter
	cNotModified *metrics.Counter
	cBytes       *metrics.Counter
	cNotFound    *metrics.Counter
	cTriage      *metrics.Counter
	cDiagnose    *metrics.Counter
	cScrapes     *metrics.Counter
	gEpoch       *metrics.Gauge
	gBodies      *metrics.Gauge
	gBodyBytes   *metrics.Gauge
}

// New returns a portal serving empty responses until the first Refresh.
func New(cfg Config) *Portal {
	if cfg.AlertLimit <= 0 {
		cfg.AlertLimit = DefaultAlertLimit
	}
	if cfg.AlertWindow <= 0 {
		cfg.AlertWindow = DefaultAlertWindow
	}
	if cfg.Budget == (trace.Budget{}) {
		cfg.Budget = trace.DefaultBudget()
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	p := &Portal{cfg: cfg, reg: metrics.NewRegistry(), exp: metrics.NewExposition()}
	if cfg.Tracer != nil {
		p.reg.GaugeFunc("portal.snapshot_age", func() int64 {
			return cfg.Tracer.Freshness().AgeMillis(trace.StagePublish)
		})
	}
	p.exp.Add("", p.reg)
	for _, src := range cfg.Metrics {
		p.exp.Add(src.Prefix, src.Registry)
	}
	p.cServes = p.reg.Counter("portal.serves")
	p.cNotModified = p.reg.Counter("portal.not_modified")
	p.cBytes = p.reg.Counter("portal.bytes_served")
	p.cNotFound = p.reg.Counter("portal.not_found")
	p.cTriage = p.reg.Counter("portal.triage_requests")
	p.cDiagnose = p.reg.Counter("portal.diagnose_requests")
	p.cScrapes = p.reg.Counter("portal.metrics_scrapes")
	p.gEpoch = p.reg.Gauge("portal.epoch")
	p.gBodies = p.reg.Gauge("portal.cached_bodies")
	p.gBodyBytes = p.reg.Gauge("portal.cached_body_bytes")
	p.state.Store(&state{bodies: map[string]*httpcache.Body{}, epochH: []string{"0"}})
	return p
}

// Metrics returns the portal's own registry (request counters, epoch).
func (p *Portal) Metrics() *metrics.Registry { return p.reg }

// Snapshot returns the currently published snapshot (nil before the first
// Refresh).
func (p *Portal) Snapshot() *Snapshot { return p.state.Load().snap }

// Epoch returns the published epoch number (0 before the first Refresh).
func (p *Portal) Epoch() uint64 {
	if s := p.state.Load().snap; s != nil {
		return s.Epoch
	}
	return 0
}

// Refresh builds a new snapshot from the pipeline, renders every response
// body, and atomically publishes the epoch. Concurrent calls serialize;
// readers always see either the old epoch or the new one, never a mix.
func (p *Portal) Refresh() error {
	p.refreshMu.Lock()
	defer p.refreshMu.Unlock()

	tr := p.cfg.Tracer
	var pubStart time.Time
	if tr != nil {
		pubStart = tr.Now()
	}
	snap, err := BuildSnapshot(p.cfg.Pipeline, p.cfg.Clock.Now(), p.cfg.AlertWindow, p.cfg.AlertLimit)
	if err != nil {
		return err
	}
	snap.Epoch = p.epoch + 1
	st, err := renderState(snap, p.cfg.Top, p.cfg.Telemetry)
	if err != nil {
		return err
	}
	p.epoch = snap.Epoch
	p.state.Store(st)

	p.gEpoch.Set(int64(snap.Epoch))
	p.gBodies.Set(int64(len(st.bodies)))
	var total int64
	for _, b := range st.bodies {
		total += int64(len(b.Data()))
	}
	p.gBodyBytes.Set(total)

	if tr != nil {
		// Publish span: pipeline-level, plus one per sampled trace still
		// in flight — the DSA cycle that triggered this refresh completes
		// its traces only after the publication hook returns, so the
		// records this snapshot folds in are still registered here.
		end := tr.Now()
		ring := tr.Ring("portal")
		ring.SpanAttr(0, trace.StagePublish, "snapshot", pubStart, end, true, "epoch", int64(snap.Epoch))
		for _, tid := range tr.ActiveProbeIDs() {
			ring.SpanAttr(tid, trace.StagePublish, "snapshot", pubStart, end, true, "epoch", int64(snap.Epoch))
		}
		tr.Freshness().Mark(trace.StagePublish)
		p.reg.Histogram("portal.refresh.duration").Observe(end.Sub(pubStart))
	}
	return nil
}

const (
	ctJSON = "application/json"
	ctSVG  = "image/svg+xml"
)

// indexDoc is the "/" body: service discovery plus epoch provenance.
type indexDoc struct {
	Service     string    `json:"service"`
	Epoch       uint64    `json:"epoch"`
	PublishedAt time.Time `json:"published_at"`
	Scopes      []string  `json:"scopes"`
	Heatmaps    []string  `json:"heatmaps"`
	Alerts      int       `json:"alerts"`
	Endpoints   []string  `json:"endpoints"`
}

// renderState renders every cacheable body for a snapshot. All rendering
// cost is paid here, once per analysis cycle, never per request.
func renderState(snap *Snapshot, top *topology.Topology, tel *telemetry.Collector) (*state, error) {
	st := &state{
		snap:   snap,
		bodies: make(map[string]*httpcache.Body, len(snap.SLA)+2*len(snap.Heatmaps)+3),
		epochH: []string{strconv.FormatUint(snap.Epoch, 10)},
	}
	put := func(path, ctype string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("portal: render %s: %w", path, err)
		}
		data = append(data, '\n')
		b, err := httpcache.New(ctype, data)
		if err != nil {
			return fmt.Errorf("portal: render %s: %w", path, err)
		}
		st.bodies[path] = b
		return nil
	}

	scopes := snap.sortedScopes()
	index := make([]SLAEntry, 0, len(scopes))
	for _, sc := range scopes {
		e := snap.SLA[sc]
		index = append(index, e)
		if err := put("/sla/"+sc, ctJSON, e); err != nil {
			return nil, err
		}
	}
	if err := put("/sla", ctJSON, index); err != nil {
		return nil, err
	}
	if snap.Alerts == nil {
		snap.Alerts = []AlertEntry{}
	}
	if err := put("/alerts", ctJSON, snap.Alerts); err != nil {
		return nil, err
	}

	var heatmapNames []string
	for dc, hv := range snap.Heatmaps {
		heatmapNames = append(heatmapNames, dc)
		if err := put("/heatmap/"+dc, ctJSON, heatmapDoc(hv)); err != nil {
			return nil, err
		}
		svg, err := httpcache.New(ctSVG, hv.Heatmap.AppendSVG(nil))
		if err != nil {
			return nil, fmt.Errorf("portal: render heatmap svg %s: %w", dc, err)
		}
		st.bodies["/heatmap/"+dc+".svg"] = svg
	}
	sortStrings(heatmapNames)

	endpoints := []string{
		"/sla", "/sla/{scope}", "/heatmap/{dc}", "/heatmap/{dc}.svg",
		"/alerts", "/triage?src=&dst=", "/metrics", "/healthz",
		"/health", "/debug/trace",
	}
	if snap.Diagnosis != nil {
		if err := put("/diagnose", ctJSON, diagnoseDoc(snap.Diagnosis, top)); err != nil {
			return nil, err
		}
		endpoints = append(endpoints, "/diagnose", "/diagnose?src=&dst=")
	}
	if tel != nil {
		if err := renderTelemetry(st, put, tel, snap.PublishedAt); err != nil {
			return nil, err
		}
		endpoints = append(endpoints,
			"/telemetry", "/telemetry/fleet/{kind}/{metric}",
			"/telemetry/fleet/{kind}/{metric}.svg")
	}

	idx := indexDoc{
		Service:     "pingmesh-portal",
		Epoch:       snap.Epoch,
		PublishedAt: snap.PublishedAt,
		Scopes:      scopes,
		Heatmaps:    heatmapNames,
		Alerts:      len(snap.Alerts),
		Endpoints:   endpoints,
	}
	if err := put("/", ctJSON, idx); err != nil {
		return nil, err
	}
	return st, nil
}

// heatmapJSON is the wire form of a heatmap: the §6.3 matrix plus the
// Figure 8 classification. P99Ns uses -1 for cells without data.
type heatmapJSON struct {
	DC          string    `json:"dc"`
	Pattern     string    `json:"pattern"`
	Podset      int       `json:"podset"`
	WindowStart time.Time `json:"window_start"`
	WindowEnd   time.Time `json:"window_end"`
	Pods        []string  `json:"pods"`
	Podsets     []int     `json:"podsets"`
	P99Ns       [][]int64 `json:"p99_ns"`
	Probes      [][]int64 `json:"probes"`
}

func heatmapDoc(hv HeatmapView) heatmapJSON {
	h := hv.Heatmap
	doc := heatmapJSON{
		DC:          hv.DC,
		Pattern:     hv.Classification.Pattern.String(),
		Podset:      hv.Classification.Podset,
		WindowStart: hv.From,
		WindowEnd:   hv.To,
		Podsets:     h.Podsets,
		Pods:        make([]string, len(h.Pods)),
		P99Ns:       make([][]int64, len(h.Cells)),
		Probes:      make([][]int64, len(h.Cells)),
	}
	for i, p := range h.Pods {
		doc.Pods[i] = p.String()
	}
	for i, row := range h.Cells {
		p99s := make([]int64, len(row))
		probes := make([]int64, len(row))
		for j, c := range row {
			if c.HasData {
				p99s[j] = int64(c.P99)
				probes[j] = int64(c.Probes)
			} else {
				p99s[j] = -1
			}
		}
		doc.P99Ns[i] = p99s
		doc.Probes[i] = probes
	}
	return doc
}

// diagnoseJSON is the wire form of the published root-cause ranking: the
// 007-style vote tally over the current episode, worst suspects first.
type diagnoseJSON struct {
	Observed   uint64          `json:"observed"`
	Failures   uint64          `json:"failures"`
	Candidates []candidateJSON `json:"candidates"`
	Links      []linkJSON      `json:"links,omitempty"`
	Query      string          `json:"query"`
}

type candidateJSON struct {
	Switch   string  `json:"switch"`
	Score    float64 `json:"score"`
	Votes    float64 `json:"votes"`
	Coverage float64 `json:"coverage"`
}

type linkJSON struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	Score    float64 `json:"score"`
	Votes    float64 `json:"votes"`
	Coverage float64 `json:"coverage"`
}

func diagnoseDoc(r *diagnosis.Ranking, top *topology.Topology) diagnoseJSON {
	doc := diagnoseJSON{
		Observed:   r.Observed,
		Failures:   r.Failures,
		Candidates: make([]candidateJSON, 0, len(r.Candidates)),
		Query:      "/diagnose?src=<server|addr|podref>&dst=<server|addr|podref>",
	}
	for _, c := range r.Candidates {
		doc.Candidates = append(doc.Candidates, candidateJSON{
			Switch: top.Switch(c.Switch).Name,
			Score:  c.Score, Votes: c.Votes, Coverage: c.Coverage,
		})
	}
	for _, l := range r.Links {
		doc.Links = append(doc.Links, linkJSON{
			A: top.Switch(l.Link.A).Name, B: top.Switch(l.Link.B).Name,
			Score: l.Score, Votes: l.Votes, Coverage: l.Coverage,
		})
	}
	return doc
}

// telemetryJSON is the /telemetry body: the fleet self-monitoring plane
// at a glance — agent population, staleness, and the latest value of
// every fleet-level rollup series, each with a pointer to its full
// series body and sparkline.
type telemetryJSON struct {
	Agents        int                   `json:"agents"`
	StaleFraction float64               `json:"stale_fraction"`
	SeriesKeys    int                   `json:"series_keys"`
	Fleet         []telemetrySeriesJSON `json:"fleet"`
}

type telemetrySeriesJSON struct {
	Key    string    `json:"key"`
	Latest float64   `json:"latest"`
	At     time.Time `json:"at"`
	Points int       `json:"points"`
	Series string    `json:"series"`
	SVG    string    `json:"svg"`
}

// telemetrySeriesDoc is one series body under /telemetry/{key}.
type telemetrySeriesDoc struct {
	Key    string            `json:"key"`
	Points []telemetry.Point `json:"points"`
}

// telemetryStaleAfter is the window the /telemetry summary uses for its
// stale-agent fraction: agents silent longer than this at publish time
// count as stale (the fleet watchdog uses the same default).
const telemetryStaleAfter = 15 * time.Minute

// renderTelemetry renders the /telemetry bodies into st: the summary doc
// plus, for every fleet-level series, the point dump and a sparkline SVG.
// Per-DC/podset/pod series stay reachable through the collector's own
// handler — pre-rendering the full scope hierarchy would scale with the
// fleet, not with the dashboard.
func renderTelemetry(st *state, put func(path, ctype string, v any) error, tel *telemetry.Collector, now time.Time) error {
	store := tel.Store()
	keys := store.Keys()
	doc := telemetryJSON{
		Agents:        tel.AgentCount(),
		StaleFraction: tel.StaleFraction(telemetryStaleAfter, now),
		SeriesKeys:    len(keys),
		Fleet:         []telemetrySeriesJSON{},
	}
	vals := make([]float64, 0, 64)
	for _, k := range keys {
		if len(k) < 6 || k[:6] != "fleet/" {
			continue
		}
		pts := store.Series(k)
		if len(pts) == 0 {
			continue
		}
		if err := put("/telemetry/"+k, ctJSON, telemetrySeriesDoc{Key: k, Points: pts}); err != nil {
			return err
		}
		vals = vals[:0]
		for _, pt := range pts {
			vals = append(vals, pt.Value)
		}
		svg, err := httpcache.New(ctSVG, viz.AppendSparkline(nil, vals, 220, 36))
		if err != nil {
			return fmt.Errorf("portal: render telemetry svg %s: %w", k, err)
		}
		st.bodies["/telemetry/"+k+".svg"] = svg
		last := pts[len(pts)-1]
		doc.Fleet = append(doc.Fleet, telemetrySeriesJSON{
			Key: k, Latest: last.Value, At: last.At, Points: len(pts),
			Series: "/telemetry/" + k, SVG: "/telemetry/" + k + ".svg",
		})
	}
	return put("/telemetry", ctJSON, doc)
}

// Handler returns the portal's HTTP handler.
func (p *Portal) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/triage", p.serveTriage)
	mux.HandleFunc("/diagnose", p.serveDiagnose)
	mux.HandleFunc("/metrics", p.ServeMetrics)
	mux.HandleFunc("/healthz", p.serveHealthz)
	mux.HandleFunc("/health", p.ServeHealth)
	mux.HandleFunc("/debug/trace", p.ServeTrace)
	mux.HandleFunc("/", p.ServeCached)
	return mux
}

// ServeHealth answers GET /health with the pipeline freshness verdict
// (§3.5 budget): 200 for "ok"/"waiting", 503 for "degraded". Without a
// tracer it degenerates to the liveness answer of /healthz.
func (p *Portal) ServeHealth(w http.ResponseWriter, r *http.Request) {
	if p.cfg.Tracer == nil {
		p.serveHealthz(w, r)
		return
	}
	h := p.cfg.Tracer.Freshness().Check(p.cfg.Budget)
	// Sharded incremental analysis adds one synthetic stage per shard: a
	// shard with a backlog whose last fold is older than the DSA budget is
	// lagging — the cycle would degrade next, so /health says so first.
	for _, lag := range p.cfg.Pipeline.ShardLags() {
		sh := trace.StageHealth{
			Stage:    fmt.Sprintf("dsa-shard-%d-fold", lag.Shard),
			Marked:   !lag.LastFold.IsZero(),
			AgeMs:    -1,
			BudgetMs: p.cfg.Budget.DSACycle.Milliseconds(),
		}
		if sh.Marked {
			sh.AgeMs = p.cfg.Clock.Now().Sub(lag.LastFold).Milliseconds()
		}
		switch {
		case lag.Backlog == 0:
			// Fully drained: lag age is informational only.
		case !sh.Marked:
			if h.Status == "ok" {
				h.Status = "waiting"
			}
		case sh.AgeMs > sh.BudgetMs:
			sh.Stale = true
			h.Status = "degraded"
		}
		h.Stages = append(h.Stages, sh)
	}
	code := http.StatusOK
	if h.Status == "degraded" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// ServeTrace answers GET /debug/trace with the tracer's full span dump.
// With ?trace=<hex id> it returns just that trace's spans across all
// components, ordered by start time.
func (p *Portal) ServeTrace(w http.ResponseWriter, r *http.Request) {
	if p.cfg.Tracer == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing disabled"})
		return
	}
	if idHex := r.URL.Query().Get("trace"); idHex != "" {
		id, err := strconv.ParseUint(idHex, 16, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad trace id (want hex)"})
			return
		}
		writeJSON(w, http.StatusOK, p.cfg.Tracer.TraceSpans(trace.TraceID(id)))
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	p.cfg.Tracer.WriteJSON(w)
}

// Precomputed header values for the dynamic endpoints, mirroring the
// httpcache trick: canonical MIME keys assigned whole so the hot path
// never allocates header storage.
var (
	promContentType = []string{"text/plain; version=0.0.4; charset=utf-8"}
	jsonContentType = []string{ctJSON}
	epochHeaderKey  = "X-Pingmesh-Epoch"
)

// ServeCached serves any pre-rendered body by exact path: /, /sla,
// /sla/{scope}, /heatmap/{dc}, /heatmap/{dc}.svg, /alerts. Exported (and
// reached directly by the alloc guards) because this is the portal's
// steady-state path: one atomic load, one map lookup, zero allocations.
func (p *Portal) ServeCached(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header()["Allow"] = allowGetHead
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	st := p.state.Load()
	b, ok := st.bodies[r.URL.Path]
	if !ok {
		p.cNotFound.Inc()
		http.NotFound(w, r)
		return
	}
	w.Header()[epochHeaderKey] = st.epochH
	res := b.Serve(w, r)
	if res.Status == http.StatusNotModified {
		p.cNotModified.Inc()
		return
	}
	p.cServes.Inc()
	p.cBytes.Add(int64(res.Bytes))
}

var allowGetHead = []string{"GET, HEAD"}

// ServeMetrics writes the Prometheus text exposition of every configured
// registry. Exported for the alloc guard: a scrape reuses the exposition's
// buffers and allocates nothing in steady state.
func (p *Portal) ServeMetrics(w http.ResponseWriter, r *http.Request) {
	p.cScrapes.Inc()
	w.Header()["Content-Type"] = promContentType
	p.exp.WriteTo(w)
}

// serveTriage answers GET /triage?src=&dst= with the §4.3 decision. This
// endpoint is dynamic (the pair space is quadratic; pre-rendering it would
// defeat the snapshot budget) but still reads only the immutable snapshot.
func (p *Portal) serveTriage(w http.ResponseWriter, r *http.Request) {
	p.cTriage.Inc()
	q := r.URL.Query()
	src, dst := q.Get("src"), q.Get("dst")
	if src == "" || dst == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "usage: /triage?src=<server|addr|podref>&dst=<server|addr|podref>",
		})
		return
	}
	st := p.state.Load()
	if st.snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "no snapshot published yet",
		})
		return
	}
	w.Header()[epochHeaderKey] = st.epochH
	res := st.snap.Triage(p.cfg.Top, src, dst)
	// With diagnosis wired, /triage is the chain's thin summary: the same
	// SLA/heatmap evidence condensed into the verdict, plus the vote
	// table's current suspect and a pointer to the full chain.
	if p.cfg.Diagnosis != nil {
		srcID, okS := resolveServer(p.cfg.Top, src)
		dstID, okD := resolveServer(p.cfg.Top, dst)
		if okS && okD {
			if hop, _, ok := p.cfg.Diagnosis.TopSuspect(srcID, dstID); ok {
				res.PinnedHop = hop
			}
			res.Diagnose = "/diagnose?src=" + url.QueryEscape(src) + "&dst=" + url.QueryEscape(dst)
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// serveDiagnose answers GET /diagnose. Bare, it serves the epoch's
// pre-rendered root-cause ranking (the httpcache path, like every other
// read). With ?src=&dst= it runs the evidence chain for the pair — dynamic
// like /triage (the pair space is quadratic) but reading only the
// immutable snapshot plus the vote table.
func (p *Portal) serveDiagnose(w http.ResponseWriter, r *http.Request) {
	if p.cfg.Diagnosis == nil {
		p.cNotFound.Inc()
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "diagnosis not enabled on this portal"})
		return
	}
	q := r.URL.Query()
	src, dst := q.Get("src"), q.Get("dst")
	if src == "" && dst == "" {
		p.ServeCached(w, r)
		return
	}
	p.cDiagnose.Inc()
	if src == "" || dst == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "usage: /diagnose?src=<server|addr|podref>&dst=<server|addr|podref>",
		})
		return
	}
	st := p.state.Load()
	if st.snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "no snapshot published yet",
		})
		return
	}
	srcID, ok := resolveServer(p.cfg.Top, src)
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("source %q is not a known server, address, or pod ref", src),
		})
		return
	}
	dstID, ok := resolveServer(p.cfg.Top, dst)
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("destination %q is not a known server, address, or pod ref", dst),
		})
		return
	}
	w.Header()[epochHeaderKey] = st.epochH
	writeJSON(w, http.StatusOK, p.cfg.Diagnosis.Diagnose(srcID, dstID, st.snap.Evidence(p.cfg.Top)))
}

// resolveServer resolves a diagnosis parameter — a server address, server
// name, or pod ref ("d0.s1.p2", standing for the pod's first server) — to
// a concrete server, since chains walk real five-tuples.
func resolveServer(top *topology.Topology, s string) (topology.ServerID, bool) {
	if id, ok := top.ServerByAddrString(s); ok {
		return id, true
	}
	if id, ok := top.ServerByName(s); ok {
		return id, true
	}
	if ref, err := analysis.ParsePodRef(s); err == nil {
		if ref.DC >= 0 && ref.DC < len(top.DCs) &&
			ref.Podset >= 0 && ref.Podset < len(top.DCs[ref.DC].Podsets) &&
			ref.Pod >= 0 && ref.Pod < len(top.DCs[ref.DC].Podsets[ref.Podset].Pods) {
			pod := &top.DCs[ref.DC].Podsets[ref.Podset].Pods[ref.Pod]
			if len(pod.Servers) > 0 {
				return pod.Servers[0], true
			}
		}
	}
	return 0, false
}

func (p *Portal) serveHealthz(w http.ResponseWriter, r *http.Request) {
	st := p.state.Load()
	status := "waiting-for-first-snapshot"
	code := http.StatusOK
	if st.snap != nil {
		status = "ok"
	}
	w.Header()[epochHeaderKey] = st.epochH
	writeJSON(w, code, map[string]string{"status": status})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// sortStrings is a tiny insertion sort: heatmap name lists are a handful
// of DCs and this keeps the render path free of sort's interface boxing.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
