package portal

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"pingmesh/internal/core"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/diagnosis"
	"pingmesh/internal/dsa"
	"pingmesh/internal/fleet"
	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
)

// buildDiagRig is buildRig with the diagnosis subsystem wired: the vote
// collector ingests the probe stream, the pipeline publishes its ranking
// into snapshots, and the portal carries the evidence-chain engine.
func buildDiagRig(t testing.TB, mutate func(*netsim.Network)) (*rig, *diagnosis.Engine) {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(n)
	}
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	lists, err := core.Generate(top, core.DefaultGeneratorConfig(), "v1", t0)
	if err != nil {
		t.Fatal(err)
	}
	col := diagnosis.NewCollector(diagnosis.CollectorConfig{Top: top, Paths: n})
	runner := &fleet.Runner{Net: n, Lists: lists, Seed: 9}
	err = runner.Run(t0, t0.Add(30*time.Minute), func(src topology.ServerID, recs []probe.Record) {
		if err := store.Append("pingmesh/2026-07-01", probe.EncodeBatch(recs)); err != nil {
			t.Error(err)
		}
		col.ObserveBatch(recs)
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(t0.Add(time.Hour))
	pipe, err := dsa.New(dsa.Config{
		Store: store, Top: top, Clock: clock, HeatmapMinProbes: 3,
		Diagnosis: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunTenMinute(t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	engine := &diagnosis.Engine{
		Top: top, Votes: col, Paths: n, Tracer: n, Clock: clock, Seed: 11,
	}
	p := New(Config{Pipeline: pipe, Top: top, Clock: clock, Diagnosis: engine})
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	return &rig{top: top, net: n, clock: clock, pipe: pipe, portal: p}, engine
}

func TestDiagnoseDisabled(t *testing.T) {
	r := buildRig(t, nil) // no engine wired
	w := get(t, r.portal.Handler(), "/diagnose?src=a&dst=b", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Fatal("404 body has no error field")
	}
}

func TestDiagnoseParamValidation(t *testing.T) {
	r, _ := buildDiagRig(t, nil)
	h := r.portal.Handler()
	srv := r.top.Servers()[0].Name
	for _, path := range []string{
		"/diagnose?src=" + srv,
		"/diagnose?dst=" + srv,
		"/diagnose?src=" + srv + "&dst=not-a-server",
		"/diagnose?src=not-a-server&dst=" + srv,
	} {
		if w := get(t, h, path, nil); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", path, w.Code)
		}
	}
}

func TestDiagnoseBeforeFirstSnapshot(t *testing.T) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 2, ServersPerPod: 2, LeavesPerPodset: 2, Spines: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Top: top, Diagnosis: &diagnosis.Engine{Top: top}})
	a := top.Servers()[0].Name
	b := top.Servers()[3].Name
	w := get(t, p.Handler(), "/diagnose?src="+a+"&dst="+b, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 before first snapshot", w.Code)
	}
}

// TestDiagnoseCachedRanking: a bare GET /diagnose serves the epoch's
// pre-rendered ranking through the httpcache path, epoch header included.
func TestDiagnoseCachedRanking(t *testing.T) {
	r, _ := buildDiagRig(t, nil)
	w := get(t, r.portal.Handler(), "/diagnose", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	if w.Header().Get(epochHeaderKey) == "" {
		t.Fatal("cached ranking body has no epoch header")
	}
	var doc struct {
		Observed   uint64 `json:"observed"`
		Candidates []struct {
			Switch string `json:"switch"`
		} `json:"candidates"`
		Query string `json:"query"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Observed == 0 {
		t.Fatal("ranking observed no probes")
	}
	if doc.Query == "" {
		t.Fatal("ranking body has no query hint")
	}
}

// TestDiagnoseChainJSON runs the full pair chain over HTTP against a clean
// fabric and checks the chain schema.
func TestDiagnoseChainJSON(t *testing.T) {
	r, _ := buildDiagRig(t, nil)
	a := r.top.Servers()[0].Name
	b := r.top.DCs[0].Podsets[1].Pods[0].Servers[0]
	w := get(t, r.portal.Handler(), "/diagnose?src="+a+"&dst="+r.top.Server(b).Name, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", w.Code, w.Body.String())
	}
	if w.Header().Get(epochHeaderKey) == "" {
		t.Fatal("chain response has no epoch header")
	}
	var ch struct {
		Src     string `json:"src"`
		Dst     string `json:"dst"`
		Verdict string `json:"verdict"`
		Steps   []struct {
			Assertion string `json:"assertion"`
			Verdict   string `json:"verdict"`
		} `json:"steps"`
		Path []string `json:"path"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Src != a {
		t.Fatalf("chain src = %q, want %q", ch.Src, a)
	}
	if ch.Verdict == "" || len(ch.Steps) == 0 {
		t.Fatalf("chain missing verdict or steps: %+v", ch)
	}
	if len(ch.Path) == 0 {
		t.Fatal("chain has no modeled path (tracer is wired)")
	}
}

// TestTriageCarriesDiagnosePointer: with the engine wired, /triage links
// to the full chain for the same pair.
func TestTriageCarriesDiagnosePointer(t *testing.T) {
	r, _ := buildDiagRig(t, nil)
	a := r.top.Servers()[0].Name
	b := r.top.DCs[0].Podsets[1].Pods[0].Servers[0]
	w := get(t, r.portal.Handler(), "/triage?src="+a+"&dst="+r.top.Server(b).Name, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	var res struct {
		Diagnose string `json:"diagnose"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Diagnose == "" {
		t.Fatal("/triage has no diagnose pointer with the engine wired")
	}
}
