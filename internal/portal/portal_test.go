package portal

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pingmesh/internal/core"
	"pingmesh/internal/cosmos"
	"pingmesh/internal/dsa"
	"pingmesh/internal/fleet"
	"pingmesh/internal/metrics"
	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/telemetry"
	"pingmesh/internal/topology"
	"pingmesh/internal/trace"
)

var t0 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// rig is a loaded deployment: one hour of simulated probes analyzed by the
// pipeline, with a portal on top.
type rig struct {
	top    *topology.Topology
	net    *netsim.Network
	clock  *simclock.Sim
	pipe   *dsa.Pipeline
	portal *Portal
}

func buildRig(t testing.TB, mutate func(*netsim.Network)) *rig {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(n)
	}
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	lists, err := core.Generate(top, core.DefaultGeneratorConfig(), "v1", t0)
	if err != nil {
		t.Fatal(err)
	}
	runner := &fleet.Runner{Net: n, Lists: lists, Seed: 9}
	err = runner.Run(t0, t0.Add(time.Hour), func(src topology.ServerID, recs []probe.Record) {
		if err := store.Append("pingmesh/2026-07-01", probe.EncodeBatch(recs)); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(t0.Add(time.Hour))
	pipe, err := dsa.New(dsa.Config{
		Store: store, Top: top, Clock: clock, HeatmapMinProbes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunTenMinute(t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunHourly(t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	p := New(Config{Pipeline: pipe, Top: top, Clock: clock})
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	return &rig{top: top, net: n, clock: clock, pipe: pipe, portal: p}
}

func get(t testing.TB, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestPortalEndpoints(t *testing.T) {
	r := buildRig(t, nil)
	h := r.portal.Handler()

	// Index: epoch, scopes, heatmaps.
	w := get(t, h, "/", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/ status = %d", w.Code)
	}
	var idx indexDoc
	if err := json.Unmarshal(w.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", idx.Epoch)
	}
	if len(idx.Scopes) == 0 || len(idx.Heatmaps) != 1 || idx.Heatmaps[0] != "DC1" {
		t.Fatalf("index = %+v", idx)
	}
	if got := w.Header().Get("X-Pingmesh-Epoch"); got != "1" {
		t.Fatalf("epoch header = %q", got)
	}

	// SLA: the full table and one scope.
	w = get(t, h, "/sla", nil)
	var entries []SLAEntry
	if err := json.Unmarshal(w.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("/sla returned no entries")
	}
	w = get(t, h, "/sla/dc/DC1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/sla/dc/DC1 status = %d", w.Code)
	}
	var e SLAEntry
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Scope != "dc/DC1" || e.Probes == 0 || e.P99 <= 0 {
		t.Fatalf("dc entry = %+v", e)
	}

	// Heatmap JSON and SVG.
	w = get(t, h, "/heatmap/DC1", nil)
	var hm heatmapJSON
	if err := json.Unmarshal(w.Body.Bytes(), &hm); err != nil {
		t.Fatal(err)
	}
	if hm.DC != "DC1" || hm.Pattern != "normal" || len(hm.Pods) != 6 {
		t.Fatalf("heatmap = dc=%q pattern=%q pods=%d", hm.DC, hm.Pattern, len(hm.Pods))
	}
	w = get(t, h, "/heatmap/DC1.svg", nil)
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("svg content type = %q", ct)
	}
	if !strings.HasPrefix(w.Body.String(), "<svg") {
		t.Fatalf("svg body starts %q", w.Body.String()[:20])
	}

	// Alerts: healthy fabric, empty JSON array (not null).
	w = get(t, h, "/alerts", nil)
	if body := strings.TrimSpace(w.Body.String()); body != "[]" {
		t.Fatalf("alerts = %q", body)
	}

	// Health and errors.
	if w = get(t, h, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	if w = get(t, h, "/sla/dc/NOPE", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown scope status = %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/sla", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
}

func TestPortalConditionalGet(t *testing.T) {
	r := buildRig(t, nil)
	h := r.portal.Handler()

	w := get(t, h, "/sla/dc/DC1", nil)
	etag := w.Header().Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on cached body")
	}
	w = get(t, h, "/sla/dc/DC1", map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Fatalf("304 carried %d body bytes", w.Body.Len())
	}

	// A refresh over unchanged pipeline output publishes a new epoch but
	// identical content hashes: clients keep revalidating to 304.
	if err := r.portal.Refresh(); err != nil {
		t.Fatal(err)
	}
	w = get(t, h, "/sla/dc/DC1", map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusNotModified {
		t.Fatalf("post-refresh revalidation status = %d", w.Code)
	}
	if got := w.Header().Get("X-Pingmesh-Epoch"); got != "2" {
		t.Fatalf("epoch header after refresh = %q", got)
	}
}

func TestPortalMetrics(t *testing.T) {
	r := buildRig(t, nil)
	extra := metrics.NewRegistry()
	extra.Counter("uploads").Add(7)
	p := New(Config{
		Pipeline: r.pipe, Top: r.top, Clock: r.clock,
		Metrics: []MetricSource{{Prefix: "agent", Registry: extra}},
	})
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	h := p.Handler()
	get(t, h, "/sla", nil) // generate one serve

	w := get(t, h, "/metrics", nil)
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE pingmesh_portal_serves counter",
		"pingmesh_portal_serves 1",
		"pingmesh_portal_epoch 1",
		"pingmesh_agent_uploads 7", // extra sources scrape with their prefix
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}

// TestPortalShardHealthAndMetrics wires a sharded incremental pipeline
// behind the portal: /health must carry one synthetic stage per analysis
// shard and /metrics the per-shard fold gauges.
func TestPortalShardHealthAndMetrics(t *testing.T) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 2, ServersPerPod: 3, LeavesPerPodset: 2, Spines: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	store, err := cosmos.NewStore(3, cosmos.Config{ExtentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	lists, err := core.Generate(top, core.DefaultGeneratorConfig(), "v1", t0)
	if err != nil {
		t.Fatal(err)
	}
	runner := &fleet.Runner{Net: n, Lists: lists, Seed: 5}
	err = runner.Run(t0, t0.Add(10*time.Minute), func(src topology.ServerID, recs []probe.Record) {
		if err := store.Append("pingmesh/2026-07-01", probe.EncodeBatch(recs)); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(t0)
	tracer := trace.New(clock)
	pipe, err := dsa.New(dsa.Config{
		Store: store, Top: top, Clock: clock, Tracer: tracer, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.AdvanceTo(t0.Add(10 * time.Minute))
	tracer.Freshness().Mark(trace.StageUpload)
	pipe.FoldNow()
	if err := pipe.RunTenMinute(t0, t0.Add(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	p := New(Config{
		Pipeline: pipe, Top: top, Clock: clock, Tracer: tracer,
		Metrics: []MetricSource{{Prefix: "", Registry: pipe.JobRegistry()}},
	})
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	h := p.Handler()

	w := get(t, h, "/health", nil)
	var health struct {
		Status string `json:"status"`
		Stages []struct {
			Stage  string `json:"stage"`
			Marked bool   `json:"marked"`
			Stale  bool   `json:"stale"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatalf("health not JSON: %v\n%s", err, w.Body.String())
	}
	found := 0
	for _, st := range health.Stages {
		if st.Stage == "dsa-shard-0-fold" || st.Stage == "dsa-shard-1-fold" {
			found++
			if !st.Marked {
				t.Fatalf("shard stage %s unmarked after folding: %s", st.Stage, w.Body.String())
			}
			if st.Stale {
				t.Fatalf("shard stage %s stale with empty backlog: %s", st.Stage, w.Body.String())
			}
		}
	}
	if found != 2 {
		t.Fatalf("health carries %d shard stages, want 2:\n%s", found, w.Body.String())
	}

	body := get(t, h, "/metrics", nil).Body.String()
	for _, want := range []string{
		"pingmesh_dsa_shard_0_fold_lag",
		"pingmesh_dsa_shard_1_fold_lag",
		"pingmesh_dsa_shard_0_extents_stolen",
		"pingmesh_dsa_shard_0_extents_folded",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}

func TestTriage(t *testing.T) {
	r := buildRig(t, nil)
	h := r.portal.Handler()

	// Healthy fabric: a same-DC pod pair is not a network issue.
	w := get(t, h, "/triage?src=d0.s0.p0&dst=d0.s1.p1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("triage status = %d: %s", w.Code, w.Body.String())
	}
	var res TriageResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictNotNetwork {
		t.Fatalf("verdict = %q (%s)", res.Verdict, res.Reason)
	}
	if res.DCSLA == nil || res.PairP99 <= 0 {
		t.Fatalf("missing evidence: %+v", res)
	}

	// Server names resolve too.
	name := r.top.Servers()[0].Name
	w = get(t, h, "/triage?src="+name+"&dst=d0.s1.p2", nil)
	json.Unmarshal(w.Body.Bytes(), &res)
	if res.Verdict != VerdictNotNetwork {
		t.Fatalf("by-name verdict = %q (%s)", res.Verdict, res.Reason)
	}
	if res.Src != "d0.s0.p0" {
		t.Fatalf("resolved src = %q", res.Src)
	}

	// Unknown endpoints are inconclusive, not errors.
	w = get(t, h, "/triage?src=nonsense&dst=d0.s0.p0", nil)
	json.Unmarshal(w.Body.Bytes(), &res)
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("unresolvable src verdict = %q", res.Verdict)
	}

	// Missing params are a usage error.
	if w = get(t, h, "/triage?src=d0.s0.p0", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("missing dst status = %d", w.Code)
	}
}

func TestTriageDegradedPair(t *testing.T) {
	// Degrade one podset's fabric so its pairs go red while the DC-level
	// SLA may or may not trip; triage must call pairs through podset 1
	// "network" either way.
	r := buildRig(t, func(n *netsim.Network) {
		n.SetPodsetDegraded(0, 1, netsim.Degradation{ExtraLatencyMean: 12 * time.Millisecond})
	})
	w := get(t, r.portal.Handler(), "/triage?src=d0.s0.p0&dst=d0.s1.p1", nil)
	var res TriageResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictNetwork {
		t.Fatalf("verdict = %q (%s)", res.Verdict, res.Reason)
	}
}

func TestPortalBeforeFirstRefresh(t *testing.T) {
	// A portal with no snapshot serves 404s and an inconclusive triage
	// rather than crashing.
	p := New(Config{})
	h := p.Handler()
	if w := get(t, h, "/sla", nil); w.Code != http.StatusNotFound {
		t.Fatalf("/sla before refresh = %d", w.Code)
	}
	if w := get(t, h, "/triage?src=a&dst=b", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/triage before refresh = %d", w.Code)
	}
	if p.Epoch() != 0 {
		t.Fatalf("epoch = %d", p.Epoch())
	}
}

// TestConcurrentRefreshAndReads drives readers against a refreshing portal
// (the race-tier workload): every reader must observe a whole epoch — a
// consistent body, ETag and epoch header — never a mix.
func TestConcurrentRefreshAndReads(t *testing.T) {
	r := buildRig(t, nil)
	h := r.portal.Handler()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.portal.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		w := get(t, h, "/sla/dc/DC1", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, w.Code)
		}
		if w.Header().Get("Etag") == "" || w.Header().Get("X-Pingmesh-Epoch") == "" {
			t.Fatalf("read %d: missing epoch/etag headers", i)
		}
		get(t, h, "/triage?src=d0.s0.p0&dst=d0.s1.p1", nil)
	}
	<-done
	if got := r.portal.Epoch(); got != 51 {
		t.Fatalf("final epoch = %d, want 51", got)
	}
}

// TestPortalTelemetry wires a fleet collector into the portal and checks
// the publish-time /telemetry bodies: the summary doc, the per-series
// dump, and the sparkline SVG, all served from the epoch cache.
func TestPortalTelemetry(t *testing.T) {
	r := buildRig(t, nil)

	col := telemetry.NewCollector(telemetry.CollectorConfig{Clock: r.clock})
	reg := metrics.NewRegistry()
	enc := telemetry.NewEncoder("srv-0", "DC1.ps0.pod1", reg)
	probes := reg.Counter("agent.probes_sent")
	for round := 0; round < 3; round++ {
		probes.Add(10)
		data, seq := enc.Encode(r.clock.Now().UnixNano())
		res, err := col.Ingest(data, r.clock.Now())
		if err != nil {
			t.Fatal(err)
		}
		enc.Ack(res.Ack)
		if res.Ack != seq {
			t.Fatalf("ack = %d, want %d", res.Ack, seq)
		}
		col.SampleRollups(r.clock.Now())
		r.clock.Advance(5 * time.Minute)
	}

	p := New(Config{Pipeline: r.pipe, Top: r.top, Clock: r.clock, Telemetry: col})
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	h := p.Handler()

	w := get(t, h, "/telemetry", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/telemetry status = %d", w.Code)
	}
	var doc telemetryJSON
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Agents != 1 || len(doc.Fleet) == 0 {
		t.Fatalf("telemetry doc = %+v", doc)
	}
	var probeSeries *telemetrySeriesJSON
	for i := range doc.Fleet {
		if doc.Fleet[i].Key == "fleet/counter/agent.probes_sent" {
			probeSeries = &doc.Fleet[i]
		}
	}
	if probeSeries == nil {
		t.Fatalf("no fleet probes_sent series in %+v", doc.Fleet)
	}
	if probeSeries.Latest != 30 || probeSeries.Points != 3 {
		t.Fatalf("probes series = %+v", probeSeries)
	}

	// The per-series dump and sparkline are both epoch-cached bodies.
	w = get(t, h, probeSeries.Series, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("%s status = %d", probeSeries.Series, w.Code)
	}
	var sd telemetrySeriesDoc
	if err := json.Unmarshal(w.Body.Bytes(), &sd); err != nil {
		t.Fatal(err)
	}
	if len(sd.Points) != 3 || sd.Points[0].Value != 10 || sd.Points[2].Value != 30 {
		t.Fatalf("series points = %+v", sd.Points)
	}
	w = get(t, h, probeSeries.SVG, nil)
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("svg content type = %q", ct)
	}
	if !strings.HasPrefix(w.Body.String(), "<svg") || !strings.Contains(w.Body.String(), "polyline") {
		t.Fatalf("svg body = %q", w.Body.String())
	}
	if w.Header().Get("Etag") == "" {
		t.Fatal("telemetry svg not served from the epoch cache")
	}

	// The index advertises the endpoint; a portal without a collector 404s.
	w = get(t, h, "/", nil)
	var idx indexDoc
	if err := json.Unmarshal(w.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range idx.Endpoints {
		if e == "/telemetry" {
			found = true
		}
	}
	if !found {
		t.Fatalf("index endpoints missing /telemetry: %v", idx.Endpoints)
	}
	if w = get(t, r.portal.Handler(), "/telemetry", nil); w.Code != http.StatusNotFound {
		t.Fatalf("portal without collector served /telemetry: %d", w.Code)
	}
}
