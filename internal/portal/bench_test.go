package portal

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// nopResponseWriter is a reusable ResponseWriter with a persistent header
// map, modeling a keep-alive connection: net/http reuses header storage
// across requests, so steady-state serving must not allocate any.
type nopResponseWriter struct {
	h http.Header
	n int
}

func (w *nopResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 8)
	}
	return w.h
}
func (w *nopResponseWriter) WriteHeader(int) {}
func (w *nopResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
func (w *nopResponseWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
	w.n = 0
}

// benchPortal builds a loaded portal once per benchmark binary.
var benchPortalCache *Portal

func benchPortal(tb testing.TB) *Portal {
	if benchPortalCache == nil {
		benchPortalCache = buildRig(tb, nil).portal
	}
	return benchPortalCache
}

func cachedReq(tb testing.TB, p *Portal, path string, revalidate bool) *http.Request {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if revalidate {
		b, ok := p.state.Load().bodies[path]
		if !ok {
			tb.Fatalf("no cached body for %s", path)
		}
		req.Header.Set("If-None-Match", b.ETag())
	}
	return req
}

// BenchmarkPortalSLACached measures a full-body cached SLA read.
func BenchmarkPortalSLACached(b *testing.B) {
	p := benchPortal(b)
	req := cachedReq(b, p, "/sla/dc/DC1", false)
	w := &nopResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ServeCached(w, req)
	}
	b.SetBytes(int64(w.n / b.N))
}

// BenchmarkPortalHeatmapCached measures a full-body cached heatmap (SVG)
// read.
func BenchmarkPortalHeatmapCached(b *testing.B) {
	p := benchPortal(b)
	req := cachedReq(b, p, "/heatmap/DC1.svg", false)
	w := &nopResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ServeCached(w, req)
	}
	b.SetBytes(int64(w.n / b.N))
}

// BenchmarkPortalNotModified measures the steady-state dashboard poll: an
// If-None-Match revalidation answered 304 with zero body bytes.
func BenchmarkPortalNotModified(b *testing.B) {
	p := benchPortal(b)
	req := cachedReq(b, p, "/sla/dc/DC1", true)
	w := &nopResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ServeCached(w, req)
	}
	if w.n != 0 {
		b.Fatalf("304 path wrote %d body bytes", w.n)
	}
}

// BenchmarkPortalMetricsScrape measures a full /metrics exposition.
func BenchmarkPortalMetricsScrape(b *testing.B) {
	p := benchPortal(b)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := &nopResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ServeMetrics(w, req)
	}
}

// BenchmarkPortalRefresh measures snapshot assembly + full render: the
// cost paid once per analysis cycle.
func BenchmarkPortalRefresh(b *testing.B) {
	p := benchPortal(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServeCachedZeroAlloc is the tier-3 guard for the acceptance
// criterion: steady-state reads — 304 revalidations and full cached 200s —
// allocate nothing per request.
func TestServeCachedZeroAlloc(t *testing.T) {
	p := benchPortal(t)
	w := &nopResponseWriter{}

	for _, tc := range []struct {
		name       string
		path       string
		revalidate bool
	}{
		{"not-modified", "/sla/dc/DC1", true},
		{"cached-sla", "/sla/dc/DC1", false},
		{"cached-svg", "/heatmap/DC1.svg", false},
		{"cached-index", "/", false},
	} {
		req := cachedReq(t, p, tc.path, tc.revalidate)
		p.ServeCached(w, req) // warm the header map
		if allocs := testing.AllocsPerRun(200, func() {
			p.ServeCached(w, req)
		}); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestMetricsScrapeZeroAlloc guards the /metrics path: the exposition
// reuses its buffers, so scrapes allocate nothing in steady state.
func TestMetricsScrapeZeroAlloc(t *testing.T) {
	p := benchPortal(t)
	w := &nopResponseWriter{}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	p.ServeMetrics(w, req) // warm buffers and header map
	if allocs := testing.AllocsPerRun(100, func() {
		p.ServeMetrics(w, req)
	}); allocs != 0 {
		t.Errorf("metrics scrape: %v allocs/op, want 0", allocs)
	}
}
