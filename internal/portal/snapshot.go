package portal

import (
	"fmt"
	"sort"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/diagnosis"
	"pingmesh/internal/dsa"
	"pingmesh/internal/reportdb"
	"pingmesh/internal/topology"
	"pingmesh/internal/viz"
)

// DefaultRankLimit caps the published root-cause candidate ranking.
const DefaultRankLimit = 64

// SLAEntry is one scope's latest network SLA: the row the §4.3 "is it a
// network issue?" conversation starts from. Durations marshal as
// nanoseconds.
type SLAEntry struct {
	Scope       string        `json:"scope"`
	WindowStart time.Time     `json:"window_start"`
	WindowEnd   time.Time     `json:"window_end"`
	Probes      int64         `json:"probes"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	DropRate    float64       `json:"drop_rate"`
	FailureRate float64       `json:"failure_rate"`
}

// AlertEntry is one fired SLA violation in the feed.
type AlertEntry struct {
	Scope    string        `json:"scope"`
	At       time.Time     `json:"at"`
	Reason   string        `json:"reason"`
	DropRate float64       `json:"drop_rate"`
	P99      time.Duration `json:"p99_ns"`
}

// HeatmapView is one DC's latest hourly heatmap with its Figure 8
// classification.
type HeatmapView struct {
	DC             string
	Heatmap        *viz.Heatmap
	Classification viz.Classification
	From, To       time.Time
}

// Snapshot is one immutable epoch of DSA outputs: everything the portal
// serves, assembled once per analysis cycle and swapped in atomically.
// Snapshots are never mutated after publication — readers on any number
// of goroutines share them freely.
type Snapshot struct {
	Epoch       uint64
	PublishedAt time.Time
	// SLA holds the latest entry per scope (server/pod/podset/dc/service,
	// plus interdc pairs).
	SLA map[string]SLAEntry
	// Alerts is the recent alert feed, newest first.
	Alerts []AlertEntry
	// Heatmaps holds the latest hourly heatmap per DC name.
	Heatmaps map[string]HeatmapView
	// Thresholds are the SLA limits triage verdicts are judged against.
	Thresholds analysis.Thresholds
	// Diagnosis is the epoch's root-cause vote ranking (nil when the
	// deployment runs without a diagnosis collector).
	Diagnosis *diagnosis.Ranking
}

// BuildSnapshot assembles a snapshot from the pipeline's report database
// and retained heatmaps. now anchors the alert-feed recency cutoff.
func BuildSnapshot(p *dsa.Pipeline, now time.Time, alertWindow time.Duration, alertLimit int) (*Snapshot, error) {
	s := &Snapshot{
		PublishedAt: now,
		SLA:         make(map[string]SLAEntry),
		Heatmaps:    make(map[string]HeatmapView),
		Thresholds:  p.Thresholds(),
	}

	rows, err := p.DB().Query(dsa.TableSLA)
	if err != nil {
		return nil, fmt.Errorf("portal: %w", err)
	}
	for _, r := range rows {
		e, err := slaEntryFromRow(r)
		if err != nil {
			return nil, err
		}
		if prev, ok := s.SLA[e.Scope]; !ok || e.WindowEnd.After(prev.WindowEnd) {
			s.SLA[e.Scope] = e
		}
	}

	// The alert feed: the portal's canonical reportdb read
	// (Where + OrderByDesc + Limit — benchmarked in internal/reportdb).
	cutoff := now.Add(-alertWindow)
	alerts, err := p.DB().Query(dsa.TableAlerts,
		reportdb.Where(func(r reportdb.Row) bool {
			at, ok := r["at"].(time.Time)
			return ok && !at.Before(cutoff)
		}),
		reportdb.OrderByDesc("at"),
		reportdb.Limit(alertLimit))
	if err != nil {
		return nil, fmt.Errorf("portal: %w", err)
	}
	for _, r := range alerts {
		s.Alerts = append(s.Alerts, AlertEntry{
			Scope:    str(r["scope"]),
			At:       tim(r["at"]),
			Reason:   str(r["reason"]),
			DropRate: f64(r["drop_rate"]),
			P99:      dur(r["p99"]),
		})
	}

	for dc, hr := range p.Heatmaps() {
		s.Heatmaps[dc] = HeatmapView{
			DC: dc, Heatmap: hr.Heatmap, Classification: hr.Classification,
			From: hr.From, To: hr.To,
		}
	}
	if col := p.Diagnosis(); col != nil {
		s.Diagnosis = col.Snapshot(DefaultRankLimit)
	}
	return s, nil
}

func slaEntryFromRow(r reportdb.Row) (SLAEntry, error) {
	scope, ok := r["scope"].(string)
	if !ok {
		return SLAEntry{}, fmt.Errorf("portal: SLA row without scope: %v", r)
	}
	return SLAEntry{
		Scope:       scope,
		WindowStart: tim(r["window_start"]),
		WindowEnd:   tim(r["window_end"]),
		Probes:      i64(r["probes"]),
		P50:         dur(r["p50"]),
		P99:         dur(r["p99"]),
		DropRate:    f64(r["drop_rate"]),
		FailureRate: f64(r["failure_rate"]),
	}, nil
}

// Loose row-value accessors: reportdb rows are typed maps and absent
// columns are NULL-ish, so zero values are the right degradation.
func str(v any) string {
	s, _ := v.(string)
	return s
}
func tim(v any) time.Time {
	t, _ := v.(time.Time)
	return t
}
func i64(v any) int64 {
	n, _ := v.(int64)
	return n
}
func f64(v any) float64 {
	f, _ := v.(float64)
	return f
}
func dur(v any) time.Duration {
	d, _ := v.(time.Duration)
	return d
}

// sortedScopes returns the snapshot's SLA scopes in name order.
func (s *Snapshot) sortedScopes() []string {
	scopes := make([]string, 0, len(s.SLA))
	for k := range s.SLA {
		scopes = append(scopes, k)
	}
	sort.Strings(scopes)
	return scopes
}

// Triage verdicts: the three possible answers of the §4.3 decision
// procedure.
const (
	VerdictNetwork      = "network"
	VerdictNotNetwork   = "not-network"
	VerdictInconclusive = "inconclusive"
)

// TriageResult is the §4.3 decision procedure as data: the verdict plus
// every number that supports it, so the caller can disagree.
type TriageResult struct {
	Verdict string `json:"verdict"`
	Reason  string `json:"reason"`
	Src     string `json:"src"` // resolved source pod ref
	Dst     string `json:"dst"` // resolved destination pod ref
	DCScope string `json:"dc_scope,omitempty"`

	// DC-level evidence (the scope's SLA entry, if known).
	DCSLA *SLAEntry `json:"dc_sla,omitempty"`
	// Pair-level evidence from the heatmap cell, if it has data.
	PairP99    time.Duration `json:"pair_p99_ns,omitempty"`
	PairProbes uint64        `json:"pair_probes,omitempty"`
	PairColor  string        `json:"pair_color,omitempty"`

	// Thresholds the evidence was judged against.
	MaxDropRate float64       `json:"max_drop_rate"`
	MaxP99      time.Duration `json:"max_p99_ns"`

	// PinnedHop names the root-cause engine's current top vote suspect on
	// the pair's candidate path, when diagnosis is wired and a suspect
	// clears its threshold; Diagnose links the full evidence chain. These
	// make /triage the thin summary of /diagnose.
	PinnedHop string `json:"pinned_hop,omitempty"`
	Diagnose  string `json:"diagnose,omitempty"`
}

// resolvePod resolves a src/dst parameter — a pod ref ("d0.s1.p2"), a
// server name, or a server address — to a pod reference.
func resolvePod(top *topology.Topology, s string) (analysis.PodRef, bool) {
	if ref, err := analysis.ParsePodRef(s); err == nil {
		return ref, true
	}
	if id, ok := top.ServerByAddrString(s); ok {
		sv := top.Server(id)
		return analysis.PodRef{DC: sv.DC, Podset: sv.Podset, Pod: sv.Pod}, true
	}
	for _, sv := range top.Servers() {
		if sv.Name == s {
			return analysis.PodRef{DC: sv.DC, Podset: sv.Podset, Pod: sv.Pod}, true
		}
	}
	return analysis.PodRef{}, false
}

// violated reports whether an SLA entry breaches the thresholds, with the
// paper's MinProbes suppression.
func violated(e SLAEntry, th analysis.Thresholds) bool {
	if uint64(e.Probes) < th.MinProbes {
		return false
	}
	return (th.MaxDropRate > 0 && e.DropRate > th.MaxDropRate) ||
		(th.MaxP99 > 0 && e.P99 > th.MaxP99)
}

// Triage answers "is it a network issue?" for a server pair (§4.3): it
// compares the pair's latency/drop evidence from the latest heatmap
// against the DC-level SLA and returns network / not-network /
// inconclusive with the supporting numbers.
func (s *Snapshot) Triage(top *topology.Topology, srcParam, dstParam string) TriageResult {
	th := s.Thresholds
	res := TriageResult{
		Verdict:     VerdictInconclusive,
		MaxDropRate: th.MaxDropRate,
		MaxP99:      th.MaxP99,
	}
	src, ok := resolvePod(top, srcParam)
	if !ok {
		res.Reason = fmt.Sprintf("source %q is not a known server, address, or pod ref", srcParam)
		return res
	}
	dst, ok := resolvePod(top, dstParam)
	if !ok {
		res.Reason = fmt.Sprintf("destination %q is not a known server, address, or pod ref", dstParam)
		return res
	}
	res.Src, res.Dst = src.String(), dst.String()

	if src.DC != dst.DC {
		return s.triageInterDC(top, src, dst, res)
	}

	dcName := top.DCs[src.DC].Name
	scope, e := s.pairScopeSLA(top, src, dst)
	res.DCScope = scope
	dcHealthy := false
	if e != nil {
		res.DCSLA = e
		if violated(*e, th) {
			res.Verdict = VerdictNetwork
			res.Reason = fmt.Sprintf("DC-level SLA violated: p99=%v drop=%.2g over %d probes", e.P99, e.DropRate, e.Probes)
			return res
		}
		dcHealthy = uint64(e.Probes) >= th.MinProbes
	}

	hv, ok := s.Heatmaps[dcName]
	if !ok {
		res.Reason = "no heatmap published for " + dcName + " yet"
		return res
	}
	cell, ok := lookupCell(hv.Heatmap, src, dst)
	if !ok || !cell.HasData {
		res.Reason = "pod pair has no heatmap data in the latest window"
		return res
	}
	res.PairP99, res.PairProbes = cell.P99, cell.Probes
	res.PairColor = cell.Color().String()
	if cell.Probes < th.MinProbes {
		// The paper's MinProbes suppression, applied at pair granularity: a
		// handful of samples makes the cell's p99 the max of a few draws, so
		// a red cell alone cannot convict the network. Fall back to the
		// DC-level evidence.
		if dcHealthy {
			res.Verdict = VerdictNotNetwork
			res.Reason = fmt.Sprintf("pod pair has only %d probes (< %d): too few to judge, and the DC-level SLA is healthy", cell.Probes, th.MinProbes)
		} else {
			res.Reason = fmt.Sprintf("pod pair has only %d probes (< %d) and no DC-level SLA evidence", cell.Probes, th.MinProbes)
		}
		return res
	}
	switch cell.Color() {
	case viz.Red:
		res.Verdict = VerdictNetwork
		res.Reason = fmt.Sprintf("pod-pair p99 %v exceeds the %v SLA while the DC is healthy: localized network problem", cell.P99, viz.RedAbove)
	case viz.Yellow:
		res.Verdict = VerdictNotNetwork
		res.Reason = fmt.Sprintf("pod-pair p99 %v is borderline but within the %v SLA; look at the application first", cell.P99, viz.RedAbove)
	default:
		res.Verdict = VerdictNotNetwork
		res.Reason = fmt.Sprintf("DC SLA healthy and pod-pair p99 %v well within SLA: not a network issue", cell.P99)
	}
	return res
}

// triageInterDC judges a cross-DC pair from the inter-DC pipeline's SLA
// scope (§6.2), since heatmaps are per-DC.
func (s *Snapshot) triageInterDC(top *topology.Topology, src, dst analysis.PodRef, res TriageResult) TriageResult {
	scope, e := s.pairScopeSLA(top, src, dst)
	res.DCScope = scope
	if e == nil {
		res.Reason = "no inter-DC SLA data for " + scope
		return res
	}
	res.DCSLA = e
	if violated(*e, s.Thresholds) {
		res.Verdict = VerdictNetwork
		res.Reason = fmt.Sprintf("inter-DC SLA violated: p99=%v drop=%.2g", e.P99, e.DropRate)
	} else {
		res.Verdict = VerdictNotNetwork
		res.Reason = fmt.Sprintf("inter-DC SLA healthy: p99=%v drop=%.2g", e.P99, e.DropRate)
	}
	return res
}

// pairScopeSLA names the SLA scope judging a pod pair — "dc/<name>" inside
// one DC, "interdc/<a>-><b>" across DCs — and returns its latest entry
// (nil when the scope has none). Both the §4.3 triage summary and the
// diagnosis chain's first assertion read this one helper: /triage is a
// thin summary over the same evidence the chain spells out.
func (s *Snapshot) pairScopeSLA(top *topology.Topology, src, dst analysis.PodRef) (string, *SLAEntry) {
	var scope string
	if src.DC != dst.DC {
		scope = "interdc/" + top.DCs[src.DC].Name + "->" + top.DCs[dst.DC].Name
	} else {
		scope = "dc/" + top.DCs[src.DC].Name
	}
	if e, ok := s.SLA[scope]; ok {
		return scope, &e
	}
	return scope, nil
}

// Evidence adapts the snapshot into the diagnosis engine's evidence
// source: the chain's first two assertions (pair SLA, heatmap cell) read
// the same immutable epoch every other portal endpoint serves.
func (s *Snapshot) Evidence(top *topology.Topology) diagnosis.EvidenceSource {
	return &snapshotEvidence{snap: s, top: top}
}

type snapshotEvidence struct {
	snap *Snapshot
	top  *topology.Topology
}

func podRefOf(top *topology.Topology, id topology.ServerID) analysis.PodRef {
	sv := top.Server(id)
	return analysis.PodRef{DC: sv.DC, Podset: sv.Podset, Pod: sv.Pod}
}

func (se *snapshotEvidence) PairSLA(src, dst topology.ServerID) (diagnosis.SLAFacts, bool) {
	scope, e := se.snap.pairScopeSLA(se.top, podRefOf(se.top, src), podRefOf(se.top, dst))
	if e == nil {
		return diagnosis.SLAFacts{Scope: scope}, false
	}
	return diagnosis.SLAFacts{
		Scope: scope, Probes: e.Probes, P99: e.P99, DropRate: e.DropRate,
		Violated: violated(*e, se.snap.Thresholds),
	}, true
}

func (se *snapshotEvidence) PairCell(src, dst topology.ServerID) (diagnosis.CellFacts, bool) {
	srcRef, dstRef := podRefOf(se.top, src), podRefOf(se.top, dst)
	if srcRef.DC != dstRef.DC {
		return diagnosis.CellFacts{}, false // heatmaps are per-DC
	}
	hv, ok := se.snap.Heatmaps[se.top.DCs[srcRef.DC].Name]
	if !ok {
		return diagnosis.CellFacts{}, false
	}
	cell, ok := lookupCell(hv.Heatmap, srcRef, dstRef)
	if !ok || !cell.HasData {
		return diagnosis.CellFacts{}, false
	}
	return diagnosis.CellFacts{
		Probes: cell.Probes, P99: cell.P99, Color: cell.Color().String(),
		Judgeable: cell.Probes >= se.snap.Thresholds.MinProbes,
	}, true
}

// lookupCell finds the heatmap cell for a pod pair.
func lookupCell(h *viz.Heatmap, src, dst analysis.PodRef) (viz.Cell, bool) {
	si, di := -1, -1
	for i, p := range h.Pods {
		if p == src {
			si = i
		}
		if p == dst {
			di = i
		}
	}
	if si < 0 || di < 0 {
		return viz.Cell{}, false
	}
	return h.Cells[si][di], true
}
