// Package topology models the data center network structure Pingmesh runs
// on (§2.1 of the paper): servers connect to a top-of-rack (ToR) switch to
// form a Pod; tens of ToRs connect to a tier of Leaf switches to form a
// Podset; Podsets connect through a tier of Spine switches; data centers
// interconnect over an inter-DC network.
//
// The topology is the single input of the Pingmesh Generator and of the
// network simulator, so it is immutable after construction.
package topology

import (
	"fmt"
	"net/netip"
)

// ServerID is a fleet-global dense index of a server.
type ServerID int32

// SwitchID is a fleet-global dense index of a switch.
type SwitchID int32

// Tier identifies the layer a switch occupies in the Clos fabric.
type Tier int

// Switch tiers, bottom up.
const (
	TierToR Tier = iota
	TierLeaf
	TierSpine
)

// String returns the lowercase tier name.
func (t Tier) String() string {
	switch t {
	case TierToR:
		return "tor"
	case TierLeaf:
		return "leaf"
	case TierSpine:
		return "spine"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Server is one machine in the fleet.
type Server struct {
	ID     ServerID
	Name   string // e.g. "DC1-ps02-pod05-s13"
	Addr   netip.Addr
	DC     int // index into Topology.DCs
	Podset int // index within the DC
	Pod    int // index within the podset
	Rank   int // index within the pod; the intra-DC algorithm pairs equal ranks
}

// Switch is one network device.
type Switch struct {
	ID     SwitchID
	Name   string // e.g. "DC1-ps02-tor05"
	Tier   Tier
	DC     int
	Podset int // -1 for spines (they serve the whole DC)
	Pod    int // -1 except for ToRs
}

// Pod is a rack: one ToR plus the servers cabled to it.
type Pod struct {
	Index   int
	ToR     SwitchID
	Servers []ServerID
}

// Podset groups pods that share a set of Leaf switches.
type Podset struct {
	Index  int
	Leaves []SwitchID
	Pods   []Pod
}

// Servers returns the IDs of every server in the podset, in pod order.
func (p *Podset) Servers() []ServerID {
	var ids []ServerID
	for i := range p.Pods {
		ids = append(ids, p.Pods[i].Servers...)
	}
	return ids
}

// DC is one data center.
type DC struct {
	Name    string
	Index   int
	Podsets []Podset
	Spines  []SwitchID
}

// Servers returns the IDs of every server in the DC, in pod order.
func (d *DC) Servers() []ServerID {
	var ids []ServerID
	for i := range d.Podsets {
		for j := range d.Podsets[i].Pods {
			ids = append(ids, d.Podsets[i].Pods[j].Servers...)
		}
	}
	return ids
}

// Topology is an immutable multi-DC fleet.
type Topology struct {
	DCs      []DC
	servers  []Server
	switches []Switch
	byAddr   map[netip.Addr]ServerID
	byName   map[string]ServerID
}

// NumServers returns the number of servers in the fleet.
func (t *Topology) NumServers() int { return len(t.servers) }

// NumSwitches returns the number of switches in the fleet.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// Server returns the server with the given ID.
func (t *Topology) Server(id ServerID) *Server {
	return &t.servers[id]
}

// Switch returns the switch with the given ID.
func (t *Topology) Switch(id SwitchID) *Switch {
	return &t.switches[id]
}

// Servers returns all servers. Callers must not mutate the result.
func (t *Topology) Servers() []Server { return t.servers }

// Switches returns all switches. Callers must not mutate the result.
func (t *Topology) Switches() []Switch { return t.switches }

// ServerByAddr looks a server up by IP address.
func (t *Topology) ServerByAddr(a netip.Addr) (ServerID, bool) {
	id, ok := t.byAddr[a]
	return id, ok
}

// ServerByAddrString looks a server up by the textual form of its IP
// address (the form pinglists and probe records carry).
func (t *Topology) ServerByAddrString(s string) (ServerID, bool) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return 0, false
	}
	return t.ServerByAddr(a)
}

// ServerByName looks a server up by host name.
func (t *Topology) ServerByName(name string) (ServerID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// PodOf returns the pod containing server id.
func (t *Topology) PodOf(id ServerID) *Pod {
	s := &t.servers[id]
	return &t.DCs[s.DC].Podsets[s.Podset].Pods[s.Pod]
}

// PodsetOf returns the podset containing server id.
func (t *Topology) PodsetOf(id ServerID) *Podset {
	s := &t.servers[id]
	return &t.DCs[s.DC].Podsets[s.Podset]
}

// ToROf returns the ToR switch of server id.
func (t *Topology) ToROf(id ServerID) SwitchID {
	return t.PodOf(id).ToR
}

// SamePod reports whether two servers share a ToR.
func (t *Topology) SamePod(a, b ServerID) bool {
	sa, sb := &t.servers[a], &t.servers[b]
	return sa.DC == sb.DC && sa.Podset == sb.Podset && sa.Pod == sb.Pod
}

// SamePodset reports whether two servers share a podset.
func (t *Topology) SamePodset(a, b ServerID) bool {
	sa, sb := &t.servers[a], &t.servers[b]
	return sa.DC == sb.DC && sa.Podset == sb.Podset
}

// SameDC reports whether two servers are in the same data center.
func (t *Topology) SameDC(a, b ServerID) bool {
	return t.servers[a].DC == t.servers[b].DC
}

// ToRs returns every ToR switch ID in the given DC, podset-major order.
func (t *Topology) ToRs(dc int) []SwitchID {
	var ids []SwitchID
	for i := range t.DCs[dc].Podsets {
		for j := range t.DCs[dc].Podsets[i].Pods {
			ids = append(ids, t.DCs[dc].Podsets[i].Pods[j].ToR)
		}
	}
	return ids
}

// Validate checks structural invariants: dense IDs, consistent back
// references, unique names and addresses, and non-empty tiers wherever a
// podset has more than one pod. It returns the first violation found.
func (t *Topology) Validate() error {
	if len(t.DCs) == 0 {
		return fmt.Errorf("topology: no data centers")
	}
	seenAddr := make(map[netip.Addr]bool, len(t.servers))
	seenName := make(map[string]bool, len(t.servers))
	for i := range t.servers {
		s := &t.servers[i]
		if int(s.ID) != i {
			return fmt.Errorf("topology: server %d has ID %d", i, s.ID)
		}
		if s.DC < 0 || s.DC >= len(t.DCs) {
			return fmt.Errorf("topology: server %s references DC %d", s.Name, s.DC)
		}
		dc := &t.DCs[s.DC]
		if s.Podset < 0 || s.Podset >= len(dc.Podsets) {
			return fmt.Errorf("topology: server %s references podset %d", s.Name, s.Podset)
		}
		ps := &dc.Podsets[s.Podset]
		if s.Pod < 0 || s.Pod >= len(ps.Pods) {
			return fmt.Errorf("topology: server %s references pod %d", s.Name, s.Pod)
		}
		pod := &ps.Pods[s.Pod]
		if s.Rank < 0 || s.Rank >= len(pod.Servers) || pod.Servers[s.Rank] != s.ID {
			return fmt.Errorf("topology: server %s rank %d not reflected in pod", s.Name, s.Rank)
		}
		if seenAddr[s.Addr] {
			return fmt.Errorf("topology: duplicate address %v", s.Addr)
		}
		seenAddr[s.Addr] = true
		if seenName[s.Name] {
			return fmt.Errorf("topology: duplicate name %q", s.Name)
		}
		seenName[s.Name] = true
	}
	for i := range t.switches {
		sw := &t.switches[i]
		if int(sw.ID) != i {
			return fmt.Errorf("topology: switch %d has ID %d", i, sw.ID)
		}
		if sw.DC < 0 || sw.DC >= len(t.DCs) {
			return fmt.Errorf("topology: switch %s references DC %d", sw.Name, sw.DC)
		}
	}
	for di := range t.DCs {
		dc := &t.DCs[di]
		if dc.Index != di {
			return fmt.Errorf("topology: DC %q index %d at position %d", dc.Name, dc.Index, di)
		}
		if len(dc.Podsets) == 0 {
			return fmt.Errorf("topology: DC %q has no podsets", dc.Name)
		}
		if len(dc.Podsets) > 1 && len(dc.Spines) == 0 {
			return fmt.Errorf("topology: DC %q has %d podsets but no spines", dc.Name, len(dc.Podsets))
		}
		for pi := range dc.Podsets {
			ps := &dc.Podsets[pi]
			if ps.Index != pi {
				return fmt.Errorf("topology: DC %q podset index %d at position %d", dc.Name, ps.Index, pi)
			}
			if len(ps.Pods) == 0 {
				return fmt.Errorf("topology: DC %q podset %d has no pods", dc.Name, pi)
			}
			if len(ps.Pods) > 1 && len(ps.Leaves) == 0 {
				return fmt.Errorf("topology: DC %q podset %d has %d pods but no leaves", dc.Name, pi, len(ps.Pods))
			}
			for qi := range ps.Pods {
				pod := &ps.Pods[qi]
				if pod.Index != qi {
					return fmt.Errorf("topology: DC %q podset %d pod index %d at position %d", dc.Name, pi, pod.Index, qi)
				}
				if len(pod.Servers) == 0 {
					return fmt.Errorf("topology: DC %q podset %d pod %d has no servers", dc.Name, pi, qi)
				}
				tor := t.Switch(pod.ToR)
				if tor.Tier != TierToR || tor.DC != di || tor.Podset != pi || tor.Pod != qi {
					return fmt.Errorf("topology: pod %s/%d/%d ToR back-reference mismatch", dc.Name, pi, qi)
				}
			}
		}
	}
	return nil
}
