package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// DCSpec describes one data center to generate.
type DCSpec struct {
	// Name of the data center, e.g. "DC1". Must be unique in the fleet.
	Name string `json:"name"`
	// Podsets is the number of podsets.
	Podsets int `json:"podsets"`
	// PodsPerPodset is the number of pods (racks) per podset. The paper's
	// podsets contain around 20 pods.
	PodsPerPodset int `json:"podsPerPodset"`
	// ServersPerPod is the number of servers under each ToR (paper: ~40).
	ServersPerPod int `json:"serversPerPod"`
	// LeavesPerPodset is the number of Leaf switches per podset (paper: 2-8).
	LeavesPerPodset int `json:"leavesPerPodset"`
	// Spines is the number of Spine switches in the DC (paper: tens to
	// hundreds).
	Spines int `json:"spines"`
}

// Servers returns the number of servers this spec generates.
func (s DCSpec) Servers() int { return s.Podsets * s.PodsPerPodset * s.ServersPerPod }

func (s DCSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("topology: DC spec with empty name")
	}
	if s.Podsets <= 0 || s.PodsPerPodset <= 0 || s.ServersPerPod <= 0 {
		return fmt.Errorf("topology: DC %s: podsets, pods and servers must be positive", s.Name)
	}
	if s.PodsPerPodset > 1 && s.LeavesPerPodset <= 0 {
		return fmt.Errorf("topology: DC %s: multiple pods per podset require leaves", s.Name)
	}
	if s.Podsets > 1 && s.Spines <= 0 {
		return fmt.Errorf("topology: DC %s: multiple podsets require spines", s.Name)
	}
	if s.Servers() > 65000 {
		return fmt.Errorf("topology: DC %s has %d servers, exceeding the 10.dc.x.y addressing plan", s.Name, s.Servers())
	}
	return nil
}

// Spec describes a whole fleet to generate.
type Spec struct {
	DCs []DCSpec `json:"dcs"`
}

// Build generates a Topology from the spec. Server addresses follow a
// 10.dc.x.y plan where x.y is a flat per-DC server counter, so a DC can
// hold up to 65000 servers.
func Build(spec Spec) (*Topology, error) {
	if len(spec.DCs) == 0 {
		return nil, fmt.Errorf("topology: spec has no DCs")
	}
	if len(spec.DCs) > 200 {
		return nil, fmt.Errorf("topology: more than 200 DCs exceeds the addressing plan")
	}
	t := &Topology{
		byAddr: make(map[netip.Addr]ServerID),
		byName: make(map[string]ServerID),
	}
	names := make(map[string]bool)
	for di, ds := range spec.DCs {
		if err := ds.validate(); err != nil {
			return nil, err
		}
		if names[ds.Name] {
			return nil, fmt.Errorf("topology: duplicate DC name %q", ds.Name)
		}
		names[ds.Name] = true
		dc := DC{Name: ds.Name, Index: di}
		hostNum := 1 // per-DC flat counter; starts at 1 to skip 10.d.0.0
		for psi := 0; psi < ds.Podsets; psi++ {
			ps := Podset{Index: psi}
			for li := 0; li < ds.LeavesPerPodset; li++ {
				ps.Leaves = append(ps.Leaves, t.addSwitch(Switch{
					Name: fmt.Sprintf("%s-ps%02d-leaf%02d", ds.Name, psi, li),
					Tier: TierLeaf, DC: di, Podset: psi, Pod: -1,
				}))
			}
			for qi := 0; qi < ds.PodsPerPodset; qi++ {
				pod := Pod{Index: qi}
				pod.ToR = t.addSwitch(Switch{
					Name: fmt.Sprintf("%s-ps%02d-tor%02d", ds.Name, psi, qi),
					Tier: TierToR, DC: di, Podset: psi, Pod: qi,
				})
				for si := 0; si < ds.ServersPerPod; si++ {
					addr := netip.AddrFrom4([4]byte{10, byte(di), byte(hostNum >> 8), byte(hostNum)})
					hostNum++
					pod.Servers = append(pod.Servers, t.addServer(Server{
						Name: fmt.Sprintf("%s-ps%02d-pod%02d-s%02d", ds.Name, psi, qi, si),
						Addr: addr,
						DC:   di, Podset: psi, Pod: qi, Rank: si,
					}))
				}
				ps.Pods = append(ps.Pods, pod)
			}
			dc.Podsets = append(dc.Podsets, ps)
		}
		for si := 0; si < ds.Spines; si++ {
			dc.Spines = append(dc.Spines, t.addSwitch(Switch{
				Name: fmt.Sprintf("%s-spine%03d", ds.Name, si),
				Tier: TierSpine, DC: di, Podset: -1, Pod: -1,
			}))
		}
		t.DCs = append(t.DCs, dc)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated fleet failed validation: %w", err)
	}
	return t, nil
}

func (t *Topology) addServer(s Server) ServerID {
	s.ID = ServerID(len(t.servers))
	t.servers = append(t.servers, s)
	t.byAddr[s.Addr] = s.ID
	t.byName[s.Name] = s.ID
	return s.ID
}

func (t *Topology) addSwitch(sw Switch) SwitchID {
	sw.ID = SwitchID(len(t.switches))
	t.switches = append(t.switches, sw)
	return sw.ID
}

// SmallTestbed returns a compact two-DC fleet useful in examples and tests:
// each DC has 2 podsets x 3 pods x 4 servers (24 servers per DC).
func SmallTestbed() *Topology {
	t, err := Build(Spec{DCs: []DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
		{Name: "DC2", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		panic(err) // static spec cannot fail
	}
	return t
}

// WriteSpec encodes the spec as JSON, the on-disk format the Pingmesh
// Controller reads its network graph from.
func WriteSpec(w io.Writer, spec Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// ReadSpec decodes a JSON spec.
func ReadSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("topology: decoding spec: %w", err)
	}
	return spec, nil
}
