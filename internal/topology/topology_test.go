package topology

import (
	"bytes"
	"net/netip"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, spec Spec) *Topology {
	t.Helper()
	top, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return top
}

func singleDC(t *testing.T) *Topology {
	return mustBuild(t, Spec{DCs: []DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
}

func TestBuildCounts(t *testing.T) {
	top := singleDC(t)
	if got, want := top.NumServers(), 2*3*4; got != want {
		t.Fatalf("NumServers = %d, want %d", got, want)
	}
	// Switches: 2 podsets * (2 leaves + 3 tors) + 4 spines.
	if got, want := top.NumSwitches(), 2*(2+3)+4; got != want {
		t.Fatalf("NumSwitches = %d, want %d", got, want)
	}
	if got := len(top.ToRs(0)); got != 6 {
		t.Fatalf("ToRs = %d, want 6", got)
	}
}

func TestBuildValidates(t *testing.T) {
	top := singleDC(t)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"empty", Spec{}},
		{"noName", Spec{DCs: []DCSpec{{Podsets: 1, PodsPerPodset: 1, ServersPerPod: 1}}}},
		{"zeroServers", Spec{DCs: []DCSpec{{Name: "X", Podsets: 1, PodsPerPodset: 1}}}},
		{"multiPodNoLeaf", Spec{DCs: []DCSpec{{Name: "X", Podsets: 1, PodsPerPodset: 2, ServersPerPod: 1}}}},
		{"multiPodsetNoSpine", Spec{DCs: []DCSpec{{Name: "X", Podsets: 2, PodsPerPodset: 1, ServersPerPod: 1, LeavesPerPodset: 1}}}},
		{"dupDC", Spec{DCs: []DCSpec{
			{Name: "X", Podsets: 1, PodsPerPodset: 1, ServersPerPod: 1},
			{Name: "X", Podsets: 1, PodsPerPodset: 1, ServersPerPod: 1},
		}}},
		{"tooBig", Spec{DCs: []DCSpec{{Name: "X", Podsets: 300, PodsPerPodset: 250, ServersPerPod: 10, Spines: 1, LeavesPerPodset: 1}}}},
	}
	for _, c := range cases {
		if _, err := Build(c.spec); err == nil {
			t.Errorf("%s: Build accepted invalid spec", c.name)
		}
	}
}

func TestServerLookups(t *testing.T) {
	top := singleDC(t)
	for _, s := range top.Servers() {
		byAddr, ok := top.ServerByAddr(s.Addr)
		if !ok || byAddr != s.ID {
			t.Fatalf("ServerByAddr(%v) = %v,%v", s.Addr, byAddr, ok)
		}
		byName, ok := top.ServerByName(s.Name)
		if !ok || byName != s.ID {
			t.Fatalf("ServerByName(%q) = %v,%v", s.Name, byName, ok)
		}
	}
	if _, ok := top.ServerByAddr(netip.MustParseAddr("192.168.0.1")); ok {
		t.Fatal("found nonexistent address")
	}
	if _, ok := top.ServerByName("nope"); ok {
		t.Fatal("found nonexistent name")
	}
}

func TestRelations(t *testing.T) {
	top := SmallTestbed()
	var a, b ServerID // same pod
	pod := top.PodOf(0)
	a, b = pod.Servers[0], pod.Servers[1]
	if !top.SamePod(a, b) || !top.SamePodset(a, b) || !top.SameDC(a, b) {
		t.Fatal("same-pod servers misclassified")
	}
	// Different pod, same podset.
	ps := top.PodsetOf(0)
	c := ps.Pods[1].Servers[0]
	if top.SamePod(a, c) || !top.SamePodset(a, c) || !top.SameDC(a, c) {
		t.Fatal("same-podset servers misclassified")
	}
	// Different DC.
	d := top.DCs[1].Podsets[0].Pods[0].Servers[0]
	if top.SamePod(a, d) || top.SamePodset(a, d) || top.SameDC(a, d) {
		t.Fatal("cross-DC servers misclassified")
	}
}

func TestToROf(t *testing.T) {
	top := singleDC(t)
	for _, s := range top.Servers() {
		tor := top.Switch(top.ToROf(s.ID))
		if tor.Tier != TierToR {
			t.Fatalf("ToROf(%v) has tier %v", s.ID, tor.Tier)
		}
		if tor.DC != s.DC || tor.Podset != s.Podset || tor.Pod != s.Pod {
			t.Fatalf("ToR %s does not match server %s", tor.Name, s.Name)
		}
	}
}

func TestDCServers(t *testing.T) {
	top := SmallTestbed()
	for di := range top.DCs {
		ids := top.DCs[di].Servers()
		if len(ids) != 24 {
			t.Fatalf("DC %d has %d servers, want 24", di, len(ids))
		}
		for _, id := range ids {
			if top.Server(id).DC != di {
				t.Fatalf("server %v listed under wrong DC", id)
			}
		}
	}
}

func TestUniqueAddressesProperty(t *testing.T) {
	// Property: any in-range spec generates unique addresses and names and
	// passes Validate.
	f := func(p1, p2, s1 uint8) bool {
		spec := Spec{DCs: []DCSpec{{
			Name:            "A",
			Podsets:         int(p1%4) + 1,
			PodsPerPodset:   int(p2%5) + 1,
			ServersPerPod:   int(s1%6) + 1,
			LeavesPerPodset: 2,
			Spines:          2,
		}}}
		top, err := Build(spec)
		if err != nil {
			return false
		}
		return top.Validate() == nil && top.NumServers() == spec.DCs[0].Servers()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := Spec{DCs: []DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 20, ServersPerPod: 40, LeavesPerPodset: 4, Spines: 16},
	}}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	if len(got.DCs) != 1 || got.DCs[0] != spec.DCs[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"dcs":[],"bogus":1}`))
	if err == nil {
		t.Fatal("ReadSpec accepted unknown field")
	}
}

func TestTierString(t *testing.T) {
	if TierToR.String() != "tor" || TierLeaf.String() != "leaf" || TierSpine.String() != "spine" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() != "tier(9)" {
		t.Fatalf("unknown tier = %q", Tier(9).String())
	}
}

func TestNamesEncodeLocation(t *testing.T) {
	top := singleDC(t)
	s := top.Server(0)
	for _, part := range []string{"DC1", "ps00", "pod00", "s00"} {
		if !strings.Contains(s.Name, part) {
			t.Fatalf("server name %q missing %q", s.Name, part)
		}
	}
}

func TestExampleTopologyFileParses(t *testing.T) {
	// The committed example spec (examples/topology.json) that the cmd
	// tools reference must stay valid.
	f, err := os.Open("../../examples/topology.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := ReadSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	top, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumServers() != 3*4*4+2*4*4 {
		t.Fatalf("NumServers = %d", top.NumServers())
	}
}
