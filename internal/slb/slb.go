// Package slb is a small software load balancer in the spirit of Ananta
// (§3.3.2): a single VIP fronts a set of DIP backends. Connections to the
// VIP are proxied to healthy backends round-robin; a health prober takes
// failed backends out of rotation automatically and returns them when they
// recover. The Pingmesh Controller scales out and fails over by putting
// all its replicas behind one VIP.
package slb

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a load balancer.
type Options struct {
	// HealthInterval is how often each backend is probed. Default 500ms.
	HealthInterval time.Duration
	// DialTimeout bounds backend dials (health and proxy). Default 2s.
	DialTimeout time.Duration
	// OnStateChange, if non-nil, is called once per backend health
	// transition (true = back in rotation, false = taken out) — from the
	// health prober or from a proxy fast-fail. Called without locks held;
	// the callback must not block for long.
	OnStateChange func(addr string, healthy bool)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.HealthInterval <= 0 {
		out.HealthInterval = 500 * time.Millisecond
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 2 * time.Second
	}
	return out
}

type backend struct {
	addr      string
	healthy   atomic.Bool
	forwarded atomic.Int64
}

// LoadBalancer proxies TCP connections from one VIP to its backends.
type LoadBalancer struct {
	opts Options
	ln   net.Listener

	mu       sync.RWMutex
	backends []*backend

	next atomic.Uint64
	wg   sync.WaitGroup
	done chan struct{}
}

// New starts a load balancer listening on vipAddr (e.g. "127.0.0.1:0")
// fronting the given backend addresses. Backends start healthy and are
// re-probed continuously.
func New(vipAddr string, backends []string, opts Options) (*LoadBalancer, error) {
	if len(backends) == 0 {
		return nil, errors.New("slb: no backends")
	}
	ln, err := net.Listen("tcp", vipAddr)
	if err != nil {
		return nil, fmt.Errorf("slb: listen %s: %w", vipAddr, err)
	}
	lb := &LoadBalancer{
		opts: opts.withDefaults(),
		ln:   ln,
		done: make(chan struct{}),
	}
	for _, addr := range backends {
		b := &backend{addr: addr}
		b.healthy.Store(true)
		lb.backends = append(lb.backends, b)
	}
	lb.wg.Add(2)
	go lb.acceptLoop()
	go lb.healthLoop()
	return lb, nil
}

// Addr returns the VIP address.
func (lb *LoadBalancer) Addr() net.Addr { return lb.ln.Addr() }

// Close stops the VIP listener and the health prober.
func (lb *LoadBalancer) Close() error {
	close(lb.done)
	err := lb.ln.Close()
	lb.wg.Wait()
	return err
}

// AddBackend adds a DIP to the pool (scale-out without changing the VIP).
func (lb *LoadBalancer) AddBackend(addr string) {
	b := &backend{addr: addr}
	b.healthy.Store(true)
	lb.mu.Lock()
	lb.backends = append(lb.backends, b)
	lb.mu.Unlock()
}

// RemoveBackend removes a DIP from the pool.
func (lb *LoadBalancer) RemoveBackend(addr string) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	for i, b := range lb.backends {
		if b.addr == addr {
			lb.backends = append(lb.backends[:i], lb.backends[i+1:]...)
			return
		}
	}
}

// HealthyBackends returns the addresses currently in rotation.
func (lb *LoadBalancer) HealthyBackends() []string {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	var out []string
	for _, b := range lb.backends {
		if b.healthy.Load() {
			out = append(out, b.addr)
		}
	}
	return out
}

// ForwardCounts returns how many connections each backend has received,
// keyed by address. Intended for tests and dashboards.
func (lb *LoadBalancer) ForwardCounts() map[string]int64 {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	out := make(map[string]int64, len(lb.backends))
	for _, b := range lb.backends {
		out[b.addr] = b.forwarded.Load()
	}
	return out
}

// pick returns the next healthy backend round-robin, or nil.
func (lb *LoadBalancer) pick() *backend {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	n := len(lb.backends)
	if n == 0 {
		return nil
	}
	start := lb.next.Add(1)
	for i := 0; i < n; i++ {
		b := lb.backends[(int(start)+i)%n]
		if b.healthy.Load() {
			return b
		}
	}
	return nil
}

func (lb *LoadBalancer) acceptLoop() {
	defer lb.wg.Done()
	for {
		conn, err := lb.ln.Accept()
		if err != nil {
			select {
			case <-lb.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		lb.wg.Add(1)
		go func() {
			defer lb.wg.Done()
			lb.proxy(conn)
		}()
	}
}

// proxy forwards one client connection to a healthy backend, retrying the
// dial on the next backend if the chosen one fails mid-dial.
func (lb *LoadBalancer) proxy(client net.Conn) {
	defer client.Close()
	for attempt := 0; attempt < 3; attempt++ {
		b := lb.pick()
		if b == nil {
			return // no healthy backends: reset the client
		}
		server, err := net.DialTimeout("tcp", b.addr, lb.opts.DialTimeout)
		if err != nil {
			lb.setHealthy(b, false) // fast-fail: out of rotation until reprobed
			continue
		}
		b.forwarded.Add(1)
		splice(client, server)
		return
	}
}

// setHealthy records a backend's health and fires OnStateChange exactly
// once per transition, however many probers and proxies observe it.
func (lb *LoadBalancer) setHealthy(b *backend, healthy bool) {
	if b.healthy.CompareAndSwap(!healthy, healthy) && lb.opts.OnStateChange != nil {
		lb.opts.OnStateChange(b.addr, healthy)
	}
}

// splice copies bytes both ways until either side closes.
func splice(a, b net.Conn) {
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(a, b)
		if c, ok := a.(*net.TCPConn); ok {
			c.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(b, a)
		if c, ok := b.(*net.TCPConn); ok {
			c.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
	b.Close()
}

func (lb *LoadBalancer) healthLoop() {
	defer lb.wg.Done()
	ticker := time.NewTicker(lb.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-lb.done:
			return
		case <-ticker.C:
		}
		lb.mu.RLock()
		backends := append([]*backend(nil), lb.backends...)
		lb.mu.RUnlock()
		for _, b := range backends {
			conn, err := net.DialTimeout("tcp", b.addr, lb.opts.DialTimeout)
			if err != nil {
				lb.setHealthy(b, false)
				continue
			}
			conn.Close()
			lb.setHealthy(b, true)
		}
	}
}
