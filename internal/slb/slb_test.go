package slb

import (
	"context"
	"sync"
	"testing"
	"time"

	"pingmesh/internal/netlib"
)

// startBackends launches n echo servers and returns their addresses.
func startBackends(t *testing.T, n int) []*netlib.TCPServer {
	t.Helper()
	var out []*netlib.TCPServer
	for i := 0; i < n; i++ {
		s, err := netlib.NewTCPServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		out = append(out, s)
	}
	return out
}

func addrsOf(servers []*netlib.TCPServer) []string {
	var out []string
	for _, s := range servers {
		out = append(out, s.Addr().String())
	}
	return out
}

func TestNewRequiresBackends(t *testing.T) {
	if _, err := New("127.0.0.1:0", nil, Options{}); err == nil {
		t.Fatal("New accepted empty backend list")
	}
}

func TestProxiesTraffic(t *testing.T) {
	backends := startBackends(t, 2)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	p := &netlib.TCPProber{Timeout: 5 * time.Second}
	res, err := p.Probe(context.Background(), lb.Addr().String(), 256)
	if err != nil {
		t.Fatalf("probe through VIP: %v", err)
	}
	if res.PayloadRTT <= 0 {
		t.Fatal("no payload echoed through the VIP")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	backends := startBackends(t, 3)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	p := &netlib.TCPProber{Timeout: 5 * time.Second}
	for i := 0; i < 30; i++ {
		if _, err := p.Probe(context.Background(), lb.Addr().String(), 0); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	counts := lb.ForwardCounts()
	for addr, c := range counts {
		if c < 5 {
			t.Fatalf("backend %s received %d connections, want >=5 of 30", addr, c)
		}
	}
}

func TestFailedBackendLeavesRotation(t *testing.T) {
	backends := startBackends(t, 2)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	dead := backends[0]
	deadAddr := dead.Addr().String()
	dead.Close()

	// Wait for the health prober to notice.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		healthy := lb.HealthyBackends()
		if len(healthy) == 1 && healthy[0] != deadAddr {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h := lb.HealthyBackends(); len(h) != 1 || h[0] == deadAddr {
		t.Fatalf("dead backend still in rotation: %v", h)
	}

	// Traffic continues through the survivor.
	p := &netlib.TCPProber{Timeout: 5 * time.Second}
	for i := 0; i < 10; i++ {
		if _, err := p.Probe(context.Background(), lb.Addr().String(), 64); err != nil {
			t.Fatalf("probe with one dead backend: %v", err)
		}
	}
}

func TestBackendRecoveryRejoins(t *testing.T) {
	backends := startBackends(t, 1)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	// Add a second backend that is initially down, then bring it up.
	s2, err := netlib.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2 := s2.Addr().String()
	s2.Close()
	lb.AddBackend(addr2)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(lb.HealthyBackends()) == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Revive on the same port.
	s3, err := netlib.NewTCPServer(addr2)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr2, err)
	}
	defer s3.Close()
	for time.Now().Before(deadline.Add(5 * time.Second)) {
		if len(lb.HealthyBackends()) == 2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("recovered backend never rejoined: %v", lb.HealthyBackends())
}

// TestOnStateChangeFiresOncePerTransition kills a backend and revives it,
// checking the hook reports each transition exactly once even though the
// prober re-confirms the same state every interval.
func TestOnStateChangeFiresOncePerTransition(t *testing.T) {
	backends := startBackends(t, 2)
	flapAddr := backends[0].Addr().String()

	type event struct {
		addr    string
		healthy bool
	}
	var mu sync.Mutex
	var events []event
	snapshot := func() []event {
		mu.Lock()
		defer mu.Unlock()
		return append([]event(nil), events...)
	}

	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{
		HealthInterval: 30 * time.Millisecond,
		OnStateChange: func(addr string, healthy bool) {
			mu.Lock()
			events = append(events, event{addr, healthy})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	backends[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(snapshot()) < 1 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := snapshot(); len(got) != 1 || got[0] != (event{flapAddr, false}) {
		t.Fatalf("events after kill = %v, want exactly [{%s false}]", got, flapAddr)
	}

	// Let several probe intervals pass: the still-down state must not
	// re-fire the hook.
	time.Sleep(150 * time.Millisecond)
	if got := snapshot(); len(got) != 1 {
		t.Fatalf("down state re-reported: %v", got)
	}

	revived, err := netlib.NewTCPServer(flapAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", flapAddr, err)
	}
	defer revived.Close()
	for time.Now().Before(deadline) && len(snapshot()) < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	got := snapshot()
	if len(got) != 2 || got[1] != (event{flapAddr, true}) {
		t.Fatalf("events after revival = %v, want [... {%s true}]", got, flapAddr)
	}
}

func TestRemoveBackend(t *testing.T) {
	backends := startBackends(t, 2)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	lb.RemoveBackend(backends[0].Addr().String())
	if h := lb.HealthyBackends(); len(h) != 1 {
		t.Fatalf("HealthyBackends = %v after remove", h)
	}
	// Removing a nonexistent address is a no-op.
	lb.RemoveBackend("127.0.0.1:9")
	if h := lb.HealthyBackends(); len(h) != 1 {
		t.Fatalf("HealthyBackends = %v", h)
	}
}

func TestCloseStopsVIP(t *testing.T) {
	backends := startBackends(t, 1)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vip := lb.Addr().String()
	if err := lb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p := &netlib.TCPProber{Timeout: time.Second}
	if _, err := p.Probe(context.Background(), vip, 0); err == nil {
		t.Fatal("VIP still accepting after Close")
	}
}

func TestNoHealthyBackendsResetsClients(t *testing.T) {
	backends := startBackends(t, 1)
	lb, err := New("127.0.0.1:0", addrsOf(backends), Options{HealthInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	backends[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(lb.HealthyBackends()) > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	// With zero healthy backends the VIP accepts and then drops the
	// connection; a payload probe must fail rather than hang.
	p := &netlib.TCPProber{Timeout: 2 * time.Second}
	if _, err := p.Probe(context.Background(), lb.Addr().String(), 64); err == nil {
		t.Fatal("payload probe succeeded with no healthy backends")
	}
}

func BenchmarkVIPProxyProbe(b *testing.B) {
	backend, err := netlib.NewTCPServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer backend.Close()
	lb, err := New("127.0.0.1:0", []string{backend.Addr().String()}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer lb.Close()
	p := &netlib.TCPProber{Timeout: 5 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Probe(context.Background(), lb.Addr().String(), 128); err != nil {
			b.Fatal(err)
		}
	}
}
