package viz

import "fmt"

// Pattern is one of the canonical latency patterns of Figure 8.
type Pattern int

// Patterns, in the order the paper presents them.
const (
	// PatternUnknown means no canonical pattern matched.
	PatternUnknown Pattern = iota
	// PatternNormal is the all-green matrix of Figure 8(a).
	PatternNormal
	// PatternPodsetDown is the white-cross of Figure 8(b): a powered-off
	// podset produces no data in its rows and columns.
	PatternPodsetDown
	// PatternPodsetFailure is the red-cross of Figure 8(c): traffic from
	// and to one podset is out of SLA while the rest is healthy.
	PatternPodsetFailure
	// PatternSpineFailure is Figure 8(d): green squares on the podset
	// diagonal, red everywhere else — intra-podset traffic bypasses the
	// broken Spine layer.
	PatternSpineFailure
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternNormal:
		return "normal"
	case PatternPodsetDown:
		return "podset-down"
	case PatternPodsetFailure:
		return "podset-failure"
	case PatternSpineFailure:
		return "spine-failure"
	case PatternUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Classification is the result of pattern detection.
type Classification struct {
	Pattern Pattern
	// Podset is the affected podset for the podset patterns, -1 otherwise.
	Podset int
}

// Classify detects which Figure 8 pattern the heatmap shows. The
// classifier tolerates a small fraction of off-pattern cells (sampling
// noise) via the dominance thresholds below.
func (h *Heatmap) Classify() Classification {
	n := h.Size()
	if n == 0 {
		return Classification{Pattern: PatternUnknown, Podset: -1}
	}
	const dominance = 0.9 // fraction of cells that must agree

	// Count cell colors split by whether the cell touches each podset and
	// by diagonal (same-podset) vs off-diagonal.
	type counts struct{ green, red, white, total int }
	tally := func(filter func(i, j int) bool) counts {
		var c counts
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || !filter(i, j) {
					continue
				}
				c.total++
				switch h.Color(i, j) {
				case Green:
					c.green++
				case Red, Yellow:
					c.red++
				case White:
					c.white++
				}
			}
		}
		return c
	}

	all := tally(func(i, j int) bool { return true })
	if all.total == 0 {
		return Classification{Pattern: PatternUnknown, Podset: -1}
	}
	if frac(all.green, all.total) >= dominance {
		return Classification{Pattern: PatternNormal, Podset: -1}
	}

	// Podset-centric patterns: find a podset whose rows+columns are
	// dominated by white (down) or red (failure) while the rest is green.
	podsets := map[int]bool{}
	for _, ps := range h.Podsets {
		podsets[ps] = true
	}
	for ps := range podsets {
		touches := func(i, j int) bool { return h.Podsets[i] == ps || h.Podsets[j] == ps }
		rest := func(i, j int) bool { return !touches(i, j) }
		in := tally(touches)
		out := tally(rest)
		if in.total == 0 || out.total == 0 {
			continue
		}
		if frac(out.green, out.total) < dominance {
			continue
		}
		if frac(in.white, in.total) >= dominance {
			return Classification{Pattern: PatternPodsetDown, Podset: ps}
		}
		if frac(in.red, in.total) >= dominance {
			return Classification{Pattern: PatternPodsetFailure, Podset: ps}
		}
	}

	// Spine failure: same-podset cells green, cross-podset cells red.
	diag := tally(func(i, j int) bool { return h.Podsets[i] == h.Podsets[j] })
	cross := tally(func(i, j int) bool { return h.Podsets[i] != h.Podsets[j] })
	if diag.total > 0 && cross.total > 0 &&
		frac(diag.green, diag.total) >= dominance &&
		frac(cross.red, cross.total) >= dominance {
		return Classification{Pattern: PatternSpineFailure, Podset: -1}
	}

	return Classification{Pattern: PatternUnknown, Podset: -1}
}

func frac(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}
