package viz

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/topology"
)

// renderSVGReference is the pre-refactor fmt-based renderer, kept verbatim
// as the golden reference: AppendSVG must stay byte-identical so
// cmd/pingmesh-viz output never shifts under the append-style rewrite.
func renderSVGReference(h *Heatmap) string {
	const cell = 12
	n := len(h.Pods)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, n*cell+2, n*cell+2)
	b.WriteString("\n")
	fill := map[Color]string{White: "#ffffff", Green: "#2e7d32", Yellow: "#f9a825", Red: "#c62828"}
	for i := range h.Cells {
		for j := range h.Cells[i] {
			c := h.Cells[i][j]
			title := "no data"
			if c.HasData {
				title = c.P99.String()
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#ddd"><title>%s-&gt;%s: %s</title></rect>`,
				j*cell+1, i*cell+1, cell, cell, fill[h.Color(i, j)], h.Pods[i], h.Pods[j], title)
			b.WriteString("\n")
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// goldenHeatmap builds a matrix exercising every color, multi-digit pod
// refs, and sub-millisecond durations whose String() forms vary.
func goldenHeatmap(t *testing.T) *Heatmap {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 4, PodsPerPodset: 3, ServersPerPod: 1, LeavesPerPodset: 2, Spines: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]*analysis.LatencyStats{}
	h := BuildHeatmap(top, 0, groups, 1)
	// Fill cells directly: BuildHeatmap's shape with hand-picked values.
	durations := []time.Duration{
		0, // no data
		312 * time.Microsecond,
		time.Millisecond + 500*time.Microsecond,
		4*time.Millisecond + 123*time.Microsecond,
		5 * time.Millisecond,
		17*time.Millisecond + 250*time.Microsecond,
		1712 * time.Millisecond,
	}
	k := 0
	for i := range h.Cells {
		for j := range h.Cells[i] {
			d := durations[k%len(durations)]
			k++
			if d == 0 {
				continue
			}
			h.Cells[i][j] = Cell{P99: d, Probes: uint64(k), HasData: true}
		}
	}
	return h
}

// TestAppendSVGGolden pins AppendSVG/WriteSVG/RenderSVG byte-identical to
// the legacy renderer.
func TestAppendSVGGolden(t *testing.T) {
	h := goldenHeatmap(t)
	want := renderSVGReference(h)

	if got := h.RenderSVG(); got != want {
		t.Fatalf("RenderSVG diverged from reference:\ngot  %d bytes\nwant %d bytes\nfirst diff at %d",
			len(got), len(want), firstDiff(got, want))
	}
	if got := string(h.AppendSVG(nil)); got != want {
		t.Fatal("AppendSVG(nil) diverged from reference")
	}
	// Appending after existing content preserves the prefix.
	pre := []byte("PREFIX")
	out := h.AppendSVG(pre)
	if !bytes.HasPrefix(out, []byte("PREFIX")) || string(out[6:]) != want {
		t.Fatal("AppendSVG(dst) does not append to dst")
	}
	var buf bytes.Buffer
	if _, err := h.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatal("WriteSVG diverged from reference")
	}
}

// TestAppendSVGGoldenEmpty covers the degenerate empty matrix.
func TestAppendSVGGoldenEmpty(t *testing.T) {
	h := &Heatmap{DC: "empty"}
	if got, want := h.RenderSVG(), renderSVGReference(h); got != want {
		t.Fatalf("empty heatmap: got %q want %q", got, want)
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
