package viz

import (
	"strconv"
)

// AppendSparkline appends a compact SVG polyline of vals to dst and
// returns the extended slice — the append-style form the portal's render
// cache writes straight into its body buffer. The series is scaled to fit
// the w x h viewport (oldest sample left, newest right) with 1px padding;
// an empty or constant series draws a midline. Coordinates are fixed to
// one decimal so output is deterministic across platforms.
func AppendSparkline(dst []byte, vals []float64, w, h int) []byte {
	if w < 20 {
		w = 120
	}
	if h < 10 {
		h = 28
	}
	dst = append(dst, `<svg xmlns="http://www.w3.org/2000/svg" width="`...)
	dst = strconv.AppendInt(dst, int64(w), 10)
	dst = append(dst, `" height="`...)
	dst = strconv.AppendInt(dst, int64(h), 10)
	dst = append(dst, `">`...)
	if len(vals) > 0 {
		minV, maxV := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		span := maxV - minV
		dst = append(dst, `<polyline fill="none" stroke="#1565c0" stroke-width="1.5" points="`...)
		for i, v := range vals {
			x := 1.0
			if len(vals) > 1 {
				x = 1 + float64(i)*float64(w-2)/float64(len(vals)-1)
			}
			y := float64(h) / 2
			if span > 0 {
				y = 1 + (1-(v-minV)/span)*float64(h-2)
			}
			if i > 0 {
				dst = append(dst, ' ')
			}
			dst = strconv.AppendFloat(dst, fix1(x), 'f', 1, 64)
			dst = append(dst, ',')
			dst = strconv.AppendFloat(dst, fix1(y), 'f', 1, 64)
		}
		dst = append(dst, `"/>`...)
	}
	dst = append(dst, `</svg>`...)
	dst = append(dst, '\n')
	return dst
}

// fix1 rounds to one decimal place, pinning negative zero to zero so the
// rendered coordinates are stable.
func fix1(v float64) float64 {
	r := float64(int64(v*10+0.5)) / 10
	if r == 0 {
		return 0
	}
	return r
}
