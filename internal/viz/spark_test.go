package viz

import (
	"strings"
	"testing"
)

func TestAppendSparkline(t *testing.T) {
	out := string(AppendSparkline(nil, []float64{1, 3, 2, 5, 4}, 120, 28))
	if !strings.HasPrefix(out, `<svg xmlns="http://www.w3.org/2000/svg" width="120" height="28">`) {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "<polyline") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatalf("body: %q", out)
	}
	// Five samples produce five points.
	pts := strings.Count(out, ",")
	if pts != 5 {
		t.Fatalf("point count = %d, want 5: %q", pts, out)
	}
	// Min maps to the bottom padding row, max to the top.
	if !strings.Contains(out, "1.0,27.0") {
		t.Fatalf("min sample not at bottom: %q", out)
	}
	if !strings.Contains(out, "89.5,1.0") {
		t.Fatalf("max sample not at top: %q", out)
	}
}

func TestAppendSparklineDegenerate(t *testing.T) {
	if out := string(AppendSparkline(nil, nil, 120, 28)); strings.Contains(out, "polyline") {
		t.Fatalf("empty series drew a line: %q", out)
	}
	// A constant series draws a midline, not NaNs.
	out := string(AppendSparkline(nil, []float64{7, 7, 7}, 120, 28))
	if strings.Contains(out, "NaN") {
		t.Fatalf("constant series produced NaN: %q", out)
	}
	if !strings.Contains(out, ",14.0") {
		t.Fatalf("constant series not on midline: %q", out)
	}
}

func TestAppendSparklineReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 4096)
	out := AppendSparkline(buf, []float64{1, 2}, 120, 28)
	if cap(out) != cap(buf) {
		t.Fatalf("sized buffer reallocated: cap %d -> %d", cap(buf), cap(out))
	}
}
