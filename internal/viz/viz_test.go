package viz

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// synthGroups builds pod-pair stats for DC 0 of top, with per-pair P99
// controlled by latFor; nil latFor entries are omitted (no data).
func synthGroups(top *topology.Topology, latFor func(src, dst analysis.PodRef) (time.Duration, bool)) map[string]*analysis.LatencyStats {
	groups := map[string]*analysis.LatencyStats{}
	var pods []analysis.PodRef
	for psi := range top.DCs[0].Podsets {
		for qi := range top.DCs[0].Podsets[psi].Pods {
			pods = append(pods, analysis.PodRef{DC: 0, Podset: psi, Pod: qi})
		}
	}
	for _, src := range pods {
		for _, dst := range pods {
			lat, ok := latFor(src, dst)
			if !ok {
				continue
			}
			st := analysis.NewLatencyStats()
			for i := 0; i < 20; i++ {
				r := probe.Record{
					Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
					Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
					RTT: lat,
				}
				st.Add(&r)
			}
			groups[src.String()+"|"+dst.String()] = st
		}
	}
	return groups
}

func vizTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 4, ServersPerPod: 2, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func green(time.Duration) time.Duration { return 500 * time.Microsecond }

func TestCellColors(t *testing.T) {
	cases := []struct {
		cell Cell
		want Color
	}{
		{Cell{}, White},
		{Cell{P99: time.Millisecond, HasData: true}, Green},
		{Cell{P99: 4500 * time.Microsecond, HasData: true}, Yellow},
		{Cell{P99: 6 * time.Millisecond, HasData: true}, Red},
	}
	for _, c := range cases {
		if got := c.cell.Color(); got != c.want {
			t.Errorf("Color(%+v) = %v, want %v", c.cell, got, c.want)
		}
	}
	if White.String() != "white" || Green.String() != "green" || Yellow.String() != "yellow" || Red.String() != "red" {
		t.Fatal("color names")
	}
}

func TestBuildHeatmapNormal(t *testing.T) {
	top := vizTopology(t)
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		return 500 * time.Microsecond, true
	})
	h := BuildHeatmap(top, 0, groups, 1)
	if h.Size() != 12 {
		t.Fatalf("Size = %d, want 12", h.Size())
	}
	cls := h.Classify()
	if cls.Pattern != PatternNormal {
		t.Fatalf("Classify = %v, want normal", cls.Pattern)
	}
	ascii := h.RenderASCII()
	grid := ascii[strings.Index(ascii, "\n")+1:] // skip the legend line
	if !strings.Contains(grid, "G") || strings.Contains(grid, "R") || strings.Contains(grid, "Y") {
		t.Fatalf("ASCII render wrong:\n%s", ascii)
	}
}

func TestClassifyPodsetDown(t *testing.T) {
	top := vizTopology(t)
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		if src.Podset == 1 || dst.Podset == 1 {
			return 0, false // no data: servers are off
		}
		return 500 * time.Microsecond, true
	})
	h := BuildHeatmap(top, 0, groups, 1)
	cls := h.Classify()
	if cls.Pattern != PatternPodsetDown || cls.Podset != 1 {
		t.Fatalf("Classify = %+v, want podset-down/1", cls)
	}
}

func TestClassifyPodsetFailure(t *testing.T) {
	top := vizTopology(t)
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		if src.Podset == 2 || dst.Podset == 2 {
			return 20 * time.Millisecond, true // red cross
		}
		return 500 * time.Microsecond, true
	})
	h := BuildHeatmap(top, 0, groups, 1)
	cls := h.Classify()
	if cls.Pattern != PatternPodsetFailure || cls.Podset != 2 {
		t.Fatalf("Classify = %+v, want podset-failure/2", cls)
	}
}

func TestClassifySpineFailure(t *testing.T) {
	top := vizTopology(t)
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		if src.Podset == dst.Podset {
			return 500 * time.Microsecond, true // green diagonal blocks
		}
		return 30 * time.Millisecond, true // red cross-podset
	})
	h := BuildHeatmap(top, 0, groups, 1)
	cls := h.Classify()
	if cls.Pattern != PatternSpineFailure {
		t.Fatalf("Classify = %+v, want spine-failure", cls)
	}
}

func TestClassifyUnknownAndEmpty(t *testing.T) {
	top := vizTopology(t)
	// Random-ish mixed map: half red scattered by parity, not podset-aligned.
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		if (src.Pod+dst.Pod)%2 == 0 {
			return 20 * time.Millisecond, true
		}
		return 500 * time.Microsecond, true
	})
	h := BuildHeatmap(top, 0, groups, 1)
	if cls := h.Classify(); cls.Pattern != PatternUnknown {
		t.Fatalf("Classify = %v, want unknown", cls.Pattern)
	}
	empty := BuildHeatmap(top, 0, map[string]*analysis.LatencyStats{}, 1)
	if cls := empty.Classify(); cls.Pattern != PatternUnknown {
		t.Fatalf("empty Classify = %v", cls.Pattern)
	}
}

func TestClassifyToleratesNoise(t *testing.T) {
	top := vizTopology(t)
	noisy := 0
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		noisy++
		if noisy%25 == 0 { // 4% of cells yellow-ish
			return 4500 * time.Microsecond, true
		}
		return 500 * time.Microsecond, true
	})
	h := BuildHeatmap(top, 0, groups, 1)
	if cls := h.Classify(); cls.Pattern != PatternNormal {
		t.Fatalf("Classify = %v, want normal despite 4%% noise", cls.Pattern)
	}
}

func TestMinProbesFilter(t *testing.T) {
	top := vizTopology(t)
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		return 500 * time.Microsecond, true
	})
	// Each cell got 20 probes; a 50-probe floor blanks everything.
	h := BuildHeatmap(top, 0, groups, 50)
	for i := 0; i < h.Size(); i++ {
		for j := 0; j < h.Size(); j++ {
			if h.Cells[i][j].HasData {
				t.Fatal("cell has data despite min-probe floor")
			}
		}
	}
}

func TestRenderSVG(t *testing.T) {
	top := vizTopology(t)
	groups := synthGroups(top, func(src, dst analysis.PodRef) (time.Duration, bool) {
		return 500 * time.Microsecond, true
	})
	h := BuildHeatmap(top, 0, groups, 1)
	svg := h.RenderSVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "rect") {
		t.Fatal("not an SVG")
	}
	if !strings.Contains(svg, "#2e7d32") {
		t.Fatal("no green cells in SVG")
	}
}

func TestPatternNames(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternUnknown: "unknown", PatternNormal: "normal",
		PatternPodsetDown: "podset-down", PatternPodsetFailure: "podset-failure",
		PatternSpineFailure: "spine-failure",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if Pattern(42).String() != "pattern(42)" {
		t.Fatal("unknown pattern name")
	}
}

func TestRenderCDF(t *testing.T) {
	mkPoints := func(scale time.Duration) []metrics.CDFPoint {
		var pts []metrics.CDFPoint
		for i := 1; i <= 10; i++ {
			pts = append(pts, metrics.CDFPoint{
				Value:    time.Duration(i) * scale,
				Fraction: float64(i) / 10,
			})
		}
		return pts
	}
	out := RenderCDF([]CDFSeries{
		{Name: "DC1", Marker: '1', Points: mkPoints(100 * time.Microsecond)},
		{Name: "DC2", Marker: '2', Points: mkPoints(80 * time.Microsecond)},
	}, 60, 12)
	for _, want := range []string{"1", "2", "DC1", "DC2", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CDF plot missing %q:\n%s", want, out)
		}
	}
	if got := RenderCDF(nil, 60, 12); got != "(no data)\n" {
		t.Fatalf("empty plot = %q", got)
	}
	// Degenerate single-value series.
	one := []CDFSeries{{Name: "x", Points: []metrics.CDFPoint{{Value: time.Millisecond, Fraction: 1}}}}
	if got := RenderCDF(one, 60, 12); got != "(no data)\n" {
		t.Fatalf("single-point plot = %q", got)
	}
}

func BenchmarkBuildHeatmapAndClassify(b *testing.B) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 5, PodsPerPodset: 8, ServersPerPod: 2, LeavesPerPodset: 3, Spines: 8},
	}})
	if err != nil {
		b.Fatal(err)
	}
	groups := map[string]*analysis.LatencyStats{}
	var pods []analysis.PodRef
	for psi := range top.DCs[0].Podsets {
		for qi := range top.DCs[0].Podsets[psi].Pods {
			pods = append(pods, analysis.PodRef{DC: 0, Podset: psi, Pod: qi})
		}
	}
	for _, src := range pods {
		for _, dst := range pods {
			st := analysis.NewLatencyStats()
			for i := 0; i < 50; i++ {
				r := probe.Record{RTT: time.Duration(300+i) * time.Microsecond}
				st.Add(&r)
			}
			groups[src.String()+"|"+dst.String()] = st
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := BuildHeatmap(top, 0, groups, 5)
		if h.Classify().Pattern != PatternNormal {
			b.Fatal("unexpected pattern")
		}
	}
	b.ReportMetric(float64(len(pods)*len(pods)), "cells")
}
