package viz

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pingmesh/internal/metrics"
)

// CDFSeries is one named distribution for plotting.
type CDFSeries struct {
	Name   string
	Marker byte
	Points []metrics.CDFPoint
}

// RenderCDF draws latency CDFs on a log-x ASCII grid — the Figure 4 style
// plot, terminal edition. Width and height are the plot area in
// characters; sensible minimums are enforced.
func RenderCDF(series []CDFSeries, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	minV, maxV := time.Duration(math.MaxInt64), time.Duration(0)
	for _, s := range series {
		for _, p := range s.Points {
			if p.Value < minV {
				minV = p.Value
			}
			if p.Value > maxV {
				maxV = p.Value
			}
		}
	}
	if maxV <= minV {
		return "(no data)\n"
	}
	logMin, logMax := math.Log10(float64(minV)), math.Log10(float64(maxV))

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// fractionAt returns the step-CDF value at v.
	fractionAt := func(pts []metrics.CDFPoint, v time.Duration) float64 {
		frac := 0.0
		for _, p := range pts {
			if p.Value <= v {
				frac = p.Fraction
			} else {
				break
			}
		}
		return frac
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for x := 0; x < width; x++ {
			lv := logMin + (logMax-logMin)*float64(x)/float64(width-1)
			v := time.Duration(math.Pow(10, lv))
			f := fractionAt(s.Points, v)
			y := int(math.Round(f * float64(height-1)))
			row := height - 1 - y
			grid[row][x] = marker
		}
	}

	var b strings.Builder
	for i, row := range grid {
		frac := float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", frac, string(row))
	}
	// X axis with three tick labels.
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width+2))
	mid := time.Duration(math.Pow(10, (logMin+logMax)/2))
	axis := fmt.Sprintf("      %-*s%-*s%s", width/2, minV.Round(time.Microsecond).String(),
		width/2-len(mid.Round(time.Microsecond).String())/2, mid.Round(time.Microsecond).String(),
		maxV.Round(time.Millisecond).String())
	b.WriteString(axis + "\n")
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&b, "      %c = %s\n", marker, s.Name)
	}
	return b.String()
}
