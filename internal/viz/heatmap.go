// Package viz renders the Pingmesh visualization of §6.3: a pod-pair
// matrix where each cell is the 99th-percentile latency between a source
// and destination pod, colored green (healthy), yellow (borderline), red
// (out of SLA) or white (no data) — and classifies the four canonical
// patterns of Figure 8: all-green (normal), white-cross (podset down),
// red-cross (podset network failure), and red-with-green-diagonal (spine
// layer failure).
package viz

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pingmesh/internal/analysis"
	"pingmesh/internal/topology"
)

// Color buckets for a cell, using the paper's thresholds: green below 4ms,
// yellow 4-5ms, red above 5ms, white for no data.
type Color int

// Cell colors.
const (
	White Color = iota
	Green
	Yellow
	Red
)

// Paper thresholds for the P99 heatmap.
const (
	GreenBelow = 4 * time.Millisecond
	RedAbove   = 5 * time.Millisecond
)

// String names the color.
func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("color(%d)", int(c))
	}
}

// rune for ASCII rendering.
func (c Color) rune() byte {
	switch c {
	case Green:
		return 'G'
	case Yellow:
		return 'Y'
	case Red:
		return 'R'
	default:
		return '.'
	}
}

// Cell is one pod pair's latency summary.
type Cell struct {
	P99     time.Duration
	Probes  uint64
	HasData bool
}

// Color classifies the cell.
func (c Cell) Color() Color {
	if !c.HasData {
		return White
	}
	switch {
	case c.P99 < GreenBelow:
		return Green
	case c.P99 <= RedAbove:
		return Yellow
	default:
		return Red
	}
}

// Heatmap is the pod-pair matrix for one DC.
type Heatmap struct {
	DC      string
	Pods    []analysis.PodRef // row/column order: podset-major
	Podsets []int             // podset index per pod position
	Cells   [][]Cell          // [src][dst]
}

// BuildHeatmap assembles the matrix for DC dc from pod-pair grouped stats
// (the output of a SCOPE job keyed by Keyer.PodPair). Cells with fewer
// than minProbes successful probes count as having no data.
func BuildHeatmap(top *topology.Topology, dc int, groups map[string]*analysis.LatencyStats, minProbes uint64) *Heatmap {
	var pods []analysis.PodRef
	var podsets []int
	index := map[analysis.PodRef]int{}
	for psi := range top.DCs[dc].Podsets {
		for qi := range top.DCs[dc].Podsets[psi].Pods {
			ref := analysis.PodRef{DC: dc, Podset: psi, Pod: qi}
			index[ref] = len(pods)
			pods = append(pods, ref)
			podsets = append(podsets, psi)
		}
	}
	h := &Heatmap{DC: top.DCs[dc].Name, Pods: pods, Podsets: podsets}
	h.Cells = make([][]Cell, len(pods))
	for i := range h.Cells {
		h.Cells[i] = make([]Cell, len(pods))
	}
	for key, st := range groups {
		src, dst, err := analysis.SplitPodPair(key)
		if err != nil {
			continue
		}
		i, ok1 := index[src]
		j, ok2 := index[dst]
		if !ok1 || !ok2 {
			continue // different DC or stale topology
		}
		if st.Success() < minProbes {
			continue
		}
		cell := &h.Cells[i][j]
		// Merge multiple keys mapping to one cell conservatively: keep the
		// worse P99.
		p99 := st.Percentile(0.99)
		if !cell.HasData || p99 > cell.P99 {
			cell.P99 = p99
		}
		cell.Probes += st.Success()
		cell.HasData = true
	}
	return h
}

// Size returns the matrix dimension.
func (h *Heatmap) Size() int { return len(h.Pods) }

// Color returns the color of cell (src, dst).
func (h *Heatmap) Color(i, j int) Color { return h.Cells[i][j].Color() }

// RenderASCII draws the matrix: one row per source pod, G/Y/R/. per cell,
// with blank separators at podset boundaries.
func (h *Heatmap) RenderASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P99 heatmap %s (%d pods): G<%v Y<=%v R>%v .=no data\n",
		h.DC, len(h.Pods), GreenBelow, RedAbove, RedAbove)
	for i := range h.Cells {
		if i > 0 && h.Podsets[i] != h.Podsets[i-1] {
			b.WriteByte('\n')
		}
		for j := range h.Cells[i] {
			if j > 0 && h.Podsets[j] != h.Podsets[j-1] {
				b.WriteByte(' ')
			}
			b.WriteByte(h.Color(i, j).rune())
		}
		fmt.Fprintf(&b, "  %s\n", h.Pods[i])
	}
	return b.String()
}

// svgFill maps a cell color to its SVG fill, indexable by Color.
var svgFill = [...]string{White: "#ffffff", Green: "#2e7d32", Yellow: "#f9a825", Red: "#c62828"}

// AppendSVG appends the matrix as a standalone SVG document to dst and
// returns the extended slice — the append-style form the portal's render
// cache writes straight into its body buffer, with no intermediate string
// concatenation. Output is byte-identical to RenderSVG (golden-tested).
func (h *Heatmap) AppendSVG(dst []byte) []byte {
	const cell = 12
	n := len(h.Pods)
	dst = append(dst, `<svg xmlns="http://www.w3.org/2000/svg" width="`...)
	dst = strconv.AppendInt(dst, int64(n*cell+2), 10)
	dst = append(dst, `" height="`...)
	dst = strconv.AppendInt(dst, int64(n*cell+2), 10)
	dst = append(dst, `">`...)
	dst = append(dst, '\n')
	for i := range h.Cells {
		for j := range h.Cells[i] {
			c := h.Cells[i][j]
			dst = append(dst, `<rect x="`...)
			dst = strconv.AppendInt(dst, int64(j*cell+1), 10)
			dst = append(dst, `" y="`...)
			dst = strconv.AppendInt(dst, int64(i*cell+1), 10)
			dst = append(dst, `" width="`...)
			dst = strconv.AppendInt(dst, cell, 10)
			dst = append(dst, `" height="`...)
			dst = strconv.AppendInt(dst, cell, 10)
			dst = append(dst, `" fill="`...)
			dst = append(dst, svgFill[h.Color(i, j)]...)
			dst = append(dst, `" stroke="#ddd"><title>`...)
			dst = h.Pods[i].AppendTo(dst)
			dst = append(dst, `-&gt;`...)
			dst = h.Pods[j].AppendTo(dst)
			dst = append(dst, ':', ' ')
			if c.HasData {
				dst = append(dst, c.P99.String()...)
			} else {
				dst = append(dst, "no data"...)
			}
			dst = append(dst, `</title></rect>`...)
			dst = append(dst, '\n')
		}
	}
	dst = append(dst, "</svg>\n"...)
	return dst
}

// WriteSVG writes the SVG document to w.
func (h *Heatmap) WriteSVG(w io.Writer) (int, error) {
	return w.Write(h.AppendSVG(nil))
}

// RenderSVG draws the matrix as a standalone SVG document.
func (h *Heatmap) RenderSVG() string {
	return string(h.AppendSVG(nil))
}
