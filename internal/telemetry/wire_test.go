package telemetry

import (
	"bytes"
	"testing"

	"pingmesh/internal/metrics"
)

// drain parses every entry of a report into plain maps for assertions.
type drained struct {
	src, scope string
	seq, base  uint64
	nowNS      int64
	counters   map[string]uint64
	gauges     map[string]int64
	hists      map[string][]metrics.Bucket
	tallies    map[string][3]int64 // sumDelta, cumMin, cumMax
}

func drainReport(t *testing.T, data []byte) drained {
	t.Helper()
	var p Parser
	if err := p.Reset(data); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	d := drained{
		src: string(p.Src()), scope: string(p.Scope()),
		seq: p.Seq(), base: p.Base(), nowNS: p.NowNS(),
		counters: map[string]uint64{}, gauges: map[string]int64{},
		hists: map[string][]metrics.Bucket{}, tallies: map[string][3]int64{},
	}
	for {
		name, delta, ok := p.NextCounter()
		if !ok {
			break
		}
		d.counters[string(name)] = delta
	}
	for {
		name, delta, ok := p.NextGauge()
		if !ok {
			break
		}
		d.gauges[string(name)] = delta
	}
	for {
		name, hd, ok := p.NextHist()
		if !ok {
			break
		}
		var bs []metrics.Bucket
		it := hd.Buckets()
		for {
			b, bok := it.Next()
			if !bok {
				break
			}
			bs = append(bs, b)
		}
		d.hists[string(name)] = bs
		d.tallies[string(name)] = [3]int64{hd.SumDelta, hd.CumMin, hd.CumMax}
	}
	if err := p.Err(); err != nil {
		t.Fatalf("Err after drain: %v", err)
	}
	return d
}

func TestWireRoundTrip(t *testing.T) {
	var b ReportBuilder
	b.Begin("srv042.d1", "d1.s2.p3", 7, 6, 123456789)
	b.Counter("agent.probes_sent", 5000)
	b.Counter("agent.uploads_ok", 3)
	b.Gauge("agent.peers", -2)
	b.Gauge("agent.queue_depth", 17)
	b.BeginHist("agent.probe_rtt", 987654, 100, 90000)
	b.Bucket(3, 10)
	b.Bucket(4, 2)
	b.Bucket(40, 1)
	b.EndHist()
	b.BeginHist("agent.upload_dur", 55, 55, 55)
	b.Bucket(0, 1)
	b.EndHist()
	data := b.Finish()

	d := drainReport(t, data)
	if d.src != "srv042.d1" || d.scope != "d1.s2.p3" {
		t.Fatalf("identity mismatch: %q %q", d.src, d.scope)
	}
	if d.seq != 7 || d.base != 6 || d.nowNS != 123456789 {
		t.Fatalf("header mismatch: seq=%d base=%d now=%d", d.seq, d.base, d.nowNS)
	}
	if d.counters["agent.probes_sent"] != 5000 || d.counters["agent.uploads_ok"] != 3 {
		t.Fatalf("counters: %v", d.counters)
	}
	if d.gauges["agent.peers"] != -2 || d.gauges["agent.queue_depth"] != 17 {
		t.Fatalf("gauges: %v", d.gauges)
	}
	want := []metrics.Bucket{{Index: 3, Count: 10}, {Index: 4, Count: 2}, {Index: 40, Count: 1}}
	got := d.hists["agent.probe_rtt"]
	if len(got) != len(want) {
		t.Fatalf("rtt buckets: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rtt bucket %d: got %v want %v", i, got[i], want[i])
		}
	}
	if tl := d.tallies["agent.probe_rtt"]; tl != [3]int64{987654, 100, 90000} {
		t.Fatalf("rtt tallies: %v", tl)
	}
	if tl := d.tallies["agent.upload_dur"]; tl != [3]int64{55, 55, 55} {
		t.Fatalf("upload tallies: %v", tl)
	}
}

func TestWireEmptyReport(t *testing.T) {
	var b ReportBuilder
	b.Begin("a", "", 1, 0, 0)
	d := drainReport(t, b.Finish())
	if len(d.counters)+len(d.gauges)+len(d.hists) != 0 {
		t.Fatalf("empty report decoded entries: %+v", d)
	}
}

func TestWireEmptyHistEntry(t *testing.T) {
	var b ReportBuilder
	b.Begin("a", "", 1, 0, 0)
	b.BeginHist("h", 10, 1, 2)
	b.EndHist() // no buckets: tallies dropped, nRuns=0
	d := drainReport(t, b.Finish())
	if bs, ok := d.hists["h"]; !ok || len(bs) != 0 {
		t.Fatalf("empty hist entry: %v ok=%v", bs, ok)
	}
	if tl := d.tallies["h"]; tl != [3]int64{} {
		t.Fatalf("empty hist entry kept tallies: %v", tl)
	}
}

// TestWireBuilderReuse checks that back-to-back reports from one builder
// are byte-identical to reports from fresh builders (buffer reuse leaks
// no state).
func TestWireBuilderReuse(t *testing.T) {
	build := func(b *ReportBuilder, seq uint64) []byte {
		b.Begin("agent-1", "d0.s0.p0", seq, seq-1, int64(seq)*1000)
		b.Counter("c.one", seq)
		b.Gauge("g.one", -int64(seq))
		b.BeginHist("h.one", int64(seq), 1, int64(seq))
		b.Bucket(2, seq)
		b.EndHist()
		return b.Finish()
	}
	var reused ReportBuilder
	for seq := uint64(1); seq <= 4; seq++ {
		var fresh ReportBuilder
		got := append([]byte(nil), build(&reused, seq)...)
		want := build(&fresh, seq)
		if !bytes.Equal(got, want) {
			t.Fatalf("seq %d: reused builder diverged\n got %x\nwant %x", seq, got, want)
		}
	}
}

func TestWireFrontCodingCompresses(t *testing.T) {
	// Same name lengths, but the shared set front-codes its common prefix:
	// its report must be strictly smaller than the disjoint set's.
	encode := func(names []string) int {
		var b ReportBuilder
		b.Begin("a", "", 1, 0, 0)
		for _, n := range names {
			b.Counter(n, 1)
		}
		return len(b.Finish())
	}
	shared := encode([]string{"agent.probe.errors", "agent.probe.sent00", "agent.probe.timeou"})
	disjoint := encode([]string{"agent.probe.errors", "bgent.probe.sent00", "cgent.probe.timeou"})
	if shared >= disjoint {
		t.Fatalf("front coding saved nothing: shared=%d disjoint=%d", shared, disjoint)
	}
}

func TestWireCorruptInputs(t *testing.T) {
	var b ReportBuilder
	b.Begin("src", "scope", 9, 8, 42)
	b.Counter("c", 1)
	b.BeginHist("h", 5, 5, 5)
	b.Bucket(1, 1)
	b.EndHist()
	good := append([]byte(nil), b.Finish()...)

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("PMT9"), good[4:]...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte(nil), good...), 0),
		"payload len": append([]byte("PMT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), good[5:]...),
	}
	for name, data := range cases {
		var p Parser
		err := p.Reset(data)
		// Reset may succeed on some mutations; the drain must then fail.
		if err == nil {
			for {
				if _, _, ok := p.NextCounter(); !ok {
					break
				}
			}
			for {
				if _, _, ok := p.NextGauge(); !ok {
					break
				}
			}
			for {
				if _, _, ok := p.NextHist(); !ok {
					break
				}
			}
			err = p.Err()
		}
		if err == nil {
			t.Errorf("%s: corrupt report accepted", name)
		}
	}
}

func TestWireSectionOrderEnforced(t *testing.T) {
	var b ReportBuilder
	b.Begin("s", "", 1, 0, 0)
	b.Counter("c", 1)
	data := b.Finish()
	var p Parser
	if err := p.Reset(data); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.NextGauge(); ok {
		t.Fatal("NextGauge succeeded before counters drained")
	}
	if p.Err() == nil {
		t.Fatal("out-of-order section read did not set Err")
	}
}

func TestWireHistRejectsBadRuns(t *testing.T) {
	// Hand-build a hist section with a zero gap on a non-first run, which
	// the builder can't produce but a hostile peer could.
	var b ReportBuilder
	b.Begin("s", "", 1, 0, 0)
	b.BeginHist("h", 2, 1, 1)
	b.Bucket(3, 1)
	b.Bucket(3, 1) // gap 0 — invalid on the wire
	b.EndHist()
	data := b.Finish()
	var p Parser
	if err := p.Reset(data); err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, ok := p.NextCounter(); !ok {
			break
		}
	}
	for {
		if _, _, ok := p.NextGauge(); !ok {
			break
		}
	}
	if _, _, ok := p.NextHist(); ok {
		t.Fatal("zero-gap run accepted")
	}
	if p.Err() == nil {
		t.Fatal("zero-gap run did not set Err")
	}
}
