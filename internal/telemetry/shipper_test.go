package telemetry

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pingmesh/internal/metrics"
)

func TestShipperEndToEnd(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	reg := metrics.NewRegistry()
	cnt := reg.Counter("agent.probes_sent")
	h := reg.Histogram("agent.probe_rtt")
	sh := &Shipper{
		URL:      srv.URL + "/report",
		Src:      "srv1",
		Scope:    "d0.s1.p2",
		Registry: reg,
	}

	cnt.Add(10)
	h.Observe(3 * time.Millisecond)
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatalf("ReportOnce: %v", err)
	}
	cnt.Add(5)
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatalf("ReportOnce 2: %v", err)
	}

	if v, _ := col.RollupCounter("fleet", "agent.probes_sent"); v != 15 {
		t.Fatalf("fleet counter=%d want 15", v)
	}
	fh, ok := col.RollupHistogram("d0.s1", "agent.probe_rtt")
	if !ok || fh.Count() != 1 {
		t.Fatalf("podset hist: ok=%v", ok)
	}
	st := sh.Stats()
	if st.Reports != 2 || st.Errors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BytesOnWire <= 0 {
		t.Fatalf("no wire bytes counted: %+v", st)
	}
}

func TestShipperPlainBody(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	reg := metrics.NewRegistry()
	reg.Counter("c").Add(1)
	sh := &Shipper{URL: srv.URL + "/report", Src: "s", Registry: reg, NoGzip: true}
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := col.RollupCounter("fleet", "c"); v != 1 {
		t.Fatalf("counter=%d", v)
	}
}

// TestShipperRetriesTransient: 5xx responses retry the same report bytes.
func TestShipperRetriesTransient(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	inner := col.Handler()
	var fails int32 = 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&fails, -1) >= 0 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	reg.Counter("c").Add(7)
	sh := &Shipper{
		URL: srv.URL + "/report", Src: "s", Registry: reg,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatalf("ReportOnce after retries: %v", err)
	}
	if v, _ := col.RollupCounter("fleet", "c"); v != 7 {
		t.Fatalf("counter=%d want 7", v)
	}
	if st := sh.Stats(); st.Retries != 2 || st.Reports != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestShipperResyncAfterCollectorRestart: the 409 path rebases and the
// next interval's report lands self-contained.
func TestShipperResyncAfterCollectorRestart(t *testing.T) {
	col1 := NewCollector(CollectorConfig{})
	srv1 := httptest.NewServer(col1.Handler())
	reg := metrics.NewRegistry()
	cnt := reg.Counter("c")
	sh := &Shipper{URL: srv1.URL + "/report", Src: "s", Registry: reg}

	cnt.Add(10)
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// Collector restarts with empty state at the same logical endpoint.
	col2 := NewCollector(CollectorConfig{})
	srv2 := httptest.NewServer(col2.Handler())
	defer srv2.Close()
	sh.URL = srv2.URL + "/report"

	cnt.Add(4)
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatalf("resync report: %v", err)
	}
	if st := sh.Stats(); st.Resyncs != 1 {
		t.Fatalf("stats: %+v", st)
	}
	cnt.Add(6)
	if err := sh.ReportOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Only post-rebase activity: the 4 was pre-rebase-encode... the rebase
	// anchored at value 14, so the collector sees the 6 alone.
	if v, _ := col2.RollupCounter("fleet", "c"); v != 6 {
		t.Fatalf("counter=%d want 6 (post-rebase delta only)", v)
	}
}

func TestCollectorHandlerRejectsGarbage(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	garbage := bytes.Repeat([]byte{0xAB}, 64)
	resp, err := http.Post(srv.URL+"/report", "application/octet-stream",
		bytes.NewReader(garbage))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /report: %d", resp.StatusCode)
	}
}
