// Package telemetry is Pingmesh's fleet-scale self-monitoring plane: the
// §3.5 Perfcounter Aggregator grown from an in-process callback loop into
// a million-agent metrics pipeline. Agents encode their metrics.Registry
// as PMT1 reports — varint counter deltas against the last acknowledged
// snapshot, plus histograms as the sparse bucket runs of the shared
// latency layout — and ship them to a Collector, which folds them into
// fleet rollups keyed by the DC/podset/pod scope hierarchy and keeps the
// results in fixed-capacity ring-buffer time series. Counters sum exactly
// and histograms merge bucket-for-bucket, so a fleet-wide P99 is a
// bit-exact merge of every agent's observations, never an average of
// percentiles.
package telemetry

import (
	"encoding/binary"
	"errors"

	"pingmesh/internal/metrics"
)

// Binary wire format ("PMT1").
//
// One report carries one agent's metric activity since its last
// acknowledged report. Layout (all integers are encoding/binary varints —
// "uv" unsigned, "v" signed zig-zag):
//
//	report  := "PMT1" payloadLen:uv payload
//	payload := srcLen:uv src scopeLen:uv scope seq:uv base:uv now_ns:v
//	           nCounters:uv counter* nGauges:uv gauge* nHists:uv hist*
//	counter := name delta:uv                 // value increment since base
//	gauge   := name delta:v                  // signed change since base
//	hist    := name nRuns:uv [sumDelta:v cumMin:v cumMax:v run*]
//	run     := gap:uv count:uv               // new observations per bucket;
//	                                         // first gap = index, later >= 1
//	name    := prefixLen:uv suffixLen:uv suffix
//
// Names are front-coded against the previously emitted name of the same
// section (registries visit in sorted order, so "agent.uploads_ok" after
// "agent.upload_errors" costs its suffix). Metrics with no activity since
// base are simply absent — absence means a zero delta, which is what makes
// a steady-state report a few bytes per metric rather than a few bytes per
// metric per bucket.
//
// Delta/ack contract: seq numbers a report, base names the last report the
// collector acknowledged applying. Deltas are always computed against the
// *acked* base snapshot, not the last transmitted one, so a lost report is
// superseded — not lost — by the next one, which re-carries its activity.
// base == 0 declares the report self-contained ("fold as-is"): the first
// report of a fresh encoder, an agent restart, or a post-resync rebase.
// Histogram sum ships as a delta (sums are additive); min/max ship as
// cumulative values because they only fold idempotently (AddTallies takes
// the min/max of what it has and what arrives).
//
// Versioning: the trailing '1' is the version. A future format bumps it to
// "PMT2"; old parsers fail the magic check instead of misparsing.

const telemetryMagic = "PMT1"

// Wire validation limits. maxWireCount matches the probe codec's sketch
// bound: no decoded report may smuggle absurd totals into the rollups.
const (
	maxIDLen     = 256
	maxNameLen   = 512
	maxWireCount = 1 << 48
)

var (
	errBadReportHeader = errors.New("telemetry: bad report header")
	errBadReport       = errors.New("telemetry: corrupt report")
	errParserPhase     = errors.New("telemetry: parser sections read out of order")
)

// ReportBuilder assembles one PMT1 report. Counters, gauges, and
// histograms may be added in any interleaving (the builder keeps one
// buffer per section and assembles them at Finish), which lets a
// metrics.Registry visitor emit in one pass over its name-ordered walk.
// All buffers are reused across Begin/Finish cycles, so a steady-state
// encode allocates nothing. The zero value is ready to use.
type ReportBuilder struct {
	hdr              []byte // src scope seq base now, encoded at Begin
	cbuf, gbuf, hbuf []byte
	cn, gn, hn       int
	cprev            []byte // last emitted name per section, for front-coding
	gprev            []byte
	hprev            []byte
	out              []byte

	histTallyOff int // hbuf offset where the open hist's nRuns splices in
	histRuns     int
	histPrevIdx  int
}

// Begin starts a report, discarding any previous state. src identifies the
// agent, scope is its position in the DC/podset/pod hierarchy (e.g.
// "d0.s1.p2", "" for unscoped), seq numbers this report, base is the last
// acked seq the deltas are computed against (0 = self-contained), and
// nowNS timestamps it.
func (b *ReportBuilder) Begin(src, scope string, seq, base uint64, nowNS int64) {
	b.hdr = b.hdr[:0]
	b.hdr = binary.AppendUvarint(b.hdr, uint64(len(src)))
	b.hdr = append(b.hdr, src...)
	b.hdr = binary.AppendUvarint(b.hdr, uint64(len(scope)))
	b.hdr = append(b.hdr, scope...)
	b.hdr = binary.AppendUvarint(b.hdr, seq)
	b.hdr = binary.AppendUvarint(b.hdr, base)
	b.hdr = binary.AppendVarint(b.hdr, nowNS)
	b.cbuf, b.gbuf, b.hbuf = b.cbuf[:0], b.gbuf[:0], b.hbuf[:0]
	b.cn, b.gn, b.hn = 0, 0, 0
	b.cprev, b.gprev, b.hprev = b.cprev[:0], b.gprev[:0], b.hprev[:0]
	b.histRuns = -1
}

// Counter adds one counter entry. Skip zero deltas: absence means zero.
func (b *ReportBuilder) Counter(name string, delta uint64) {
	b.cbuf, b.cprev = appendFrontCoded(b.cbuf, b.cprev, name)
	b.cbuf = binary.AppendUvarint(b.cbuf, delta)
	b.cn++
}

// Gauge adds one gauge entry carrying the signed change since base.
func (b *ReportBuilder) Gauge(name string, delta int64) {
	b.gbuf, b.gprev = appendFrontCoded(b.gbuf, b.gprev, name)
	b.gbuf = binary.AppendVarint(b.gbuf, delta)
	b.gn++
}

// BeginHist opens a histogram entry: the sum of new observations (a
// delta), and the agent's cumulative min/max (folded idempotently on the
// collector). Follow with Bucket calls in ascending index order, then
// EndHist.
func (b *ReportBuilder) BeginHist(name string, sumDelta, cumMin, cumMax int64) {
	b.hbuf, b.hprev = appendFrontCoded(b.hbuf, b.hprev, name)
	b.histTallyOff = len(b.hbuf)
	b.hbuf = binary.AppendVarint(b.hbuf, sumDelta)
	b.hbuf = binary.AppendVarint(b.hbuf, cumMin)
	b.hbuf = binary.AppendVarint(b.hbuf, cumMax)
	b.histRuns = 0
	b.histPrevIdx = -1
}

// Bucket adds n new observations in bucket index of the shared latency
// layout. Indexes must strictly ascend within one histogram; n must be
// positive.
func (b *ReportBuilder) Bucket(index int, n uint64) {
	if b.histPrevIdx < 0 {
		b.hbuf = binary.AppendUvarint(b.hbuf, uint64(index))
	} else {
		b.hbuf = binary.AppendUvarint(b.hbuf, uint64(index-b.histPrevIdx))
	}
	b.histPrevIdx = index
	b.hbuf = binary.AppendUvarint(b.hbuf, n)
	b.histRuns++
}

// EndHist closes the open histogram, splicing its run count in front of
// the tallies. A histogram that received no Bucket calls is emitted as an
// empty entry (nRuns = 0, tallies dropped) — harmless, but callers should
// skip unchanged histograms entirely.
func (b *ReportBuilder) EndHist() {
	if b.histRuns == 0 {
		b.hbuf = b.hbuf[:b.histTallyOff]
	}
	b.hbuf = spliceUvarint(b.hbuf, b.histTallyOff, uint64(b.histRuns))
	b.histRuns = -1
	b.hn++
}

// Finish assembles and returns the report. The returned slice is owned by
// the builder and valid until the next Begin or Finish.
func (b *ReportBuilder) Finish() []byte {
	out := append(b.out[:0], telemetryMagic...)
	payloadStart := len(out)
	out = append(out, b.hdr...)
	out = binary.AppendUvarint(out, uint64(b.cn))
	out = append(out, b.cbuf...)
	out = binary.AppendUvarint(out, uint64(b.gn))
	out = append(out, b.gbuf...)
	out = binary.AppendUvarint(out, uint64(b.hn))
	out = append(out, b.hbuf...)
	out = spliceUvarint(out, payloadStart, uint64(len(out)-payloadStart))
	b.out = out
	return out
}

// spliceUvarint inserts uvarint(v) at offset at: append the varint
// (growing buf by its width), shift the tail right with one overlap-safe
// copy, then write the varint into the gap — the PMB1 length-prefix trick.
func spliceUvarint(buf []byte, at int, v uint64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	tail := len(buf) - at
	buf = append(buf, scratch[:n]...)
	copy(buf[at+n:], buf[at:at+tail])
	copy(buf[at:at+n], scratch[:n])
	return buf
}

// appendFrontCoded appends name front-coded against prev and returns the
// extended buffer plus prev overwritten with name (reusing its storage).
func appendFrontCoded(dst, prev []byte, name string) ([]byte, []byte) {
	p := 0
	max := len(prev)
	if len(name) < max {
		max = len(name)
	}
	for p < max && prev[p] == name[p] {
		p++
	}
	dst = binary.AppendUvarint(dst, uint64(p))
	dst = binary.AppendUvarint(dst, uint64(len(name)-p))
	dst = append(dst, name[p:]...)
	return dst, append(prev[:0], name...)
}

// Parser decodes one PMT1 report in place: no copies of the payload, one
// reusable name buffer, every field bounds-checked before use. Sections
// must be drained in wire order — NextCounter until exhausted, then
// NextGauge, then NextHist — mirroring how the Collector folds. The zero
// value is ready for Reset.
type Parser struct {
	d          []byte
	off, end   int
	src, scope []byte
	seq, base  uint64
	nowNS      int64
	remain     int // entries left in the current section
	phase      int8
	name       []byte // front-decoded current name, reused
	err        error
}

const (
	phaseCounters int8 = iota
	phaseGauges
	phaseHists
	phaseDone
)

// Reset points the parser at data and decodes the header. data must
// contain exactly one report (trailing bytes after the declared payload
// are an error). The parser aliases data; it must not be mutated while
// parsing.
func (p *Parser) Reset(data []byte) error {
	*p = Parser{d: data, name: p.name[:0]}
	if len(data) < len(telemetryMagic) || string(data[:len(telemetryMagic)]) != telemetryMagic {
		return p.fail(errBadReportHeader)
	}
	off := len(telemetryMagic)
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || plen != uint64(len(data)-off-n) {
		return p.fail(errBadReportHeader)
	}
	p.off = off + n
	p.end = len(data)

	var ok bool
	var u uint64
	if u, p.off, ok = p.getUvarint(); !ok || u > maxIDLen || u > uint64(p.end-p.off) {
		return p.fail(errBadReport)
	}
	p.src = data[p.off : p.off+int(u)]
	p.off += int(u)
	if u, p.off, ok = p.getUvarint(); !ok || u > maxIDLen || u > uint64(p.end-p.off) {
		return p.fail(errBadReport)
	}
	p.scope = data[p.off : p.off+int(u)]
	p.off += int(u)
	if p.seq, p.off, ok = p.getUvarint(); !ok {
		return p.fail(errBadReport)
	}
	if p.base, p.off, ok = p.getUvarint(); !ok {
		return p.fail(errBadReport)
	}
	if p.nowNS, p.off, ok = p.getVarint(); !ok {
		return p.fail(errBadReport)
	}
	return p.openSection(phaseCounters)
}

// Src returns the agent identity (aliases the input buffer).
func (p *Parser) Src() []byte { return p.src }

// Scope returns the agent's scope path (aliases the input buffer).
func (p *Parser) Scope() []byte { return p.scope }

// Seq returns the report's sequence number.
func (p *Parser) Seq() uint64 { return p.seq }

// Base returns the acked sequence the deltas are against (0 = fold as-is).
func (p *Parser) Base() uint64 { return p.base }

// NowNS returns the agent's encode timestamp.
func (p *Parser) NowNS() int64 { return p.nowNS }

// Err returns the first error encountered, if any. A report is valid only
// if all three sections were drained and Err returns nil.
func (p *Parser) Err() error { return p.err }

// NextCounter returns the next counter entry. The name aliases the
// parser's reusable buffer: valid only until the next Next* call.
func (p *Parser) NextCounter() (name []byte, delta uint64, ok bool) {
	if p.err != nil || p.phase != phaseCounters {
		return nil, 0, false
	}
	if p.remain == 0 {
		p.openSection(phaseGauges)
		return nil, 0, false
	}
	p.remain--
	if !p.readName() {
		return nil, 0, false
	}
	if delta, p.off, ok = p.getUvarint(); !ok || delta > maxWireCount {
		p.fail(errBadReport)
		return nil, 0, false
	}
	return p.name, delta, true
}

// NextGauge returns the next gauge entry. Call only after NextCounter has
// returned false.
func (p *Parser) NextGauge() (name []byte, delta int64, ok bool) {
	if p.err != nil {
		return nil, 0, false
	}
	if p.phase != phaseGauges {
		if p.phase == phaseCounters {
			p.fail(errParserPhase)
		}
		return nil, 0, false
	}
	if p.remain == 0 {
		p.openSection(phaseHists)
		return nil, 0, false
	}
	p.remain--
	if !p.readName() {
		return nil, 0, false
	}
	if delta, p.off, ok = p.getVarint(); !ok {
		p.fail(errBadReport)
		return nil, 0, false
	}
	return p.name, delta, true
}

// HistDelta is one decoded histogram entry: the tallies plus the validated
// run bytes, which alias the report buffer (zero-copy).
type HistDelta struct {
	Count    uint64 // total new observations across all runs
	SumDelta int64
	CumMin   int64
	CumMax   int64
	runs     []byte
	n        int
}

// Buckets returns an iterator over the entry's bucket runs in ascending
// index order. Runs were validated at parse time, so every yielded index
// is within the shared latency layout.
func (h *HistDelta) Buckets() HistBucketIter {
	return HistBucketIter{runs: h.runs, rem: h.n, idx: -1}
}

// HistBucketIter iterates the buckets of a HistDelta.
type HistBucketIter struct {
	runs []byte
	rem  int
	idx  int
}

// Next returns the next bucket, or ok=false when exhausted.
func (it *HistBucketIter) Next() (b metrics.Bucket, ok bool) {
	if it.rem == 0 {
		return metrics.Bucket{}, false
	}
	it.rem--
	gap, n := binary.Uvarint(it.runs)
	it.runs = it.runs[n:]
	c, n := binary.Uvarint(it.runs)
	it.runs = it.runs[n:]
	if it.idx < 0 {
		it.idx = int(gap)
	} else {
		it.idx += int(gap)
	}
	return metrics.Bucket{Index: it.idx, Count: c}, true
}

// AddTo folds the histogram delta into dst: bucket counts via AddBucket,
// then the tallies. An empty delta folds nothing.
func (h *HistDelta) AddTo(dst *metrics.Histogram) {
	if h.Count == 0 {
		return
	}
	it := h.Buckets()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		dst.AddBucket(b.Index, b.Count)
	}
	dst.AddTallies(h.SumDelta, h.CumMin, h.CumMax)
}

// NextHist returns the next histogram entry. Call only after NextGauge has
// returned false. After the last histogram, the parser verifies the
// payload was fully consumed; check Err.
func (p *Parser) NextHist() (name []byte, hd HistDelta, ok bool) {
	if p.err != nil {
		return nil, HistDelta{}, false
	}
	if p.phase != phaseHists {
		if p.phase != phaseDone {
			p.fail(errParserPhase)
		}
		return nil, HistDelta{}, false
	}
	if p.remain == 0 {
		if p.off != p.end {
			p.fail(errBadReport)
		}
		p.phase = phaseDone
		return nil, HistDelta{}, false
	}
	p.remain--
	if !p.readName() {
		return nil, HistDelta{}, false
	}
	var nb uint64
	if nb, p.off, ok = p.getUvarint(); !ok || nb > uint64(metrics.LatencyBucketCount()) {
		p.fail(errBadReport)
		return nil, HistDelta{}, false
	}
	if nb == 0 {
		return p.name, HistDelta{}, true
	}
	if hd.SumDelta, p.off, ok = p.getVarint(); !ok {
		p.fail(errBadReport)
		return nil, HistDelta{}, false
	}
	if hd.CumMin, p.off, ok = p.getVarint(); !ok {
		p.fail(errBadReport)
		return nil, HistDelta{}, false
	}
	if hd.CumMax, p.off, ok = p.getVarint(); !ok || hd.CumMax < hd.CumMin {
		p.fail(errBadReport)
		return nil, HistDelta{}, false
	}
	runsStart := p.off
	idx := -1
	var total uint64
	for i := uint64(0); i < nb; i++ {
		var gap, c uint64
		if gap, p.off, ok = p.getUvarint(); !ok {
			p.fail(errBadReport)
			return nil, HistDelta{}, false
		}
		if idx < 0 {
			idx = int(gap)
		} else {
			if gap == 0 {
				p.fail(errBadReport)
				return nil, HistDelta{}, false
			}
			idx += int(gap)
		}
		if idx < 0 || idx >= metrics.LatencyBucketCount() {
			p.fail(errBadReport)
			return nil, HistDelta{}, false
		}
		if c, p.off, ok = p.getUvarint(); !ok || c == 0 {
			p.fail(errBadReport)
			return nil, HistDelta{}, false
		}
		total += c
		if total > maxWireCount {
			p.fail(errBadReport)
			return nil, HistDelta{}, false
		}
	}
	hd.Count = total
	hd.runs = p.d[runsStart:p.off]
	hd.n = int(nb)
	return p.name, hd, true
}

// openSection reads the next section's entry count and sanity-checks it
// against the remaining payload (every entry is at least three bytes).
func (p *Parser) openSection(phase int8) error {
	n, off, ok := p.getUvarint()
	if !ok || n > uint64(p.end-off) {
		return p.fail(errBadReport)
	}
	p.off = off
	p.remain = int(n)
	p.phase = phase
	p.name = p.name[:0]
	return nil
}

// readName front-decodes the next name into p.name.
func (p *Parser) readName() bool {
	prefix, off, ok := p.getUvarint()
	if !ok || prefix > uint64(len(p.name)) {
		p.fail(errBadReport)
		return false
	}
	sfx, off2, ok := getUvarintAt(p.d[:p.end], off)
	if !ok || prefix+sfx > maxNameLen || sfx > uint64(p.end-off2) {
		p.fail(errBadReport)
		return false
	}
	p.name = append(p.name[:prefix], p.d[off2:off2+int(sfx)]...)
	p.off = off2 + int(sfx)
	return true
}

func (p *Parser) getUvarint() (uint64, int, bool) {
	return getUvarintAt(p.d[:p.end], p.off)
}

func (p *Parser) getVarint() (int64, int, bool) {
	v, n := binary.Varint(p.d[p.off:p.end])
	if n <= 0 {
		return 0, p.off, false
	}
	return v, p.off + n, true
}

func getUvarintAt(d []byte, off int) (uint64, int, bool) {
	v, n := binary.Uvarint(d[off:])
	if n <= 0 {
		return 0, off, false
	}
	return v, off + n, true
}

func (p *Parser) fail(err error) error {
	if p.err == nil {
		p.err = err
	}
	p.phase = phaseDone
	return err
}
