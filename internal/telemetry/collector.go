package telemetry

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/simclock"
)

// Collector is the receiving side of the telemetry plane: it ingests PMT1
// reports from the whole fleet, folds them into rollups keyed by the scope
// hierarchy (fleet, DC, podset, pod), and periodically samples those
// rollups into ring-buffer time series. Counters sum exactly across
// agents; histograms merge bucket-for-bucket via AddBucket, so a fleet
// percentile is bit-identical to one histogram fed every agent's
// observations. Per-agent state is two words (last applied seq, last
// report time) — a million agents cost tens of megabytes, not gigabytes.
//
// Delta/ack rules, per report (seq, base) against the agent's lastApplied:
//
//	unknown agent, base == 0  fold as-is, register       (first contact)
//	unknown agent, base != 0  409 resync                 (collector restarted)
//	base == 0                 fold as-is                 (agent restart/rebase)
//	seq == lastApplied        ack only, no fold          (retry of applied report)
//	base == lastApplied       fold deltas                (the normal path)
//	anything else             409 resync
//
// The duplicate rule makes retries idempotent; the base==lastApplied rule
// makes loss harmless (the next report re-carries a lost one's deltas);
// 409 tells the agent to rebase, which never double-counts. Gauge rollups
// are sums of shipped deltas — exact for live agents, but a departed
// agent's last contribution lingers until the collector restarts
// (counters and histograms have no such drift).
type Collector struct {
	clock    simclock.Clock
	store    *Store
	interval time.Duration
	reg      *metrics.Registry

	mu      sync.Mutex
	parser  Parser
	agents  map[string]int32
	states  []agentSt
	rollups map[string]*rollup
	keyBuf  []byte
	levels  [4][]byte
	nLevels int

	cReports    *metrics.Counter
	cBytes      *metrics.Counter
	cDuplicates *metrics.Counter
	cResyncs    *metrics.Counter
	cRejects    *metrics.Counter
	gAgents     *metrics.Gauge
}

// agentSt is the entire per-agent state: at a million agents this must
// stay a couple of words.
type agentSt struct {
	lastApplied uint64
	lastNS      int64
}

const (
	kindCounter = 'c'
	kindGauge   = 'g'
	kindHist    = 'h'
)

// rollup is one (scope level, metric) aggregation cell. Series keys are
// precomputed at creation so sampling allocates nothing.
type rollup struct {
	kind byte
	val  int64
	hist *metrics.Histogram
	key0 string // counter/gauge series, or histogram p50
	key1 string // histogram p99
}

// CollectorConfig configures a Collector. The zero value works.
type CollectorConfig struct {
	// Clock drives ingest timestamps and the sampling loop. nil = wall.
	Clock simclock.Clock
	// Store receives the sampled rollup series. nil = NewStore(0, 0).
	Store *Store
	// SampleInterval is Run's rollup sampling cadence — the §3.5 5-minute
	// perfcounter path. Default 5 minutes.
	SampleInterval time.Duration
}

// NewCollector returns an empty collector.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewReal()
	}
	if cfg.Store == nil {
		cfg.Store = NewStore(0, 0)
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 5 * time.Minute
	}
	c := &Collector{
		clock:    cfg.Clock,
		store:    cfg.Store,
		interval: cfg.SampleInterval,
		reg:      metrics.NewRegistry(),
		agents:   map[string]int32{},
		rollups:  map[string]*rollup{},
	}
	c.cReports = c.reg.Counter("telemetry.reports")
	c.cBytes = c.reg.Counter("telemetry.report_bytes")
	c.cDuplicates = c.reg.Counter("telemetry.duplicates")
	c.cResyncs = c.reg.Counter("telemetry.resyncs")
	c.cRejects = c.reg.Counter("telemetry.rejects")
	c.gAgents = c.reg.Gauge("telemetry.agents")
	return c
}

// Metrics returns the collector's own registry (ingest counters).
func (c *Collector) Metrics() *metrics.Registry { return c.reg }

// Store returns the time-series store the rollups are sampled into.
func (c *Collector) Store() *Store { return c.store }

// IngestResult is the collector's verdict on one report.
type IngestResult struct {
	// Ack is the seq the agent should consider applied (on success and on
	// duplicates).
	Ack uint64
	// Resync tells the agent its delta base is unknown here: rebase and
	// send a self-contained report.
	Resync bool
	// LastApplied is the collector's high-water mark for the agent,
	// informational on resyncs.
	LastApplied uint64
	// Duplicate marks a retry of an already-applied report.
	Duplicate bool
}

// Ingest validates and folds one PMT1 report. The data is parsed twice —
// a validation pass, then a fold pass — so a report that is corrupt at
// byte 900 cannot leave half its deltas behind. Steady-state ingest
// performs no allocations (CI tier 3 guards this); the only allocating
// path is an agent's or metric's first appearance.
func (c *Collector) Ingest(data []byte, now time.Time) (IngestResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	p := &c.parser
	if err := c.validate(data); err != nil {
		c.cRejects.Inc()
		return IngestResult{}, err
	}
	// Validation re-parses the header, so the cheap fields are still set.
	if err := p.Reset(data); err != nil {
		c.cRejects.Inc()
		return IngestResult{}, err
	}
	src := p.Src()
	if len(src) == 0 {
		c.cRejects.Inc()
		return IngestResult{}, fmt.Errorf("telemetry: report with empty src")
	}
	seq, base := p.Seq(), p.Base()

	idx, known := c.agents[string(src)]
	if !known {
		if base != 0 {
			c.cResyncs.Inc()
			return IngestResult{Resync: true}, nil
		}
		idx = int32(len(c.states))
		c.states = append(c.states, agentSt{})
		c.agents[string(src)] = idx
		c.gAgents.Set(int64(len(c.states)))
	}
	st := &c.states[idx]
	switch {
	case known && seq != 0 && seq == st.lastApplied:
		// Retry of a report we already applied (its ack was lost): ack
		// again without folding. Checked before the base rules so a resent
		// self-contained report cannot fold twice.
		st.lastNS = now.UnixNano()
		c.cDuplicates.Inc()
		return IngestResult{Ack: seq, Duplicate: true, LastApplied: st.lastApplied}, nil
	case base == 0:
		// Self-contained: first contact, agent restart, or post-resync
		// rebase. Fold as-is.
	case base != st.lastApplied:
		c.cResyncs.Inc()
		return IngestResult{Resync: true, LastApplied: st.lastApplied}, nil
	}

	c.setLevels(p.Scope())
	for {
		name, delta, ok := p.NextCounter()
		if !ok {
			break
		}
		for l := 0; l < c.nLevels; l++ {
			c.cell(c.levels[l], kindCounter, name).val += int64(delta)
		}
	}
	for {
		name, delta, ok := p.NextGauge()
		if !ok {
			break
		}
		for l := 0; l < c.nLevels; l++ {
			c.cell(c.levels[l], kindGauge, name).val += delta
		}
	}
	for {
		name, hd, ok := p.NextHist()
		if !ok {
			break
		}
		if hd.Count == 0 {
			continue
		}
		for l := 0; l < c.nLevels; l++ {
			r := c.cell(c.levels[l], kindHist, name)
			if r.hist == nil {
				r.hist = metrics.NewLatencyHistogram()
			}
			hd.AddTo(r.hist)
		}
	}
	if err := p.Err(); err != nil {
		// Unreachable after a clean validation pass; fail loudly if the
		// two passes ever disagree.
		c.cRejects.Inc()
		return IngestResult{}, err
	}

	st.lastApplied = seq
	st.lastNS = now.UnixNano()
	c.cReports.Inc()
	c.cBytes.Add(int64(len(data)))
	return IngestResult{Ack: seq, LastApplied: seq}, nil
}

// validate drains the whole report without folding anything.
func (c *Collector) validate(data []byte) error {
	p := &c.parser
	if err := p.Reset(data); err != nil {
		return err
	}
	for {
		if _, _, ok := p.NextCounter(); !ok {
			break
		}
	}
	for {
		if _, _, ok := p.NextGauge(); !ok {
			break
		}
	}
	for {
		if _, _, ok := p.NextHist(); !ok {
			break
		}
	}
	return p.Err()
}

// setLevels splits a scope path into its rollup levels: the fleet root
// plus each dot-separated prefix ("d0.s1.p2" → fleet, d0, d0.s1,
// d0.s1.p2). Deeper paths fold into the deepest three levels plus fleet.
func (c *Collector) setLevels(scope []byte) {
	c.levels[0] = fleetLevel
	c.nLevels = 1
	for i := 0; i <= len(scope) && c.nLevels < len(c.levels); i++ {
		if i == len(scope) || scope[i] == '.' {
			if i > 0 {
				c.levels[c.nLevels] = scope[:i]
				c.nLevels++
			}
		}
	}
}

var fleetLevel = []byte("fleet")

// cell returns the rollup cell for (level, kind, metric), creating it on
// first sight. Lookups build the composite key in a reused buffer; the
// map index with a string conversion does not allocate on hit.
func (c *Collector) cell(level []byte, kind byte, name []byte) *rollup {
	b := append(c.keyBuf[:0], level...)
	b = append(b, 0, kind)
	b = append(b, name...)
	c.keyBuf = b
	r, ok := c.rollups[string(b)]
	if !ok {
		r = &rollup{kind: kind}
		switch kind {
		case kindCounter:
			r.key0 = string(level) + "/counter/" + string(name)
		case kindGauge:
			r.key0 = string(level) + "/gauge/" + string(name)
		case kindHist:
			r.key0 = string(level) + "/p50/" + string(name)
			r.key1 = string(level) + "/p99/" + string(name)
		}
		c.rollups[string(b)] = r
	}
	return r
}

// SampleRollups appends every rollup's current value to the store: one
// point per counter and gauge, p50/p99 points (milliseconds, like the
// Perfcounter Aggregator's series) per histogram. Call it on the
// reporting cadence; Run does.
func (c *Collector) SampleRollups(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.rollups {
		switch r.kind {
		case kindCounter, kindGauge:
			c.store.Append(r.key0, now, float64(r.val))
		case kindHist:
			c.store.Append(r.key0, now, float64(r.hist.Percentile(0.50))/1e6)
			c.store.Append(r.key1, now, float64(r.hist.Percentile(0.99))/1e6)
		}
	}
}

// Run samples rollups on the configured interval until ctx is done.
func (c *Collector) Run(ctx context.Context) {
	ticker := c.clock.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.SampleRollups(c.clock.Now())
		}
	}
}

// AgentCount returns how many distinct agents have ever reported.
func (c *Collector) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.states)
}

// StaleFraction returns the fraction of known agents whose last accepted
// report is older than staleAfter — the fleet-level watchdog signal that
// pages before any single component's staleness would.
func (c *Collector) StaleFraction(staleAfter time.Duration, now time.Time) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.states) == 0 {
		return 0
	}
	cutoff := now.Add(-staleAfter).UnixNano()
	stale := 0
	for i := range c.states {
		if c.states[i].lastNS < cutoff {
			stale++
		}
	}
	return float64(stale) / float64(len(c.states))
}

// RollupCounter returns the summed counter value for a scope level
// ("fleet", "d0", "d0.s1", "d0.s1.p2") and metric name.
func (c *Collector) RollupCounter(scope, name string) (int64, bool) {
	return c.rollupVal(scope, kindCounter, name)
}

// RollupGauge returns the summed gauge value for a scope level and name.
func (c *Collector) RollupGauge(scope, name string) (int64, bool) {
	return c.rollupVal(scope, kindGauge, name)
}

func (c *Collector) rollupVal(scope string, kind byte, name string) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.rollups[scope+"\x00"+string(kind)+name]
	if !ok {
		return 0, false
	}
	return r.val, true
}

// RollupHistogram returns a copy of the merged histogram for a scope level
// and metric name.
func (c *Collector) RollupHistogram(scope, name string) (*metrics.Histogram, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.rollups[scope+"\x00"+string(kindHist)+name]
	if !ok || r.hist == nil {
		return nil, false
	}
	return r.hist.Clone(), true
}

// HTTP surface. The handler is standalone so the same collector mounts in
// the controller's mux, the debug server, or its own listener.

// MaxReportBytes bounds one report's decompressed size.
const MaxReportBytes = 4 << 20

var (
	ingestBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}
	gzipPool      sync.Pool // *gzip.Reader
)

// Handler returns the collector's HTTP surface:
//
//	POST /report   one PMT1 report (Content-Encoding: gzip honored);
//	               200 {"ack":N} | 409 {"resync":true,"lastApplied":N}
//	GET  /         summary: agents, keys, ingest counters
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", c.serveReport)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		c.mu.Lock()
		agents := len(c.states)
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"service": "pingmesh-telemetry",
			"agents":  agents,
			"series":  len(c.store.Keys()),
			"counters": map[string]int64{
				"reports":    c.cReports.Value(),
				"bytes":      c.cBytes.Value(),
				"duplicates": c.cDuplicates.Value(),
				"resyncs":    c.cResyncs.Value(),
				"rejects":    c.cRejects.Value(),
			},
		})
	})
	return mux
}

func (c *Collector) serveReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	bufp := ingestBufPool.Get().(*[]byte)
	defer ingestBufPool.Put(bufp)
	var body io.Reader = http.MaxBytesReader(w, r.Body, MaxReportBytes)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, _ := gzipPool.Get().(*gzip.Reader)
		if zr == nil {
			var err error
			if zr, err = gzip.NewReader(body); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad gzip body"})
				return
			}
		} else if err := zr.Reset(body); err != nil {
			gzipPool.Put(zr)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad gzip body"})
			return
		}
		defer gzipPool.Put(zr)
		body = zr
	}
	data, err := readAll((*bufp)[:0], body)
	*bufp = data[:0]
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	res, err := c.Ingest(data, c.clock.Now())
	switch {
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case res.Resync:
		writeJSON(w, http.StatusConflict, map[string]any{
			"resync": true, "lastApplied": res.LastApplied,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ack": res.Ack})
	}
}

// readAll is io.ReadAll into a reusable buffer, bounded by MaxReportBytes.
func readAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		if len(dst) > MaxReportBytes {
			return dst, fmt.Errorf("telemetry: report exceeds %d bytes", MaxReportBytes)
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
