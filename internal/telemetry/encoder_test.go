package telemetry

import (
	"testing"
	"time"

	"pingmesh/internal/metrics"
)

// shipRound encodes the registry and delivers the report, acking on
// success — one happy-path reporting interval.
func shipRound(t *testing.T, e *Encoder, c *Collector, now time.Time) IngestResult {
	t.Helper()
	data, seq := e.Encode(now.UnixNano())
	res, err := c.Ingest(data, now)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if !res.Resync {
		e.Ack(res.Ack)
		if res.Ack != seq {
			t.Fatalf("acked %d, sent %d", res.Ack, seq)
		}
	}
	return res
}

func TestEncoderCollectorDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	cnt := reg.Counter("agent.probes_sent")
	g := reg.Gauge("agent.peers")
	h := reg.Histogram("agent.probe_rtt")
	e := NewEncoder("srv1", "d0.s1.p2", reg)
	c := NewCollector(CollectorConfig{})
	now := time.Unix(1000, 0)

	cnt.Add(10)
	g.Set(5)
	h.Observe(3 * time.Millisecond)
	h.Observe(8 * time.Millisecond)
	shipRound(t, e, c, now)

	if v, ok := c.RollupCounter("fleet", "agent.probes_sent"); !ok || v != 10 {
		t.Fatalf("fleet counter after round 1: %d ok=%v", v, ok)
	}
	if v, ok := c.RollupGauge("fleet", "agent.peers"); !ok || v != 5 {
		t.Fatalf("fleet gauge after round 1: %d ok=%v", v, ok)
	}

	// Second interval: deltas only.
	cnt.Add(7)
	g.Set(3)
	h.Observe(1 * time.Millisecond)
	shipRound(t, e, c, now.Add(5*time.Minute))

	if v, _ := c.RollupCounter("fleet", "agent.probes_sent"); v != 17 {
		t.Fatalf("fleet counter after round 2: %d", v)
	}
	if v, _ := c.RollupGauge("fleet", "agent.peers"); v != 3 {
		t.Fatalf("fleet gauge after round 2: %d", v)
	}
	// All scope levels must carry the same rollup for a single agent.
	for _, scope := range []string{"fleet", "d0", "d0.s1", "d0.s1.p2"} {
		if v, ok := c.RollupCounter(scope, "agent.probes_sent"); !ok || v != 17 {
			t.Fatalf("scope %q counter: %d ok=%v", scope, v, ok)
		}
	}
	fh, ok := c.RollupHistogram("fleet", "agent.probe_rtt")
	if !ok {
		t.Fatal("no fleet histogram")
	}
	want := metrics.NewLatencyHistogram()
	want.Observe(3 * time.Millisecond)
	want.Observe(8 * time.Millisecond)
	want.Observe(1 * time.Millisecond)
	assertHistEqual(t, fh, want)
}

func assertHistEqual(t *testing.T, got, want *metrics.Histogram) {
	t.Helper()
	if got.Count() != want.Count() || got.Sum() != want.Sum() ||
		got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("tallies: got n=%d sum=%v min=%v max=%v, want n=%d sum=%v min=%v max=%v",
			got.Count(), got.Sum(), got.Min(), got.Max(),
			want.Count(), want.Sum(), want.Min(), want.Max())
	}
	gi, wi := got.Buckets(), want.Buckets()
	for {
		gb, gok := gi.Next()
		wb, wok := wi.Next()
		if gok != wok {
			t.Fatalf("bucket support differs: got ok=%v want ok=%v", gok, wok)
		}
		if !gok {
			break
		}
		if gb != wb {
			t.Fatalf("bucket mismatch: got %v want %v", gb, wb)
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if g, w := got.Percentile(q), want.Percentile(q); g != w {
			t.Fatalf("P%g: got %v want %v (must be bit-identical)", q*100, g, w)
		}
	}
}

// TestEncoderLostReportRecarried: a report that never reaches the
// collector is superseded by the next, which carries the same activity
// against the same base — nothing is lost.
func TestEncoderLostReportRecarried(t *testing.T) {
	reg := metrics.NewRegistry()
	cnt := reg.Counter("c")
	h := reg.Histogram("h")
	e := NewEncoder("srv1", "d0", reg)
	c := NewCollector(CollectorConfig{})
	now := time.Unix(1000, 0)

	cnt.Add(4)
	h.Observe(time.Millisecond)
	shipRound(t, e, c, now)

	// This report is built but never delivered (upload failed, gave up).
	cnt.Add(6)
	h.Observe(2 * time.Millisecond)
	e.Encode(now.Add(5 * time.Minute).UnixNano())

	// Next interval: more activity; the report carries both windows.
	cnt.Add(5)
	h.Observe(4 * time.Millisecond)
	shipRound(t, e, c, now.Add(10*time.Minute))

	if v, _ := c.RollupCounter("fleet", "c"); v != 15 {
		t.Fatalf("counter=%d want 15", v)
	}
	fh, _ := c.RollupHistogram("fleet", "h")
	want := metrics.NewLatencyHistogram()
	want.Observe(time.Millisecond)
	want.Observe(2 * time.Millisecond)
	want.Observe(4 * time.Millisecond)
	assertHistEqual(t, fh, want)
}

// TestCollectorDuplicateIdempotent: delivering the same report twice (a
// retry whose first attempt applied but whose ack was lost) folds once.
func TestCollectorDuplicateIdempotent(t *testing.T) {
	reg := metrics.NewRegistry()
	cnt := reg.Counter("c")
	h := reg.Histogram("h")
	e := NewEncoder("srv1", "d0", reg)
	c := NewCollector(CollectorConfig{})
	now := time.Unix(1000, 0)

	cnt.Add(3)
	h.Observe(time.Millisecond)
	data, seq := e.Encode(now.UnixNano())
	buf := append([]byte(nil), data...)
	if res, err := c.Ingest(buf, now); err != nil || res.Ack != seq {
		t.Fatalf("first delivery: %+v err=%v", res, err)
	}
	res, err := c.Ingest(buf, now)
	if err != nil || !res.Duplicate || res.Ack != seq {
		t.Fatalf("second delivery: %+v err=%v", res, err)
	}
	e.Ack(seq)
	if v, _ := c.RollupCounter("fleet", "c"); v != 3 {
		t.Fatalf("counter=%d want 3 (duplicate folded twice)", v)
	}
	fh, _ := c.RollupHistogram("fleet", "h")
	if fh.Count() != 1 {
		t.Fatalf("hist count=%d want 1", fh.Count())
	}
}

// TestCollectorResyncRebase: a collector that lost its per-agent state
// (restart) 409s the next delta report; the agent rebases and continues
// with only post-rebase activity — never double-counting.
func TestCollectorResyncRebase(t *testing.T) {
	reg := metrics.NewRegistry()
	cnt := reg.Counter("c")
	e := NewEncoder("srv1", "d0", reg)
	c1 := NewCollector(CollectorConfig{})
	now := time.Unix(1000, 0)

	cnt.Add(10)
	shipRound(t, e, c1, now)

	// Collector restarts empty.
	c2 := NewCollector(CollectorConfig{})
	cnt.Add(5)
	data, _ := e.Encode(now.Add(5 * time.Minute).UnixNano())
	res, err := c2.Ingest(data, now.Add(5*time.Minute))
	if err != nil || !res.Resync {
		t.Fatalf("expected resync from fresh collector: %+v err=%v", res, err)
	}
	e.Rebase()

	// Post-rebase activity ships self-contained.
	cnt.Add(2)
	res2 := shipRound(t, e, c2, now.Add(10*time.Minute))
	if res2.Resync {
		t.Fatal("rebased report still resynced")
	}
	if v, _ := c2.RollupCounter("fleet", "c"); v != 2 {
		t.Fatalf("counter=%d want 2 (only post-rebase delta)", v)
	}

	// And deltas resume normally afterwards.
	cnt.Add(9)
	shipRound(t, e, c2, now.Add(15*time.Minute))
	if v, _ := c2.RollupCounter("fleet", "c"); v != 11 {
		t.Fatalf("counter=%d want 11", v)
	}
}

func TestCollectorUnknownAgentWithBaseResyncs(t *testing.T) {
	var b ReportBuilder
	b.Begin("ghost", "d0", 5, 4, 0)
	b.Counter("c", 1)
	c := NewCollector(CollectorConfig{})
	res, err := c.Ingest(b.Finish(), time.Unix(0, 0))
	if err != nil || !res.Resync {
		t.Fatalf("unknown agent with base!=0: %+v err=%v", res, err)
	}
	if c.AgentCount() != 0 {
		t.Fatal("resynced agent was registered")
	}
}

// TestCollectorCorruptReportAtomic: a report that goes corrupt mid-payload
// must not leave a partial fold behind.
func TestCollectorCorruptReportAtomic(t *testing.T) {
	var b ReportBuilder
	b.Begin("srv1", "d0", 1, 0, 0)
	b.Counter("aaa", 100)
	b.Counter("bbb", 200)
	good := append([]byte(nil), b.Finish()...)
	bad := good[:len(good)-1] // truncate the last counter's delta

	c := NewCollector(CollectorConfig{})
	if _, err := c.Ingest(bad, time.Unix(0, 0)); err == nil {
		t.Fatal("corrupt report accepted")
	}
	if _, ok := c.RollupCounter("fleet", "aaa"); ok {
		t.Fatal("partial fold: counter aaa applied from a corrupt report")
	}
	if c.AgentCount() != 0 {
		t.Fatal("corrupt report registered its agent")
	}
}

func TestCollectorStaleFraction(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	now := time.Unix(10000, 0)
	for i, src := range []string{"a", "b", "c", "d"} {
		var b ReportBuilder
		b.Begin(src, "d0", 1, 0, 0)
		b.Counter("c", 1)
		at := now
		if i < 3 {
			at = now.Add(-20 * time.Minute) // stale
		}
		if _, err := c.Ingest(b.Finish(), at); err != nil {
			t.Fatal(err)
		}
	}
	if f := c.StaleFraction(15*time.Minute, now); f != 0.75 {
		t.Fatalf("StaleFraction=%v want 0.75", f)
	}
	if f := c.StaleFraction(30*time.Minute, now); f != 0 {
		t.Fatalf("StaleFraction=%v want 0", f)
	}
	if f := NewCollector(CollectorConfig{}).StaleFraction(time.Minute, now); f != 0 {
		t.Fatalf("empty collector StaleFraction=%v", f)
	}
}

func TestCollectorSampleRollups(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("c").Add(5)
	reg.Histogram("h").Observe(2 * time.Millisecond)
	e := NewEncoder("srv1", "d0", reg)
	st := NewStore(16, 0)
	c := NewCollector(CollectorConfig{Store: st})
	now := time.Unix(1000, 0)
	shipRound(t, e, c, now)
	c.SampleRollups(now)

	if p, ok := st.Latest("fleet/counter/c"); !ok || p.Value != 5 {
		t.Fatalf("fleet/counter/c: %+v ok=%v", p, ok)
	}
	if p, ok := st.Latest("d0/counter/c"); !ok || p.Value != 5 {
		t.Fatalf("d0/counter/c: %+v ok=%v", p, ok)
	}
	p50, ok := st.Latest("fleet/p50/h")
	if !ok || p50.Value <= 0 {
		t.Fatalf("fleet/p50/h: %+v ok=%v", p50, ok)
	}
	if _, ok := st.Latest("fleet/p99/h"); !ok {
		t.Fatal("fleet/p99/h missing")
	}
}

// TestFleetHistogramParity is the acceptance differential test: many
// agents, each observing its own draws over several reporting rounds with
// loss and duplication in the mix — the fleet-merged histogram must be
// bit-identical (buckets, tallies, every percentile) to one histogram fed
// all observations directly.
func TestFleetHistogramParity(t *testing.T) {
	const agents = 20
	const rounds = 4
	c := NewCollector(CollectorConfig{})
	exact := metrics.NewLatencyHistogram()
	var exactProbes int64

	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}

	type ag struct {
		reg *metrics.Registry
		cnt *metrics.Counter
		h   *metrics.LockedHistogram
		enc *Encoder
	}
	fleet := make([]*ag, agents)
	for i := range fleet {
		reg := metrics.NewRegistry()
		src := string(rune('a'+i/10)) + string(rune('a'+i%10))
		fleet[i] = &ag{
			reg: reg,
			cnt: reg.Counter("agent.probes_sent"),
			h:   reg.Histogram("agent.probe_rtt"),
			enc: NewEncoder(src, "d0.s0.p0", reg),
		}
	}

	now := time.Unix(5000, 0)
	for r := 0; r < rounds; r++ {
		for _, a := range fleet {
			n := int(next()%50) + 1
			for j := 0; j < n; j++ {
				d := time.Duration(next()%uint64(500*time.Millisecond)) + time.Microsecond
				a.h.Observe(d)
				exact.Observe(d)
			}
			a.cnt.Add(int64(n))
			exactProbes += int64(n)

			data, seq := a.enc.Encode(now.UnixNano())
			switch next() % 4 {
			case 0: // lost: never delivered, re-carried next round
			case 1: // duplicated: delivered twice
				buf := append([]byte(nil), data...)
				res, err := c.Ingest(buf, now)
				if err != nil {
					t.Fatal(err)
				}
				res2, err := c.Ingest(buf, now)
				if err != nil || !res2.Duplicate {
					t.Fatalf("dup: %+v err=%v", res2, err)
				}
				a.enc.Ack(res.Ack)
				_ = seq
			default: // delivered once
				res, err := c.Ingest(data, now)
				if err != nil {
					t.Fatal(err)
				}
				a.enc.Ack(res.Ack)
			}
		}
		now = now.Add(5 * time.Minute)
	}
	// Final flush round so every agent's tail activity lands.
	for _, a := range fleet {
		data, _ := a.enc.Encode(now.UnixNano())
		res, err := c.Ingest(data, now)
		if err != nil {
			t.Fatal(err)
		}
		a.enc.Ack(res.Ack)
	}

	if v, _ := c.RollupCounter("fleet", "agent.probes_sent"); v != exactProbes {
		t.Fatalf("fleet probes=%d want %d", v, exactProbes)
	}
	fh, ok := c.RollupHistogram("fleet", "agent.probe_rtt")
	if !ok {
		t.Fatal("no fleet histogram")
	}
	assertHistEqual(t, fh, exact)
	// Pod-level rollup covers the same population here, so it must match too.
	ph, _ := c.RollupHistogram("d0.s0.p0", "agent.probe_rtt")
	assertHistEqual(t, ph, exact)
}
