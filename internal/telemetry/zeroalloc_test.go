package telemetry

import (
	"testing"
	"time"

	"pingmesh/internal/metrics"
)

// telemetryFixture builds a realistic agent registry (the metric shapes the
// real agent registers) plus an encoder and a warmed collector.
func telemetryFixture() (*metrics.Registry, *Encoder, *Collector) {
	reg := metrics.NewRegistry()
	for _, n := range []string{
		"agent.probes_sent", "agent.probes_failed", "agent.uploads_ok",
		"agent.uploads_failed", "agent.fetches_ok",
	} {
		reg.Counter(n).Add(1)
	}
	reg.Gauge("agent.peers").Set(40)
	for _, n := range []string{"agent.probe_rtt", "agent.fetch.duration", "agent.flush.duration"} {
		h := reg.Histogram(n)
		for i := 0; i < 32; i++ {
			h.Observe(time.Duration(i+1) * time.Millisecond)
		}
	}
	enc := NewEncoder("srv-alloc", "d0.s1.p2", reg)
	col := NewCollector(CollectorConfig{})
	return reg, enc, col
}

// TestEncodeZeroAlloc guards the steady-state encode path: after warmup
// (maps populated, buffers sized), Encode must not allocate.
func TestEncodeZeroAlloc(t *testing.T) {
	reg, enc, col := telemetryFixture()
	now := time.Unix(1000, 0)
	// Warm: two acked rounds size every buffer and map.
	for i := 0; i < 2; i++ {
		data, seq := enc.Encode(now.UnixNano())
		if _, err := col.Ingest(data, now); err != nil {
			t.Fatal(err)
		}
		enc.Ack(seq)
		now = now.Add(5 * time.Minute)
	}
	h := reg.Histogram("agent.probe_rtt")
	cnt := reg.Counter("agent.probes_sent")
	allocs := testing.AllocsPerRun(100, func() {
		cnt.Add(3)
		h.Observe(2 * time.Millisecond)
		data, seq := enc.Encode(now.UnixNano())
		_ = data
		enc.Ack(seq)
	})
	if allocs != 0 {
		t.Fatalf("Encode allocates %v allocs/op in steady state, want 0", allocs)
	}
}

// TestIngestZeroAlloc guards the steady-state ingest path: with the agent
// and every metric already registered, folding a report must not allocate.
func TestIngestZeroAlloc(t *testing.T) {
	reg, enc, col := telemetryFixture()
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		data, seq := enc.Encode(now.UnixNano())
		if _, err := col.Ingest(data, now); err != nil {
			t.Fatal(err)
		}
		enc.Ack(seq)
		now = now.Add(5 * time.Minute)
	}
	h := reg.Histogram("agent.probe_rtt")
	cnt := reg.Counter("agent.probes_sent")
	allocs := testing.AllocsPerRun(100, func() {
		cnt.Add(3)
		h.Observe(2 * time.Millisecond)
		data, seq := enc.Encode(now.UnixNano())
		res, err := col.Ingest(data, now)
		if err != nil {
			t.Fatal(err)
		}
		enc.Ack(res.Ack)
		_ = seq
	})
	if allocs != 0 {
		t.Fatalf("Encode+Ingest allocates %v allocs/op in steady state, want 0", allocs)
	}
}
