package telemetry

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/simclock"
)

// Shipper periodically encodes a registry into PMT1 reports and POSTs them
// to a collector. It is the agent-side half of the §3.5 perfcounter path:
// one report per interval, gzip-compressed, retried with the same capped
// equal-jitter backoff the pinglist client uses, acknowledged so the next
// report's deltas start where the collector actually is. A 409 from the
// collector (it lost our base — restart, failover) triggers a Rebase and
// the next report goes out self-contained.
//
// Shipper runs one report at a time from one goroutine; retries resend the
// same bytes, so a report applied whose ack was lost is deduplicated by
// the collector's seq check.
type Shipper struct {
	// URL is the collector's report endpoint, e.g.
	// "http://controller:8080/telemetry/report".
	URL string
	// Src identifies this agent on the wire (typically its server name).
	Src string
	// Scope is the agent's position in the rollup hierarchy, e.g.
	// "d0.s1.p2" for DC d0, podset s1, pod p2. Empty folds into fleet only.
	Scope string
	// Registry is the metrics source.
	Registry *metrics.Registry

	// HTTPClient optionally overrides the transport. Defaults to a client
	// with a 10s timeout and keep-alives off (reports are minutes apart).
	HTTPClient *http.Client
	// Clock drives the report loop and backoff sleeps. nil means wall time.
	Clock simclock.Clock
	// Interval is the reporting cadence. Default 5 minutes (§3.5).
	Interval time.Duration
	// NoGzip ships reports uncompressed.
	NoGzip bool

	// MaxRetries bounds transient-failure retries per report. 0 means the
	// default of 2 (three attempts total); negative disables retries.
	MaxRetries int
	// BackoffBase is the first retry's nominal delay (default 100ms),
	// doubling per retry up to BackoffMax (default 2s), equal-jittered.
	BackoffBase time.Duration
	// BackoffMax caps the nominal backoff delay.
	BackoffMax time.Duration

	enc   *Encoder
	zbuf  bytes.Buffer
	zw    *gzip.Writer
	stats ShipperStats
}

// ShipperStats counts the shipper's transport behaviour.
type ShipperStats struct {
	// Reports is the number of reports acknowledged by the collector.
	Reports int64
	// BytesOnWire is total body bytes sent (compressed size when gzip).
	BytesOnWire int64
	// Retries is how many transient-failure retries were attempted.
	Retries int64
	// Resyncs is how many 409 responses triggered a rebase.
	Resyncs int64
	// Errors is how many reports were abandoned after retries ran out.
	Errors int64
}

// Stats returns a snapshot of the shipper's counters. Call from the
// shipper's goroutine or after Run returns.
func (s *Shipper) Stats() ShipperStats { return s.stats }

var shipperClient = &http.Client{
	Timeout:   10 * time.Second,
	Transport: &http.Transport{DisableKeepAlives: true},
}

func (s *Shipper) httpClient() *http.Client {
	if s.HTTPClient != nil {
		return s.HTTPClient
	}
	return shipperClient
}

func (s *Shipper) clock() simclock.Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return simclock.NewReal()
}

func (s *Shipper) interval() time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return 5 * time.Minute
}

func (s *Shipper) maxRetries() int {
	switch {
	case s.MaxRetries < 0:
		return 0
	case s.MaxRetries == 0:
		return 2
	default:
		return s.MaxRetries
	}
}

func (s *Shipper) backoff(attempt int) time.Duration {
	base, max := s.BackoffBase, s.BackoffMax
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Run reports every Interval until ctx is done, then ships one final
// report so the collector sees activity up to shutdown.
func (s *Shipper) Run(ctx context.Context) {
	clk := s.clock()
	ticker := clk.NewTicker(s.interval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			final, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			s.ReportOnce(final)
			cancel()
			return
		case <-ticker.C:
			s.ReportOnce(ctx)
		}
	}
}

// ReportOnce builds and ships one report. Transient failures (transport
// errors, 5xx) retry the same bytes with backoff; a 409 rebases the
// encoder and returns nil (the next interval's report is self-contained).
// Permanent failures and retry exhaustion return the error; the deltas are
// not lost — the next report re-carries them against the same base.
func (s *Shipper) ReportOnce(ctx context.Context) error {
	if s.enc == nil {
		s.enc = NewEncoder(s.Src, s.Scope, s.Registry)
	}
	data, seq := s.enc.Encode(s.clock().Now().UnixNano())
	body := data
	if !s.NoGzip {
		s.zbuf.Reset()
		if s.zw == nil {
			s.zw = gzip.NewWriter(&s.zbuf)
		} else {
			s.zw.Reset(&s.zbuf)
		}
		s.zw.Write(data)
		if err := s.zw.Close(); err != nil {
			return fmt.Errorf("telemetry: gzip report: %w", err)
		}
		body = s.zbuf.Bytes()
	}

	err := s.post(ctx, body, seq)
	for attempt := 0; attempt < s.maxRetries(); attempt++ {
		if err == nil || !isTransient(err) || ctx.Err() != nil {
			break
		}
		s.stats.Retries++
		if serr := sleepClock(ctx, s.clock(), s.backoff(attempt)); serr != nil {
			break
		}
		err = s.post(ctx, body, seq)
	}
	if err != nil {
		s.stats.Errors++
	}
	return err
}

func (s *Shipper) post(ctx context.Context, body []byte, seq uint64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("telemetry: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if !s.NoGzip {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := s.httpClient().Do(req)
	if err != nil {
		return &transientError{fmt.Errorf("telemetry: ship report: %w", err)}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var ack struct {
			Ack uint64 `json:"ack"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack); err != nil {
			return fmt.Errorf("telemetry: parse ack: %w", err)
		}
		if ack.Ack != seq {
			return fmt.Errorf("telemetry: collector acked %d, sent %d", ack.Ack, seq)
		}
		s.enc.Ack(seq)
		s.stats.Reports++
		s.stats.BytesOnWire += int64(len(body))
		return nil
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		s.enc.Rebase()
		s.stats.Resyncs++
		return nil
	default:
		io.Copy(io.Discard, resp.Body)
		err := fmt.Errorf("telemetry: ship report: status %d", resp.StatusCode)
		if resp.StatusCode >= 500 {
			return &transientError{err}
		}
		return err
	}
}

// sleepClock blocks for d on the given clock, or until ctx is done.
func sleepClock(ctx context.Context, clk simclock.Clock, d time.Duration) error {
	t := clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// transientError marks failures worth retrying: transport errors and 5xx —
// the shapes a restarting collector produces.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}
