package telemetry

import (
	"pingmesh/internal/metrics"
)

// Encoder turns a metrics.Registry into PMT1 delta reports. It keeps two
// snapshots of every metric: the *base* (values as of the last report the
// collector acknowledged) and the *pending* (values as of the last report
// built). Encode computes deltas against the base, so a report that is
// lost on the wire is superseded — not lost — by the next one, which
// re-carries the same activity. Ack promotes pending to base with a pair
// of pointer swaps; Rebase (after a collector resync) re-anchors the base
// at the current registry values so the next report is self-contained.
//
// One Encoder serves one registry from one goroutine (the Shipper's). All
// buffers, maps, and scratch histograms are reused, so a steady-state
// Encode performs no allocations (CI tier 3 guards this). Histograms in
// the registry must only accumulate — an Encoder cannot express a reset.
type Encoder struct {
	src, scope string
	reg        *metrics.Registry
	b          ReportBuilder

	seq   uint64 // seq of the last built report
	acked uint64 // last seq the collector acknowledged

	cbase, cpend map[string]int64
	gbase, gpend map[string]int64
	hbase, hpend map[string]*metrics.Histogram
	scratch      *metrics.Histogram // SnapshotInto target

	rebasing bool
	nowNS    int64
}

// NewEncoder returns an encoder for reg. src identifies the agent on the
// wire; scope is its DC/podset/pod position (e.g. "d0.s1.p2"; "" for
// unscoped).
func NewEncoder(src, scope string, reg *metrics.Registry) *Encoder {
	return &Encoder{
		src: src, scope: scope, reg: reg,
		cbase: map[string]int64{}, cpend: map[string]int64{},
		gbase: map[string]int64{}, gpend: map[string]int64{},
		hbase: map[string]*metrics.Histogram{}, hpend: map[string]*metrics.Histogram{},
	}
}

// Encode builds the next report: every metric's delta against the acked
// base, sequence-numbered one past the previous report. The returned bytes
// are owned by the encoder and valid until the next Encode; ship them (and
// any retries of them) before building another report.
func (e *Encoder) Encode(nowNS int64) (data []byte, seq uint64) {
	e.seq++
	e.b.Begin(e.src, e.scope, e.seq, e.acked, nowNS)
	e.rebasing = false
	e.reg.Visit(e)
	return e.b.Finish(), e.seq
}

// LastSeq returns the sequence of the last built report.
func (e *Encoder) LastSeq() uint64 { return e.seq }

// Ack records that the collector applied report seq. Deltas in the next
// report are computed against it. Acks for anything but the last built
// report are ignored (the shipper is synchronous: one report in flight).
func (e *Encoder) Ack(seq uint64) {
	if seq != e.seq || seq == e.acked {
		return
	}
	e.acked = seq
	e.cbase, e.cpend = e.cpend, e.cbase
	e.gbase, e.gpend = e.gpend, e.gbase
	e.hbase, e.hpend = e.hpend, e.hbase
}

// Rebase re-anchors the encoder after a collector resync (409): the base
// becomes the registry's current values and the next report goes out
// self-contained (wire base 0). Activity between the last acked report and
// the rebase is dropped — a resync never double-counts on the collector;
// it under-counts by at most the unacked window.
func (e *Encoder) Rebase() {
	e.acked = 0
	e.rebasing = true
	e.reg.Visit(e)
	e.rebasing = false
}

// VisitCounter implements metrics.Visitor.
func (e *Encoder) VisitCounter(name string, c *metrics.Counter) {
	v := c.Value()
	if e.rebasing {
		e.cbase[name] = v
		return
	}
	e.cpend[name] = v
	if d := v - e.cbase[name]; d > 0 {
		e.b.Counter(name, uint64(d))
	}
}

// VisitGauge implements metrics.Visitor.
func (e *Encoder) VisitGauge(name string, g *metrics.Gauge) {
	v := g.Value()
	if e.rebasing {
		e.gbase[name] = v
		return
	}
	e.gpend[name] = v
	if d := v - e.gbase[name]; d != 0 {
		e.b.Gauge(name, d)
	}
}

// VisitHistogram implements metrics.Visitor: new observations since base
// as sparse bucket-count deltas (bucket counts only grow, so the base's
// support is a subset of the current and one merge-join pass yields the
// difference), the sum as a delta, min/max as cumulative values.
func (e *Encoder) VisitHistogram(name string, h *metrics.LockedHistogram) {
	if e.rebasing {
		bh := e.hbase[name]
		if bh == nil {
			e.hbase[name] = h.SnapshotInto(nil)
		} else {
			h.SnapshotInto(bh)
		}
		return
	}
	e.scratch = h.SnapshotInto(e.scratch)
	cur := e.scratch
	pend := e.hpend[name]
	if pend == nil {
		pend = metrics.NewLatencyHistogram()
		e.hpend[name] = pend
	}
	cur.CopyInto(pend)

	bh := e.hbase[name]
	var baseCount uint64
	var baseSum int64
	if bh != nil {
		baseCount = bh.Count()
		baseSum = int64(bh.Sum())
	}
	if cur.Count() == baseCount {
		return // no new observations; absent = zero delta
	}
	e.b.BeginHist(name, int64(cur.Sum())-baseSum, int64(cur.Min()), int64(cur.Max()))
	it := cur.Buckets()
	var bit metrics.BucketIter
	if bh != nil {
		bit = bh.Buckets()
	}
	bb, bok := bit.Next()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		var bc uint64
		if bok && bb.Index == b.Index {
			bc = bb.Count
			bb, bok = bit.Next()
		}
		if b.Count > bc {
			e.b.Bucket(b.Index, b.Count-bc)
		}
	}
	e.b.EndHist()
}
