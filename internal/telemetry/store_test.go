package telemetry

import (
	"testing"
	"time"
)

func TestStoreAppendAndSeries(t *testing.T) {
	s := NewStore(4, 0)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		s.Append("k", t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	pts := s.Series("k")
	if len(pts) != 3 {
		t.Fatalf("len=%d", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i) {
			t.Fatalf("pts[%d]=%v", i, p)
		}
	}
	if p, ok := s.Latest("k"); !ok || p.Value != 2 {
		t.Fatalf("Latest=%v ok=%v", p, ok)
	}
	if s.Series("missing") != nil {
		t.Fatal("unknown key returned non-nil")
	}
	if _, ok := s.Latest("missing"); ok {
		t.Fatal("Latest on unknown key")
	}
}

func TestStoreRingWraps(t *testing.T) {
	s := NewStore(4, 0)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		s.Append("k", t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	pts := s.Series("k")
	if len(pts) != 4 {
		t.Fatalf("len=%d want 4", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(6+i) {
			t.Fatalf("pts[%d]=%v want %d (oldest-first after wrap)", i, p, 6+i)
		}
	}
	if p, _ := s.Latest("k"); p.Value != 9 {
		t.Fatalf("Latest=%v", p)
	}
}

// TestStoreBoundedBacking is the regression for the PA retention bug: after
// 10x the capacity in appends, the backing array must still be exactly the
// configured capacity — no stranded array head, no append overshoot.
func TestStoreBoundedBacking(t *testing.T) {
	const rawCap = 64
	s := NewStore(rawCap, 8)
	t0 := time.Unix(0, 0)
	for i := 0; i < 10*rawCap; i++ {
		s.Append("k", t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	s.mu.Lock()
	sr := s.m["k"]
	if cap(sr.pts) > rawCap {
		t.Errorf("raw backing array cap=%d exceeds configured %d", cap(sr.pts), rawCap)
	}
	if cap(sr.hpts) > 8 {
		t.Errorf("hourly backing array cap=%d exceeds configured 8", cap(sr.hpts))
	}
	s.mu.Unlock()
	if n := s.Len("k"); n != rawCap {
		t.Fatalf("Len=%d want %d", n, rawCap)
	}
}

func TestStoreHourlyTier(t *testing.T) {
	s := NewStore(0, 0)
	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Hour 0: values 1..12 (mean 6.5). Hour 1: values 100 (x12, mean 100).
	for i := 0; i < 12; i++ {
		s.Append("k", t0.Add(time.Duration(i)*5*time.Minute), float64(i+1))
	}
	for i := 0; i < 12; i++ {
		s.Append("k", t0.Add(time.Hour).Add(time.Duration(i)*5*time.Minute), 100)
	}
	// Third hour's first sample flushes hour 1.
	s.Append("k", t0.Add(2*time.Hour), 0)
	h := s.Hourly("k")
	if len(h) != 2 {
		t.Fatalf("hourly len=%d want 2", len(h))
	}
	if h[0].Value != 6.5 || !h[0].At.Equal(t0) {
		t.Fatalf("hour 0: %+v", h[0])
	}
	if h[1].Value != 100 || !h[1].At.Equal(t0.Add(time.Hour)) {
		t.Fatalf("hour 1: %+v", h[1])
	}
}

func TestStoreKeysSorted(t *testing.T) {
	s := NewStore(4, 0)
	now := time.Unix(0, 0)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		s.Append(k, now, 1)
	}
	keys := s.Keys()
	want := []string{"alpha", "mid", "zeta"}
	if len(keys) != len(want) {
		t.Fatalf("keys=%v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys=%v want %v", keys, want)
		}
	}
	if NewStore(0, 0).Keys() != nil {
		t.Fatal("empty store Keys should be nil")
	}
}
