package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Point is one collected sample of a time series.
type Point struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// Store keeps named time series in fixed-capacity ring buffers with an
// hourly downsampling tier. It replaces the Perfcounter Aggregator's
// unbounded point slices: a series grows by appending until it reaches its
// raw capacity, then wraps in place — memory is bounded by construction
// and no trim ever strands an evicted backing-array head. Raw points age
// out after rawCap samples (≈28 days at the 5-minute cadence with the
// 8192 default); the hourly tier keeps per-hour averages for hourlyCap
// more hours of history at 1/12 the footprint.
//
// Points must be appended in non-decreasing time order per key (collectors
// sample on a clock, so this is the natural order).
type Store struct {
	mu        sync.Mutex
	rawCap    int
	hourlyCap int
	m         map[string]*series
	keys      []string // sorted, maintained at insert
}

type series struct {
	pts  []Point // ring: oldest at head once len == cap
	head int

	hpts  []Point // hourly tier ring
	hhead int
	hsum  float64
	hn    int
	hour  int64 // unix seconds of the hour being accumulated
}

// Default ring capacities: 8192 raw points (the PA's historical cap) and
// 720 hourly averages (30 days).
const (
	DefaultRawCap    = 8192
	DefaultHourlyCap = 720
)

// NewStore returns an empty store. Non-positive capacities take the
// defaults.
func NewStore(rawCap, hourlyCap int) *Store {
	if rawCap <= 0 {
		rawCap = DefaultRawCap
	}
	if hourlyCap <= 0 {
		hourlyCap = DefaultHourlyCap
	}
	return &Store{rawCap: rawCap, hourlyCap: hourlyCap, m: map[string]*series{}}
}

// Append records one sample for key.
func (s *Store) Append(key string, at time.Time, v float64) {
	s.mu.Lock()
	sr, ok := s.m[key]
	if !ok {
		sr = &series{}
		s.m[key] = sr
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys, "")
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
	}
	s.appendLocked(sr, Point{At: at, Value: v})
	s.mu.Unlock()
}

// appendLocked pushes p into the raw ring and feeds the hourly tier.
// Growth is doubled-and-clamped to rawCap so the backing array never
// exceeds the configured bound (plain append could overshoot it).
func (s *Store) appendLocked(sr *series, p Point) {
	if len(sr.pts) < s.rawCap {
		if len(sr.pts) == cap(sr.pts) {
			newCap := 2 * cap(sr.pts)
			if newCap == 0 {
				newCap = 16
			}
			if newCap > s.rawCap {
				newCap = s.rawCap
			}
			grown := make([]Point, len(sr.pts), newCap)
			copy(grown, sr.pts)
			sr.pts = grown
		}
		sr.pts = append(sr.pts, p)
	} else {
		sr.pts[sr.head] = p
		sr.head++
		if sr.head == len(sr.pts) {
			sr.head = 0
		}
	}

	// Hourly tier: accumulate within the hour, flush the average when the
	// sample crosses an hour boundary.
	hour := p.At.Unix() - p.At.Unix()%3600
	if sr.hn > 0 && hour != sr.hour {
		s.flushHourLocked(sr)
	}
	sr.hour = hour
	sr.hsum += p.Value
	sr.hn++
}

func (s *Store) flushHourLocked(sr *series) {
	p := Point{At: time.Unix(sr.hour, 0).UTC(), Value: sr.hsum / float64(sr.hn)}
	if len(sr.hpts) < s.hourlyCap {
		if len(sr.hpts) == cap(sr.hpts) {
			newCap := 2 * cap(sr.hpts)
			if newCap == 0 {
				newCap = 8
			}
			if newCap > s.hourlyCap {
				newCap = s.hourlyCap
			}
			grown := make([]Point, len(sr.hpts), newCap)
			copy(grown, sr.hpts)
			sr.hpts = grown
		}
		sr.hpts = append(sr.hpts, p)
	} else {
		sr.hpts[sr.hhead] = p
		sr.hhead++
		if sr.hhead == len(sr.hpts) {
			sr.hhead = 0
		}
	}
	sr.hsum, sr.hn = 0, 0
}

// Series returns a copy of key's raw samples, oldest first. Nil for an
// unknown key.
func (s *Store) Series(key string) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.m[key]
	if !ok || len(sr.pts) == 0 {
		return nil
	}
	out := make([]Point, 0, len(sr.pts))
	out = append(out, sr.pts[sr.head:]...)
	return append(out, sr.pts[:sr.head]...)
}

// Hourly returns a copy of key's hourly-average samples, oldest first.
// The hour still accumulating is not included.
func (s *Store) Hourly(key string) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.m[key]
	if !ok || len(sr.hpts) == 0 {
		return nil
	}
	out := make([]Point, 0, len(sr.hpts))
	out = append(out, sr.hpts[sr.hhead:]...)
	return append(out, sr.hpts[:sr.hhead]...)
}

// Latest returns the most recent raw sample for key.
func (s *Store) Latest(key string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.m[key]
	if !ok || len(sr.pts) == 0 {
		return Point{}, false
	}
	i := sr.head - 1
	if i < 0 {
		i = len(sr.pts) - 1
	}
	return sr.pts[i], true
}

// Keys returns all series keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.keys...)
}

// Len returns the number of raw samples currently held for key.
func (s *Store) Len(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.m[key]
	if !ok {
		return 0
	}
	return len(sr.pts)
}
