package telemetry

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pingmesh/internal/metrics"
)

// FuzzPMT1RoundTrip fuzzes the codec from both ends. The raw input is fed
// straight to the parser (must never panic, must never accept trailing
// garbage); then the same bytes are interpreted as a script that drives
// the builder, and the built report must parse back field-for-field.
func FuzzPMT1RoundTrip(f *testing.F) {
	var b ReportBuilder
	b.Begin("srv042", "d1.s2.p3", 9, 8, 1234)
	b.Counter("agent.probes_sent", 77)
	b.Gauge("agent.peers", -3)
	b.BeginHist("agent.probe_rtt", 500, 10, 300)
	b.Bucket(2, 4)
	b.Bucket(7, 1)
	b.EndHist()
	f.Add(append([]byte(nil), b.Finish()...))
	f.Add([]byte("PMT1"))
	f.Add([]byte{})
	f.Add([]byte("PMT1\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: arbitrary bytes must not panic the parser, and a
		// report the parser accepts must have been fully consumed.
		var p Parser
		if err := p.Reset(data); err == nil {
			for {
				if _, _, ok := p.NextCounter(); !ok {
					break
				}
			}
			for {
				if _, _, ok := p.NextGauge(); !ok {
					break
				}
			}
			hist := metrics.NewLatencyHistogram()
			for {
				_, hd, ok := p.NextHist()
				if !ok {
					break
				}
				hd.AddTo(hist) // folding validated runs must not panic
			}
		}

		// Direction 2: derive a structured report from the fuzz bytes,
		// build it, and require an exact parse-back.
		r := scriptReader{d: data}
		var bld ReportBuilder
		src := r.str(8)
		scope := r.str(16)
		seq, base := r.u64()%1000+1, r.u64()%1000
		now := int64(r.u64())
		bld.Begin(src, scope, seq, base, now)

		type kv struct {
			name string
			u    uint64
			s    int64
		}
		var counters, gauges []kv
		nc := int(r.u64() % 5)
		prev := ""
		for i := 0; i < nc; i++ {
			name := prev + r.str(6) // nondecreasing-ish, may collide
			if name == prev {
				continue
			}
			prev = name
			v := r.u64() % maxWireCount
			counters = append(counters, kv{name: name, u: v})
			bld.Counter(name, v)
		}
		ng := int(r.u64() % 5)
		prev = ""
		for i := 0; i < ng; i++ {
			name := prev + r.str(6)
			if name == prev {
				continue
			}
			prev = name
			v := int64(r.u64()) % (1 << 40)
			gauges = append(gauges, kv{name: name, s: v})
			bld.Gauge(name, v)
		}
		type hrec struct {
			name    string
			sum     int64
			min     int64
			max     int64
			buckets []metrics.Bucket
		}
		var hists []hrec
		nh := int(r.u64() % 3)
		prev = ""
		for i := 0; i < nh; i++ {
			name := prev + r.str(6)
			if name == prev {
				continue
			}
			prev = name
			h := hrec{name: name, sum: int64(r.u64() % (1 << 40))}
			h.min = int64(r.u64() % 1000)
			h.max = h.min + int64(r.u64()%100000)
			idx := int(r.u64() % 8)
			nb := int(r.u64()%4) + 1
			for j := 0; j < nb && idx < metrics.LatencyBucketCount(); j++ {
				cnt := r.u64()%100 + 1
				h.buckets = append(h.buckets, metrics.Bucket{Index: idx, Count: cnt})
				idx += int(r.u64()%16) + 1
			}
			hists = append(hists, h)
			bld.BeginHist(h.name, h.sum, h.min, h.max)
			for _, bk := range h.buckets {
				bld.Bucket(bk.Index, bk.Count)
			}
			bld.EndHist()
		}
		built := bld.Finish()

		if err := p.Reset(built); err != nil {
			t.Fatalf("built report rejected: %v", err)
		}
		if string(p.Src()) != src || string(p.Scope()) != scope ||
			p.Seq() != seq || p.Base() != base || p.NowNS() != now {
			t.Fatalf("header mismatch: %q %q %d %d %d", p.Src(), p.Scope(), p.Seq(), p.Base(), p.NowNS())
		}
		for _, want := range counters {
			name, delta, ok := p.NextCounter()
			if !ok || string(name) != want.name || delta != want.u {
				t.Fatalf("counter: got %q %d %v want %q %d", name, delta, ok, want.name, want.u)
			}
		}
		if _, _, ok := p.NextCounter(); ok {
			t.Fatal("extra counter")
		}
		for _, want := range gauges {
			name, delta, ok := p.NextGauge()
			if !ok || string(name) != want.name || delta != want.s {
				t.Fatalf("gauge: got %q %d %v want %q %d", name, delta, ok, want.name, want.s)
			}
		}
		if _, _, ok := p.NextGauge(); ok {
			t.Fatal("extra gauge")
		}
		for _, want := range hists {
			name, hd, ok := p.NextHist()
			if !ok || string(name) != want.name {
				t.Fatalf("hist: got %q %v want %q", name, ok, want.name)
			}
			if hd.SumDelta != want.sum || hd.CumMin != want.min || hd.CumMax != want.max {
				t.Fatalf("hist tallies: got %d %d %d want %d %d %d",
					hd.SumDelta, hd.CumMin, hd.CumMax, want.sum, want.min, want.max)
			}
			it := hd.Buckets()
			for _, wb := range want.buckets {
				gb, gok := it.Next()
				if !gok || gb != wb {
					t.Fatalf("hist bucket: got %v %v want %v", gb, gok, wb)
				}
			}
			if _, gok := it.Next(); gok {
				t.Fatal("extra bucket")
			}
		}
		if _, _, ok := p.NextHist(); ok {
			t.Fatal("extra hist")
		}
		if err := p.Err(); err != nil {
			t.Fatalf("Err after full drain: %v", err)
		}
	})
}

// scriptReader turns fuzz bytes into a deterministic value stream.
type scriptReader struct {
	d   []byte
	off int
}

func (r *scriptReader) u64() uint64 {
	if r.off >= len(r.d) {
		r.off++
		return uint64(r.off) * 0x9E3779B97F4A7C15 >> 16
	}
	var buf [8]byte
	n := copy(buf[:], r.d[r.off:])
	r.off += n
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *scriptReader) str(maxLen int) string {
	n := int(r.u64()%uint64(maxLen)) + 1
	var sb bytes.Buffer
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + r.u64()%26))
	}
	return sb.String()
}
