package telemetry

import (
	"testing"
	"time"
)

// BenchmarkEncode measures the steady-state PMT1 encode cost for the
// realistic agent registry: counters bumped, a fresh RTT observed, one
// report built. Must report 0 B/op.
func BenchmarkEncode(b *testing.B) {
	reg, enc, col := telemetryFixture()
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		data, seq := enc.Encode(now.UnixNano())
		if _, err := col.Ingest(data, now); err != nil {
			b.Fatal(err)
		}
		enc.Ack(seq)
		now = now.Add(5 * time.Minute)
	}
	h := reg.Histogram("agent.probe_rtt")
	cnt := reg.Counter("agent.probes_sent")
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Add(3)
		h.Observe(2 * time.Millisecond)
		data, seq := enc.Encode(now.UnixNano())
		bytes += int64(len(data))
		enc.Ack(seq)
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkIngest measures the steady-state collector fold: validate,
// dedup check, counter/gauge/histogram fold into all four rollup levels.
// Must report 0 B/op.
func BenchmarkIngest(b *testing.B) {
	reg, enc, col := telemetryFixture()
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		data, seq := enc.Encode(now.UnixNano())
		if _, err := col.Ingest(data, now); err != nil {
			b.Fatal(err)
		}
		enc.Ack(seq)
		now = now.Add(5 * time.Minute)
	}
	h := reg.Histogram("agent.probe_rtt")
	cnt := reg.Counter("agent.probes_sent")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Add(3)
		h.Observe(2 * time.Millisecond)
		data, _ := enc.Encode(now.UnixNano())
		res, err := col.Ingest(data, now)
		if err != nil {
			b.Fatal(err)
		}
		enc.Ack(res.Ack)
	}
}
