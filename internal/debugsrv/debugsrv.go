// Package debugsrv is the operator side door every Pingmesh binary
// exposes behind -debug-addr: pprof profiles, the in-process trace dump,
// the pipeline freshness verdict, and the Prometheus metric exposition,
// all on one loopback-friendly HTTP listener that is separate from the
// service's data-plane handler. It exists because Pingmesh watches the
// network for everyone else — this server is how operators watch
// Pingmesh itself (§3.5).
package debugsrv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"pingmesh/internal/metrics"
	"pingmesh/internal/telemetry"
	"pingmesh/internal/trace"
)

// SeriesSource is the slice of a time-series store the /telemetry dump
// reads — satisfied by *telemetry.Store (and so by autopilot.PA.Store()
// and Collector.Store()), letting every binary serve its own recent
// series without a fleet collector.
type SeriesSource interface {
	Keys() []string
	Series(key string) []telemetry.Point
	Hourly(key string) []telemetry.Point
	Latest(key string) (telemetry.Point, bool)
}

// Config selects what the debug server exposes. All fields are optional:
// a zero Config still serves pprof and the index.
type Config struct {
	// Tracer backs /debug/trace and /health. Nil disables both with an
	// explanatory JSON body rather than a blank 404.
	Tracer *trace.Tracer
	// Budget is the freshness budget /health checks marks against. Zero
	// means trace.DefaultBudget().
	Budget trace.Budget
	// Metrics backs /metrics. Nil disables the endpoint.
	Metrics *metrics.Exposition
	// Series backs /telemetry: the binary's own recent time series. Nil
	// disables the endpoint.
	Series SeriesSource
}

// Handler returns the debug mux:
//
//	GET /              endpoint index (JSON)
//	GET /debug/pprof/  net/http/pprof profiles
//	GET /debug/trace   tracer span dump; ?trace=<hex id> for one trace
//	GET /health        freshness verdict: 200 ok/waiting, 503 degraded
//	GET /metrics       Prometheus text exposition
//	GET /telemetry     series keys; ?key=<k> for points, &tier=hourly
func Handler(cfg Config) http.Handler {
	if cfg.Budget == (trace.Budget{}) {
		cfg.Budget = trace.DefaultBudget()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) { serveTrace(cfg, w, r) })
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) { serveHealth(cfg, w, r) })
	if cfg.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Metrics.WriteTo(w)
		})
	}
	if cfg.Series != nil {
		mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) { serveTelemetry(cfg, w, r) })
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		endpoints := []string{"/debug/pprof/", "/debug/trace", "/health"}
		if cfg.Metrics != nil {
			endpoints = append(endpoints, "/metrics")
		}
		if cfg.Series != nil {
			endpoints = append(endpoints, "/telemetry")
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"service":   "pingmesh-debug",
			"endpoints": endpoints,
			"tracing":   cfg.Tracer != nil,
		})
	})
	return mux
}

func serveTrace(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Tracer == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing disabled"})
		return
	}
	if idHex := r.URL.Query().Get("trace"); idHex != "" {
		id, err := strconv.ParseUint(idHex, 16, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad trace id (want hex)"})
			return
		}
		writeJSON(w, http.StatusOK, cfg.Tracer.TraceSpans(trace.TraceID(id)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	cfg.Tracer.WriteJSON(w)
}

func serveHealth(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Tracer == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "note": "tracing disabled"})
		return
	}
	h := cfg.Tracer.Freshness().Check(cfg.Budget)
	code := http.StatusOK
	if h.Status == "degraded" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// serveTelemetry dumps the binary's own series: a bare GET lists keys,
// ?key= returns that key's raw points, &tier=hourly its downsampled tier.
func serveTelemetry(cfg Config, w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeJSON(w, http.StatusOK, map[string]any{"keys": cfg.Series.Keys()})
		return
	}
	var pts []telemetry.Point
	if r.URL.Query().Get("tier") == "hourly" {
		pts = cfg.Series.Hourly(key)
	} else {
		pts = cfg.Series.Series(key)
	}
	if pts == nil {
		if _, ok := cfg.Series.Latest(key); !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown key"})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "points": pts})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a running debug listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr ("" is rejected by net.Listen;
// callers gate on the flag being set). It returns once the listener is
// bound; requests are served on a background goroutine.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(cfg)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
