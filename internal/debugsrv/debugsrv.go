// Package debugsrv is the operator side door every Pingmesh binary
// exposes behind -debug-addr: pprof profiles, the in-process trace dump,
// the pipeline freshness verdict, and the Prometheus metric exposition,
// all on one loopback-friendly HTTP listener that is separate from the
// service's data-plane handler. It exists because Pingmesh watches the
// network for everyone else — this server is how operators watch
// Pingmesh itself (§3.5).
package debugsrv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"pingmesh/internal/metrics"
	"pingmesh/internal/trace"
)

// Config selects what the debug server exposes. All fields are optional:
// a zero Config still serves pprof and the index.
type Config struct {
	// Tracer backs /debug/trace and /health. Nil disables both with an
	// explanatory JSON body rather than a blank 404.
	Tracer *trace.Tracer
	// Budget is the freshness budget /health checks marks against. Zero
	// means trace.DefaultBudget().
	Budget trace.Budget
	// Metrics backs /metrics. Nil disables the endpoint.
	Metrics *metrics.Exposition
}

// Handler returns the debug mux:
//
//	GET /              endpoint index (JSON)
//	GET /debug/pprof/  net/http/pprof profiles
//	GET /debug/trace   tracer span dump; ?trace=<hex id> for one trace
//	GET /health        freshness verdict: 200 ok/waiting, 503 degraded
//	GET /metrics       Prometheus text exposition
func Handler(cfg Config) http.Handler {
	if cfg.Budget == (trace.Budget{}) {
		cfg.Budget = trace.DefaultBudget()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) { serveTrace(cfg, w, r) })
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) { serveHealth(cfg, w, r) })
	if cfg.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Metrics.WriteTo(w)
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		endpoints := []string{"/debug/pprof/", "/debug/trace", "/health"}
		if cfg.Metrics != nil {
			endpoints = append(endpoints, "/metrics")
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"service":   "pingmesh-debug",
			"endpoints": endpoints,
			"tracing":   cfg.Tracer != nil,
		})
	})
	return mux
}

func serveTrace(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Tracer == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing disabled"})
		return
	}
	if idHex := r.URL.Query().Get("trace"); idHex != "" {
		id, err := strconv.ParseUint(idHex, 16, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad trace id (want hex)"})
			return
		}
		writeJSON(w, http.StatusOK, cfg.Tracer.TraceSpans(trace.TraceID(id)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	cfg.Tracer.WriteJSON(w)
}

func serveHealth(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Tracer == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "note": "tracing disabled"})
		return
	}
	h := cfg.Tracer.Freshness().Check(cfg.Budget)
	code := http.StatusOK
	if h.Status == "degraded" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a running debug listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr ("" is rejected by net.Listen;
// callers gate on the flag being set). It returns once the listener is
// bound; requests are served on a background goroutine.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(cfg)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
