package debugsrv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/simclock"
	"pingmesh/internal/telemetry"
	"pingmesh/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return res, body
}

func TestIndexListsEndpoints(t *testing.T) {
	exp := metrics.NewExposition()
	h := Handler(Config{Tracer: trace.New(nil), Metrics: exp})
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var idx struct {
		Endpoints []string `json:"endpoints"`
		Tracing   bool     `json:"tracing"`
	}
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !idx.Tracing {
		t.Error("tracing = false, want true")
	}
	for _, want := range []string{"/debug/pprof/", "/debug/trace", "/health", "/metrics"} {
		found := false
		for _, e := range idx.Endpoints {
			if e == want {
				found = true
			}
		}
		if !found {
			t.Errorf("index missing endpoint %s", want)
		}
	}
	if res, _ := get(t, h, "/nope"); res.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", res.StatusCode)
	}
}

func TestPprofIndex(t *testing.T) {
	h := Handler(Config{})
	res, body := get(t, h, "/debug/pprof/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list goroutine profile")
	}
}

func TestTraceDisabled(t *testing.T) {
	h := Handler(Config{})
	res, body := get(t, h, "/debug/trace")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", res.StatusCode)
	}
	if !strings.Contains(string(body), "tracing disabled") {
		t.Errorf("body = %s", body)
	}
}

func TestTraceDumpAndSingleTrace(t *testing.T) {
	clk := simclock.NewSim(time.Unix(1000, 0))
	tr := trace.New(clk)
	tr.SetSampleEvery(1)
	tid := tr.SampleProbe()
	if tid == 0 {
		t.Fatal("SampleProbe returned 0 with every=1")
	}
	start := clk.Now()
	clk.Advance(3 * time.Millisecond)
	tr.Ring("agent").Span(tid, trace.StageProbe, "peer0", start, clk.Now(), true)

	h := Handler(Config{Tracer: tr})
	res, body := get(t, h, "/debug/trace")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("dump status = %d", res.StatusCode)
	}
	var dump trace.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("bad dump JSON: %v", err)
	}
	if len(dump.Rings) != 1 || dump.Rings[0].Component != "agent" {
		t.Fatalf("dump rings = %+v", dump.Rings)
	}

	res, body = get(t, h, "/debug/trace?trace="+trace.FormatTraceID(tid))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("single-trace status = %d", res.StatusCode)
	}
	var spans []trace.SpanDump
	if err := json.Unmarshal(body, &spans); err != nil {
		t.Fatalf("bad spans JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Stage != "probe" || spans[0].Name != "peer0" {
		t.Fatalf("spans = %+v", spans)
	}

	if res, _ := get(t, h, "/debug/trace?trace=zzz"); res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", res.StatusCode)
	}
}

func TestHealthTransitions(t *testing.T) {
	clk := simclock.NewSim(time.Unix(1000, 0))
	tr := trace.New(clk)
	h := Handler(Config{Tracer: tr})

	res, body := get(t, h, "/health")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("waiting status = %d", res.StatusCode)
	}
	var hh trace.Health
	if err := json.Unmarshal(body, &hh); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if hh.Status != "waiting" {
		t.Errorf("status = %q, want waiting", hh.Status)
	}

	tr.Freshness().Mark(trace.StageUpload)
	if res, _ := get(t, h, "/health"); res.StatusCode != http.StatusOK {
		t.Errorf("fresh status = %d, want 200", res.StatusCode)
	}

	clk.Advance(6 * time.Minute) // past the 5m agent-upload budget
	res, body = get(t, h, "/health")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale status = %d, want 503 (body %s)", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &hh); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if hh.Status != "degraded" {
		t.Errorf("status = %q, want degraded", hh.Status)
	}
}

func TestHealthNoTracer(t *testing.T) {
	res, body := get(t, Handler(Config{}), "/health")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if !strings.Contains(string(body), "tracing disabled") {
		t.Errorf("body = %s", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("agent.probes_total").Add(7)
	exp := metrics.NewExposition()
	exp.Add("", reg)
	h := Handler(Config{Metrics: exp})
	res, body := get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if !strings.Contains(string(body), "pingmesh_agent_probes_total 7") {
		t.Errorf("exposition missing counter:\n%s", body)
	}

	res, _ = get(t, Handler(Config{}), "/metrics")
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("no-metrics status = %d, want 404", res.StatusCode)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Config{Tracer: trace.New(nil)})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	res, err := http.Get("http://" + s.Addr() + "/health")
	if err != nil {
		t.Fatalf("GET /health: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTelemetryEndpoint(t *testing.T) {
	st := telemetry.NewStore(8, 4)
	at := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		st.Append("agent/counter/probes", at.Add(time.Duration(i)*5*time.Minute), float64(i))
	}
	h := Handler(Config{Series: st})

	res, body := get(t, h, "/telemetry")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("keys status = %d", res.StatusCode)
	}
	var keys struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal(body, &keys); err != nil || len(keys.Keys) != 1 {
		t.Fatalf("keys = %v err=%v", keys, err)
	}

	res, body = get(t, h, "/telemetry?key=agent/counter/probes")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("series status = %d", res.StatusCode)
	}
	var series struct {
		Points []telemetry.Point `json:"points"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(series.Points) != 8 {
		t.Fatalf("%d raw points, want ring cap 8", len(series.Points))
	}
	if series.Points[7].Value != 29 {
		t.Fatalf("newest point = %v", series.Points[7])
	}

	res, body = get(t, h, "/telemetry?key=agent/counter/probes&tier=hourly")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("hourly status = %d", res.StatusCode)
	}
	if err := json.Unmarshal(body, &series); err != nil || len(series.Points) == 0 {
		t.Fatalf("hourly points = %d err=%v", len(series.Points), err)
	}

	if res, _ := get(t, h, "/telemetry?key=nope"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key status = %d", res.StatusCode)
	}

	// Without a Series source the endpoint is absent.
	if res, _ := get(t, Handler(Config{}), "/telemetry"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled endpoint status = %d", res.StatusCode)
	}
}
