package diagnosis

import (
	"math/rand/v2"

	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

// TraceProber issues TTL-limited trace probes (§5.2). netsim.Network
// implements it; a real deployment would wrap a TCP traceroute prober.
type TraceProber interface {
	TraceProbe(spec netsim.ProbeSpec, ttl int, rng *rand.Rand) netsim.TraceResult
}

// SweepTraceLoss walks TTL 1..hops, sending probesPerHop trace probes per
// TTL, and calls visit with each TTL's observed round-trip loss fraction.
// visit returning false stops the sweep early — the silent-drop localizer
// stops at the first blamed hop, and stopping inside the sweep keeps its
// rng draw sequence identical to the pre-refactor loop.
func SweepTraceLoss(tr TraceProber, spec netsim.ProbeSpec, hops, probesPerHop int, rng *rand.Rand, visit func(ttl int, loss float64) bool) {
	for ttl := 1; ttl <= hops; ttl++ {
		lost := 0
		for i := 0; i < probesPerHop; i++ {
			if !tr.TraceProbe(spec, ttl, rng).OK {
				lost++
			}
		}
		if !visit(ttl, float64(lost)/float64(probesPerHop)) {
			return
		}
	}
}

// EstimateHopLoss converts a full TTL sweep into per-hop per-traversal
// loss estimates (est[k-1] is hop k's estimate).
//
// The naive estimator — successive differences of the round-trip loss
// series — is biased by return-path drops: a TTL-k answer crosses hops
// 1..k-1 twice (probe out, answer back) but the answering hop only once,
// so a lossy hop j adds its loss to every later TTL a second time and the
// difference re-attributes ~p_j to hop j+1. Survival ratios cancel the
// return crossing exactly: with R(k) the TTL-k answer rate and Q(k) the
// one-way survival through hops 1..k,
//
//	R(k) = (1-h)² · Q(k-1) · Q(k)
//	R(k)/R(k-1) = (1-p_k)(1-p_{k-1})
//	⇒ 1 - p̂_k = R(k) / (R(k-1) · (1 - p̂_{k-1}))
//
// which is exact for any number of lossy hops on the path — the property
// multi-fault vote ranking relies on. Hop 1 cannot be separated from the
// source host's own drop term, so est[0] absorbs it (it is ~1e-5 under
// the paper's profiles). Estimates are clamped to [0, 1]; once a TTL gets
// no answers at all the remaining hops are unobservable and report 0.
func EstimateHopLoss(tr TraceProber, spec netsim.ProbeSpec, hops, probesPerHop int, rng *rand.Rand) []float64 {
	est := make([]float64, hops)
	prevRate := 1.0 // R(k-1); R(0) ≡ 1 folds the host term into hop 1
	prevEst := 0.0  // p̂_{k-1}
	SweepTraceLoss(tr, spec, hops, probesPerHop, rng, func(ttl int, loss float64) bool {
		rate := 1 - loss
		if rate <= 0 {
			// Nothing answered: everything from here on is dark. Attribute
			// total loss to this hop and stop — downstream hops stay 0.
			est[ttl-1] = 1
			return false
		}
		p := 1 - rate/(prevRate*(1-prevEst))
		if p < 0 {
			p = 0 // sampling noise: a TTL answering better than its parent
		}
		if p > 1 {
			p = 1
		}
		est[ttl-1] = p
		prevRate, prevEst = rate, p
		return true
	})
	return est
}

// TracePath recovers a five-tuple's hop sequence by TTL sweep: each TTL is
// probed until a hop answers (up to attempts tries), mirroring how a real
// deployment reconstructs paths without a fabric model. The sweep stops at
// the first TTL where the destination host answers or nothing answers at
// all (a black-holed tuple yields the hops before the hole).
func TracePath(tr TraceProber, spec netsim.ProbeSpec, maxHops, attempts int, rng *rand.Rand) []topology.SwitchID {
	if attempts <= 0 {
		attempts = 3
	}
	var hops []topology.SwitchID
	for ttl := 1; ttl <= maxHops; ttl++ {
		answered := false
		for i := 0; i < attempts; i++ {
			res := tr.TraceProbe(spec, ttl, rng)
			if !res.OK {
				continue
			}
			if res.Hop < 0 {
				return hops // destination host answered: path complete
			}
			hops = append(hops, res.Hop)
			answered = true
			break
		}
		if !answered {
			return hops
		}
	}
	return hops
}
