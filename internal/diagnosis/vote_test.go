package diagnosis

import (
	"testing"

	"pingmesh/internal/topology"
)

func path(ids ...topology.SwitchID) []topology.SwitchID { return ids }

func TestVoteSplitAndNormalize(t *testing.T) {
	vt := NewVoteTable(10)
	// One failure over a 4-hop path: each hop gets 1/4 vote, 1 traversal.
	vt.ObservePath(path(1, 2, 3, 4), true)
	// Three good probes over hops 1,2 only.
	for i := 0; i < 3; i++ {
		vt.ObservePath(path(1, 2), false)
	}
	if got := vt.Votes(3); got != 0.25 {
		t.Fatalf("hop 3 votes = %v, want 0.25", got)
	}
	if got := vt.Score(3); got != 0.25 {
		t.Fatalf("hop 3 score = %v, want 0.25 (one traversal)", got)
	}
	// Hop 1 carried 4 traversals: same vote mass, quarter the score.
	if got := vt.Score(1); got != 0.25/4 {
		t.Fatalf("hop 1 score = %v, want %v", got, 0.25/4)
	}
	if vt.Observed() != 4 || vt.Failures() != 1 {
		t.Fatalf("observed/failures = %d/%d, want 4/1", vt.Observed(), vt.Failures())
	}
}

func TestVoteLinkTallies(t *testing.T) {
	vt := NewVoteTable(10)
	vt.ObservePath(path(1, 2, 3), true)
	vt.ObservePath(path(1, 2, 3), false)
	links := vt.AppendRankLinks(nil)
	if len(links) != 2 {
		t.Fatalf("got %d links, want 2", len(links))
	}
	for _, l := range links {
		if l.Votes != 0.5 || l.Coverage != 2 {
			t.Fatalf("link %v: votes=%v coverage=%v, want 0.5/2", l.Link, l.Votes, l.Coverage)
		}
	}
}

func TestZeroFailuresEmptyRanking(t *testing.T) {
	vt := NewVoteTable(8)
	for i := 0; i < 100; i++ {
		vt.ObservePath(path(1, 2, 3), false)
	}
	if got := vt.AppendRank(nil); len(got) != 0 {
		t.Fatalf("AppendRank with zero failures = %v, want empty", got)
	}
	if got := vt.AppendRankGreedy(nil); len(got) != 0 {
		t.Fatalf("AppendRankGreedy with zero failures = %v, want empty", got)
	}
}

// TestGreedyExplainAway is the multi-fault episode: a loud fault (every
// probe through switch 0 fails) must not bury a quiet one (10% of probes
// through switch 5 fail) — after the loud fault's failures are explained
// away, the quiet fault must rank second.
func TestGreedyExplainAway(t *testing.T) {
	vt := NewVoteTable(10)
	for i := 0; i < 200; i++ {
		vt.ObservePath(path(0, 1, 2), true) // loud: blackholed ToR
	}
	for i := 0; i < 20; i++ {
		vt.ObservePath(path(3, 1, 5), true) // quiet: lossy switch 5
	}
	for i := 0; i < 180; i++ {
		vt.ObservePath(path(3, 1, 5), false)
	}
	// Heavy good traffic through the shared middle hop 1.
	for i := 0; i < 2000; i++ {
		vt.ObservePath(path(4, 1, 6), false)
	}
	ranked := vt.AppendRankGreedy(nil)
	if len(ranked) < 2 {
		t.Fatalf("got %d candidates, want >= 2: %v", len(ranked), ranked)
	}
	if ranked[0].Switch != 0 {
		t.Fatalf("top candidate = %d, want 0 (loud fault)", ranked[0].Switch)
	}
	// One-shot ranking would rank switch 2 (or 1) next — they share every
	// loud failure. Greedy explains those away.
	if ranked[1].Switch != 3 && ranked[1].Switch != 5 {
		t.Fatalf("second candidate = %d, want 3 or 5 (quiet fault's path)", ranked[1].Switch)
	}
	// The loud fault's co-path hops must hold no residual vote mass.
	for _, c := range ranked[1:] {
		if c.Switch == 1 || c.Switch == 2 {
			t.Fatalf("collateral hop %d still ranked with votes=%v", c.Switch, c.Votes)
		}
	}
}

func TestGreedyAddVotesTerminates(t *testing.T) {
	// AddVotes mass has no failure log behind it; greedy must fall back to
	// one-shot ordering rather than loop.
	vt := NewVoteTable(4)
	vt.AddVotes(2, 5, 10)
	vt.AddVotes(1, 3, 10)
	ranked := vt.AppendRankGreedy(nil)
	if len(ranked) != 2 || ranked[0].Switch != 2 || ranked[1].Switch != 1 {
		t.Fatalf("ranked = %v, want [2 1]", ranked)
	}
}

func TestObserveStagesCandidateAttribution(t *testing.T) {
	var ps PathSet
	ps.addStage(0)
	ps.addStage(1, 2, 3)
	ps.addStage(4)
	vt := NewVoteTable(8)
	vt.ObserveStages(&ps, true)
	// 5 candidate hops: vote share 1/5 each; stage credit 1/m.
	if got := vt.Votes(1); got != 0.2 {
		t.Fatalf("stage member votes = %v, want 0.2", got)
	}
	if got := vt.Score(0); got != 0.2 {
		t.Fatalf("singleton stage score = %v, want 0.2 (credit 1)", got)
	}
	if got := vt.Score(2); got < 0.6-1e-9 || got > 0.6+1e-9 {
		t.Fatalf("wide stage member score = %v, want 0.6 (credit 1/3)", got)
	}
}

func TestSortByScoreAndVotes(t *testing.T) {
	cands := []Candidate{
		{Switch: 3, Score: 0.5, Votes: 1},
		{Switch: 1, Score: 0.5, Votes: 9},
		{Switch: 2, Score: 0.9, Votes: 2},
	}
	SortByScore(cands)
	if cands[0].Switch != 2 || cands[1].Switch != 1 || cands[2].Switch != 3 {
		t.Fatalf("SortByScore order = %v", cands)
	}
	cands = []Candidate{
		{Switch: 3, Votes: 4, Score: 0.1},
		{Switch: 1, Votes: 4, Score: 0.7},
		{Switch: 2, Votes: 8, Score: 0.2},
	}
	SortByVotes(cands)
	if cands[0].Switch != 2 || cands[1].Switch != 1 || cands[2].Switch != 3 {
		t.Fatalf("SortByVotes order = %v", cands)
	}
}

func TestResetKeepsCapacityClearsLog(t *testing.T) {
	vt := NewVoteTable(4)
	vt.ObservePath(path(0, 1), true)
	vt.Reset()
	if vt.Observed() != 0 || vt.Failures() != 0 || vt.Votes(0) != 0 {
		t.Fatal("Reset left state behind")
	}
	if got := vt.AppendRankGreedy(nil); len(got) != 0 {
		t.Fatalf("post-Reset ranking = %v, want empty", got)
	}
}

// TestVoteIngestZeroAlloc guards the hot ingest path: once the link set
// and failure log are warm, ObservePath must not allocate.
func TestVoteIngestZeroAlloc(t *testing.T) {
	vt := NewVoteTable(16)
	hops := path(1, 2, 3, 4, 5, 6)
	// Warm up: allocate link tallies and grow the failure log capacity.
	for i := 0; i < 4096; i++ {
		vt.ObservePath(hops, i%8 == 0)
	}
	vt.Reset() // keeps capacity, empties tallies and log
	for i := 0; i < 512; i++ {
		vt.ObservePath(hops, i%8 == 0) // re-warm tallies post-reset
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		vt.ObservePath(hops, i%8 == 0)
		i++
	})
	if avg != 0 {
		t.Fatalf("ObservePath allocates %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkVoteIngest(b *testing.B) {
	vt := NewVoteTable(64)
	hops := path(1, 9, 17, 33, 41, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vt.ObservePath(hops, i%16 == 0)
	}
}

func BenchmarkRankGreedy(b *testing.B) {
	vt := NewVoteTable(64)
	for i := 0; i < 10000; i++ {
		vt.ObservePath(path(1, 9, 17, 33, 41, 2), i%16 == 0)
		vt.ObservePath(path(3, 10, 18, 34, 42, 4), i%64 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vt.AppendRankGreedy(nil)
	}
}
