package diagnosis

import (
	"math/rand/v2"
	"testing"

	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

// fakeProber mirrors the netsim trace loss model: a TTL-k answer crosses
// hops 1..k-1 twice (probe out, answer back) and the answering hop once,
// with additive per-traversal loss — the model under which the naive
// successive-difference estimator mis-attributes return-path loss.
type fakeProber struct {
	loss []float64 // per-hop per-traversal loss
	host float64   // source host loss, both directions
}

func (f *fakeProber) TraceProbe(spec netsim.ProbeSpec, ttl int, rng *rand.Rand) netsim.TraceResult {
	if ttl < 1 {
		return netsim.TraceResult{Hop: -1}
	}
	reach := ttl
	if reach > len(f.loss) {
		reach = len(f.loss)
	}
	p := 2 * f.host
	for i := 0; i < reach; i++ {
		if i == reach-1 && ttl <= len(f.loss) {
			p += f.loss[i]
		} else {
			p += 2 * f.loss[i]
		}
	}
	if p > 1 {
		p = 1
	}
	if rng.Float64() < p {
		return netsim.TraceResult{Hop: -1}
	}
	if ttl > len(f.loss) {
		return netsim.TraceResult{Hop: -1, OK: true}
	}
	return netsim.TraceResult{Hop: topology.SwitchID(ttl - 1), OK: true}
}

// TestEstimateHopLossReturnPathBias is the regression test for the
// return-path bias: hop 3 (index 2) of a 5-hop path loses 5% per
// traversal. The naive delta estimator attributes ~p to hop 4 as well
// (the TTL-4 answer crosses lossy hop 3 twice, TTL-3's only once plus
// once back — the deltas double-count). The survival-ratio estimator must
// put the loss on hop 3 and leave hop 4 near zero.
func TestEstimateHopLossReturnPathBias(t *testing.T) {
	const p = 0.05
	f := &fakeProber{loss: []float64{0, 0, p, 0, 0}, host: 1e-5}
	rng := rand.New(rand.NewPCG(7, 9))
	const probes = 60000
	est := EstimateHopLoss(f, netsim.ProbeSpec{}, len(f.loss), probes, rng)

	// Reconstruct the naive estimator from a fresh sweep for comparison.
	naive := make([]float64, len(f.loss))
	prev := 0.0
	rng2 := rand.New(rand.NewPCG(7, 9))
	SweepTraceLoss(f, netsim.ProbeSpec{}, len(f.loss), probes, rng2, func(ttl int, loss float64) bool {
		naive[ttl-1] = loss - prev
		prev = loss
		return true
	})

	if naive[3] < 0.03 {
		t.Fatalf("naive[3] = %.4f; expected the bias this test guards against (~%.2f)", naive[3], p)
	}
	if est[2] < p-0.015 || est[2] > p+0.015 {
		t.Fatalf("est[2] = %.4f, want ~%.2f", est[2], p)
	}
	if est[3] > 0.02 {
		t.Fatalf("est[3] = %.4f, want < 0.02 (return-path loss mis-attributed)", est[3])
	}
}

func TestEstimateHopLossTotalBlackout(t *testing.T) {
	// Hop 2 answers nothing at all: est[1] = 1, later hops unobservable (0).
	f := &fakeProber{loss: []float64{0, 1, 0}}
	rng := rand.New(rand.NewPCG(1, 1))
	est := EstimateHopLoss(f, netsim.ProbeSpec{}, 3, 200, rng)
	if est[0] > 0.05 {
		t.Fatalf("est[0] = %v, want ~0", est[0])
	}
	if est[1] != 1 {
		t.Fatalf("est[1] = %v, want 1", est[1])
	}
	if est[2] != 0 {
		t.Fatalf("est[2] = %v, want 0 (unobservable)", est[2])
	}
}

func TestSweepTraceLossEarlyStop(t *testing.T) {
	f := &fakeProber{loss: []float64{0, 0, 0, 0}}
	rng := rand.New(rand.NewPCG(2, 2))
	visited := 0
	SweepTraceLoss(f, netsim.ProbeSpec{}, 4, 10, rng, func(ttl int, loss float64) bool {
		visited = ttl
		return ttl < 2
	})
	if visited != 2 {
		t.Fatalf("sweep visited through TTL %d, want stop at 2", visited)
	}
}

func TestTracePathRecovery(t *testing.T) {
	f := &fakeProber{loss: []float64{0, 0, 0}}
	rng := rand.New(rand.NewPCG(3, 3))
	hops := TracePath(f, netsim.ProbeSpec{}, 8, 3, rng)
	if len(hops) != 3 || hops[0] != 0 || hops[1] != 1 || hops[2] != 2 {
		t.Fatalf("recovered path = %v, want [0 1 2]", hops)
	}
}

func TestTracePathStopsAtBlackout(t *testing.T) {
	f := &fakeProber{loss: []float64{0, 0, 1, 0}}
	rng := rand.New(rand.NewPCG(4, 4))
	hops := TracePath(f, netsim.ProbeSpec{}, 8, 3, rng)
	if len(hops) != 2 {
		t.Fatalf("recovered path = %v, want the 2 hops before the hole", hops)
	}
}

func BenchmarkDiagnoseSweep(b *testing.B) {
	f := &fakeProber{loss: []float64{0, 0, 0.05, 0, 0, 0}}
	rng := rand.New(rand.NewPCG(5, 5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateHopLoss(f, netsim.ProbeSpec{}, 6, 200, rng)
	}
}
