// Package diagnosis turns failed Pingmesh probes into a located cause.
//
// The voting core follows 007 ("Democratically Finding The Cause of Packet
// Drops", PAPERS.md): every failed probe casts one vote, split 1/h across
// the h candidate hops of its path; every probe — good or bad — credits
// the hops it traversed. A switch's score is votes per traversal, so a
// spine carrying 100× the traffic of a ToR needs 100× the implicating
// failures to rank equally, and two simultaneously lossy switches both
// surface because each accumulates vote mass from its own victim flows.
// Paths come from the netsim ECMP resolver when the deployment has one, or
// from the topology's candidate stage sets when only the fabric shape is
// known (real CSV uploads).
//
// The Engine layers an evidence chain on top (the collector → network
// model → assertions shape of kubeskoop's skoop): for one (src, dst) pair
// it runs an ordered assertion list — pair SLA, heatmap cell, per-hop vote
// score, traceroute pin, repair budget — emitting a Chain of steps with
// verdict + evidence rather than a bare color (§4.3 extended into "which
// hop?").
package diagnosis

import (
	"sort"

	"pingmesh/internal/topology"
)

// Candidate is one switch in a ranked root-cause hypothesis list.
type Candidate struct {
	Switch topology.SwitchID `json:"switch_id"`
	// Score is the normalized tally: votes per traversal.
	Score float64 `json:"score"`
	// Votes is the vote mass accumulated from failed probes.
	Votes float64 `json:"votes"`
	// Coverage is how many traversals (good + bad probes) credited the
	// switch; fractional under candidate-set attribution.
	Coverage float64 `json:"coverage"`
}

// Link is one directed fabric link, ordered as traversed (A forwards to B).
type Link struct {
	A topology.SwitchID `json:"a"`
	B topology.SwitchID `json:"b"`
}

// LinkCandidate is one link in a ranked hypothesis list.
type LinkCandidate struct {
	Link     Link    `json:"link"`
	Score    float64 `json:"score"`
	Votes    float64 `json:"votes"`
	Coverage float64 `json:"coverage"`
}

type linkTally struct {
	votes      float64
	traversals float64
}

// VoteTable accumulates 007-style root-cause votes, keyed by switch and by
// link. Not safe for concurrent use; Collector adds the locking.
//
// Failed probes' hop lists are additionally retained (up to maxFailLog
// entries) so ranking can explain failures away greedily: a single loud
// fault — a black-hole dropping whole pairs — otherwise spreads enough
// collateral vote mass over the innocent hops of its victims' paths to
// bury a second, quieter fault.
type VoteTable struct {
	votes      []float64 // vote mass per SwitchID
	traversals []float64 // traversal credit per SwitchID
	links      map[Link]*linkTally
	observed   uint64
	failures   uint64

	// failure log: flattened hop (or candidate-hop) lists of failed
	// probes, each entry having cast vote share 1/len on every hop.
	failHops []topology.SwitchID
	failEnds []int
}

// maxFailLog caps how many failures the explain-away log retains; beyond
// it, votes still tally but greedy ranking can no longer subtract the
// overflow (a window with >128k failures has bigger problems).
const maxFailLog = 1 << 17

// NewVoteTable sizes a table for a fleet of numSwitches switches.
func NewVoteTable(numSwitches int) *VoteTable {
	return &VoteTable{
		votes:      make([]float64, numSwitches),
		traversals: make([]float64, numSwitches),
		links:      make(map[Link]*linkTally),
	}
}

// Reset clears every tally while keeping the allocated storage.
func (vt *VoteTable) Reset() {
	for i := range vt.votes {
		vt.votes[i] = 0
		vt.traversals[i] = 0
	}
	for _, lt := range vt.links {
		lt.votes = 0
		lt.traversals = 0
	}
	vt.observed = 0
	vt.failures = 0
	vt.failHops = vt.failHops[:0]
	vt.failEnds = vt.failEnds[:0]
}

// logFailure retains one failed probe's hop list for explain-away ranking.
func (vt *VoteTable) logFailure(hops []topology.SwitchID) {
	if len(vt.failEnds) >= maxFailLog {
		return
	}
	vt.failHops = append(vt.failHops, hops...)
	vt.failEnds = append(vt.failEnds, len(vt.failHops))
}

// Observed returns how many probes have been ingested.
func (vt *VoteTable) Observed() uint64 { return vt.observed }

// Failures returns how many ingested probes failed (cast votes).
func (vt *VoteTable) Failures() uint64 { return vt.failures }

// Score returns a switch's current normalized tally.
func (vt *VoteTable) Score(sw topology.SwitchID) float64 {
	if int(sw) >= len(vt.votes) || vt.traversals[sw] <= 0 {
		return 0
	}
	return vt.votes[sw] / vt.traversals[sw]
}

// Votes returns a switch's accumulated vote mass.
func (vt *VoteTable) Votes(sw topology.SwitchID) float64 {
	if int(sw) >= len(vt.votes) {
		return 0
	}
	return vt.votes[sw]
}

// ObservePath ingests one probe whose exact hop sequence is known (netsim
// plans, or a recovered traceroute). A failed probe splits its vote 1/h
// across the h hops and 1/(h-1) across the h-1 links; every probe credits
// each hop and link with one traversal. Allocation-free once the link set
// has been seen.
func (vt *VoteTable) ObservePath(hops []topology.SwitchID, failed bool) {
	vt.observed++
	if len(hops) == 0 {
		return
	}
	if failed {
		vt.failures++
		vt.logFailure(hops)
		share := 1 / float64(len(hops))
		for _, sw := range hops {
			vt.votes[sw] += share
			vt.traversals[sw]++
		}
	} else {
		for _, sw := range hops {
			vt.traversals[sw]++
		}
	}
	if len(hops) < 2 {
		return
	}
	linkShare := 0.0
	if failed {
		linkShare = 1 / float64(len(hops)-1)
	}
	for i := 1; i < len(hops); i++ {
		vt.linkTally(Link{A: hops[i-1], B: hops[i]}).add(linkShare, 1)
	}
}

// ObserveStages ingests one probe whose exact ECMP choices are unknown: ps
// holds every candidate switch per routing stage. A failed probe splits
// its vote 1/h across all h candidate hops; traversal credit is the
// expectation under uniform ECMP — 1/m per member of an m-wide stage.
// Links are not tallied (stage adjacency is a cross product, not a path).
func (vt *VoteTable) ObserveStages(ps *PathSet, failed bool) {
	vt.observed++
	h := ps.Hops()
	if h == 0 {
		return
	}
	voteShare := 0.0
	if failed {
		vt.failures++
		vt.logFailure(ps.hops)
		voteShare = 1 / float64(h)
	}
	for s := 0; s < ps.Stages(); s++ {
		members := ps.Stage(s)
		credit := 1 / float64(len(members))
		for _, sw := range members {
			vt.votes[sw] += voteShare
			vt.traversals[sw] += credit
		}
	}
}

// AddVotes feeds a pre-aggregated tally: votes units of vote mass against
// coverage traversals. The detector refactors (blackhole victim counting)
// use this to express their bespoke symptom counts in the shared scorer.
func (vt *VoteTable) AddVotes(sw topology.SwitchID, votes, coverage float64) {
	vt.votes[sw] += votes
	vt.traversals[sw] += coverage
}

func (vt *VoteTable) linkTally(l Link) *linkTally {
	lt := vt.links[l]
	if lt == nil {
		lt = &linkTally{}
		vt.links[l] = lt
	}
	return lt
}

func (lt *linkTally) add(votes, traversals float64) {
	lt.votes += votes
	lt.traversals += traversals
}

// AppendRank appends every switch with vote mass to dst, ranked worst
// first (score desc, votes desc, switch asc), and returns dst. A window
// with no failures yields no candidates.
func (vt *VoteTable) AppendRank(dst []Candidate) []Candidate {
	for sw, v := range vt.votes {
		if v <= 0 {
			continue
		}
		c := Candidate{Switch: topology.SwitchID(sw), Votes: v, Coverage: vt.traversals[sw]}
		if c.Coverage > 0 {
			c.Score = c.Votes / c.Coverage
		}
		dst = append(dst, c)
	}
	sortRank(dst)
	return dst
}

func sortRank(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if cands[i].Votes != cands[j].Votes {
			return cands[i].Votes > cands[j].Votes
		}
		return cands[i].Switch < cands[j].Switch
	})
}

// AppendRankGreedy ranks by iterative explain-away: pick the worst switch
// by normalized score, subtract the full vote mass of every logged failure
// whose path (or candidate set) contains it, and repeat on the residual
// tallies. Under simultaneous faults this keeps a quiet fault visible: the
// louder fault's victims stop voting for the innocent hops they shared
// once the loud fault is chosen, so the quiet fault's own vote mass
// dominates the next round. Each candidate carries its residual tallies —
// the vote mass not explained by earlier picks. Failures past the log cap
// (or fed via AddVotes) cannot be explained away; when a round explains
// nothing, the remaining switches are appended in one-shot order.
func (vt *VoteTable) AppendRankGreedy(dst []Candidate) []Candidate {
	const eps = 1e-9
	votes := append([]float64(nil), vt.votes...)
	removed := make([]bool, len(vt.failEnds))
	for {
		best := -1
		var bestScore, bestVotes float64
		for sw, v := range votes {
			if v <= eps {
				continue
			}
			score := 0.0
			if vt.traversals[sw] > 0 {
				score = v / vt.traversals[sw]
			}
			if best < 0 || score > bestScore ||
				(score == bestScore && v > bestVotes) {
				best, bestScore, bestVotes = sw, score, v
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, Candidate{
			Switch: topology.SwitchID(best), Score: bestScore,
			Votes: bestVotes, Coverage: vt.traversals[best],
		})
		explained := 0
		start := 0
		for f, end := range vt.failEnds {
			hops := vt.failHops[start:end]
			start = end
			if removed[f] {
				continue
			}
			hit := false
			for _, sw := range hops {
				if int(sw) == best {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			share := 1 / float64(len(hops))
			for _, sw := range hops {
				votes[sw] -= share
			}
			removed[f] = true
			explained++
		}
		if explained == 0 {
			// Nothing left to explain (AddVotes mass or overflow): emit the
			// residual tail one-shot so the ranking still terminates.
			votes[best] = 0
			tail := len(dst)
			for sw, v := range votes {
				if v <= eps {
					continue
				}
				c := Candidate{Switch: topology.SwitchID(sw), Votes: v, Coverage: vt.traversals[sw]}
				if c.Coverage > 0 {
					c.Score = c.Votes / c.Coverage
				}
				dst = append(dst, c)
			}
			sortRank(dst[tail:])
			break
		}
	}
	return dst
}

// AppendRankLinks appends every link with vote mass to dst, ranked worst
// first with the same order as AppendRank.
func (vt *VoteTable) AppendRankLinks(dst []LinkCandidate) []LinkCandidate {
	for l, lt := range vt.links {
		if lt.votes <= 0 {
			continue
		}
		c := LinkCandidate{Link: l, Votes: lt.votes, Coverage: lt.traversals}
		if c.Coverage > 0 {
			c.Score = c.Votes / c.Coverage
		}
		dst = append(dst, c)
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].Score != dst[j].Score {
			return dst[i].Score > dst[j].Score
		}
		if dst[i].Votes != dst[j].Votes {
			return dst[i].Votes > dst[j].Votes
		}
		if dst[i].Link.A != dst[j].Link.A {
			return dst[i].Link.A < dst[j].Link.A
		}
		return dst[i].Link.B < dst[j].Link.B
	})
	return dst
}

// SortByScore orders candidates by score desc, then switch asc — the §5.1
// black-hole candidate order (score ties break on device identity only).
func SortByScore(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Switch < cands[j].Switch
	})
}

// SortByVotes orders candidates by votes desc, then score desc, then
// switch asc — the §5.2 silent-drop suspect order (implicating pairs
// first, loss estimate second).
func SortByVotes(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Votes != cands[j].Votes {
			return cands[i].Votes > cands[j].Votes
		}
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Switch < cands[j].Switch
	})
}
