package diagnosis

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

// TestPropertyInjectedFaultsRank injects k <= 3 switch faults into
// randomized Clos topologies, synthesizes probe traffic over the exact
// ECMP paths, and requires every injected fault to land in the ranking's
// top k+1. With zero faults the ranking must be empty.
func TestPropertyInjectedFaultsRank(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0xfa17, uint64(trial)))
			spec := topology.Spec{DCs: []topology.DCSpec{{
				Name:            "DC1",
				Podsets:         2 + int(rng.IntN(2)),
				PodsPerPodset:   2 + int(rng.IntN(3)),
				ServersPerPod:   2,
				LeavesPerPodset: 2 + int(rng.IntN(2)),
				Spines:          2 + int(rng.IntN(4)),
			}}}
			top, err := topology.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DefaultProfiles()[0]}})
			if err != nil {
				t.Fatal(err)
			}

			k := int(rng.IntN(4)) // 0..3 faults
			faulty := map[topology.SwitchID]float64{}
			switches := top.Switches()
			for len(faulty) < k {
				sw := switches[rng.IntN(len(switches))].ID
				if _, dup := faulty[sw]; dup {
					continue
				}
				faulty[sw] = 0.3 + 0.5*rng.Float64() // loud enough to matter
			}

			vt := NewVoteTable(top.NumSwitches())
			servers := top.Servers()
			var buf []topology.SwitchID
			for probe := 0; probe < 20000; probe++ {
				src := servers[rng.IntN(len(servers))].ID
				dst := servers[rng.IntN(len(servers))].ID
				if src == dst {
					continue
				}
				sport := uint16(32768 + rng.IntN(16384))
				hops, ok := net.AppendPath(buf[:0], src, dst, sport, 80)
				buf = hops
				if !ok {
					continue
				}
				failed := false
				for _, sw := range hops {
					if p, bad := faulty[sw]; bad && rng.Float64() < p {
						failed = true
						break
					}
				}
				vt.ObservePath(hops, failed)
			}

			ranked := vt.AppendRankGreedy(nil)
			if k == 0 {
				if len(ranked) != 0 {
					t.Fatalf("zero faults but ranking = %v", ranked)
				}
				return
			}
			limit := k + 1
			if len(ranked) < k {
				t.Fatalf("only %d candidates ranked for %d faults", len(ranked), k)
			}
			for sw := range faulty {
				found := false
				for i, c := range ranked {
					if i >= limit {
						break
					}
					if c.Switch == sw {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("fault %s (p=%.2f) not in top-%d of %v",
						top.Switch(sw).Name, faulty[sw], limit, ranked[:min(limit, len(ranked))])
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
