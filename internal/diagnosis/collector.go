package diagnosis

import (
	"sync"

	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// PathResolver recovers the exact hop sequence of a five-tuple.
// netsim.Network implements it; deployments without a fabric model leave
// it nil and the collector falls back to topology candidate stage sets.
type PathResolver interface {
	AppendPath(dst []topology.SwitchID, src, dstID topology.ServerID, sport, dport uint16) ([]topology.SwitchID, bool)
}

// CollectorConfig wires a Collector.
type CollectorConfig struct {
	Top *topology.Topology
	// Paths, when set, supplies exact per-five-tuple hop sequences
	// (including link tallies). Nil means candidate stage sets from the
	// topology alone.
	Paths PathResolver
	// Registry receives diagnosis.* counters; nil creates a private one.
	Registry *metrics.Registry
}

// Collector ingests probe records into a VoteTable. Safe for concurrent
// use; the ingest path is allocation-free once warm.
type Collector struct {
	top   *topology.Topology
	paths PathResolver
	reg   *metrics.Registry

	cObserved *metrics.Counter // probes ingested
	cVotes    *metrics.Counter // failed probes that cast votes
	cSkipped  *metrics.Counter // records with unknown endpoints
	cRanked   *metrics.Counter // ranking snapshots produced

	mu      sync.Mutex
	vt      *VoteTable
	pathBuf []topology.SwitchID
	ps      PathSet
}

// NewCollector builds a collector for a fleet.
func NewCollector(cfg CollectorConfig) *Collector {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Collector{
		top:       cfg.Top,
		paths:     cfg.Paths,
		reg:       reg,
		cObserved: reg.Counter("diagnosis.probes_observed"),
		cVotes:    reg.Counter("diagnosis.votes_cast"),
		cSkipped:  reg.Counter("diagnosis.records_skipped"),
		cRanked:   reg.Counter("diagnosis.episodes_ranked"),
		vt:        NewVoteTable(cfg.Top.NumSwitches()),
		pathBuf:   make([]topology.SwitchID, 0, 8),
	}
	return c
}

// Metrics returns the registry holding the diagnosis.* counters.
func (c *Collector) Metrics() *metrics.Registry { return c.reg }

// Top returns the topology the collector resolves endpoints against.
func (c *Collector) Top() *topology.Topology { return c.top }

// Observe ingests one probe record: the hot failed-probe path. Records
// whose endpoints are not in the topology (VIPs, stale entries) are
// counted and skipped.
func (c *Collector) Observe(r *probe.Record) {
	src, okS := c.top.ServerByAddr(r.Src)
	dst, okD := c.top.ServerByAddr(r.Dst)
	if !okS || !okD {
		c.cSkipped.Inc()
		return
	}
	failed := !r.Success()
	c.mu.Lock()
	if c.paths != nil {
		if hops, ok := c.paths.AppendPath(c.pathBuf[:0], src, dst, r.SrcPort, r.DstPort); ok {
			c.vt.ObservePath(hops, failed)
			c.pathBuf = hops[:0]
		} else {
			c.mu.Unlock()
			c.cSkipped.Inc()
			return
		}
	} else {
		if !CandidateHops(&c.ps, c.top, src, dst) {
			c.mu.Unlock()
			c.cSkipped.Inc()
			return
		}
		c.vt.ObserveStages(&c.ps, failed)
	}
	c.mu.Unlock()
	c.cObserved.Inc()
	if failed {
		c.cVotes.Inc()
	}
}

// ObserveBatch ingests a record batch (the agent upload sink).
func (c *Collector) ObserveBatch(recs []probe.Record) {
	for i := range recs {
		c.Observe(&recs[i])
	}
}

// ObservePath ingests one probe with an externally recovered hop sequence
// (a real traceroute, or a test fixture) instead of a record.
func (c *Collector) ObservePath(hops []topology.SwitchID, failed bool) {
	c.mu.Lock()
	c.vt.ObservePath(hops, failed)
	c.mu.Unlock()
	c.cObserved.Inc()
	if failed {
		c.cVotes.Inc()
	}
}

// Score returns a switch's current normalized vote score.
func (c *Collector) Score(sw topology.SwitchID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vt.Score(sw)
}

// Ranked returns the current explain-away ranking (worst first, detached).
func (c *Collector) Ranked() []Candidate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vt.AppendRankGreedy(nil)
}

// Reset clears the vote state (window rotation).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.vt.Reset()
	c.mu.Unlock()
}

// Ranking is one immutable ranked root-cause snapshot.
type Ranking struct {
	// Observed and Failures count the ingested probes behind the ranking.
	Observed uint64 `json:"observed"`
	Failures uint64 `json:"failures"`
	// Candidates are suspect switches, worst first.
	Candidates []Candidate `json:"candidates"`
	// Links are suspect directed links, worst first (exact-path mode only).
	Links []LinkCandidate `json:"links,omitempty"`
}

// Snapshot ranks the current episode with greedy explain-away (see
// VoteTable.AppendRankGreedy). limit > 0 caps both lists. The result is
// detached from the collector and safe to publish.
func (c *Collector) Snapshot(limit int) *Ranking {
	c.mu.Lock()
	r := &Ranking{
		Observed:   c.vt.Observed(),
		Failures:   c.vt.Failures(),
		Candidates: c.vt.AppendRankGreedy(nil),
		Links:      c.vt.AppendRankLinks(nil),
	}
	c.mu.Unlock()
	if limit > 0 {
		if len(r.Candidates) > limit {
			r.Candidates = r.Candidates[:limit]
		}
		if len(r.Links) > limit {
			r.Links = r.Links[:limit]
		}
	}
	c.cRanked.Inc()
	return r
}
