package diagnosis

import (
	"pingmesh/internal/topology"
)

// PathSet is a reusable candidate path set: for each routing stage of the
// modeled route, the switches that could carry the packet (every ECMP
// member, since the hash choice is unknown without the five-tuple and
// fault state). Buffers are reused across fills so the ingest path stays
// allocation-free in steady state.
type PathSet struct {
	hops []topology.SwitchID // stage-major, flattened
	ends []int               // prefix end offsets, one per stage
}

// Reset empties the set, keeping capacity.
func (ps *PathSet) Reset() {
	ps.hops = ps.hops[:0]
	ps.ends = ps.ends[:0]
}

// Stages returns how many routing stages the set holds.
func (ps *PathSet) Stages() int { return len(ps.ends) }

// Stage returns the candidate switches of stage i.
func (ps *PathSet) Stage(i int) []topology.SwitchID {
	start := 0
	if i > 0 {
		start = ps.ends[i-1]
	}
	return ps.hops[start:ps.ends[i]]
}

// Hops returns the total number of candidate hops across all stages.
func (ps *PathSet) Hops() int { return len(ps.hops) }

func (ps *PathSet) addStage(members ...topology.SwitchID) {
	ps.hops = append(ps.hops, members...)
	ps.ends = append(ps.ends, len(ps.hops))
}

func (ps *PathSet) addStageSlice(members []topology.SwitchID) {
	ps.hops = append(ps.hops, members...)
	ps.ends = append(ps.ends, len(ps.hops))
}

// CandidateHops fills ps with the candidate path set for (src, dst) using
// only the topology: the same route shape as the ECMP resolver — ToR up
// through leaves and spines and back down — but with every ECMP member
// kept. Returns false when either endpoint is unknown.
func CandidateHops(ps *PathSet, top *topology.Topology, src, dst topology.ServerID) bool {
	ps.Reset()
	if int(src) >= top.NumServers() || int(dst) >= top.NumServers() || src < 0 || dst < 0 {
		return false
	}
	ss, ds := top.Server(src), top.Server(dst)
	srcToR, dstToR := top.ToROf(src), top.ToROf(dst)
	if srcToR == dstToR {
		ps.addStage(srcToR)
		return true
	}
	ps.addStage(srcToR)
	if ss.DC == ds.DC && ss.Podset == ds.Podset {
		ps.addStageSlice(top.DCs[ss.DC].Podsets[ss.Podset].Leaves)
		ps.addStage(dstToR)
		return true
	}
	ps.addStageSlice(top.DCs[ss.DC].Podsets[ss.Podset].Leaves)
	if ss.DC == ds.DC {
		ps.addStageSlice(top.DCs[ss.DC].Spines)
	} else {
		ps.addStageSlice(top.DCs[ss.DC].Spines)
		ps.addStageSlice(top.DCs[ds.DC].Spines)
	}
	ps.addStageSlice(top.DCs[ds.DC].Podsets[ds.Podset].Leaves)
	ps.addStage(dstToR)
	return true
}
