package diagnosis

import (
	"strings"
	"testing"
	"time"

	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

func testTop(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{{
		Name: "DC1", Podsets: 2, PodsPerPodset: 2, ServersPerPod: 2,
		LeavesPerPodset: 2, Spines: 2,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

type fakeEvidence struct {
	sla    SLAFacts
	slaOK  bool
	cell   CellFacts
	cellOK bool
}

func (f *fakeEvidence) PairSLA(src, dst topology.ServerID) (SLAFacts, bool) { return f.sla, f.slaOK }
func (f *fakeEvidence) PairCell(src, dst topology.ServerID) (CellFacts, bool) {
	return f.cell, f.cellOK
}

func TestEngineAllDependenciesMissing(t *testing.T) {
	top := testTop(t)
	e := &Engine{Top: top}
	ch := e.Diagnose(0, 3, nil)
	if ch.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %q, want inconclusive", ch.Verdict)
	}
	if len(ch.Steps) != 5 {
		t.Fatalf("got %d steps, want 5", len(ch.Steps))
	}
	for _, st := range ch.Steps {
		if st.Verdict != StepSkip {
			t.Fatalf("step %s verdict = %q, want skip with nothing wired", st.Assertion, st.Verdict)
		}
	}
}

func TestEngineSLAVerdicts(t *testing.T) {
	top := testTop(t)
	e := &Engine{Top: top}
	ev := &fakeEvidence{
		sla:   SLAFacts{Scope: "dc/DC1", Probes: 5000, P99: 3 * time.Millisecond, Violated: true},
		slaOK: true,
	}
	ch := e.Diagnose(0, 3, ev)
	if ch.Verdict != VerdictNetwork {
		t.Fatalf("violated SLA: verdict = %q, want network", ch.Verdict)
	}
	ev.sla.Violated = false
	ch = e.Diagnose(0, 3, ev)
	if ch.Verdict != VerdictNotNetwork {
		t.Fatalf("healthy SLA: verdict = %q, want not-network", ch.Verdict)
	}
}

func TestEngineCellStep(t *testing.T) {
	top := testTop(t)
	e := &Engine{Top: top}
	ev := &fakeEvidence{
		cell:   CellFacts{Probes: 900, P99: 9 * time.Millisecond, Color: "red", Judgeable: true},
		cellOK: true,
	}
	ch := e.Diagnose(0, 3, ev)
	if ch.Verdict != VerdictNetwork {
		t.Fatalf("red cell: verdict = %q, want network", ch.Verdict)
	}
	ev.cell.Judgeable = false
	ch = e.Diagnose(0, 3, ev)
	for _, st := range ch.Steps {
		if st.Assertion == AssertCell && st.Verdict != StepSkip {
			t.Fatalf("unjudgeable cell verdict = %q, want skip", st.Verdict)
		}
	}
}

// TestEnginePinsInjectedDrop runs the full chain against the fabric
// simulator: a lossy leaf must be pinned by the TTL sweep and named in
// the chain, with the modeled path rendered.
func TestEnginePinsInjectedDrop(t *testing.T) {
	top := testTop(t)
	net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DefaultProfiles()[0]}})
	if err != nil {
		t.Fatal(err)
	}
	leaf := top.DCs[0].Podsets[0].Leaves[0]
	net.SetRandomDrop(leaf, 0.10, true)

	e := &Engine{Top: top, Paths: net, Tracer: net, Seed: 42}
	// Same-podset, cross-pod pair: path is srcToR -> leaf -> dstToR.
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[0].Pods[1].Servers[0]

	// The pair's tuples may all hash to the healthy leaf; scan dsts until
	// the chain pins. With 2 leaves and ECMP coverage in the pin step the
	// first pair should already cross it.
	ch := e.Diagnose(src, dst, nil)
	if ch.Verdict != VerdictNetwork {
		t.Fatalf("verdict = %q, want network; chain: %+v", ch.Verdict, ch.Steps)
	}
	if ch.PinnedHop != top.Switch(leaf).Name {
		t.Fatalf("pinned %q, want %q", ch.PinnedHop, top.Switch(leaf).Name)
	}
	if len(ch.Path) == 0 {
		t.Fatal("chain has no modeled path")
	}
	found := false
	for _, st := range ch.Steps {
		if st.Assertion == AssertTracePin && st.Verdict == StepFail {
			if !strings.Contains(st.Detail, top.Switch(leaf).Name) {
				t.Fatalf("pin detail %q does not name the leaf", st.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no failing traceroute-pin step")
	}
}

func TestEngineCleanFabricNoPin(t *testing.T) {
	top := testTop(t)
	net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DefaultProfiles()[0]}})
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Top: top, Paths: net, Tracer: net, Seed: 7}
	ch := e.Diagnose(0, 3, nil)
	if ch.PinnedHop != "" {
		t.Fatalf("clean fabric pinned %q", ch.PinnedHop)
	}
	if ch.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %q, want inconclusive (no SLA evidence)", ch.Verdict)
	}
}

func TestEngineRepairBudgetStep(t *testing.T) {
	top := testTop(t)
	remaining := 2
	e := &Engine{Top: top, Budget: func() (int, int) { return remaining, 20 }}
	ch := e.Diagnose(0, 3, nil)
	if v := stepVerdict(ch, AssertRepairBudg); v != StepPass {
		t.Fatalf("budget step = %q, want pass", v)
	}
	remaining = 0
	ch = e.Diagnose(0, 3, nil)
	if v := stepVerdict(ch, AssertRepairBudg); v != StepFail {
		t.Fatalf("exhausted budget step = %q, want fail", v)
	}
	e2 := &Engine{Top: top, Budget: func() (int, int) { return 0, 0 }}
	ch = e2.Diagnose(0, 3, nil)
	if v := stepVerdict(ch, AssertRepairBudg); v != StepSkip {
		t.Fatalf("unwired budget step = %q, want skip", v)
	}
}

func stepVerdict(ch *Chain, assertion string) string {
	for _, st := range ch.Steps {
		if st.Assertion == assertion {
			return st.Verdict
		}
	}
	return ""
}

// TestTopSuspectThreshold exercises the votes-only summary /triage uses.
func TestTopSuspectThreshold(t *testing.T) {
	top := testTop(t)
	col := NewCollector(CollectorConfig{Top: top})
	e := &Engine{Top: top, Votes: col}
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[0].Pods[1].Servers[0]
	if name, _, ok := e.TopSuspect(src, dst); ok {
		t.Fatalf("empty collector nominated %q", name)
	}
	// Synthesize failures pinned on the dst ToR via exact paths.
	tor := top.ToROf(dst)
	leaf := top.DCs[0].Podsets[0].Leaves[0]
	srcToR := top.ToROf(src)
	for i := 0; i < 50; i++ {
		col.ObservePath([]topology.SwitchID{srcToR, leaf, tor}, true)
	}
	for i := 0; i < 50; i++ {
		col.ObservePath([]topology.SwitchID{srcToR, leaf, tor}, false)
	}
	name, score, ok := e.TopSuspect(src, dst)
	if !ok {
		t.Fatal("suspect not nominated")
	}
	if name != top.Switch(tor).Name && name != top.Switch(srcToR).Name && name != top.Switch(leaf).Name {
		t.Fatalf("suspect = %q, not on the pair's path", name)
	}
	if score <= 0 {
		t.Fatalf("score = %v, want > 0", score)
	}
}

func BenchmarkDiagnoseChain(b *testing.B) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{{
		Name: "DC1", Podsets: 2, PodsPerPodset: 2, ServersPerPod: 2,
		LeavesPerPodset: 2, Spines: 2,
	}}})
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DefaultProfiles()[0]}})
	if err != nil {
		b.Fatal(err)
	}
	e := &Engine{Top: top, Paths: net, Tracer: net, Seed: 13, ProbesPerHop: 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Diagnose(0, 3, nil)
	}
}
