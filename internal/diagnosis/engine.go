package diagnosis

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/simclock"
	"pingmesh/internal/topology"
)

// Chain verdicts (shared vocabulary with the portal's §4.3 triage).
const (
	VerdictNetwork      = "network"
	VerdictNotNetwork   = "not-network"
	VerdictInconclusive = "inconclusive"
)

// Step verdicts: pass means the assertion holds (that layer is healthy),
// fail means it implicates the network, skip means the evidence is
// unavailable.
const (
	StepPass = "pass"
	StepFail = "fail"
	StepSkip = "skip"
)

// Assertion names, in chain order.
const (
	AssertPairSLA    = "pair-sla"
	AssertCell       = "heatmap-cell"
	AssertHopVotes   = "hop-votes"
	AssertTracePin   = "traceroute-pin"
	AssertRepairBudg = "repair-budget"
)

// Step is one assertion's outcome with its supporting evidence.
type Step struct {
	Assertion string `json:"assertion"`
	Verdict   string `json:"verdict"`
	Detail    string `json:"detail"`
	// Hop names the implicated switch, when the assertion localizes one.
	Hop string `json:"hop,omitempty"`
	// Score carries the assertion's headline number: vote score for
	// hop-votes, estimated per-traversal loss for traceroute-pin.
	Score float64 `json:"score,omitempty"`
}

// Chain is the full evidence chain for one (src, dst) diagnosis query.
type Chain struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	// Path is the modeled hop sequence of a representative five-tuple
	// (empty when no path source is wired).
	Path    []string `json:"path"`
	Steps   []Step   `json:"steps"`
	Verdict string   `json:"verdict"`
	// PinnedHop names the located faulty switch when any assertion pinned
	// one (traceroute pin wins over vote score).
	PinnedHop string `json:"pinned_hop,omitempty"`
}

// SLAFacts is the pair-scope SLA evidence the first assertion judges.
type SLAFacts struct {
	Scope    string
	Probes   int64
	P99      time.Duration
	DropRate float64
	// Violated reports whether the scope breaches the deployment's
	// thresholds (with MinProbes suppression already applied).
	Violated bool
}

// CellFacts is the pod-pair heatmap evidence the second assertion judges.
type CellFacts struct {
	Probes uint64
	P99    time.Duration
	// Color is the cell classification ("green"/"yellow"/"red").
	Color string
	// Judgeable reports whether the cell clears the MinProbes floor.
	Judgeable bool
}

// EvidenceSource supplies the read-side evidence for the first two
// assertions. The portal's immutable snapshot implements it; a nil source
// skips both steps.
type EvidenceSource interface {
	// PairSLA returns the SLA facts of the pair's scope (DC or inter-DC).
	PairSLA(src, dst topology.ServerID) (SLAFacts, bool)
	// PairCell returns the pair's pod-pair heatmap cell facts.
	PairCell(src, dst topology.ServerID) (CellFacts, bool)
}

// Engine walks a (src, dst) pair's modeled path through the ordered
// assertion list and emits an evidence Chain. Every dependency is
// optional: a missing one turns its assertion into a skip, so the engine
// degrades from full fabric-model diagnosis (sim) down to SLA-only
// summaries (real deployments without a prober).
type Engine struct {
	Top *topology.Topology
	// Votes supplies per-hop vote scores (assertion 3).
	Votes *Collector
	// Paths models exact per-tuple paths; also guides the pin step toward
	// tuples that cross the top vote suspect.
	Paths PathResolver
	// Tracer issues the TTL sweeps of the pin step (assertion 4).
	Tracer TraceProber
	// Budget reports the repair budget (remaining, per-day) for
	// assertion 5; nil skips it.
	Budget func() (remaining, perDay int)

	// ProbesPerHop is the pin sweep's per-TTL probe count (default 200).
	ProbesPerHop int
	// PinThreshold is the per-hop loss estimate that pins a hop (default
	// 0.02 — about 2.5 binomial standard deviations of a per-hop estimate
	// at the default probe budget, so sampling noise rarely clears it even
	// before the confirmation sweep).
	PinThreshold float64
	// SuspectScore is the normalized vote score that makes a path hop a
	// suspect (default 0.01 — an order of magnitude above what the
	// baseline ~1e-4 drop rate can produce on a 6-hop path).
	SuspectScore float64
	// PortTries is how many source ports the pin step samples when
	// looking for a five-tuple that reproduces the loss (default 8).
	PortTries int
	// Seed makes pin sweeps reproducible.
	Seed uint64
	// Clock times chains for the latency histogram (default wall clock).
	Clock simclock.Clock
	// Registry receives diagnosis.chain.* metrics; nil creates one.
	Registry *metrics.Registry

	once    sync.Once
	reg     *metrics.Registry
	cChains *metrics.Counter
	cPins   *metrics.Counter
	hDur    *metrics.LockedHistogram
}

// defaults resolves zero-value knobs and metric handles once; chains can
// then run concurrently (the portal serves /diagnose from many goroutines).
func (e *Engine) defaults() {
	e.once.Do(e.applyDefaults)
}

func (e *Engine) applyDefaults() {
	if e.ProbesPerHop <= 0 {
		e.ProbesPerHop = 200
	}
	if e.PinThreshold <= 0 {
		e.PinThreshold = 0.02
	}
	if e.SuspectScore <= 0 {
		e.SuspectScore = 0.01
	}
	if e.PortTries <= 0 {
		e.PortTries = 8
	}
	if e.Clock == nil {
		e.Clock = simclock.NewReal()
	}
	if e.Registry == nil {
		e.Registry = metrics.NewRegistry()
	}
	e.reg = e.Registry
	e.cChains = e.reg.Counter("diagnosis.chains")
	e.cPins = e.reg.Counter("diagnosis.chain_pins")
	e.hDur = e.reg.Histogram("diagnosis.chain.duration")
}

// Metrics returns the registry holding the diagnosis.chain.* metrics.
func (e *Engine) Metrics() *metrics.Registry {
	e.defaults()
	return e.reg
}

// enginePorts synthesizes the deterministic five-tuples the pin step
// sweeps: distinct source ports against the traceroute destination port.
const (
	engineBaseSrcPort = 33434
	engineDstPort     = 8765
)

// Diagnose runs the assertion chain for one server pair. ev supplies the
// snapshot evidence for the first two steps (nil skips them).
func (e *Engine) Diagnose(src, dst topology.ServerID, ev EvidenceSource) *Chain {
	e.defaults()
	start := e.Clock.Now()
	ch := &Chain{
		Src:     e.Top.Server(src).Name,
		Dst:     e.Top.Server(dst).Name,
		Verdict: VerdictInconclusive,
	}

	// The modeled path of a representative five-tuple, for operators to
	// read the chain against.
	if e.Paths != nil {
		if hops, ok := e.Paths.AppendPath(nil, src, dst, engineBaseSrcPort, engineDstPort); ok {
			for _, sw := range hops {
				ch.Path = append(ch.Path, e.Top.Switch(sw).Name)
			}
		}
	}

	slaFail := e.assertPairSLA(ch, src, dst, ev)
	cellFail := e.assertCell(ch, src, dst, ev)
	voteHop, _, votesFail := e.assertHopVotes(ch, src, dst)
	pinHop, _, pinFail := e.assertTracePin(ch, src, dst, voteHop)
	e.assertRepairBudget(ch)

	switch {
	case pinFail:
		ch.Verdict = VerdictNetwork
		ch.PinnedHop = e.Top.Switch(pinHop).Name
		e.cPins.Inc()
	case votesFail:
		ch.Verdict = VerdictNetwork
		ch.PinnedHop = e.Top.Switch(voteHop).Name
		e.cPins.Inc()
	case slaFail || cellFail:
		ch.Verdict = VerdictNetwork
	case stepPassed(ch, AssertPairSLA) || stepPassed(ch, AssertCell):
		ch.Verdict = VerdictNotNetwork
	}

	e.cChains.Inc()
	e.hDur.Observe(e.Clock.Now().Sub(start))
	return ch
}

func stepPassed(ch *Chain, assertion string) bool {
	for _, s := range ch.Steps {
		if s.Assertion == assertion {
			return s.Verdict == StepPass
		}
	}
	return false
}

func (e *Engine) assertPairSLA(ch *Chain, src, dst topology.ServerID, ev EvidenceSource) (fail bool) {
	if ev == nil {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertPairSLA, Verdict: StepSkip, Detail: "no snapshot evidence wired"})
		return false
	}
	f, ok := ev.PairSLA(src, dst)
	if !ok {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertPairSLA, Verdict: StepSkip, Detail: "no SLA entry for the pair's scope"})
		return false
	}
	st := Step{Assertion: AssertPairSLA, Verdict: StepPass,
		Detail: fmt.Sprintf("scope %s healthy: p99=%v drop=%.2g over %d probes", f.Scope, f.P99, f.DropRate, f.Probes)}
	if f.Violated {
		st.Verdict = StepFail
		st.Detail = fmt.Sprintf("scope %s violates SLA: p99=%v drop=%.2g over %d probes", f.Scope, f.P99, f.DropRate, f.Probes)
	}
	ch.Steps = append(ch.Steps, st)
	return f.Violated
}

func (e *Engine) assertCell(ch *Chain, src, dst topology.ServerID, ev EvidenceSource) (fail bool) {
	if ev == nil {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertCell, Verdict: StepSkip, Detail: "no snapshot evidence wired"})
		return false
	}
	f, ok := ev.PairCell(src, dst)
	if !ok {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertCell, Verdict: StepSkip, Detail: "pod pair has no heatmap cell in the latest window"})
		return false
	}
	if !f.Judgeable {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertCell, Verdict: StepSkip,
			Detail: fmt.Sprintf("pod-pair cell has only %d probes: below the floor, not judgeable", f.Probes)})
		return false
	}
	st := Step{Assertion: AssertCell, Verdict: StepPass,
		Detail: fmt.Sprintf("pod-pair cell %s: p99=%v over %d probes", f.Color, f.P99, f.Probes)}
	if f.Color == "red" {
		st.Verdict = StepFail
		st.Detail = fmt.Sprintf("pod-pair cell red: p99=%v over %d probes", f.P99, f.Probes)
	}
	ch.Steps = append(ch.Steps, st)
	return st.Verdict == StepFail
}

// maxVoteHop returns the pair's most-implicated candidate hop: the first
// switch of the fleet-wide explain-away ranking that lies on one of the
// pair's candidate stages. Selection uses explained (residual) vote mass —
// a loud fault elsewhere cannot nominate an innocent shared hop — while
// the returned score is the hop's raw vote score, the evidence magnitude
// the threshold judges. hop is -1 when no ranked switch touches the pair;
// ok is false when no vote collector is wired or the endpoints are
// unknown.
func (e *Engine) maxVoteHop(src, dst topology.ServerID) (hop topology.SwitchID, score float64, ok bool) {
	if e.Votes == nil {
		return -1, 0, false
	}
	var ps PathSet
	if !CandidateHops(&ps, e.Top, src, dst) {
		return -1, 0, false
	}
	for _, cand := range e.Votes.Ranked() {
		for s := 0; s < ps.Stages(); s++ {
			for _, sw := range ps.Stage(s) {
				if sw == cand.Switch {
					return sw, e.Votes.Score(sw), true
				}
			}
		}
	}
	return -1, 0, true
}

// TopSuspect returns the name and score of the pair's highest-scoring
// candidate hop when it clears SuspectScore — the cheap, votes-only
// summary /triage attaches without running a full chain.
func (e *Engine) TopSuspect(src, dst topology.ServerID) (string, float64, bool) {
	e.defaults()
	best, score, ok := e.maxVoteHop(src, dst)
	if !ok || score < e.SuspectScore {
		return "", 0, false
	}
	return e.Top.Switch(best).Name, score, true
}

// assertHopVotes checks every candidate hop of the pair against the vote
// table.
func (e *Engine) assertHopVotes(ch *Chain, src, dst topology.ServerID) (hop topology.SwitchID, score float64, fail bool) {
	if e.Votes == nil {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertHopVotes, Verdict: StepSkip, Detail: "no vote collector wired"})
		return -1, 0, false
	}
	best, bestScore, ok := e.maxVoteHop(src, dst)
	if !ok {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertHopVotes, Verdict: StepSkip, Detail: "pair endpoints unknown to the topology"})
		return -1, 0, false
	}
	if best >= 0 && bestScore >= e.SuspectScore {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertHopVotes, Verdict: StepFail, Hop: e.Top.Switch(best).Name, Score: bestScore,
			Detail: fmt.Sprintf("%s holds vote score %.4f (threshold %.4f) across the pair's candidate hops", e.Top.Switch(best).Name, bestScore, e.SuspectScore)})
		return best, bestScore, true
	}
	ch.Steps = append(ch.Steps, Step{Assertion: AssertHopVotes, Verdict: StepPass, Score: bestScore,
		Detail: fmt.Sprintf("no candidate hop above vote score %.4f (max %.4f)", e.SuspectScore, bestScore)})
	return best, bestScore, false
}

// pinTally aggregates one switch's loss estimates across the sweep's
// tuples, keeping the tuple where it looked worst as the confirmation
// exemplar.
type pinTally struct {
	sum  float64
	n    int
	port uint16 // exemplar tuple's source port
	kHop int    // exemplar tuple's TTL index for this switch
	peak float64
}

// assertTracePin sweeps TTL-limited probes over a handful of five-tuples
// and pins the hop where per-hop loss concentrates. When the vote step
// produced a suspect, tuples whose modeled path crosses it are tried
// first — the vote table guides the traceroute, which then confirms or
// clears the suspicion independently.
//
// A single per-tuple estimate at ProbesPerHop samples has binomial noise
// of the same order as a real silent drop, and taking the max over
// tuples × hops selects exactly that noise. So estimates are averaged per
// switch across tuples first, and the leading suspects must then survive
// a fresh confirmation sweep at 5× the probe budget before pinning —
// noise does not repeat, real loss does.
func (e *Engine) assertTracePin(ch *Chain, src, dst topology.ServerID, suspect topology.SwitchID) (hop topology.SwitchID, loss float64, fail bool) {
	if e.Tracer == nil {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertTracePin, Verdict: StepSkip, Detail: "no trace prober wired"})
		return -1, 0, false
	}
	rng := rand.New(rand.NewPCG(e.Seed^0xd1a9, uint64(src)<<32|uint64(uint32(dst))))
	ports := e.pinPorts(src, dst, suspect)

	tallies := map[topology.SwitchID]*pinTally{}
	for _, sport := range ports {
		spec := netsim.ProbeSpec{Src: src, Dst: dst, SrcPort: sport, DstPort: engineDstPort, Proto: probe.TCP}
		hops := e.tupleHops(spec, rng)
		if len(hops) == 0 {
			continue
		}
		est := EstimateHopLoss(e.Tracer, spec, len(hops), e.ProbesPerHop, rng)
		for k, p := range est {
			t := tallies[hops[k]]
			if t == nil {
				t = &pinTally{port: sport, kHop: k, peak: p}
				tallies[hops[k]] = t
			}
			t.sum += p
			t.n++
			if p > t.peak {
				t.port, t.kHop, t.peak = sport, k, p
			}
		}
	}

	// Leading suspects by mean estimate, deterministically ordered.
	suspects := make([]topology.SwitchID, 0, len(tallies))
	for sw, t := range tallies {
		if t.sum/float64(t.n) >= e.PinThreshold {
			suspects = append(suspects, sw)
		}
	}
	sort.Slice(suspects, func(i, j int) bool {
		a, b := tallies[suspects[i]], tallies[suspects[j]]
		ma, mb := a.sum/float64(a.n), b.sum/float64(b.n)
		if ma != mb {
			return ma > mb
		}
		return suspects[i] < suspects[j]
	})
	if len(suspects) > 3 {
		suspects = suspects[:3]
	}
	for _, sw := range suspects {
		t := tallies[sw]
		spec := netsim.ProbeSpec{Src: src, Dst: dst, SrcPort: t.port, DstPort: engineDstPort, Proto: probe.TCP}
		est := EstimateHopLoss(e.Tracer, spec, t.kHop+1, 5*e.ProbesPerHop, rng)
		if got := est[t.kHop]; got >= e.PinThreshold {
			ch.Steps = append(ch.Steps, Step{Assertion: AssertTracePin, Verdict: StepFail, Hop: e.Top.Switch(sw).Name, Score: got,
				Detail: fmt.Sprintf("TTL sweep pins %s: per-traversal loss %.4f confirmed at 5x probes (threshold %.4f)",
					e.Top.Switch(sw).Name, got, e.PinThreshold)})
			return sw, got, true
		}
	}
	ch.Steps = append(ch.Steps, Step{Assertion: AssertTracePin, Verdict: StepPass,
		Detail: fmt.Sprintf("TTL sweep over %d tuples found no hop sustaining %.4f loss", len(ports), e.PinThreshold)})
	return -1, 0, false
}

// pinPorts picks the source ports the pin step sweeps. With a path model
// wired it scans a wide port window and keeps tuples for ECMP coverage —
// every candidate hop of the pair should appear in at least one swept
// tuple, or a fault on an ECMP member none of the tuples crosses is
// unobservable — plus up to three tuples crossing the vote suspect so its
// per-hop mean averages over more samples. Without a model it falls back
// to PortTries sequential ports.
func (e *Engine) pinPorts(src, dst topology.ServerID, suspect topology.SwitchID) []uint16 {
	ports := make([]uint16, 0, 2*e.PortTries)
	if e.Paths != nil {
		const suspectQuota = 3
		covered := map[topology.SwitchID]bool{}
		suspectTuples := 0
		var buf []topology.SwitchID
		for i := 0; i < 8*e.PortTries && len(ports) < 2*e.PortTries; i++ {
			sport := uint16(engineBaseSrcPort + i)
			hops, ok := e.Paths.AppendPath(buf[:0], src, dst, sport, engineDstPort)
			buf = hops
			if !ok {
				continue
			}
			fresh, hitSuspect := false, false
			for _, sw := range hops {
				if !covered[sw] {
					fresh = true
				}
				if sw == suspect {
					hitSuspect = true
				}
			}
			if !fresh && !(hitSuspect && suspectTuples < suspectQuota) {
				continue
			}
			for _, sw := range hops {
				covered[sw] = true
			}
			if hitSuspect {
				suspectTuples++
			}
			ports = append(ports, sport)
		}
	}
	for i := 0; len(ports) < e.PortTries; i++ {
		ports = append(ports, uint16(engineBaseSrcPort+i))
	}
	return ports
}

// tupleHops resolves one five-tuple's hop sequence: the fabric model when
// wired, a TTL-sweep path recovery otherwise.
func (e *Engine) tupleHops(spec netsim.ProbeSpec, rng *rand.Rand) []topology.SwitchID {
	if e.Paths != nil {
		if h, ok := e.Paths.AppendPath(nil, spec.Src, spec.Dst, spec.SrcPort, spec.DstPort); ok {
			return h
		}
	}
	return TracePath(e.Tracer, spec, 8, 3, rng)
}

func (e *Engine) assertRepairBudget(ch *Chain) {
	if e.Budget == nil {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertRepairBudg, Verdict: StepSkip, Detail: "no repair service wired"})
		return
	}
	remaining, perDay := e.Budget()
	if perDay <= 0 {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertRepairBudg, Verdict: StepSkip, Detail: "no repair service wired"})
		return
	}
	if remaining > 0 {
		ch.Steps = append(ch.Steps, Step{Assertion: AssertRepairBudg, Verdict: StepPass,
			Detail: fmt.Sprintf("repair budget available: %d of %d actions left today", remaining, perDay)})
		return
	}
	ch.Steps = append(ch.Steps, Step{Assertion: AssertRepairBudg, Verdict: StepFail,
		Detail: fmt.Sprintf("repair budget exhausted (%d/day): mitigation waits for the next day or an engineer", perDay)})
}
