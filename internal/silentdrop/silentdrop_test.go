package silentdrop

import (
	"math/rand/v2"
	"testing"

	"pingmesh/internal/netsim"
	"pingmesh/internal/topology"
)

func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpikeDetector(t *testing.T) {
	d := &SpikeDetector{Baseline: 1e-4, Factor: 5}
	if d.Spiked(4e-5) {
		t.Fatal("normal drop rate flagged")
	}
	if d.Spiked(4.9e-4) {
		t.Fatal("sub-threshold rate flagged")
	}
	if !d.Spiked(2e-3) {
		t.Fatal("incident-level rate not flagged (Figure 7 jumps to ~2e-3)")
	}
	// Defaults apply when zero.
	dz := &SpikeDetector{}
	if !dz.Spiked(1e-2) || dz.Spiked(1e-5) {
		t.Fatal("default thresholds wrong")
	}
}

// pairsThroughSpine builds cross-podset pairs whose five-tuples route
// through the given spine (and some that do not).
func pairsThroughSpine(n *netsim.Network, spine topology.SwitchID, want int) []Pair {
	top := n.Topology()
	var out []Pair
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	for port := uint16(34000); len(out) < want && port < 40000; port++ {
		hops, ok := n.Path(src, dst, port, 8765)
		if !ok {
			continue
		}
		for _, h := range hops {
			if h == spine {
				out = append(out, Pair{Src: src, Dst: dst, SrcPort: port, DstPort: 8765})
				break
			}
		}
	}
	return out
}

func TestLocalizeFindsLossySpine(t *testing.T) {
	n := testNet(t)
	top := n.Topology()
	spine := top.DCs[0].Spines[1]
	n.SetRandomDrop(spine, 0.02, true) // Figure 7: 1-2% silent random drops

	pairs := pairsThroughSpine(n, spine, 6)
	if len(pairs) < 3 {
		t.Fatalf("only %d pairs route through the spine", len(pairs))
	}
	l := &Localizer{Net: n, ProbesPerHop: 800, Rand: rand.New(rand.NewPCG(1, 2))}
	suspects := l.Localize(pairs)
	if len(suspects) == 0 {
		t.Fatal("no suspects found")
	}
	if suspects[0].Switch != spine {
		t.Fatalf("top suspect = %v (loss %v, pairs %d), want spine %v",
			suspects[0].Switch, suspects[0].Loss, suspects[0].Pairs, spine)
	}
	if suspects[0].Loss < 0.01 || suspects[0].Loss > 0.06 {
		t.Fatalf("loss estimate %v implausible for 2%% drop (round trip ~4%%)", suspects[0].Loss)
	}
}

func TestLocalizeHealthyNetworkQuiet(t *testing.T) {
	n := testNet(t)
	top := n.Topology()
	pairs := pairsThroughSpine(n, top.DCs[0].Spines[0], 4)
	l := &Localizer{Net: n, ProbesPerHop: 400, Rand: rand.New(rand.NewPCG(3, 4))}
	suspects := l.Localize(pairs)
	// Baseline loss is ~1e-5 per hop: far below the 0.5% threshold.
	for _, s := range suspects {
		if s.Pairs > 1 {
			t.Fatalf("healthy network produced consistent suspect %v", s)
		}
	}
}

func TestIsolationEndsIncident(t *testing.T) {
	n := testNet(t)
	top := n.Topology()
	spine := top.DCs[0].Spines[2]
	n.SetRandomDrop(spine, 0.02, true)

	pairs := pairsThroughSpine(n, spine, 4)
	l := &Localizer{Net: n, ProbesPerHop: 600, Rand: rand.New(rand.NewPCG(5, 6))}
	suspects := l.Localize(pairs)
	if len(suspects) == 0 || suspects[0].Switch != spine {
		t.Fatalf("localization failed: %v", suspects)
	}

	// Mitigate: isolate the switch from live traffic (§5.2). ECMP then
	// routes affected five-tuples around it.
	n.IsolateSwitch(suspects[0].Switch)
	rng := rand.New(rand.NewPCG(7, 8))
	retx := 0
	count := 30000
	src, dst := pairs[0].Src, pairs[0].Dst
	for i := 0; i < count; i++ {
		res := n.Probe(netsim.ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(35000 + i%5000), DstPort: 8765}, rng)
		if res.Err == "" && res.Attempts > 1 {
			retx++
		}
	}
	if rate := float64(retx) / float64(count); rate > 1e-3 {
		t.Fatalf("drop rate %g after isolation, want back to baseline", rate)
	}
	// The fault is hardware: a reload does NOT fix it; RMA does.
	n.ReloadSwitch(spine)
	if !n.SwitchFaulty(spine) {
		t.Fatal("reload cleared a hardware fault")
	}
	n.ReplaceSwitch(spine)
	if n.SwitchFaulty(spine) {
		t.Fatal("RMA did not clear the fault")
	}
}

func TestAffectedPairsFromStats(t *testing.T) {
	n := testNet(t)
	top := n.Topology()
	a := top.Server(0).Addr.String()
	b := top.Server(1).Addr.String()
	c := top.Server(2).Addr.String()
	rates := map[string]float64{
		a + "|" + b:   2e-3,
		b + "|" + c:   5e-3,
		a + "|" + c:   1e-5, // below threshold
		"bogus|entry": 9e-1, // unparseable: skipped
	}
	pairs := AffectedPairsFromStats(top, rates, 1e-3, 10)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	// Ordered by rate descending.
	if top.Server(pairs[0].Src).Addr.String() != b {
		t.Fatalf("first pair = %+v, want the 5e-3 one", pairs[0])
	}
	// Limit applies.
	if got := AffectedPairsFromStats(top, rates, 1e-3, 1); len(got) != 1 {
		t.Fatalf("limit ignored: %v", got)
	}
	// Distinct source ports per pair.
	if pairs[0].SrcPort == pairs[1].SrcPort {
		t.Fatal("pairs share a source port")
	}
}
