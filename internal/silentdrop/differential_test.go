package silentdrop

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// localizeReference is the pre-refactor Localize, copied verbatim from
// before the TTL sweep moved into internal/diagnosis. The rng draw
// sequence and suspect order must be identical: same seed, same Network,
// byte-identical suspects.
func localizeReference(l *Localizer, pairs []Pair) []Suspect {
	probesPerHop := l.ProbesPerHop
	if probesPerHop <= 0 {
		probesPerHop = 400
	}
	threshold := l.LossThreshold
	if threshold <= 0 {
		threshold = 0.005
	}
	rng := l.Rand
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x51e27, 0xd309))
	}

	type acc struct {
		loss  float64
		pairs int
	}
	blame := map[topology.SwitchID]*acc{}
	for _, p := range pairs {
		hops, ok := l.Net.Path(p.Src, p.Dst, p.SrcPort, p.DstPort)
		if !ok {
			continue
		}
		spec := netsim.ProbeSpec{
			Src: p.Src, Dst: p.Dst,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Proto: probe.TCP,
		}
		prevLoss := 0.0
		for ttl := 1; ttl <= len(hops); ttl++ {
			lost := 0
			for i := 0; i < probesPerHop; i++ {
				if !l.Net.TraceProbe(spec, ttl, rng).OK {
					lost++
				}
			}
			loss := float64(lost) / float64(probesPerHop)
			if delta := loss - prevLoss; delta >= threshold {
				a := blame[hops[ttl-1]]
				if a == nil {
					a = &acc{}
					blame[hops[ttl-1]] = a
				}
				a.loss += delta
				a.pairs++
				break
			}
			if loss > prevLoss {
				prevLoss = loss
			}
		}
	}

	out := make([]Suspect, 0, len(blame))
	for sw, a := range blame {
		out = append(out, Suspect{Switch: sw, Loss: a.loss / float64(a.pairs), Pairs: a.pairs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pairs != out[j].Pairs {
			return out[i].Pairs > out[j].Pairs
		}
		if out[i].Loss != out[j].Loss {
			return out[i].Loss > out[j].Loss
		}
		return out[i].Switch < out[j].Switch
	})
	return out
}

// TestLocalizeMatchesReference runs Localize and the verbatim pre-refactor
// copy with identical seeds against the same faulty fabric and requires
// byte-identical suspect lists.
func TestLocalizeMatchesReference(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0x51d0, uint64(trial)))
			top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{{
				Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 3,
				LeavesPerPodset: 2, Spines: 3,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			net, err := netsim.New(top, netsim.Config{Profiles: []netsim.Profile{netsim.DC1Profile()}})
			if err != nil {
				t.Fatal(err)
			}
			// 1-2 silently dropping switches per trial.
			switches := top.Switches()
			for f := 0; f < 1+int(rng.IntN(2)); f++ {
				sw := switches[rng.IntN(len(switches))].ID
				net.SetRandomDrop(sw, 0.01+0.03*rng.Float64(), true)
			}

			servers := top.Servers()
			var pairs []Pair
			for k := 0; k < 12; k++ {
				src := servers[rng.IntN(len(servers))].ID
				dst := servers[rng.IntN(len(servers))].ID
				if src == dst {
					continue
				}
				pairs = append(pairs, Pair{
					Src: src, Dst: dst,
					SrcPort: uint16(33000 + k), DstPort: 8765,
				})
			}

			mk := func() *Localizer {
				return &Localizer{
					Net:          net,
					ProbesPerHop: 200,
					Rand:         rand.New(rand.NewPCG(0xfeed, uint64(trial))),
				}
			}
			got := mk().Localize(pairs)
			want := localizeReference(mk(), pairs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Localize diverged from pre-refactor reference:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}
