// Package silentdrop detects and localizes switch silent random packet
// drops (§5.2). A Spine dropping 1-2% of packets silently shows nothing in
// its own counters but inflates drop rates for tens of thousands of
// servers. Detection comes from the Pingmesh drop-rate series jumping an
// order of magnitude above baseline; localization combines Pingmesh (which
// tier? which affected pairs?) with TCP traceroute over the affected
// five-tuples: per-TTL loss estimation pins the first hop where loss
// appears. Mitigation isolates the switch from serving live traffic;
// hardware faults behind silent drops (fabric CRC errors, bit flips) are
// not fixed by reloads and end in RMA.
package silentdrop

import (
	"math/rand/v2"
	"sort"

	"pingmesh/internal/diagnosis"
	"pingmesh/internal/netsim"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// SweepTraceLoss and EstimateHopLoss moved to internal/diagnosis so the
// root-cause engine shares the per-TTL estimator; re-exported here because
// this package is where the §5.2 workflow lives.
var (
	SweepTraceLoss  = diagnosis.SweepTraceLoss
	EstimateHopLoss = diagnosis.EstimateHopLoss
)

// SpikeDetector decides whether a drop-rate series left its normal band.
type SpikeDetector struct {
	// Baseline is the expected drop rate under normal conditions
	// (10⁻⁴–10⁻⁵ per §4.2). Default 1e-4.
	Baseline float64
	// Factor is how many times above baseline counts as a spike.
	// Default 5.
	Factor float64
}

// Spiked reports whether the latest value is a spike.
func (d *SpikeDetector) Spiked(rate float64) bool {
	base := d.Baseline
	if base <= 0 {
		base = 1e-4
	}
	factor := d.Factor
	if factor <= 0 {
		factor = 5
	}
	return rate > base*factor
}

// Pair is one affected source-destination five-tuple, discovered from
// Pingmesh data (pairs with elevated retransmit signatures).
type Pair struct {
	Src, Dst         topology.ServerID
	SrcPort, DstPort uint16
}

// Suspect is one switch accused of silent drops.
type Suspect struct {
	Switch topology.SwitchID
	// Loss is the per-traversal loss estimate attributed to the switch.
	Loss float64
	// Pairs is how many affected pairs implicated the switch.
	Pairs int
}

// Localizer runs TCP-traceroute-style per-hop loss estimation against the
// network. In production the probes are real TCP traceroutes; here they
// run against the simulator, which reproduces the per-hop loss behaviour.
type Localizer struct {
	Net *netsim.Network
	// ProbesPerHop is how many trace probes each TTL gets (default 400 —
	// enough to resolve percent-level loss).
	ProbesPerHop int
	// LossThreshold is the minimum per-hop loss increase that implicates
	// a switch (default 0.005).
	LossThreshold float64
	// Rand seeds the probing; required.
	Rand *rand.Rand
}

// Localize estimates per-hop loss for every affected pair and returns the
// implicated switches, worst first.
func (l *Localizer) Localize(pairs []Pair) []Suspect {
	probesPerHop := l.ProbesPerHop
	if probesPerHop <= 0 {
		probesPerHop = 400
	}
	threshold := l.LossThreshold
	if threshold <= 0 {
		threshold = 0.005
	}
	rng := l.Rand
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x51e27, 0xd309))
	}

	type acc struct {
		loss  float64
		pairs int
	}
	blame := map[topology.SwitchID]*acc{}
	for _, p := range pairs {
		hops, ok := l.Net.Path(p.Src, p.Dst, p.SrcPort, p.DstPort)
		if !ok {
			continue
		}
		spec := netsim.ProbeSpec{
			Src: p.Src, Dst: p.Dst,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Proto: probe.TCP,
		}
		// Walk the path and blame the FIRST hop where loss appears. A
		// lossy switch also inflates the loss of every later TTL (probes
		// to later hops cross its fabric twice), so attributing every
		// increase would smear blame downstream; first-appearance is how
		// traceroute localization pinpoints the culprit (§5.2). If several
		// switches on one path leak, isolate-and-re-run finds them one at
		// a time. The sweep itself is the shared per-TTL estimator; the
		// early-stop visit keeps the rng draw sequence identical to the
		// pre-refactor loop.
		prevLoss := 0.0
		diagnosis.SweepTraceLoss(l.Net, spec, len(hops), probesPerHop, rng, func(ttl int, loss float64) bool {
			if delta := loss - prevLoss; delta >= threshold {
				a := blame[hops[ttl-1]]
				if a == nil {
					a = &acc{}
					blame[hops[ttl-1]] = a
				}
				a.loss += delta
				a.pairs++
				return false
			}
			if loss > prevLoss {
				prevLoss = loss
			}
			return true
		})
	}

	// Rank through the shared scorer: implicating pairs are the vote mass
	// and the per-pair mean loss estimate the score — SortByVotes is the
	// §5.2 suspect order (pairs desc, loss desc, device asc).
	ranked := make([]diagnosis.Candidate, 0, len(blame))
	for sw, a := range blame {
		ranked = append(ranked, diagnosis.Candidate{
			Switch: sw,
			Score:  a.loss / float64(a.pairs),
			Votes:  float64(a.pairs),
		})
	}
	diagnosis.SortByVotes(ranked)
	out := make([]Suspect, 0, len(ranked))
	for _, rc := range ranked {
		out = append(out, Suspect{Switch: rc.Switch, Loss: rc.Score, Pairs: int(rc.Votes)})
	}
	return out
}

// AffectedPairsFromStats extracts the pairs worth tracerouting: server
// pairs whose drop estimate is elevated. keys are Keyer.ServerPair keys;
// the ports to traceroute with are synthesized deterministically per pair
// (a traceroute probes one concrete five-tuple).
func AffectedPairsFromStats(top *topology.Topology, dropRateByPair map[string]float64, minRate float64, limit int) []Pair {
	type kv struct {
		src, dst topology.ServerID
		key      string
		rate     float64
	}
	var elevated []kv
	for k, r := range dropRateByPair {
		if r < minRate {
			continue
		}
		src, dst, ok := splitPairKey(top, k)
		if !ok {
			continue // VIPs or stale topology entries
		}
		elevated = append(elevated, kv{src, dst, k, r})
	}
	sort.Slice(elevated, func(i, j int) bool {
		if elevated[i].rate != elevated[j].rate {
			return elevated[i].rate > elevated[j].rate
		}
		return elevated[i].key < elevated[j].key
	})
	if limit > 0 && len(elevated) > limit {
		elevated = elevated[:limit]
	}
	out := make([]Pair, 0, len(elevated))
	for i, e := range elevated {
		out = append(out, Pair{
			Src: e.src, Dst: e.dst,
			SrcPort: uint16(33000 + i), DstPort: 8765,
		})
	}
	return out
}

func splitPairKey(top *topology.Topology, key string) (src, dst topology.ServerID, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			s, ok1 := top.ServerByAddrString(key[:i])
			d, ok2 := top.ServerByAddrString(key[i+1:])
			return s, d, ok1 && ok2
		}
	}
	return 0, 0, false
}
