package netsim

import (
	"math/rand/v2"
	"testing"
	"time"

	"pingmesh/internal/topology"
)

func benchNetwork(b *testing.B) *Network {
	b.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 3, PodsPerPodset: 5, ServersPerPod: 8, LeavesPerPodset: 4, Spines: 8},
		{Name: "DC2", Podsets: 3, PodsPerPodset: 5, ServersPerPod: 8, LeavesPerPodset: 4, Spines: 8},
	}})
	if err != nil {
		b.Fatal(err)
	}
	n, err := New(top, Config{Profiles: []Profile{DC1Profile(), DC2Profile()}})
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func benchProbe(b *testing.B, src, dst topology.ServerID, payload int) {
	n := benchNetwork(b)
	rng := rand.New(rand.NewPCG(1, 2))
	start := time.Unix(1751328000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Probe(ProbeSpec{
			Src: src, Dst: dst,
			SrcPort: uint16(32768 + i%28000), DstPort: 8765,
			PayloadLen: payload,
			Start:      start,
		}, rng)
	}
}

func BenchmarkProbeIntraPod(b *testing.B) {
	n := benchNetwork(b)
	pod := n.Topology().PodOf(0)
	benchProbe(b, pod.Servers[0], pod.Servers[1], 0)
}

func BenchmarkProbeCrossPodset(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	benchProbe(b, top.DCs[0].Podsets[0].Pods[0].Servers[0], top.DCs[0].Podsets[1].Pods[0].Servers[0], 0)
}

func BenchmarkProbeCrossDC(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	benchProbe(b, top.DCs[0].Podsets[0].Pods[0].Servers[0], top.DCs[1].Podsets[0].Pods[0].Servers[0], 0)
}

func BenchmarkProbeWithPayload(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	benchProbe(b, top.DCs[0].Podsets[0].Pods[0].Servers[0], top.DCs[0].Podsets[1].Pods[0].Servers[0], 1000)
}

// BenchmarkProbeReference measures the retained uncached path, the
// baseline the plan cache is compared against (see BENCH_PR3.json).
func BenchmarkProbeReference(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	rng := rand.New(rand.NewPCG(1, 2))
	start := time.Unix(1751328000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.probeReference(ProbeSpec{
			Src: src, Dst: dst,
			SrcPort: uint16(32768 + i%28000), DstPort: 8765,
			Start: start,
		}, rng)
	}
}

// BenchmarkProbePairProber measures the caller-owned handle the fleet
// runner uses: plan revalidation is a pointer compare, no map lookup.
func BenchmarkProbePairProber(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	pr := n.PairProber(src, dst)
	rng := rand.New(rand.NewPCG(1, 2))
	start := time.Unix(1751328000, 0)
	spec := ProbeSpec{Src: src, Dst: dst, DstPort: 8765, Start: start}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.SrcPort = uint16(32768 + i%28000)
		pr.Probe(&spec, rng)
	}
}

func BenchmarkPathResolve(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Path(src, dst, uint16(32768+i%28000), 8765)
	}
}

func BenchmarkTraceProbe(b *testing.B) {
	n := benchNetwork(b)
	top := n.Topology()
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	rng := rand.New(rand.NewPCG(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TraceProbe(ProbeSpec{Src: src, Dst: dst, SrcPort: 40000, DstPort: 8765}, 3, rng)
	}
}
