package netsim

import (
	"sync"
	"testing"
	"time"

	"pingmesh/internal/topology"
)

// TestSinglePodTopology exercises the degenerate fabric: one rack, no
// leaves or spines needed.
func TestSinglePodTopology(t *testing.T) {
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "TINY", Podsets: 1, PodsPerPodset: 1, ServersPerPod: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(top, Config{Profiles: []Profile{DC2Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	pod := top.PodOf(0)
	hops, ok := n.Path(pod.Servers[0], pod.Servers[1], 40000, 8765)
	if !ok || len(hops) != 1 {
		t.Fatalf("single-pod path = %v, %v", hops, ok)
	}
	res := n.Probe(ProbeSpec{Src: pod.Servers[0], Dst: pod.Servers[1], SrcPort: 40000, DstPort: 8765}, rng(61))
	if res.Err != "" {
		t.Fatalf("probe failed: %s", res.Err)
	}
}

func TestUnreachableElapsedIsConnectTimeout(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	n.SetPodsetDown(0, 0, true)
	src, dst := pairOfKind(top, "cross-podset")
	res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2}, rng(62))
	if res.Err != ErrUnreachable {
		t.Fatalf("Err = %q", res.Err)
	}
	// The agent burns the full SYN retry timeline before giving up.
	if res.Elapsed != ConnectFailAt {
		t.Fatalf("Elapsed = %v, want %v", res.Elapsed, ConnectFailAt)
	}
	if res.Attempts != SYNRetries+1 {
		t.Fatalf("Attempts = %d", res.Attempts)
	}
}

func TestProfileFallbackWhenFewerProfilesThanDCs(t *testing.T) {
	top := testTopology(t) // two DCs
	n, err := New(top, Config{Profiles: []Profile{DC5Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	// A cross-DC probe touches DC 1, which has no profile of its own: the
	// last profile must be reused rather than panicking.
	src, dst := pairOfKind(top, "cross-dc")
	if res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 40000, DstPort: 8765}, rng(63)); res.Err != "" {
		t.Fatalf("probe failed: %s", res.Err)
	}
}

func TestDefaultInterDCApplied(t *testing.T) {
	top := testTopology(t)
	n, err := New(top, Config{Profiles: []Profile{DC2Profile(), DC2Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.InterDC.BaseOneWay == 0 {
		t.Fatal("InterDC defaults not applied")
	}
	src, dst := pairOfKind(top, "cross-dc")
	res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 40000, DstPort: 8765}, rng(64))
	if res.Err != "" || res.RTT < 2*n.cfg.InterDC.BaseOneWay {
		t.Fatalf("cross-DC RTT %v below WAN floor", res.RTT)
	}
}

func TestLeafBlackholeSparesIntraPod(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	leaf := top.DCs[0].Podsets[0].Leaves[0]
	n.AddBlackhole(leaf, Blackhole{MatchFraction: 1.0}) // kills everything through this leaf
	r := rng(65)

	// Intra-pod traffic never crosses a leaf: always fine.
	src, dst := pairOfKind(top, "intra-pod")
	for i := 0; i < 20; i++ {
		if res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(41000 + i), DstPort: 8765}, r); res.Err != "" {
			t.Fatalf("intra-pod probe died at the leaf: %s", res.Err)
		}
	}
	// Inter-pod probes fail exactly when ECMP picks the dead leaf.
	src2, dst2 := pairOfKind(top, "intra-podset")
	failures := 0
	for i := 0; i < 200; i++ {
		if res := n.Probe(ProbeSpec{Src: src2, Dst: dst2, SrcPort: uint16(42000 + i), DstPort: 8765}, r); res.Err != "" {
			failures++
		}
	}
	// Two leaves: roughly half the five-tuples hash through the dead one.
	if failures < 50 || failures > 150 {
		t.Fatalf("failures = %d of 200, want ~100 (one of two leaves dead)", failures)
	}
}

func TestTraceProbeUnreachable(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	n.SetPodsetDown(0, 1, true)
	src, dst := pairOfKind(top, "cross-podset")
	if got := n.TraceProbe(ProbeSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2}, 1, rng(66)); got.OK {
		t.Fatal("trace into downed podset answered")
	}
}

// TestConcurrentProbesAndFaultInjection exercises the lock-free fault
// table under churn (meaningful under -race).
func TestConcurrentProbesAndFaultInjection(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "cross-podset")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng(uint64(70 + w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(43000 + i%1000), DstPort: 8765}, r)
			}
		}(w)
	}
	spine := top.DCs[0].Spines[0]
	for i := 0; i < 200; i++ {
		n.SetRandomDrop(spine, 0.01, false)
		n.IsolateSwitch(spine)
		n.UnisolateSwitch(spine)
		n.ReloadSwitch(spine)
		n.SetPodsetDegraded(0, 1, Degradation{ExtraLatencyMean: time.Millisecond})
		n.SetPodsetDegraded(0, 1, Degradation{})
	}
	close(stop)
	wg.Wait()
	if n.SwitchFaulty(spine) {
		t.Fatal("final reload did not clear the fault")
	}
}

func TestFCSErrorOnSYNOnlyProbes(t *testing.T) {
	// FCS loss scales with packet size; bare SYNs are small but not
	// immune. A huge per-byte rate must still kill even SYN probes.
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "intra-pod")
	n.SetFCSError(top.ToROf(src), 0.01) // absurd: ~46% per 60B packet per direction
	r := rng(67)
	failures := 0
	for i := 0; i < 200; i++ {
		res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(44000 + i), DstPort: 8765}, r)
		if res.Err != "" || res.Attempts > 1 {
			failures++
		}
	}
	if failures < 50 {
		t.Fatalf("failures+retx = %d of 200 despite massive FCS error rate", failures)
	}
}

func TestBlackholePairsAndFractionCombine(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "intra-pod")
	other := top.PodOf(src).Servers[2]
	// An explicit pair plus a zero fraction: only the listed pair dies.
	n.AddBlackhole(top.ToROf(src), Blackhole{
		Pairs: []AddrPair{{Src: top.Server(src).Addr, Dst: top.Server(dst).Addr}},
	})
	r := rng(68)
	if res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 45000, DstPort: 8765}, r); res.Err != ErrTimeout {
		t.Fatalf("listed pair err = %q", res.Err)
	}
	if res := n.Probe(ProbeSpec{Src: src, Dst: other, SrcPort: 45001, DstPort: 8765}, r); res.Err != "" {
		t.Fatalf("unlisted pair err = %q", res.Err)
	}
}

func TestProfileValidation(t *testing.T) {
	top := testTopology(t)
	// Every built-in profile passes.
	for _, p := range DefaultProfiles() {
		if _, err := New(top, Config{Profiles: []Profile{p, p}}); err != nil {
			t.Fatalf("built-in profile %s rejected: %v", p.Name, err)
		}
	}
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.HostBase = -time.Microsecond },
		func(p *Profile) { p.QueueMean = -time.Microsecond },
		func(p *Profile) { p.BurstProb = 1.5 },
		func(p *Profile) { p.HostDrop = -1e-6 },
		func(p *Profile) { p.SpineDrop = 2 },
		func(p *Profile) { p.RetryDropBoost = -0.1 },
	}
	for i, mut := range bad {
		p := DC1Profile()
		mut(&p)
		if _, err := New(top, Config{Profiles: []Profile{p, p}}); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}
