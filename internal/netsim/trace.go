package netsim

import (
	"math/rand/v2"

	"pingmesh/internal/topology"
)

// TraceResult is the outcome of one TTL-limited trace probe.
type TraceResult struct {
	// Hop is the switch that answered (the TTL'th hop of the path), or -1
	// if the destination host answered because TTL exceeded the path
	// length.
	Hop topology.SwitchID
	// OK reports whether an answer came back at all; false means the probe
	// or its reply was dropped along the way.
	OK bool
}

// TraceProbe simulates a TCP-traceroute probe: a packet with the given
// five-tuple and TTL travels up to ttl hops; the hop at which TTL expires
// answers, and the answer travels back through the same hops. Silent random
// drops affect trace probes exactly like data packets, which is what lets
// repeated traces localize a lossy switch (§5.2).
//
// ttl counts switch hops starting at 1. A ttl beyond the path length
// reaches the destination host.
func (n *Network) TraceProbe(spec ProbeSpec, ttl int, rng *rand.Rand) TraceResult {
	ft := n.faults.Load()
	ss, ds := n.top.Server(spec.Src), n.top.Server(spec.Dst)
	if ft.podsetDown[psKey{ss.DC, ss.Podset}] || ft.podsetDown[psKey{ds.DC, ds.Podset}] {
		return TraceResult{Hop: -1}
	}
	r := n.resolve(ft, spec.Src, spec.Dst, spec.SrcPort, spec.DstPort)
	if !r.ok || ttl < 1 {
		return TraceResult{Hop: -1}
	}
	hops := r.Hops()
	reach := ttl
	if reach > len(hops) {
		reach = len(hops)
	}

	// The probe must survive the forward trip through the hops before the
	// answering one, and the answer must survive the same hops backwards.
	// Each traversal applies the hop's random loss; black-holes apply too.
	p := 2 * n.profile(ss.DC).HostDrop // src host, both directions
	if ttl > len(hops) {
		p += 2 * n.profile(ds.DC).HostDrop // dst host answers
	}
	for i := 0; i < reach; i++ {
		sw := hops[i]
		s := n.top.Switch(sw)
		prof := n.profile(s.DC)
		var tier float64
		switch s.Tier {
		case topology.TierToR:
			tier = prof.ToRDrop
		case topology.TierLeaf:
			tier = prof.LeafDrop
		case topology.TierSpine:
			tier = prof.SpineDrop
		}
		f := &ft.perSwitch[sw]
		hop := tier + f.fcsPerByte*synPacketSize
		if d, ok := ft.tierDeg[tierKey{s.DC, s.Tier}]; ok {
			hop += d.DropProb
		}
		// A switch's silent random drop hits packets it forwards. The
		// answering switch itself only forwards the probe into its CPU, so
		// its fabric loss applies once rather than twice.
		if i == reach-1 && ttl <= len(hops) {
			hop += f.randomDrop
			p += hop
		} else {
			hop += f.randomDrop
			p += 2 * hop
		}
		for bi := range f.blackholes {
			b := &f.blackholes[bi]
			if b.matches(ss.Addr, ds.Addr, spec.SrcPort, spec.DstPort) ||
				b.matches(ds.Addr, ss.Addr, spec.DstPort, spec.SrcPort) {
				return TraceResult{Hop: -1}
			}
		}
	}
	if p > 1 {
		p = 1
	}
	if rng.Float64() < p {
		return TraceResult{Hop: -1}
	}
	if ttl > len(hops) {
		return TraceResult{Hop: -1, OK: true} // destination host answered
	}
	return TraceResult{Hop: hops[ttl-1], OK: true}
}
