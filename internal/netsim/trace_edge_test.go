package netsim

import (
	"math/rand/v2"
	"sync"
	"testing"

	"pingmesh/internal/topology"
)

func edgeTestNet(t *testing.T) (*Network, *topology.Topology) {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{{
		Name: "DC1", Podsets: 2, PodsPerPodset: 2, ServersPerPod: 2,
		LeavesPerPodset: 2, Spines: 2,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// A lossless profile makes the edge-case assertions deterministic.
	prof := Profile{Name: "lossless"}
	n, err := New(top, Config{Profiles: []Profile{prof}})
	if err != nil {
		t.Fatal(err)
	}
	return n, top
}

// TestTraceProbeTTLBeyondPath: a TTL larger than the path length reaches
// the destination host, which answers with Hop == -1 and OK.
func TestTraceProbeTTLBeyondPath(t *testing.T) {
	n, top := edgeTestNet(t)
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	spec := ProbeSpec{Src: src, Dst: dst, SrcPort: 40000, DstPort: 80}
	hops, ok := n.Path(src, dst, 40000, 80)
	if !ok {
		t.Fatal("no path")
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for _, ttl := range []int{len(hops) + 1, len(hops) + 5, 64} {
		res := n.TraceProbe(spec, ttl, rng)
		if !res.OK || res.Hop != -1 {
			t.Fatalf("ttl=%d: got %+v, want host answer {Hop:-1 OK:true}", ttl, res)
		}
	}
}

// TestTraceProbeTTLOnePinsFirstHop: TTL=1 must always answer from the
// source ToR — the first hop of every route.
func TestTraceProbeTTLOnePinsFirstHop(t *testing.T) {
	n, top := edgeTestNet(t)
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	spec := ProbeSpec{Src: src, Dst: dst, SrcPort: 41000, DstPort: 80}
	rng := rand.New(rand.NewPCG(2, 2))
	res := n.TraceProbe(spec, 1, rng)
	if !res.OK {
		t.Fatalf("lossless fabric dropped a TTL=1 trace: %+v", res)
	}
	if want := top.ToROf(src); res.Hop != want {
		t.Fatalf("TTL=1 answered by %v, want source ToR %v", res.Hop, want)
	}
	if res := n.TraceProbe(spec, 0, rng); res.OK || res.Hop != -1 {
		t.Fatalf("TTL=0 answered: %+v", res)
	}
}

// TestTraceProbeBlackholeKillsTrace: a black-hole on hop j kills every
// trace with TTL >= j but leaves TTL < j traces answering — the signature
// the diagnosis pin step keys on.
func TestTraceProbeBlackholeKillsTrace(t *testing.T) {
	n, top := edgeTestNet(t)
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[0].Pods[1].Servers[0] // same podset: 3 hops
	spec := ProbeSpec{Src: src, Dst: dst, SrcPort: 42000, DstPort: 80}
	hole := top.ToROf(dst) // hop 3
	n.AddBlackhole(hole, Blackhole{MatchFraction: 1})
	rng := rand.New(rand.NewPCG(3, 3))
	for ttl := 1; ttl <= 2; ttl++ {
		if res := n.TraceProbe(spec, ttl, rng); !res.OK {
			t.Fatalf("ttl=%d before the hole dropped: %+v", ttl, res)
		}
	}
	for _, ttl := range []int{3, 4, 10} {
		if res := n.TraceProbe(spec, ttl, rng); res.OK {
			t.Fatalf("ttl=%d crossed a full black-hole: %+v", ttl, res)
		}
	}
}

// TestTraceProbeConcurrentFaultInjection races trace probes against fault
// mutation — the portal serves /diagnose while operators inject and clear
// faults. Run under -race.
func TestTraceProbeConcurrentFaultInjection(t *testing.T) {
	n, top := edgeTestNet(t)
	src := top.DCs[0].Podsets[0].Pods[0].Servers[0]
	dst := top.DCs[0].Podsets[1].Pods[0].Servers[0]
	spec := ProbeSpec{Src: src, Dst: dst, SrcPort: 43000, DstPort: 80}
	leaf := top.DCs[0].Podsets[0].Leaves[0]
	spine := top.DCs[0].Spines[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n.TraceProbe(spec, 1+i%8, rng)
			}
		}(uint64(g))
	}
	for i := 0; i < 200; i++ {
		n.AddBlackhole(leaf, Blackhole{MatchFraction: 0.5})
		n.SetRandomDrop(spine, 0.1, false)
		n.ReloadSwitch(leaf)
		n.ReloadSwitch(spine)
	}
	close(stop)
	wg.Wait()
}

// TestAppendPathMatchesPath: AppendPath must return exactly Path's hops,
// into the caller's buffer, without allocating when capacity suffices.
func TestAppendPathMatchesPath(t *testing.T) {
	n, top := edgeTestNet(t)
	servers := top.Servers()
	buf := make([]topology.SwitchID, 0, 8)
	for i := 0; i < len(servers); i++ {
		for j := 0; j < len(servers); j++ {
			if i == j {
				continue
			}
			src, dst := servers[i].ID, servers[j].ID
			want, wantOK := n.Path(src, dst, 44000, 80)
			got, ok := n.AppendPath(buf[:0], src, dst, 44000, 80)
			if ok != wantOK {
				t.Fatalf("pair (%d,%d): ok=%v want %v", src, dst, ok, wantOK)
			}
			if len(got) != len(want) {
				t.Fatalf("pair (%d,%d): %v vs %v", src, dst, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("pair (%d,%d): %v vs %v", src, dst, got, want)
				}
			}
		}
	}
	src := servers[0].ID
	dst := servers[len(servers)-1].ID
	avg := testing.AllocsPerRun(1000, func() {
		buf2, _ := n.AppendPath(buf[:0], src, dst, 44000, 80)
		buf = buf2[:0]
	})
	if avg != 0 {
		t.Fatalf("AppendPath allocates %.2f allocs/op with capacity, want 0", avg)
	}
}
