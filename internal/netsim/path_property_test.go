package netsim

import (
	"testing"
	"testing/quick"

	"pingmesh/internal/topology"
)

// Property: for any five-tuple, the resolved path starts at the source
// ToR, ends at the destination ToR, never repeats a switch, and respects
// tier ordering (ToR, [Leaf, [Spine...] Leaf,] ToR).
func TestPathStructureProperty(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	servers := top.NumServers()
	f := func(srcRaw, dstRaw uint16, sport, dport uint16) bool {
		src := topology.ServerID(int(srcRaw) % servers)
		dst := topology.ServerID(int(dstRaw) % servers)
		if src == dst {
			return true
		}
		hops, ok := n.Path(src, dst, sport, dport)
		if !ok || len(hops) == 0 {
			return false
		}
		if hops[0] != top.ToROf(src) || hops[len(hops)-1] != top.ToROf(dst) {
			return false
		}
		seen := map[topology.SwitchID]bool{}
		for _, h := range hops {
			if seen[h] {
				return false
			}
			seen[h] = true
		}
		// Tier sequence: must rise to at most spine then fall; encoded as
		// ToR(0) Leaf(1) Spine(2).
		tiers := make([]int, len(hops))
		for i, h := range hops {
			tiers[i] = int(top.Switch(h).Tier)
		}
		peak := 0
		for i := 1; i < len(tiers); i++ {
			if tiers[i] > tiers[i-1] {
				if peak == 2 {
					return false // rising again after the descent began
				}
			} else if tiers[i] < tiers[i-1] {
				peak = 2
			}
		}
		// Path length matches locality.
		switch {
		case top.SamePod(src, dst):
			return len(hops) == 1
		case top.SamePodset(src, dst):
			return len(hops) == 3
		case top.SameDC(src, dst):
			return len(hops) == 5
		default:
			return len(hops) == 6
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ECMP is deterministic per tuple and roughly balanced across
// the spine tier over many tuples.
func TestECMPBalanceProperty(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "cross-podset")
	counts := map[topology.SwitchID]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		hops, ok := n.Path(src, dst, uint16(30000+i), 8765)
		if !ok {
			t.Fatal("no path")
		}
		counts[hops[2]]++
	}
	spines := len(top.DCs[0].Spines)
	expected := trials / spines
	for sw, c := range counts {
		if c < expected/2 || c > expected*2 {
			t.Fatalf("spine %v got %d of %d trials, expected ~%d", sw, c, trials, expected)
		}
	}
	if len(counts) != spines {
		t.Fatalf("only %d of %d spines used", len(counts), spines)
	}
}
