package netsim

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// diffNetwork builds a two-DC fabric with a time-varying load profile so
// the differential test exercises the load-dependent rng draws too.
func diffNetwork(t testing.TB) *Network {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
		{Name: "DC2", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	p1 := DC1Profile()
	p1.Load = func(ts time.Time) float64 {
		return 1 + 0.5*math.Sin(float64(ts.Unix()%3600)/3600*2*math.Pi)
	}
	n, err := New(top, Config{Profiles: []Profile{p1, DC2Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// diffPairs covers every route shape: same pod, same podset, cross
// podset, cross DC, and both directions.
func diffPairs(n *Network) [][2]topology.ServerID {
	top := n.Topology()
	pod0 := &top.DCs[0].Podsets[0].Pods[0]
	pod1 := &top.DCs[0].Podsets[0].Pods[1]
	pod2 := &top.DCs[0].Podsets[1].Pods[0]
	podB := &top.DCs[1].Podsets[0].Pods[0]
	return [][2]topology.ServerID{
		{pod0.Servers[0], pod0.Servers[1]}, // same pod
		{pod0.Servers[0], pod1.Servers[2]}, // same podset
		{pod0.Servers[1], pod2.Servers[0]}, // cross podset
		{pod2.Servers[0], pod0.Servers[1]}, // cross podset, reversed
		{pod0.Servers[0], podB.Servers[0]}, // cross DC
		{podB.Servers[3], pod2.Servers[2]}, // cross DC, reversed
	}
}

// TestProbePlanDifferential pins the plan-cached Probe (and PairProber)
// to the retained reference path: byte-identical Results and identical
// rng consumption, across every route shape, spec variation, and live
// fault injection mid-run. The probers are created once up front, so the
// test also proves epoch invalidation across fault-table swaps.
func TestProbePlanDifferential(t *testing.T) {
	n := diffNetwork(t)
	top := n.Topology()
	pairs := diffPairs(n)

	probers := make([]*PairProber, len(pairs))
	for i, pr := range pairs {
		probers[i] = n.PairProber(pr[0], pr[1])
	}

	rngCached := rand.New(rand.NewPCG(11, 13))
	rngRef := rand.New(rand.NewPCG(11, 13))
	rngProber := rand.New(rand.NewPCG(11, 13))

	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	leaf00 := top.DCs[0].Podsets[0].Leaves[0]
	spine0 := top.DCs[0].Spines[1]
	torOfPair2 := top.ToROf(pairs[2][0])

	srv0, srv2 := top.Server(pairs[0][0]), top.Server(pairs[2][1])
	steps := []struct {
		name   string
		mutate func()
	}{
		{"healthy", func() {}},
		{"blackhole-fraction", func() {
			n.AddBlackhole(torOfPair2, Blackhole{MatchFraction: 0.5, IncludePorts: true})
		}},
		{"blackhole-pair", func() {
			n.AddBlackhole(leaf00, Blackhole{Pairs: []AddrPair{{Src: srv0.Addr, Dst: srv2.Addr}}})
		}},
		{"random-drop", func() { n.SetRandomDrop(spine0, 0.2, false) }},
		{"fcs-error", func() { n.SetFCSError(leaf00, 1e-5) }},
		{"extra-latency", func() { n.SetExtraLatency(leaf00, 300*time.Microsecond) }},
		{"tier-degraded", func() {
			n.SetTierDegraded(0, topology.TierSpine, Degradation{DropProb: 0.05, ExtraLatencyMean: 200 * time.Microsecond})
		}},
		{"podset-degraded", func() {
			n.SetPodsetDegraded(0, 0, Degradation{DropProb: 0.02, ExtraLatencyMean: 150 * time.Microsecond})
			n.SetPodsetDegraded(0, 1, Degradation{DropProb: 0.01})
		}},
		{"leaf-isolated", func() { n.IsolateSwitch(top.DCs[0].Podsets[0].Leaves[1]) }},
		{"podset-unreachable", func() {
			// Isolate every leaf of DC1 podset 1: cross-podset pairs into
			// it lose their route entirely.
			for _, l := range top.DCs[0].Podsets[1].Leaves {
				n.IsolateSwitch(l)
			}
		}},
		{"podset-down", func() { n.SetPodsetDown(0, 1, true) }},
		{"repair", func() {
			n.SetPodsetDown(0, 1, false)
			for _, l := range top.DCs[0].Podsets[1].Leaves {
				n.UnisolateSwitch(l)
			}
			n.ReloadSwitch(torOfPair2)
			n.ReplaceSwitch(spine0)
			n.SetTierDegraded(0, topology.TierSpine, Degradation{})
		}},
	}

	protos := []probe.Proto{probe.TCP, probe.HTTP}
	for _, step := range steps {
		step.mutate()
		for pi, pr := range pairs {
			for i := 0; i < 200; i++ {
				spec := ProbeSpec{
					Src: pr[0], Dst: pr[1],
					SrcPort: uint16(33000 + (pi*977+i*31)%28000),
					DstPort: uint16(8000 + i%3),
					Proto:   protos[i%2],
					Start:   t0.Add(time.Duration(i) * 17 * time.Second),
				}
				if i%3 == 1 {
					spec.QoS = probe.QoSLow
				}
				if i%4 == 2 {
					spec.PayloadLen = 512
				}
				ref := n.probeReference(spec, rngRef)
				got := n.Probe(spec, rngCached)
				if got != ref {
					t.Fatalf("step %s pair %d probe %d: cached %+v != reference %+v", step.name, pi, i, got, ref)
				}
				viaProber := probers[pi].Probe(&spec, rngProber)
				if viaProber != ref {
					t.Fatalf("step %s pair %d probe %d: prober %+v != reference %+v", step.name, pi, i, viaProber, ref)
				}
			}
		}
		// Identical rng consumption: after identical draw sequences the
		// next value from each stream must agree.
		want := rngRef.Uint64()
		if g := rngCached.Uint64(); g != want {
			t.Fatalf("step %s: cached path consumed different rng draws", step.name)
		}
		if g := rngProber.Uint64(); g != want {
			t.Fatalf("step %s: prober path consumed different rng draws", step.name)
		}
	}
}

// TestProbePlanIsolatedToRUnreachable pins the plan path on the
// structural no-route case (a pair's own ToR isolated).
func TestProbePlanIsolatedToRUnreachable(t *testing.T) {
	n := diffNetwork(t)
	pairs := diffPairs(n)
	n.IsolateSwitch(n.Topology().ToROf(pairs[1][0]))
	rngA := rand.New(rand.NewPCG(5, 6))
	rngB := rand.New(rand.NewPCG(5, 6))
	spec := ProbeSpec{Src: pairs[1][0], Dst: pairs[1][1], SrcPort: 40000, DstPort: 8765}
	got, ref := n.Probe(spec, rngA), n.probeReference(spec, rngB)
	if got != ref || got.Err != ErrUnreachable {
		t.Fatalf("cached %+v reference %+v", got, ref)
	}
}

// TestProbePlanConcurrentFaultInjection hammers the epoch-keyed cache:
// prober goroutines run cached probes while the main goroutine swaps the
// fault table continuously. Run under -race in CI tier 2; correctness
// here is "no race, no panic, plausible results".
func TestProbePlanConcurrentFaultInjection(t *testing.T) {
	n := diffNetwork(t)
	top := n.Topology()
	pairs := diffPairs(n)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			pr := n.PairProber(pairs[w%len(pairs)][0], pairs[w%len(pairs)][1])
			var i int
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				spec := ProbeSpec{
					Src: pairs[w%len(pairs)][0], Dst: pairs[w%len(pairs)][1],
					SrcPort: uint16(33000 + i%28000), DstPort: 8765,
				}
				var res Result
				if i%2 == 0 {
					res = n.Probe(spec, rng)
				} else {
					res = pr.Probe(&spec, rng)
				}
				if res.Err == "" && res.RTT <= 0 {
					t.Errorf("non-positive RTT on success: %+v", res)
					return
				}
				pr.SrcUp()
			}
		}(w)
	}
	leaf := top.DCs[0].Podsets[0].Leaves[0]
	spine := top.DCs[0].Spines[0]
	for i := 0; i < 300; i++ {
		n.SetRandomDrop(spine, float64(i%5)*0.01, false)
		n.SetExtraLatency(leaf, time.Duration(i%3)*100*time.Microsecond)
		n.IsolateSwitch(leaf)
		n.UnisolateSwitch(leaf)
		n.SetPodsetDown(0, 1, i%2 == 0)
		n.AddBlackhole(leaf, Blackhole{MatchFraction: 0.01})
		n.ReloadSwitch(leaf)
	}
	n.SetPodsetDown(0, 1, false)
	close(stop)
	wg.Wait()
}

// TestProbePlanZeroAlloc guards the steady-state hot path: with a warm
// plan cache both Probe and PairProber must not allocate. Wired into CI
// tier 3 via the ZeroAlloc name filter.
func TestProbePlanZeroAlloc(t *testing.T) {
	n := diffNetwork(t)
	pairs := diffPairs(n)
	rng := rand.New(rand.NewPCG(21, 22))
	spec := ProbeSpec{Src: pairs[2][0], Dst: pairs[2][1], SrcPort: 40000, DstPort: 8765}
	n.Probe(spec, rng) // warm the shared cache
	if avg := testing.AllocsPerRun(200, func() {
		spec.SrcPort++
		n.Probe(spec, rng)
	}); avg != 0 {
		t.Errorf("Probe allocates %.2f/op on the steady-state path", avg)
	}
	pr := n.PairProber(pairs[4][0], pairs[4][1])
	spec = ProbeSpec{Src: pairs[4][0], Dst: pairs[4][1], SrcPort: 40000, DstPort: 8765}
	pr.Probe(&spec, rng)
	if avg := testing.AllocsPerRun(200, func() {
		spec.SrcPort++
		pr.Probe(&spec, rng)
	}); avg != 0 {
		t.Errorf("PairProber.Probe allocates %.2f/op on the steady-state path", avg)
	}
}
