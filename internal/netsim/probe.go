package netsim

import (
	"math/rand/v2"
	"net/netip"
	"time"

	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// TCP SYN retransmission behaviour of the servers (§4.2): initial timeout
// 3 seconds, doubled per retry, two retries. A probe whose first SYN is
// dropped therefore measures ~3s RTT; two drops measure ~9s; three drops
// fail the connection after 21 seconds.
const (
	SYNTimeout    = 3 * time.Second
	SYNRetries    = 2
	ConnectFailAt = SYNTimeout + 2*SYNTimeout + 4*SYNTimeout // 21s
)

// synRetryOffsets[i] is how long the i-th SYN transmission waits before it
// is sent, relative to probe start.
var synRetryOffsets = [SYNRetries + 1]time.Duration{0, SYNTimeout, SYNTimeout + 2*SYNTimeout}

// Payload data packets are retransmitted by TCP with a minimum RTO of
// 300ms once the connection is established.
const (
	payloadRTO        = 300 * time.Millisecond
	payloadMaxRetries = 5
)

// Approximate serialization cost per byte per link at 10GbE (0.8ns/byte).
const perByteNanosPerLink = 0.8

const synPacketSize = 60 // TCP SYN on the wire, bytes

// ProbeSpec describes one probe to simulate.
type ProbeSpec struct {
	Src, Dst         topology.ServerID
	SrcPort, DstPort uint16
	Proto            probe.Proto
	QoS              probe.QoS
	// PayloadLen, when positive, performs a payload echo after connection
	// setup and reports PayloadRTT.
	PayloadLen int
	// Start is the probe send time on the experiment clock; it drives
	// time-varying load profiles.
	Start time.Time
}

// Result is the outcome of a simulated probe.
type Result struct {
	// RTT is the connection setup round trip, including any SYN retransmit
	// waits. Valid only when Err is empty.
	RTT time.Duration
	// PayloadRTT is the payload echo round trip (0 when no payload).
	PayloadRTT time.Duration
	// Attempts is the number of SYN transmissions used (1..3).
	Attempts int
	// Err is empty on success; otherwise "unreachable", "timeout" or
	// "payload-timeout".
	Err string
	// Elapsed is total wall time the probe consumed on the agent.
	Elapsed time.Duration
}

// Errors reported by simulated probes.
const (
	ErrUnreachable    = "unreachable"
	ErrTimeout        = "timeout"
	ErrPayloadTimeout = "payload-timeout"
)

// probeReference simulates one TCP/HTTP probe by re-deriving route, drop
// and latency state from the fault table on every call. It is the
// semantic reference for the plan-cached fast path in plan.go: the two
// must stay byte-identical, including the exact sequence of rng draws
// (see TestProbePlanDifferential). Keep every floating-point expression
// here in sync with its cached counterpart — the order of operations
// matters for bit-exactness.
func (n *Network) probeReference(spec ProbeSpec, rng *rand.Rand) Result {
	ft := n.faults.Load()
	ss, ds := n.top.Server(spec.Src), n.top.Server(spec.Dst)
	if ft.podsetDown[psKey{ss.DC, ss.Podset}] || ft.podsetDown[psKey{ds.DC, ds.Podset}] {
		return Result{Err: ErrUnreachable, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
	}
	r := n.resolve(ft, spec.Src, spec.Dst, spec.SrcPort, spec.DstPort)
	if !r.ok {
		return Result{Err: ErrUnreachable, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
	}

	// A black-hole match is deterministic: every retransmission of the
	// same five-tuple follows the same path and dies at the same TCAM
	// entry, which is exactly why affected pairs cannot talk at all (§5.1).
	if n.blackholed(ft, &r, ss.Addr, ds.Addr, spec.SrcPort, spec.DstPort) {
		return Result{Err: ErrTimeout, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
	}

	pDrop := n.roundTripDropProb(ft, &r, ss, ds, synPacketSize)
	res := Result{}
	for attempt := 0; attempt <= SYNRetries; attempt++ {
		p := pDrop
		if attempt > 0 {
			// Successive drops are correlated: congestion persists across
			// the retransmission (§4.2).
			p += n.profile(ss.DC).RetryDropBoost
		}
		res.Attempts = attempt + 1
		if rng.Float64() < p {
			continue
		}
		rtt := n.sampleRTT(ft, &r, ss, ds, spec, synPacketSize, rng)
		res.RTT = synRetryOffsets[attempt] + rtt
		res.Elapsed = res.RTT
		if spec.PayloadLen > 0 {
			n.payloadEcho(ft, &r, ss, ds, spec, rng, &res)
		}
		return res
	}
	return Result{Err: ErrTimeout, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
}

// payloadEcho simulates sending PayloadLen bytes and receiving the echo.
func (n *Network) payloadEcho(ft *faultTable, r *route, ss, ds *topology.Server, spec ProbeSpec, rng *rand.Rand, res *Result) {
	pktSize := spec.PayloadLen + 60
	pDrop := n.roundTripDropProb(ft, r, ss, ds, pktSize)
	var wait time.Duration
	for attempt := 0; attempt <= payloadMaxRetries; attempt++ {
		if rng.Float64() < pDrop {
			wait += payloadRTO << attempt
			continue
		}
		rtt := n.sampleRTT(ft, r, ss, ds, spec, pktSize, rng)
		prof := n.profile(ds.DC)
		app := prof.AppEchoBase + expDur(rng, prof.AppEchoNoise)
		if spec.Proto == probe.HTTP {
			app += prof.HTTPOverhead
		}
		res.PayloadRTT = wait + rtt + app
		res.Elapsed += res.PayloadRTT
		return
	}
	res.Err = ErrPayloadTimeout
	res.Elapsed += wait
}

// blackholed checks every hop's black-hole rules in both directions. The
// reverse direction sees swapped addresses and ports, so a TCAM entry can
// kill one direction of a pair while the reverse pair stays clean — the
// "A cannot talk to B but B can talk to A" asymmetry of §5.1.
func (n *Network) blackholed(ft *faultTable, r *route, srcAddr, dstAddr netip.Addr, sport, dport uint16) bool {
	for _, sw := range r.Hops() {
		for i := range ft.perSwitch[sw].blackholes {
			b := &ft.perSwitch[sw].blackholes[i]
			if b.matches(srcAddr, dstAddr, sport, dport) || b.matches(dstAddr, srcAddr, dport, sport) {
				return true
			}
		}
	}
	return false
}

// roundTripDropProb sums the (small) per-traversal random drop
// probabilities over the full round trip: two host stacks in each
// direction, every switch twice, the WAN twice if crossed.
func (n *Network) roundTripDropProb(ft *faultTable, r *route, ss, ds *topology.Server, pktSize int) float64 {
	sp, dp := n.profile(ss.DC), n.profile(ds.DC)
	p := 2 * (sp.HostDrop + dp.HostDrop)
	for _, sw := range r.Hops() {
		s := n.top.Switch(sw)
		prof := n.profile(s.DC)
		var tier float64
		switch s.Tier {
		case topology.TierToR:
			tier = prof.ToRDrop
		case topology.TierLeaf:
			tier = prof.LeafDrop
		case topology.TierSpine:
			tier = prof.SpineDrop
		}
		f := &ft.perSwitch[sw]
		hop := tier + f.randomDrop + f.fcsPerByte*float64(pktSize)
		if d, ok := ft.tierDeg[tierKey{s.DC, s.Tier}]; ok {
			hop += d.DropProb
		}
		p += 2 * hop
	}
	if d, ok := ft.podsetDeg[psKey{ss.DC, ss.Podset}]; ok {
		p += 2 * d.DropProb
	}
	if d, ok := ft.podsetDeg[psKey{ds.DC, ds.Podset}]; ok && (ss.DC != ds.DC || ss.Podset != ds.Podset) {
		p += 2 * d.DropProb
	}
	if r.crossDC {
		p += 2 * n.cfg.InterDC.Drop
	}
	if p > 1 {
		p = 1
	}
	return p
}

// sampleRTT draws one network round-trip-time for a packet of pktSize
// bytes along route r.
func (n *Network) sampleRTT(ft *faultTable, r *route, ss, ds *topology.Server, spec ProbeSpec, pktSize int, rng *rand.Rand) time.Duration {
	sp, dp := n.profile(ss.DC), n.profile(ds.DC)
	loadS, loadD := sp.load(spec.Start), dp.load(spec.Start)
	qos := 1.0
	if spec.QoS == probe.QoSLow {
		qos = n.qosLow
	}

	// End-host stacks: send+receive on each host per direction.
	d := 2*sp.HostBase + 2*dp.HostBase
	d += expDur(rng, sp.HostNoise) + expDur(rng, dp.HostNoise)

	// Switch traversals, twice each (forward and reverse).
	for _, sw := range r.Hops() {
		s := n.top.Switch(sw)
		prof := n.profile(s.DC)
		load := loadS
		if s.DC == ds.DC {
			load = loadD
		}
		d += 2 * prof.SwitchBase
		d += expDur(rng, scaleDur(prof.QueueMean, load*qos))
		d += expDur(rng, scaleDur(prof.QueueMean, load*qos))
		f := &ft.perSwitch[sw]
		if f.extraLatMean > 0 {
			d += expDur(rng, f.extraLatMean) + expDur(rng, f.extraLatMean)
		}
		if deg, ok := ft.tierDeg[tierKey{s.DC, s.Tier}]; ok && deg.ExtraLatencyMean > 0 {
			d += expDur(rng, deg.ExtraLatencyMean) + expDur(rng, deg.ExtraLatencyMean)
		}
	}

	// Congested-queue bursts: approximate "at least one of the traversals
	// hit a burst" with one draw per direction.
	hops := float64(r.n)
	if rng.Float64() < clamp01(hops*sp.BurstProb*loadS*qos) {
		d += expDur(rng, sp.BurstMean)
	}
	if rng.Float64() < clamp01(hops*dp.BurstProb*loadD*qos) {
		d += expDur(rng, dp.BurstMean)
	}
	// Deep-buffer congestion episodes (per probe).
	if rng.Float64() < clamp01((sp.BigBurstProb*loadS+dp.BigBurstProb*loadD)/2*qos) {
		d += expDur(rng, (sp.BigBurstMean+dp.BigBurstMean)/2)
	}
	// End-host scheduling stalls (per probe).
	if rng.Float64() < sp.StallProb {
		d += sp.StallMin + expDur(rng, sp.StallMean)
	} else if rng.Float64() < dp.StallProb {
		d += dp.StallMin + expDur(rng, dp.StallMean)
	}

	// Podset degradations (broadcast storms etc.).
	if deg, ok := ft.podsetDeg[psKey{ss.DC, ss.Podset}]; ok && deg.ExtraLatencyMean > 0 {
		d += expDur(rng, deg.ExtraLatencyMean) + expDur(rng, deg.ExtraLatencyMean)
	}
	if deg, ok := ft.podsetDeg[psKey{ds.DC, ds.Podset}]; ok && deg.ExtraLatencyMean > 0 && (ss.DC != ds.DC || ss.Podset != ds.Podset) {
		d += expDur(rng, deg.ExtraLatencyMean) + expDur(rng, deg.ExtraLatencyMean)
	}

	// WAN propagation and jitter.
	if r.crossDC {
		d += 2*n.cfg.InterDC.BaseOneWay + expDur(rng, n.cfg.InterDC.JitterMean) + expDur(rng, n.cfg.InterDC.JitterMean)
	}

	// Serialization of the packet and its ack across every link.
	d += time.Duration(perByteNanosPerLink * float64(pktSize) * float64(2*(r.n+1)))

	return d
}

func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

func clamp01(p float64) float64 {
	if p > 1 {
		return 1
	}
	return p
}
