package netsim

import (
	"math/rand/v2"
	"net/netip"
	"sync"
	"time"

	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

// This file implements the probe-plan cache: the simulation hot path.
//
// Every quantity Probe derives from the topology and the fault table is
// invariant per (src, dst) pair for the lifetime of one fault-table
// snapshot — the ECMP candidate sets (isolation-filtered), the per-hop
// profile pointers and tier drop rates, the tier/podset degradation
// terms, the deterministic RTT base, and (when no per-switch loss faults
// are installed) the whole round-trip drop probability. A pairPlan
// precomputes all of it once; the per-probe work left is the five-tuple
// port hash, the cached member pick, and the same sequence of rng draws
// the reference path performs.
//
// Invalidation is by fault-table epoch: plans embed the *faultTable they
// were built from, and every lookup compares it against the current
// n.faults.Load() pointer. Fault injection publishes a new table, so all
// cached plans go stale at once and rebuild lazily — no explicit
// invalidation hooks, no locks on the probe path.
//
// Bit-exactness contract: a plan may precompute a floating-point value
// only by executing the identical expression (same operations, same
// association order) the reference path executes, and may skip an
// addition only when the skipped term is exactly +0. Integer Duration
// sums may be reassociated freely. The differential test in plan_test.go
// pins Probe to probeReference byte for byte, rng draw for rng draw.

// planStage is one hop of the precomputed path: either a fixed switch
// (the pair's ToRs) or an ECMP stage with its isolation-filtered members.
type planStage struct {
	// faults points at the alive members' fault entries inside the plan's
	// fault table, in pickECMP iteration order. len >= 1.
	faults []*switchFault
	// hashPrefix is the FNV-1a state after salt and addresses; only the
	// four port bytes remain to be folded per probe. Unused when the
	// stage has a single alive member (the pick is then unconditional,
	// exactly like pickECMP with alive == 1).
	hashPrefix uint64
	// mask is len(faults)-1 when that count is a power of two (the usual
	// fabric widths): h&mask == h%len then, without the 64-bit division.
	// 0 means "use %" (and single-member stages never hash at all).
	mask uint64
	// prof is the DC profile every member shares (one stage never spans
	// DCs or tiers).
	prof *Profile
	// useDstLoad mirrors the reference path's "s.DC == ds.DC" load pick.
	useDstLoad bool
	// tierDrop is the per-traversal drop rate of the members' tier.
	tierDrop float64
	// tierDegDrop and tierDegLat are the tier degradation terms, zero
	// when no degradation is installed (adding +0 is exact).
	tierDegDrop float64
	tierDegLat  time.Duration
}

// pairPlan caches everything Probe can know about a (src, dst) pair
// before seeing the five-tuple ports and the rng.
type pairPlan struct {
	ft *faultTable // epoch key: stale when != n.faults.Load()

	srcDown, dstDown bool // podset power state at plan build
	ok               bool // a route exists for every five-tuple
	crossDC          bool

	nHops  int
	stages [6]planStage
	hopsF  float64 // float64(nHops), for the burst probability products
	linksF float64 // float64(2*(nHops+1)), for the serialization term

	// allFixed is true when every stage has exactly one alive member (the
	// whole intra-pod class, plus degenerate fabrics): the member choice
	// is then port-independent and fixedChosen is the resolved path.
	allFixed    bool
	fixedChosen [6]*switchFault

	sp, dp           *Profile
	srcAddr, dstAddr netip.Addr

	// anyBH is true when any alive candidate on any stage carries
	// black-hole rules; when false the per-hop rule scan is skipped.
	anyBH bool

	// dropConst is true when no alive candidate has per-switch loss
	// (randomDrop / fcsPerByte); the round-trip drop probability is then
	// member- and packet-size-independent and fully precomputed.
	dropConst bool
	pDropSyn  float64

	// Precomputed pieces of the reference float expressions. Each is the
	// result of the exact expression the reference path evaluates.
	hostDrop2   float64 // 2 * (sp.HostDrop + dp.HostDrop)
	degSrcDrop2 float64 // 2 * podsetDeg[src].DropProb, else 0
	degDstDrop2 float64 // 2 * podsetDeg[dst].DropProb (distinct podset), else 0
	wanDrop2    float64 // 2 * InterDC.Drop
	degSrcLat   time.Duration
	degDstLat   time.Duration

	// rttFixed sums every deterministic Duration term of sampleRTT: host
	// and switch bases plus the WAN propagation when crossDC. Integer
	// arithmetic, so reassociation is exact.
	rttFixed time.Duration
	// serSyn is the serialization term for a SYN-sized packet.
	serSyn time.Duration
}

// buildPlan precomputes the probe plan for (src, dst) against ft.
func (n *Network) buildPlan(ft *faultTable, src, dst topology.ServerID) *pairPlan {
	ss, ds := n.top.Server(src), n.top.Server(dst)
	pl := &pairPlan{
		ft:      ft,
		sp:      n.profile(ss.DC),
		dp:      n.profile(ds.DC),
		srcAddr: ss.Addr,
		dstAddr: ds.Addr,
	}
	pl.srcDown = ft.podsetDown[psKey{ss.DC, ss.Podset}]
	pl.dstDown = ft.podsetDown[psKey{ds.DC, ds.Podset}]

	srcToR, dstToR := n.top.ToROf(src), n.top.ToROf(dst)
	if ft.perSwitch[srcToR].isolated || ft.perSwitch[dstToR].isolated {
		return pl // ok stays false: unreachable for every five-tuple
	}
	pl.ok = true

	// addStage appends one hop. members must share DC and tier (ToRs are
	// a single-member stage; ECMP stages are a podset's leaves or a DC's
	// spines). Mirrors resolve(): isolation-filtered members in order,
	// hash only when more than one candidate survives.
	addStage := func(members []topology.SwitchID, salt uint64) {
		if !pl.ok {
			return
		}
		st := planStage{}
		for _, m := range members {
			if !ft.perSwitch[m].isolated {
				st.faults = append(st.faults, &ft.perSwitch[m])
			}
		}
		if len(st.faults) == 0 {
			pl.ok = false
			return
		}
		if m := len(st.faults); m > 1 {
			st.hashPrefix = hash5Prefix(ss.Addr, ds.Addr, salt)
			if m&(m-1) == 0 {
				st.mask = uint64(m - 1)
			}
		}
		sw := n.top.Switch(members[0])
		st.prof = n.profile(sw.DC)
		st.useDstLoad = sw.DC == ds.DC
		switch sw.Tier {
		case topology.TierToR:
			st.tierDrop = st.prof.ToRDrop
		case topology.TierLeaf:
			st.tierDrop = st.prof.LeafDrop
		case topology.TierSpine:
			st.tierDrop = st.prof.SpineDrop
		}
		if d, okDeg := ft.tierDeg[tierKey{sw.DC, sw.Tier}]; okDeg {
			st.tierDegDrop = d.DropProb
			st.tierDegLat = d.ExtraLatencyMean
		}
		pl.stages[pl.nHops] = st
		pl.nHops++
	}
	fixed := func(sw topology.SwitchID) { addStage([]topology.SwitchID{sw}, 0) }

	switch {
	case srcToR == dstToR: // same pod: one ToR hop
		fixed(srcToR)
	case ss.DC == ds.DC && ss.Podset == ds.Podset: // same podset
		fixed(srcToR)
		addStage(n.top.DCs[ss.DC].Podsets[ss.Podset].Leaves, 1)
		fixed(dstToR)
	case ss.DC == ds.DC: // cross-podset, same DC
		fixed(srcToR)
		addStage(n.top.DCs[ss.DC].Podsets[ss.Podset].Leaves, 1)
		addStage(n.top.DCs[ss.DC].Spines, 2)
		addStage(n.top.DCs[ds.DC].Podsets[ds.Podset].Leaves, 4)
		fixed(dstToR)
	default: // cross-DC over the WAN
		pl.crossDC = true
		fixed(srcToR)
		addStage(n.top.DCs[ss.DC].Podsets[ss.Podset].Leaves, 1)
		addStage(n.top.DCs[ss.DC].Spines, 2)
		addStage(n.top.DCs[ds.DC].Spines, 3)
		addStage(n.top.DCs[ds.DC].Podsets[ds.Podset].Leaves, 4)
		fixed(dstToR)
	}
	if !pl.ok {
		return pl
	}

	pl.allFixed = true
	for i := 0; i < pl.nHops; i++ {
		if len(pl.stages[i].faults) != 1 {
			pl.allFixed = false
			break
		}
		pl.fixedChosen[i] = pl.stages[i].faults[0]
	}
	if !pl.allFixed {
		pl.fixedChosen = [6]*switchFault{}
	}

	pl.hopsF = float64(pl.nHops)
	pl.linksF = float64(2 * (pl.nHops + 1))
	pl.hostDrop2 = 2 * (pl.sp.HostDrop + pl.dp.HostDrop)
	pl.wanDrop2 = 2 * n.cfg.InterDC.Drop
	if d, okDeg := ft.podsetDeg[psKey{ss.DC, ss.Podset}]; okDeg {
		pl.degSrcDrop2 = 2 * d.DropProb
		pl.degSrcLat = d.ExtraLatencyMean
	}
	if d, okDeg := ft.podsetDeg[psKey{ds.DC, ds.Podset}]; okDeg && (ss.DC != ds.DC || ss.Podset != ds.Podset) {
		pl.degDstDrop2 = 2 * d.DropProb
		pl.degDstLat = d.ExtraLatencyMean
	}

	pl.dropConst = true
	for i := 0; i < pl.nHops; i++ {
		for _, f := range pl.stages[i].faults {
			if len(f.blackholes) > 0 {
				pl.anyBH = true
			}
			if f.randomDrop != 0 || f.fcsPerByte != 0 {
				pl.dropConst = false
			}
		}
	}
	if pl.dropConst {
		// Member choice cannot affect the sum, so evaluate the reference
		// loop once with the first candidate of every stage. fcsPerByte
		// is zero everywhere, so the result also holds for payload-sized
		// packets.
		var chosen [6]*switchFault
		for i := 0; i < pl.nHops; i++ {
			chosen[i] = pl.stages[i].faults[0]
		}
		pl.pDropSyn = pl.dropProb(&chosen, synPacketSize)
	}

	pl.rttFixed = 2*pl.sp.HostBase + 2*pl.dp.HostBase
	for i := 0; i < pl.nHops; i++ {
		pl.rttFixed += 2 * pl.stages[i].prof.SwitchBase
	}
	if pl.crossDC {
		pl.rttFixed += 2 * n.cfg.InterDC.BaseOneWay
	}
	pl.serSyn = time.Duration(perByteNanosPerLink * float64(synPacketSize) * pl.linksF)
	return pl
}

// dropProb replicates roundTripDropProb float-op for float-op over the
// chosen members.
func (pl *pairPlan) dropProb(chosen *[6]*switchFault, pktSize int) float64 {
	p := pl.hostDrop2
	for i := 0; i < pl.nHops; i++ {
		st := &pl.stages[i]
		f := chosen[i]
		hop := st.tierDrop + f.randomDrop + f.fcsPerByte*float64(pktSize)
		hop += st.tierDegDrop
		p += 2 * hop
	}
	p += pl.degSrcDrop2
	p += pl.degDstDrop2
	if pl.crossDC {
		p += pl.wanDrop2
	}
	if p > 1 {
		p = 1
	}
	return p
}

// planCache is one fault-table epoch's worth of pair plans.
type planCache struct {
	ft *faultTable
	mu sync.RWMutex
	m  map[uint64]*pairPlan
}

func pairKey(src, dst topology.ServerID) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// planFor returns the cached plan for (src, dst) under ft, building and
// publishing it on a miss. Duplicate builds under contention are benign:
// plans for the same (ft, pair) are interchangeable.
func (n *Network) planFor(ft *faultTable, src, dst topology.ServerID) *pairPlan {
	pc := n.plans.Load()
	if pc == nil || pc.ft != ft {
		fresh := &planCache{ft: ft, m: make(map[uint64]*pairPlan)}
		if n.plans.CompareAndSwap(pc, fresh) {
			pc = fresh
		} else {
			pc = n.plans.Load()
		}
	}
	if pc == nil || pc.ft != ft {
		// Lost a race against an even newer epoch; serve an uncached
		// build for this call rather than poison the newer cache.
		return n.buildPlan(ft, src, dst)
	}
	key := pairKey(src, dst)
	pc.mu.RLock()
	pl := pc.m[key]
	pc.mu.RUnlock()
	if pl != nil && pl.ft == ft {
		return pl
	}
	pl = n.buildPlan(ft, src, dst)
	pc.mu.Lock()
	pc.m[key] = pl
	pc.mu.Unlock()
	return pl
}

// Probe simulates one TCP/HTTP probe. rng must not be shared across
// goroutines; the caller owns sharding. Probes are served from the
// per-pair plan cache; results are byte-identical to the uncached
// reference path, including rng consumption.
func (n *Network) Probe(spec ProbeSpec, rng *rand.Rand) Result {
	ft := n.faults.Load()
	var res Result
	n.probeWithPlan(n.planFor(ft, spec.Src, spec.Dst), &spec, rng, &res)
	return res
}

// PairProber is a caller-owned probe handle for one (src, dst) pair. It
// keeps the pair's plan across calls so steady-state probing is a
// pointer comparison away from the precomputed path — no map lookup. A
// PairProber must not be shared across goroutines (like the rng); fault
// injection invalidates it automatically via the fault-table epoch.
type PairProber struct {
	n        *Network
	src, dst topology.ServerID
	pl       *pairPlan
}

// PairProber returns a probe handle for the pair. The spec passed to
// Probe must carry the same Src/Dst.
func (n *Network) PairProber(src, dst topology.ServerID) *PairProber {
	return &PairProber{n: n, src: src, dst: dst}
}

func (p *PairProber) plan() *pairPlan {
	ft := p.n.faults.Load()
	if pl := p.pl; pl != nil && pl.ft == ft {
		return pl
	}
	p.pl = p.n.planFor(ft, p.src, p.dst)
	return p.pl
}

// Probe simulates one probe for the prober's pair. spec.Src/Dst are
// trusted to match the pair the prober was created for. spec is only
// read, never retained.
func (p *PairProber) Probe(spec *ProbeSpec, rng *rand.Rand) Result {
	var res Result
	p.n.probeWithPlan(p.plan(), spec, rng, &res)
	return res
}

// ProbeScheduled runs one scheduled probe into res, returning false —
// without simulating anything or consuming rng — when the source podset
// is powered off. Fleet schedulers use it so a downed server's ticks
// cost one pointer compare (the white rows of Figure 8(b)). res is an
// out-param so tight probe loops reuse one Result instead of copying a
// return value through every frame.
func (p *PairProber) ProbeScheduled(spec *ProbeSpec, rng *rand.Rand, res *Result) bool {
	pl := p.plan()
	if pl.srcDown {
		return false
	}
	p.n.probeWithPlan(pl, spec, rng, res)
	return true
}

// SrcUp reports whether the pair's source podset is powered, against the
// current fault table. Fleet schedulers use it to skip probes a powered-
// off server would never send (the white rows of Figure 8(b)) without
// paying for the probe simulation.
func (p *PairProber) SrcUp() bool {
	return !p.plan().srcDown
}

// probeWithPlan is the cached Probe fast path. Every branch and rng draw
// mirrors probeReference exactly; see the bit-exactness contract above.
// It overwrites *res completely.
func (n *Network) probeWithPlan(pl *pairPlan, spec *ProbeSpec, rng *rand.Rand, res *Result) {
	if pl.srcDown || pl.dstDown || !pl.ok {
		*res = Result{Err: ErrUnreachable, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
		return
	}

	// Resolve the ECMP member of every stage from the cached candidate
	// sets; identical to pickECMP over the isolation-filtered list.
	var chosenBuf [6]*switchFault
	chosen := &pl.fixedChosen
	if !pl.allFixed {
		for i := 0; i < pl.nHops; i++ {
			st := &pl.stages[i]
			if len(st.faults) == 1 {
				chosenBuf[i] = st.faults[0]
				continue
			}
			h := hash5Ports(st.hashPrefix, spec.SrcPort, spec.DstPort)
			if st.mask != 0 {
				chosenBuf[i] = st.faults[h&st.mask]
			} else {
				chosenBuf[i] = st.faults[h%uint64(len(st.faults))]
			}
		}
		chosen = &chosenBuf
	}

	if pl.anyBH {
		for i := 0; i < pl.nHops; i++ {
			bhs := chosen[i].blackholes
			for bi := range bhs {
				b := &bhs[bi]
				if b.matches(pl.srcAddr, pl.dstAddr, spec.SrcPort, spec.DstPort) ||
					b.matches(pl.dstAddr, pl.srcAddr, spec.DstPort, spec.SrcPort) {
					*res = Result{Err: ErrTimeout, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
					return
				}
			}
		}
	}

	pDrop := pl.pDropSyn
	if !pl.dropConst {
		pDrop = pl.dropProb(chosen, synPacketSize)
	}
	*res = Result{}
	for attempt := 0; attempt <= SYNRetries; attempt++ {
		p := pDrop
		if attempt > 0 {
			p += pl.sp.RetryDropBoost
		}
		res.Attempts = attempt + 1
		if rng.Float64() < p {
			continue
		}
		rtt := n.sampleRTTPlan(pl, chosen, spec, pl.serSyn, rng)
		res.RTT = synRetryOffsets[attempt] + rtt
		res.Elapsed = res.RTT
		if spec.PayloadLen > 0 {
			n.payloadEchoPlan(pl, chosen, spec, rng, res)
		}
		return
	}
	*res = Result{Err: ErrTimeout, Elapsed: ConnectFailAt, Attempts: SYNRetries + 1}
}

// payloadEchoPlan mirrors payloadEcho on the cached path.
func (n *Network) payloadEchoPlan(pl *pairPlan, chosen *[6]*switchFault, spec *ProbeSpec, rng *rand.Rand, res *Result) {
	pktSize := spec.PayloadLen + 60
	pDrop := pl.pDropSyn // pktSize-independent when dropConst (fcs == 0)
	if !pl.dropConst {
		pDrop = pl.dropProb(chosen, pktSize)
	}
	ser := time.Duration(perByteNanosPerLink * float64(pktSize) * pl.linksF)
	var wait time.Duration
	for attempt := 0; attempt <= payloadMaxRetries; attempt++ {
		if rng.Float64() < pDrop {
			wait += payloadRTO << attempt
			continue
		}
		rtt := n.sampleRTTPlan(pl, chosen, spec, ser, rng)
		app := pl.dp.AppEchoBase + expDur(rng, pl.dp.AppEchoNoise)
		if spec.Proto == probe.HTTP {
			app += pl.dp.HTTPOverhead
		}
		res.PayloadRTT = wait + rtt + app
		res.Elapsed += res.PayloadRTT
		return
	}
	res.Err = ErrPayloadTimeout
	res.Elapsed += wait
}

// sampleRTTPlan mirrors sampleRTT draw for draw. All deterministic
// Duration terms are folded into pl.rttFixed and ser; the float
// probability products keep the reference association order.
func (n *Network) sampleRTTPlan(pl *pairPlan, chosen *[6]*switchFault, spec *ProbeSpec, ser time.Duration, rng *rand.Rand) time.Duration {
	sp, dp := pl.sp, pl.dp
	loadS, loadD := sp.load(spec.Start), dp.load(spec.Start)
	qos := 1.0
	if spec.QoS == probe.QoSLow {
		qos = n.qosLow
	}

	d := pl.rttFixed
	d += expDur(rng, sp.HostNoise) + expDur(rng, dp.HostNoise)

	for i := 0; i < pl.nHops; i++ {
		st := &pl.stages[i]
		load := loadS
		if st.useDstLoad {
			load = loadD
		}
		qm := scaleDur(st.prof.QueueMean, load*qos)
		d += expDur(rng, qm)
		d += expDur(rng, qm)
		f := chosen[i]
		if f.extraLatMean > 0 {
			d += expDur(rng, f.extraLatMean) + expDur(rng, f.extraLatMean)
		}
		if st.tierDegLat > 0 {
			d += expDur(rng, st.tierDegLat) + expDur(rng, st.tierDegLat)
		}
	}

	if rng.Float64() < clamp01(pl.hopsF*sp.BurstProb*loadS*qos) {
		d += expDur(rng, sp.BurstMean)
	}
	if rng.Float64() < clamp01(pl.hopsF*dp.BurstProb*loadD*qos) {
		d += expDur(rng, dp.BurstMean)
	}
	if rng.Float64() < clamp01((sp.BigBurstProb*loadS+dp.BigBurstProb*loadD)/2*qos) {
		d += expDur(rng, (sp.BigBurstMean+dp.BigBurstMean)/2)
	}
	if rng.Float64() < sp.StallProb {
		d += sp.StallMin + expDur(rng, sp.StallMean)
	} else if rng.Float64() < dp.StallProb {
		d += dp.StallMin + expDur(rng, dp.StallMean)
	}

	if pl.degSrcLat > 0 {
		d += expDur(rng, pl.degSrcLat) + expDur(rng, pl.degSrcLat)
	}
	if pl.degDstLat > 0 {
		d += expDur(rng, pl.degDstLat) + expDur(rng, pl.degDstLat)
	}

	if pl.crossDC {
		d += expDur(rng, n.cfg.InterDC.JitterMean) + expDur(rng, n.cfg.InterDC.JitterMean)
	}

	d += ser
	return d
}
