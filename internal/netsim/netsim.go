package netsim

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pingmesh/internal/topology"
)

// Config configures a simulated network.
type Config struct {
	// Profiles holds one Profile per DC, in topology DC order. If fewer
	// profiles than DCs are given, the last profile is reused.
	Profiles []Profile
	// InterDC models the long-haul network between data centers.
	InterDC InterDCConfig
	// LowQoSQueueFactor scales queuing delay for QoSLow probes (DSCP-based
	// QoS gives low-priority packets deeper queues). 0 means the default.
	LowQoSQueueFactor float64
}

// InterDCConfig models the inter-DC WAN.
type InterDCConfig struct {
	// BaseOneWay is the propagation delay between two DCs, one way.
	BaseOneWay time.Duration
	// JitterMean is the mean exponential jitter per direction.
	JitterMean time.Duration
	// Drop is the per-direction packet drop probability on the WAN.
	Drop float64
}

// DefaultInterDC returns a WAN model with ~24ms base RTT.
func DefaultInterDC() InterDCConfig {
	return InterDCConfig{
		BaseOneWay: 12 * time.Millisecond,
		JitterMean: 250 * time.Microsecond,
		Drop:       2e-6,
	}
}

// Degradation is extra loss and latency applied by a fault.
type Degradation struct {
	// DropProb is added to the per-traversal drop probability.
	DropProb float64
	// ExtraLatencyMean, if positive, adds an exponential delay with this
	// mean per traversal.
	ExtraLatencyMean time.Duration
}

// Blackhole is a deterministic switch packet drop rule (§5.1): packets
// matching certain header patterns are dropped 100% of the time, caused by
// TCAM corruption (type 1, address-based) or ECMP errors (type 2, address
// and port based).
type Blackhole struct {
	// MatchFraction is the fraction of the header space the corrupt TCAM
	// entries cover; a packet is dropped when the hash of its headers lands
	// below this fraction. The decision is deterministic per header tuple.
	MatchFraction float64
	// IncludePorts makes the match depend on transport ports too (type 2
	// black-holes): the same address pair then behaves differently for
	// different source ports.
	IncludePorts bool
	// Pairs optionally lists explicit (src,dst) address pairs to drop,
	// in addition to the MatchFraction rule.
	Pairs []AddrPair
}

// AddrPair is an explicit black-holed source/destination pair.
type AddrPair struct {
	Src, Dst netip.Addr
}

func (b *Blackhole) matches(src, dst netip.Addr, sport, dport uint16) bool {
	for _, p := range b.Pairs {
		if p.Src == src && p.Dst == dst {
			return true
		}
	}
	if b.MatchFraction <= 0 {
		return false
	}
	h := fnv.New64a()
	s4, d4 := src.As4(), dst.As4()
	h.Write(s4[:])
	h.Write(d4[:])
	if b.IncludePorts {
		h.Write([]byte{byte(sport >> 8), byte(sport), byte(dport >> 8), byte(dport)})
	}
	// FNV over near-identical short inputs (sequential 10.x addresses)
	// leaves the output heavily correlated with single input bytes, which
	// would turn an address-pattern black-hole into a whole-host outage.
	// A finalizer avalanche makes the match fraction uniform per tuple.
	mixed := mix64(h.Sum64())
	const scale = 1 << 53
	frac := float64(mixed&(scale-1)) / scale
	return frac < b.MatchFraction
}

// mix64 is the splitmix64 finalizer: full avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// switchFault is the fault state of one switch. The zero value means
// healthy.
type switchFault struct {
	blackholes   []Blackhole
	randomDrop   float64
	persistent   bool // random drop survives a reload (needs RMA, §5.2)
	fcsPerByte   float64
	extraLatMean time.Duration
	isolated     bool
}

func (f *switchFault) any() bool {
	return len(f.blackholes) > 0 || f.randomDrop > 0 || f.fcsPerByte > 0 ||
		f.extraLatMean > 0 || f.isolated
}

type psKey struct{ dc, podset int }
type tierKey struct {
	dc   int
	tier topology.Tier
}

// faultTable is an immutable snapshot of every injected fault; Probe loads
// it once per call so fault mutation never blocks the probing hot path.
type faultTable struct {
	perSwitch  []switchFault
	podsetDown map[psKey]bool
	podsetDeg  map[psKey]Degradation
	tierDeg    map[tierKey]Degradation
}

func (ft *faultTable) clone() *faultTable {
	c := &faultTable{
		perSwitch:  append([]switchFault(nil), ft.perSwitch...),
		podsetDown: make(map[psKey]bool, len(ft.podsetDown)),
		podsetDeg:  make(map[psKey]Degradation, len(ft.podsetDeg)),
		tierDeg:    make(map[tierKey]Degradation, len(ft.tierDeg)),
	}
	for i := range ft.perSwitch {
		c.perSwitch[i].blackholes = append([]Blackhole(nil), ft.perSwitch[i].blackholes...)
	}
	for k, v := range ft.podsetDown {
		c.podsetDown[k] = v
	}
	for k, v := range ft.podsetDeg {
		c.podsetDeg[k] = v
	}
	for k, v := range ft.tierDeg {
		c.tierDeg[k] = v
	}
	return c
}

// Network is a simulated multi-DC fabric. It is safe for concurrent use:
// probes are lock-free; fault injection swaps an immutable fault table,
// which also invalidates the per-pair probe plan cache (plans embed the
// fault-table pointer they were built from).
type Network struct {
	top    *topology.Topology
	cfg    Config
	qosLow float64
	mu     sync.Mutex // serializes fault mutation
	faults atomic.Pointer[faultTable]
	plans  atomic.Pointer[planCache]
}

// New builds a simulated network over the topology.
func New(top *topology.Topology, cfg Config) (*Network, error) {
	if len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("netsim: config has no profiles")
	}
	for i := range cfg.Profiles {
		if err := cfg.Profiles[i].validate(); err != nil {
			return nil, err
		}
	}
	if cfg.InterDC == (InterDCConfig{}) {
		cfg.InterDC = DefaultInterDC()
	}
	q := cfg.LowQoSQueueFactor
	if q <= 0 {
		q = 1.6
	}
	n := &Network{top: top, cfg: cfg, qosLow: q}
	n.faults.Store(&faultTable{
		perSwitch:  make([]switchFault, top.NumSwitches()),
		podsetDown: map[psKey]bool{},
		podsetDeg:  map[psKey]Degradation{},
		tierDeg:    map[tierKey]Degradation{},
	})
	return n, nil
}

// Topology returns the topology the network simulates.
func (n *Network) Topology() *topology.Topology { return n.top }

func (n *Network) profile(dc int) *Profile {
	if dc >= len(n.cfg.Profiles) {
		return &n.cfg.Profiles[len(n.cfg.Profiles)-1]
	}
	return &n.cfg.Profiles[dc]
}

// mutate applies fn to a copy of the fault table and publishes it.
func (n *Network) mutate(fn func(*faultTable)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ft := n.faults.Load().clone()
	fn(ft)
	n.faults.Store(ft)
}

// AddBlackhole installs a black-hole rule on a switch.
func (n *Network) AddBlackhole(sw topology.SwitchID, b Blackhole) {
	n.mutate(func(ft *faultTable) {
		ft.perSwitch[sw].blackholes = append(ft.perSwitch[sw].blackholes, b)
	})
}

// SetRandomDrop makes a switch silently drop packets with the given
// probability. persistent marks hardware faults (fabric CRC, bit flips)
// that a reload cannot fix — only RMA (§5.2).
func (n *Network) SetRandomDrop(sw topology.SwitchID, prob float64, persistent bool) {
	n.mutate(func(ft *faultTable) {
		ft.perSwitch[sw].randomDrop = prob
		ft.perSwitch[sw].persistent = persistent
	})
}

// SetFCSError makes packets traversing the switch fail with a probability
// proportional to packet length (fiber FCS errors scale with bit count,
// §4.2).
func (n *Network) SetFCSError(sw topology.SwitchID, perByte float64) {
	n.mutate(func(ft *faultTable) {
		ft.perSwitch[sw].fcsPerByte = perByte
	})
}

// SetExtraLatency adds an exponential per-traversal delay at the switch.
func (n *Network) SetExtraLatency(sw topology.SwitchID, mean time.Duration) {
	n.mutate(func(ft *faultTable) {
		ft.perSwitch[sw].extraLatMean = mean
	})
}

// ReloadSwitch reboots a switch, clearing black-holes and non-persistent
// random drops (the paper's repair action for black-holed ToRs, §5.1).
func (n *Network) ReloadSwitch(sw topology.SwitchID) {
	n.mutate(func(ft *faultTable) {
		f := &ft.perSwitch[sw]
		f.blackholes = nil
		if !f.persistent {
			f.randomDrop = 0
		}
	})
}

// IsolateSwitch removes a switch from ECMP rotation (taking a faulty Spine
// out of serving live traffic, §5.2).
func (n *Network) IsolateSwitch(sw topology.SwitchID) {
	n.mutate(func(ft *faultTable) { ft.perSwitch[sw].isolated = true })
}

// UnisolateSwitch returns a switch to rotation.
func (n *Network) UnisolateSwitch(sw topology.SwitchID) {
	n.mutate(func(ft *faultTable) { ft.perSwitch[sw].isolated = false })
}

// ReplaceSwitch models an RMA: the faulty device is swapped for a healthy
// one, clearing all faults including persistent ones.
func (n *Network) ReplaceSwitch(sw topology.SwitchID) {
	n.mutate(func(ft *faultTable) { ft.perSwitch[sw] = switchFault{} })
}

// SetPodsetDown powers a podset off (or back on): its servers neither send
// nor receive (the white-cross pattern of Figure 8(b)).
func (n *Network) SetPodsetDown(dc, podset int, down bool) {
	n.mutate(func(ft *faultTable) {
		k := psKey{dc, podset}
		if down {
			ft.podsetDown[k] = true
		} else {
			delete(ft.podsetDown, k)
		}
	})
}

// SetPodsetDegraded injects loss/latency on every path entering or leaving
// a podset (e.g. a broadcast storm inside an L2 podset — the red-cross
// pattern of Figure 8(c)). A zero Degradation clears it.
func (n *Network) SetPodsetDegraded(dc, podset int, d Degradation) {
	n.mutate(func(ft *faultTable) {
		k := psKey{dc, podset}
		if d == (Degradation{}) {
			delete(ft.podsetDeg, k)
		} else {
			ft.podsetDeg[k] = d
		}
	})
}

// SetTierDegraded injects loss/latency on every traversal of a switch tier
// in a DC (the spine-layer failure of Figure 8(d)). A zero Degradation
// clears it.
func (n *Network) SetTierDegraded(dc int, tier topology.Tier, d Degradation) {
	n.mutate(func(ft *faultTable) {
		k := tierKey{dc, tier}
		if d == (Degradation{}) {
			delete(ft.tierDeg, k)
		} else {
			ft.tierDeg[k] = d
		}
	})
}

// ServerUp reports whether the server's podset is powered.
func (n *Network) ServerUp(id topology.ServerID) bool {
	s := n.top.Server(id)
	return !n.faults.Load().podsetDown[psKey{s.DC, s.Podset}]
}

// SwitchFaulty reports whether a switch currently has any fault installed
// (used by tests and by the repair service to verify its actions).
func (n *Network) SwitchFaulty(sw topology.SwitchID) bool {
	ft := n.faults.Load()
	return ft.perSwitch[sw].any()
}

// FaultySwitches lists switches with at least one fault.
func (n *Network) FaultySwitches() []topology.SwitchID {
	ft := n.faults.Load()
	var out []topology.SwitchID
	for i := range ft.perSwitch {
		if ft.perSwitch[i].any() {
			out = append(out, topology.SwitchID(i))
		}
	}
	return out
}
