package netsim

import (
	"math/rand/v2"
	"testing"
	"time"

	"pingmesh/internal/metrics"
	"pingmesh/internal/probe"
	"pingmesh/internal/topology"
)

func testTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "DC1", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
		{Name: "DC2", Podsets: 2, PodsPerPodset: 3, ServersPerPod: 4, LeavesPerPodset: 2, Spines: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func testNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := New(testTopology(t), Config{Profiles: []Profile{DC1Profile(), DC2Profile()}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)) }

// pairOfKind returns a (src,dst) pair with the requested locality.
func pairOfKind(top *topology.Topology, kind string) (topology.ServerID, topology.ServerID) {
	switch kind {
	case "intra-pod":
		p := top.PodOf(0)
		return p.Servers[0], p.Servers[1]
	case "intra-podset":
		ps := top.PodsetOf(0)
		return ps.Pods[0].Servers[0], ps.Pods[1].Servers[0]
	case "cross-podset":
		return top.DCs[0].Podsets[0].Pods[0].Servers[0], top.DCs[0].Podsets[1].Pods[0].Servers[0]
	case "cross-dc":
		return top.DCs[0].Podsets[0].Pods[0].Servers[0], top.DCs[1].Podsets[0].Pods[0].Servers[0]
	}
	panic("unknown kind")
}

func TestNewRequiresProfiles(t *testing.T) {
	if _, err := New(testTopology(t), Config{}); err == nil {
		t.Fatal("New accepted empty profile list")
	}
}

func TestPathShapes(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	cases := []struct {
		kind string
		hops int
	}{
		{"intra-pod", 1},
		{"intra-podset", 3},
		{"cross-podset", 5},
		{"cross-dc", 6},
	}
	for _, c := range cases {
		src, dst := pairOfKind(top, c.kind)
		hops, ok := n.Path(src, dst, 50000, 9000)
		if !ok {
			t.Fatalf("%s: no path", c.kind)
		}
		if len(hops) != c.hops {
			t.Fatalf("%s: %d hops, want %d", c.kind, len(hops), c.hops)
		}
		// First and last hops must be the endpoint ToRs (except intra-pod).
		if hops[0] != top.ToROf(src) {
			t.Fatalf("%s: path does not start at source ToR", c.kind)
		}
		if hops[len(hops)-1] != top.ToROf(dst) {
			t.Fatalf("%s: path does not end at destination ToR", c.kind)
		}
	}
}

func TestPathDeterministicPerTuple(t *testing.T) {
	n := testNetwork(t)
	src, dst := pairOfKind(n.Topology(), "cross-podset")
	a, _ := n.Path(src, dst, 1234, 80)
	b, _ := n.Path(src, dst, 1234, 80)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same five-tuple produced different paths")
		}
	}
}

func TestPathECMPSpreadsAcrossSpines(t *testing.T) {
	n := testNetwork(t)
	src, dst := pairOfKind(n.Topology(), "cross-podset")
	seen := map[topology.SwitchID]bool{}
	for port := uint16(40000); port < 40400; port++ {
		hops, ok := n.Path(src, dst, port, 80)
		if !ok {
			t.Fatal("no path")
		}
		seen[hops[2]] = true // spine position
	}
	if len(seen) < 3 {
		t.Fatalf("400 source ports hit only %d spines, want >=3 of 4", len(seen))
	}
}

func TestIsolatedSpineLeavesRotation(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	victim := top.DCs[0].Spines[0]
	n.IsolateSwitch(victim)
	src, dst := pairOfKind(top, "cross-podset")
	for port := uint16(40000); port < 40200; port++ {
		hops, ok := n.Path(src, dst, port, 80)
		if !ok {
			t.Fatal("no path with one spine isolated")
		}
		for _, h := range hops {
			if h == victim {
				t.Fatal("isolated spine still on path")
			}
		}
	}
	n.UnisolateSwitch(victim)
	found := false
	for port := uint16(40000); port < 40200; port++ {
		hops, _ := n.Path(src, dst, port, 80)
		for _, h := range hops {
			if h == victim {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("unisolated spine never returned to rotation")
	}
}

func TestAllSpinesIsolatedUnreachable(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	for _, s := range top.DCs[0].Spines {
		n.IsolateSwitch(s)
	}
	src, dst := pairOfKind(top, "cross-podset")
	if _, ok := n.Path(src, dst, 1, 2); ok {
		t.Fatal("path exists with all spines isolated")
	}
	res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2}, rng(1))
	if res.Err != ErrUnreachable {
		t.Fatalf("Err = %q, want unreachable", res.Err)
	}
	// Intra-podset traffic is unaffected.
	src2, dst2 := pairOfKind(top, "intra-podset")
	if _, ok := n.Path(src2, dst2, 1, 2); !ok {
		t.Fatal("intra-podset path should not need spines")
	}
}

func measure(n *Network, src, dst topology.ServerID, count int, seed uint64, payload int) (*metrics.Histogram, int, int) {
	h := metrics.NewLatencyHistogram()
	r := rng(seed)
	fails, retx := 0, 0
	start := time.Unix(1750000000, 0)
	for i := 0; i < count; i++ {
		res := n.Probe(ProbeSpec{
			Src: src, Dst: dst,
			SrcPort: uint16(32768 + i%28000), DstPort: 9000,
			PayloadLen: payload,
			Start:      start,
		}, r)
		if res.Err != "" {
			fails++
			continue
		}
		if res.Attempts > 1 {
			retx++
		}
		h.Observe(res.RTT)
	}
	return h, fails, retx
}

func TestProbeLatencyShape(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	srcIP, dstIP := pairOfKind(top, "intra-pod")
	intra, fails, _ := measure(n, srcIP, dstIP, 30000, 2, 0)
	if fails > 5 {
		t.Fatalf("intra-pod fails = %d", fails)
	}
	srcXP, dstXP := pairOfKind(top, "cross-podset")
	inter, _, _ := measure(n, srcXP, dstXP, 30000, 3, 0)

	ip50, xp50 := intra.Percentile(0.5), inter.Percentile(0.5)
	if ip50 >= xp50 {
		t.Fatalf("intra-pod P50 %v >= inter-pod P50 %v", ip50, xp50)
	}
	// The gap should be tens of microseconds (queuing), not milliseconds.
	if gap := xp50 - ip50; gap < 10*time.Microsecond || gap > 500*time.Microsecond {
		t.Fatalf("P50 gap = %v, want tens of µs", gap)
	}
	// Absolute scale: P50 in the hundreds of microseconds.
	if ip50 < 100*time.Microsecond || ip50 > time.Millisecond {
		t.Fatalf("intra-pod P50 = %v, want ~200µs", ip50)
	}
	// P99 around a millisecond.
	if p99 := inter.Percentile(0.99); p99 < 400*time.Microsecond || p99 > 8*time.Millisecond {
		t.Fatalf("inter-pod P99 = %v, want ~1-2ms", p99)
	}
}

func TestProbeCrossDCLatency(t *testing.T) {
	n := testNetwork(t)
	src, dst := pairOfKind(n.Topology(), "cross-dc")
	h, fails, _ := measure(n, src, dst, 5000, 4, 0)
	if fails > 5 {
		t.Fatalf("cross-dc fails = %d", fails)
	}
	if p50 := h.Percentile(0.5); p50 < 20*time.Millisecond || p50 > 40*time.Millisecond {
		t.Fatalf("cross-DC P50 = %v, want ~24ms", p50)
	}
}

func TestProbeRetransmitSignature(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	// Crank up drop rates so retransmissions are common enough to observe
	// without millions of probes.
	sw := top.DCs[0].Spines[0]
	n.SetRandomDrop(sw, 0.02, false)
	src, dst := pairOfKind(top, "cross-podset")
	r := rng(5)
	sawRetx := false
	for i := 0; i < 20000 && !sawRetx; i++ {
		// Fixed source port keeps the path through the lossy spine.
		res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 33011, DstPort: 9000}, r)
		if res.Err == "" && res.RTT > SYNTimeout && res.RTT < SYNTimeout+time.Second {
			sawRetx = true
		}
	}
	// Verify the path actually goes through the lossy spine; if not, pick
	// a port that does.
	hops, _ := n.Path(src, dst, 33011, 9000)
	onPath := false
	for _, h := range hops {
		if h == sw {
			onPath = true
		}
	}
	if onPath && !sawRetx {
		t.Fatal("no ~3s retransmit RTT observed despite 2% spine loss")
	}
}

func TestProbeDropRatesCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs many probes")
	}
	n := testNetwork(t)
	top := n.Topology()
	count := 400000
	src, dst := pairOfKind(top, "intra-pod")
	_, _, retxIntra := measure(n, src, dst, count, 6, 0)
	srcX, dstX := pairOfKind(top, "cross-podset")
	_, _, retxInter := measure(n, srcX, dstX, count, 7, 0)
	intraRate := float64(retxIntra) / float64(count)
	interRate := float64(retxInter) / float64(count)
	// Table 1 band: intra-pod ~1e-5, inter-pod several-fold higher.
	if intraRate > 2e-4 {
		t.Fatalf("intra-pod drop rate %g too high", intraRate)
	}
	if interRate < intraRate {
		t.Fatalf("inter-pod drop rate %g < intra-pod %g", interRate, intraRate)
	}
	if interRate < 1e-5 || interRate > 5e-4 {
		t.Fatalf("inter-pod drop rate %g outside 1e-5..5e-4", interRate)
	}
}

func TestBlackholeExplicitPair(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "intra-podset")
	other := top.PodsetOf(src).Pods[2].Servers[0]
	tor := top.ToROf(dst)
	n.AddBlackhole(tor, Blackhole{Pairs: []AddrPair{{Src: top.Server(src).Addr, Dst: top.Server(dst).Addr}}})

	r := rng(8)
	for i := 0; i < 20; i++ {
		res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(40000 + i), DstPort: 9000}, r)
		if res.Err != ErrTimeout {
			t.Fatalf("black-holed pair probe %d: err = %q, want timeout", i, res.Err)
		}
	}
	// Unaffected pair through a different ToR works.
	if res := n.Probe(ProbeSpec{Src: src, Dst: other, SrcPort: 40000, DstPort: 9000}, r); res.Err != "" {
		t.Fatalf("unaffected pair failed: %q", res.Err)
	}
	// Reload clears the black-hole (§5.1).
	n.ReloadSwitch(tor)
	if res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 40001, DstPort: 9000}, r); res.Err != "" {
		t.Fatalf("pair still black-holed after reload: %q", res.Err)
	}
}

func TestBlackholeFractionDeterministic(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	tor := top.ToROf(0)
	n.AddBlackhole(tor, Blackhole{MatchFraction: 0.3})
	pod := top.PodOf(0)
	src := pod.Servers[0]
	r := rng(9)
	affected := 0
	for _, dst := range pod.Servers[1:] {
		res1 := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 41000, DstPort: 9000}, r)
		res2 := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 41001, DstPort: 9000}, r)
		// Type-1 black-hole ignores ports: both probes must agree.
		if (res1.Err == ErrTimeout) != (res2.Err == ErrTimeout) {
			t.Fatal("address-based black-hole varied with source port")
		}
		if res1.Err == ErrTimeout {
			affected++
		}
	}
	_ = affected // fraction over 3 pairs is noisy; determinism is the point
}

func TestBlackholeWithPortsVariesBySourcePort(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "intra-pod")
	n.AddBlackhole(top.ToROf(src), Blackhole{MatchFraction: 0.5, IncludePorts: true})
	r := rng(10)
	timeouts, oks := 0, 0
	for port := uint16(42000); port < 42100; port++ {
		res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: port, DstPort: 9000}, r)
		if res.Err == ErrTimeout {
			timeouts++
		} else if res.Err == "" {
			oks++
		}
	}
	if timeouts == 0 || oks == 0 {
		t.Fatalf("type-2 black-hole: timeouts=%d oks=%d, want both nonzero", timeouts, oks)
	}
}

func TestRandomDropPersistence(t *testing.T) {
	n := testNetwork(t)
	sw := n.Topology().DCs[0].Spines[1]
	n.SetRandomDrop(sw, 0.01, true)
	n.ReloadSwitch(sw)
	if !n.SwitchFaulty(sw) {
		t.Fatal("persistent fault cleared by reload")
	}
	n.ReplaceSwitch(sw)
	if n.SwitchFaulty(sw) {
		t.Fatal("fault survived RMA replacement")
	}
	// Non-persistent drops do clear on reload.
	n.SetRandomDrop(sw, 0.01, false)
	n.ReloadSwitch(sw)
	if n.SwitchFaulty(sw) {
		t.Fatal("non-persistent fault survived reload")
	}
}

func TestPodsetDown(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	n.SetPodsetDown(0, 1, true)
	src, dst := pairOfKind(top, "cross-podset") // dst in podset 1
	if n.ServerUp(dst) {
		t.Fatal("server in downed podset reported up")
	}
	if !n.ServerUp(src) {
		t.Fatal("server in healthy podset reported down")
	}
	res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2}, rng(11))
	if res.Err != ErrUnreachable {
		t.Fatalf("probe to downed podset: %q", res.Err)
	}
	n.SetPodsetDown(0, 1, false)
	if res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2}, rng(12)); res.Err != "" {
		t.Fatalf("probe after power-on: %q", res.Err)
	}
}

func TestPodsetDegradedLatency(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "cross-podset")
	before, _, _ := measure(n, src, dst, 4000, 13, 0)
	n.SetPodsetDegraded(0, 1, Degradation{ExtraLatencyMean: 5 * time.Millisecond})
	after, _, _ := measure(n, src, dst, 4000, 14, 0)
	if after.Percentile(0.5) < before.Percentile(0.5)+2*time.Millisecond {
		t.Fatalf("degraded podset P50 %v not clearly above baseline %v",
			after.Percentile(0.5), before.Percentile(0.5))
	}
	// Clearing restores.
	n.SetPodsetDegraded(0, 1, Degradation{})
	restored, _, _ := measure(n, src, dst, 4000, 15, 0)
	if restored.Percentile(0.5) > before.Percentile(0.5)*2 {
		t.Fatal("degradation did not clear")
	}
}

func TestTierDegradedSpineOnlyAffectsCrossPodset(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	n.SetTierDegraded(0, topology.TierSpine, Degradation{ExtraLatencyMean: 8 * time.Millisecond})
	srcI, dstI := pairOfKind(top, "intra-podset")
	intra, _, _ := measure(n, srcI, dstI, 4000, 16, 0)
	srcX, dstX := pairOfKind(top, "cross-podset")
	cross, _, _ := measure(n, srcX, dstX, 4000, 17, 0)
	if intra.Percentile(0.5) > 2*time.Millisecond {
		t.Fatalf("intra-podset P50 %v affected by spine degradation", intra.Percentile(0.5))
	}
	if cross.Percentile(0.5) < 5*time.Millisecond {
		t.Fatalf("cross-podset P50 %v not affected by spine degradation", cross.Percentile(0.5))
	}
}

func TestPayloadRTTExceedsSYNRTT(t *testing.T) {
	n := testNetwork(t)
	src, dst := pairOfKind(n.Topology(), "cross-podset")
	r := rng(18)
	hRTT := metrics.NewLatencyHistogram()
	hPayload := metrics.NewLatencyHistogram()
	for i := 0; i < 3000; i++ {
		res := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(43000 + i%1000), DstPort: 9000, PayloadLen: 1000}, r)
		if res.Err != "" {
			continue
		}
		if res.PayloadRTT == 0 {
			t.Fatal("payload probe returned no PayloadRTT")
		}
		hRTT.Observe(res.RTT)
		hPayload.Observe(res.PayloadRTT)
	}
	// The median payload echo costs tens of µs more than the SYN RTT
	// (user-space echo + serialization), as in Figure 4(d).
	if hPayload.Percentile(0.5) <= hRTT.Percentile(0.5)+20*time.Microsecond {
		t.Fatalf("payload P50 %v not clearly above SYN P50 %v",
			hPayload.Percentile(0.5), hRTT.Percentile(0.5))
	}
}

func TestFCSErrorHitsLargePacketsHarder(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "intra-pod")
	n.SetFCSError(top.ToROf(src), 2e-6) // per byte
	r := rng(19)
	count := 3000
	smallRetx, largeRetx := 0, 0
	for i := 0; i < count; i++ {
		small := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(44000 + i%1000), DstPort: 9000, PayloadLen: 64}, r)
		large := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(45000 + i%1000), DstPort: 9000, PayloadLen: 16000}, r)
		if small.Err == "" && small.PayloadRTT > payloadRTO {
			smallRetx++
		}
		if large.Err == "" && large.PayloadRTT > payloadRTO {
			largeRetx++
		}
	}
	if largeRetx <= smallRetx {
		t.Fatalf("FCS: large-payload retransmits %d <= small %d", largeRetx, smallRetx)
	}
}

func TestQoSLowSlower(t *testing.T) {
	n := testNetwork(t)
	src, dst := pairOfKind(n.Topology(), "cross-podset")
	r := rng(20)
	hHigh := metrics.NewLatencyHistogram()
	hLow := metrics.NewLatencyHistogram()
	for i := 0; i < 8000; i++ {
		h := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(46000 + i%1000), DstPort: 9000, QoS: probe.QoSHigh}, r)
		l := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(47000 + i%1000), DstPort: 9000, QoS: probe.QoSLow}, r)
		if h.Err == "" {
			hHigh.Observe(h.RTT)
		}
		if l.Err == "" {
			hLow.Observe(l.RTT)
		}
	}
	// Low priority sees deeper queues: higher P90 (the median is dominated
	// by fixed host/switch costs that QoS does not change).
	if hLow.Percentile(0.9) <= hHigh.Percentile(0.9) {
		t.Fatalf("QoS low P90 %v <= high P90 %v", hLow.Percentile(0.9), hHigh.Percentile(0.9))
	}
}

func TestLoadFunctionModulatesLatency(t *testing.T) {
	top := testTopology(t)
	prof := DC1Profile()
	peak := time.Unix(1750000000, 0)
	prof.Load = func(tm time.Time) float64 {
		if tm.Equal(peak) {
			return 6
		}
		return 1
	}
	n, err := New(top, Config{Profiles: []Profile{prof, prof}})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := pairOfKind(top, "cross-podset")
	r := rng(21)
	quiet := metrics.NewLatencyHistogram()
	busy := metrics.NewLatencyHistogram()
	for i := 0; i < 8000; i++ {
		q := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(48000 + i%1000), DstPort: 9000, Start: peak.Add(time.Hour)}, r)
		b := n.Probe(ProbeSpec{Src: src, Dst: dst, SrcPort: uint16(48000 + i%1000), DstPort: 9000, Start: peak}, r)
		if q.Err == "" {
			quiet.Observe(q.RTT)
		}
		if b.Err == "" {
			busy.Observe(b.RTT)
		}
	}
	if busy.Percentile(0.99) <= quiet.Percentile(0.99) {
		t.Fatalf("busy P99 %v <= quiet P99 %v", busy.Percentile(0.99), quiet.Percentile(0.99))
	}
}

func TestTraceProbeWalksPath(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "cross-podset")
	hops, _ := n.Path(src, dst, 50123, 9000)
	r := rng(22)
	for ttl := 1; ttl <= len(hops); ttl++ {
		// Retry a few times in case the probe randomly drops.
		var got TraceResult
		for try := 0; try < 10; try++ {
			got = n.TraceProbe(ProbeSpec{Src: src, Dst: dst, SrcPort: 50123, DstPort: 9000}, ttl, r)
			if got.OK {
				break
			}
		}
		if !got.OK {
			t.Fatalf("ttl %d: no answer after retries", ttl)
		}
		if got.Hop != hops[ttl-1] {
			t.Fatalf("ttl %d answered by %v, want %v", ttl, got.Hop, hops[ttl-1])
		}
	}
	// Beyond the path: destination host answers.
	got := n.TraceProbe(ProbeSpec{Src: src, Dst: dst, SrcPort: 50123, DstPort: 9000}, len(hops)+1, r)
	if !got.OK || got.Hop != -1 {
		t.Fatalf("ttl beyond path: %+v", got)
	}
}

func TestTraceProbeLocalizesLossySpine(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	src, dst := pairOfKind(top, "cross-podset")
	hops, _ := n.Path(src, dst, 50200, 9000)
	spineIdx := 2 // position of spine in cross-podset path
	n.SetRandomDrop(hops[spineIdx], 0.3, true)
	r := rng(23)
	count := 2000
	lossAt := make([]float64, len(hops))
	for ttl := 1; ttl <= len(hops); ttl++ {
		lost := 0
		for i := 0; i < count; i++ {
			if !n.TraceProbe(ProbeSpec{Src: src, Dst: dst, SrcPort: 50200, DstPort: 9000}, ttl, r).OK {
				lost++
			}
		}
		lossAt[ttl-1] = float64(lost) / float64(count)
	}
	// Loss should be negligible before the spine and ~30%+ from it onward.
	if lossAt[spineIdx-1] > 0.05 {
		t.Fatalf("loss before spine = %v", lossAt[spineIdx-1])
	}
	if lossAt[spineIdx] < 0.2 {
		t.Fatalf("loss at spine = %v, want >= 0.2", lossAt[spineIdx])
	}
}

func TestTraceProbeInvalidTTL(t *testing.T) {
	n := testNetwork(t)
	src, dst := pairOfKind(n.Topology(), "intra-pod")
	if got := n.TraceProbe(ProbeSpec{Src: src, Dst: dst}, 0, rng(24)); got.OK {
		t.Fatal("ttl 0 answered")
	}
}

func TestFaultySwitchesListing(t *testing.T) {
	n := testNetwork(t)
	top := n.Topology()
	if len(n.FaultySwitches()) != 0 {
		t.Fatal("new network has faults")
	}
	a, b := top.DCs[0].Spines[0], top.ToROf(0)
	n.SetRandomDrop(a, 0.1, false)
	n.AddBlackhole(b, Blackhole{MatchFraction: 0.1})
	got := n.FaultySwitches()
	if len(got) != 2 {
		t.Fatalf("FaultySwitches = %v", got)
	}
}
