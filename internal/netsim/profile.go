// Package netsim simulates the data center network Pingmesh measures. It
// substitutes for the production Clos fabric of the paper: probes are
// evaluated against a per-DC latency/loss model plus injectable device
// faults, reproducing the mechanisms behind the paper's observations —
// ECMP five-tuple path selection, queuing bursts and OS scheduling stalls
// that shape the latency tail, TCP SYN retransmissions that turn packet
// drops into 3s/9s RTT signatures, TCAM black-holes, and switch silent
// random packet drops.
package netsim

import (
	"fmt"
	"time"
)

// Profile is the behavioural model of one data center: where its latency
// comes from and how often its devices drop packets. All drop
// probabilities are per packet per traversal (a packet traverses each
// device once per direction).
type Profile struct {
	// Name of the profile, for reports.
	Name string

	// HostBase is the per-host, per-direction latency of the kernel TCP/IP
	// stack, driver, and NIC (§2.2 of the paper). A SYN/SYN-ACK round trip
	// pays it four times (send+receive on each host).
	HostBase time.Duration
	// HostNoise is the mean of the exponential per-direction noise added by
	// end-host processing.
	HostNoise time.Duration
	// SwitchBase is the per-traversal forwarding latency of a switch.
	SwitchBase time.Duration
	// QueueMean is the mean of the exponential queuing delay added per
	// switch traversal under normal load.
	QueueMean time.Duration
	// BurstProb is the per-traversal probability that a packet hits a
	// congested queue; the extra delay is exponential with mean BurstMean.
	// This creates the ~millisecond P99 the paper reports.
	BurstProb float64
	BurstMean time.Duration
	// BigBurstProb is the per-probe probability of a deep-buffer congestion
	// episode (incast); extra delay is exponential with mean BigBurstMean.
	// This creates the tens-of-milliseconds P99.9 of Figure 4(b).
	BigBurstProb float64
	BigBurstMean time.Duration
	// StallProb is the per-probe probability of an end-host scheduling
	// stall (the server OS is not a real-time OS, §4.1); the stall is
	// StallMin plus an exponential with mean StallMean. This creates the
	// sub-second P99.99 of Figure 4(b).
	StallProb float64
	StallMin  time.Duration
	StallMean time.Duration

	// HostDrop is the per-host per-direction packet drop probability (NIC
	// receive buffer overflow, end-host stack).
	HostDrop float64
	// ToRDrop, LeafDrop and SpineDrop are per-traversal drop probabilities
	// for each switch tier (switch buffer overflow, fiber FCS errors, ASIC
	// deficits — §4.2).
	ToRDrop  float64
	LeafDrop float64
	// SpineDrop is the per-traversal drop probability at the Spine tier.
	SpineDrop float64
	// RetryDropBoost is added to the drop probability of SYN retransmits:
	// successive drops within a connection are correlated because
	// congestion episodes persist (§4.2).
	RetryDropBoost float64

	// Load optionally modulates queue pressure over time: QueueMean,
	// BurstProb and BigBurstProb are scaled by Load(t). nil means constant
	// load 1.0. Used to reproduce the periodic P99 pattern of Figure 5.
	Load func(t time.Time) float64

	// AppEchoBase and AppEchoNoise model the user-space processing for
	// payload probes: the receiving process wakes up and echoes the message
	// back (§4.1, Figure 4(d)).
	AppEchoBase  time.Duration
	AppEchoNoise time.Duration
	// HTTPOverhead is additional per-probe user-space overhead for HTTP
	// probes versus raw TCP.
	HTTPOverhead time.Duration
}

// validate rejects nonsensical profiles before they poison an experiment.
func (p *Profile) validate() error {
	if p.Name == "" {
		return fmt.Errorf("netsim: profile with empty name")
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"HostBase", p.HostBase}, {"HostNoise", p.HostNoise},
		{"SwitchBase", p.SwitchBase}, {"QueueMean", p.QueueMean},
		{"BurstMean", p.BurstMean}, {"BigBurstMean", p.BigBurstMean},
		{"StallMin", p.StallMin}, {"StallMean", p.StallMean},
		{"AppEchoBase", p.AppEchoBase}, {"AppEchoNoise", p.AppEchoNoise},
		{"HTTPOverhead", p.HTTPOverhead},
	} {
		if d.v < 0 {
			return fmt.Errorf("netsim: profile %s: negative %s", p.Name, d.name)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"BurstProb", p.BurstProb}, {"BigBurstProb", p.BigBurstProb},
		{"StallProb", p.StallProb}, {"HostDrop", p.HostDrop},
		{"ToRDrop", p.ToRDrop}, {"LeafDrop", p.LeafDrop},
		{"SpineDrop", p.SpineDrop}, {"RetryDropBoost", p.RetryDropBoost},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("netsim: profile %s: %s = %g outside [0,1]", p.Name, f.name, f.v)
		}
	}
	return nil
}

func (p *Profile) load(t time.Time) float64 {
	if p.Load == nil {
		return 1
	}
	return p.Load(t)
}

// DC1Profile models the paper's DC1 (US West): throughput-intensive
// distributed storage and MapReduce, ~90% CPU utilization, hundreds of
// Mb/s sustained per server. Heavily loaded hosts produce long scheduling
// stalls (P99.99 over a second) and sustained queuing.
func DC1Profile() Profile {
	return Profile{
		Name:         "DC1",
		HostBase:     48 * time.Microsecond,
		HostNoise:    14 * time.Microsecond,
		SwitchBase:   6 * time.Microsecond,
		QueueMean:    5 * time.Microsecond,
		BurstProb:    0.0030,
		BurstMean:    500 * time.Microsecond,
		BigBurstProb: 0.0016,
		BigBurstMean: 12 * time.Millisecond,
		StallProb:    1.8e-4,
		StallMin:     150 * time.Millisecond,
		StallMean:    900 * time.Millisecond,

		HostDrop:       1.6e-6,
		ToRDrop:        2.2e-6,
		LeafDrop:       9.0e-6,
		SpineDrop:      8.0e-6,
		RetryDropBoost: 0.08,

		AppEchoBase:  42 * time.Microsecond,
		AppEchoNoise: 18 * time.Microsecond,
		HTTPOverhead: 120 * time.Microsecond,
	}
}

// DC2Profile models the paper's DC2 (US Central): an interactive Search
// service with moderate CPU, low average throughput but bursty traffic and
// high fan-in/fan-out. Its tail is shorter than DC1's (P99.9 ≈ 11ms,
// P99.99 ≈ 106ms).
func DC2Profile() Profile {
	return Profile{
		Name:         "DC2",
		HostBase:     46 * time.Microsecond,
		HostNoise:    12 * time.Microsecond,
		SwitchBase:   6 * time.Microsecond,
		QueueMean:    4 * time.Microsecond,
		BurstProb:    0.0034, // bursty traffic: frequent short bursts
		BurstMean:    420 * time.Microsecond,
		BigBurstProb: 0.0014,
		BigBurstMean: 6 * time.Millisecond,
		StallProb:    1.2e-4,
		StallMin:     30 * time.Millisecond,
		StallMean:    80 * time.Millisecond,

		HostDrop:       2.6e-6,
		ToRDrop:        2.6e-6,
		LeafDrop:       9.0e-6,
		SpineDrop:      8.0e-6,
		RetryDropBoost: 0.08,

		AppEchoBase:  40 * time.Microsecond,
		AppEchoNoise: 15 * time.Microsecond,
		HTTPOverhead: 110 * time.Microsecond,
	}
}

// DC3Profile models the paper's DC3 (US East): the lowest intra-pod drop
// rate of Table 1.
func DC3Profile() Profile {
	p := DC2Profile()
	p.Name = "DC3"
	p.HostDrop = 1.2e-6
	p.ToRDrop = 1.8e-6
	p.LeafDrop = 5.2e-6
	p.SpineDrop = 4.0e-6
	return p
}

// DC4Profile models the paper's DC4 (Europe).
func DC4Profile() Profile {
	p := DC2Profile()
	p.Name = "DC4"
	p.HostDrop = 1.9e-6
	p.ToRDrop = 2.4e-6
	p.LeafDrop = 6.5e-6
	p.SpineDrop = 5.5e-6
	return p
}

// DC5Profile models the paper's DC5 (Asia): intra-pod and inter-pod drop
// rates closest to each other (1.0e-5 vs 1.5e-5 in Table 1), i.e. a very
// clean Leaf/Spine fabric.
func DC5Profile() Profile {
	p := DC2Profile()
	p.Name = "DC5"
	p.HostDrop = 1.2e-6
	p.ToRDrop = 1.9e-6
	p.LeafDrop = 0.8e-6
	p.SpineDrop = 0.7e-6
	return p
}

// DefaultProfiles returns the five Table 1 profiles in DC order.
func DefaultProfiles() []Profile {
	return []Profile{DC1Profile(), DC2Profile(), DC3Profile(), DC4Profile(), DC5Profile()}
}
