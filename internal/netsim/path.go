package netsim

import (
	"net/netip"

	"pingmesh/internal/topology"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash5 hashes a five-tuple plus a per-ECMP-stage salt with FNV-1a. Every
// ECMP stage of the fabric uses the same header fields but a different
// salt, matching how successive switches hash independently. It is split
// into an address prefix and a port suffix so the probe plan cache can
// precompute the per-pair prefix once.
func hash5(src, dst netip.Addr, sport, dport uint16, salt uint64) uint64 {
	return hash5Ports(hash5Prefix(src, dst, salt), sport, dport)
}

// hash5Prefix folds the stage salt and both addresses; the result is
// constant per (pair, stage).
func hash5Prefix(src, dst netip.Addr, salt uint64) uint64 {
	h := uint64(fnvOffset) ^ (salt * fnvPrime)
	s4, d4 := src.As4(), dst.As4()
	for _, b := range s4 {
		h = (h ^ uint64(b)) * fnvPrime
	}
	for _, b := range d4 {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// hash5Ports folds the transport ports into a prefix from hash5Prefix.
func hash5Ports(h uint64, sport, dport uint16) uint64 {
	for _, b := range [...]byte{byte(sport >> 8), byte(sport), byte(dport >> 8), byte(dport)} {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// pickECMP selects one non-isolated member deterministically from the hash.
// It returns -1 if every member is isolated.
func pickECMP(members []topology.SwitchID, ft *faultTable, h uint64) topology.SwitchID {
	alive := 0
	for _, m := range members {
		if !ft.perSwitch[m].isolated {
			alive++
		}
	}
	if alive == 0 {
		return -1
	}
	k := int(h % uint64(alive))
	for _, m := range members {
		if ft.perSwitch[m].isolated {
			continue
		}
		if k == 0 {
			return m
		}
		k--
	}
	return -1 // unreachable
}

// route is a resolved probe path: the ordered switches a packet traverses
// from src to dst, plus whether it crosses the inter-DC WAN.
type route struct {
	hops    [6]topology.SwitchID
	n       int
	crossDC bool
	ok      bool
}

func (r *route) add(sw topology.SwitchID) {
	if sw < 0 {
		r.ok = false
		return
	}
	r.hops[r.n] = sw
	r.n++
}

// Hops returns the traversed switches in order.
func (r *route) Hops() []topology.SwitchID { return r.hops[:r.n] }

// resolve computes the ECMP path for a five-tuple against a fault table.
func (n *Network) resolve(ft *faultTable, src, dst topology.ServerID, sport, dport uint16) route {
	ss, ds := n.top.Server(src), n.top.Server(dst)
	sa, da := ss.Addr, ds.Addr
	r := route{ok: true}

	srcToR := n.top.ToROf(src)
	dstToR := n.top.ToROf(dst)
	if ft.perSwitch[srcToR].isolated || ft.perSwitch[dstToR].isolated {
		return route{}
	}
	// Same pod: one ToR hop.
	if srcToR == dstToR {
		r.add(srcToR)
		return r
	}
	r.add(srcToR)
	if ss.DC == ds.DC && ss.Podset == ds.Podset {
		// Same podset: up to a Leaf and back down.
		leaves := n.top.DCs[ss.DC].Podsets[ss.Podset].Leaves
		r.add(pickECMP(leaves, ft, hash5(sa, da, sport, dport, 1)))
		r.add(dstToR)
		return r
	}
	// Cross-podset: climb through the source podset's Leaf tier.
	r.add(pickECMP(n.top.DCs[ss.DC].Podsets[ss.Podset].Leaves, ft, hash5(sa, da, sport, dport, 1)))
	if ss.DC == ds.DC {
		r.add(pickECMP(n.top.DCs[ss.DC].Spines, ft, hash5(sa, da, sport, dport, 2)))
	} else {
		// Cross-DC: exit through a spine in each DC over the WAN.
		r.crossDC = true
		r.add(pickECMP(n.top.DCs[ss.DC].Spines, ft, hash5(sa, da, sport, dport, 2)))
		r.add(pickECMP(n.top.DCs[ds.DC].Spines, ft, hash5(sa, da, sport, dport, 3)))
	}
	r.add(pickECMP(n.top.DCs[ds.DC].Podsets[ds.Podset].Leaves, ft, hash5(sa, da, sport, dport, 4)))
	r.add(dstToR)
	return r
}

// Path returns the switches a probe with this five-tuple traverses, in
// order, and whether a route exists. It is the ground truth TCP traceroute
// recovers hop by hop (§5.2).
func (n *Network) Path(src, dst topology.ServerID, sport, dport uint16) ([]topology.SwitchID, bool) {
	r := n.resolve(n.faults.Load(), src, dst, sport, dport)
	if !r.ok {
		return nil, false
	}
	return append([]topology.SwitchID(nil), r.Hops()...), true
}

// AppendPath is Path into a caller-owned buffer: it appends the hops to
// dst and returns the extended slice. Allocation-free when dst has
// capacity (a route is at most 6 hops), which keeps per-record path
// recovery off the allocator on the diagnosis ingest path.
func (n *Network) AppendPath(dst []topology.SwitchID, src, dstID topology.ServerID, sport, dport uint16) ([]topology.SwitchID, bool) {
	r := n.resolve(n.faults.Load(), src, dstID, sport, dport)
	if !r.ok {
		return dst, false
	}
	return append(dst, r.Hops()...), true
}
