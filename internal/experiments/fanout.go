package experiments

import (
	"fmt"
	"time"

	"pingmesh/internal/core"
	"pingmesh/internal/topology"
)

// FanOutResult checks §3.3.1's in-text claim: at production scale a server
// probes 2000-5000 peers, and the controller's thresholds cap the list.
type FanOutResult struct {
	Servers  int
	ToRs     int
	MinPeers int
	MaxPeers int
	Capped   bool // whether the MaxPeersPerServer threshold engaged
}

// FanOut generates pinglists for a DC with thousands of racks and reports
// the per-server peer fan-out.
func FanOut(opts Options) (*FanOutResult, error) {
	// 2400 racks of 2 servers: the ToR-level complete graph alone yields
	// ~2399 peers per server, inside the paper's 2000-5000 band.
	top, err := topology.Build(topology.Spec{DCs: []topology.DCSpec{
		{Name: "BIG", Podsets: 48, PodsPerPodset: 50, ServersPerPod: 2, LeavesPerPodset: 4, Spines: 64},
	}})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultGeneratorConfig()
	// Sample 96 servers spread across the DC: the per-server fan-out is
	// what the experiment measures; materializing every list is wasteful.
	var sample []topology.ServerID
	for i := 0; i < top.NumServers() && len(sample) < 96; i += top.NumServers() / 96 {
		sample = append(sample, topology.ServerID(i))
	}
	lists, err := core.GenerateSubset(top, cfg, "v1", time.Unix(1751328000, 0).UTC(), sample)
	if err != nil {
		return nil, err
	}
	res := &FanOutResult{Servers: top.NumServers(), ToRs: len(top.ToRs(0)), MinPeers: 1 << 30}
	for _, f := range lists {
		n := len(f.Peers)
		if n < res.MinPeers {
			res.MinPeers = n
		}
		if n > res.MaxPeers {
			res.MaxPeers = n
		}
		if n >= cfg.MaxPeersPerServer {
			res.Capped = true
		}
	}
	return res, nil
}

// Report renders the fan-out comparison.
func (r *FanOutResult) Report() Report {
	return Report{
		ID:    "§3.3.1 fan-out",
		Title: "Per-server probe fan-out at scale",
		Rows: []Row{
			{"servers", "hundreds of thousands", fmt.Sprintf("%d (testbed scale)", r.Servers)},
			{"peer fan-out", "2000-5000 per server", fmt.Sprintf("%d-%d", r.MinPeers, r.MaxPeers)},
			{"threshold cap", "limits total probes", fmt.Sprintf("engaged=%v", r.Capped)},
		},
	}
}
