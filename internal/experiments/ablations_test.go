package experiments

import (
	"strings"
	"testing"
)

func TestAblationECMP(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment")
	}
	r, err := AblationECMP(Options{Probes: 128_000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh ports: every pair's probes spread across all 8 spines, so
	// every pair sees a diluted but detectable elevated rate.
	if r.FreshPortDetection < 0.9 {
		t.Fatalf("fresh-port detection = %.2f, want ~1.0", r.FreshPortDetection)
	}
	// Fixed ports: only pairs whose single path crosses the lossy spine
	// (~1/8) see anything.
	if r.FixedPortDetection > 0.5 {
		t.Fatalf("fixed-port detection = %.2f, want ~1/8", r.FixedPortDetection)
	}
	if r.FreshPortDetection <= r.FixedPortDetection {
		t.Fatal("port variation did not improve coverage")
	}
	rep := r.Report()
	if !strings.Contains(rep.String(), "fresh-port") {
		t.Fatal("report broken")
	}
}

func TestAblationDropHeuristic(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment")
	}
	r, err := AblationDropHeuristic(Options{Probes: 400_000, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// The paper heuristic lands in the same decade as the injected loss.
	if r.PaperHeuristic < r.TrueInjected/2 || r.PaperHeuristic > r.TrueInjected*20 {
		t.Fatalf("paper heuristic %.2e vs injected %.2e", r.PaperHeuristic, r.TrueInjected)
	}
	// Counting 9s as two drops inflates the estimate.
	if r.NineCountsTwo < r.PaperHeuristic {
		t.Fatal("double-counting did not inflate")
	}
	// Treating failures as drops is dominated by the dead podset: orders
	// of magnitude above the real loss.
	if r.FailureRateAllProbes < r.PaperHeuristic*10 {
		t.Fatalf("failure-rate estimator %.2e should dwarf heuristic %.2e (dead hosts)",
			r.FailureRateAllProbes, r.PaperHeuristic)
	}
	rep := r.Report()
	if !strings.Contains(rep.String(), "heuristic") {
		t.Fatal("report broken")
	}
}

func TestAblationSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment")
	}
	r, err := AblationSampling(Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	full := r.Rows[0] // 4/4 servers
	one := r.Rows[2]  // 1/4 servers
	if full.Detected < full.Seeded-1 {
		t.Fatalf("full participation detected %d of %d", full.Detected, full.Seeded)
	}
	if one.Detected > full.Detected {
		t.Fatalf("sampled participation (%d) outperformed full (%d)", one.Detected, full.Detected)
	}
	rep := r.Report()
	if !strings.Contains(rep.String(), "servers per pod") {
		t.Fatal("report broken")
	}
}

func TestAblationGraphDesign(t *testing.T) {
	r, err := AblationGraphDesign(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.FlatGraphPeers != r.Servers-1 {
		t.Fatalf("flat peers = %d", r.FlatGraphPeers)
	}
	// The 3-level design's fan-out is bounded by the rack count, far
	// below n-1.
	if r.ThreeLevelMax >= r.FlatGraphPeers/10 {
		t.Fatalf("3-level fan-out %d not clearly below flat %d", r.ThreeLevelMax, r.FlatGraphPeers)
	}
	if r.ProbesPerSecFleetFlat <= r.ProbesPerSecFleet3L*10 {
		t.Fatalf("flat fleet rate %.0f not clearly above 3-level %.0f",
			r.ProbesPerSecFleetFlat, r.ProbesPerSecFleet3L)
	}
	rep := r.Report()
	if !strings.Contains(rep.String(), "fan-out") {
		t.Fatal("report broken")
	}
}
