package experiments

import (
	"strings"
	"testing"
)

func TestQoSMonitoring(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment")
	}
	r, err := QoSMonitoring(Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if r.High.Count == 0 || r.Low.Count == 0 {
		t.Fatalf("missing probes: high=%d low=%d", r.High.Count, r.Low.Count)
	}
	// Low priority sees deeper queues under load: visibly slower at P90.
	if r.Low.P90 <= r.High.P90 {
		t.Fatalf("low-QoS P90 %v <= high-QoS P90 %v", r.Low.P90, r.High.P90)
	}
	rep := r.Report()
	if !strings.Contains(rep.String(), "low-QoS") {
		t.Fatal("report broken")
	}
}
